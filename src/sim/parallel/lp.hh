/**
 * @file
 * Logical process: one partition of a parallel simulation.
 *
 * A LogicalProcess (LP) owns a private EventQueue holding the events
 * of one simulated node (or node group). All state of the components
 * built against that queue belongs to the LP and may only be touched
 * by the one worker thread executing the LP's window — the engine
 * never runs the same LP on two threads concurrently, and all
 * cross-LP traffic crosses through a LinkChannel at a window barrier.
 *
 * See engine.hh for the synchronization protocol and DESIGN.md §11
 * for the determinism argument.
 */

#ifndef TF_SIM_PARALLEL_LP_HH
#define TF_SIM_PARALLEL_LP_HH

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace tf::sim::par {

using LpId = std::uint32_t;

class LogicalProcess
{
  public:
    LogicalProcess(LpId id, std::string name)
        : _id(id), _name(std::move(name))
    {}

    LogicalProcess(const LogicalProcess &) = delete;
    LogicalProcess &operator=(const LogicalProcess &) = delete;

    LpId id() const { return _id; }
    const std::string &name() const { return _name; }

    /** The LP's private event kernel. Build your components on it. */
    EventQueue &queue() { return _eq; }
    const EventQueue &queue() const { return _eq; }

    /** Windows in which this LP executed at least one event. */
    std::uint64_t activeWindows() const { return _activeWindows.value(); }

    /** Cross-LP messages merged into this LP at window barriers. */
    std::uint64_t merged() const { return _merged.value(); }

    /**
     * Wall-clock nanoseconds the worker owning this LP spent waiting
     * at window-end barriers (zero when the engine runs serially).
     * A large value relative to its siblings means the partition is
     * under-loaded. Non-deterministic by nature: excluded from the
     * default stats export (see ParallelEngine::attachStats).
     */
    std::uint64_t barrierWaitNs() const { return _barrierWaitNs.value(); }

    /**
     * Invoked by the engine after cross-LP messages are merged into
     * this LP's queue at a window barrier. The merge runs
     * single-threaded on the coordinator in both the serial and
     * parallel paths, so the hook sees the queue in the same state
     * regardless of --jobs. Observers that disarm themselves when
     * the queue drains (the timeline sampler) use it to re-arm on
     * newly delivered work.
     */
    void setWakeHook(std::function<void()> fn) { _wakeHook = std::move(fn); }

  private:
    friend class ParallelEngine;

    std::function<void()> _wakeHook;

    LpId _id;
    std::string _name;
    EventQueue _eq;
    Counter _activeWindows;
    Counter _merged;
    Counter _barrierWaitNs;
};

} // namespace tf::sim::par

#endif // TF_SIM_PARALLEL_LP_HH
