/**
 * @file
 * Conservative parallel discrete-event engine.
 *
 * The simulation is partitioned into logical processes (LPs), each
 * owning a private EventQueue (src/sim/event_queue.hh) — one kernel
 * per simulated node or node group. LPs are coupled only through
 * LinkChannels, whose guaranteed minimum latencies yield the engine's
 * lookahead:
 *
 *     lookahead L = min over channels of minLatency()
 *
 * Execution proceeds in bounded windows. Each round the engine
 * computes the global floor F (the earliest pending event across all
 * LPs), then every LP independently executes its events in
 * [F, F + L): no message sent during the window can be due before
 * F + L, so no LP can affect another inside the window and the LPs
 * are free to run on separate worker threads. At the window barrier
 * the engine drains every channel and merges the messages into the
 * destination queues sorted by (tick, source LP, channel, sequence).
 *
 * Determinism: window boundaries are a pure function of queue state,
 * per-LP execution is single-threaded and seeded, and the barrier
 * merge imposes a fixed total order on cross-LP deliveries. The
 * worker count therefore cannot change any simulation outcome:
 * `jobs = 1` (which spawns no threads at all) and `jobs = N` produce
 * bit-identical event orderings, tick clocks, and statistics. With a
 * single LP — or no channels — the engine degenerates to plain
 * EventQueue::run semantics in the calling thread.
 *
 * Threading contract for components: everything built on an LP's
 * queue belongs to that LP; cross-partition interaction must go
 * through a LinkChannel (net::Network and ocapi::CrossingStage can
 * route through one — see their bindChannel/assign APIs).
 */

#ifndef TF_SIM_PARALLEL_ENGINE_HH
#define TF_SIM_PARALLEL_ENGINE_HH

#include <memory>
#include <string>
#include <vector>

#include "sim/parallel/link_channel.hh"
#include "sim/parallel/lp.hh"

namespace tf::sim::par {

class ParallelEngine
{
  public:
    /** @param jobs worker-thread budget; clamped to the LP count. */
    explicit ParallelEngine(unsigned jobs = 1) : _jobs(jobs) {}

    ParallelEngine(const ParallelEngine &) = delete;
    ParallelEngine &operator=(const ParallelEngine &) = delete;

    /** Create the next logical process. Stable id = creation order. */
    LogicalProcess &addLp(std::string name);

    /**
     * Create a unidirectional channel src -> dst with a guaranteed
     * minimum latency (> 0, TF_ASSERT-enforced: zero lookahead would
     * deadlock a conservative engine). The engine's lookahead is the
     * minimum over all connected channels.
     */
    LinkChannel &connect(LogicalProcess &src, LogicalProcess &dst,
                         Tick minLatency, std::string name = "");

    void setJobs(unsigned jobs) { _jobs = jobs; }
    unsigned jobs() const { return _jobs; }

    /** Current lookahead; maxTick when no channels exist. */
    Tick lookahead() const;

    /**
     * Run every LP's events up to and including @p limit (windowed,
     * on min(jobs, lpCount) threads when jobs > 1). Returns events
     * executed. Like EventQueue::run, a finite limit warps every
     * LP's clock to @p limit on return.
     */
    std::uint64_t run(Tick limit = maxTick);

    std::size_t lpCount() const { return _lps.size(); }
    LogicalProcess &lp(std::size_t i) { return *_lps.at(i); }

    std::size_t channelCount() const { return _channels.size(); }
    LinkChannel &channel(std::size_t i) { return *_channels.at(i); }

    /** Synchronization windows executed over the engine's lifetime. */
    std::uint64_t windows() const { return _windows.value(); }

    /** Cross-LP messages merged over the engine's lifetime. */
    std::uint64_t merged() const { return _mergedTotal.value(); }

    /** Events executed across all LPs over the engine's lifetime. */
    std::uint64_t executed() const;

    /**
     * Register engine + per-LP kernel telemetry:
     *   <prefix>            windows / merged / lps / lookaheadNs
     *   <prefix>.lp<N>      sim.eq counters + activeWindows + merged
     *   <prefix>.chan<N>    per-channel sent/delivered
     * @p wallClock additionally exports each LP's barrierWaitNs —
     * wall-clock, hence non-deterministic; leave it off for runs
     * whose stats JSON must be byte-reproducible.
     */
    void attachStats(StatsRegistry &reg, const std::string &prefix,
                     bool wallClock = false);

  private:
    struct MergeItem
    {
        Tick when;
        LpId src;
        std::uint32_t chan;
        std::uint64_t seq;
        LinkChannel::Msg *msg;
    };

    Tick minNextEventTick();
    Tick windowRunTo(Tick floor, Tick la, Tick limit) const;
    /** Run one LP's window; updates its active-window counter. */
    void runLp(LogicalProcess &lp, Tick runTo);
    void mergeChannels();
    std::uint64_t runSerial(Tick limit);
    std::uint64_t runParallel(Tick limit, unsigned workers);
    void finishRun(Tick limit);

    std::vector<std::unique_ptr<LogicalProcess>> _lps;
    std::vector<std::unique_ptr<LinkChannel>> _channels;
    /** Channels inbound to each LP id, in channel-index order. */
    std::vector<std::vector<LinkChannel *>> _inbound;
    std::vector<MergeItem> _mergeScratch;
    unsigned _jobs;
    Counter _windows;
    Counter _mergedTotal;

    // Window state published to workers across the start barrier and
    // read back after it; the barrier provides the happens-before.
    Tick _runTo = 0;
    bool _stop = false;
};

} // namespace tf::sim::par

#endif // TF_SIM_PARALLEL_ENGINE_HH
