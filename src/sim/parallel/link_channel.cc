#include "sim/parallel/link_channel.hh"

#include "sim/logging.hh"

namespace tf::sim::par {

LinkChannel::LinkChannel(std::string name, LogicalProcess &src,
                         LogicalProcess &dst, Tick minLatency,
                         std::uint32_t index)
    : _src(&src), _dst(&dst), _name(std::move(name)),
      _minLatency(minLatency), _index(index)
{
    TF_ASSERT(_minLatency > 0,
              "channel '%s' (%s -> %s): zero lookahead — a "
              "conservative engine cannot make progress across a "
              "zero-latency partition boundary",
              _name.c_str(), src.name().c_str(), dst.name().c_str());
    TF_ASSERT(_src != _dst, "channel '%s': src and dst LP are the same",
              _name.c_str());
}

void
LinkChannel::send(Tick deliverAt, EventCallback cb)
{
    TF_ASSERT(deliverAt >= _src->queue().now() + _minLatency,
              "channel '%s': delivery at %llu violates the min-latency "
              "contract (now %llu + %llu)",
              _name.c_str(), (unsigned long long)deliverAt,
              (unsigned long long)_src->queue().now(),
              (unsigned long long)_minLatency);
    _outbox.push_back(Msg{deliverAt, _nextSeq++, std::move(cb)});
    _sent.inc();
}

void
LinkChannel::attachStats(StatSet &set)
{
    set.attach("sent", _sent, "msgs", "messages deposited");
    set.attach("delivered", _delivered, "msgs",
               "messages merged into the destination LP");
}

} // namespace tf::sim::par
