#include "sim/parallel/engine.hh"

#include <algorithm>
#include <barrier>
#include <chrono>
#include <thread>

#include "sim/logging.hh"

namespace tf::sim::par {

namespace {

/** Per-worker accumulator, padded against false sharing. */
struct alignas(64) WorkerSlot
{
    std::uint64_t waitNs = 0;
};

std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

LogicalProcess &
ParallelEngine::addLp(std::string name)
{
    auto id = static_cast<LpId>(_lps.size());
    _lps.push_back(
        std::make_unique<LogicalProcess>(id, std::move(name)));
    _inbound.emplace_back();
    return *_lps.back();
}

LinkChannel &
ParallelEngine::connect(LogicalProcess &src, LogicalProcess &dst,
                        Tick minLatency, std::string name)
{
    auto index = static_cast<std::uint32_t>(_channels.size());
    if (name.empty())
        name = src.name() + "->" + dst.name();
    _channels.push_back(std::unique_ptr<LinkChannel>(new LinkChannel(
        std::move(name), src, dst, minLatency, index)));
    _inbound.at(dst.id()).push_back(_channels.back().get());
    return *_channels.back();
}

Tick
ParallelEngine::lookahead() const
{
    Tick la = maxTick;
    for (const auto &ch : _channels)
        la = std::min(la, ch->minLatency());
    return la;
}

std::uint64_t
ParallelEngine::executed() const
{
    std::uint64_t total = 0;
    for (const auto &lp : _lps)
        total += lp->queue().executed();
    return total;
}

Tick
ParallelEngine::minNextEventTick()
{
    Tick floor = maxTick;
    for (auto &lp : _lps)
        floor = std::min(floor, lp->queue().nextEventTick());
    return floor;
}

Tick
ParallelEngine::windowRunTo(Tick floor, Tick la, Tick limit) const
{
    // No channels (la == maxTick) or a window reaching past the
    // horizon: one window covers the whole remaining run.
    if (la == maxTick || floor > maxTick - la)
        return limit;
    // Window [floor, floor + la): inclusive upper bound for run().
    return std::min(limit, floor + la - 1);
}

void
ParallelEngine::runLp(LogicalProcess &lp, Tick runTo)
{
    if (lp.queue().run(runTo) > 0)
        lp._activeWindows.inc();
}

void
ParallelEngine::mergeChannels()
{
    for (auto &lp : _lps) {
        auto &inbound = _inbound[lp->id()];
        _mergeScratch.clear();
        for (LinkChannel *ch : inbound) {
            for (auto &msg : ch->_outbox)
                _mergeScratch.push_back(MergeItem{
                    msg.when, ch->src(), ch->_index, msg.seq, &msg});
        }
        if (_mergeScratch.empty())
            continue;
        // Deterministic total order on deliveries: the thread that
        // produced a message can never influence where it lands in
        // the destination's event sequence.
        std::sort(_mergeScratch.begin(), _mergeScratch.end(),
                  [](const MergeItem &a, const MergeItem &b) {
                      if (a.when != b.when)
                          return a.when < b.when;
                      if (a.src != b.src)
                          return a.src < b.src;
                      if (a.chan != b.chan)
                          return a.chan < b.chan;
                      return a.seq < b.seq;
                  });
        for (auto &item : _mergeScratch) {
            lp->queue().schedule(item.when, std::move(item.msg->cb));
            lp->_merged.inc();
            _mergedTotal.inc();
        }
        for (LinkChannel *ch : inbound) {
            ch->_delivered.inc(ch->_outbox.size());
            ch->_outbox.clear();
        }
        if (lp->_wakeHook)
            lp->_wakeHook();
    }
}

std::uint64_t
ParallelEngine::runSerial(Tick limit)
{
    const std::uint64_t start = executed();
    const Tick la = lookahead();
    mergeChannels(); // traffic deposited before the run began
    while (true) {
        Tick floor = minNextEventTick();
        if (floor == maxTick || floor > limit)
            break;
        Tick runTo = windowRunTo(floor, la, limit);
        for (auto &lp : _lps)
            runLp(*lp, runTo);
        mergeChannels();
        _windows.inc();
    }
    finishRun(limit);
    return executed() - start;
}

std::uint64_t
ParallelEngine::runParallel(Tick limit, unsigned workers)
{
    const std::uint64_t start = executed();
    const Tick la = lookahead();
    const std::size_t nLps = _lps.size();
    mergeChannels(); // traffic deposited before the run began

    std::barrier<> bar(workers);
    std::vector<WorkerSlot> slots(workers);
    _stop = false;

    // Static LP-to-worker assignment: LP i belongs to worker
    // i % workers for the whole run, so an LP's queue is only ever
    // touched by one thread between barriers and its barrier-wait
    // attribution is well defined.
    auto workerShare = [this, nLps](unsigned w, unsigned stride,
                                    Tick runTo) {
        for (std::size_t i = w; i < nLps; i += stride)
            runLp(*_lps[i], runTo);
    };

    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (unsigned w = 1; w < workers; ++w) {
        pool.emplace_back([this, &bar, &slots, workerShare, w,
                           workers]() {
            while (true) {
                bar.arrive_and_wait(); // window start / stop signal
                if (_stop)
                    return;
                workerShare(w, workers, _runTo);
                std::uint64_t t0 = nowNs();
                bar.arrive_and_wait(); // window end
                slots[w].waitNs += nowNs() - t0;
            }
        });
    }

    while (true) {
        // All workers are parked at the start barrier here, so the
        // queues are quiescent and the floor scan is race-free.
        Tick floor = minNextEventTick();
        if (floor == maxTick || floor > limit)
            break;
        _runTo = windowRunTo(floor, la, limit);
        bar.arrive_and_wait(); // publish _runTo, open the window
        workerShare(0, workers, _runTo);
        std::uint64_t t0 = nowNs();
        bar.arrive_and_wait(); // window end
        slots[0].waitNs += nowNs() - t0;
        mergeChannels();
        _windows.inc();
    }

    _stop = true;
    bar.arrive_and_wait(); // release workers into the stop check
    for (auto &t : pool)
        t.join();

    for (std::size_t i = 0; i < nLps; ++i)
        _lps[i]->_barrierWaitNs.inc(slots[i % workers].waitNs);

    finishRun(limit);
    return executed() - start;
}

void
ParallelEngine::finishRun(Tick limit)
{
    // Match EventQueue::run semantics: a finite limit leaves every
    // clock at the limit even when a queue drained early.
    if (limit != maxTick)
        for (auto &lp : _lps)
            lp->queue().run(limit);
}

std::uint64_t
ParallelEngine::run(Tick limit)
{
    TF_ASSERT(!_lps.empty(), "engine has no logical processes");
    unsigned workers = std::max(1u, _jobs);
    workers = static_cast<unsigned>(
        std::min<std::size_t>(workers, _lps.size()));
    if (workers <= 1)
        return runSerial(limit);
    return runParallel(limit, workers);
}

void
ParallelEngine::attachStats(StatsRegistry &reg,
                            const std::string &prefix, bool wallClock)
{
    StatSet &top = reg.at(prefix);
    top.attach("windows", _windows, "windows",
               "conservative synchronization windows");
    top.attach("merged", _mergedTotal, "msgs",
               "cross-LP messages merged at window barriers");
    top.record("lps", static_cast<double>(_lps.size()), "lps");
    if (!_channels.empty())
        top.record("lookaheadNs", toNs(lookahead()), "ns",
                   "min cross-LP link latency");
    for (auto &lp : _lps) {
        StatSet &set =
            reg.at(prefix + ".lp" + std::to_string(lp->id()));
        lp->queue().attachStats(set);
        set.attach("activeWindows", lp->_activeWindows, "windows",
                   "windows in which this LP executed events");
        set.attach("merged", lp->_merged, "msgs",
                   "messages merged into this LP");
        if (wallClock)
            set.attach("barrierWaitNs", lp->_barrierWaitNs, "ns",
                       "owning worker's wall-clock wait at "
                       "window-end barriers");
    }
    for (auto &ch : _channels)
        ch->attachStats(
            reg.at(prefix + ".chan" + std::to_string(ch->_index)));
}

} // namespace tf::sim::par
