/**
 * @file
 * LinkChannel: the only legal way for work to cross LP partitions.
 *
 * A LinkChannel is a unidirectional mailbox from one LP to another,
 * modelling a physical link with a guaranteed minimum latency (an
 * OpenCAPI hop, an Ethernet wire). The sender deposits a callback
 * stamped with its absolute delivery tick; the engine drains every
 * channel at the window barrier and schedules the callbacks into the
 * destination LP's queue in a deterministic order — sorted by
 * (deliverAt, source LP, channel, per-channel sequence) — so a
 * parallel run executes the destination's events in exactly the same
 * order as a serial one.
 *
 * The minimum latency is the conservative contract: the engine's
 * lookahead is the minimum over all channels, every send must be
 * scheduled at least minLatency() after the sender's current tick,
 * and therefore no message can ever target the window in which it
 * was sent. Zero-latency channels are rejected loudly at connect
 * time (TF_ASSERT) — they would force a zero-length window and
 * deadlock a conservative engine.
 *
 * Threading: during a window only the source LP's worker touches the
 * outbox; the engine's merge runs between barriers when all workers
 * are parked. No locks are needed; the barrier provides the
 * happens-before edge.
 */

#ifndef TF_SIM_PARALLEL_LINK_CHANNEL_HH
#define TF_SIM_PARALLEL_LINK_CHANNEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/parallel/lp.hh"

namespace tf::sim::par {

class LinkChannel
{
  public:
    /**
     * Deposit @p cb for execution on the destination LP at absolute
     * time @p deliverAt. Must be called from the source LP (inside
     * one of its events, or before the engine runs).
     * @pre deliverAt >= source now + minLatency().
     */
    void send(Tick deliverAt, EventCallback cb);

    LpId src() const { return _src->id(); }
    LpId dst() const { return _dst->id(); }
    const std::string &name() const { return _name; }

    /** Guaranteed minimum source->destination latency (lookahead). */
    Tick minLatency() const { return _minLatency; }

    /** Messages deposited over the channel's lifetime. */
    std::uint64_t sent() const { return _sent.value(); }

    /** Messages delivered into the destination queue. */
    std::uint64_t delivered() const { return _delivered.value(); }

    /** Messages deposited but not yet merged (teardown diagnostics). */
    std::size_t inFlight() const { return _outbox.size(); }

    /** Attach sent/delivered counters for telemetry export. */
    void attachStats(StatSet &set);

  private:
    friend class ParallelEngine;

    struct Msg
    {
        Tick when;
        std::uint64_t seq; ///< per-channel deposit order
        EventCallback cb;
    };

    LinkChannel(std::string name, LogicalProcess &src,
                LogicalProcess &dst, Tick minLatency,
                std::uint32_t index);

    LogicalProcess *_src;
    LogicalProcess *_dst;
    std::string _name;
    Tick _minLatency;
    std::uint32_t _index; ///< engine-wide channel ordinal (tiebreak)
    std::vector<Msg> _outbox;
    std::uint64_t _nextSeq = 0;
    Counter _sent;
    Counter _delivered;
};

} // namespace tf::sim::par

#endif // TF_SIM_PARALLEL_LINK_CHANNEL_HH
