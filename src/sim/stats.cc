#include "sim/stats.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>

#include "sim/logging.hh"

namespace tf::sim {

void
Summary::add(double x)
{
    ++_count;
    _sum += x;
    double delta = x - _mean;
    _mean += delta / static_cast<double>(_count);
    _m2 += delta * (x - _mean);
    _min = std::min(_min, x);
    _max = std::max(_max, x);
}

void
Summary::reset()
{
    *this = Summary{};
}

double
Summary::variance() const
{
    if (_count < 2)
        return 0.0;
    return _m2 / static_cast<double>(_count - 1);
}

double
Summary::stddev() const
{
    return std::sqrt(variance());
}

void
SampleStat::add(double x)
{
    _samples.push_back(x);
    _sorted = false;
    _summary.add(x);
}

void
SampleStat::reset()
{
    _samples.clear();
    _sorted = true;
    _summary.reset();
}

void
SampleStat::ensureSorted() const
{
    if (!_sorted) {
        std::sort(_samples.begin(), _samples.end());
        _sorted = true;
    }
}

double
SampleStat::quantile(double q) const
{
    TF_ASSERT(q >= 0.0 && q <= 1.0, "quantile out of range");
    if (_samples.empty())
        return 0.0;
    ensureSorted();
    // Linear interpolation between closest ranks (type-7 quantile).
    double pos = q * static_cast<double>(_samples.size() - 1);
    std::size_t lo = static_cast<std::size_t>(pos);
    std::size_t hi = std::min(lo + 1, _samples.size() - 1);
    double frac = pos - static_cast<double>(lo);
    return _samples[lo] * (1.0 - frac) + _samples[hi] * frac;
}

void
SampleStat::writeCdf(std::ostream &os, std::size_t points) const
{
    if (_samples.empty())
        return;
    ensureSorted();
    for (std::size_t i = 0; i <= points; ++i) {
        double q = static_cast<double>(i) / static_cast<double>(points);
        os << quantile(q) << ' ' << q << '\n';
    }
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : _lo(lo), _hi(hi),
      _width((hi - lo) / static_cast<double>(buckets)),
      _buckets(buckets, 0)
{
    TF_ASSERT(hi > lo && buckets > 0, "bad histogram bounds");
}

void
Histogram::add(double x, std::uint64_t weight)
{
    _count += weight;
    if (x < _lo) {
        _under += weight;
    } else if (x >= _hi) {
        _over += weight;
    } else {
        auto idx = static_cast<std::size_t>((x - _lo) / _width);
        if (idx >= _buckets.size())
            idx = _buckets.size() - 1; // float edge case at x ~= hi
        _buckets[idx] += weight;
    }
}

void
Histogram::reset()
{
    std::fill(_buckets.begin(), _buckets.end(), 0);
    _under = _over = _count = 0;
}

double
Histogram::bucketLo(std::size_t i) const
{
    return _lo + _width * static_cast<double>(i);
}

double
Histogram::bucketHi(std::size_t i) const
{
    return bucketLo(i) + _width;
}

void
StatSet::record(const std::string &name, double value,
                const std::string &unit, const std::string &desc)
{
    _entries.push_back(StatEntry{name, desc, unit, value});
}

void
StatSet::print(std::ostream &os) const
{
    for (const auto &e : _entries) {
        os << std::left << std::setw(44) << (_owner + "." + e.name)
           << ' ' << std::setw(16) << e.value << ' ' << std::setw(8)
           << e.unit;
        if (!e.desc.empty())
            os << " # " << e.desc;
        os << '\n';
    }
}

} // namespace tf::sim
