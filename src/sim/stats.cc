#include "sim/stats.hh"

#include <algorithm>
#include <cmath>
#include <functional>
#include <iomanip>
#include <sstream>

#include "sim/json.hh"
#include "sim/logging.hh"

namespace tf::sim {

void
Summary::add(double x)
{
    ++_count;
    _sum += x;
    double delta = x - _mean;
    _mean += delta / static_cast<double>(_count);
    _m2 += delta * (x - _mean);
    _min = std::min(_min, x);
    _max = std::max(_max, x);
}

void
Summary::reset()
{
    *this = Summary{};
}

double
Summary::variance() const
{
    if (_count < 2)
        return 0.0;
    return _m2 / static_cast<double>(_count - 1);
}

double
Summary::stddev() const
{
    return std::sqrt(variance());
}

void
SampleStat::add(double x)
{
    _samples.push_back(x);
    _sorted = false;
    _summary.add(x);
}

void
SampleStat::reset()
{
    _samples.clear();
    _sorted = true;
    _summary.reset();
}

void
SampleStat::ensureSorted() const
{
    if (!_sorted) {
        std::sort(_samples.begin(), _samples.end());
        _sorted = true;
    }
}

double
SampleStat::quantile(double q) const
{
    TF_ASSERT(q >= 0.0 && q <= 1.0, "quantile out of range");
    if (_samples.empty())
        return 0.0;
    ensureSorted();
    // Linear interpolation between closest ranks (type-7 quantile).
    double pos = q * static_cast<double>(_samples.size() - 1);
    std::size_t lo = static_cast<std::size_t>(pos);
    std::size_t hi = std::min(lo + 1, _samples.size() - 1);
    double frac = pos - static_cast<double>(lo);
    return _samples[lo] * (1.0 - frac) + _samples[hi] * frac;
}

void
SampleStat::writeCdf(std::ostream &os, std::size_t points) const
{
    if (_samples.empty())
        return;
    ensureSorted();
    for (std::size_t i = 0; i <= points; ++i) {
        double q = static_cast<double>(i) / static_cast<double>(points);
        os << quantile(q) << ' ' << q << '\n';
    }
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : _lo(lo), _hi(hi),
      _width((hi - lo) / static_cast<double>(buckets)),
      _buckets(buckets, 0)
{
    TF_ASSERT(hi > lo && buckets > 0, "bad histogram bounds");
}

void
Histogram::add(double x, std::uint64_t weight)
{
    _count += weight;
    if (x < _lo) {
        _under += weight;
    } else if (x >= _hi) {
        _over += weight;
    } else {
        auto idx = static_cast<std::size_t>((x - _lo) / _width);
        if (idx >= _buckets.size())
            idx = _buckets.size() - 1; // float edge case at x ~= hi
        _buckets[idx] += weight;
    }
}

void
Histogram::reset()
{
    std::fill(_buckets.begin(), _buckets.end(), 0);
    _under = _over = _count = 0;
}

double
Histogram::bucketLo(std::size_t i) const
{
    return _lo + _width * static_cast<double>(i);
}

double
Histogram::bucketHi(std::size_t i) const
{
    return bucketLo(i) + _width;
}

// -------------------------------------------------- QuantileSketch

std::size_t
QuantileSketch::indexOf(double x)
{
    int exp = 0;
    double mant = std::frexp(x, &exp); // mant in [0.5, 1)
    exp = std::clamp(exp, kMinExp, kMaxExp);
    auto sub = static_cast<int>((mant - 0.5) * 2.0 * kSubBuckets);
    sub = std::clamp(sub, 0, kSubBuckets - 1);
    return static_cast<std::size_t>(exp - kMinExp) * kSubBuckets +
           static_cast<std::size_t>(sub);
}

double
QuantileSketch::bucketValue(std::size_t index)
{
    int exp = static_cast<int>(index / kSubBuckets) + kMinExp;
    auto sub = static_cast<double>(index % kSubBuckets);
    double mant = 0.5 + sub / (2.0 * kSubBuckets);
    return std::ldexp(mant, exp);
}

void
QuantileSketch::add(double x, std::uint64_t weight)
{
    if (!std::isfinite(x))
        return;
    _count += weight;
    _sum += x * static_cast<double>(weight);
    _min = std::min(_min, x);
    _max = std::max(_max, x);
    if (x <= 0.0) {
        _zeroCount += weight;
        return;
    }
    std::size_t idx = indexOf(x);
    if (idx >= _buckets.size())
        _buckets.resize(idx + 1, 0);
    _buckets[idx] += weight;
}

void
QuantileSketch::reset()
{
    *this = QuantileSketch{};
}

void
QuantileSketch::merge(const QuantileSketch &other)
{
    if (other._count == 0)
        return;
    if (other._buckets.size() > _buckets.size())
        _buckets.resize(other._buckets.size(), 0);
    for (std::size_t i = 0; i < other._buckets.size(); ++i)
        _buckets[i] += other._buckets[i];
    _zeroCount += other._zeroCount;
    _count += other._count;
    _sum += other._sum;
    _min = std::min(_min, other._min);
    _max = std::max(_max, other._max);
}

double
QuantileSketch::quantile(double q) const
{
    TF_ASSERT(q >= 0.0 && q <= 1.0, "quantile out of range");
    if (_count == 0)
        return 0.0;
    auto rank = static_cast<std::uint64_t>(
        q * static_cast<double>(_count - 1));
    if (rank < _zeroCount)
        return std::min(_min, 0.0);
    std::uint64_t seen = _zeroCount;
    for (std::size_t i = 0; i < _buckets.size(); ++i) {
        seen += _buckets[i];
        if (seen > rank)
            return std::clamp(bucketValue(i), _min, _max);
    }
    return _max;
}

QuantileSketch
QuantileSketch::delta(const QuantileSketch &prev) const
{
    TF_ASSERT(_count >= prev._count, "sketch delta: count went backwards");
    QuantileSketch out;
    if (_count == prev._count)
        return out;
    out._count = _count - prev._count;
    out._zeroCount = _zeroCount - prev._zeroCount;
    out._sum = _sum - prev._sum;
    out._buckets.assign(_buckets.begin(), _buckets.end());
    for (std::size_t i = 0; i < prev._buckets.size(); ++i) {
        TF_ASSERT(out._buckets[i] >= prev._buckets[i],
                  "sketch delta: bucket went backwards");
        out._buckets[i] -= prev._buckets[i];
    }
    // Exact per-window extrema are gone once samples fold into
    // buckets; use the occupied bucket edges so quantile()'s clamp
    // stays sound (lower edge of the lowest bucket, upper edge of
    // the highest).
    out._min = out._zeroCount ? std::min(_min, 0.0)
                              : std::numeric_limits<double>::infinity();
    out._max = out._zeroCount ? 0.0
                              : -std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < out._buckets.size(); ++i) {
        if (!out._buckets[i])
            continue;
        out._min = std::min(out._min, bucketValue(i));
        out._max = std::max(out._max, bucketValue(i + 1));
    }
    out._min = std::max(out._min, _min);
    out._max = std::min(out._max, _max);
    return out;
}

// --------------------------------------------------------- StatSet

void
StatSet::record(const std::string &name, double value,
                const std::string &unit, const std::string &desc)
{
    _entries.push_back(StatEntry{name, desc, unit, value});
}

void
StatSet::attach(const std::string &name, Counter &c,
                const std::string &unit, const std::string &desc)
{
    _attached.push_back(Attachment{name, desc, unit, &c, {}});
}

void
StatSet::attach(const std::string &name, Summary &s,
                const std::string &unit, const std::string &desc)
{
    _attached.push_back(Attachment{name, desc, unit, &s, {}});
}

void
StatSet::attach(const std::string &name, SampleStat &s,
                const std::string &unit, const std::string &desc)
{
    _attached.push_back(Attachment{name, desc, unit, &s, {}});
}

void
StatSet::attach(const std::string &name, Histogram &h,
                const std::string &unit, const std::string &desc)
{
    _attached.push_back(Attachment{name, desc, unit, &h, {}});
}

void
StatSet::attach(const std::string &name, QuantileSketch &q,
                const std::string &unit, const std::string &desc)
{
    _attached.push_back(Attachment{name, desc, unit, &q, {}});
}

void
StatSet::resetAll()
{
    _entries.clear();
    for (auto &a : _attached) {
        if (a.frozen.index() != 0) {
            // Frozen copies are snapshots; resetting them would lose
            // the only data left. Drop the freeze instead so a later
            // freeze() re-captures post-reset state -- only valid
            // while the live object is still alive, which is the
            // warmup/measure case resetAll() exists for.
            a.frozen = FrozenStat{};
        }
        std::visit([](auto *stat) { stat->reset(); }, a.live);
    }
}

void
StatSet::freeze()
{
    for (auto &a : _attached) {
        if (a.frozen.index() != 0)
            continue; // already frozen
        std::visit([&a](auto *stat) { a.frozen = *stat; }, a.live);
    }
}

template <typename Fn>
void
StatSet::visitAttachment(const Attachment &a, Fn &&fn) const
{
    if (a.frozen.index() != 0) {
        std::visit(
            [&](const auto &stat) {
                if constexpr (!std::is_same_v<
                                  std::decay_t<decltype(stat)>,
                                  std::monostate>)
                    fn(stat);
            },
            a.frozen);
    } else {
        std::visit([&](const auto *stat) { fn(*stat); }, a.live);
    }
}

std::vector<StatEntry>
StatSet::snapshot() const
{
    std::vector<StatEntry> rows = _entries;
    auto row = [&rows](const std::string &name, double v,
                       const std::string &unit,
                       const std::string &desc) {
        rows.push_back(StatEntry{name, desc, unit, v});
    };
    for (const auto &a : _attached) {
        visitAttachment(a, [&](const auto &stat) {
            using T = std::decay_t<decltype(stat)>;
            if constexpr (std::is_same_v<T, Counter>) {
                row(a.name, static_cast<double>(stat.value()), a.unit,
                    a.desc);
            } else if constexpr (std::is_same_v<T, Summary>) {
                row(a.name + ".count",
                    static_cast<double>(stat.count()), "", a.desc);
                row(a.name + ".mean", stat.mean(), a.unit, "");
                row(a.name + ".min", stat.min(), a.unit, "");
                row(a.name + ".max", stat.max(), a.unit, "");
                row(a.name + ".stddev", stat.stddev(), a.unit, "");
            } else if constexpr (std::is_same_v<T, SampleStat> ||
                                 std::is_same_v<T, QuantileSketch>) {
                row(a.name + ".count",
                    static_cast<double>(stat.count()), "", a.desc);
                row(a.name + ".mean", stat.mean(), a.unit, "");
                row(a.name + ".p50", stat.quantile(0.50), a.unit, "");
                row(a.name + ".p95", stat.quantile(0.95), a.unit, "");
                row(a.name + ".p99", stat.quantile(0.99), a.unit, "");
            } else if constexpr (std::is_same_v<T, Histogram>) {
                row(a.name + ".count",
                    static_cast<double>(stat.count()), "", a.desc);
                row(a.name + ".underflow",
                    static_cast<double>(stat.underflow()), "", "");
                row(a.name + ".overflow",
                    static_cast<double>(stat.overflow()), "", "");
            }
        });
    }
    return rows;
}

void
StatSet::print(std::ostream &os) const
{
    for (const auto &e : snapshot()) {
        os << std::left << std::setw(44) << (_owner + "." + e.name)
           << ' ' << std::setw(16) << e.value << ' ' << std::setw(8)
           << e.unit;
        if (!e.desc.empty())
            os << " # " << e.desc;
        os << '\n';
    }
}

namespace {

void
writeDistribution(JsonWriter &w, std::uint64_t count, double mean,
                  double mn, double mx, const double *stddev,
                  const std::function<double(double)> &quantile)
{
    w.beginObject();
    w.field("count", count);
    w.field("mean", mean);
    w.field("min", mn);
    w.field("max", mx);
    if (stddev != nullptr)
        w.field("stddev", *stddev);
    if (quantile) {
        w.field("p50", quantile(0.50));
        w.field("p90", quantile(0.90));
        w.field("p95", quantile(0.95));
        w.field("p99", quantile(0.99));
    }
    w.endObject();
}

} // namespace

void
StatSet::writeJson(JsonWriter &w) const
{
    w.beginObject();
    for (const auto &a : _attached) {
        w.name(a.name);
        visitAttachment(a, [&](const auto &stat) {
            using T = std::decay_t<decltype(stat)>;
            if constexpr (std::is_same_v<T, Counter>) {
                w.value(stat.value());
            } else if constexpr (std::is_same_v<T, Summary>) {
                double sd = stat.stddev();
                writeDistribution(w, stat.count(), stat.mean(),
                                  stat.min(), stat.max(), &sd, {});
            } else if constexpr (std::is_same_v<T, SampleStat>) {
                double sd = stat.stddev();
                writeDistribution(
                    w, stat.count(), stat.mean(), stat.min(),
                    stat.max(), &sd,
                    [&stat](double q) { return stat.quantile(q); });
            } else if constexpr (std::is_same_v<T, QuantileSketch>) {
                writeDistribution(
                    w, stat.count(), stat.mean(), stat.min(),
                    stat.max(), nullptr,
                    [&stat](double q) { return stat.quantile(q); });
            } else if constexpr (std::is_same_v<T, Histogram>) {
                w.beginObject();
                w.field("count", stat.count());
                w.field("underflow", stat.underflow());
                w.field("overflow", stat.overflow());
                w.name("buckets");
                w.beginArray();
                for (std::size_t i = 0; i < stat.buckets(); ++i) {
                    if (stat.bucket(i) == 0)
                        continue; // sparse: zero rows carry no info
                    w.beginArray();
                    w.value(stat.bucketLo(i));
                    w.value(stat.bucketHi(i));
                    w.value(stat.bucket(i));
                    w.endArray();
                }
                w.endArray();
                w.endObject();
            }
        });
    }
    for (const auto &e : _entries)
        w.field(e.name, e.value);
    w.endObject();
}

// --------------------------------------------------- StatsRegistry

StatSet &
StatsRegistry::at(const std::string &path)
{
    TF_ASSERT(!path.empty(), "empty stats path");
    auto it = _sets.find(path);
    if (it == _sets.end())
        it = _sets.emplace(path, std::make_unique<StatSet>(path)).first;
    return *it->second;
}

const StatSet *
StatsRegistry::find(const std::string &path) const
{
    auto it = _sets.find(path);
    return it == _sets.end() ? nullptr : it->second.get();
}

std::vector<std::string>
StatsRegistry::paths() const
{
    std::vector<std::string> out;
    out.reserve(_sets.size());
    for (const auto &[path, set] : _sets)
        out.push_back(path);
    return out;
}

void
StatsRegistry::resetAll(const std::string &prefix)
{
    for (auto &[path, set] : _sets) {
        if (!prefix.empty() && path != prefix &&
            path.compare(0, prefix.size() + 1, prefix + ".") != 0)
            continue;
        set->resetAll();
    }
}

void
StatsRegistry::freezeAll()
{
    for (auto &[path, set] : _sets)
        set->freeze();
}

void
StatsRegistry::adopt(StatsRegistry &&other)
{
    for (auto &[path, set] : other._sets) {
        set->freeze();
        bool inserted = _sets.emplace(path, std::move(set)).second;
        TF_ASSERT(inserted,
                  "adopt: stat path '%s' already registered",
                  path.c_str());
    }
    other._sets.clear();
}

void
StatsRegistry::print(std::ostream &os) const
{
    for (const auto &[path, set] : _sets)
        set->print(os);
}

void
StatsRegistry::writeJson(JsonWriter &w) const
{
    w.beginObject();
    for (const auto &[path, set] : _sets) {
        w.name(path);
        set->writeJson(w);
    }
    w.endObject();
}

std::string
StatsRegistry::toJson(bool pretty) const
{
    std::ostringstream oss;
    JsonWriter w(oss, pretty);
    writeJson(w);
    return oss.str();
}

} // namespace tf::sim
