/**
 * @file
 * Statistics collection: counters, distributions, CDFs, quantile
 * sketches, and the hierarchical stats registry.
 *
 * Benches use these to print the rows/series of the paper's figures
 * and -- since the telemetry subsystem -- to export every component's
 * statistics as one machine-readable JSON document. Components attach
 * their live stat objects to a StatSet; StatSets register with a
 * StatsRegistry under a dotted component path ("tflow.llc.ch0.txA"),
 * and the registry serialises the whole tree deterministically so two
 * same-seed runs produce byte-identical output.
 */

#ifndef TF_SIM_STATS_HH
#define TF_SIM_STATS_HH

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <variant>
#include <vector>

namespace tf::sim {

class JsonWriter;

/** Monotonically increasing event counter. */
class Counter
{
  public:
    Counter() = default;

    void inc(std::uint64_t n = 1) { _value += n; }
    std::uint64_t value() const { return _value; }
    void reset() { _value = 0; }

  private:
    std::uint64_t _value = 0;
};

/**
 * Running summary of a stream of samples: count / mean / min / max /
 * stddev, computed online (Welford) with O(1) memory.
 */
class Summary
{
  public:
    void add(double x);
    void reset();

    std::uint64_t count() const { return _count; }
    double mean() const { return _count ? _mean : 0.0; }
    double min() const { return _count ? _min : 0.0; }
    double max() const { return _count ? _max : 0.0; }
    double variance() const;
    double stddev() const;
    double total() const { return _sum; }

  private:
    std::uint64_t _count = 0;
    double _mean = 0.0;
    double _m2 = 0.0;
    double _sum = 0.0;
    double _min = std::numeric_limits<double>::infinity();
    double _max = -std::numeric_limits<double>::infinity();
};

/**
 * Full sample store for quantiles and CDF output. Used for latency
 * distributions (e.g. the Memcached GET latency CDF of Fig. 8).
 */
class SampleStat
{
  public:
    void add(double x);
    void reset();

    std::uint64_t count() const { return _summary.count(); }
    double mean() const { return _summary.mean(); }
    double min() const { return _summary.min(); }
    double max() const { return _summary.max(); }
    double stddev() const { return _summary.stddev(); }

    /** Quantile in [0, 1]; e.g. quantile(0.9) is the p90. */
    double quantile(double q) const;

    /** Emit "value cumulative_fraction" rows at @p points resolution. */
    void writeCdf(std::ostream &os, std::size_t points = 100) const;

    const std::vector<double> &samples() const { return _samples; }

  private:
    mutable std::vector<double> _samples;
    mutable bool _sorted = true;
    Summary _summary;

    void ensureSorted() const;
};

/** Fixed-width-bucket histogram over [lo, hi) with under/overflow. */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t buckets);

    void add(double x, std::uint64_t weight = 1);
    void reset();

    std::uint64_t count() const { return _count; }
    std::uint64_t bucket(std::size_t i) const { return _buckets.at(i); }
    std::size_t buckets() const { return _buckets.size(); }
    double bucketLo(std::size_t i) const;
    double bucketHi(std::size_t i) const;
    std::uint64_t underflow() const { return _under; }
    std::uint64_t overflow() const { return _over; }

  private:
    double _lo;
    double _hi;
    double _width;
    std::vector<std::uint64_t> _buckets;
    std::uint64_t _under = 0;
    std::uint64_t _over = 0;
    std::uint64_t _count = 0;
};

/**
 * HDR-style log-linear quantile sketch: O(1) memory per sample
 * stream, bounded relative error, deterministic. Values map into
 * geometric octaves split into kSubBuckets linear sub-buckets
 * (relative error <= 1/kSubBuckets ~= 3%), so hot-path components
 * (crossing stages, C1 master) can export latency quantiles without
 * storing millions of samples. Negative and zero values land in a
 * dedicated zero bucket.
 */
class QuantileSketch
{
  public:
    static constexpr int kSubBuckets = 32;
    /** frexp exponent range tracked exactly; outliers clamp. */
    static constexpr int kMinExp = -64;
    static constexpr int kMaxExp = 64;

    void add(double x, std::uint64_t weight = 1);
    void reset();

    /**
     * Fold @p other into this sketch. Buckets share a fixed global
     * layout, so merging is bucket-wise addition: commutative and
     * associative up to the floating-point _sum, and a merge of N
     * shards is bucket-exact against the unsharded sketch (the
     * --jobs trace-attribution merge relies on this).
     */
    void merge(const QuantileSketch &other);

    std::uint64_t count() const { return _count; }
    double min() const { return _count ? _min : 0.0; }
    double max() const { return _count ? _max : 0.0; }
    double mean() const
    {
        return _count ? _sum / static_cast<double>(_count) : 0.0;
    }

    /**
     * Quantile in [0, 1]: representative (lower edge) of the bucket
     * holding the q-th sample, clamped to the exact observed
     * min/max. Monotone in q by construction.
     */
    double quantile(double q) const;

    /**
     * Bucket-wise difference against an earlier snapshot of the same
     * stream: the returned sketch holds exactly the samples added
     * since @p prev was copied, so successive snapshots of a live
     * sketch yield per-window distributions without per-sample
     * storage. @p prev must be a prefix of this sketch (same stream,
     * taken earlier); counts going backwards are a logic error. The
     * delta's min/max are bucket edges, not exact sample values --
     * the per-window quantile clamp is correspondingly coarser.
     */
    QuantileSketch delta(const QuantileSketch &prev) const;

  private:
    std::vector<std::uint64_t> _buckets; ///< lazily sized
    std::uint64_t _zeroCount = 0;
    std::uint64_t _count = 0;
    double _sum = 0.0;
    double _min = std::numeric_limits<double>::infinity();
    double _max = -std::numeric_limits<double>::infinity();

    static std::size_t indexOf(double x);
    static double bucketValue(std::size_t index);
};

/** A named, documented stat for grouped reporting. */
struct StatEntry
{
    std::string name;
    std::string desc;
    std::string unit;
    double value;
};

/**
 * Collects a component's statistics for grouped reporting.
 *
 * Two kinds of content coexist:
 *  - recorded rows (record()): point-in-time scalar snapshots, the
 *    pre-telemetry API kept for ad-hoc reporting;
 *  - attached stats (attach()): live references to the component's
 *    own Counter/Summary/SampleStat/Histogram/QuantileSketch members,
 *    read at export time so they are never stale.
 *
 * resetAll() clears recorded rows and resets every attached stat --
 * benches call it between warmup and measured phases. freeze() deep-
 * copies attached stats so the owning component may be destroyed
 * before export (scenario beds are torn down per data point).
 */
class StatSet
{
  public:
    explicit StatSet(std::string owner) : _owner(std::move(owner)) {}

    void record(const std::string &name, double value,
                const std::string &unit = "",
                const std::string &desc = "");

    void attach(const std::string &name, Counter &c,
                const std::string &unit = "",
                const std::string &desc = "");
    void attach(const std::string &name, Summary &s,
                const std::string &unit = "",
                const std::string &desc = "");
    void attach(const std::string &name, SampleStat &s,
                const std::string &unit = "",
                const std::string &desc = "");
    void attach(const std::string &name, Histogram &h,
                const std::string &unit = "",
                const std::string &desc = "");
    void attach(const std::string &name, QuantileSketch &q,
                const std::string &unit = "",
                const std::string &desc = "");

    /** Reset every attached stat and drop recorded snapshot rows. */
    void resetAll();

    /**
     * Replace live references with deep copies of their current
     * values. After this the owning component may die; exports keep
     * working. Idempotent.
     */
    void freeze();

    const std::vector<StatEntry> &entries() const { return _entries; }
    const std::string &owner() const { return _owner; }
    std::size_t attachedCount() const { return _attached.size(); }

    /**
     * Flatten recorded rows plus attached stats into scalar rows
     * (summaries/samples/sketches expand to .count/.mean/.p50/...).
     */
    std::vector<StatEntry> snapshot() const;

    /** Print "owner.name value unit # desc" rows (snapshot form). */
    void print(std::ostream &os) const;

    /** Emit this set as one JSON object (attached + recorded). */
    void writeJson(JsonWriter &w) const;

  private:
    using LiveStat = std::variant<Counter *, Summary *, SampleStat *,
                                  Histogram *, QuantileSketch *>;
    using FrozenStat =
        std::variant<std::monostate, Counter, Summary, SampleStat,
                     Histogram, QuantileSketch>;

    struct Attachment
    {
        std::string name;
        std::string desc;
        std::string unit;
        LiveStat live;
        FrozenStat frozen;
    };

    template <typename Fn> void visitAttachment(const Attachment &a,
                                                Fn &&fn) const;

    std::string _owner;
    std::vector<StatEntry> _entries;
    std::vector<Attachment> _attached;
};

/**
 * Hierarchical stats registry: one StatSet per dotted component path.
 * Paths are kept sorted (std::map) so iteration -- and therefore the
 * JSON export -- is deterministic regardless of registration order.
 */
class StatsRegistry
{
  public:
    /** Get-or-create the StatSet registered under @p path. */
    StatSet &at(const std::string &path);

    /** Lookup without creating; nullptr when absent. */
    const StatSet *find(const std::string &path) const;

    std::size_t size() const { return _sets.size(); }

    /** Registered paths, sorted. */
    std::vector<std::string> paths() const;

    /**
     * resetAll() on every registered set (warmup/measure boundary).
     * A non-empty @p prefix restricts the reset to @p prefix itself
     * and the "<prefix>.*" subtree, so sets frozen from
     * already-destroyed components elsewhere stay untouched.
     */
    void resetAll(const std::string &prefix = "");

    /** freeze() every registered set. */
    void freezeAll();

    /**
     * Move every set of @p other into this registry, freezing each
     * first so no live component references cross over. Paths must
     * not collide with existing ones (TF_ASSERT). Lets independent
     * per-point registries — filled concurrently by the bench
     * harness — merge into one deterministic export: the sorted map
     * makes the result independent of adoption order.
     */
    void adopt(StatsRegistry &&other);

    /** Print every set, path-prefixed, in path order. */
    void print(std::ostream &os) const;

    /** One JSON object: { "<path>": { ...set... }, ... }. */
    void writeJson(JsonWriter &w) const;

    /** Convenience: the full registry as a JSON string. */
    std::string toJson(bool pretty = true) const;

  private:
    std::map<std::string, std::unique_ptr<StatSet>> _sets;
};

} // namespace tf::sim

#endif // TF_SIM_STATS_HH
