/**
 * @file
 * Statistics collection: counters, distributions and CDFs.
 *
 * Benches use these to print the rows/series of the paper's figures.
 * Stats can optionally be registered with a StatSet so a whole
 * component's statistics print together.
 */

#ifndef TF_SIM_STATS_HH
#define TF_SIM_STATS_HH

#include <cstdint>
#include <limits>
#include <ostream>
#include <string>
#include <vector>

namespace tf::sim {

/** Monotonically increasing event counter. */
class Counter
{
  public:
    Counter() = default;

    void inc(std::uint64_t n = 1) { _value += n; }
    std::uint64_t value() const { return _value; }
    void reset() { _value = 0; }

  private:
    std::uint64_t _value = 0;
};

/**
 * Running summary of a stream of samples: count / mean / min / max /
 * stddev, computed online (Welford) with O(1) memory.
 */
class Summary
{
  public:
    void add(double x);
    void reset();

    std::uint64_t count() const { return _count; }
    double mean() const { return _count ? _mean : 0.0; }
    double min() const { return _count ? _min : 0.0; }
    double max() const { return _count ? _max : 0.0; }
    double variance() const;
    double stddev() const;
    double total() const { return _sum; }

  private:
    std::uint64_t _count = 0;
    double _mean = 0.0;
    double _m2 = 0.0;
    double _sum = 0.0;
    double _min = std::numeric_limits<double>::infinity();
    double _max = -std::numeric_limits<double>::infinity();
};

/**
 * Full sample store for quantiles and CDF output. Used for latency
 * distributions (e.g. the Memcached GET latency CDF of Fig. 8).
 */
class SampleStat
{
  public:
    void add(double x);
    void reset();

    std::uint64_t count() const { return _summary.count(); }
    double mean() const { return _summary.mean(); }
    double min() const { return _summary.min(); }
    double max() const { return _summary.max(); }
    double stddev() const { return _summary.stddev(); }

    /** Quantile in [0, 1]; e.g. quantile(0.9) is the p90. */
    double quantile(double q) const;

    /** Emit "value cumulative_fraction" rows at @p points resolution. */
    void writeCdf(std::ostream &os, std::size_t points = 100) const;

    const std::vector<double> &samples() const { return _samples; }

  private:
    mutable std::vector<double> _samples;
    mutable bool _sorted = true;
    Summary _summary;

    void ensureSorted() const;
};

/** Fixed-width-bucket histogram over [lo, hi) with under/overflow. */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t buckets);

    void add(double x, std::uint64_t weight = 1);
    void reset();

    std::uint64_t count() const { return _count; }
    std::uint64_t bucket(std::size_t i) const { return _buckets.at(i); }
    std::size_t buckets() const { return _buckets.size(); }
    double bucketLo(std::size_t i) const;
    double bucketHi(std::size_t i) const;
    std::uint64_t underflow() const { return _under; }
    std::uint64_t overflow() const { return _over; }

  private:
    double _lo;
    double _hi;
    double _width;
    std::vector<std::uint64_t> _buckets;
    std::uint64_t _under = 0;
    std::uint64_t _over = 0;
    std::uint64_t _count = 0;
};

/** A named, documented stat for grouped reporting. */
struct StatEntry
{
    std::string name;
    std::string desc;
    std::string unit;
    double value;
};

/** Collects name/value rows from a component and pretty-prints them. */
class StatSet
{
  public:
    explicit StatSet(std::string owner) : _owner(std::move(owner)) {}

    void record(const std::string &name, double value,
                const std::string &unit = "",
                const std::string &desc = "");

    const std::vector<StatEntry> &entries() const { return _entries; }
    const std::string &owner() const { return _owner; }

    /** Print "owner.name value unit # desc" rows. */
    void print(std::ostream &os) const;

  private:
    std::string _owner;
    std::vector<StatEntry> _entries;
};

} // namespace tf::sim

#endif // TF_SIM_STATS_HH
