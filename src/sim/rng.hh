/**
 * @file
 * Deterministic random number generation for the simulator.
 *
 * Every stochastic component takes an explicit Rng (or a seed) so runs
 * are reproducible. The generator is xoshiro256**, which is fast and has
 * no observable bias for the distributions used here.
 *
 * ZipfGenerator reproduces the key-popularity model used in the paper's
 * Memcached evaluation (Section VI-E): keys drawn from a Zipf
 * distribution with configurable exponent, following Breslau et al.
 */

#ifndef TF_SIM_RNG_HH
#define TF_SIM_RNG_HH

#include <cstdint>
#include <vector>

namespace tf::sim {

/** xoshiro256** pseudo-random generator with distribution helpers. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x1234'5678'9abc'def0ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). @pre n > 0. */
    std::uint64_t below(std::uint64_t n);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** Bernoulli trial with probability @p p of true. */
    bool chance(double p);

    /** Exponential variate with mean @p mean. */
    double exponential(double mean);

    /** Log-normal variate with parameters of the underlying normal. */
    double logNormal(double mu, double sigma);

    /** Standard normal variate (Box-Muller). */
    double normal();

    /** Normal variate with given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Bounded Pareto variate with shape @p alpha on [lo, hi]. */
    double boundedPareto(double alpha, double lo, double hi);

  private:
    std::uint64_t _s[4];
    bool _haveSpare = false;
    double _spare = 0.0;
};

/**
 * Zipf-distributed integers over [0, n) via rejection-inversion
 * (Hormann & Derflinger), O(1) per sample for any n and exponent.
 */
class ZipfGenerator
{
  public:
    /**
     * @param n number of distinct items (ranks 1..n).
     * @param theta Zipf exponent (1.0 in the paper's Memcached setup).
     */
    ZipfGenerator(std::uint64_t n, double theta);

    /** Draw a rank in [0, n); rank 0 is the most popular item. */
    std::uint64_t operator()(Rng &rng) const;

    std::uint64_t items() const { return _n; }
    double theta() const { return _theta; }

  private:
    std::uint64_t _n;
    double _theta;
    double _hIntegralX1;
    double _hIntegralNumItems;
    double _s;

    double hIntegral(double x) const;
    double h(double x) const;
    double hIntegralInverse(double x) const;
};

} // namespace tf::sim

#endif // TF_SIM_RNG_HH
