#include "sim/json.hh"

#include <cmath>
#include <cstdio>

#include "sim/logging.hh"

namespace tf::sim {

JsonWriter::JsonWriter(std::ostream &os, bool pretty)
    : _os(os), _pretty(pretty)
{
}

void
JsonWriter::newline()
{
    if (!_pretty)
        return;
    _os << '\n';
    for (std::size_t i = 0; i < _stack.size(); ++i)
        _os << "  ";
}

void
JsonWriter::beforeValue()
{
    if (_stack.empty())
        return;
    Frame &top = _stack.back();
    if (top.isObject) {
        TF_ASSERT(_pendingName, "object value without a key");
        _pendingName = false;
        return;
    }
    if (top.children++ > 0)
        _os << ',';
    newline();
}

void
JsonWriter::name(const std::string &key)
{
    TF_ASSERT(!_stack.empty() && _stack.back().isObject,
              "name() outside an object");
    TF_ASSERT(!_pendingName, "two name() calls in a row");
    if (_stack.back().children++ > 0)
        _os << ',';
    newline();
    writeString(key);
    _os << (_pretty ? ": " : ":");
    _pendingName = true;
}

void
JsonWriter::beginObject()
{
    beforeValue();
    _os << '{';
    _stack.push_back(Frame{true});
}

void
JsonWriter::endObject()
{
    TF_ASSERT(!_stack.empty() && _stack.back().isObject,
              "endObject() outside an object");
    bool hadChildren = _stack.back().children > 0;
    _stack.pop_back();
    if (hadChildren)
        newline();
    _os << '}';
}

void
JsonWriter::beginArray()
{
    beforeValue();
    _os << '[';
    _stack.push_back(Frame{false});
}

void
JsonWriter::endArray()
{
    TF_ASSERT(!_stack.empty() && !_stack.back().isObject,
              "endArray() outside an array");
    bool hadChildren = _stack.back().children > 0;
    _stack.pop_back();
    if (hadChildren)
        newline();
    _os << ']';
}

void
JsonWriter::writeString(const std::string &s)
{
    _os << '"';
    for (char c : s) {
        switch (c) {
          case '"':
            _os << "\\\"";
            break;
          case '\\':
            _os << "\\\\";
            break;
          case '\n':
            _os << "\\n";
            break;
          case '\t':
            _os << "\\t";
            break;
          case '\r':
            _os << "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                _os << buf;
            } else {
                _os << c;
            }
        }
    }
    _os << '"';
}

std::string
JsonWriter::formatDouble(double v)
{
    if (!std::isfinite(v))
        return "null";
    // Integers up to 2^53 print without an exponent or fraction so
    // counters stay human-greppable.
    if (v == std::floor(v) && std::fabs(v) < 9.0e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", v);
        return buf;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

void
JsonWriter::value(const std::string &s)
{
    beforeValue();
    writeString(s);
}

void
JsonWriter::value(const char *s)
{
    value(std::string(s));
}

void
JsonWriter::value(double v)
{
    beforeValue();
    _os << formatDouble(v);
}

void
JsonWriter::value(std::uint64_t v)
{
    beforeValue();
    _os << v;
}

void
JsonWriter::value(std::int64_t v)
{
    beforeValue();
    _os << v;
}

void
JsonWriter::value(int v)
{
    beforeValue();
    _os << v;
}

void
JsonWriter::value(bool v)
{
    beforeValue();
    _os << (v ? "true" : "false");
}

void
JsonWriter::valueNull()
{
    beforeValue();
    _os << "null";
}

} // namespace tf::sim
