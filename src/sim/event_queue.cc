#include "sim/event_queue.hh"

namespace tf::sim {

void
EventQueue::deschedule(EventId id)
{
    _live.erase(id);
}

std::uint64_t
EventQueue::run(Tick limit)
{
    std::uint64_t count = 0;
    while (!_heap.empty()) {
        const Entry &top = _heap.top();
        if (top.when > limit)
            break;
        Entry e{top.when, top.prio, top.id,
                std::move(const_cast<Entry &>(top).cb)};
        _heap.pop();
        if (_live.erase(e.id) == 0)
            continue; // cancelled
        TF_ASSERT(e.when >= _now, "time went backwards");
        _now = e.when;
        ++_executed;
        ++count;
        e.cb();
    }
    if (limit != maxTick && _now < limit)
        _now = limit;
    return count;
}

std::uint64_t
EventQueue::runEvents(std::uint64_t maxEvents)
{
    std::uint64_t count = 0;
    while (!_heap.empty() && count < maxEvents) {
        Entry e{_heap.top().when, _heap.top().prio, _heap.top().id,
                std::move(const_cast<Entry &>(_heap.top()).cb)};
        _heap.pop();
        if (_live.erase(e.id) == 0)
            continue;
        _now = e.when;
        ++_executed;
        ++count;
        e.cb();
    }
    return count;
}

void
EventQueue::warp(Tick when)
{
    TF_ASSERT(when >= _now, "warping into the past");
    TF_ASSERT(_heap.empty() || _heap.top().when >= when,
              "warping past scheduled events");
    _now = when;
}

} // namespace tf::sim
