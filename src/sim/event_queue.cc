#include "sim/event_queue.hh"

#include <algorithm>

namespace tf::sim {

EventQueue::EventId
EventQueue::schedule(Tick when, Callback cb, EventPriority prio)
{
    TF_ASSERT(when >= _now, "scheduling into the past (%llu < %llu)",
              (unsigned long long)when, (unsigned long long)_now);
    std::uint32_t slot = allocSlot();
    std::uint32_t gen = _slots[slot].gen;
    _slots[slot].cb = std::move(cb);
    _heap.push_back(Entry{when, ++_nextSeq, slot, gen,
                          static_cast<std::int32_t>(prio)});
    std::push_heap(_heap.begin(), _heap.end(), Later{});
    ++_live;
    if (_heap.size() > _highWater.value())
        _highWater.inc(_heap.size() - _highWater.value());
    return makeId(slot, gen);
}

void
EventQueue::deschedule(EventId id)
{
    std::uint32_t slot = static_cast<std::uint32_t>(id >> 32);
    std::uint32_t gen = static_cast<std::uint32_t>(id);
    if (gen == 0 || slot >= _slots.size() || _slots[slot].gen != gen)
        return; // already fired, already cancelled, or never existed
    // Eager release: captured shared_ptrs die *now*, not when the dead
    // heap entry eventually reaches the top.
    _slots[slot].cb.reset();
    recycleSlot(slot);
    --_live;
    ++_dead;
    _cancelled.inc();
    maybeCompact();
    checkOccupancyBound();
}

std::uint32_t
EventQueue::allocSlot()
{
    if (!_freeSlots.empty()) {
        std::uint32_t slot = _freeSlots.back();
        _freeSlots.pop_back();
        return slot;
    }
    TF_ASSERT(_slots.size() < (1ULL << 32), "event slot space exhausted");
    _slots.emplace_back();
    return static_cast<std::uint32_t>(_slots.size() - 1);
}

void
EventQueue::recycleSlot(std::uint32_t slot)
{
    // Bump the generation so any Entry (or EventId) still referring to
    // the old incarnation reads as stale; 0 is reserved for invalid.
    if (++_slots[slot].gen == 0)
        ++_slots[slot].gen;
    _freeSlots.push_back(slot);
}

void
EventQueue::maybeCompact()
{
    if (_dead <= kCompactMinDead || _dead <= _live)
        return;
    std::erase_if(_heap, [this](const Entry &e) { return stale(e); });
    std::make_heap(_heap.begin(), _heap.end(), Later{});
    _dead = 0;
    _compactions.inc();
}

void
EventQueue::checkOccupancyBound() const
{
    TF_ASSERT(_dead <= std::max(_live, kCompactMinDead),
              "dead heap entries exceed the compaction bound "
              "(%zu dead, %zu live)",
              _dead, _live);
}

template <typename Stop>
std::uint64_t
EventQueue::drain(Tick limit, Stop stop)
{
    std::uint64_t count = 0;
    while (!_heap.empty() && !stop(count)) {
        if (_heap.front().when > limit)
            break;
        std::pop_heap(_heap.begin(), _heap.end(), Later{});
        Entry e = _heap.back();
        _heap.pop_back();
        if (stale(e)) {
            --_dead;
            continue; // cancelled; callback was freed at deschedule
        }
        // Move the winner's callback out of its slot and retire the
        // slot *before* invoking: the callback may schedule (growing
        // _slots) or deschedule reentrantly.
        Callback cb = std::move(_slots[e.slot].cb);
        _slots[e.slot].cb.reset();
        recycleSlot(e.slot);
        --_live;
        TF_ASSERT(e.when >= _now, "time went backwards");
        _now = e.when;
        _executed.inc();
        ++count;
        cb();
    }
    return count;
}

std::uint64_t
EventQueue::run(Tick limit)
{
    std::uint64_t count =
        drain(limit, [](std::uint64_t) { return false; });
    if (limit != maxTick && _now < limit)
        _now = limit;
    return count;
}

std::uint64_t
EventQueue::runEvents(std::uint64_t maxEvents)
{
    return drain(maxTick,
                 [maxEvents](std::uint64_t n) { return n >= maxEvents; });
}

Tick
EventQueue::nextEventTick()
{
    while (!_heap.empty() && stale(_heap.front())) {
        std::pop_heap(_heap.begin(), _heap.end(), Later{});
        _heap.pop_back();
        --_dead;
    }
    return _heap.empty() ? maxTick : _heap.front().when;
}

void
EventQueue::warp(Tick when)
{
    TF_ASSERT(when >= _now, "warping into the past");
    TF_ASSERT(_heap.empty() || _heap.front().when >= when,
              "warping past scheduled events");
    _now = when;
}

void
EventQueue::attachStats(StatSet &set)
{
    set.attach("executed", _executed, "events");
    set.attach("cancelled", _cancelled, "events",
               "descheduled before firing");
    set.attach("compactions", _compactions, "events",
               "dead-entry heap compaction passes");
    set.attach("heapHighWater", _highWater, "entries",
               "peak physical heap occupancy (live + dead)");
}

} // namespace tf::sim
