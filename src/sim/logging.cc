#include "sim/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "sim/trace/buffer.hh"

namespace tf::sim {

namespace {
LogLevel g_level = LogLevel::Warn;

void
emit(const char *tag, const char *fmt, std::va_list args)
{
    std::string msg = vstrprintf(fmt, args);
    std::fprintf(stderr, "%s: %s\n", tag, msg.c_str());
}
} // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

std::string
vstrprintf(const char *fmt, std::va_list args)
{
    std::va_list copy;
    va_copy(copy, args);
    int n = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    if (n < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<size_t>(n));
}

std::string
strprintf(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string s = vstrprintf(fmt, args);
    va_end(args);
    return s;
}

void
panic(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vstrprintf(fmt, args);
    va_end(args);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    // A panic is an internal bug: ship the flight recorder's last
    // in-flight spans alongside the message before dying, so a CI
    // failure carries a picture of the final microseconds. fatal()
    // (user/configuration error) deliberately does not dump.
    trace::dumpFlightRecorder(msg.c_str());
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    emit("fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (g_level < LogLevel::Warn)
        return;
    std::va_list args;
    va_start(args, fmt);
    emit("warn", fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    if (g_level < LogLevel::Inform)
        return;
    std::va_list args;
    va_start(args, fmt);
    emit("info", fmt, args);
    va_end(args);
}

void
debug(const char *fmt, ...)
{
    if (g_level < LogLevel::Debug)
        return;
    std::va_list args;
    va_start(args, fmt);
    emit("debug", fmt, args);
    va_end(args);
}

} // namespace tf::sim
