/**
 * @file
 * Minimal gem5-style logging and error reporting.
 *
 * panic()  -- internal simulator bug; aborts.
 * fatal()  -- user/configuration error; exits cleanly with an error code.
 * warn()/inform() -- status messages that never stop the simulation.
 */

#ifndef TF_SIM_LOGGING_HH
#define TF_SIM_LOGGING_HH

#include <cstdarg>
#include <string>

namespace tf::sim {

/** Verbosity levels for status messages. */
enum class LogLevel { Silent = 0, Warn = 1, Inform = 2, Debug = 3 };

/** Set the global verbosity threshold (default: Warn). */
void setLogLevel(LogLevel level);

/** Current global verbosity threshold. */
LogLevel logLevel();

/**
 * Report an internal simulator bug and abort. Never returns.
 * @param fmt printf-style format string.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user error and exit(1). Never returns.
 * @param fmt printf-style format string.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a suspicious-but-survivable condition. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report normal operating status. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report debug-level detail. */
void debug(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** printf into a std::string. */
std::string vstrprintf(const char *fmt, std::va_list args);
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace tf::sim

/**
 * Assert a simulation invariant; on failure, panic with location info.
 * Active in all build types (simulation correctness beats speed here).
 */
#define TF_ASSERT(cond, ...)                                               \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::tf::sim::panic("assertion '%s' failed at %s:%d: %s", #cond,  \
                             __FILE__, __LINE__,                           \
                             ::tf::sim::strprintf(__VA_ARGS__).c_str());   \
        }                                                                  \
    } while (0)

/**
 * Debug logging that costs one branch when filtered: the level check
 * happens before the call, so the arguments (which may themselves be
 * function calls — strrchr(), name().c_str(), ...) are never
 * evaluated unless Debug verbosity is actually enabled. Prefer this
 * over calling debug() directly on any hot path.
 */
#define TF_DEBUG(...)                                                      \
    do {                                                                   \
        if (::tf::sim::logLevel() >= ::tf::sim::LogLevel::Debug)           \
            ::tf::sim::debug(__VA_ARGS__);                                 \
    } while (0)

#endif // TF_SIM_LOGGING_HH
