/**
 * @file
 * Simulation time base.
 *
 * One tick equals one picosecond. The prototype's three mesochronous
 * clock domains all run at 401 MHz (Section V of the paper), i.e. a
 * period of ~2494 ps; picosecond resolution keeps the domain ratios and
 * serDES/FPGA-stack crossing latencies exact.
 */

#ifndef TF_SIM_TICKS_HH
#define TF_SIM_TICKS_HH

#include <cstdint>

namespace tf::sim {

/** Simulation time, in picoseconds. */
using Tick = std::uint64_t;

/** A tick value meaning "never" / "not scheduled". */
constexpr Tick maxTick = ~Tick(0);

constexpr Tick ticksPerPs = 1;
constexpr Tick ticksPerNs = 1000 * ticksPerPs;
constexpr Tick ticksPerUs = 1000 * ticksPerNs;
constexpr Tick ticksPerMs = 1000 * ticksPerUs;
constexpr Tick ticksPerSec = 1000 * ticksPerMs;

/** Convert a duration in nanoseconds to ticks. */
constexpr Tick
nanoseconds(double ns)
{
    return static_cast<Tick>(ns * static_cast<double>(ticksPerNs));
}

/** Convert a duration in microseconds to ticks. */
constexpr Tick
microseconds(double us)
{
    return static_cast<Tick>(us * static_cast<double>(ticksPerUs));
}

/** Convert a duration in milliseconds to ticks. */
constexpr Tick
milliseconds(double ms)
{
    return static_cast<Tick>(ms * static_cast<double>(ticksPerMs));
}

/** Convert a duration in seconds to ticks. */
constexpr Tick
seconds(double s)
{
    return static_cast<Tick>(s * static_cast<double>(ticksPerSec));
}

/** Convert ticks to (double) nanoseconds. */
constexpr double
toNs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(ticksPerNs);
}

/** Convert ticks to (double) microseconds. */
constexpr double
toUs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(ticksPerUs);
}

/** Convert ticks to (double) seconds. */
constexpr double
toSec(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(ticksPerSec);
}

} // namespace tf::sim

#endif // TF_SIM_TICKS_HH
