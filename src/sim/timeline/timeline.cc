#include "sim/timeline/timeline.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>

#include "sim/json.hh"
#include "sim/logging.hh"
#include "sim/trace/buffer.hh"
#include "sim/trace/export.hh"

namespace tf::sim::timeline {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

const char *
kindName(SeriesKind k)
{
    switch (k) {
    case SeriesKind::Delta:
        return "delta";
    case SeriesKind::Gauge:
        return "gauge";
    case SeriesKind::Quantile:
        return "quantile";
    }
    return "?";
}

bool
compare(double v, SloRule::Op op, double threshold)
{
    switch (op) {
    case SloRule::Op::Gt:
        return v > threshold;
    case SloRule::Op::Lt:
        return v < threshold;
    case SloRule::Op::Ge:
        return v >= threshold;
    case SloRule::Op::Le:
        return v <= threshold;
    }
    return false;
}

/** Higher values are worse for Gt/Ge rules, lower for Lt/Le. */
bool
worseThan(double a, double b, SloRule::Op op)
{
    return (op == SloRule::Op::Gt || op == SloRule::Op::Ge) ? a > b
                                                            : a < b;
}

} // namespace

const char *
opName(SloRule::Op op)
{
    switch (op) {
    case SloRule::Op::Gt:
        return ">";
    case SloRule::Op::Lt:
        return "<";
    case SloRule::Op::Ge:
        return ">=";
    case SloRule::Op::Le:
        return "<=";
    }
    return "?";
}

bool
parseOp(const std::string &s, SloRule::Op &out)
{
    if (s == ">")
        out = SloRule::Op::Gt;
    else if (s == "<")
        out = SloRule::Op::Lt;
    else if (s == ">=")
        out = SloRule::Op::Ge;
    else if (s == "<=")
        out = SloRule::Op::Le;
    else
        return false;
    return true;
}

// -------------------------------------------------------- Recorder

Recorder::Recorder(EventQueue &eq, Tick window) : _eq(eq), _window(window)
{
    TF_ASSERT(window > 0, "timeline window must be positive");
}

Recorder::~Recorder()
{
    if (_armedId != EventQueue::invalidEvent)
        _eq.deschedule(_armedId);
}

void
Recorder::addCounter(const std::string &name, const Counter &c,
                     const std::string &unit)
{
    TF_ASSERT(!_started, "register probes before start()");
    _counters.push_back(CounterProbe{name, unit, &c, c.value(), {}});
}

void
Recorder::addGauge(const std::string &name, std::function<double()> fn,
                   const std::string &unit)
{
    TF_ASSERT(!_started, "register probes before start()");
    _gauges.push_back(GaugeProbe{name, unit, std::move(fn), {}});
}

void
Recorder::addSketch(const std::string &prefix, const QuantileSketch &q,
                    const std::string &suffix, const std::string &unit)
{
    TF_ASSERT(!_started, "register probes before start()");
    _sketches.push_back(
        SketchProbe{prefix, suffix, unit, &q, q, {}, {}, {}});
}

std::vector<std::string>
Recorder::seriesNames() const
{
    std::vector<std::string> out;
    for (const auto &p : _counters)
        out.push_back(p.name);
    for (const auto &g : _gauges)
        out.push_back(g.name);
    for (const auto &s : _sketches) {
        out.push_back(s.prefix + "P50" + s.suffix);
        out.push_back(s.prefix + "P95" + s.suffix);
        out.push_back(s.prefix + "P99" + s.suffix);
    }
    std::sort(out.begin(), out.end());
    return out;
}

bool
Recorder::hasSeries(const std::string &name) const
{
    for (const auto &p : _counters)
        if (p.name == name)
            return true;
    for (const auto &g : _gauges)
        if (g.name == name)
            return true;
    for (const auto &s : _sketches)
        for (const char *q : {"P50", "P95", "P99"})
            if (s.prefix + q + s.suffix == name)
                return true;
    return false;
}

void
Recorder::addRule(const SloRule &rule)
{
    TF_ASSERT(!_started, "register rules before start()");
    RuleState rs;
    rs.rule = rule;
    rs.result.name = rule.name;
    rs.result.metric = rule.metric;
    bool resolved = false;
    for (std::size_t i = 0; i < _counters.size() && !resolved; ++i) {
        if (_counters[i].name == rule.metric) {
            rs.probeKind = 0;
            rs.probe = i;
            resolved = true;
        }
    }
    for (std::size_t i = 0; i < _gauges.size() && !resolved; ++i) {
        if (_gauges[i].name == rule.metric) {
            rs.probeKind = 1;
            rs.probe = i;
            resolved = true;
        }
    }
    for (std::size_t i = 0; i < _sketches.size() && !resolved; ++i) {
        const auto &s = _sketches[i];
        const char *qs[] = {"P50", "P95", "P99"};
        for (int q = 0; q < 3 && !resolved; ++q) {
            if (s.prefix + qs[q] + s.suffix == rule.metric) {
                rs.probeKind = 2;
                rs.probe = i;
                rs.quantile = q;
                resolved = true;
            }
        }
    }
    TF_ASSERT(resolved,
              "SLO rule '%s' references unknown metric '%s'",
              rule.name.c_str(), rule.metric.c_str());
    TF_ASSERT(rule.forWindows >= 1, "forWindows must be >= 1");
    _rules.push_back(std::move(rs));
}

void
Recorder::noteFault(const std::string &label, Tick begin, Tick end)
{
    _faults.push_back(FaultWindow{label, begin, std::max(begin, end)});
}

void
Recorder::start()
{
    TF_ASSERT(!_started && !_finished, "start() called twice");
    _started = true;
    ensureArmed();
}

void
Recorder::arm(Tick target)
{
    _armedId = _eq.schedule(
        target, [this] { onBoundary(); }, EventPriority::ClockEdge);
    _armedAt = target;
}

void
Recorder::armFromQueue()
{
    Tick next = _eq.nextEventTick();
    if (next == maxTick)
        return; // queue drained: disarm, wake hook re-arms on merge
    Tick target = (next / _window + 1) * _window;
    if (target < _closedUpTo + _window)
        target = _closedUpTo + _window;
    arm(target);
}

void
Recorder::ensureArmed()
{
    if (!_started || _finished)
        return;
    Tick next = _eq.nextEventTick();
    if (next == maxTick)
        return;
    Tick target = (next / _window + 1) * _window;
    if (target < _closedUpTo + _window)
        target = _closedUpTo + _window;
    if (_armedId != EventQueue::invalidEvent) {
        // Already sampling at or before the needed boundary; the
        // firing handler re-arms forward on its own.
        if (_armedAt <= target)
            return;
        _eq.deschedule(_armedId);
        _armedId = EventQueue::invalidEvent;
    }
    arm(target);
}

void
Recorder::onBoundary()
{
    _armedId = EventQueue::invalidEvent;
    closeTo(_eq.now());
    armFromQueue();
}

void
Recorder::closeTo(Tick boundary)
{
    TF_ASSERT(boundary > _closedUpTo && boundary % _window == 0,
              "timeline window boundary out of order");
    // The sampler is armed at the boundary of the window holding the
    // queue's next pending event whenever the queue is non-empty, so
    // all activity since the last close lies in the batch's *final*
    // window; intermediate windows (idle gaps) are genuinely empty.
    std::size_t gap = static_cast<std::size_t>(
        (boundary - _closedUpTo) / _window);
    for (auto &p : _counters) {
        for (std::size_t i = 1; i < gap; ++i)
            p.values.push_back(0.0);
        std::uint64_t cur = p.counter->value();
        p.values.push_back(static_cast<double>(cur - p.last));
        p.last = cur;
    }
    for (auto &g : _gauges) {
        // No events ran during a gap window, so the gauge held its
        // value across it: one sample is exact for the whole batch.
        double v = g.fn ? g.fn() : kNaN;
        for (std::size_t i = 0; i < gap; ++i)
            g.values.push_back(v);
    }
    for (auto &s : _sketches) {
        for (std::size_t i = 1; i < gap; ++i) {
            s.p50.push_back(kNaN);
            s.p95.push_back(kNaN);
            s.p99.push_back(kNaN);
        }
        QuantileSketch d = s.sketch->delta(s.last);
        if (d.count() == 0) {
            s.p50.push_back(kNaN);
            s.p95.push_back(kNaN);
            s.p99.push_back(kNaN);
        } else {
            s.p50.push_back(d.quantile(0.50));
            s.p95.push_back(d.quantile(0.95));
            s.p99.push_back(d.quantile(0.99));
        }
        s.last = *s.sketch;
    }
    for (std::size_t i = 0; i < gap; ++i) {
        Tick wStart = _closedUpTo + static_cast<Tick>(i) * _window;
        evalRules(_windows + i, wStart, wStart + _window);
    }
    _windows += gap;
    _closedUpTo = boundary;
}

double
Recorder::ruleValue(const RuleState &rs, std::size_t w) const
{
    switch (rs.probeKind) {
    case 0:
        return _counters[rs.probe].values[w];
    case 1:
        return _gauges[rs.probe].values[w];
    default: {
        const auto &s = _sketches[rs.probe];
        const std::vector<double> &v =
            rs.quantile == 0 ? s.p50 : (rs.quantile == 1 ? s.p95 : s.p99);
        return v[w];
    }
    }
}

void
Recorder::evalRules(std::size_t w, Tick wStart, Tick wEnd)
{
    for (auto &rs : _rules) {
        if (wStart < rs.rule.from || wEnd > rs.rule.until) {
            rs.streak = 0;
            continue;
        }
        double v = ruleValue(rs, w);
        if (!std::isfinite(v)) {
            rs.streak = 0; // empty window: no data, no verdict
            continue;
        }
        auto &res = rs.result;
        if (res.evaluated == 0 || worseThan(v, res.worstValue, rs.rule.op))
            res.worstValue = v;
        ++res.evaluated;
        if (!compare(v, rs.rule.op, rs.rule.threshold)) {
            rs.streak = 0;
            continue;
        }
        if (++rs.streak < rs.rule.forWindows)
            continue;
        ++res.violations;
        if (res.firstViolationTick == maxTick) {
            res.firstViolationTick = wStart;
            if (rs.rule.dumpFlight && !rs.dumped) {
                rs.dumped = true;
                dumpBreach(rs);
            }
        }
    }
}

void
Recorder::dumpBreach(const RuleState &rs)
{
    // Only this LP's own buffer: it is single-writer on the calling
    // thread, so the dump is race-free even mid-run under --jobs
    // (the global dumpFlightRecorder() is reserved for a dying
    // process -- see buffer.hh).
    trace::NodeTrace node;
    node.name = _eq.trace().name().empty() ? "lp" : _eq.trace().name();
    node.events = _eq.trace().snapshot();
    if (node.events.empty())
        return;
    std::string path = _dumpDir.empty() ? "" : _dumpDir + "/";
    path += "tf_slo_" + rs.rule.name + ".json";
    std::ofstream out(path);
    if (!out)
        return;
    std::string reason = "slo breach: " + rs.rule.name + ": " +
                         rs.rule.metric + " " + opName(rs.rule.op) + " " +
                         JsonWriter::formatDouble(rs.rule.threshold);
    std::vector<trace::NodeTrace> nodes;
    nodes.push_back(std::move(node));
    trace::writeTraceEventsJson(out, nodes, reason.c_str());
    std::fprintf(stderr, "timeline: %s; flight ring dumped to %s\n",
                 reason.c_str(), path.c_str());
}

void
Recorder::finish()
{
    if (_finished)
        return;
    _finished = true;
    if (_armedId != EventQueue::invalidEvent) {
        _eq.deschedule(_armedId);
        _armedId = EventQueue::invalidEvent;
    }
    if (!_started)
        return;
    Tick now = _eq.now();
    bool residual = now > _closedUpTo;
    for (const auto &p : _counters)
        residual = residual || p.counter->value() != p.last;
    for (const auto &s : _sketches)
        residual = residual || s.sketch->count() != s.last.count();
    if (residual)
        closeTo((now / _window + 1) * _window);
    _sloResults.clear();
    for (const auto &rs : _rules) {
        SloResult res = rs.result;
        if (res.evaluated == 0)
            res.worstValue = kNaN;
        _sloResults.push_back(std::move(res));
    }
}

// -------------------------------------------------------- Timeline

double
Timeline::padValue(const Series &s)
{
    switch (s.kind) {
    case SeriesKind::Delta:
        return 0.0;
    case SeriesKind::Gauge:
        return s.values.empty() ? kNaN : s.values.back();
    case SeriesKind::Quantile:
        return kNaN;
    }
    return kNaN;
}

void
Timeline::mergeSeries(const std::string &name, SeriesKind kind,
                      const std::string &unit,
                      const std::vector<double> &values)
{
    auto it = _series.find(name);
    if (it == _series.end()) {
        _series.emplace(name, Series{kind, unit, values});
        return;
    }
    // Two recorders producing one series name is only meaningful for
    // deltas (shards of one logical counter); anything else is a
    // wiring bug.
    TF_ASSERT(it->second.kind == kind && kind == SeriesKind::Delta,
              "timeline series collision: %s", name.c_str());
    auto &dst = it->second.values;
    if (values.size() > dst.size())
        dst.resize(values.size(), 0.0);
    for (std::size_t i = 0; i < values.size(); ++i)
        dst[i] += values[i];
}

void
Timeline::adopt(const Recorder &rec, const std::string &prefix)
{
    TF_ASSERT(rec._finished, "finish() the recorder before adopt()");
    TF_ASSERT(_window == 0 || _window == rec.window(),
              "timeline window width mismatch");
    _window = rec.window();
    for (const auto &p : rec._counters)
        mergeSeries(prefix + p.name, SeriesKind::Delta, p.unit, p.values);
    for (const auto &g : rec._gauges)
        mergeSeries(prefix + g.name, SeriesKind::Gauge, g.unit, g.values);
    for (const auto &s : rec._sketches) {
        mergeSeries(prefix + s.prefix + "P50" + s.suffix,
                    SeriesKind::Quantile, s.unit, s.p50);
        mergeSeries(prefix + s.prefix + "P95" + s.suffix,
                    SeriesKind::Quantile, s.unit, s.p95);
        mergeSeries(prefix + s.prefix + "P99" + s.suffix,
                    SeriesKind::Quantile, s.unit, s.p99);
    }
    _windows = std::max(_windows, rec.windows());
    for (const auto &f : rec.faults())
        _faults.push_back(FaultWindow{prefix + f.label, f.begin, f.end});
    for (const auto &r : rec.sloResults()) {
        SloResult res = r;
        res.name = prefix + res.name;
        _slo.push_back(std::move(res));
    }
}

void
Timeline::adopt(const Timeline &other, const std::string &prefix)
{
    if (other.empty() && other._series.empty())
        return;
    TF_ASSERT(_window == 0 || other._window == 0 ||
                  _window == other._window,
              "timeline window width mismatch");
    if (_window == 0)
        _window = other._window;
    for (const auto &[name, s] : other._series)
        mergeSeries(prefix + name, s.kind, s.unit, s.values);
    _windows = std::max(_windows, other._windows);
    for (const auto &f : other._faults)
        _faults.push_back(FaultWindow{prefix + f.label, f.begin, f.end});
    for (const auto &r : other._slo) {
        SloResult res = r;
        res.name = prefix + res.name;
        _slo.push_back(std::move(res));
    }
}

double
Timeline::at(const std::string &name, std::size_t w) const
{
    auto it = _series.find(name);
    TF_ASSERT(it != _series.end(), "unknown timeline series: %s",
              name.c_str());
    if (w < it->second.values.size())
        return it->second.values[w];
    return padValue(it->second);
}

void
Timeline::writeJson(JsonWriter &w) const
{
    w.beginObject();
    w.field("windowNs",
            static_cast<std::uint64_t>(_window / ticksPerNs));
    w.field("windows", static_cast<std::uint64_t>(_windows));
    w.name("series");
    w.beginObject();
    for (const auto &[name, s] : _series) {
        w.name(name);
        w.beginObject();
        w.field("kind", kindName(s.kind));
        w.field("unit", s.unit);
        w.name("values");
        w.beginArray();
        for (std::size_t i = 0; i < _windows; ++i)
            w.value(i < s.values.size() ? s.values[i] : padValue(s));
        w.endArray();
        w.endObject();
    }
    w.endObject();
    if (!_faults.empty()) {
        auto sorted = _faults;
        std::sort(sorted.begin(), sorted.end(),
                  [](const FaultWindow &a, const FaultWindow &b) {
                      if (a.begin != b.begin)
                          return a.begin < b.begin;
                      if (a.label != b.label)
                          return a.label < b.label;
                      return a.end < b.end;
                  });
        w.name("faults");
        w.beginArray();
        for (const auto &f : sorted) {
            w.beginObject();
            w.field("label", f.label);
            w.field("beginNs", toNs(f.begin));
            w.field("endNs", toNs(f.end));
            w.endObject();
        }
        w.endArray();
    }
    if (!_slo.empty()) {
        auto sorted = _slo;
        std::sort(sorted.begin(), sorted.end(),
                  [](const SloResult &a, const SloResult &b) {
                      return a.name < b.name;
                  });
        w.name("slo");
        w.beginArray();
        for (const auto &r : sorted) {
            w.beginObject();
            w.field("name", r.name);
            w.field("metric", r.metric);
            w.field("evaluated", r.evaluated);
            w.field("violations", r.violations);
            w.field("worstValue", r.worstValue);
            w.name("firstViolationNs");
            if (r.firstViolationTick == maxTick)
                w.valueNull();
            else
                w.value(toNs(r.firstViolationTick));
            w.endObject();
        }
        w.endArray();
    }
    w.endObject();
}

} // namespace tf::sim::timeline
