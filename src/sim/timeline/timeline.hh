/**
 * @file
 * Windowed time-series telemetry over the live stats objects.
 *
 * Every metric the bench JSON exported before this subsystem was one
 * end-of-run aggregate; the phenomena the simulator exists to study
 * (fault windows, congestion onset, cache warmup) happen *during* the
 * run. A timeline::Recorder attaches to one LP's EventQueue and
 * closes fixed-width windows of simulated time, emitting per-window
 *
 *  - counter deltas   (events completed in the window),
 *  - gauge samples    (instantaneous values at the window boundary),
 *  - quantile series  (p50/p95/p99 of the samples added in the
 *                      window, via QuantileSketch::delta).
 *
 * The sampler is an ordinary event scheduled at the boundary of the
 * window containing the queue's next pending event (ClockEdge
 * priority, so boundary-tick work lands in the *new* window). When
 * the queue drains the sampler disarms itself -- it never keeps a
 * finished LP alive -- and re-arms from the engine's post-merge wake
 * hook when cross-LP traffic is delivered. Because arming depends
 * only on queue contents and the merge hook runs single-threaded on
 * the coordinator in both the serial and parallel paths, the sampled
 * series are byte-identical for any --jobs (DESIGN.md §17).
 *
 * A Recorder also evaluates declarative SLO rules (the in-sim health
 * watchdog) as windows close, and collects fault-engine windows so
 * the exporter can line a latency spike up with its injected cause.
 * Finished recorders merge into one Timeline in LP-index order for
 * the bench JSON `timeline` section and the Perfetto counter tracks.
 */

#ifndef TF_SIM_TIMELINE_TIMELINE_HH
#define TF_SIM_TIMELINE_TIMELINE_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/ticks.hh"

namespace tf::sim {
class JsonWriter;
}

namespace tf::sim::timeline {

/** How a series' per-window values were produced. */
enum class SeriesKind {
    Delta,    ///< counter increments within the window (sums on merge)
    Gauge,    ///< instantaneous sample at the window boundary
    Quantile, ///< quantile of samples added within the window (NaN if none)
};

/** One merged, window-indexed series. */
struct Series
{
    SeriesKind kind = SeriesKind::Delta;
    std::string unit;
    std::vector<double> values; ///< one per window; NaN = no data
};

/** A fault-engine dispatch, annotated onto the exported tracks. */
struct FaultWindow
{
    std::string label; ///< "<kind>:<point>"
    Tick begin = 0;
    Tick end = 0;
};

/**
 * Declarative SLO rule: "metric <op> threshold for N consecutive
 * windows within [from, until)". Declarable programmatically and
 * from the topo DSL `monitors` stanza.
 */
struct SloRule
{
    enum class Op { Gt, Lt, Ge, Le };

    std::string name;   ///< identifier; stats land under "slo.<name>"
    std::string metric; ///< a series name the owning recorder produces
    Op op = Op::Gt;
    double threshold = 0.0;
    /** Consecutive bad windows required before counting violations. */
    std::uint32_t forWindows = 1;
    Tick from = 0;        ///< evaluate windows starting at >= from
    Tick until = maxTick; ///< ... and ending at <= until
    bool dumpFlight = false; ///< dump owning LP's flight ring on 1st breach
};

/** Spelled form of an op ( ">" "<" ">=" "<=" ). */
const char *opName(SloRule::Op op);
/** Parse the spelled form; false when @p s is not an op. */
bool parseOp(const std::string &s, SloRule::Op &out);

/** End-of-run outcome of one SloRule. */
struct SloResult
{
    std::string name;
    std::string metric;
    std::uint64_t evaluated = 0;  ///< windows with data in range
    std::uint64_t violations = 0; ///< windows in a tripped streak
    /** Worst value seen in the op's bad direction; NaN if none. */
    double worstValue = 0.0;
    /** Start tick of the first tripped window; maxTick if none. */
    Tick firstViolationTick = maxTick;
};

/**
 * Per-LP windowed sampler + watchdog. Construct, register probes and
 * rules, start() before the run, finish() after it, then merge into
 * a Timeline. All methods run on the LP's own thread (or the
 * coordinator, for ensureArmed) -- never concurrently.
 */
class Recorder
{
  public:
    Recorder(EventQueue &eq, Tick window);
    ~Recorder();

    Recorder(const Recorder &) = delete;
    Recorder &operator=(const Recorder &) = delete;

    Tick window() const { return _window; }

    /** Per-window delta series of a monotonic counter. */
    void addCounter(const std::string &name, const Counter &c,
                    const std::string &unit);

    /** Boundary-sampled gauge; @p fn is called at window close. */
    void addGauge(const std::string &name, std::function<double()> fn,
                  const std::string &unit);

    /**
     * Per-window p50/p95/p99 of a live sketch, emitted as
     * "<prefix>P50<suffix>" etc. Windows with no new samples emit
     * NaN (JSON null), not a stale repeat.
     */
    void addSketch(const std::string &prefix, const QuantileSketch &q,
                   const std::string &suffix, const std::string &unit);

    /** Series names this recorder produces (sorted). */
    std::vector<std::string> seriesNames() const;
    bool hasSeries(const std::string &name) const;

    /**
     * Attach an SLO rule; rule.metric must resolve to one of this
     * recorder's series (TF_ASSERT otherwise -- the topo builder
     * validates first and reports file:line:col).
     */
    void addRule(const SloRule &rule);

    /** Directory for dumpFlight breach dumps (default: cwd). */
    void setDumpDir(const std::string &dir) { _dumpDir = dir; }

    /** Record a fault window (wired to fault::Engine::setObserver). */
    void noteFault(const std::string &label, Tick begin, Tick end);

    /** Arm the sampler. Call once, after probes are registered. */
    void start();

    /**
     * Re-arm (or pull forward) the sampler after new events were
     * delivered -- the LP wake hook. Cheap no-op when already armed
     * at the right boundary.
     */
    void ensureArmed();

    /**
     * Close the final (possibly partial) window at the queue's
     * current tick and stop sampling. Idempotent.
     */
    void finish();

    /** Windows closed so far. */
    std::size_t windows() const { return _windows; }

    const std::vector<SloResult> &sloResults() const { return _sloResults; }
    const std::vector<FaultWindow> &faults() const { return _faults; }

  private:
    friend class Timeline;

    struct CounterProbe
    {
        std::string name;
        std::string unit;
        const Counter *counter;
        std::uint64_t last = 0;
        std::vector<double> values;
    };

    struct GaugeProbe
    {
        std::string name;
        std::string unit;
        std::function<double()> fn;
        std::vector<double> values;
    };

    struct SketchProbe
    {
        std::string prefix;
        std::string suffix;
        std::string unit;
        const QuantileSketch *sketch;
        QuantileSketch last;
        std::vector<double> p50, p95, p99;
    };

    /** Resolved probe reference for rule evaluation. */
    struct RuleState
    {
        SloRule rule;
        SloResult result;
        int probeKind = 0;     ///< 0 counter, 1 gauge, 2 sketch
        std::size_t probe = 0; ///< index into the matching vector
        int quantile = 0;      ///< 0 p50, 1 p95, 2 p99 (sketch only)
        std::uint32_t streak = 0;
        bool dumped = false;
    };

    void arm(Tick target);
    void armFromQueue();
    void onBoundary();
    void closeTo(Tick boundary);
    void evalRules(std::size_t w, Tick wStart, Tick wEnd);
    double ruleValue(const RuleState &rs, std::size_t w) const;
    void dumpBreach(const RuleState &rs);

    EventQueue &_eq;
    Tick _window;
    Tick _closedUpTo = 0;
    std::size_t _windows = 0;
    bool _started = false;
    bool _finished = false;
    EventQueue::EventId _armedId = EventQueue::invalidEvent;
    Tick _armedAt = 0;
    std::string _dumpDir;

    std::vector<CounterProbe> _counters;
    std::vector<GaugeProbe> _gauges;
    std::vector<SketchProbe> _sketches;
    std::vector<RuleState> _rules;
    std::vector<SloResult> _sloResults;
    std::vector<FaultWindow> _faults;
};

/**
 * Merged, export-ready timeline: the union of every recorder's
 * series, zero/NaN-padded to a common window horizon. adopt() order
 * must be deterministic (LP-index order, then point-index order for
 * sharded bench runs); the sorted series map makes the JSON
 * independent of it anyway, but fault windows keep insertion order
 * until writeJson sorts them.
 */
class Timeline
{
  public:
    /** Window width; 0 = disabled/empty. Set on first adopt(). */
    Tick window() const { return _window; }
    std::size_t windows() const { return _windows; }
    bool empty() const { return _windows == 0; }

    /**
     * Merge a finished recorder. Same-name Delta series sum
     * window-wise (sharded counters of one logical metric);
     * same-name Gauge/Quantile series are a wiring bug (TF_ASSERT).
     * @p prefix namespaces every series/fault/slo name (bench points
     * use "p<i>.").
     */
    void adopt(const Recorder &rec, const std::string &prefix = "");

    /** Merge another timeline (per-point shards, in index order). */
    void adopt(const Timeline &other, const std::string &prefix = "");

    const std::map<std::string, Series> &series() const { return _series; }
    const std::vector<FaultWindow> &faults() const { return _faults; }
    const std::vector<SloResult> &slo() const { return _slo; }

    /**
     * Value of @p name at window @p w with the merge-time padding
     * applied (Delta 0, Gauge last-known, Quantile NaN).
     */
    double at(const std::string &name, std::size_t w) const;

    /** Emit the tf-bench-v2 "timeline" object. */
    void writeJson(JsonWriter &w) const;

    /**
     * The value a series takes past its recorded horizon: 0 for
     * deltas (nothing happened), last-known for gauges, NaN for
     * quantiles (no samples). Exporters use this to pad every series
     * to the merged window count.
     */
    static double padValue(const Series &s);

  private:
    void mergeSeries(const std::string &name, SeriesKind kind,
                     const std::string &unit,
                     const std::vector<double> &values);

    Tick _window = 0;
    std::size_t _windows = 0;
    std::map<std::string, Series> _series;
    std::vector<FaultWindow> _faults;
    std::vector<SloResult> _slo;
};

} // namespace tf::sim::timeline

#endif // TF_SIM_TIMELINE_TIMELINE_HH
