/**
 * @file
 * Base class for named simulation components.
 */

#ifndef TF_SIM_SIM_OBJECT_HH
#define TF_SIM_SIM_OBJECT_HH

#include <string>
#include <utility>

#include "sim/event_queue.hh"

namespace tf::sim {

/**
 * A named component attached to an EventQueue. Components schedule
 * their own events and expose statistics; the queue owns time.
 */
class SimObject
{
  public:
    SimObject(std::string name, EventQueue &eq)
        : _name(std::move(name)), _eq(eq)
    {}

    virtual ~SimObject() = default;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    const std::string &name() const { return _name; }
    EventQueue &eventQueue() const { return _eq; }
    Tick now() const { return _eq.now(); }

  protected:
    /** Schedule a member callback @p delay ticks from now. */
    EventQueue::EventId
    after(Tick delay, EventQueue::Callback cb,
          EventPriority prio = EventPriority::Default)
    {
        return _eq.scheduleIn(delay, std::move(cb), prio);
    }

  private:
    std::string _name;
    EventQueue &_eq;
};

} // namespace tf::sim

#endif // TF_SIM_SIM_OBJECT_HH
