/**
 * @file
 * Small-buffer callback type for the event kernel's hot path.
 *
 * Every scheduled event carries a closure. With std::function the
 * typical simulation capture (an object pointer plus a shared payload
 * and a tick or epoch) exceeds the library's tiny inline buffer and
 * costs one heap allocation per event — millions per benchmark run.
 * SmallFn widens the inline buffer so every kernel closure in this
 * codebase stays allocation-free, and keeps a heap fallback so
 * oversized captures (app-level request closures) still work.
 *
 * Semantics: move-only, nullable, void() signature. Move-only is
 * deliberate — a scheduled closure has exactly one owner (the event
 * slot), and copyability would force captured types to be copyable.
 * Callables must be nothrow-move-constructible to live inline; others
 * fall back to the heap.
 */

#ifndef TF_SIM_CALLBACK_HH
#define TF_SIM_CALLBACK_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace tf::sim {

/** Move-only `void()` callable with @p Bytes of inline storage. */
template <std::size_t Bytes>
class SmallFn
{
  public:
    SmallFn() noexcept = default;
    SmallFn(std::nullptr_t) noexcept {}

    template <typename F,
              typename D = std::decay_t<F>,
              typename = std::enable_if_t<
                  !std::is_same_v<D, SmallFn> &&
                  std::is_invocable_r_v<void, D &>>>
    SmallFn(F &&f)
    {
        if constexpr (fitsInline<D>()) {
            ::new (static_cast<void *>(_buf)) D(std::forward<F>(f));
            _ops = &inlineOps<D>;
        } else {
            *reinterpret_cast<D **>(_buf) = new D(std::forward<F>(f));
            _ops = &heapOps<D>;
        }
    }

    SmallFn(SmallFn &&other) noexcept { moveFrom(other); }

    SmallFn &
    operator=(SmallFn &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    SmallFn &
    operator=(std::nullptr_t) noexcept
    {
        reset();
        return *this;
    }

    SmallFn(const SmallFn &) = delete;
    SmallFn &operator=(const SmallFn &) = delete;

    ~SmallFn() { reset(); }

    explicit operator bool() const noexcept { return _ops != nullptr; }

    void
    operator()()
    {
        _ops->invoke(_buf);
    }

    /** Destroy the held callable (and release everything it captured). */
    void
    reset() noexcept
    {
        if (_ops) {
            _ops->destroy(_buf);
            _ops = nullptr;
        }
    }

  private:
    struct Ops
    {
        void (*invoke)(void *buf);
        /** Move the callable from src's buffer into dst's, destroy src. */
        void (*relocate)(void *src, void *dst) noexcept;
        void (*destroy)(void *buf) noexcept;
    };

    template <typename D>
    static constexpr bool
    fitsInline()
    {
        return sizeof(D) <= Bytes &&
               alignof(D) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<D>;
    }

    template <typename D>
    static constexpr Ops inlineOps = {
        [](void *buf) { (*std::launder(reinterpret_cast<D *>(buf)))(); },
        [](void *src, void *dst) noexcept {
            D *from = std::launder(reinterpret_cast<D *>(src));
            ::new (dst) D(std::move(*from));
            from->~D();
        },
        [](void *buf) noexcept {
            std::launder(reinterpret_cast<D *>(buf))->~D();
        },
    };

    template <typename D>
    static constexpr Ops heapOps = {
        [](void *buf) { (**reinterpret_cast<D **>(buf))(); },
        [](void *src, void *dst) noexcept {
            *reinterpret_cast<D **>(dst) = *reinterpret_cast<D **>(src);
        },
        [](void *buf) noexcept { delete *reinterpret_cast<D **>(buf); },
    };

    void
    moveFrom(SmallFn &other) noexcept
    {
        if (other._ops) {
            other._ops->relocate(other._buf, _buf);
            _ops = other._ops;
            other._ops = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char _buf[Bytes];
    const Ops *_ops = nullptr;
};

template <std::size_t Bytes>
inline bool
operator==(const SmallFn<Bytes> &f, std::nullptr_t) noexcept
{
    return !static_cast<bool>(f);
}

template <std::size_t Bytes>
inline bool
operator!=(const SmallFn<Bytes> &f, std::nullptr_t) noexcept
{
    return static_cast<bool>(f);
}

/**
 * The kernel's event closure type. 64 bytes of inline storage covers
 * every closure the simulation layers schedule today (largest: the C1
 * master's completion hop — an object pointer, a transaction, a
 * std::function continuation and a tick).
 */
using EventCallback = SmallFn<64>;

} // namespace tf::sim

#endif // TF_SIM_CALLBACK_HH
