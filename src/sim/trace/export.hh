/**
 * @file
 * Trace export: Perfetto JSON and latency attribution.
 *
 * A TraceCollector gathers the span events of many TraceBuffers (one
 * per node / logical process) into named node streams. Collection
 * order defines the Perfetto pid of each node, so callers collect in
 * a deterministic order (point index, LP index); with that, the
 * exported document is byte-identical for any --jobs count — the
 * same property the bench harness guarantees for its stats JSON.
 *
 * Two consumers share the collected streams:
 *  - writeJson(): Chrome/Perfetto trace-event JSON, one pid per
 *    node, one tid per stage, async "b"/"e" span pairs per
 *    transaction, globally sorted by (tick, node, append order);
 *  - attribution(): per-stage duration sketches (ns) from pairing
 *    each node's begin/end edges, plus a per-trace total, feeding
 *    the trace.attr.* metrics of the tf-bench-v1 document.
 */

#ifndef TF_SIM_TRACE_EXPORT_HH
#define TF_SIM_TRACE_EXPORT_HH

#include <array>
#include <ostream>
#include <string>
#include <vector>

#include "sim/stats.hh"
#include "sim/trace/buffer.hh"
#include "sim/trace/span.hh"

namespace tf::sim::timeline {
class Timeline;
}

namespace tf::sim::trace {

/** One node's span-event stream, in append order. */
struct NodeTrace
{
    std::string name;
    std::vector<SpanEvent> events;
};

/**
 * Per-stage duration sketches plus the per-trace stage-duration sum.
 * Sketches merge bucket-wise (QuantileSketch::merge), so sharded
 * collection reduces to the unsharded result.
 */
struct Attribution
{
    std::array<QuantileSketch, kStageCount> stageNs;
    /** Sum of stage durations per complete trace (ns). */
    QuantileSketch totalNs;
};

/**
 * Emit @p nodes as one trace-event JSON document. @p reason, when
 * non-null, lands in otherData (the flight dump records the panic
 * message there). Timestamps are microseconds with six decimals, so
 * picosecond ticks survive the format exactly.
 *
 * A non-null @p tl interleaves the merged timeline into the same
 * document as Perfetto counter tracks ("ph":"C", one point per
 * closed window at the window-start timestamp) under a synthetic
 * pid-0 "timeline" process, and every fault-engine window as a
 * complete event ("ph":"X") on its "faults" track — so a latency
 * spike in a counter series visually lines up with the injected
 * cause and the surrounding datapath spans.
 */
void writeTraceEventsJson(std::ostream &os,
                          const std::vector<NodeTrace> &nodes,
                          const char *reason,
                          const timeline::Timeline *tl = nullptr);

class TraceCollector
{
  public:
    /** Snapshot @p buffer as the next node stream. */
    void addBuffer(const TraceBuffer &buffer, std::string node);

    /** Append @p other's node streams after this collector's. */
    void adopt(TraceCollector &&other);

    /**
     * Interleave @p tl as counter tracks + fault marks in writeJson.
     * The pointer must stay valid until then; nullptr detaches.
     */
    void setTimeline(const timeline::Timeline *tl) { _timeline = tl; }

    bool empty() const { return _nodes.empty(); }
    std::size_t nodeCount() const { return _nodes.size(); }
    const std::vector<NodeTrace> &nodes() const { return _nodes; }

    /** Perfetto/Chrome trace-event JSON for the collected streams. */
    void writeJson(std::ostream &os) const;

    /** Pair up spans and attribute durations per stage. */
    Attribution attribution() const;

  private:
    std::vector<NodeTrace> _nodes;
    const timeline::Timeline *_timeline = nullptr;
};

} // namespace tf::sim::trace

#endif // TF_SIM_TRACE_EXPORT_HH
