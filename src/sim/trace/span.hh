/**
 * @file
 * Causal-span trace events.
 *
 * A span is one transaction's residency in one datapath stage: a
 * Begin event when the stage accepts it and an End event when the
 * stage hands it downstream. Spans of one transaction share a
 * TraceId, so a full round trip (host crossings, RMMU, routing, LLC
 * framing, donor crossings, C1 mastering and the way back) is a chain
 * of adjacent spans whose durations tile the observed RTT exactly.
 *
 * Events are fixed-size PODs so the per-LP ring buffer (buffer.hh)
 * can record them on the hot path without allocation.
 */

#ifndef TF_SIM_TRACE_SPAN_HH
#define TF_SIM_TRACE_SPAN_HH

#include <cstdint>

#include "sim/ticks.hh"

namespace tf::sim::trace {

/** Per-buffer-local transaction trace id; 0 = not traced. */
using TraceId = std::uint64_t;
constexpr TraceId noTrace = 0;

/**
 * Datapath stages, in round-trip order. One Perfetto thread track
 * per stage; adjacent stages hand off on the same tick, so the span
 * durations of one trace sum to its end-to-end latency.
 */
enum class Stage : std::uint8_t {
    None = 0,       ///< stage unset (crossing not tagged for tracing)
    TagQueue,       ///< issue() to admit(): OpenCAPI tag wait
    HostSerdesDown, ///< host serDES, request direction
    StackDown,      ///< host FPGA stack, request direction
    Rmmu,           ///< RMMU translation (instant)
    Route,          ///< routing/bonding channel pick (instant)
    LlcReq,         ///< LLC framing + wire + replay, request direction
    DonorStackDown, ///< donor FPGA stack, request direction
    DonorSerdesDown,///< donor serDES, request direction
    C1,             ///< OpenCAPI C1 mastering incl. donor DRAM
    DonorSerdesUp,  ///< donor serDES, response direction
    DonorStackUp,   ///< donor FPGA stack, response direction
    LlcResp,        ///< LLC framing + wire + replay, response direction
    StackUp,        ///< host FPGA stack, response direction
    HostSerdesUp,   ///< host serDES, response direction
    Eth,            ///< Ethernet message (client / inter-rack traffic)
    CacheHit,       ///< page-cache access served from a local frame
    CacheMiss,      ///< page-cache access waiting on a remote fill
    CacheWb,        ///< page-cache dirty write-back to the donor
    SwitchHop,      ///< fabric hop: element egress queue + wire
    Fault,          ///< injected fault active at a fault point
};

constexpr int kStageCount = static_cast<int>(Stage::Fault) + 1;

/** Stable stage name, used for Perfetto tracks and metric keys. */
constexpr const char *
stageName(Stage s)
{
    switch (s) {
      case Stage::None:            return "none";
      case Stage::TagQueue:        return "tagQueue";
      case Stage::HostSerdesDown:  return "hostSerdesDown";
      case Stage::StackDown:       return "stackDown";
      case Stage::Rmmu:            return "rmmu";
      case Stage::Route:           return "route";
      case Stage::LlcReq:          return "llcReq";
      case Stage::DonorStackDown:  return "donorStackDown";
      case Stage::DonorSerdesDown: return "donorSerdesDown";
      case Stage::C1:              return "c1";
      case Stage::DonorSerdesUp:   return "donorSerdesUp";
      case Stage::DonorStackUp:    return "donorStackUp";
      case Stage::LlcResp:         return "llcResp";
      case Stage::StackUp:         return "stackUp";
      case Stage::HostSerdesUp:    return "hostSerdesUp";
      case Stage::Eth:             return "eth";
      case Stage::CacheHit:        return "cacheHit";
      case Stage::CacheMiss:       return "cacheMiss";
      case Stage::CacheWb:         return "cacheWb";
      case Stage::SwitchHop:       return "switchHop";
      case Stage::Fault:           return "fault";
    }
    return "unknown";
}

/** One begin/end edge of a span. 24 bytes, trivially copyable. */
struct SpanEvent
{
    enum class Kind : std::uint8_t { Begin = 0, End = 1 };

    Tick tick = 0;        ///< simulated time of the edge
    TraceId id = noTrace; ///< transaction trace id (buffer-local)
    std::uint32_t depth = 0; ///< queue depth at stage entry (Begin)
    Stage stage = Stage::None;
    Kind kind = Kind::Begin;
};

} // namespace tf::sim::trace

#endif // TF_SIM_TRACE_SPAN_HH
