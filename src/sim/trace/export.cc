#include "sim/trace/export.hh"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <functional>
#include <map>
#include <set>

#include "sim/json.hh"
#include "sim/timeline/timeline.hh"

namespace tf::sim::trace {

namespace {

/** Minimal JSON string escaping (panic messages carry quotes). */
std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/**
 * Ticks are picoseconds and trace-event timestamps are microseconds:
 * emit "<us>.<frac>" from the integer tick so the output is exact
 * and byte-deterministic (no double formatting involved).
 */
void
writeTs(std::ostream &os, Tick tick)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf),
                  "%" PRIu64 ".%06" PRIu64,
                  tick / ticksPerUs, tick % ticksPerUs);
    os << buf;
}

void
writeEvent(std::ostream &os, const SpanEvent &ev, std::size_t pid)
{
    const char *ph =
        ev.kind == SpanEvent::Kind::Begin ? "b" : "e";
    os << "{\"ph\":\"" << ph << "\",\"cat\":\"span\",\"name\":\""
       << stageName(ev.stage) << "\",\"id2\":{\"local\":\"0x"
       << std::hex << ev.id << std::dec << "\"},\"pid\":" << pid
       << ",\"tid\":" << static_cast<int>(ev.stage) << ",\"ts\":";
    writeTs(os, ev.tick);
    if (ev.kind == SpanEvent::Kind::Begin)
        os << ",\"args\":{\"depth\":" << ev.depth << "}";
    os << "}";
}

/**
 * The timeline rides in the same document as the spans: counter
 * tracks under a synthetic pid 0 so Perfetto stacks them above the
 * per-node span processes, and fault windows as complete events on
 * one "faults" thread. Emission order (series name, window index;
 * then faults as the Timeline sorted them) is deterministic because
 * the merged timeline itself is.
 */
void
writeTimelineEvents(std::ostream &os, const timeline::Timeline &tl,
                    const std::function<void()> &sep)
{
    constexpr std::size_t kTimelinePid = 0;
    constexpr int kFaultTid = 1;
    if (tl.series().empty() && tl.faults().empty())
        return;
    sep();
    os << "{\"ph\":\"M\",\"pid\":" << kTimelinePid
       << ",\"name\":\"process_name\",\"args\":{\"name\":\"timeline\"}}";
    sep();
    os << "{\"ph\":\"M\",\"pid\":" << kTimelinePid
       << ",\"name\":\"process_sort_index\",\"args\":{\"sort_index\":-1}}";
    for (const auto &[name, series] : tl.series()) {
        for (std::size_t w = 0; w < tl.windows(); ++w) {
            double v = w < series.values.size()
                           ? series.values[w]
                           : timeline::Timeline::padValue(series);
            if (!std::isfinite(v))
                continue; // empty window: no point, not a zero
            sep();
            os << "{\"ph\":\"C\",\"cat\":\"timeline\",\"name\":\""
               << escape(name) << "\",\"pid\":" << kTimelinePid
               << ",\"ts\":";
            writeTs(os, static_cast<Tick>(w) * tl.window());
            os << ",\"args\":{\"value\":"
               << JsonWriter::formatDouble(v) << "}}";
        }
    }
    if (tl.faults().empty())
        return;
    sep();
    os << "{\"ph\":\"M\",\"pid\":" << kTimelinePid
       << ",\"tid\":" << kFaultTid
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\"faults\"}}";
    auto faults = tl.faults();
    std::sort(faults.begin(), faults.end(),
              [](const timeline::FaultWindow &a,
                 const timeline::FaultWindow &b) {
                  if (a.begin != b.begin)
                      return a.begin < b.begin;
                  if (a.label != b.label)
                      return a.label < b.label;
                  return a.end < b.end;
              });
    for (const auto &f : faults) {
        sep();
        os << "{\"ph\":\"X\",\"cat\":\"fault\",\"name\":\""
           << escape(f.label) << "\",\"pid\":" << kTimelinePid
           << ",\"tid\":" << kFaultTid << ",\"ts\":";
        writeTs(os, f.begin);
        os << ",\"dur\":";
        writeTs(os, f.end - f.begin);
        os << "}";
    }
}

} // namespace

void
writeTraceEventsJson(std::ostream &os,
                     const std::vector<NodeTrace> &nodes,
                     const char *reason,
                     const timeline::Timeline *tl)
{
    os << "{\"traceEvents\":[";
    bool first = true;
    auto sep = [&]() {
        if (!first)
            os << ",\n";
        first = false;
    };

    // Metadata: one process per node, one thread per stage seen.
    for (std::size_t n = 0; n < nodes.size(); ++n) {
        std::size_t pid = n + 1;
        sep();
        os << "{\"ph\":\"M\",\"pid\":" << pid
           << ",\"name\":\"process_name\",\"args\":{\"name\":\""
           << escape(nodes[n].name) << "\"}}";
        bool seen[kStageCount] = {};
        for (const SpanEvent &ev : nodes[n].events)
            seen[static_cast<int>(ev.stage)] = true;
        for (int s = 0; s < kStageCount; ++s) {
            if (!seen[s])
                continue;
            sep();
            os << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << s
               << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
               << stageName(static_cast<Stage>(s)) << "\"}}"
               << "";
            sep();
            os << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << s
               << ",\"name\":\"thread_sort_index\",\"args\":"
               << "{\"sort_index\":" << s << "}}";
        }
    }

    // Span events, globally ordered by (tick, node, append order) —
    // a total order independent of how the buffers were filled.
    struct Ref
    {
        Tick tick;
        std::uint32_t node;
        std::uint32_t idx;
    };
    std::vector<Ref> refs;
    std::size_t total = 0;
    for (const NodeTrace &node : nodes)
        total += node.events.size();
    refs.reserve(total);
    for (std::size_t n = 0; n < nodes.size(); ++n)
        for (std::size_t i = 0; i < nodes[n].events.size(); ++i)
            refs.push_back(Ref{nodes[n].events[i].tick,
                               static_cast<std::uint32_t>(n),
                               static_cast<std::uint32_t>(i)});
    std::sort(refs.begin(), refs.end(),
              [](const Ref &a, const Ref &b) {
                  if (a.tick != b.tick)
                      return a.tick < b.tick;
                  if (a.node != b.node)
                      return a.node < b.node;
                  return a.idx < b.idx;
              });
    for (const Ref &r : refs) {
        sep();
        writeEvent(os, nodes[r.node].events[r.idx], r.node + 1);
    }

    if (tl != nullptr)
        writeTimelineEvents(os, *tl, sep);

    os << "],\n\"displayTimeUnit\":\"ns\"";
    if (reason != nullptr)
        os << ",\n\"otherData\":{\"reason\":\""
           << escape(reason) << "\"}";
    os << "}\n";
}

void
TraceCollector::addBuffer(const TraceBuffer &buffer, std::string node)
{
    NodeTrace nt;
    nt.name = std::move(node);
    nt.events = buffer.snapshot();
    _nodes.push_back(std::move(nt));
}

void
TraceCollector::adopt(TraceCollector &&other)
{
    for (NodeTrace &node : other._nodes)
        _nodes.push_back(std::move(node));
    other._nodes.clear();
}

void
TraceCollector::writeJson(std::ostream &os) const
{
    writeTraceEventsJson(os, _nodes, nullptr, _timeline);
}

Attribution
TraceCollector::attribution() const
{
    Attribution attr;
    // One transaction's spans spread over several buffers (host eq,
    // channel eq, donor eq), so per-trace totals accumulate across
    // nodes. Only round trips that closed the final host stage feed
    // totalNs: in-flight tails and control-plane-only ids (Eth) would
    // otherwise drag the end-to-end distribution down. Ordered maps
    // keep iteration deterministic.
    std::map<TraceId, double> totals;
    std::set<TraceId> started;
    std::set<TraceId> complete;
    for (const NodeTrace &node : _nodes) {
        // Begin/end edges of one span always land in the same buffer.
        std::map<std::pair<TraceId, int>, Tick> open;
        for (const SpanEvent &ev : node.events) {
            int stage = static_cast<int>(ev.stage);
            auto key = std::make_pair(ev.id, stage);
            if (ev.kind == SpanEvent::Kind::Begin) {
                if (ev.stage == Stage::TagQueue)
                    started.insert(ev.id);
                open[key] = ev.tick;
                continue;
            }
            auto it = open.find(key);
            if (it == open.end())
                continue; // orphan end (begin predates collection)
            double ns = toNs(ev.tick - it->second);
            open.erase(it);
            attr.stageNs[static_cast<std::size_t>(stage)].add(ns);
            totals[ev.id] += ns;
            if (ev.stage == Stage::HostSerdesUp)
                complete.insert(ev.id);
        }
    }
    // A round trip feeds totalNs only when both edges of its life are
    // inside the collection window: it entered the tag queue after
    // the last clear() AND closed the final host stage. Trips already
    // in flight when a measured phase starts would otherwise
    // contribute truncated totals and drag the distribution down.
    for (const auto &[id, ns] : totals)
        if (complete.count(id) && started.count(id))
            attr.totalNs.add(ns);
    return attr;
}

} // namespace tf::sim::trace
