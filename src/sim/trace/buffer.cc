#include "sim/trace/buffer.hh"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <set>

#include "sim/trace/export.hh"

namespace tf::sim::trace {

namespace {

/**
 * Registry of live buffers for the flight dump. Ordered by pointer
 * so the dump is stable within a run; the mutex guards only
 * registration — event writes stay lock-free on each buffer's own
 * thread.
 */
std::mutex g_registryMutex;
std::set<TraceBuffer *> &
registry()
{
    static std::set<TraceBuffer *> buffers;
    return buffers;
}

} // namespace

TraceBuffer::TraceBuffer()
{
    std::lock_guard<std::mutex> lock(g_registryMutex);
    registry().insert(this);
}

TraceBuffer::~TraceBuffer()
{
    std::lock_guard<std::mutex> lock(g_registryMutex);
    registry().erase(this);
}

void
TraceBuffer::setFull(bool full)
{
    _full = full;
    clear();
    _issueCount = 0;
}

void
TraceBuffer::clear()
{
    _events.clear();
    _events.shrink_to_fit();
    _head = 0;
    _wrapped = false;
}

TraceId
TraceBuffer::newTrace()
{
    if (_full)
        return _idTag | ++_nextId;
    // Flight mode: sample the first issue and every
    // kSampleInterval-th after it, so short runs still leave spans
    // behind for the recorder.
    bool sampled = _issueCount % kSampleInterval == 0;
    ++_issueCount;
    if (!sampled)
        return noTrace;
    return _idTag | ++_nextId;
}

void
TraceBuffer::append(const SpanEvent &ev)
{
    if (_full) {
        _events.push_back(ev);
        return;
    }
    if (_events.size() < kFlightCap) {
        _events.push_back(ev);
        _head = _events.size() % kFlightCap;
        return;
    }
    _events[_head] = ev;
    _head = (_head + 1) % kFlightCap;
    if (_head == 0 || _events.size() == kFlightCap)
        _wrapped = true;
}

std::size_t
TraceBuffer::size() const
{
    return _events.size();
}

std::vector<SpanEvent>
TraceBuffer::snapshot() const
{
    if (_full || _events.size() < kFlightCap)
        return _events;
    // Unroll the ring oldest-first: _head is the next write slot,
    // hence the oldest retained event.
    std::vector<SpanEvent> out;
    out.reserve(_events.size());
    for (std::size_t i = 0; i < _events.size(); ++i)
        out.push_back(_events[(_head + i) % _events.size()]);
    return out;
}

void
dumpFlightRecorder(const char *reason)
{
    // A panic inside the dump (or concurrent panics) must not
    // recurse or interleave; first caller wins, the rest abort as
    // they would have without a recorder.
    static std::atomic<bool> dumping{false};
    if (dumping.exchange(true))
        return;

    std::vector<NodeTrace> nodes;
    {
        std::lock_guard<std::mutex> lock(g_registryMutex);
        std::size_t index = 0;
        for (TraceBuffer *buf : registry()) {
            if (buf->size() == 0) {
                ++index;
                continue;
            }
            NodeTrace node;
            node.name = buf->name().empty()
                            ? "eq" + std::to_string(index)
                            : buf->name();
            node.events = buf->snapshot();
            nodes.push_back(std::move(node));
            ++index;
        }
    }
    if (nodes.empty()) {
        dumping.store(false);
        return;
    }

    char path[64];
    std::snprintf(path, sizeof(path), "tf_flight_%d.json",
                  static_cast<int>(::getpid()));
    std::ofstream out(path);
    if (!out) {
        dumping.store(false);
        return;
    }
    writeTraceEventsJson(out, nodes, reason);
    out.flush();
    std::fprintf(stderr,
                 "flight recorder: %zu buffer(s) dumped to %s\n",
                 nodes.size(), path);
    dumping.store(false);
}

} // namespace tf::sim::trace
