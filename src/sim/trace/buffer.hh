/**
 * @file
 * Per-event-queue span recording.
 *
 * Every EventQueue owns one TraceBuffer; components reach it through
 * eventQueue().trace(). All writes come from the thread running that
 * queue (one LP = one thread in the parallel engine), so recording is
 * lock-free: a plain append into preallocated storage.
 *
 * Two modes share the same storage:
 *
 *  - Flight mode (default): a fixed ring keeps the last kFlightCap
 *    span events, and newTrace() samples one transaction in
 *    kSampleInterval so the steady-state overhead is a branch per
 *    hook plus a handful of ring stores per sampled transaction.
 *    panic() / TF_ASSERT dump every live ring to
 *    tf_flight_<pid>.json before aborting, so a CI failure always
 *    ships the final in-flight microseconds.
 *
 *  - Full mode (--trace): every transaction gets an id and events
 *    append unbounded, for Perfetto export and latency attribution.
 *
 * Trace ids are allocated from a buffer-local counter, never a global
 * one: a process-wide atomic would leak worker-thread interleaving
 * into the exported ids and break the --jobs byte-identity guarantee.
 */

#ifndef TF_SIM_TRACE_BUFFER_HH
#define TF_SIM_TRACE_BUFFER_HH

#include <cstddef>
#include <string>
#include <vector>

#include "sim/trace/span.hh"

namespace tf::sim::trace {

class TraceBuffer
{
  public:
    /** Flight-recorder ring capacity, in span events. */
    static constexpr std::size_t kFlightCap = 4096;
    /** Flight mode records one transaction in this many. */
    static constexpr std::uint64_t kSampleInterval = 64;

    TraceBuffer();
    ~TraceBuffer();

    TraceBuffer(const TraceBuffer &) = delete;
    TraceBuffer &operator=(const TraceBuffer &) = delete;

    /** Node label used by the flight dump ("" until named). */
    void setName(std::string name) { _name = std::move(name); }
    const std::string &name() const { return _name; }

    /**
     * Disambiguate ids across buffers: the tag occupies the id's high
     * bits, so two buffers with distinct tags can never collide when
     * their traces merge into one collection. Assign tags from stable
     * topology indices (node number, LP index), never from thread
     * identity, to keep exports --jobs-independent. Tag 0 (default)
     * is fine for single-buffer rigs.
     */
    void setIdTag(std::uint32_t tag)
    {
        _idTag = static_cast<std::uint64_t>(tag) << kIdTagShift;
    }

    /**
     * Switch between full recording (true) and the flight ring
     * (false). Switching clears recorded events and restarts the
     * sampling counter, so a bench's traced phase starts clean.
     */
    void setFull(bool full);
    bool full() const { return _full; }

    /** Drop recorded events; ids already handed out stay valid. */
    void clear();

    /**
     * Allocate a trace id for a new transaction. In full mode every
     * call returns a fresh id; in flight mode only every
     * kSampleInterval-th call does (noTrace otherwise), which bounds
     * the always-on overhead. Hooks no-op on noTrace.
     */
    TraceId newTrace();

    /** Record a span-begin edge. No-op when @p id is noTrace. */
    void
    begin(Tick tick, TraceId id, Stage stage, std::uint32_t depth = 0)
    {
        if (id == noTrace)
            return;
        append(SpanEvent{tick, id, depth, stage,
                         SpanEvent::Kind::Begin});
    }

    /** Record a span-end edge. No-op when @p id is noTrace. */
    void
    end(Tick tick, TraceId id, Stage stage)
    {
        if (id == noTrace)
            return;
        append(SpanEvent{tick, id, 0, stage, SpanEvent::Kind::End});
    }

    /** Events recorded (ring occupancy in flight mode). */
    std::size_t size() const;

    /** Recorded events in append order (ring unrolled oldest-first). */
    std::vector<SpanEvent> snapshot() const;

  private:
    static constexpr unsigned kIdTagShift = 40;

    void append(const SpanEvent &ev);

    std::string _name;
    bool _full = false;
    std::vector<SpanEvent> _events;
    std::size_t _head = 0;    ///< ring write index (flight mode)
    bool _wrapped = false;    ///< ring has lapped at least once
    std::uint64_t _idTag = 0; ///< high bits of every issued id
    std::uint64_t _nextId = 0;
    std::uint64_t _issueCount = 0;
};

/**
 * Write every live TraceBuffer's events to tf_flight_<pid>.json
 * (trace-event JSON plus the failure reason). Called by panic()
 * before aborting; safe to call with buffers mid-write — the process
 * is dying and a torn ring still beats no data. Re-entry is ignored.
 */
void dumpFlightRecorder(const char *reason);

} // namespace tf::sim::trace

#endif // TF_SIM_TRACE_BUFFER_HH
