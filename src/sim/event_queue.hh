/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single EventQueue orders callbacks by (tick, priority, sequence).
 * Sequence numbers make same-tick ordering deterministic: events
 * scheduled first run first. All simulation state advances only through
 * this queue, so every run with the same seed is bit-reproducible.
 *
 * Hot-path design (see DESIGN.md §10):
 *  - The heap is an owned vector of small POD entries ordered with
 *    std::push_heap/std::pop_heap; callbacks live in a side slot
 *    array, so heap sifts move 32-byte PODs and the winning callback
 *    is moved out of its slot legally (no const_cast on a
 *    priority_queue top).
 *  - Liveness is generation-based: an EventId encodes (slot,
 *    generation). deschedule() is O(1) — it destroys the slot's
 *    callback eagerly (releasing captured shared state immediately),
 *    recycles the slot under a bumped generation, and leaves a dead
 *    POD entry behind. A dead entry is recognised at pop time by its
 *    stale generation.
 *  - Dead entries are physically bounded: when they outnumber live
 *    ones (beyond a small floor) the heap is compacted in place, so
 *    cancel-heavy workloads (ack-timer churn) cannot inflate every
 *    push/pop to log(live + dead).
 */

#ifndef TF_SIM_EVENT_QUEUE_HH
#define TF_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <vector>

#include "sim/callback.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"
#include "sim/ticks.hh"
#include "sim/trace/buffer.hh"

namespace tf::sim {

/** Relative ordering of events that fire on the same tick. */
enum class EventPriority : int {
    ClockEdge = 0,   ///< clock-domain edges fire first
    Default = 50,
    Stats = 90,      ///< sampling runs after state updates
    Teardown = 100,
};

class EventQueue
{
  public:
    using Callback = EventCallback;

    /** Opaque handle identifying a scheduled event (for deschedule). */
    using EventId = std::uint64_t;
    static constexpr EventId invalidEvent = 0;

    /**
     * Compaction floor: dead heap entries are tolerated until they
     * exceed both this floor and the live entry count. Bound on the
     * physical heap: heapSize() <= 2 * pending() + kCompactMinDead.
     */
    static constexpr std::size_t kCompactMinDead = 64;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return _now; }

    /**
     * Schedule @p cb to run at absolute time @p when.
     * @return a handle usable with deschedule().
     */
    EventId schedule(Tick when, Callback cb,
                     EventPriority prio = EventPriority::Default);

    /** Schedule @p cb to run @p delay ticks from now. */
    EventId
    scheduleIn(Tick delay, Callback cb,
               EventPriority prio = EventPriority::Default)
    {
        return schedule(_now + delay, std::move(cb), prio);
    }

    /**
     * Cancel a previously scheduled event. O(1): the callback (and
     * everything it captured) is destroyed immediately; only a small
     * POD entry stays in the heap until it is popped or compacted
     * away. Cancelling an already-fired or unknown id is a no-op.
     */
    void deschedule(EventId id);

    /** Number of events still scheduled (excluding cancelled ones). */
    std::size_t pending() const { return _live; }

    /** True when no runnable events remain. */
    bool empty() const { return _live == 0; }

    /**
     * Run events until the queue drains or @p limit is reached.
     * @param limit absolute stop time; events at t > limit stay queued.
     * @return number of events executed.
     */
    std::uint64_t run(Tick limit = maxTick);

    /** Run at most @p maxEvents events (drain order). */
    std::uint64_t runEvents(std::uint64_t maxEvents);

    /** Total events executed over the queue's lifetime. */
    std::uint64_t executed() const { return _executed.value(); }

    /**
     * Advance time to @p when without running anything before it.
     * Only legal when nothing is scheduled before @p when.
     */
    void warp(Tick when);

    /**
     * Absolute time of the earliest live event, or maxTick when the
     * queue is drained. Purges cancelled entries off the heap top as
     * a side effect (they carry no information). The parallel engine
     * uses this to compute the next conservative window floor.
     */
    Tick nextEventTick();

    // ---- kernel health (telemetry) ----

    /** Physical heap occupancy, live + not-yet-reclaimed dead. */
    std::size_t heapSize() const { return _heap.size(); }

    /** Cancelled (but not yet reclaimed) entries still in the heap. */
    std::size_t deadEntries() const { return _dead; }

    /** Lifetime peak of the physical heap occupancy. */
    std::uint64_t heapHighWater() const { return _highWater.value(); }

    /** Events cancelled via deschedule() over the queue's lifetime. */
    std::uint64_t cancelled() const { return _cancelled.value(); }

    /** Dead-entry compaction passes over the queue's lifetime. */
    std::uint64_t compactions() const { return _compactions.value(); }

    /** Attach kernel counters ("sim.eq.*") for telemetry export. */
    void attachStats(StatSet &set);

    /**
     * This queue's span-trace buffer (see src/sim/trace). One buffer
     * per queue keeps recording single-writer in the parallel engine
     * (one LP = one queue = one thread), which is what lets the
     * tracing layer stay lock-free.
     */
    trace::TraceBuffer &trace() { return _trace; }
    const trace::TraceBuffer &trace() const { return _trace; }

  private:
    /**
     * Heap ordering key. The callback is *not* here: entries are
     * relocated O(log n) times per event by the heap algorithms, and
     * dead ones linger until compaction, so they must stay small and
     * trivially movable.
     */
    struct Entry
    {
        Tick when;
        std::uint64_t seq; ///< global schedule order, same-tick FIFO
        std::uint32_t slot;
        std::uint32_t gen;
        std::int32_t prio;
    };

    /** Callback storage, recycled through a freelist. */
    struct Slot
    {
        Callback cb;
        std::uint32_t gen = 1;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.prio != b.prio)
                return a.prio > b.prio;
            return a.seq > b.seq;
        }
    };

    static constexpr EventId
    makeId(std::uint32_t slot, std::uint32_t gen)
    {
        return (static_cast<EventId>(slot) << 32) | gen;
    }

    std::uint32_t allocSlot();
    void recycleSlot(std::uint32_t slot);
    /** True when the heap entry's event was cancelled or already ran. */
    bool
    stale(const Entry &e) const
    {
        return _slots[e.slot].gen != e.gen;
    }
    void maybeCompact();
    void checkOccupancyBound() const;
    template <typename Stop> std::uint64_t drain(Tick limit, Stop stop);

    std::vector<Entry> _heap;
    std::vector<Slot> _slots;
    std::vector<std::uint32_t> _freeSlots;
    std::size_t _live = 0;
    std::size_t _dead = 0;
    Tick _now = 0;
    std::uint64_t _nextSeq = 0;
    Counter _executed;
    Counter _cancelled;
    Counter _compactions;
    Counter _highWater;
    trace::TraceBuffer _trace;
};

} // namespace tf::sim

#endif // TF_SIM_EVENT_QUEUE_HH
