/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single EventQueue orders callbacks by (tick, priority, sequence).
 * Sequence numbers make same-tick ordering deterministic: events
 * scheduled first run first. All simulation state advances only through
 * this queue, so every run with the same seed is bit-reproducible.
 */

#ifndef TF_SIM_EVENT_QUEUE_HH
#define TF_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

#include "sim/logging.hh"
#include "sim/ticks.hh"

namespace tf::sim {

/** Relative ordering of events that fire on the same tick. */
enum class EventPriority : int {
    ClockEdge = 0,   ///< clock-domain edges fire first
    Default = 50,
    Stats = 90,      ///< sampling runs after state updates
    Teardown = 100,
};

class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Opaque handle identifying a scheduled event (for deschedule). */
    using EventId = std::uint64_t;
    static constexpr EventId invalidEvent = 0;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return _now; }

    /**
     * Schedule @p cb to run at absolute time @p when.
     * @return a handle usable with deschedule().
     */
    EventId
    schedule(Tick when, Callback cb,
             EventPriority prio = EventPriority::Default)
    {
        TF_ASSERT(when >= _now, "scheduling into the past (%llu < %llu)",
                  (unsigned long long)when, (unsigned long long)_now);
        EventId id = ++_nextId;
        _heap.push(Entry{when, static_cast<int>(prio), id, std::move(cb)});
        _live.insert(id);
        return id;
    }

    /** Schedule @p cb to run @p delay ticks from now. */
    EventId
    scheduleIn(Tick delay, Callback cb,
               EventPriority prio = EventPriority::Default)
    {
        return schedule(_now + delay, std::move(cb), prio);
    }

    /**
     * Cancel a previously scheduled event. Lazy: the entry stays in the
     * heap but is skipped when popped. Cancelling an already-fired or
     * unknown id is a no-op.
     */
    void deschedule(EventId id);

    /** Number of events still scheduled (excluding cancelled ones). */
    std::size_t pending() const { return _live.size(); }

    /** True when no runnable events remain. */
    bool empty() const { return _live.empty(); }

    /**
     * Run events until the queue drains or @p limit is reached.
     * @param limit absolute stop time; events at t > limit stay queued.
     * @return number of events executed.
     */
    std::uint64_t run(Tick limit = maxTick);

    /** Run at most @p maxEvents events (drain order). */
    std::uint64_t runEvents(std::uint64_t maxEvents);

    /** Total events executed over the queue's lifetime. */
    std::uint64_t executed() const { return _executed; }

    /**
     * Advance time to @p when without running anything before it.
     * Only legal when nothing is scheduled before @p when.
     */
    void warp(Tick when);

  private:
    struct Entry
    {
        Tick when;
        int prio;
        EventId id;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.prio != b.prio)
                return a.prio > b.prio;
            return a.id > b.id;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> _heap;
    std::unordered_set<EventId> _live;
    Tick _now = 0;
    EventId _nextId = 0;
    std::uint64_t _executed = 0;
};

} // namespace tf::sim

#endif // TF_SIM_EVENT_QUEUE_HH
