/**
 * @file
 * Minimal deterministic JSON writer.
 *
 * The telemetry exports (stats registry, bench harness) need
 * machine-readable output that a CI job can diff byte-for-byte
 * between two same-seed runs. This writer emits a stable textual
 * form: insertion-ordered keys, two-space indentation, and a fixed
 * number format (integers when exactly representable, otherwise
 * shortest round-trip via "%.17g"; non-finite values become null
 * since JSON cannot carry them).
 */

#ifndef TF_SIM_JSON_HH
#define TF_SIM_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace tf::sim {

class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os, bool pretty = true);

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Key for the next value; only legal inside an object. */
    void name(const std::string &key);

    void value(const std::string &s);
    void value(const char *s);
    void value(double v);
    void value(std::uint64_t v);
    void value(std::int64_t v);
    void value(int v);
    void value(bool v);
    void valueNull();

    /** name() + value() in one call. */
    template <typename T>
    void
    field(const std::string &key, T &&v)
    {
        name(key);
        value(std::forward<T>(v));
    }

    /** Render a double exactly as value(double) would. */
    static std::string formatDouble(double v);

  private:
    struct Frame
    {
        bool isObject;
        std::size_t children = 0;
    };

    std::ostream &_os;
    bool _pretty;
    std::vector<Frame> _stack;
    bool _pendingName = false;

    void beforeValue();
    void newline();
    void writeString(const std::string &s);
};

} // namespace tf::sim

#endif // TF_SIM_JSON_HH
