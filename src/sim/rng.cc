#include "sim/rng.hh"

#include <cmath>

#include "sim/logging.hh"

namespace tf::sim {

namespace {
inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

// splitmix64, used to expand the seed into the xoshiro state.
inline std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}
} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : _s)
        word = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(_s[1] * 5, 7) * 9;
    const std::uint64_t t = _s[1] << 17;
    _s[2] ^= _s[0];
    _s[3] ^= _s[1];
    _s[1] ^= _s[2];
    _s[0] ^= _s[3];
    _s[2] ^= t;
    _s[3] = rotl(_s[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::below(std::uint64_t n)
{
    TF_ASSERT(n > 0, "below(0)");
    // Modulo bias is negligible for the n used in this simulator
    // (n << 2^64), but use Lemire-style rejection to be exact.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    std::uint64_t l = static_cast<std::uint64_t>(m);
    if (l < n) {
        std::uint64_t t = -n % n;
        while (l < t) {
            x = next();
            m = static_cast<__uint128_t>(x) * n;
            l = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t
Rng::range(std::int64_t lo, std::int64_t hi)
{
    TF_ASSERT(lo <= hi, "bad range");
    return lo + static_cast<std::int64_t>(
        below(static_cast<std::uint64_t>(hi - lo) + 1));
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

double
Rng::exponential(double mean)
{
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

double
Rng::normal()
{
    if (_haveSpare) {
        _haveSpare = false;
        return _spare;
    }
    double u1, u2;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    u2 = uniform();
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * M_PI * u2;
    _spare = r * std::sin(theta);
    _haveSpare = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::logNormal(double mu, double sigma)
{
    return std::exp(mu + sigma * normal());
}

double
Rng::boundedPareto(double alpha, double lo, double hi)
{
    TF_ASSERT(lo > 0 && hi > lo && alpha > 0, "bad bounded-pareto params");
    double u = uniform();
    double la = std::pow(lo, alpha);
    double ha = std::pow(hi, alpha);
    return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

// ---------------------------------------------------------------------
// ZipfGenerator: rejection-inversion sampling (Hormann & Derflinger 96),
// the same algorithm used by Apache Commons' RejectionInversionZipf.
// ---------------------------------------------------------------------

ZipfGenerator::ZipfGenerator(std::uint64_t n, double theta)
    : _n(n), _theta(theta)
{
    TF_ASSERT(n > 0, "zipf over empty set");
    TF_ASSERT(theta > 0, "zipf exponent must be positive");
    _hIntegralX1 = hIntegral(1.5) - 1.0;
    _hIntegralNumItems = hIntegral(static_cast<double>(n) + 0.5);
    _s = 2.0 - hIntegralInverse(hIntegral(2.5) - h(2.0));
}

double
ZipfGenerator::h(double x) const
{
    return std::exp(-_theta * std::log(x));
}

double
ZipfGenerator::hIntegral(double x) const
{
    double log_x = std::log(x);
    double t = log_x * (1.0 - _theta);
    // helper: (exp(t) - 1) / t, stable near t = 0
    double v;
    if (std::abs(t) > 1e-8)
        v = std::expm1(t) / t;
    else
        v = 1.0 + t / 2.0 * (1.0 + t / 3.0 * (1.0 + t / 4.0));
    return log_x * v;
}

double
ZipfGenerator::hIntegralInverse(double x) const
{
    double t = x * (1.0 - _theta);
    if (t < -1.0)
        t = -1.0;
    // helper: t / log1p(t), stable near t = 0
    double v;
    if (std::abs(t) > 1e-8)
        v = t / std::log1p(t);
    else
        v = 1.0 + t / 2.0 * (1.0 - t / 6.0 * (1.0 - t / 2.0));
    return std::exp(x / v);
}

std::uint64_t
ZipfGenerator::operator()(Rng &rng) const
{
    while (true) {
        double u = _hIntegralNumItems +
                   rng.uniform() * (_hIntegralX1 - _hIntegralNumItems);
        double x = hIntegralInverse(u);
        double k = std::floor(x + 0.5);
        if (k < 1.0)
            k = 1.0;
        else if (k > static_cast<double>(_n))
            k = static_cast<double>(_n);
        if (k - x <= _s || u >= hIntegral(k + 0.5) - h(k)) {
            return static_cast<std::uint64_t>(k) - 1;
        }
    }
}

} // namespace tf::sim
