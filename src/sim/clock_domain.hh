/**
 * @file
 * Clock domains.
 *
 * The ThymesisFlow prototype runs three mesochronous clock domains (one
 * per transceiver group) at 401 MHz (Section V). A ClockDomain converts
 * between cycles and ticks and aligns events to clock edges, optionally
 * with a fixed phase offset to model mesochronous skew.
 */

#ifndef TF_SIM_CLOCK_DOMAIN_HH
#define TF_SIM_CLOCK_DOMAIN_HH

#include "sim/logging.hh"
#include "sim/ticks.hh"

namespace tf::sim {

class ClockDomain
{
  public:
    /**
     * @param freq_hz clock frequency in Hz.
     * @param phase   fixed offset of the first edge, in ticks.
     */
    explicit ClockDomain(double freq_hz, Tick phase = 0)
        : _period(static_cast<Tick>(1e12 / freq_hz)), _phase(phase)
    {
        TF_ASSERT(_period > 0, "frequency too high for tick resolution");
    }

    Tick period() const { return _period; }
    Tick phase() const { return _phase; }
    double frequencyHz() const { return 1e12 / static_cast<double>(_period); }

    /** Duration of @p n cycles in ticks. */
    Tick cycles(std::uint64_t n) const { return _period * n; }

    /** First clock edge at or after @p t. */
    Tick
    nextEdge(Tick t) const
    {
        if (t <= _phase)
            return _phase;
        Tick since = t - _phase;
        Tick rem = since % _period;
        return rem == 0 ? t : t + (_period - rem);
    }

    /** Number of whole cycles elapsed at time @p t. */
    std::uint64_t
    cycleCount(Tick t) const
    {
        return t <= _phase ? 0 : (t - _phase) / _period;
    }

  private:
    Tick _period;
    Tick _phase;
};

/** The prototype's transceiver-group clock: 401 MHz. */
inline ClockDomain
prototypeClock(Tick phase = 0)
{
    return ClockDomain(401e6, phase);
}

} // namespace tf::sim

#endif // TF_SIM_CLOCK_DOMAIN_HH
