#include "sim/fault/fault.hh"

#include <algorithm>

#include "sim/rng.hh"

namespace tf::sim::fault {

Plan &
Plan::add(Event ev)
{
    auto pos = std::upper_bound(
        _events.begin(), _events.end(), ev,
        [](const Event &a, const Event &b) { return a.at < b.at; });
    _events.insert(pos, std::move(ev));
    return *this;
}

Plan &
Plan::flap(Tick at, const std::string &point, Tick downFor)
{
    Event ev;
    ev.at = at;
    ev.kind = Kind::ChannelFlap;
    ev.point = point;
    ev.duration = downFor;
    return add(std::move(ev));
}

Plan &
Plan::fail(Tick at, const std::string &point)
{
    Event ev;
    ev.at = at;
    ev.kind = Kind::ChannelFail;
    ev.point = point;
    return add(std::move(ev));
}

Plan &
Plan::burst(Tick at, const std::string &point, Tick duration,
            const GilbertElliott &ge)
{
    Event ev;
    ev.at = at;
    ev.kind = Kind::BurstLoss;
    ev.point = point;
    ev.duration = duration;
    ev.ge = ge;
    return add(std::move(ev));
}

Plan &
Plan::spike(Tick at, const std::string &point, Tick duration,
            Tick extraLatency)
{
    Event ev;
    ev.at = at;
    ev.kind = Kind::LatencySpike;
    ev.point = point;
    ev.duration = duration;
    ev.extraLatency = extraLatency;
    return add(std::move(ev));
}

Plan &
Plan::stall(Tick at, const std::string &point, Tick duration)
{
    Event ev;
    ev.at = at;
    ev.kind = Kind::DramStall;
    ev.point = point;
    ev.duration = duration;
    return add(std::move(ev));
}

Plan &
Plan::starve(Tick at, const std::string &point, Tick duration)
{
    Event ev;
    ev.at = at;
    ev.kind = Kind::CreditStarve;
    ev.point = point;
    ev.duration = duration;
    return add(std::move(ev));
}

Plan &
Plan::outage(Tick at, const std::string &point, Tick duration)
{
    Event ev;
    ev.at = at;
    ev.kind = Kind::ControlOutage;
    ev.point = point;
    ev.duration = duration;
    return add(std::move(ev));
}

Plan &
Plan::poison(Tick at, const std::string &point)
{
    Event ev;
    ev.at = at;
    ev.kind = Kind::CachePoison;
    ev.point = point;
    return add(std::move(ev));
}

Plan
Plan::randomized(std::uint64_t seed, Tick horizon, const Registry &reg,
                 std::size_t count)
{
    // Transient kinds only: a random soak must keep the bed alive so
    // the invariants (all bytes readable back) stay checkable.
    // CachePoison qualifies: the cache refetches a poisoned frame from
    // the donor, so data stays correct.
    static constexpr Kind kDrawable[] = {
        Kind::ChannelFlap, Kind::BurstLoss,  Kind::LatencySpike,
        Kind::DramStall,   Kind::CreditStarve, Kind::ControlOutage,
        Kind::CachePoison,
    };

    Rng rng(seed);
    Plan plan;

    std::vector<Kind> kinds;
    for (Kind k : kDrawable) {
        if (!reg.pointsSupporting(k).empty())
            kinds.push_back(k);
    }
    if (kinds.empty() || horizon < 100)
        return plan;

    for (std::size_t i = 0; i < count; ++i) {
        Kind kind = kinds[rng.below(kinds.size())];
        auto points = reg.pointsSupporting(kind);
        Event ev;
        ev.kind = kind;
        ev.point = points[rng.below(points.size())];
        // Fire inside (5%, 85%) of the horizon so the tail of the run
        // always has quiet time to drain and recover.
        ev.at = horizon / 20 + rng.below(horizon * 4 / 5);
        ev.duration = horizon / 200 + rng.below(horizon / 20);
        switch (kind) {
          case Kind::LatencySpike:
            ev.extraLatency =
                nanoseconds(500) + rng.below(microseconds(5));
            break;
          case Kind::BurstLoss:
            ev.ge.pGoodBad = rng.uniform(0.02, 0.2);
            ev.ge.pBadGood = rng.uniform(0.2, 0.6);
            ev.ge.errGood = rng.uniform(0.0, 0.005);
            ev.ge.errBad = rng.uniform(0.3, 0.8);
            break;
          default:
            break;
        }
        plan.add(std::move(ev));
    }
    return plan;
}

void
Registry::add(const std::string &name, std::uint32_t kinds,
              Handler handler)
{
    _points[name] = Point{kinds, std::move(handler)};
}

bool
Registry::has(const std::string &name) const
{
    return _points.count(name) != 0;
}

bool
Registry::supports(const std::string &name, Kind kind) const
{
    auto it = _points.find(name);
    return it != _points.end() && (it->second.kinds & kindBit(kind));
}

std::vector<std::string>
Registry::pointsSupporting(Kind kind) const
{
    std::vector<std::string> out;
    for (const auto &[name, point] : _points) {
        if (point.kinds & kindBit(kind))
            out.push_back(name);
    }
    return out;
}

std::vector<std::string>
Registry::names() const
{
    std::vector<std::string> out;
    for (const auto &[name, point] : _points)
        out.push_back(name);
    return out;
}

bool
Registry::dispatch(const Event &ev) const
{
    auto it = _points.find(ev.point);
    if (it == _points.end() || !(it->second.kinds & kindBit(ev.kind)))
        return false;
    it->second.handler(ev);
    return true;
}

void
Engine::arm(const Plan &plan)
{
    for (const Event &ev : plan.events()) {
        _armed.inc();
        Event copy = ev;
        _eq.schedule(ev.at,
                     [this, copy = std::move(copy)] { fire(copy); });
    }
}

void
Engine::fire(const Event &ev)
{
    // The fault window shows up in Perfetto as a Stage::Fault span
    // beside the datapath spans it perturbs.
    auto &tb = _eq.trace();
    trace::TraceId id = tb.newTrace();
    tb.begin(_eq.now(), id, trace::Stage::Fault,
             static_cast<std::uint32_t>(ev.kind));
    if (id != trace::noTrace) {
        if (ev.duration > 0) {
            _eq.scheduleIn(ev.duration, [this, id] {
                _eq.trace().end(_eq.now(), id, trace::Stage::Fault);
            });
        } else {
            tb.end(_eq.now(), id, trace::Stage::Fault);
        }
    }

    if (_reg.dispatch(ev)) {
        _fired.inc();
        _firedByKind[static_cast<std::size_t>(ev.kind)].inc();
        if (_observer)
            _observer(ev);
    } else {
        _unmatched.inc();
    }
}

void
Engine::attachStats(StatSet &set)
{
    set.attach("armed", _armed, "events", "fault events scheduled");
    set.attach("fired", _fired, "events",
               "fault events dispatched to a registered point");
    set.attach("unmatched", _unmatched, "events",
               "fault events with no matching point (dropped)");
    for (int k = 0; k < kKindCount; ++k) {
        set.attach(std::string("fired.") + kindName(static_cast<Kind>(k)),
                   _firedByKind[k], "events");
    }
}

} // namespace tf::sim::fault
