/**
 * @file
 * Deterministic fault-injection engine.
 *
 * A FaultPlan is a scripted schedule of timed fault events: transient
 * channel flaps, Gilbert-Elliott burst-loss windows, Ethernet latency
 * spikes, donor-DRAM service stalls, credit starvation, control-plane
 * outages. Components expose *fault points* — named injectable sites
 * registered in a Registry — and the Engine arms a plan against a
 * registry, dispatching each event at its scheduled tick.
 *
 * Everything is deterministic: plans are either hand-scripted or
 * derived from a seed (Plan::randomized), the registry iterates in
 * sorted name order, and the engine schedules through the ordinary
 * EventQueue, so the same seed replays the same fault sequence
 * bit-for-bit — including across bench --jobs sweeps.
 *
 * Every armed/fired fault is counted under "fault.*" and recorded as
 * a Stage::Fault trace span, so Perfetto shows the fault windows
 * inline with the datapath spans they perturb.
 */

#ifndef TF_SIM_FAULT_FAULT_HH
#define TF_SIM_FAULT_FAULT_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/ticks.hh"

namespace tf::sim::fault {

/** Fault shapes a plan can schedule. */
enum class Kind : std::uint8_t {
    ChannelFail = 0, ///< permanent channel death (no auto-recover)
    ChannelFlap,     ///< channel down for `duration`, then back up
    BurstLoss,       ///< Gilbert-Elliott frame-error window on a wire
    LatencySpike,    ///< extra latency window on an Ethernet link
    DramStall,       ///< donor DRAM stops serving for `duration`
    CreditStarve,    ///< Rx credit returns swallowed for `duration`
    ControlOutage,   ///< control plane defers link events
    CachePoison,     ///< hwpoison one clean resident page-cache frame
};

constexpr int kKindCount = static_cast<int>(Kind::CachePoison) + 1;

/** Stable kind name for stats keys and logs. */
constexpr const char *
kindName(Kind k)
{
    switch (k) {
      case Kind::ChannelFail:   return "channelFail";
      case Kind::ChannelFlap:   return "channelFlap";
      case Kind::BurstLoss:     return "burstLoss";
      case Kind::LatencySpike:  return "latencySpike";
      case Kind::DramStall:     return "dramStall";
      case Kind::CreditStarve:  return "creditStarve";
      case Kind::ControlOutage: return "controlOutage";
      case Kind::CachePoison:   return "cachePoison";
    }
    return "unknown";
}

/** Bit for @p k in a fault point's supported-kinds mask. */
constexpr std::uint32_t
kindBit(Kind k)
{
    return 1u << static_cast<unsigned>(k);
}

/**
 * Gilbert-Elliott two-state burst-error model parameters. The channel
 * flips between a good and a bad state per frame; each state has its
 * own frame-error probability. Replaces the i.i.d. coin flip with
 * correlated loss bursts (mean burst length = 1 / pBadGood frames).
 */
struct GilbertElliott
{
    double pGoodBad = 0.0; ///< P(good -> bad) per frame
    double pBadGood = 1.0; ///< P(bad -> good) per frame
    double errGood = 0.0;  ///< frame-error probability in good state
    double errBad = 0.0;   ///< frame-error probability in bad state

    bool
    enabled() const
    {
        return pGoodBad > 0.0 || errGood > 0.0;
    }
};

/** One scheduled fault event. */
struct Event
{
    Tick at = 0;        ///< absolute fire time
    Kind kind = Kind::ChannelFail;
    std::string point;  ///< target fault-point name
    Tick duration = 0;  ///< window length (0 = instantaneous/permanent)
    Tick extraLatency = 0;   ///< LatencySpike: added per-message delay
    GilbertElliott ge;       ///< BurstLoss: error model for the window
};

class Registry;

/**
 * A scripted, ordered schedule of fault events. Build one by chaining
 * add() calls, or derive one deterministically from a seed with
 * randomized().
 */
class Plan
{
  public:
    Plan() = default;

    /** Append an event; events are kept sorted by fire time. */
    Plan &add(Event ev);

    /** Convenience builders for the common shapes. */
    Plan &flap(Tick at, const std::string &point, Tick downFor);
    Plan &fail(Tick at, const std::string &point);
    Plan &burst(Tick at, const std::string &point, Tick duration,
                const GilbertElliott &ge);
    Plan &spike(Tick at, const std::string &point, Tick duration,
                Tick extraLatency);
    Plan &stall(Tick at, const std::string &point, Tick duration);
    Plan &starve(Tick at, const std::string &point, Tick duration);
    Plan &outage(Tick at, const std::string &point, Tick duration);
    Plan &poison(Tick at, const std::string &point);

    const std::vector<Event> &events() const { return _events; }
    bool empty() const { return _events.empty(); }
    std::size_t size() const { return _events.size(); }

    /**
     * Derive a deterministic schedule of @p count events over
     * (0, horizon) from @p seed, drawing targets from the fault
     * points registered in @p reg (sorted order, so the plan depends
     * only on the seed and the registered topology — never on
     * registration order or thread interleaving). Kinds with no
     * supporting point are never drawn. ChannelFail is excluded:
     * random soaks exercise transient faults; permanent death is a
     * scripted decision.
     */
    static Plan randomized(std::uint64_t seed, Tick horizon,
                           const Registry &reg, std::size_t count = 8);

  private:
    std::vector<Event> _events;
};

/**
 * Named fault points. Components register the sites faults can be
 * injected into; the engine dispatches plan events by point name.
 * Iteration order is sorted (std::map) for determinism.
 */
class Registry
{
  public:
    using Handler = std::function<void(const Event &)>;

    /**
     * Register an injectable site. @p kinds is an OR of kindBit()
     * values the handler understands. Re-registering a name replaces
     * the previous entry.
     */
    void add(const std::string &name, std::uint32_t kinds,
             Handler handler);

    bool has(const std::string &name) const;

    /** True if @p name exists and supports @p kind. */
    bool supports(const std::string &name, Kind kind) const;

    /** Sorted names of every point supporting @p kind. */
    std::vector<std::string> pointsSupporting(Kind kind) const;

    /** Sorted names of all registered points. */
    std::vector<std::string> names() const;

    std::size_t size() const { return _points.size(); }

    /**
     * Invoke the handler registered for @p ev's point.
     * @return false when the point is unknown or does not support
     *         the event's kind (the event is then dropped).
     */
    bool dispatch(const Event &ev) const;

  private:
    struct Point
    {
        std::uint32_t kinds = 0;
        Handler handler;
    };

    std::map<std::string, Point> _points;
};

/**
 * Arms a Plan against a Registry on an EventQueue: every event is
 * scheduled at its fire time, counted, traced as a Stage::Fault span
 * covering its window, and dispatched to its fault point.
 */
class Engine
{
  public:
    Engine(EventQueue &eq, const Registry &reg) : _eq(eq), _reg(reg) {}

    /** Schedule every event of @p plan. May be called repeatedly. */
    void arm(const Plan &plan);

    std::uint64_t armed() const { return _armed.value(); }
    std::uint64_t fired() const { return _fired.value(); }
    /** Events whose point was unknown or kind-incompatible. */
    std::uint64_t unmatched() const { return _unmatched.value(); }
    std::uint64_t firedOfKind(Kind k) const
    {
        return _firedByKind[static_cast<std::size_t>(k)].value();
    }

    /** Attach armed/fired/unmatched + per-kind counters. */
    void attachStats(StatSet &set);

    /**
     * Observe every event that dispatches to a registered point,
     * called at fire time on the engine's own queue thread (after
     * the point handler ran). The timeline recorder uses this to
     * annotate fault windows on the exported counter tracks;
     * unmatched events are not reported -- they perturbed nothing.
     */
    void setObserver(std::function<void(const Event &)> fn)
    {
        _observer = std::move(fn);
    }

  private:
    void fire(const Event &ev);

    std::function<void(const Event &)> _observer;
    EventQueue &_eq;
    const Registry &_reg;
    Counter _armed;
    Counter _fired;
    Counter _unmatched;
    Counter _firedByKind[kKindCount];
};

} // namespace tf::sim::fault

#endif // TF_SIM_FAULT_FAULT_HH
