#include "apps/elastic.hh"

namespace tf::apps {

const char *
esChallengeName(EsChallenge c)
{
    switch (c) {
      case EsChallenge::RTQ:
        return "RTQ";
      case EsChallenge::RNQIHBS:
        return "RNQIHBS";
      case EsChallenge::RSTQ:
        return "RSTQ";
      case EsChallenge::MA:
        return "MA";
    }
    return "?";
}

sim::Tick
ElasticParams::coordinatorCpu(EsChallenge c) const
{
    switch (c) {
      case EsChallenge::RTQ:
        return sim::microseconds(120);
      case EsChallenge::RNQIHBS:
        return sim::microseconds(400);
      case EsChallenge::RSTQ:
        return sim::microseconds(250);
      case EsChallenge::MA:
        return sim::microseconds(350);
    }
    return 0;
}

sim::Tick
ElasticParams::shardCpu(EsChallenge c) const
{
    switch (c) {
      case EsChallenge::RTQ:
        return sim::microseconds(400);
      case EsChallenge::RNQIHBS:
        return sim::microseconds(3000);
      case EsChallenge::RSTQ:
        return sim::microseconds(1200);
      case EsChallenge::MA:
        return sim::microseconds(200);
    }
    return 0;
}

int
ElasticParams::shardLines(EsChallenge c) const
{
    switch (c) {
      case EsChallenge::RTQ:
        return 500;  // posting-list traversal
      case EsChallenge::RNQIHBS:
        return 2500; // nested docs + child join
      case EsChallenge::RSTQ:
        return 1200; // postings + doc-values for sorting
      case EsChallenge::MA:
        return 32;   // metadata only
    }
    return 0;
}

int
ElasticParams::shardMlp(EsChallenge c) const
{
    switch (c) {
      case EsChallenge::RTQ:
        return 1; // skip-list chasing
      case EsChallenge::RNQIHBS:
        return 2;
      case EsChallenge::RSTQ:
        return 3; // doc-values are sequential
      case EsChallenge::MA:
        return 8;
    }
    return 1;
}

sim::Tick
ElasticParams::mergeCpuPerShard(EsChallenge c) const
{
    switch (c) {
      case EsChallenge::RTQ:
        return sim::microseconds(30);
      case EsChallenge::RNQIHBS:
        return sim::microseconds(150);
      case EsChallenge::RSTQ:
        return sim::microseconds(120); // sort-merge of hits
      case EsChallenge::MA:
        return sim::microseconds(20);
    }
    return 0;
}

ElasticBenchmark::ElasticBenchmark(sys::Testbed &testbed,
                                   ElasticParams params)
    : _testbed(testbed), _params(params), _rng(params.seed)
{
    for (int i = 0; i < _params.shards; ++i) {
        Shard s;
        bool on_b = _testbed.scaleOut() && (i % 2 == 1);
        s.node = on_b ? &_testbed.serverB() : &_testbed.serverA();
        s.remote = on_b;
        os::AllocPolicy policy =
            on_b ? os::AllocPolicy::bind({s.node->localNode()})
                 : _testbed.serverPolicy();
        s.space = std::make_unique<os::AddressSpace>(
            s.node->mm(), s.node->localNode(), policy);
        s.path = std::make_unique<sys::MemoryPath>(*s.node);
        s.base = s.space->mmap(_params.shardBytes);
        _shards.push_back(std::move(s));
    }
}

void
ElasticBenchmark::queryShard(Shard &shard, std::function<void()> done)
{
    sys::CpuSet &cpu = shard.remote ? _testbed.cpuB()
                                    : _testbed.cpuA();
    sim::Tick work = static_cast<sim::Tick>(_rng.exponential(
        static_cast<double>(_params.shardCpu(_params.challenge))));

    // Random walk over the shard's index region.
    int lines = _params.shardLines(_params.challenge);
    std::vector<mem::Addr> addrs;
    addrs.reserve(static_cast<std::size_t>(lines));
    std::uint64_t region_lines =
        _params.shardBytes / mem::cachelineBytes;
    std::uint64_t h = _rng.next();
    for (int i = 0; i < lines; ++i) {
        addrs.push_back(shard.base +
                        (h % region_lines) * mem::cachelineBytes);
        h = h * 6364136223846793005ULL + 1442695040888963407ULL;
    }

    cpu.exec(work, [this, &shard, addrs = std::move(addrs),
                    done = std::move(done)]() mutable {
        shard.path->burst(*shard.space, std::move(addrs), false,
                          _params.shardMlp(_params.challenge),
                          std::move(done));
    });
}

void
ElasticBenchmark::runQuery(std::function<void()> done)
{
    auto &net = _testbed.network();

    // Coordinator parse/plan, then scatter to every shard.
    _testbed.cpuA().exec(
        _params.coordinatorCpu(_params.challenge),
        [this, &net, done = std::move(done)]() mutable {
        auto pending =
            std::make_shared<int>(static_cast<int>(_shards.size()));
        auto gathered = [this, done = std::move(done)]() mutable {
            // Merge phase: cost grows with the shard count -- the
            // synchronisation the paper blames for shard-scaling
            // degradation.
            sim::Tick merge =
                _params.mergeCpuPerShard(_params.challenge) *
                static_cast<sim::Tick>(_shards.size());
            _testbed.cpuA().exec(merge, std::move(done));
        };
        auto barrier = std::make_shared<std::function<void()>>(
            [pending, gathered = std::move(gathered)]() mutable {
                if (--*pending == 0)
                    gathered();
            });

        for (Shard &shard : _shards) {
            if (!shard.remote) {
                queryShard(shard, [barrier]() { (*barrier)(); });
                continue;
            }
            // Remote shard: request and per-shard results cross the
            // inter-server network.
            net.send("serverA", "serverB", 512,
                     [this, &shard, &net, barrier]() {
                queryShard(shard, [&net, barrier]() {
                    net.send("serverB", "serverA", 4096,
                             [barrier]() { (*barrier)(); });
                });
            });
        }
    });
}

ElasticResult
ElasticBenchmark::run()
{
    auto &eq = _testbed.serverA().dram().eventQueue();
    auto &net = _testbed.network();
    ElasticResult result;
    sim::Tick start = eq.now();

    auto issued = std::make_shared<std::uint64_t>(0);
    auto issue = std::make_shared<std::function<void()>>();
    // Weak self-reference: a shared capture in the function's own
    // target would cycle and leak the closed-loop state every run.
    std::weak_ptr<std::function<void()>> weakIssue = issue;
    *issue = [this, issued, weakIssue, &eq, &net, &result]() {
        if (*issued >= _params.totalOps)
            return;
        ++*issued;
        sim::Tick sent = eq.now();
        net.send("client", "serverA", 640, [this, sent, weakIssue,
                                            &eq, &net, &result]() {
            runQuery([this, sent, weakIssue, &eq, &net, &result]() {
                net.send("serverA", "client", 8192,
                         [sent, weakIssue, &eq, &result]() {
                             result.latencyUs.add(
                                 sim::toUs(eq.now() - sent));
                             if (auto next = weakIssue.lock())
                                 (*next)();
                         });
            });
        });
    };
    int concurrency = std::min<int>(
        _params.clients, static_cast<int>(_params.totalOps));
    for (int c = 0; c < concurrency; ++c)
        (*issue)();
    eq.run();

    result.elapsed = eq.now() - start;
    result.throughputOps =
        static_cast<double>(result.latencyUs.count()) /
        sim::toSec(result.elapsed);
    return result;
}

} // namespace tf::apps
