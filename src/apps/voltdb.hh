/**
 * @file
 * In-memory database: VoltDB-like partitioned executor + YCSB driver
 * (Section VI-D).
 *
 * VoltDB (H-Store) splits tables into partitions, each processed by a
 * single-threaded executor; transactions enter through a per-host
 * initiator (coordinator) and run to completion on their partition
 * without locking. The model reproduces exactly that structure:
 *
 *  - a coordinator CpuSet(1) that every transaction crosses (the
 *    shared component that keeps read-dominated YCSB workloads from
 *    scaling with partition count, matching Fig. 6);
 *  - one single-threaded executor per partition whose busy time
 *    (CPU + memory stalls) yields the utilised-CPU-cores metric;
 *  - per-operation memory work executed against kernel-placed pages:
 *    an index walk of dependent misses plus row data lines.
 *
 * IPC is derived the way the paper measures it: retired instructions
 * per op are fixed per YCSB operation type, cycles are CPU plus
 * memory-stall time at the core clock, and the package IPC is the
 * single-thread IPC scaled by the average utilised cores.
 */

#ifndef TF_APPS_VOLTDB_HH
#define TF_APPS_VOLTDB_HH

#include <memory>
#include <vector>

#include "system/cpuset.hh"
#include "system/memory_path.hh"
#include "system/testbed.hh"

namespace tf::apps {

enum class YcsbWorkload { A, B, C, D, E, F };

const char *ycsbName(YcsbWorkload w);

enum class DbOpType { Read, Update, Insert, Scan, ReadModifyWrite };

struct VoltDbParams
{
    int partitions = 32;
    /** Total table rows, split evenly across partitions. */
    std::uint64_t totalRows = 262144; // 256 MiB of 1 KiB rows
    /** Derived in the benchmark ctor: totalRows / partitions. */
    std::uint64_t rowsPerPartition = 0;
    std::uint32_t rowBytes = 1024; ///< YCSB: 10 fields x 100 B
    YcsbWorkload workload = YcsbWorkload::A;
    int clientThreads = 2000;
    std::uint64_t totalOps = 60000;
    /** Index walk depth (dependent misses per lookup). */
    int indexDepth = 6;
    /** Probability the initiator touches dispatch state in memory. */
    double coordinatorMemProb = 0.6;
    /** Extra initiator CPU per remote-partition txn (scale-out). */
    sim::Tick remoteDispatchCpu = sim::microseconds(0.6);
    /** Rows touched by a SCAN on average. */
    int scanRows = 50;
    /** Core clock for cycle accounting (POWER9). */
    double coreGhz = 3.8;
    /**
     * Back-end stall fraction of the CPU-work cycles themselves
     * (cache-hit latency, long-latency instructions) -- perf
     * attributes those to stalled-cycles-backend even with local
     * memory; the paper measures 55.5% for the local configuration.
     */
    double baselineStallFraction = 0.555;

    // CPU costs (means; jittered exponentially).
    sim::Tick coordinatorCpu = sim::microseconds(6);
    sim::Tick coordinatorScanCpu = sim::microseconds(70);
    sim::Tick readCpu = sim::microseconds(22);
    sim::Tick writeCpu = sim::microseconds(55);
    sim::Tick scanCpuPerRow = sim::microseconds(7);

    // Retired instructions per operation (for IPC accounting).
    double readInstr = 90e3;
    double writeInstr = 220e3;
    double scanInstrPerRow = 28e3;

    std::uint64_t seed = 11;
};

struct VoltDbResult
{
    double throughputOps = 0;
    /** Average utilised CPU cores (executors + coordinator). */
    double ucc = 0;
    /** Package IPC as the paper computes it. */
    double packageIpc = 0;
    /** Fraction of executor-busy cycles stalled on memory. */
    double backendStallFraction = 0;
    sim::SampleStat latencyUs;
    sim::Tick elapsed = 0;
};

class VoltDbBenchmark
{
  public:
    VoltDbBenchmark(sys::Testbed &testbed, VoltDbParams params);

    VoltDbResult run();

  private:
    struct Partition
    {
        std::unique_ptr<sys::CpuSet> executor;
        sys::Node *node; ///< where this partition's data lives
        std::unique_ptr<os::AddressSpace> space;
        std::unique_ptr<sys::MemoryPath> path;
        mem::Addr tableBase = 0;
        mem::Addr indexBase = 0;
        sim::Tick stallTime = 0; ///< memory time inside the executor
    };

    sys::Testbed &_testbed;
    VoltDbParams _params;
    sim::Rng _rng;
    std::unique_ptr<sys::CpuSet> _coordinator;
    std::unique_ptr<os::AddressSpace> _coordSpace;
    std::unique_ptr<sys::MemoryPath> _coordPath;
    mem::Addr _coordRegion = 0;
    std::vector<Partition> _partitions;
    double _instrRetired = 0;

    /** Initiator stage: CPU + (probabilistic) dispatch-state touch. */
    void coordinate(sim::Tick cpu, bool remotePartition,
                    std::function<void()> next);

    DbOpType sampleOp();
    std::uint64_t sampleKey(std::uint64_t issued);
    void runOp(Partition &p, DbOpType op, std::uint64_t row,
               std::function<void(std::uint64_t)> done);
    std::vector<mem::Addr> rowAddrs(const Partition &p,
                                    std::uint64_t row, int rows) const;
    std::vector<mem::Addr> indexAddrs(const Partition &p,
                                      std::uint64_t row) const;
    double instrFor(DbOpType op) const;
};

} // namespace tf::apps

#endif // TF_APPS_VOLTDB_HH
