#include "apps/memcached.hh"

#include <algorithm>
#include <cmath>

namespace tf::apps {

// ------------------------------------------------------------ server

MemcachedServer::MemcachedServer(std::string name,
                                 sys::Testbed &testbed,
                                 sys::Node &node,
                                 os::AllocPolicy policy,
                                 const MemcachedParams &params)
    : _node(node), _params(params),
      _space(node.mm(), node.localNode(), std::move(policy)),
      _path(node),
      _workers(name + ".workers",
               testbed.serverA().dram().eventQueue(), params.workers),
      _rng(params.seed ^ 0x5eed)
{
    _slabBase =
        _space.mmap(params.cacheItems *
                    static_cast<std::uint64_t>(params.slotBytes));
    _bufferBase = _space.mmap(params.bufferRegionBytes);
    // Hash index: one bucket array + chain nodes; modelled as a
    // region the chain walk touches.
    _indexBase = _space.mmap(params.cacheItems * 64);
    _freeSlots.reserve(params.cacheItems);
    for (std::uint32_t i = 0;
         i < static_cast<std::uint32_t>(params.cacheItems); ++i)
        _freeSlots.push_back(i);
}

std::vector<mem::Addr>
MemcachedServer::chainAddrs(std::uint64_t key) const
{
    // Dependent pointer walk through the hash index region.
    std::vector<mem::Addr> addrs;
    std::uint64_t h = key * 0x9e3779b97f4a7c15ULL;
    for (int i = 0; i < _params.chainDepth; ++i) {
        addrs.push_back(_indexBase +
                        (h % (_params.cacheItems * 64 /
                              mem::cachelineBytes)) *
                            mem::cachelineBytes);
        h = h * 6364136223846793005ULL + 1442695040888963407ULL;
    }
    return addrs;
}

std::vector<mem::Addr>
MemcachedServer::valueAddrs(std::uint32_t slot,
                            std::uint32_t bytes) const
{
    std::vector<mem::Addr> addrs;
    mem::Addr base = _slabBase + static_cast<mem::Addr>(slot) *
                                     _params.slotBytes;
    for (std::uint32_t off = 0; off < bytes;
         off += mem::cachelineBytes)
        addrs.push_back(base + off);
    return addrs;
}

std::uint32_t
MemcachedServer::insert(std::uint64_t key, std::uint32_t bytes)
{
    auto it = _map.find(key);
    if (it != _map.end()) {
        it->second->bytes = bytes;
        touch(key);
        return it->second->slot;
    }
    std::uint32_t slot;
    if (!_freeSlots.empty()) {
        slot = _freeSlots.back();
        _freeSlots.pop_back();
    } else {
        // Evict the LRU item and reuse its slot.
        Item victim = _lru.back();
        _lru.pop_back();
        _map.erase(victim.key);
        slot = victim.slot;
    }
    _lru.push_front(Item{key, slot, bytes});
    _map[key] = _lru.begin();
    return slot;
}

void
MemcachedServer::touch(std::uint64_t key)
{
    auto it = _map.find(key);
    if (it == _map.end())
        return;
    _lru.splice(_lru.begin(), _lru, it->second);
}

void
MemcachedServer::handle(std::uint64_t key, bool isGet,
                        std::uint32_t valueBytes,
                        std::function<void(bool, std::uint32_t)> done)
{
    // Server CPU (syscalls, event loop, protocol parse), then the
    // memory work: connection/buffer state, hash-chain walk, value.
    double jittered = _rng.normal(
        static_cast<double>(_params.serviceCpu),
        static_cast<double>(_params.serviceJitter));
    sim::Tick cpu = static_cast<sim::Tick>(
        std::max(jittered, 1e4 /* 10 ns floor */));
    _workers.exec(cpu, [this, key, isGet, valueBytes,
                        done = std::move(done)]() mutable {
        std::vector<mem::Addr> buffers;
        std::uint64_t region_lines =
            _params.bufferRegionBytes / mem::cachelineBytes;
        for (int i = 0; i < _params.bufferLines; ++i)
            buffers.push_back(
                _bufferBase +
                (_rng.next() % region_lines) * mem::cachelineBytes);
        auto chain = chainAddrs(key);
        chain.insert(chain.end(), buffers.begin(), buffers.end());
        _path.burst(_space, std::move(chain), false, 2,
                    [this, key, isGet, valueBytes,
                     done = std::move(done)]() mutable {
            auto it = _map.find(key);
            if (isGet) {
                if (it == _map.end()) {
                    _misses.inc();
                    done(false, 16); // "END" miss response
                    return;
                }
                _hits.inc();
                std::uint32_t bytes = it->second->bytes;
                touch(key);
                _path.burst(_space,
                            valueAddrs(it->second->slot, bytes),
                            false, 4,
                            [bytes, done = std::move(done)]() {
                                done(true, bytes + 48);
                            });
            } else {
                std::uint32_t slot = insert(key, valueBytes);
                _path.burst(_space, valueAddrs(slot, valueBytes),
                            true, 4,
                            [done = std::move(done)]() {
                                done(true, 16); // "STORED"
                            });
            }
        });
    });
}

void
MemcachedServer::warm(std::uint64_t key, std::uint32_t valueBytes,
                      std::function<void()> done)
{
    std::uint32_t slot = insert(key, valueBytes);
    _path.burst(_space, valueAddrs(slot, valueBytes), true, 8,
                std::move(done));
}

// --------------------------------------------------------- benchmark

MemcachedBenchmark::MemcachedBenchmark(sys::Testbed &testbed,
                                       MemcachedParams params)
    : _testbed(testbed), _params(params), _rng(params.seed),
      _zipf(params.keySpaceItems, params.zipfTheta)
{
    if (_testbed.scaleOut()) {
        // Each server holds half the cache; Twemproxy shards by key.
        MemcachedParams half = _params;
        half.cacheItems /= 2;
        _halfParams = std::make_unique<MemcachedParams>(half);
        _serverA = std::make_unique<MemcachedServer>(
            "mcA", testbed, testbed.serverA(),
            os::AllocPolicy::bind({testbed.serverA().localNode()}),
            *_halfParams);
        _serverB = std::make_unique<MemcachedServer>(
            "mcB", testbed, testbed.serverB(),
            os::AllocPolicy::bind({testbed.serverB().localNode()}),
            *_halfParams);
        _proxy = std::make_unique<sys::CpuSet>(
            "twemproxy", testbed.serverA().dram().eventQueue(), 4);
    } else {
        _serverA = std::make_unique<MemcachedServer>(
            "mcA", testbed, testbed.serverA(),
            testbed.serverPolicy(), _params);
    }
}

std::uint32_t
MemcachedBenchmark::sampleValueBytes()
{
    double v = _rng.logNormal(
        std::log(static_cast<double>(_params.meanValueBytes)), 0.6);
    return static_cast<std::uint32_t>(std::clamp(
        v, 64.0, static_cast<double>(_params.slotBytes)));
}

void
MemcachedBenchmark::warmup()
{
    auto &eq = _testbed.serverA().dram().eventQueue();
    // Fill the cache with SETs across the key space, most popular
    // keys last so they start resident.
    std::uint64_t fills = _params.cacheItems + _params.cacheItems / 4;
    auto remaining = std::make_shared<std::uint64_t>(fills);
    std::function<void(std::uint64_t)> next =
        [&](std::uint64_t i) { (void)i; };
    for (std::uint64_t i = 0; i < fills; ++i) {
        std::uint64_t key = _zipf(_rng);
        MemcachedServer *server = _serverA.get();
        if (_testbed.scaleOut() && (key & 1))
            server = _serverB.get();
        server->warm(key, sampleValueBytes(), [remaining]() {
            --*remaining;
        });
        // Batch warm-up to bound event-queue size.
        if (i % 1024 == 1023)
            eq.run();
    }
    eq.run();
}

void
MemcachedBenchmark::clientRequest(
    std::uint64_t key, bool isGet, std::uint32_t bytes,
    std::function<void(bool, bool)> done)
{
    auto &net = _testbed.network();
    std::uint64_t req_bytes = 96;

    if (!_testbed.scaleOut()) {
        net.send("client", "serverA", req_bytes,
                 [this, key, isGet, bytes,
                  done = std::move(done)]() mutable {
            _serverA->handle(key, isGet, bytes,
                             [this, isGet, done = std::move(done)](
                                 bool hit, std::uint32_t resp) {
                _testbed.network().send(
                    "serverA", "client", resp,
                    [isGet, hit, done = std::move(done)]() {
                        done(isGet, hit);
                    });
            });
        });
        return;
    }

    // Scale-out: client -> proxy (server A) -> shard -> proxy -> client.
    bool on_b = (key & 1) != 0;
    auto done_sp =
        std::make_shared<std::function<void(bool, bool)>>(
            std::move(done));
    net.send("client", "serverA", req_bytes, [this, key, isGet, bytes,
                                              on_b, done_sp]() {
        _proxy->exec(_params.proxyCpu, [this, key, isGet, bytes, on_b,
                                        done_sp]() {
            // Response path retraces proxy -> client.
            auto respond = [this, isGet, done_sp](
                               bool hit, std::uint32_t resp) {
                _proxy->exec(_params.proxyCpu / 2,
                             [this, isGet, hit, resp, done_sp]() {
                    _testbed.network().send(
                        "serverA", "client", resp,
                        [isGet, hit, done_sp]() {
                            (*done_sp)(isGet, hit);
                        });
                });
            };
            if (on_b) {
                _testbed.network().send(
                    "serverA", "serverB", 96,
                    [this, key, isGet, bytes, respond]() {
                        _serverB->handle(
                            key, isGet, bytes,
                            [this, respond](bool hit,
                                            std::uint32_t resp) {
                                _testbed.network().send(
                                    "serverB", "serverA", resp,
                                    [respond, hit, resp]() {
                                        respond(hit, resp);
                                    });
                            });
                    });
            } else {
                _serverA->handle(key, isGet, bytes, respond);
            }
        });
    });
}

MemcachedResult
MemcachedBenchmark::run()
{
    auto &eq = _testbed.serverA().dram().eventQueue();
    warmup();

    MemcachedResult result;
    sim::Tick start = eq.now();
    auto outstanding =
        std::make_shared<int>(_params.clientThreads);

    // Closed-loop client threads.
    struct Thread
    {
        std::uint64_t remaining;
    };
    auto threads = std::make_shared<std::vector<Thread>>(
        _params.clientThreads,
        Thread{_params.requestsPerThread});

    auto issue = std::make_shared<std::function<void(int)>>();
    // Weak self-reference: a shared capture in the function's own
    // target would cycle and leak the closed-loop state every run.
    std::weak_ptr<std::function<void(int)>> weakIssue = issue;
    *issue = [this, threads, weakIssue, outstanding, &result,
              &eq](int t) {
        Thread &th = (*threads)[static_cast<std::size_t>(t)];
        if (th.remaining == 0) {
            --*outstanding;
            return;
        }
        --th.remaining;
        std::uint64_t key = _zipf(_rng);
        bool is_get = _rng.uniform() < _params.getFraction;
        std::uint32_t bytes = sampleValueBytes();
        sim::Tick sent = eq.now();
        // Client-side stack (load generator + kernel) before the
        // request hits the wire; counted in the measured latency.
        sim::Tick stack = static_cast<sim::Tick>(std::max(
            _rng.normal(static_cast<double>(_params.clientStack),
                        static_cast<double>(_params.clientJitter)),
            1e4));
        eq.scheduleIn(stack, [this, key, is_get, bytes, t, sent,
                              weakIssue, &result, &eq]() {
            clientRequest(key, is_get, bytes,
                          [this, t, sent, weakIssue, &result,
                           &eq](bool was_get, bool hit) {
                              (void)hit;
                              double us = sim::toUs(eq.now() - sent);
                              if (was_get)
                                  result.getLatencyUs.add(us);
                              else
                                  result.setLatencyUs.add(us);
                              if (auto next = weakIssue.lock())
                                  (*next)(t);
                          });
        });
    };
    for (int t = 0; t < _params.clientThreads; ++t)
        (*issue)(t);
    eq.run();

    result.elapsed = eq.now() - start;
    std::uint64_t total_hits = _serverA->hits();
    std::uint64_t total_misses = _serverA->misses();
    if (_serverB) {
        total_hits += _serverB->hits();
        total_misses += _serverB->misses();
    }
    result.hitRatio =
        total_hits + total_misses == 0
            ? 0.0
            : static_cast<double>(total_hits) /
                  static_cast<double>(total_hits + total_misses);
    double ops = static_cast<double>(result.getLatencyUs.count() +
                                     result.setLatencyUs.count());
    result.throughputOps = ops / sim::toSec(result.elapsed);
    return result;
}

} // namespace tf::apps
