/**
 * @file
 * STREAM sustainable-memory-bandwidth benchmark model (Section VI-C).
 *
 * Reproduces McCalpin's four kernels with their exact per-iteration
 * traffic:
 *   copy  : c[i] = a[i]            (16 B/iter, 0 FLOP)
 *   scale : b[i] = s*c[i]          (16 B/iter, 1 FLOP)
 *   add   : c[i] = a[i]+b[i]       (24 B/iter, 1 FLOP)
 *   triad : a[i] = b[i]+s*c[i]     (24 B/iter, 2 FLOP)
 *
 * Arrays are allocated through the kernel page policy of the active
 * testbed configuration, so the same code measures local, single-/
 * bonding-disaggregated and interleaved bandwidth. OpenMP threading
 * is modelled as per-thread slices processed concurrently with a
 * per-thread memory-level parallelism budget (POWER9 prefetch
 * streams).
 */

#ifndef TF_APPS_STREAM_HH
#define TF_APPS_STREAM_HH

#include <string>
#include <vector>

#include "system/memory_path.hh"
#include "system/testbed.hh"

namespace tf::apps {

enum class StreamKernel { Copy, Scale, Add, Triad };

const char *streamKernelName(StreamKernel k);

struct StreamParams
{
    /** Array elements (8 B each); paper: 160 M. Scaled for sim. */
    std::uint64_t elements = 4 * 1024 * 1024; // 32 MiB per array
    int threads = 8;
    /** Outstanding cacheline misses per thread (prefetch depth). */
    int mlpPerThread = 24;
    /** Lines per processing chunk between events. */
    std::uint32_t chunkLines = 64;
    /** Repetitions; best-of is reported like STREAM does. */
    int iterations = 2;
};

struct StreamResult
{
    StreamKernel kernel;
    double bestGiBs = 0;   ///< best-iteration bandwidth
    double avgGiBs = 0;
    sim::Tick elapsed = 0; ///< total simulated time
};

class StreamBenchmark
{
  public:
    StreamBenchmark(sys::Testbed &testbed, StreamParams params);

    /** Run one kernel to completion (drains the event queue). */
    StreamResult run(StreamKernel kernel);

    /** Bytes the kernel counts per iteration (per element). */
    static std::uint32_t bytesPerElement(StreamKernel k);

  private:
    sys::Testbed &_testbed;
    StreamParams _params;
    os::AddressSpace _space;
    sys::MemoryPath _path;
    mem::Addr _a = 0, _b = 0, _c = 0;

    sim::Tick runOnce(StreamKernel kernel);
};

} // namespace tf::apps

#endif // TF_APPS_STREAM_HH
