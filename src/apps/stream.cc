#include "apps/stream.hh"

namespace tf::apps {

const char *
streamKernelName(StreamKernel k)
{
    switch (k) {
      case StreamKernel::Copy:
        return "copy";
      case StreamKernel::Scale:
        return "scale";
      case StreamKernel::Add:
        return "add";
      case StreamKernel::Triad:
        return "triad";
    }
    return "?";
}

std::uint32_t
StreamBenchmark::bytesPerElement(StreamKernel k)
{
    switch (k) {
      case StreamKernel::Copy:
      case StreamKernel::Scale:
        return 16; // 1 read + 1 write
      case StreamKernel::Add:
      case StreamKernel::Triad:
        return 24; // 2 reads + 1 write
    }
    return 0;
}

StreamBenchmark::StreamBenchmark(sys::Testbed &testbed,
                                 StreamParams params)
    : _testbed(testbed), _params(params),
      _space(testbed.serverA().mm(), testbed.serverA().localNode(),
             testbed.serverPolicy()),
      _path(testbed.serverA())
{
    std::uint64_t bytes = _params.elements * 8;
    _a = _space.mmap(bytes);
    _b = _space.mmap(bytes);
    _c = _space.mmap(bytes);
}

sim::Tick
StreamBenchmark::runOnce(StreamKernel kernel)
{
    auto &eq = _testbed.serverA().dram().eventQueue();
    sim::Tick start = eq.now();

    // Array roles per kernel: reads then the write target.
    std::vector<mem::Addr> read_arrays;
    mem::Addr write_array = 0;
    switch (kernel) {
      case StreamKernel::Copy:
        read_arrays = {_a};
        write_array = _c;
        break;
      case StreamKernel::Scale:
        read_arrays = {_c};
        write_array = _b;
        break;
      case StreamKernel::Add:
        read_arrays = {_a, _b};
        write_array = _c;
        break;
      case StreamKernel::Triad:
        read_arrays = {_b, _c};
        write_array = _a;
        break;
    }

    const std::uint64_t total_lines =
        _params.elements * 8 / mem::cachelineBytes;
    const std::uint64_t lines_per_thread =
        total_lines / static_cast<std::uint64_t>(_params.threads);

    struct ThreadState
    {
        std::uint64_t nextLine;
        std::uint64_t endLine;
    };
    auto states = std::make_shared<std::vector<ThreadState>>();
    for (int t = 0; t < _params.threads; ++t) {
        std::uint64_t begin =
            static_cast<std::uint64_t>(t) * lines_per_thread;
        states->push_back(
            ThreadState{begin, begin + lines_per_thread});
    }

    // Each simulated OpenMP thread walks its slice in chunks; every
    // chunk is a burst of read-line fills plus write-line RFO fills
    // (dirty evictions surface as write-back traffic automatically).
    auto step = std::make_shared<std::function<void(int)>>();
    // Continuations hold the function weakly: capturing the
    // shared_ptr in its own target is a reference cycle that leaks
    // every per-run state. The local shared_ptr outlives eq.run().
    std::weak_ptr<std::function<void(int)>> weakStep = step;
    *step = [this, states, weakStep, read_arrays, write_array](int t) {
        ThreadState &st = (*states)[static_cast<std::size_t>(t)];
        if (st.nextLine >= st.endLine)
            return; // thread done
        std::uint64_t chunk =
            std::min<std::uint64_t>(_params.chunkLines,
                                    st.endLine - st.nextLine);
        // Loads and write-allocate fills overlap on the prefetch
        // streams and store queue: one mixed burst per chunk.
        std::vector<sys::Access> accesses;
        for (std::uint64_t i = 0; i < chunk; ++i) {
            std::uint64_t line = st.nextLine + i;
            for (mem::Addr base : read_arrays)
                accesses.push_back(sys::Access{
                    base + line * mem::cachelineBytes, false});
            accesses.push_back(sys::Access{
                write_array + line * mem::cachelineBytes, true});
        }
        st.nextLine += chunk;
        _path.burstMixed(_space, std::move(accesses),
                         _params.mlpPerThread,
                         [weakStep, t]() {
                             if (auto s = weakStep.lock())
                                 (*s)(t);
                         },
                         /*streamingStores=*/true);
    };

    for (int t = 0; t < _params.threads; ++t)
        (*step)(t);
    eq.run();
    return eq.now() - start;
}

StreamResult
StreamBenchmark::run(StreamKernel kernel)
{
    StreamResult result;
    result.kernel = kernel;

    double best = 0;
    double sum = 0;
    sim::Tick total = 0;
    for (int it = 0; it < _params.iterations; ++it) {
        sim::Tick t = runOnce(kernel);
        double gib =
            static_cast<double>(_params.elements) *
            bytesPerElement(kernel) /
            (1024.0 * 1024 * 1024) / sim::toSec(t);
        best = std::max(best, gib);
        sum += gib;
        total += t;
    }
    result.bestGiBs = best;
    result.avgGiBs = sum / _params.iterations;
    result.elapsed = total;
    return result;
}

} // namespace tf::apps
