/**
 * @file
 * In-memory application-level caching: Memcached + the "ETC" load
 * generator (Section VI-E).
 *
 * The server model is an LRU key-value cache: a slab of value slots
 * in a kernel-policy-placed address space, a hash-chain walk per
 * request (dependent cacheline accesses) and a value read/write
 * burst. The load generator follows the paper's setup: warm-up SETs
 * fill the cache to its configured size, then closed-loop client
 * threads issue GET/SET at 30:1 with keys drawn Zipf(theta) from a
 * larger key space, yielding the ~80% hit ratio reported for
 * Facebook's ETC pool.
 *
 * The scale-out configuration routes every request through a
 * Twemproxy model on server A that shards keys across both servers,
 * adding the proxy hop the paper describes.
 */

#ifndef TF_APPS_MEMCACHED_HH
#define TF_APPS_MEMCACHED_HH

#include <list>
#include <unordered_map>

#include "system/cpuset.hh"
#include "system/memory_path.hh"
#include "system/testbed.hh"

namespace tf::apps {

struct MemcachedParams
{
    /** LRU capacity in items (paper: 10 GiB; scaled by slot size). */
    std::uint64_t cacheItems = 200000;
    /** Key space size (paper: 15 GiB => 1.5x the cache). */
    std::uint64_t keySpaceItems = 300000;
    double zipfTheta = 1.0;
    /** Value slot (slab class) in bytes. */
    std::uint32_t slotBytes = 1024;
    /** Mean value size; sizes are log-normal, ETC-like small values. */
    std::uint32_t meanValueBytes = 400;
    /** Hash-chain walk depth (dependent accesses per lookup). */
    int chainDepth = 4;
    /** Server worker threads (libevent workers). */
    int workers = 32;
    /** Per-request server CPU cost (mean, normal jitter). */
    sim::Tick serviceCpu = sim::microseconds(60);
    sim::Tick serviceJitter = sim::microseconds(18);
    /**
     * Connection/buffer state the server touches per request
     * (rx/tx buffers, item headers, libevent state). These live in
     * policy-placed memory, which is what makes the end-to-end
     * latency sensitive to disaggregation in Fig. 8.
     */
    int bufferLines = 44;
    std::uint64_t bufferRegionBytes = 256ULL * 1024 * 1024;
    /**
     * Client-side stack cost per request (YCSB-style load generator,
     * kernel network stack): dominates the paper's ~600 us GET
     * round trip.
     */
    sim::Tick clientStack = sim::microseconds(470);
    sim::Tick clientJitter = sim::microseconds(55);
    /** Twemproxy per-request CPU cost (scale-out only). */
    sim::Tick proxyCpu = sim::microseconds(12);
    int clientThreads = 64;
    std::uint64_t requestsPerThread = 4000;
    double getFraction = 30.0 / 31.0; ///< GET:SET = 30:1
    std::uint64_t seed = 7;
};

struct MemcachedResult
{
    sim::SampleStat getLatencyUs;
    sim::SampleStat setLatencyUs;
    double hitRatio = 0;
    double throughputOps = 0;
    sim::Tick elapsed = 0;
};

/** One Memcached server instance bound to a node. */
class MemcachedServer
{
  public:
    MemcachedServer(std::string name, sys::Testbed &testbed,
                    sys::Node &node, os::AllocPolicy policy,
                    const MemcachedParams &params);

    /**
     * Handle a request for @p key.
     * @param isGet GET vs SET.
     * @param valueBytes value size (SET stores it; GET returns the
     *        stored size on hit).
     * @param done (hit, responseBytes) after CPU + memory work.
     */
    void handle(std::uint64_t key, bool isGet,
                std::uint32_t valueBytes,
                std::function<void(bool, std::uint32_t)> done);

    /** Warm-up SET (no CPU accounting, memory traffic only). */
    void warm(std::uint64_t key, std::uint32_t valueBytes,
              std::function<void()> done);

    std::uint64_t hits() const { return _hits.value(); }
    std::uint64_t misses() const { return _misses.value(); }
    std::size_t residentItems() const { return _lru.size(); }

  private:
    struct Item
    {
        std::uint64_t key;
        std::uint32_t slot;
        std::uint32_t bytes;
    };

    sys::Node &_node;
    const MemcachedParams &_params;
    os::AddressSpace _space;
    sys::MemoryPath _path;
    sys::CpuSet _workers;
    sim::Rng _rng;
    mem::Addr _slabBase = 0;
    mem::Addr _indexBase = 0;
    mem::Addr _bufferBase = 0;
    std::list<Item> _lru; // front = most recent
    std::unordered_map<std::uint64_t, std::list<Item>::iterator> _map;
    std::vector<std::uint32_t> _freeSlots;
    sim::Counter _hits;
    sim::Counter _misses;

    std::vector<mem::Addr> chainAddrs(std::uint64_t key) const;
    std::vector<mem::Addr> valueAddrs(std::uint32_t slot,
                                      std::uint32_t bytes) const;
    /** LRU bookkeeping; returns the slot for the value. */
    std::uint32_t insert(std::uint64_t key, std::uint32_t bytes);
    void touch(std::uint64_t key);
};

/** Full benchmark: warm-up + timed closed-loop run per Fig. 8. */
class MemcachedBenchmark
{
  public:
    MemcachedBenchmark(sys::Testbed &testbed, MemcachedParams params);

    MemcachedResult run();

  private:
    sys::Testbed &_testbed;
    MemcachedParams _params;
    sim::Rng _rng;
    sim::ZipfGenerator _zipf;
    /** Halved per-server parameters used in the scale-out split. */
    std::unique_ptr<MemcachedParams> _halfParams;
    std::unique_ptr<MemcachedServer> _serverA;
    std::unique_ptr<MemcachedServer> _serverB; // scale-out only
    std::unique_ptr<sys::CpuSet> _proxy;       // scale-out only

    std::uint32_t sampleValueBytes();
    void warmup();
    /** Dispatch one request from the client; cb(getLatency, isGet). */
    void clientRequest(std::uint64_t key, bool isGet,
                       std::uint32_t bytes,
                       std::function<void(bool, bool)> done);
};

} // namespace tf::apps

#endif // TF_APPS_MEMCACHED_HH
