/**
 * @file
 * Data analytics: Elasticsearch-like sharded search engine driven by
 * an ESRally-style "nested" track (Section VI-F).
 *
 * An index is subdivided into shards, each a fully functional
 * independent index region. A query enters a coordinating node,
 * fans out to every shard (a task on the node's hardware threads
 * that combines CPU work with a posting-list/doc-values memory
 * walk), synchronises on a gather barrier, pays a merge cost that
 * grows with the shard count, and returns to the client.
 *
 * Challenges reproduce the four the paper reports from the "nested"
 * track (StackOverflow dump):
 *   RTQ      random tag query           - per-shard CPU-heavy;
 *   RNQIHBS  nested query, >=100 answers before a random date
 *                                       - heaviest, sync-dominated;
 *   RSTQ     sorted tag query           - gather/sort at coordinator;
 *   MA       match-all                  - cheap, coordinator-bound.
 *
 * In scale-out the shards are split over both servers (double the
 * hardware threads) at the price of a network hop per remote shard.
 */

#ifndef TF_APPS_ELASTIC_HH
#define TF_APPS_ELASTIC_HH

#include <memory>
#include <vector>

#include "system/cpuset.hh"
#include "system/memory_path.hh"
#include "system/testbed.hh"

namespace tf::apps {

enum class EsChallenge { RTQ, RNQIHBS, RSTQ, MA };

const char *esChallengeName(EsChallenge c);

struct ElasticParams
{
    int shards = 5;
    EsChallenge challenge = EsChallenge::RTQ;
    /** Per-shard index region (posting lists + doc values). */
    std::uint64_t shardBytes = 16ULL * 1024 * 1024;
    /** ESRally search clients (closed loop). */
    int clients = 32;
    std::uint64_t totalOps = 1500;
    std::uint64_t seed = 13;

    // Per-challenge base costs (tuned against the paper's absolute
    // throughput scales; see EXPERIMENTS.md).
    sim::Tick coordinatorCpu(EsChallenge c) const;
    sim::Tick shardCpu(EsChallenge c) const;
    /** Cacheline touches per shard visit. */
    int shardLines(EsChallenge c) const;
    /** Memory-level parallelism of the shard walk. */
    int shardMlp(EsChallenge c) const;
    /** Per-shard merge cost at the coordinator. */
    sim::Tick mergeCpuPerShard(EsChallenge c) const;
};

struct ElasticResult
{
    double throughputOps = 0;
    sim::SampleStat latencyUs;
    sim::Tick elapsed = 0;
};

class ElasticBenchmark
{
  public:
    ElasticBenchmark(sys::Testbed &testbed, ElasticParams params);

    ElasticResult run();

  private:
    struct Shard
    {
        sys::Node *node;
        std::unique_ptr<os::AddressSpace> space;
        std::unique_ptr<sys::MemoryPath> path;
        mem::Addr base = 0;
        bool remote = false; ///< lives on server B (scale-out)
    };

    sys::Testbed &_testbed;
    ElasticParams _params;
    sim::Rng _rng;
    std::vector<Shard> _shards;

    void queryShard(Shard &shard, std::function<void()> done);
    void runQuery(std::function<void()> done);
};

} // namespace tf::apps

#endif // TF_APPS_ELASTIC_HH
