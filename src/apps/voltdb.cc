#include "apps/voltdb.hh"

#include <deque>

namespace tf::apps {

const char *
ycsbName(YcsbWorkload w)
{
    switch (w) {
      case YcsbWorkload::A:
        return "A";
      case YcsbWorkload::B:
        return "B";
      case YcsbWorkload::C:
        return "C";
      case YcsbWorkload::D:
        return "D";
      case YcsbWorkload::E:
        return "E";
      case YcsbWorkload::F:
        return "F";
    }
    return "?";
}

VoltDbBenchmark::VoltDbBenchmark(sys::Testbed &testbed,
                                 VoltDbParams params)
    : _testbed(testbed), _params(params), _rng(params.seed)
{
    if (_params.rowsPerPartition == 0)
        _params.rowsPerPartition = std::max<std::uint64_t>(
            1, _params.totalRows /
                   static_cast<std::uint64_t>(_params.partitions));
    auto &eq = testbed.serverA().dram().eventQueue();
    _coordinator = std::make_unique<sys::CpuSet>("coordinator", eq, 1);
    // The initiator's dispatch queues / result buffers live in the
    // same policy-placed memory as the database.
    _coordSpace = std::make_unique<os::AddressSpace>(
        testbed.serverA().mm(), testbed.serverA().localNode(),
        testbed.serverPolicy());
    _coordPath = std::make_unique<sys::MemoryPath>(testbed.serverA());
    _coordRegion = _coordSpace->mmap(96ULL * 1024 * 1024);

    for (int i = 0; i < _params.partitions; ++i) {
        Partition p;
        bool on_b = _testbed.scaleOut() && (i % 2 == 1);
        p.node = on_b ? &_testbed.serverB() : &_testbed.serverA();
        os::AllocPolicy policy =
            on_b ? os::AllocPolicy::bind({p.node->localNode()})
                 : _testbed.serverPolicy();
        p.executor = std::make_unique<sys::CpuSet>(
            "exec" + std::to_string(i), eq, 1);
        p.space = std::make_unique<os::AddressSpace>(
            p.node->mm(), p.node->localNode(), policy);
        p.path = std::make_unique<sys::MemoryPath>(*p.node);
        p.tableBase = p.space->mmap(_params.rowsPerPartition *
                                    _params.rowBytes);
        p.indexBase = p.space->mmap(_params.rowsPerPartition * 64);
        _partitions.push_back(std::move(p));
    }
}

void
VoltDbBenchmark::coordinate(sim::Tick cpu, bool remotePartition,
                            std::function<void()> next)
{
    auto &eq = _testbed.serverA().dram().eventQueue();
    if (remotePartition)
        cpu += _params.remoteDispatchCpu;
    bool touch = _rng.uniform() < _params.coordinatorMemProb;
    mem::Addr line = _coordRegion +
                     (_rng.next() % (96ULL * 1024 * 1024 / 128)) * 128;
    _coordinator->exec(cpu, [this, touch, line, &eq,
                             next = std::move(next)]() mutable {
        if (!touch) {
            next();
            return;
        }
        sim::Tick start = eq.now();
        _coordPath->burst(*_coordSpace, {line}, false, 1,
                          [this, start, &eq,
                           next = std::move(next)]() {
            // The initiator thread is blocked for the stall.
            _coordinator->exec(eq.now() - start, []() {});
            next();
        });
    });
}

DbOpType
VoltDbBenchmark::sampleOp()
{
    double u = _rng.uniform();
    switch (_params.workload) {
      case YcsbWorkload::A:
        return u < 0.5 ? DbOpType::Read : DbOpType::Update;
      case YcsbWorkload::B:
        return u < 0.95 ? DbOpType::Read : DbOpType::Update;
      case YcsbWorkload::C:
        return DbOpType::Read;
      case YcsbWorkload::D:
        return u < 0.95 ? DbOpType::Read : DbOpType::Insert;
      case YcsbWorkload::E:
        return u < 0.95 ? DbOpType::Scan : DbOpType::Insert;
      case YcsbWorkload::F:
        return u < 0.5 ? DbOpType::Read : DbOpType::ReadModifyWrite;
    }
    return DbOpType::Read;
}

std::uint64_t
VoltDbBenchmark::sampleKey(std::uint64_t issued)
{
    std::uint64_t space = _params.rowsPerPartition *
                          static_cast<std::uint64_t>(
                              _params.partitions);
    if (_params.workload == YcsbWorkload::D) {
        // "Latest" distribution: read what was recently inserted.
        std::uint64_t window = std::min<std::uint64_t>(space, 2048);
        return (issued + space - _rng.below(window)) % space;
    }
    // Zipfian over the whole key space (YCSB default). A static
    // generator member would leak across runs; scrambling keeps hot
    // keys spread over partitions like YCSB's hash does.
    static thread_local sim::ZipfGenerator zipf(1, 1.0);
    static thread_local std::uint64_t zipf_n = 1;
    if (zipf_n != space) {
        zipf = sim::ZipfGenerator(space, 0.99);
        zipf_n = space;
    }
    std::uint64_t rank = zipf(_rng);
    return (rank * 0x9e3779b97f4a7c15ULL) % space;
}

std::vector<mem::Addr>
VoltDbBenchmark::indexAddrs(const Partition &p, std::uint64_t row) const
{
    std::vector<mem::Addr> addrs;
    std::uint64_t h = row * 0x2545f4914f6cdd1dULL;
    std::uint64_t lines =
        _params.rowsPerPartition * 64 / mem::cachelineBytes;
    for (int i = 0; i < _params.indexDepth; ++i) {
        addrs.push_back(p.indexBase +
                        (h % lines) * mem::cachelineBytes);
        h = h * 6364136223846793005ULL + 1442695040888963407ULL;
    }
    return addrs;
}

std::vector<mem::Addr>
VoltDbBenchmark::rowAddrs(const Partition &p, std::uint64_t row,
                          int rows) const
{
    std::vector<mem::Addr> addrs;
    for (int r = 0; r < rows; ++r) {
        std::uint64_t idx =
            (row + static_cast<std::uint64_t>(r)) %
            _params.rowsPerPartition;
        mem::Addr base =
            p.tableBase + idx * _params.rowBytes;
        for (std::uint32_t off = 0; off < _params.rowBytes;
             off += mem::cachelineBytes)
            addrs.push_back(base + off);
    }
    return addrs;
}

double
VoltDbBenchmark::instrFor(DbOpType op) const
{
    switch (op) {
      case DbOpType::Read:
        return _params.readInstr;
      case DbOpType::Update:
      case DbOpType::Insert:
        return _params.writeInstr;
      case DbOpType::Scan:
        return _params.scanInstrPerRow * _params.scanRows;
      case DbOpType::ReadModifyWrite:
        return _params.readInstr + _params.writeInstr;
    }
    return 0;
}

void
VoltDbBenchmark::runOp(Partition &p, DbOpType op, std::uint64_t row,
                       std::function<void(std::uint64_t)> done)
{
    auto &eq = _testbed.serverA().dram().eventQueue();

    sim::Tick cpu_mean = 0;
    int rows = 1;
    bool write = false;
    bool rmw = false;
    switch (op) {
      case DbOpType::Read:
        cpu_mean = _params.readCpu;
        break;
      case DbOpType::Update:
      case DbOpType::Insert:
        cpu_mean = _params.writeCpu;
        write = true;
        break;
      case DbOpType::Scan:
        cpu_mean = _params.scanCpuPerRow *
                   static_cast<sim::Tick>(_params.scanRows);
        rows = _params.scanRows;
        break;
      case DbOpType::ReadModifyWrite:
        cpu_mean = _params.readCpu + _params.writeCpu;
        write = true;
        rmw = true;
        break;
    }
    sim::Tick cpu = static_cast<sim::Tick>(
        _rng.exponential(static_cast<double>(cpu_mean)));

    // Executor is single-threaded: CPU phase, then the memory phase
    // keeps the executor occupied (back-end stalls).
    p.executor->exec(cpu, [this, &p, row, rows, write, rmw, &eq,
                           done = std::move(done)]() mutable {
        sim::Tick mem_start = eq.now();
        auto finish = [this, &p, mem_start, &eq,
                       done = std::move(done)]() {
            sim::Tick stall = eq.now() - mem_start;
            p.stallTime += stall;
            // Occupy the executor for the stall so queued ops wait
            // and UCC reflects memory-bound busy time.
            p.executor->exec(stall, []() {});
            std::uint32_t resp =
                64 + 0; // row payloads accounted by caller
            done(resp);
        };
        auto index = indexAddrs(p, row);
        p.path->burst(*p.space, std::move(index), false, 1,
                      [this, &p, row, rows, write, rmw,
                       finish = std::move(finish)]() mutable {
            auto data = rowAddrs(p, row, rows);
            int mlp = rows > 1 ? 8 : 2;
            if (!rmw) {
                p.path->burst(*p.space, std::move(data), write, mlp,
                              std::move(finish));
            } else {
                auto data2 = data;
                p.path->burst(*p.space, std::move(data), false, mlp,
                              [this, &p, data2 = std::move(data2),
                               finish = std::move(finish)]() mutable {
                    p.path->burst(*p.space, std::move(data2), true,
                                  4, std::move(finish));
                });
            }
        });
    });
}

VoltDbResult
VoltDbBenchmark::run()
{
    auto &eq = _testbed.serverA().dram().eventQueue();
    auto &net = _testbed.network();
    VoltDbResult result;
    sim::Tick start = eq.now();

    auto issued = std::make_shared<std::uint64_t>(0);
    auto completed = std::make_shared<std::uint64_t>(0);

    auto issue = std::make_shared<std::function<void()>>();
    // Weak self-reference: a shared capture in the function's own
    // target would cycle and leak the closed-loop state every run.
    std::weak_ptr<std::function<void()>> weakIssue = issue;
    *issue = [this, issued, completed, weakIssue, &eq, &net,
              &result]() {
        if (*issued >= _params.totalOps)
            return;
        ++*issued;
        DbOpType op = sampleOp();
        std::uint64_t key = sampleKey(*issued);
        std::size_t pidx = static_cast<std::size_t>(
            key % static_cast<std::uint64_t>(_params.partitions));
        std::uint64_t row = key / static_cast<std::uint64_t>(
                                      _params.partitions);
        Partition &p = _partitions[pidx];
        sim::Tick sent = eq.now();

        sim::Tick coord_cpu = op == DbOpType::Scan
                                  ? _params.coordinatorScanCpu
                                  : _params.coordinatorCpu;

        auto finish = [this, sent, completed, weakIssue, &eq,
                       &result](std::uint64_t resp) {
            (void)resp;
            result.latencyUs.add(sim::toUs(eq.now() - sent));
            ++*completed;
            if (auto next = weakIssue.lock())
                (*next)();
        };

        bool remote_partition =
            _testbed.scaleOut() && p.node == &_testbed.serverB();
        net.send("client", "serverA", 128,
                 [this, &p, op, row, coord_cpu, &net,
                  remote_partition,
                  finish = std::move(finish)]() mutable {
            coordinate(coord_cpu, remote_partition,
                       [this, &p, op, row, &net, remote_partition,
                        finish = std::move(finish)]() mutable {
                auto execute = [this, &p, op, row,
                                finish = std::move(finish),
                                remote_partition, &net]() mutable {
                    runOp(p, op, row,
                          [this, remote_partition, &net,
                           finish = std::move(finish)](
                              std::uint64_t resp) mutable {
                        // Responses always leave through the
                        // coordinator host (server A).
                        auto reply = [&net, resp,
                                      finish = std::move(finish)]() mutable {
                            net.send("serverA", "client", 256 + resp,
                                     [finish = std::move(finish),
                                      resp]() mutable {
                                         finish(resp);
                                     });
                        };
                        if (remote_partition) {
                            net.send("serverB", "serverA",
                                     256 + resp, std::move(reply));
                        } else {
                            reply();
                        }
                    });
                };
                if (remote_partition) {
                    net.send("serverA", "serverB", 128,
                             std::move(execute));
                } else {
                    execute();
                }
            });
        });
    };

    int concurrency = std::min<int>(
        _params.clientThreads,
        static_cast<int>(_params.totalOps));
    for (int c = 0; c < concurrency; ++c)
        (*issue)();
    eq.run();

    result.elapsed = eq.now() - start;
    double secs = sim::toSec(result.elapsed);
    result.throughputOps =
        static_cast<double>(*completed) / secs;

    sim::Tick exec_busy = 0;
    sim::Tick stall = 0;
    for (auto &p : _partitions) {
        exec_busy += p.executor->busyTime();
        stall += p.stallTime;
    }
    sim::Tick coord_busy = _coordinator->busyTime();
    result.ucc = static_cast<double>(exec_busy + coord_busy) /
                 static_cast<double>(result.elapsed);
    // Executor busy time = CPU work + memory stalls; the CPU-work
    // share carries its own baseline back-end stall fraction.
    result.backendStallFraction =
        exec_busy == 0
            ? 0.0
            : (_params.baselineStallFraction *
                   static_cast<double>(exec_busy - stall) +
               static_cast<double>(stall)) /
                  static_cast<double>(exec_busy);

    // IPC accounting (paper Fig. 6 methodology): expected retired
    // instructions per op from the workload mix.
    double per_op = 0;
    switch (_params.workload) {
      case YcsbWorkload::A:
        per_op = 0.5 * _params.readInstr + 0.5 * _params.writeInstr;
        break;
      case YcsbWorkload::B:
        per_op = 0.95 * _params.readInstr + 0.05 * _params.writeInstr;
        break;
      case YcsbWorkload::C:
        per_op = _params.readInstr;
        break;
      case YcsbWorkload::D:
        per_op = 0.95 * _params.readInstr + 0.05 * _params.writeInstr;
        break;
      case YcsbWorkload::E:
        per_op = 0.95 * _params.scanInstrPerRow * _params.scanRows +
                 0.05 * _params.writeInstr;
        break;
      case YcsbWorkload::F:
        per_op = 0.5 * _params.readInstr +
                 0.5 * (_params.readInstr + _params.writeInstr);
        break;
    }
    _instrRetired = per_op * static_cast<double>(*completed);
    double busy_cycles = sim::toSec(exec_busy) * _params.coreGhz * 1e9;
    double single_ipc =
        busy_cycles == 0 ? 0.0 : _instrRetired / busy_cycles;
    double exec_ucc = static_cast<double>(exec_busy) /
                      static_cast<double>(result.elapsed);
    result.packageIpc = single_ipc * exec_ucc;
    return result;
}

} // namespace tf::apps
