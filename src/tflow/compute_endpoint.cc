#include "tflow/compute_endpoint.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace tf::flow {

ComputeEndpoint::ComputeEndpoint(std::string name, sim::EventQueue &eq,
                                 const FlowParams &params,
                                 ocapi::M1Window window,
                                 SectionTable sections)
    : SimObject(std::move(name), eq), _params(params), _window(window),
      _rmmu(this->name() + ".rmmu", std::move(sections)),
      _hostSerdesDown(this->name() + ".hostSerdesDown", eq,
                      {params.serdesLatency, params.hostLinkBps}),
      _stackDown(this->name() + ".stackDown", eq,
                 {params.fpgaStackLatency, 0}),
      _stackUp(this->name() + ".stackUp", eq,
               {params.fpgaStackLatency, 0}),
      _hostSerdesUp(this->name() + ".hostSerdesUp", eq,
                    {params.serdesLatency, params.hostLinkBps})
{
    _hostSerdesDown.setTraceStage(sim::trace::Stage::HostSerdesDown);
    _stackDown.setTraceStage(sim::trace::Stage::StackDown);
    _stackUp.setTraceStage(sim::trace::Stage::StackUp);
    _hostSerdesUp.setTraceStage(sim::trace::Stage::HostSerdesUp);

    _hostSerdesDown.connect(
        [this](mem::TxnPtr txn) { _stackDown.push(std::move(txn)); });
    _stackDown.connect(
        [this](mem::TxnPtr txn) { routeAndSend(std::move(txn)); });
    _stackUp.connect(
        [this](mem::TxnPtr txn) { _hostSerdesUp.push(std::move(txn)); });
    _hostSerdesUp.connect(
        [this](mem::TxnPtr txn) { finish(std::move(txn)); });
}

void
ComputeEndpoint::connectChannels(std::vector<LlcTx *> txs)
{
    TF_ASSERT(!txs.empty(), "compute endpoint needs >= 1 channel");
    _channelTx = std::move(txs);
}

void
ComputeEndpoint::issue(mem::TxnPtr txn)
{
    TF_ASSERT(mem::isRequest(txn->type), "issue() takes requests");
    TF_ASSERT(_window.contains(txn->addr, txn->size),
              "address outside the endpoint's M1 window");
    txn->issued = now();
    armDeadlineSweep();
    auto &tb = eventQueue().trace();
    txn->traceId = tb.newTrace();
    tb.begin(now(), txn->traceId, sim::trace::Stage::TagQueue,
             static_cast<std::uint32_t>(_waitQueue.size()));
    if (_outstanding.size() >= _params.maxTags) {
        _tagStalls.inc();
        _waitQueue.push_back(std::move(txn));
        return;
    }
    admit(std::move(txn));
}

void
ComputeEndpoint::admit(mem::TxnPtr txn)
{
    _issued.inc();
    _outstanding[txn->id] = txn;
    eventQueue().trace().end(now(), txn->traceId,
                             sim::trace::Stage::TagQueue);
    _hostSerdesDown.push(std::move(txn));
}

void
ComputeEndpoint::routeAndSend(mem::TxnPtr txn)
{
    // Real address -> device-internal address (window starts at 0x0).
    txn->addr = _window.toInternal(txn->addr);
    txn->origAddr = txn->addr;

    auto &tb = eventQueue().trace();
    tb.begin(now(), txn->traceId, sim::trace::Stage::Rmmu);
    bool ok = _rmmu.translate(*txn);
    tb.end(now(), txn->traceId, sim::trace::Stage::Rmmu);
    _xlatNs.add(sim::toNs(now() - txn->issued));
    if (!ok) {
        failFast(std::move(txn));
        return;
    }

    tb.begin(now(), txn->traceId, sim::trace::Stage::Route);
    int ch = _routing.route(*txn);
    tb.end(now(), txn->traceId, sim::trace::Stage::Route);
    if (ch < 0) {
        failFast(std::move(txn));
        return;
    }
    TF_ASSERT(static_cast<std::size_t>(ch) < _channelTx.size(),
              "route to unknown channel %d", ch);
    _channelTx[static_cast<std::size_t>(ch)]->enqueue(std::move(txn));
}

void
ComputeEndpoint::failFast(mem::TxnPtr txn)
{
    txn->makeResponse();
    txn->error = true;
    // Fault responses still cross the stack back to the host.
    _stackUp.push(std::move(txn));
}

void
ComputeEndpoint::onNetworkResponse(mem::TxnPtr txn)
{
    TF_ASSERT(!mem::isRequest(txn->type), "request on response path");
    _stackUp.push(std::move(txn));
}

void
ComputeEndpoint::reroute(mem::TxnPtr txn)
{
    TF_ASSERT(mem::isRequest(txn->type), "reroute() takes requests");
    _rerouted.inc();
    int ch = _routing.route(*txn);
    if (ch < 0) {
        failFast(std::move(txn));
        return;
    }
    TF_ASSERT(static_cast<std::size_t>(ch) < _channelTx.size(),
              "route to unknown channel %d", ch);
    _channelTx[static_cast<std::size_t>(ch)]->enqueue(std::move(txn));
}

std::size_t
ComputeEndpoint::abortOutstanding(mem::NetworkId id)
{
    std::vector<mem::TxnPtr> doomed;
    for (auto it = _outstanding.begin(); it != _outstanding.end();) {
        if (it->second && it->second->networkId == id) {
            doomed.push_back(std::move(it->second));
            it = _outstanding.erase(it);
        } else {
            ++it;
        }
    }
    // Map order is hash-order (and the keys are process-global ids,
    // so even the hash layout varies run to run); complete oldest-
    // first like the deadline sweep so downstream reissue order is
    // deterministic.
    std::sort(doomed.begin(), doomed.end(),
              [](const mem::TxnPtr &a, const mem::TxnPtr &b) {
                  return a->id < b->id;
              });
    for (auto &txn : doomed) {
        // The aborted transaction may still be live inside the LLC
        // buffers or the donor pipeline: frames carry the very same
        // object, so flipping it to a response here would corrupt
        // in-flight mastering. Complete the host with an error-
        // response clone instead; whatever happens to the original
        // later is swallowed by the duplicate filter in finish().
        auto resp = std::make_shared<mem::MemTxn>(*txn);
        txn->onComplete = nullptr;
        if (mem::isRequest(resp->type))
            resp->makeResponse();
        resp->error = true;
        _aborted.inc();
        _completed.inc();
        resp->complete();
    }

    drainWaitQueue();
    return doomed.size();
}

void
ComputeEndpoint::drainWaitQueue()
{
    while (!_waitQueue.empty() && _outstanding.size() < _params.maxTags) {
        mem::TxnPtr next = std::move(_waitQueue.front());
        _waitQueue.pop_front();
        admit(std::move(next));
    }
}

void
ComputeEndpoint::armDeadlineSweep()
{
    if (_params.requestDeadline == 0 ||
        _deadlineSweep != sim::EventQueue::invalidEvent)
        return;
    sim::Tick period = std::max<sim::Tick>(_params.requestDeadline / 2, 1);
    _deadlineSweep = after(period, [this]() { onDeadlineSweep(); });
}

void
ComputeEndpoint::onDeadlineSweep()
{
    _deadlineSweep = sim::EventQueue::invalidEvent;
    const sim::Tick deadline = _params.requestDeadline;

    // Overdue in-flight requests: their response path is dead or
    // crawling. Same clone-completion discipline as abortOutstanding —
    // the original object may still be mastering inside a frame.
    std::vector<mem::TxnPtr> doomed;
    for (auto it = _outstanding.begin(); it != _outstanding.end();) {
        if (it->second && now() - it->second->issued >= deadline) {
            doomed.push_back(std::move(it->second));
            it = _outstanding.erase(it);
        } else {
            ++it;
        }
    }
    // Map order is hash-order; complete oldest-first so downstream
    // effects (closed-loop reissues) are platform-independent.
    std::sort(doomed.begin(), doomed.end(),
              [](const mem::TxnPtr &a, const mem::TxnPtr &b) {
                  return a->id < b->id;
              });
    for (auto &txn : doomed) {
        auto resp = std::make_shared<mem::MemTxn>(*txn);
        txn->onComplete = nullptr;
        if (mem::isRequest(resp->type))
            resp->makeResponse();
        resp->error = true;
        resp->status = mem::TxnStatus::TimedOut;
        _deadlineExpired.inc();
        _completed.inc();
        resp->complete();
    }

    // Overdue tag-queued requests never entered the pipeline, so they
    // are completed in place (no in-flight aliases to protect).
    for (auto it = _waitQueue.begin(); it != _waitQueue.end();) {
        mem::TxnPtr &txn = *it;
        if (now() - txn->issued >= deadline) {
            eventQueue().trace().end(now(), txn->traceId,
                                     sim::trace::Stage::TagQueue);
            mem::TxnPtr doomedTxn = std::move(txn);
            it = _waitQueue.erase(it);
            doomedTxn->makeResponse();
            doomedTxn->error = true;
            doomedTxn->status = mem::TxnStatus::TimedOut;
            // Not _completed: the request was never admitted, so it
            // never counted as _issued either.
            _deadlineExpired.inc();
            doomedTxn->complete();
        } else {
            ++it;
        }
    }

    drainWaitQueue();
    if (!_outstanding.empty() || !_waitQueue.empty())
        armDeadlineSweep();
}

void
ComputeEndpoint::finish(mem::TxnPtr txn)
{
    auto it = _outstanding.find(txn->id);
    if (it == _outstanding.end()) {
        // Duplicate from at-least-once failover (the original delivery
        // succeeded but its response or ack died with a link), or a
        // late response for a transaction abortOutstanding() already
        // error-completed. Either way the host saw exactly one
        // completion; drop the duplicate.
        _dupResponses.inc();
        return;
    }
    _outstanding.erase(it);
    _completed.inc();
    _rttNs.add(sim::toNs(now() - txn->issued));
    txn->complete();

    drainWaitQueue();
}

void
ComputeEndpoint::reportStats(sim::StatSet &out) const
{
    out.record("issued", static_cast<double>(_issued.value()), "txns");
    out.record("completed", static_cast<double>(_completed.value()),
               "txns");
    out.record("rmmuFaults", static_cast<double>(_rmmu.faults()));
    out.record("tagStalls", static_cast<double>(_tagStalls.value()));
    out.record("duplicateResponses",
               static_cast<double>(_dupResponses.value()));
    out.record("reroutedRequests", static_cast<double>(_rerouted.value()));
    out.record("abortedTxns", static_cast<double>(_aborted.value()));
    out.record("deadlineExpired",
               static_cast<double>(_deadlineExpired.value()));
    out.record("rttMeanNs", _rttNs.mean(), "ns");
    out.record("rttP99Ns", _rttNs.quantile(0.99), "ns");
}

void
ComputeEndpoint::registerStats(sim::StatsRegistry &reg,
                               const std::string &prefix)
{
    sim::StatSet &set = reg.at(prefix);
    set.attach("issued", _issued, "txns");
    set.attach("completed", _completed, "txns");
    set.attach("tagStalls", _tagStalls, "events",
               "requests queued on OpenCAPI tag exhaustion");
    set.attach("duplicateResponses", _dupResponses, "txns",
               "at-least-once failover duplicates suppressed");
    set.attach("reroutedRequests", _rerouted, "txns");
    set.attach("abortedTxns", _aborted, "txns");
    set.attach("deadlineExpired", _deadlineExpired, "txns",
               "requests error-completed by the request deadline");
    set.attach("rttNs", _rttNs, "ns",
               "host-bus round-trip latency");
    set.attach("xlatNs", _xlatNs, "ns",
               "issue to RMMU translation (host crossings)");
    _rmmu.attachStats(reg.at(prefix + ".rmmu"));
    _routing.attachStats(reg.at(prefix + ".routing"));
    _hostSerdesDown.attachStats(reg.at(prefix + ".xing.serdesDown"));
    _stackDown.attachStats(reg.at(prefix + ".xing.stackDown"));
    _stackUp.attachStats(reg.at(prefix + ".xing.stackUp"));
    _hostSerdesUp.attachStats(reg.at(prefix + ".xing.serdesUp"));
}

} // namespace tf::flow
