/**
 * @file
 * Calibration constants for the ThymesisFlow datapath.
 *
 * Provenance (paper Section V, VI-C):
 *  - Flit RTT ~950 ns = 4 FPGA-stack crossings + 6 serDES crossings
 *    (2 at the compute endpoint, 2 for the network, 2 at the
 *    memory-stealing endpoint) plus cabling:
 *        6 x 75 ns (serDES) + 4 x 115 ns (FPGA stack) + 2 x 20 ns (wire)
 *        = 950 ns.
 *  - Host OpenCAPI attachment: 8 x GTY transceivers at 25 Gbit/s
 *    = 200 Gbit/s = 25 GB/s.
 *  - Each network channel: 4 bonded GTY transceivers at 25 Gbit/s
 *    = 100 Gbit/s = 12.5 GB/s; two independent channels per card.
 *  - LLC datapath is 32 B wide at 401 MHz (12.83 GB/s), matching the
 *    channel rate; flits are 32 B.
 *  - A 128 B data-bearing transaction is 1 header flit + 4 data flits.
 */

#ifndef TF_FLOW_PARAMS_HH
#define TF_FLOW_PARAMS_HH

#include <cstdint>

#include "sim/ticks.hh"

namespace tf::flow {

struct FlowParams
{
    // ---- latency elements (see file header for the 950 ns budget) ----
    sim::Tick serdesLatency = sim::nanoseconds(75);
    sim::Tick fpgaStackLatency = sim::nanoseconds(115);
    sim::Tick wireLatency = sim::nanoseconds(20);

    // ---- bandwidth ----
    /** Host OpenCAPI link (shared by both channels), bytes/s. */
    double hostLinkBps = 25e9;
    /** One network channel (4 x 25 Gb/s bonded), bytes/s. */
    double channelBps = 12.5e9;
    /** Number of independent network channels on the card. */
    int channels = 2;

    // ---- LLC framing ----
    std::uint32_t flitBytes = 32;
    /**
     * Flits per LLC frame. In store-and-forward mode this is the
     * fixed on-wire frame size (padded with nops if short); in
     * cut-through mode it is the assembly cap — only occupied flits
     * travel. The default is the winner of the ablation_llc
     * credit-depth x frame-size sweep (DESIGN.md section 15): 128
     * flits holds the loaded 192-deep remote read p99 under 2 us
     * (total p99 1984 ns, llcResp p99 976 ns) and tops the sweep's
     * bandwidth column; credit depths past 32 change nothing, so
     * rxQueueFrames stays at 64 for loss headroom.
     */
    std::uint32_t frameFlits = 128;
    /**
     * Cut-through / coalesced framing (default on). A frame's data
     * flits begin serialising as soon as its header flit is
     * committed: the Rx receives the frame at header arrival and
     * streams each transaction out as its own last flit lands, nop
     * padding never travels, and data-bearing transactions coalesce
     * behind one shared header flit (their per-transaction headers
     * ride the shared slot table). Under a sequence gap an intact
     * younger frame releases immediately — exactly once, tracked by
     * the Rx early-release set — instead of waiting for go-back-N to
     * heal the unrelated older frame. Off restores the paper's
     * store-and-forward framing: fixed-size padded frames, delivery
     * at last-flit arrival, strict in-order release.
     */
    bool cutThrough = true;

    // ---- LLC credits / reliability ----
    /** Rx ingress queue depth, in frames; equals initial Tx credits. */
    std::uint32_t rxQueueFrames = 64;
    /** Tx replay buffer capacity, in frames. */
    std::uint32_t replayBufferFrames = 256;
    /** Tx-side safety retransmit timeout for unacked frames. */
    sim::Tick ackTimeout = sim::microseconds(20);
    /** Per-frame probability of loss/corruption on the wire. */
    double frameErrorRate = 0.0;
    /**
     * Gilbert-Elliott burst-error model (two-state Markov chain per
     * frame) as an always-on alternative to the i.i.d. coin flip
     * above. When enabled (geEnabled), frameErrorRate is ignored and
     * each frame draws its error from the current state's rate; the
     * chain flips good->bad with geGoodBad and bad->good with
     * geBadGood, so losses arrive in bursts of mean length
     * 1 / geBadGood frames. Fault plans can also open transient
     * burst windows with these dynamics regardless of geEnabled.
     */
    bool geEnabled = false;
    double geGoodBad = 0.0;  ///< P(good -> bad) per frame
    double geBadGood = 1.0;  ///< P(bad -> good) per frame
    double geErrGood = 0.0;  ///< frame-error rate in the good state
    double geErrBad = 0.0;   ///< frame-error rate in the bad state
    /**
     * Consecutive ack-timeout rounds (no cumulative-ack progress at
     * all) after which the Tx declares the channel dead and raises a
     * link-down event instead of replaying forever. 0 disables
     * escalation: replay retries indefinitely (transient-loss-only
     * model, the paper's baseline behaviour).
     */
    std::uint32_t maxReplayRounds = 16;

    // ---- endpoint ----
    /** Outstanding-transaction tags at the compute endpoint. */
    std::uint32_t maxTags = 256;
    /**
     * End-to-end request deadline at the compute endpoint. A request
     * still outstanding (or still tag-queued) this long after issue
     * is error-completed with TxnStatus::TimedOut so the host never
     * hangs on a response that cannot arrive. 0 disables the
     * deadline (legacy behaviour: requests wait forever).
     */
    sim::Tick requestDeadline = 0;
    /** Frame drain time at Rx before its credit is returned. */
    sim::Tick rxDrainLatency = sim::nanoseconds(40);

    /** One-way latency for piggybacked control info (credits/acks). */
    sim::Tick
    controlLatency() const
    {
        return serdesLatency + wireLatency;
    }

    /** Serialisation time of @p n flits on one network channel. */
    sim::Tick
    flitTime(std::uint32_t n) const
    {
        double bytes = static_cast<double>(n) *
                       static_cast<double>(flitBytes);
        return sim::seconds(bytes / channelBps);
    }
};

} // namespace tf::flow

#endif // TF_FLOW_PARAMS_HH
