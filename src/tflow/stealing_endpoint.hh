/**
 * @file
 * ThymesisFlow memory-stealing endpoint (Section IV-A2).
 *
 * The passive side of the datapath: requests arriving from the network
 * cross the donor's FPGA stack and serDES, and are mastered into donor
 * memory through the OpenCAPI C1 mode under the stealing process's
 * PASID. The endpoint performs no translation and holds no routing
 * state -- responses are sent back on the channel each request arrived
 * on, reusing the network id already in the header.
 */

#ifndef TF_FLOW_STEALING_ENDPOINT_HH
#define TF_FLOW_STEALING_ENDPOINT_HH

#include <unordered_map>
#include <vector>

#include "opencapi/c1_master.hh"
#include "opencapi/crossing.hh"
#include "tflow/llc.hh"

namespace tf::flow {

class StealingEndpoint : public sim::SimObject
{
  public:
    StealingEndpoint(std::string name, sim::EventQueue &eq,
                     const FlowParams &params, ocapi::C1Master &c1);

    /** Wire the per-channel transmit sides used for responses. */
    void connectChannels(std::vector<LlcTx *> txs);

    /** Set the default PASID of the memory-stealing process. */
    void setPasid(ocapi::Pasid pasid) { _pasid = pasid; }
    ocapi::Pasid pasid() const { return _pasid; }

    /**
     * Register the stealing process serving one active thymesisflow:
     * incoming transactions carry the flow's network id, and the C1
     * master runs under that flow's PASID. Multiple concurrent
     * donations (different stealing processes) thus coexist.
     */
    void registerFlow(mem::NetworkId id, ocapi::Pasid pasid);
    void unregisterFlow(mem::NetworkId id);
    ocapi::Pasid pasidFor(mem::NetworkId id) const;

    /**
     * Request arrival from channel @p channel's LlcRx.
     * Records the arrival channel so the response retraces it.
     */
    void onNetworkRequest(int channel, mem::TxnPtr txn);

    /**
     * Requeue a response salvaged from a dead channel's LLC onto a
     * surviving channel. Overrides the recorded arrival channel: the
     * original one can no longer carry the response home.
     */
    void resend(int channel, mem::TxnPtr txn);

    std::uint64_t served() const { return _served.value(); }
    std::uint64_t resent() const { return _resent.value(); }

    /**
     * Register this endpoint's stats under @p prefix: its own set at
     * @p prefix and the donor-side crossing stages at
     * "<prefix>.xing.*".
     */
    void registerStats(sim::StatsRegistry &reg,
                       const std::string &prefix);

  private:
    const FlowParams &_params;
    ocapi::C1Master &_c1;
    ocapi::Pasid _pasid = ocapi::invalidPasid;
    std::unordered_map<mem::NetworkId, ocapi::Pasid> _flowPasids;

    // Donor-side pipeline stages.
    ocapi::CrossingStage _stackDown;
    ocapi::CrossingStage _serdesDown;
    ocapi::CrossingStage _serdesUp;
    ocapi::CrossingStage _stackUp;

    std::vector<LlcTx *> _channelTx;
    sim::Counter _served;
    sim::Counter _resent;

    void master(mem::TxnPtr txn);
    void sendResponse(mem::TxnPtr txn);
};

} // namespace tf::flow

#endif // TF_FLOW_STEALING_ENDPOINT_HH
