#include "tflow/routing.hh"

#include "sim/logging.hh"

namespace tf::flow {

void
RoutingLayer::setRoute(mem::NetworkId id, std::vector<int> channels)
{
    TF_ASSERT(id != mem::invalidNetworkId, "invalid network id");
    TF_ASSERT(!channels.empty(), "route needs at least one channel");
    _routes[id] = Route{std::move(channels), 0};
}

void
RoutingLayer::setWeightedRoute(mem::NetworkId id,
                               std::vector<int> channels,
                               std::vector<std::uint32_t> weights)
{
    TF_ASSERT(id != mem::invalidNetworkId, "invalid network id");
    TF_ASSERT(!channels.empty(), "route needs at least one channel");
    TF_ASSERT(channels.size() == weights.size(),
              "one weight per channel");
    for (std::uint32_t w : weights)
        TF_ASSERT(w > 0, "weights must be positive");
    Route route;
    route.channels = std::move(channels);
    route.weights = std::move(weights);
    route.wrrCredit.assign(route.channels.size(), 0);
    _routes[id] = std::move(route);
}

int
RoutingLayer::weightedPick(Route &route)
{
    // Smooth weighted round-robin (nginx-style): add each weight to
    // its credit, pick the highest credit, subtract the total.
    std::int64_t total = 0;
    std::size_t best = 0;
    for (std::size_t i = 0; i < route.channels.size(); ++i) {
        route.wrrCredit[i] +=
            static_cast<std::int64_t>(route.weights[i]);
        total += route.weights[i];
        if (route.wrrCredit[i] > route.wrrCredit[best])
            best = i;
    }
    route.wrrCredit[best] -= total;
    return route.channels[best];
}

void
RoutingLayer::clearRoute(mem::NetworkId id)
{
    _routes.erase(id);
}

bool
RoutingLayer::hasRoute(mem::NetworkId id) const
{
    return _routes.find(id) != _routes.end();
}

int
RoutingLayer::route(const mem::MemTxn &txn)
{
    auto it = _routes.find(txn.networkId);
    if (it == _routes.end()) {
        _dropped.inc();
        return -1;
    }
    Route &r = it->second;
    _routed.inc();
    if (!txn.bonded || r.channels.size() == 1)
        return r.channels.front();
    if (!r.weights.empty())
        return weightedPick(r);
    int ch = r.channels[r.rr % r.channels.size()];
    ++r.rr;
    return ch;
}

} // namespace tf::flow
