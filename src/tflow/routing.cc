#include "tflow/routing.hh"

#include "sim/logging.hh"

namespace tf::flow {

void
RoutingLayer::setRoute(mem::NetworkId id, std::vector<int> channels)
{
    TF_ASSERT(id != mem::invalidNetworkId, "invalid network id");
    TF_ASSERT(!channels.empty(), "route needs at least one channel");
    Route route;
    route.channels = std::move(channels);
    _routes[id] = std::move(route);
}

void
RoutingLayer::setWeightedRoute(mem::NetworkId id,
                               std::vector<int> channels,
                               std::vector<std::uint32_t> weights)
{
    TF_ASSERT(id != mem::invalidNetworkId, "invalid network id");
    TF_ASSERT(!channels.empty(), "route needs at least one channel");
    TF_ASSERT(channels.size() == weights.size(),
              "one weight per channel");
    for (std::uint32_t w : weights)
        TF_ASSERT(w > 0, "weights must be positive");
    Route route;
    route.channels = std::move(channels);
    route.weights = std::move(weights);
    route.wrrCredit.assign(route.channels.size(), 0);
    _routes[id] = std::move(route);
}

void
RoutingLayer::markChannelDown(int channel)
{
    TF_ASSERT(channel >= 0, "invalid channel");
    auto idx = static_cast<std::size_t>(channel);
    if (idx >= _channelDown.size())
        _channelDown.resize(idx + 1, false);
    if (_channelDown[idx])
        return;
    _channelDown[idx] = true;
    ++_downGen;
    _failovers.inc();
}

void
RoutingLayer::markChannelUp(int channel)
{
    TF_ASSERT(channel >= 0, "invalid channel");
    auto idx = static_cast<std::size_t>(channel);
    if (idx >= _channelDown.size() || !_channelDown[idx])
        return;
    _channelDown[idx] = false;
    ++_downGen;
}

bool
RoutingLayer::channelDown(int channel) const
{
    auto idx = static_cast<std::size_t>(channel);
    return idx < _channelDown.size() && _channelDown[idx];
}

void
RoutingLayer::refreshAlive(Route &route)
{
    route.aliveIdx.clear();
    for (std::size_t i = 0; i < route.channels.size(); ++i)
        if (!channelDown(route.channels[i]))
            route.aliveIdx.push_back(i);
    // Restart the spreading state: stale WRR credit earned against the
    // old channel set would skew the new distribution.
    route.rr = 0;
    for (auto &credit : route.wrrCredit)
        credit = 0;
    route.seenDownGen = _downGen;
}

int
RoutingLayer::weightedPick(Route &route)
{
    // Smooth weighted round-robin (nginx-style) over the alive subset:
    // add each weight to its credit, pick the highest, subtract total.
    std::int64_t total = 0;
    std::size_t best = route.aliveIdx.front();
    for (std::size_t i : route.aliveIdx) {
        route.wrrCredit[i] += static_cast<std::int64_t>(route.weights[i]);
        total += route.weights[i];
        if (route.wrrCredit[i] > route.wrrCredit[best])
            best = i;
    }
    route.wrrCredit[best] -= total;
    return route.channels[best];
}

void
RoutingLayer::clearRoute(mem::NetworkId id)
{
    _routes.erase(id);
}

bool
RoutingLayer::hasRoute(mem::NetworkId id) const
{
    return _routes.find(id) != _routes.end();
}

void
RoutingLayer::ensureChannels(std::size_t n)
{
    while (_chRouted.size() < n)
        _chRouted.emplace_back();
}

std::uint64_t
RoutingLayer::routedOnChannel(std::size_t channel) const
{
    return channel < _chRouted.size() ? _chRouted[channel].value() : 0;
}

void
RoutingLayer::noteRouted(int channel)
{
    _routed.inc();
    if (channel < 0)
        return;
    ensureChannels(static_cast<std::size_t>(channel) + 1);
    _chRouted[static_cast<std::size_t>(channel)].inc();
}

void
RoutingLayer::attachStats(sim::StatSet &set)
{
    set.attach("routed", _routed, "txns");
    set.attach("droppedNoRoute", _dropped, "txns",
               "flows with no route installed");
    set.attach("droppedUnroutable", _unroutable, "txns",
               "known flows whose every channel is down");
    set.attach("degradedTxns", _degradedTxns, "txns",
               "routed while the flow was missing >=1 channel");
    set.attach("failoverEvents", _failovers, "events");
    for (std::size_t i = 0; i < _chRouted.size(); ++i)
        set.attach("routed.ch" + std::to_string(i), _chRouted[i],
                   "txns", "per-channel occupancy");
}

int
RoutingLayer::route(const mem::MemTxn &txn)
{
    auto it = _routes.find(txn.networkId);
    if (it == _routes.end()) {
        _dropped.inc();
        return -1;
    }
    Route &r = it->second;
    if (r.seenDownGen != _downGen)
        refreshAlive(r);

    if (r.aliveIdx.empty()) {
        _unroutable.inc();
        return -1;
    }

    bool degraded = r.aliveIdx.size() < r.channels.size();
    if (!txn.bonded || r.channels.size() == 1) {
        // Non-bonded flows are pinned to their first channel; they
        // cannot spread, so a down first channel makes them unroutable
        // until the control plane pushes a repaired route.
        if (channelDown(r.channels.front())) {
            _unroutable.inc();
            return -1;
        }
        noteRouted(r.channels.front());
        return r.channels.front();
    }

    if (degraded)
        _degradedTxns.inc();
    int picked;
    if (!r.weights.empty()) {
        picked = weightedPick(r);
    } else {
        std::size_t idx = r.aliveIdx[r.rr % r.aliveIdx.size()];
        ++r.rr;
        picked = r.channels[idx];
    }
    noteRouted(picked);
    return picked;
}

} // namespace tf::flow
