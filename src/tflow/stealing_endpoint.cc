#include "tflow/stealing_endpoint.hh"

#include "sim/logging.hh"

namespace tf::flow {

StealingEndpoint::StealingEndpoint(std::string name, sim::EventQueue &eq,
                                   const FlowParams &params,
                                   ocapi::C1Master &c1)
    : SimObject(std::move(name), eq), _params(params), _c1(c1),
      _stackDown(this->name() + ".stackDown", eq,
                 {params.fpgaStackLatency, 0}),
      _serdesDown(this->name() + ".serdesDown", eq,
                  {params.serdesLatency, params.hostLinkBps}),
      _serdesUp(this->name() + ".serdesUp", eq,
                {params.serdesLatency, params.hostLinkBps}),
      _stackUp(this->name() + ".stackUp", eq,
               {params.fpgaStackLatency, 0})
{
    _stackDown.setTraceStage(sim::trace::Stage::DonorStackDown);
    _serdesDown.setTraceStage(sim::trace::Stage::DonorSerdesDown);
    _serdesUp.setTraceStage(sim::trace::Stage::DonorSerdesUp);
    _stackUp.setTraceStage(sim::trace::Stage::DonorStackUp);

    _stackDown.connect(
        [this](mem::TxnPtr txn) { _serdesDown.push(std::move(txn)); });
    _serdesDown.connect(
        [this](mem::TxnPtr txn) { master(std::move(txn)); });
    _serdesUp.connect(
        [this](mem::TxnPtr txn) { _stackUp.push(std::move(txn)); });
    _stackUp.connect(
        [this](mem::TxnPtr txn) { sendResponse(std::move(txn)); });
}

void
StealingEndpoint::connectChannels(std::vector<LlcTx *> txs)
{
    TF_ASSERT(!txs.empty(), "stealing endpoint needs >= 1 channel");
    _channelTx = std::move(txs);
}

void
StealingEndpoint::onNetworkRequest(int channel, mem::TxnPtr txn)
{
    TF_ASSERT(mem::isRequest(txn->type),
              "stealing endpoint got a response");
    txn->arrivalChannel = channel;
    _stackDown.push(std::move(txn));
}

void
StealingEndpoint::registerFlow(mem::NetworkId id, ocapi::Pasid pasid)
{
    _flowPasids[id] = pasid;
}

void
StealingEndpoint::unregisterFlow(mem::NetworkId id)
{
    _flowPasids.erase(id);
}

ocapi::Pasid
StealingEndpoint::pasidFor(mem::NetworkId id) const
{
    auto it = _flowPasids.find(id);
    return it == _flowPasids.end() ? _pasid : it->second;
}

void
StealingEndpoint::master(mem::TxnPtr txn)
{
    _served.inc();
    ocapi::Pasid pasid = pasidFor(txn->networkId);
    _c1.master(pasid, std::move(txn), [this](mem::TxnPtr resp) {
        _serdesUp.push(std::move(resp));
    });
}

void
StealingEndpoint::resend(int channel, mem::TxnPtr txn)
{
    TF_ASSERT(channel >= 0 &&
                  static_cast<std::size_t>(channel) < _channelTx.size(),
              "resend on unknown channel %d", channel);
    _resent.inc();
    txn->arrivalChannel = channel;
    _channelTx[static_cast<std::size_t>(channel)]->enqueue(std::move(txn));
}

void
StealingEndpoint::sendResponse(mem::TxnPtr txn)
{
    int ch = txn->arrivalChannel;
    TF_ASSERT(ch >= 0 &&
                  static_cast<std::size_t>(ch) < _channelTx.size(),
              "response with no arrival channel");
    _channelTx[static_cast<std::size_t>(ch)]->enqueue(std::move(txn));
}

void
StealingEndpoint::registerStats(sim::StatsRegistry &reg,
                                const std::string &prefix)
{
    sim::StatSet &set = reg.at(prefix);
    set.attach("served", _served, "txns",
               "requests mastered into donor memory");
    set.attach("resent", _resent, "txns",
               "responses salvaged onto a surviving channel");
    _stackDown.attachStats(reg.at(prefix + ".xing.stackDown"));
    _serdesDown.attachStats(reg.at(prefix + ".xing.serdesDown"));
    _serdesUp.attachStats(reg.at(prefix + ".xing.serdesUp"));
    _stackUp.attachStats(reg.at(prefix + ".xing.stackUp"));
}

} // namespace tf::flow
