/**
 * @file
 * Link-Layer Control (LLC) protocol (Section IV-A4).
 *
 * The LLC provides a reliable channel over the raw transceivers:
 *
 *  - Backpressure: a credit-based scheme protects the Rx ingress queue.
 *    Each credit is one empty frame slot; credits are piggybacked on
 *    transaction headers flowing in the reverse direction (modelled as
 *    latency-only control messages).
 *  - Reliability: transactions are grouped into frames. Frames carry
 *    in-order sequence numbers; on a gap or CRC error the Rx side
 *    requests an in-order replay (go-back-N) via special single-flit
 *    in-band messages. The Tx side holds sent frames in a replay
 *    buffer until cumulatively acked.
 *  - Framing modes (FlowParams::cutThrough): store-and-forward frames
 *    are fixed-size, padded with single-flit nop headers, delivered
 *    whole at last-flit arrival and released strictly in order.
 *    Cut-through frames carry only occupied flits behind one shared
 *    header flit, hand over at header arrival with per-transaction
 *    release staggered at flit-arrival times, and may release an
 *    intact frame ahead of a lost older one (exactly once — replay
 *    re-deliveries of early-released frames are suppressed).
 *
 * Simplifications vs real hardware, kept honest by tests:
 *  - Control messages are never lost (they piggyback on a healthy
 *    reverse direction); a Tx-side ack timeout still covers tail loss.
 *  - Credits are conservatively capped at the initial allotment, so
 *    refund races heal instead of accumulating.
 *
 * Hard failures (this file's robustness extension): a Wire can be
 * failed outright -- everything in flight and everything sent later is
 * lost, control messages included. The Tx escalates after
 * FlowParams::maxReplayRounds consecutive ack timeouts with no ack
 * progress: it declares the link dead, stops retrying, and raises a
 * health callback so the datapath can salvage the undelivered
 * transactions and fail over. Recovery retrains the link: both
 * directions restart with a fresh sequence space and a full credit
 * window.
 */

#ifndef TF_FLOW_LLC_HH
#define TF_FLOW_LLC_HH

#include <deque>
#include <functional>
#include <set>
#include <vector>

#include "sim/fault/fault.hh"
#include "sim/rng.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"
#include "tflow/frame.hh"
#include "tflow/params.hh"

namespace tf::flow {

/**
 * One direction of a network channel's raw wire: 4 bonded GTY
 * transceivers (100 Gb/s), one serDES crossing plus cable propagation,
 * with optional frame loss/corruption injection. Control messages pay
 * latency only (they piggyback on headers).
 */
class Wire : public sim::SimObject
{
  public:
    using FrameFn = std::function<void(FramePtr)>;
    using CtrlFn = std::function<void(ControlMsg)>;

    Wire(std::string name, sim::EventQueue &eq, const FlowParams &params,
         sim::Rng &rng);

    void connect(FrameFn onFrame, CtrlFn onCtrl);

    /**
     * Transmit a frame. Store-and-forward frames occupy the full
     * fixed frame size (padding included) and arrive whole;
     * cut-through frames occupy only their used flits and arrive at
     * header time (the Rx staggers payload hand-off itself).
     */
    void sendFrame(FramePtr frame);

    /** Transmit piggybacked control info (latency only). */
    void sendCtrl(ControlMsg msg);

    /** Time at which the wire can accept the next frame. */
    sim::Tick nextFree() const { return _nextFree; }

    /**
     * Hard fail-down: everything currently in flight is lost, and
     * every subsequent frame or control message is swallowed until
     * recover(). The transmitter keeps serialising blindly (it has no
     * carrier detect); loss is only visible through missing acks.
     */
    void fail();

    /**
     * Bring a failed wire back; does not resync LLC state by itself.
     * Retrain leaves no error-model residue: the Gilbert-Elliott
     * chain restarts in its good state and any transient burst
     * window is cancelled, so a repaired wire never resumes
     * mid-burst (the outage outlives the disturbance it modelled).
     */
    void recover();

    bool failed() const { return _failed; }

    /** Gilbert-Elliott chain currently in the bad state? */
    bool chainBad() const { return _geBad; }

    /**
     * Open a transient Gilbert-Elliott burst-loss window: until
     * now + @p duration every frame draws its error from the
     * two-state chain @p ge instead of the steady-state model. The
     * window is self-clearing (checked per frame, no extra events)
     * and extends, never shortens, an active window.
     */
    void startBurst(const sim::fault::GilbertElliott &ge,
                    sim::Tick duration);

    bool burstActive() const;

    std::uint64_t framesSent() const { return _framesSent.value(); }
    std::uint64_t framesDropped() const { return _framesDropped.value(); }
    std::uint64_t framesCorrupted() const { return _framesCorrupted.value(); }
    std::uint64_t framesLostDown() const { return _framesLostDown.value(); }
    std::uint64_t ctrlLostDown() const { return _ctrlLostDown.value(); }
    std::uint64_t failEvents() const { return _failEvents.value(); }
    std::uint64_t wireBytes() const { return _wireBytes.value(); }

    /** Wire utilisation over [0, now]: busy fraction. */
    double utilisation() const;

    /** Attach live counters for telemetry export. */
    void attachStats(sim::StatSet &set);

  private:
    const FlowParams &_params;
    sim::Rng &_rng;
    FrameFn _onFrame;
    CtrlFn _onCtrl;
    sim::Tick _nextFree = 0;
    sim::Tick _busy = 0;
    bool _failed = false;
    /** Bumped on fail() so already-scheduled deliveries are dropped. */
    std::uint64_t _epoch = 0;
    /** Gilbert-Elliott chain state (always-on model, params.geEnabled). */
    bool _geBad = false;
    /** Transient burst window; 0 = inactive. */
    sim::Tick _burstUntil = 0;
    sim::fault::GilbertElliott _burstGe;
    bool _burstBad = false;
    sim::Counter _framesSent;
    sim::Counter _framesDropped;
    sim::Counter _framesCorrupted;
    sim::Counter _framesLostDown;
    sim::Counter _ctrlLostDown;
    sim::Counter _failEvents;
    sim::Counter _wireBytes;
    sim::Counter _burstWindows;

    /** Per-frame error draw under the active error model. */
    bool frameError();
};

/**
 * LLC transmit side: frame assembly, credit gating, replay buffer.
 */
class LlcTx : public sim::SimObject
{
  public:
    using HealthFn = std::function<void()>;
    using DeadLetterFn = std::function<void(mem::TxnPtr)>;

    LlcTx(std::string name, sim::EventQueue &eq, const FlowParams &params,
          Wire &wire);

    /**
     * Queue a transaction for transmission. On a link already declared
     * dead the transaction goes to the dead-letter handler instead
     * (late arrivals, e.g. responses finishing after failover), or
     * stays queued for a future resetLink() if none is connected.
     */
    void enqueue(mem::TxnPtr txn);

    /** Handler for transactions enqueued after link-down. */
    void connectDeadLetter(DeadLetterFn onDeadLetter);

    /** Deliver reverse-direction control info (credits/acks/replay). */
    void onCtrl(const ControlMsg &msg);

    /** Called once when the Tx declares the channel dead. */
    void connectHealth(HealthFn onLinkDown);

    /**
     * Mark the link dead without raising the health callback. The
     * datapath uses this on the opposite direction of a channel whose
     * failure was detected first on the other side, so a later
     * recover() retrains both directions.
     */
    void forceLinkDown();

    /**
     * Credit-starvation fault: until now + @p duration every credit
     * refund arriving in onCtrl is swallowed (acks still process, so
     * replay bookkeeping stays sane). Swallowed credits narrow the
     * send window; the existing credit-resync path heals it once the
     * window provably drained. Extends an active starvation window.
     */
    void starveCredits(sim::Tick duration);

    bool creditsStarved() const { return _starveUntil > now(); }

    /** True once replay escalation has declared the channel dead. */
    bool linkDown() const { return _linkDown; }

    /**
     * Drain every transaction that was never cumulatively acked
     * (replay buffer, oldest first) plus everything still queued, so
     * the owner can re-route them over surviving channels. Frames the
     * Rx already consumed leave empty slots behind (their payloads
     * moved on delivery) and are skipped — their responses are
     * salvaged on the opposite direction. A frame sent but never
     * consumed reappears here even if it was on the wire when the
     * link died: failover is at-least-once, and the requester
     * suppresses duplicate responses.
     */
    std::vector<mem::TxnPtr> takeUndelivered();

    /**
     * Link retrain after recovery: fresh sequence space, full credit
     * window, escalation state cleared. Unsalvaged replay-buffer
     * transactions go back to the head of the queue.
     */
    void resetLink();

    /**
     * Channel repair notification for directions that merely flapped
     * (no link-down, so no resetLink): zero the consecutive-ack-
     * timeout round counter. Rounds accumulated against the dead
     * wire must not survive the repair, or a healed channel sits one
     * benign timeout away from false link-down escalation.
     */
    void clearEscalation() { _consecTimeouts = 0; }

    std::uint32_t consecTimeouts() const { return _consecTimeouts; }

    std::uint32_t credits() const { return _credits; }
    std::size_t queueDepth() const { return _queue.size(); }
    std::size_t replayBufDepth() const { return _replayBuf.size(); }

    std::uint64_t framesSent() const { return _framesSent.value(); }
    std::uint64_t txnsSent() const { return _txnsSent.value(); }
    std::uint64_t padFlitsSent() const { return _padFlits.value(); }
    std::uint64_t creditStalls() const { return _creditStalls.value(); }
    std::uint64_t replayedFrames() const { return _replays.value(); }
    std::uint64_t timeouts() const { return _timeouts.value(); }
    std::uint64_t linkDownsDeclared() const { return _linkDowns.value(); }
    std::uint64_t creditResyncs() const { return _creditResyncs.value(); }
    std::uint64_t deadLetters() const { return _deadLetters.value(); }
    std::uint64_t creditStarves() const { return _creditStarves.value(); }
    std::uint64_t starvedCredits() const
    {
        return _starvedCredits.value();
    }

    void reportStats(sim::StatSet &out) const;

    /** Attach live counters for telemetry export. */
    void attachStats(sim::StatSet &set);

  private:
    const FlowParams &_params;
    Wire &_wire;
    std::deque<mem::TxnPtr> _queue;
    std::deque<FramePtr> _replayBuf; // oldest unacked first
    FramePool _framePool;
    std::uint32_t _credits;
    FrameSeq _nextSeq = 0;
    bool _kickScheduled = false;

    // Ack timer, lazy-deadline discipline: re-arming on ack progress
    // just moves _ackDeadline forward instead of cancelling and
    // re-scheduling a kernel event per ack. The scheduled event checks
    // the deadline when it fires and pushes itself out if the deadline
    // moved; only a full ack (or link-down) cancels it outright.
    sim::EventQueue::EventId _ackTimer = sim::EventQueue::invalidEvent;
    sim::Tick _ackDeadline = 0;

    // Replay stalled on credit exhaustion; resumes on the next refund.
    bool _replayPending = false;
    FrameSeq _replayNext = 0;

    // Hard-failure escalation state.
    std::uint32_t _consecTimeouts = 0;
    bool _linkDown = false;
    HealthFn _onLinkDown;
    DeadLetterFn _onDeadLetter;

    /** Credit refunds are swallowed until this tick (0 = healthy). */
    sim::Tick _starveUntil = 0;

    sim::Counter _framesSent;
    sim::Counter _txnsSent;
    sim::Counter _padFlits;
    sim::Counter _creditStalls;
    sim::Counter _replays;
    sim::Counter _timeouts;
    sim::Counter _linkDowns;
    sim::Counter _creditResyncs;
    sim::Counter _deadLetters;
    sim::Counter _creditStarves;
    sim::Counter _starvedCredits;

    void scheduleKick(sim::Tick when);
    void trySend();
    FramePtr assembleFrame();
    void transmit(const FramePtr &frame, bool replay);
    void refundCredits(std::uint32_t n);
    void armTimer();
    void disarmTimer();
    void onTimerFire();
    void onAckTimeout();
    void replayFrom(FrameSeq seq);
    void declareLinkDown();
};

/**
 * LLC receive side: in-order delivery, gap/corruption detection,
 * credit return after ingress-queue drain.
 */
class LlcRx : public sim::SimObject
{
  public:
    using SinkFn = std::function<void(mem::TxnPtr)>;

    LlcRx(std::string name, sim::EventQueue &eq, const FlowParams &params,
          Wire &reverseWire);

    void connectSink(SinkFn sink) { _sink = std::move(sink); }

    /** Frame arrival from the forward wire. */
    void onFrame(FramePtr frame);

    /** Link retrain after recovery: expect a fresh sequence space. */
    void resetLink();

    FrameSeq expectedSeq() const { return _expected; }

    std::uint64_t framesDelivered() const { return _delivered.value(); }
    std::uint64_t txnsDelivered() const { return _txnsDelivered.value(); }
    std::uint64_t duplicates() const { return _dups.value(); }
    std::uint64_t gapsDetected() const { return _gaps.value(); }
    std::uint64_t corruptedSeen() const { return _corrupted.value(); }
    std::uint64_t earlyReleases() const { return _earlyReleases.value(); }

    void reportStats(sim::StatSet &out) const;

    /** Attach live counters for telemetry export. */
    void attachStats(sim::StatSet &set);

  private:
    const FlowParams &_params;
    Wire &_reverse;
    SinkFn _sink;
    FrameSeq _expected = 0;
    bool _replayPendingFor = false; ///< replay already requested for
                                    ///< the current _expected value
    /**
     * Cut-through early releases: sequence numbers delivered ahead
     * of the in-order point because an older frame was lost. The
     * go-back-N replay will retransmit these; membership here makes
     * the re-delivery a suppressed duplicate (exactly-once). Bounded
     * by the credit window (rxQueueFrames).
     */
    std::set<FrameSeq> _early;
    sim::Counter _delivered;
    sim::Counter _txnsDelivered;
    sim::Counter _dups;
    sim::Counter _gaps;
    sim::Counter _corrupted;
    sim::Counter _earlyReleases;

    void requestReplay();
    void returnCredit(bool withAck);
    void deliver(FramePtr frame, bool withAck);
};

/**
 * A bidirectional network channel: one wire + LLC endpoint pair in each
 * direction. Side A is the compute endpoint side by convention, but the
 * channel itself is symmetric (responses are frames too).
 */
class LlcChannel
{
  public:
    LlcChannel(const std::string &name, sim::EventQueue &eq,
               const FlowParams &params, sim::Rng &rng);

    LlcTx &txA() { return _txA; }
    LlcRx &rxA() { return _rxA; }
    LlcTx &txB() { return _txB; }
    LlcRx &rxB() { return _rxB; }
    Wire &wireAB() { return _wireAB; }
    Wire &wireBA() { return _wireBA; }

    /** Hard-fail both directions (in-flight traffic is lost). */
    void fail();

    /**
     * Repair the channel. Directions whose Tx declared the link dead
     * are retrained (fresh sequence space + credits on both sides);
     * directions that merely flapped keep sequence continuity so the
     * replay protocol delivers exactly once across the outage.
     */
    void recover();

    bool failed() const { return _wireAB.failed() || _wireBA.failed(); }

  private:
    Wire _wireAB;
    Wire _wireBA;
    LlcTx _txA; ///< A -> B data
    LlcRx _rxB; ///< receives A's data at B
    LlcTx _txB; ///< B -> A data
    LlcRx _rxA; ///< receives B's data at A
};

} // namespace tf::flow

#endif // TF_FLOW_LLC_HH
