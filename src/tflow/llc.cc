#include "tflow/llc.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace tf::flow {

// ---------------------------------------------------------------- Wire

Wire::Wire(std::string name, sim::EventQueue &eq, const FlowParams &params,
           sim::Rng &rng)
    : SimObject(std::move(name), eq), _params(params), _rng(rng)
{
}

void
Wire::connect(FrameFn onFrame, CtrlFn onCtrl)
{
    _onFrame = std::move(onFrame);
    _onCtrl = std::move(onCtrl);
}

double
Wire::utilisation() const
{
    if (now() == 0)
        return 0.0;
    return static_cast<double>(_busy) / static_cast<double>(now());
}

void
Wire::sendFrame(FramePtr frame)
{
    TF_ASSERT(_onFrame != nullptr, "%s: wire not connected",
              name().c_str());

    // Frames always occupy the full frame size (padding included).
    std::uint32_t bytes = _params.frameFlits * _params.flitBytes;
    double ser_secs = static_cast<double>(bytes) / _params.channelBps;
    sim::Tick ser = sim::seconds(ser_secs);
    sim::Tick start = std::max(now(), _nextFree);
    _nextFree = start + ser;
    _busy += ser;
    _wireBytes.inc(bytes);
    _framesSent.inc();

    bool drop = false;
    if (_params.frameErrorRate > 0 && _rng.chance(_params.frameErrorRate)) {
        if (_rng.chance(0.5)) {
            drop = true;
            _framesDropped.inc();
        } else {
            frame->corrupted = true;
            _framesCorrupted.inc();
        }
    }
    if (drop)
        return;

    sim::Tick deliver =
        start + ser + _params.serdesLatency + _params.wireLatency;
    after(deliver - now(), [this, frame = std::move(frame)]() mutable {
        _onFrame(std::move(frame));
    });
}

void
Wire::sendCtrl(ControlMsg msg)
{
    TF_ASSERT(_onCtrl != nullptr, "%s: wire not connected",
              name().c_str());
    sim::Tick deliver = _params.serdesLatency + _params.wireLatency;
    after(deliver, [this, msg]() { _onCtrl(msg); });
}

// --------------------------------------------------------------- LlcTx

LlcTx::LlcTx(std::string name, sim::EventQueue &eq,
             const FlowParams &params, Wire &wire)
    : SimObject(std::move(name), eq), _params(params), _wire(wire),
      _credits(params.rxQueueFrames)
{
}

void
LlcTx::enqueue(mem::TxnPtr txn)
{
    TF_ASSERT(mem::flitCount(*txn) <= _params.frameFlits,
              "transaction larger than a frame");
    _queue.push_back(std::move(txn));
    // Assemble on a deferred kick so same-tick arrivals pack into one
    // frame, matching hardware where the frame fills as flits arrive.
    scheduleKick(now());
}

void
LlcTx::scheduleKick(sim::Tick when)
{
    if (_kickScheduled)
        return;
    _kickScheduled = true;
    after(when - now(), [this]() {
        _kickScheduled = false;
        trySend();
    });
}

FramePtr
LlcTx::assembleFrame()
{
    auto frame = std::make_shared<Frame>();
    frame->seq = _nextSeq++;
    std::uint32_t flits = 0;
    while (!_queue.empty()) {
        std::uint32_t need = mem::flitCount(*_queue.front());
        if (flits + need > _params.frameFlits)
            break;
        flits += need;
        frame->txns.push_back(std::move(_queue.front()));
        _queue.pop_front();
    }
    frame->usedFlits = flits;
    frame->padFlits = _params.frameFlits - flits;
    _padFlits.inc(frame->padFlits);
    _txnsSent.inc(frame->txns.size());
    return frame;
}

void
LlcTx::transmit(const FramePtr &frame, bool replay)
{
    TF_ASSERT(_credits > 0, "transmit without credits");
    --_credits;
    _framesSent.inc();
    if (replay) {
        _replays.inc();
        // Retransmissions are fresh copies on the wire: clear the
        // corruption marker from an earlier damaged delivery.
        auto copy = std::make_shared<Frame>(*frame);
        copy->corrupted = false;
        copy->replayed = true;
        _wire.sendFrame(copy);
    } else {
        _wire.sendFrame(frame);
    }
    armTimer();
}

void
LlcTx::trySend()
{
    while (!_queue.empty()) {
        if (_credits == 0) {
            _creditStalls.inc();
            return; // a credit return re-kicks via onCtrl
        }
        if (_replayBuf.size() >= _params.replayBufferFrames) {
            return; // an ack re-kicks via onCtrl
        }
        if (_wire.nextFree() > now()) {
            // Wire busy: wait, so the queue keeps filling and later
            // frames pack densely instead of padding early.
            scheduleKick(_wire.nextFree());
            return;
        }
        FramePtr frame = assembleFrame();
        _replayBuf.push_back(frame);
        transmit(frame, false);
    }
}

void
LlcTx::refundCredits(std::uint32_t n)
{
    _credits = std::min(_credits + n, _params.rxQueueFrames);
}

void
LlcTx::onCtrl(const ControlMsg &msg)
{
    if (msg.credits > 0)
        refundCredits(msg.credits);

    if (msg.hasAck) {
        while (!_replayBuf.empty() && _replayBuf.front()->seq <= msg.ack)
            _replayBuf.pop_front();
        if (_replayBuf.empty())
            disarmTimer();
        else
            armTimer();
    }

    if (msg.replayRequest)
        replayFrom(msg.replayFrom);

    if (!_queue.empty())
        scheduleKick(now());
}

void
LlcTx::replayFrom(FrameSeq seq)
{
    // The Rx side discarded every frame from `seq` onwards; refund the
    // credits those transmissions consumed, then retransmit in order.
    std::size_t idx = 0;
    while (idx < _replayBuf.size() && _replayBuf[idx]->seq < seq)
        ++idx;
    std::size_t count = _replayBuf.size() - idx;
    if (count == 0)
        return;
    refundCredits(static_cast<std::uint32_t>(count));
    for (; idx < _replayBuf.size(); ++idx) {
        if (_credits == 0) {
            _creditStalls.inc();
            break;
        }
        transmit(_replayBuf[idx], true);
    }
}

void
LlcTx::armTimer()
{
    disarmTimer();
    _ackTimer = after(_params.ackTimeout, [this]() {
        _ackTimer = sim::EventQueue::invalidEvent;
        onAckTimeout();
    });
}

void
LlcTx::disarmTimer()
{
    if (_ackTimer != sim::EventQueue::invalidEvent) {
        eventQueue().deschedule(_ackTimer);
        _ackTimer = sim::EventQueue::invalidEvent;
    }
}

void
LlcTx::onAckTimeout()
{
    if (_replayBuf.empty())
        return;
    _timeouts.inc();
    // Tail loss: nothing after the lost frame arrived to trigger gap
    // detection at the Rx. Assume everything unacked was dropped.
    replayFrom(_replayBuf.front()->seq);
}

void
LlcTx::reportStats(sim::StatSet &out) const
{
    out.record("framesSent", static_cast<double>(_framesSent.value()));
    out.record("txnsSent", static_cast<double>(_txnsSent.value()));
    out.record("padFlits", static_cast<double>(_padFlits.value()));
    out.record("creditStalls", static_cast<double>(_creditStalls.value()));
    out.record("replayedFrames", static_cast<double>(_replays.value()));
    out.record("ackTimeouts", static_cast<double>(_timeouts.value()));
}

// --------------------------------------------------------------- LlcRx

LlcRx::LlcRx(std::string name, sim::EventQueue &eq,
             const FlowParams &params, Wire &reverseWire)
    : SimObject(std::move(name), eq), _params(params), _reverse(reverseWire)
{
}

void
LlcRx::requestReplay()
{
    if (_replayPendingFor)
        return; // already asked for this _expected value
    _replayPendingFor = true;
    ControlMsg msg;
    msg.replayRequest = true;
    msg.replayFrom = _expected;
    _reverse.sendCtrl(msg);
}

void
LlcRx::returnCredit(bool withAck)
{
    ControlMsg msg;
    msg.credits = 1;
    if (withAck && _expected > 0) {
        msg.hasAck = true;
        msg.ack = _expected - 1;
    }
    _reverse.sendCtrl(msg);
}

void
LlcRx::onFrame(FramePtr frame)
{
    TF_ASSERT(_sink != nullptr, "%s: no sink connected", name().c_str());

    if (frame->corrupted) {
        _corrupted.inc();
        returnCredit(false);
        requestReplay();
        return;
    }

    if (frame->seq < _expected) {
        // Duplicate of an already-delivered frame (replay overshoot).
        _dups.inc();
        returnCredit(true);
        return;
    }

    if (frame->seq > _expected) {
        // Gap: a frame was lost ahead of this one. Go-back-N discard.
        _gaps.inc();
        returnCredit(false);
        requestReplay();
        return;
    }

    // In-order frame: deliver its transactions, then return the credit
    // once the ingress slot drains.
    ++_expected;
    _replayPendingFor = false;
    _delivered.inc();
    _txnsDelivered.inc(frame->txns.size());
    for (auto &txn : frame->txns)
        _sink(std::move(txn));
    after(_params.rxDrainLatency, [this]() { returnCredit(true); });
}

void
LlcRx::reportStats(sim::StatSet &out) const
{
    out.record("framesDelivered", static_cast<double>(_delivered.value()));
    out.record("txnsDelivered",
               static_cast<double>(_txnsDelivered.value()));
    out.record("duplicates", static_cast<double>(_dups.value()));
    out.record("gaps", static_cast<double>(_gaps.value()));
    out.record("corrupted", static_cast<double>(_corrupted.value()));
}

// ---------------------------------------------------------- LlcChannel

LlcChannel::LlcChannel(const std::string &name, sim::EventQueue &eq,
                       const FlowParams &params, sim::Rng &rng)
    : _wireAB(name + ".wireAB", eq, params, rng),
      _wireBA(name + ".wireBA", eq, params, rng),
      _txA(name + ".txA", eq, params, _wireAB),
      _rxB(name + ".rxB", eq, params, _wireBA),
      _txB(name + ".txB", eq, params, _wireBA),
      _rxA(name + ".rxA", eq, params, _wireAB)
{
    _wireAB.connect([this](FramePtr f) { _rxB.onFrame(std::move(f)); },
                    [this](ControlMsg m) { _txB.onCtrl(m); });
    _wireBA.connect([this](FramePtr f) { _rxA.onFrame(std::move(f)); },
                    [this](ControlMsg m) { _txA.onCtrl(m); });
}

} // namespace tf::flow
