#include "tflow/llc.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace tf::flow {

// ---------------------------------------------------------------- Wire

Wire::Wire(std::string name, sim::EventQueue &eq, const FlowParams &params,
           sim::Rng &rng)
    : SimObject(std::move(name), eq), _params(params), _rng(rng)
{
}

void
Wire::connect(FrameFn onFrame, CtrlFn onCtrl)
{
    _onFrame = std::move(onFrame);
    _onCtrl = std::move(onCtrl);
}

double
Wire::utilisation() const
{
    if (now() == 0)
        return 0.0;
    return static_cast<double>(_busy) / static_cast<double>(now());
}

void
Wire::fail()
{
    if (_failed)
        return;
    _failed = true;
    // Everything in flight is lost with the link: already-scheduled
    // deliveries carry the old epoch and are dropped on arrival.
    ++_epoch;
    _failEvents.inc();
}

void
Wire::recover()
{
    _failed = false;
    // Retrain leaves no error-model residue: a repaired wire must not
    // resume mid-burst or mid-bad-state — the outage outlives the
    // disturbance those chains modelled.
    _geBad = false;
    _burstUntil = 0;
    _burstBad = false;
}

void
Wire::startBurst(const sim::fault::GilbertElliott &ge, sim::Tick duration)
{
    _burstGe = ge;
    _burstUntil = std::max(_burstUntil, now() + duration);
    // A burst starts in the bad state: the fault models an external
    // disturbance already underway, not one waiting for a coin flip.
    _burstBad = true;
    _burstWindows.inc();
}

bool
Wire::burstActive() const
{
    return _burstUntil > now();
}

bool
Wire::frameError()
{
    // Transient burst window first (self-clearing per frame). The RNG
    // is only touched while a model is active, so fault-free runs
    // draw the exact same sequence as before the engine existed.
    if (_burstUntil != 0) {
        if (now() >= _burstUntil) {
            _burstUntil = 0;
            _burstBad = false;
        } else {
            if (_burstBad) {
                if (_rng.chance(_burstGe.pBadGood))
                    _burstBad = false;
            } else if (_rng.chance(_burstGe.pGoodBad)) {
                _burstBad = true;
            }
            double rate =
                _burstBad ? _burstGe.errBad : _burstGe.errGood;
            return rate > 0 && _rng.chance(rate);
        }
    }
    if (_params.geEnabled) {
        if (_geBad) {
            if (_rng.chance(_params.geBadGood))
                _geBad = false;
        } else if (_rng.chance(_params.geGoodBad)) {
            _geBad = true;
        }
        double rate = _geBad ? _params.geErrBad : _params.geErrGood;
        return rate > 0 && _rng.chance(rate);
    }
    return _params.frameErrorRate > 0 &&
           _rng.chance(_params.frameErrorRate);
}

void
Wire::sendFrame(FramePtr frame)
{
    TF_ASSERT(_onFrame != nullptr, "%s: wire not connected",
              name().c_str());

    // Store-and-forward frames occupy the full fixed frame size
    // (padding included); cut-through frames occupy only their used
    // flits — nop padding never travels. A dead wire still
    // serialises: the transmitter has no carrier detect, so it keeps
    // pacing against _nextFree as usual.
    std::uint32_t flits =
        _params.cutThrough ? frame->usedFlits : _params.frameFlits;
    std::uint32_t bytes = flits * _params.flitBytes;
    sim::Tick ser = _params.flitTime(flits);
    sim::Tick start = std::max(now(), _nextFree);
    _nextFree = start + ser;
    _busy += ser;
    _wireBytes.inc(bytes);
    _framesSent.inc();

    if (_failed) {
        _framesLostDown.inc();
        return;
    }

    bool drop = false;
    if (frameError()) {
        if (_rng.chance(0.5)) {
            drop = true;
            _framesDropped.inc();
        } else {
            frame->corrupted = true;
            _framesCorrupted.inc();
        }
    }
    if (drop)
        return;

    // Store-and-forward hands the frame over once the last flit has
    // arrived; cut-through hands it over when the header flit lands
    // and the Rx streams the payload out at line rate from there.
    sim::Tick arrive = _params.cutThrough ? _params.flitTime(1) : ser;
    sim::Tick deliver =
        start + arrive + _params.serdesLatency + _params.wireLatency;
    after(deliver - now(),
          [this, epoch = _epoch, frame = std::move(frame)]() mutable {
              if (epoch != _epoch) {
                  _framesLostDown.inc(); // was in flight when the link died
                  return;
              }
              _onFrame(std::move(frame));
          });
}

void
Wire::sendCtrl(ControlMsg msg)
{
    TF_ASSERT(_onCtrl != nullptr, "%s: wire not connected",
              name().c_str());
    if (_failed) {
        _ctrlLostDown.inc();
        return;
    }
    sim::Tick deliver = _params.serdesLatency + _params.wireLatency;
    after(deliver, [this, epoch = _epoch, msg]() {
        if (epoch != _epoch) {
            _ctrlLostDown.inc();
            return;
        }
        _onCtrl(msg);
    });
}

void
Wire::attachStats(sim::StatSet &set)
{
    set.attach("framesSent", _framesSent, "frames");
    set.attach("framesDropped", _framesDropped, "frames",
               "injected random loss");
    set.attach("framesCorrupted", _framesCorrupted, "frames");
    set.attach("framesLostDown", _framesLostDown, "frames",
               "swallowed while hard-failed");
    set.attach("ctrlLostDown", _ctrlLostDown, "msgs");
    set.attach("failEvents", _failEvents, "events");
    set.attach("wireBytes", _wireBytes, "bytes");
    set.attach("burstWindows", _burstWindows, "events",
               "Gilbert-Elliott burst-loss windows opened");
}

// --------------------------------------------------------------- LlcTx

LlcTx::LlcTx(std::string name, sim::EventQueue &eq,
             const FlowParams &params, Wire &wire)
    : SimObject(std::move(name), eq), _params(params), _wire(wire),
      _credits(params.rxQueueFrames)
{
}

void
LlcTx::enqueue(mem::TxnPtr txn)
{
    TF_ASSERT(mem::flitCount(*txn) <= _params.frameFlits,
              "transaction larger than a frame");
    if (_linkDown && _onDeadLetter) {
        // Late arrival on a dead link (e.g. a response that finished
        // mastering after failover): hand it to the owner to salvage.
        _deadLetters.inc();
        _onDeadLetter(std::move(txn));
        return;
    }
    // The channel span covers queueing, framing, the wire, and any
    // go-back-N replay rounds; it closes when the Rx hands the
    // transaction to its sink (delivery is exactly-once: replay
    // overshoot duplicates are discarded by sequence number).
    eventQueue().trace().begin(now(), txn->traceId,
                               mem::isRequest(txn->type)
                                   ? sim::trace::Stage::LlcReq
                                   : sim::trace::Stage::LlcResp,
                               static_cast<std::uint32_t>(_queue.size()));
    _queue.push_back(std::move(txn));
    // Assemble on a deferred kick so same-tick arrivals pack into one
    // frame, matching hardware where the frame fills as flits arrive.
    scheduleKick(now());
}

void
LlcTx::scheduleKick(sim::Tick when)
{
    if (_kickScheduled)
        return;
    _kickScheduled = true;
    after(when - now(), [this]() {
        _kickScheduled = false;
        trySend();
    });
}

FramePtr
LlcTx::assembleFrame()
{
    FramePtr frame = _framePool.acquire();
    frame->seq = _nextSeq++;
    // Cut-through frames lead with one shared header flit and
    // coalesce the per-transaction headers into its slot table;
    // store-and-forward keeps per-transaction headers and pads the
    // frame to its fixed size with nops.
    std::uint32_t flits = _params.cutThrough ? 1 : 0;
    while (!_queue.empty()) {
        std::uint32_t need = _params.cutThrough
                                 ? coalescedFlitCount(*_queue.front())
                                 : mem::flitCount(*_queue.front());
        if (flits + need > _params.frameFlits)
            break;
        flits += need;
        frame->txns.push_back(std::move(_queue.front()));
        _queue.pop_front();
    }
    TF_ASSERT(!frame->txns.empty(), "assembled an empty frame");
    frame->usedFlits = flits;
    frame->padFlits = _params.cutThrough ? 0 : _params.frameFlits - flits;
    _padFlits.inc(frame->padFlits);
    _txnsSent.inc(frame->txns.size());
    return frame;
}

void
LlcTx::transmit(const FramePtr &frame, bool replay)
{
    TF_ASSERT(_credits > 0, "transmit without credits");
    --_credits;
    _framesSent.inc();
    if (replay) {
        _replays.inc();
        // Retransmissions are fresh copies on the wire: clear the
        // corruption marker from an earlier damaged delivery.
        FramePtr copy = _framePool.acquire();
        *copy = *frame;
        copy->corrupted = false;
        copy->replayed = true;
        _wire.sendFrame(copy);
    } else {
        _wire.sendFrame(frame);
    }
    armTimer();
}

void
LlcTx::trySend()
{
    if (_linkDown)
        return; // salvage and re-routing are the datapath's job now
    if (_replayPending) {
        // In-order delivery: finish the stalled replay before any new
        // frame, or the Rx would just discard the new one as a gap.
        replayFrom(_replayNext);
        if (_replayPending)
            return; // still out of credits
    }
    while (!_queue.empty()) {
        if (_credits == 0) {
            if (_replayBuf.empty() && _starveUntil <= now()) {
                // Every sent frame is acked yet the credits never came
                // back: their return messages died on a failed wire.
                // Nothing is in flight, so the full window is provably
                // free; resynchronise instead of deadlocking. (Gated
                // off while credits are being starved, or the resync
                // would instantly undo the injected fault.)
                _creditResyncs.inc();
                refundCredits(_params.rxQueueFrames);
            } else {
                _creditStalls.inc();
                return; // a credit return re-kicks via onCtrl
            }
        }
        if (_replayBuf.size() >= _params.replayBufferFrames) {
            return; // an ack re-kicks via onCtrl
        }
        if (_wire.nextFree() > now()) {
            // Wire busy: wait, so the queue keeps filling and later
            // frames pack densely instead of padding early.
            scheduleKick(_wire.nextFree());
            return;
        }
        FramePtr frame = assembleFrame();
        _replayBuf.push_back(frame);
        transmit(frame, false);
    }
}

void
LlcTx::refundCredits(std::uint32_t n)
{
    _credits = std::min(_credits + n, _params.rxQueueFrames);
}

void
LlcTx::onCtrl(const ControlMsg &msg)
{
    if (_linkDown)
        return; // stale control from before the link was declared dead
    std::uint32_t credits = msg.credits;
    if (credits > 0 && _starveUntil > now()) {
        // Credit-starvation fault: the refund is lost. Acks below
        // still process so replay bookkeeping stays coherent; the
        // send window just narrows until resync heals it.
        _starvedCredits.inc(credits);
        credits = 0;
    }
    if (credits > 0)
        refundCredits(credits);

    if (msg.hasAck) {
        bool progress = false;
        while (!_replayBuf.empty() && _replayBuf.front()->seq <= msg.ack) {
            _replayBuf.pop_front();
            progress = true;
        }
        if (progress)
            _consecTimeouts = 0;
        if (_replayBuf.empty()) {
            _replayPending = false;
            disarmTimer();
        } else {
            armTimer();
        }
    }

    if (msg.replayRequest) {
        // A replay request proves the Rx is alive and receiving (gap
        // detection needs a later frame to arrive): not a dead link.
        _consecTimeouts = 0;
        replayFrom(msg.replayFrom);
    } else if (_replayPending && credits > 0) {
        // Resume a replay that stalled on credit exhaustion; without
        // this the stalled frames would sit until the next ack
        // timeout even though credits are available again.
        replayFrom(_replayNext);
    }

    if (!_queue.empty())
        scheduleKick(now());
}

void
LlcTx::replayFrom(FrameSeq seq)
{
    if (_linkDown)
        return;
    // The Rx side discarded every frame from `seq` onwards; refund the
    // credits those transmissions consumed, then retransmit in order.
    std::size_t idx = 0;
    while (idx < _replayBuf.size() && _replayBuf[idx]->seq < seq)
        ++idx;
    std::size_t count = _replayBuf.size() - idx;
    if (count == 0) {
        _replayPending = false;
        return;
    }
    refundCredits(static_cast<std::uint32_t>(count));
    for (; idx < _replayBuf.size(); ++idx) {
        if (_credits == 0) {
            _creditStalls.inc();
            // Remember where to resume once credits are refunded.
            _replayPending = true;
            _replayNext = _replayBuf[idx]->seq;
            return;
        }
        transmit(_replayBuf[idx], true);
    }
    _replayPending = false;
}

void
LlcTx::armTimer()
{
    // Lazy re-arm: the deadline only ever moves forward, so an
    // already-scheduled timer event can stay where it is — when it
    // fires early it re-schedules itself at the current deadline
    // (onTimerFire). This turns the per-ack deschedule+schedule pair
    // into a plain store; the kernel sees at most one timer event per
    // ackTimeout window instead of one per ack.
    _ackDeadline = now() + _params.ackTimeout;
    if (_ackTimer == sim::EventQueue::invalidEvent)
        _ackTimer = after(_params.ackTimeout, [this]() { onTimerFire(); });
}

void
LlcTx::onTimerFire()
{
    _ackTimer = sim::EventQueue::invalidEvent;
    if (_ackDeadline == 0)
        return; // disarmed after this event was already in flight
    if (now() < _ackDeadline) {
        // Ack progress pushed the deadline out since this event was
        // scheduled; chase it.
        _ackTimer = after(_ackDeadline - now(), [this]() { onTimerFire(); });
        return;
    }
    _ackDeadline = 0;
    onAckTimeout();
}

void
LlcTx::disarmTimer()
{
    _ackDeadline = 0;
    if (_ackTimer != sim::EventQueue::invalidEvent) {
        eventQueue().deschedule(_ackTimer);
        _ackTimer = sim::EventQueue::invalidEvent;
    }
}

void
LlcTx::onAckTimeout()
{
    if (_replayBuf.empty() || _linkDown)
        return;
    _timeouts.inc();
    ++_consecTimeouts;
    if (_params.maxReplayRounds > 0 &&
        _consecTimeouts >= _params.maxReplayRounds) {
        declareLinkDown();
        return;
    }
    // Tail loss: nothing after the lost frame arrived to trigger gap
    // detection at the Rx. Assume everything unacked was dropped.
    replayFrom(_replayBuf.front()->seq);
    // The replay may have sent nothing (credits dry on a dead link); the
    // timer must keep ticking anyway or escalation would never fire.
    if (!_replayBuf.empty() && _ackTimer == sim::EventQueue::invalidEvent)
        armTimer();
}

void
LlcTx::connectHealth(HealthFn onLinkDown)
{
    _onLinkDown = std::move(onLinkDown);
}

void
LlcTx::connectDeadLetter(DeadLetterFn onDeadLetter)
{
    _onDeadLetter = std::move(onDeadLetter);
}

void
LlcTx::declareLinkDown()
{
    _linkDown = true;
    _linkDowns.inc();
    disarmTimer();
    sim::warn("%s: link declared dead after %u consecutive ack timeouts",
              name().c_str(), _consecTimeouts);
    if (_onLinkDown)
        _onLinkDown();
}

void
LlcTx::starveCredits(sim::Tick duration)
{
    _starveUntil = std::max(_starveUntil, now() + duration);
    _creditStarves.inc();
    after(duration, [this]() {
        if (creditsStarved())
            return; // a later starve extended the window
        // The last refund may have been swallowed with nothing else
        // in flight to re-kick the pipeline; let trySend recover
        // (resync path included) now that refunds flow again.
        if (!_queue.empty() || _replayPending)
            scheduleKick(now());
    });
}

void
LlcTx::forceLinkDown()
{
    if (_linkDown)
        return;
    _linkDown = true;
    _linkDowns.inc();
    disarmTimer();
}

std::vector<mem::TxnPtr>
LlcTx::takeUndelivered()
{
    std::vector<mem::TxnPtr> out;
    for (auto &frame : _replayBuf) {
        for (auto &txn : frame->txns) {
            // Empty slots mark transactions the Rx already consumed
            // (delivery moves the payload out of the shared frame);
            // only genuinely undelivered ones need salvaging.
            if (txn != nullptr)
                out.push_back(std::move(txn));
        }
    }
    _replayBuf.clear();
    for (auto &txn : _queue)
        out.push_back(std::move(txn));
    _queue.clear();
    // Salvaged transactions leave this channel for good: close their
    // channel spans here so traces stay balanced across failover.
    for (auto &txn : out)
        eventQueue().trace().end(now(), txn->traceId,
                                 mem::isRequest(txn->type)
                                     ? sim::trace::Stage::LlcReq
                                     : sim::trace::Stage::LlcResp);
    _replayPending = false;
    disarmTimer();
    return out;
}

void
LlcTx::resetLink()
{
    disarmTimer();
    // Unsalvaged replay-buffer transactions go back to the head of the
    // queue, preserving their original order ahead of queued work.
    for (auto frameIt = _replayBuf.rbegin(); frameIt != _replayBuf.rend();
         ++frameIt)
        for (auto txnIt = (*frameIt)->txns.rbegin();
             txnIt != (*frameIt)->txns.rend(); ++txnIt)
            if (*txnIt != nullptr) // skip already-delivered slots
                _queue.push_front(std::move(*txnIt));
    _replayBuf.clear();
    _nextSeq = 0;
    _credits = _params.rxQueueFrames;
    _linkDown = false;
    _consecTimeouts = 0;
    _replayPending = false;
    if (!_queue.empty())
        scheduleKick(now());
}

void
LlcTx::reportStats(sim::StatSet &out) const
{
    out.record("framesSent", static_cast<double>(_framesSent.value()));
    out.record("txnsSent", static_cast<double>(_txnsSent.value()));
    out.record("padFlits", static_cast<double>(_padFlits.value()));
    out.record("creditStalls", static_cast<double>(_creditStalls.value()));
    out.record("replayedFrames", static_cast<double>(_replays.value()));
    out.record("ackTimeouts", static_cast<double>(_timeouts.value()));
    out.record("linkDowns", static_cast<double>(_linkDowns.value()));
    out.record("creditResyncs", static_cast<double>(_creditResyncs.value()));
}

void
LlcTx::attachStats(sim::StatSet &set)
{
    set.attach("framesSent", _framesSent, "frames");
    set.attach("txnsSent", _txnsSent, "txns");
    set.attach("padFlits", _padFlits, "flits");
    set.attach("creditStalls", _creditStalls, "events",
               "send blocked on credit exhaustion");
    set.attach("replayedFrames", _replays, "frames",
               "go-back-N retransmissions");
    set.attach("ackTimeouts", _timeouts, "events");
    set.attach("linkDowns", _linkDowns, "events",
               "replay escalation declared the channel dead");
    set.attach("creditResyncs", _creditResyncs, "events");
    set.attach("deadLetters", _deadLetters, "txns",
               "salvaged to the failover path after link-down");
    set.attach("creditStarves", _creditStarves, "events",
               "credit-starvation fault windows opened");
    set.attach("starvedCredits", _starvedCredits, "credits",
               "refunds swallowed by starvation faults");
}

// --------------------------------------------------------------- LlcRx

LlcRx::LlcRx(std::string name, sim::EventQueue &eq,
             const FlowParams &params, Wire &reverseWire)
    : SimObject(std::move(name), eq), _params(params), _reverse(reverseWire)
{
}

void
LlcRx::requestReplay()
{
    if (_replayPendingFor)
        return; // already asked for this _expected value
    _replayPendingFor = true;
    ControlMsg msg;
    msg.replayRequest = true;
    msg.replayFrom = _expected;
    _reverse.sendCtrl(msg);
}

void
LlcRx::returnCredit(bool withAck)
{
    ControlMsg msg;
    msg.credits = 1;
    if (withAck && _expected > 0) {
        msg.hasAck = true;
        msg.ack = _expected - 1;
    }
    _reverse.sendCtrl(msg);
}

void
LlcRx::onFrame(FramePtr frame)
{
    TF_ASSERT(_sink != nullptr, "%s: no sink connected", name().c_str());

    if (frame->corrupted) {
        _corrupted.inc();
        returnCredit(false);
        requestReplay();
        return;
    }

    if (frame->seq < _expected) {
        // Duplicate of an already-delivered frame (replay overshoot).
        _dups.inc();
        returnCredit(true);
        return;
    }

    if (frame->seq > _expected) {
        // Gap: a frame was lost ahead of this one.
        _gaps.inc();
        if (_params.cutThrough && _early.count(frame->seq) == 0 &&
            _early.size() < _params.rxQueueFrames) {
            // Cut-through early release: this frame arrived intact,
            // so its transactions complete now instead of convoying
            // behind the unrelated lost frame. The early set makes
            // the go-back-N re-delivery a suppressed duplicate
            // (exactly-once); it cannot outgrow the credit window.
            _early.insert(frame->seq);
            _earlyReleases.inc();
            deliver(std::move(frame), false);
        } else if (_params.cutThrough && _early.count(frame->seq) != 0) {
            // Replay overshoot of a frame already released early.
            _dups.inc();
            returnCredit(false);
        } else {
            // Store-and-forward (or window exceeded): go-back-N
            // discard.
            returnCredit(false);
        }
        requestReplay();
        return;
    }

    // In-order frame.
    ++_expected;
    _replayPendingFor = false;
    if (!_early.empty() && _early.erase(frame->seq) != 0) {
        // Replay of a frame already released early: the in-order
        // point advances, but delivering again would break
        // exactly-once.
        _dups.inc();
        returnCredit(true);
        return;
    }
    deliver(std::move(frame), true);
}

void
LlcRx::deliver(FramePtr frame, bool withAck)
{
    _delivered.inc();
    _txnsDelivered.inc(frame->txns.size());

    if (!_params.cutThrough) {
        // Store-and-forward: the whole frame has arrived; hand every
        // transaction over now and return the credit once the
        // ingress slot drains.
        for (auto &txn : frame->txns) {
            eventQueue().trace().end(now(), txn->traceId,
                                     mem::isRequest(txn->type)
                                         ? sim::trace::Stage::LlcReq
                                         : sim::trace::Stage::LlcResp);
            _sink(std::move(txn));
        }
        after(_params.rxDrainLatency,
              [this, withAck]() { returnCredit(withAck); });
        return;
    }

    // Cut-through: only the header flit has landed so far; each
    // transaction streams out as its own last flit arrives, and the
    // frame's credit returns after the final flit plus the drain
    // latency. Offsets are measured from the header flit's arrival.
    sim::Tick headerArrived = _params.flitTime(1);
    std::uint32_t cum = 1;
    sim::Tick last = 0;
    for (auto &txn : frame->txns) {
        cum += coalescedFlitCount(*txn);
        sim::Tick at = _params.flitTime(cum) - headerArrived;
        last = at;
        after(at, [this, txn = std::move(txn)]() mutable {
            eventQueue().trace().end(now(), txn->traceId,
                                     mem::isRequest(txn->type)
                                         ? sim::trace::Stage::LlcReq
                                         : sim::trace::Stage::LlcResp);
            _sink(std::move(txn));
        });
    }
    after(last + _params.rxDrainLatency,
          [this, withAck]() { returnCredit(withAck); });
}

void
LlcRx::resetLink()
{
    _expected = 0;
    _replayPendingFor = false;
    // Early-release state is per sequence space; a retrained link
    // must not suppress fresh seq 0..N as stale duplicates.
    _early.clear();
}

void
LlcRx::reportStats(sim::StatSet &out) const
{
    out.record("framesDelivered", static_cast<double>(_delivered.value()));
    out.record("txnsDelivered",
               static_cast<double>(_txnsDelivered.value()));
    out.record("duplicates", static_cast<double>(_dups.value()));
    out.record("gaps", static_cast<double>(_gaps.value()));
    out.record("corrupted", static_cast<double>(_corrupted.value()));
    out.record("earlyReleases", static_cast<double>(_earlyReleases.value()));
}

void
LlcRx::attachStats(sim::StatSet &set)
{
    set.attach("framesDelivered", _delivered, "frames");
    set.attach("txnsDelivered", _txnsDelivered, "txns");
    set.attach("duplicates", _dups, "frames");
    set.attach("gaps", _gaps, "events",
               "sequence gaps triggering replay requests");
    set.attach("corrupted", _corrupted, "frames");
    set.attach("earlyReleases", _earlyReleases, "frames",
               "cut-through frames released ahead of a gap");
}

// ---------------------------------------------------------- LlcChannel

LlcChannel::LlcChannel(const std::string &name, sim::EventQueue &eq,
                       const FlowParams &params, sim::Rng &rng)
    : _wireAB(name + ".wireAB", eq, params, rng),
      _wireBA(name + ".wireBA", eq, params, rng),
      _txA(name + ".txA", eq, params, _wireAB),
      _rxB(name + ".rxB", eq, params, _wireBA),
      _txB(name + ".txB", eq, params, _wireBA),
      _rxA(name + ".rxA", eq, params, _wireAB)
{
    _wireAB.connect([this](FramePtr f) { _rxB.onFrame(std::move(f)); },
                    [this](ControlMsg m) { _txB.onCtrl(m); });
    _wireBA.connect([this](FramePtr f) { _rxA.onFrame(std::move(f)); },
                    [this](ControlMsg m) { _txA.onCtrl(m); });
}

void
LlcChannel::fail()
{
    _wireAB.fail();
    _wireBA.fail();
}

void
LlcChannel::recover()
{
    _wireAB.recover();
    _wireBA.recover();
    // Every direction restarts its escalation ladder from zero:
    // timeout rounds accumulated against the dead wire must not
    // leave a flap survivor one benign timeout away from false
    // link-down. (resetLink below also does this for retrained
    // directions; flap-only directions get it here.)
    _txA.clearEscalation();
    _txB.clearEscalation();
    // Retrain only the directions that escalated to link-down: their
    // sequence spaces diverged (salvaged frames will never be replayed).
    // Directions that merely flapped keep continuity, so the replay
    // protocol delivers their backlog exactly once.
    if (_txA.linkDown()) {
        _txA.resetLink();
        _rxB.resetLink();
    }
    if (_txB.linkDown()) {
        _txB.resetLink();
        _rxA.resetLink();
    }
}

} // namespace tf::flow
