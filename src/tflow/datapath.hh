/**
 * @file
 * Full ThymesisFlow datapath between one compute node and one donor.
 *
 * Assembles the pieces of Fig. 2: compute endpoint (M1 window + RMMU +
 * routing), the network channels with their LLC protocol instances,
 * and the memory-stealing endpoint mastering donor memory via
 * OpenCAPI C1. This is the object the agent and control plane
 * configure, and the one benchmarks drive.
 */

#ifndef TF_FLOW_DATAPATH_HH
#define TF_FLOW_DATAPATH_HH

#include <memory>
#include <vector>

#include "mem/dram.hh"
#include "tflow/compute_endpoint.hh"
#include "tflow/stealing_endpoint.hh"

namespace tf::flow {

class Datapath
{
  public:
    /**
     * @param window      M1 real-address window on the compute host.
     * @param donorPasids PASID registry of the donor host.
     * @param donorDram   donor host's memory controller.
     * @param sectionBytes RMMU section granularity.
     */
    Datapath(const std::string &name, sim::EventQueue &eq,
             FlowParams params, ocapi::M1Window window,
             ocapi::PasidRegistry &donorPasids, mem::Dram &donorDram,
             sim::Rng &rng,
             std::uint64_t sectionBytes = mem::sectionBytes);

    ComputeEndpoint &compute() { return _compute; }
    StealingEndpoint &stealing() { return _stealing; }
    ocapi::C1Master &c1() { return _c1; }
    LlcChannel &channel(std::size_t i) { return *_channels.at(i); }
    std::size_t channelCount() const { return _channels.size(); }
    const FlowParams &params() const { return _params; }

    /**
     * Configure an active thymesisflow: map device-internal section
     * @p sectionIndex to donor effective address @p remoteBase, under
     * network id @p id, forwarded over @p channels (bonded when more
     * than one channel is given).
     */
    void attach(std::size_t sectionIndex, mem::Addr remoteBase,
                mem::NetworkId id, std::vector<int> channels);

    /** Tear down a section's flow. */
    void detach(std::size_t sectionIndex);

    /** Convenience: issue a host transaction into the M1 window. */
    void issue(mem::TxnPtr txn) { _compute.issue(std::move(txn)); }

    void reportStats(sim::StatSet &out) const;

  private:
    FlowParams _params;
    ocapi::C1Master _c1;
    std::vector<std::unique_ptr<LlcChannel>> _channels;
    ComputeEndpoint _compute;
    StealingEndpoint _stealing;
};

} // namespace tf::flow

#endif // TF_FLOW_DATAPATH_HH
