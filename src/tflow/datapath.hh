/**
 * @file
 * Full ThymesisFlow datapath between one compute node and one donor.
 *
 * Assembles the pieces of Fig. 2: compute endpoint (M1 window + RMMU +
 * routing), the network channels with their LLC protocol instances,
 * and the memory-stealing endpoint mastering donor memory via
 * OpenCAPI C1. This is the object the agent and control plane
 * configure, and the one benchmarks drive.
 */

#ifndef TF_FLOW_DATAPATH_HH
#define TF_FLOW_DATAPATH_HH

#include <functional>
#include <memory>
#include <vector>

#include "mem/dram.hh"
#include "sim/fault/fault.hh"
#include "tflow/compute_endpoint.hh"
#include "tflow/stealing_endpoint.hh"

namespace tf::flow {

class Datapath
{
  public:
    /** Channel health transition, reported to agents/control plane. */
    struct LinkEvent
    {
        std::size_t channel;
        bool down; ///< true = channel died, false = channel recovered
    };
    using LinkListener = std::function<void(const LinkEvent &)>;

    /**
     * @param window      M1 real-address window on the compute host.
     * @param donorPasids PASID registry of the donor host.
     * @param donorDram   donor host's memory controller.
     * @param sectionBytes RMMU section granularity.
     */
    Datapath(const std::string &name, sim::EventQueue &eq,
             FlowParams params, ocapi::M1Window window,
             ocapi::PasidRegistry &donorPasids, mem::Dram &donorDram,
             sim::Rng &rng,
             std::uint64_t sectionBytes = mem::sectionBytes);

    ComputeEndpoint &compute() { return _compute; }
    StealingEndpoint &stealing() { return _stealing; }
    ocapi::C1Master &c1() { return _c1; }
    LlcChannel &channel(std::size_t i) { return *_channels.at(i); }
    std::size_t channelCount() const { return _channels.size(); }
    const FlowParams &params() const { return _params; }

    /**
     * Configure an active thymesisflow: map device-internal section
     * @p sectionIndex to donor effective address @p remoteBase, under
     * network id @p id, forwarded over @p channels (bonded when more
     * than one channel is given).
     */
    void attach(std::size_t sectionIndex, mem::Addr remoteBase,
                mem::NetworkId id, std::vector<int> channels);

    /** Tear down a section's flow. */
    void detach(std::size_t sectionIndex);

    /**
     * Replace the channel set of an active flow (control-plane route
     * repair). Updates the routing table and the bonded flag of every
     * section mapped to the flow, and unmasks routing for channels in
     * the new set that are healthy again.
     */
    void reroute(mem::NetworkId id, std::vector<int> channels);

    /**
     * Error-complete every outstanding transaction of a flow (used
     * when its last channel died). @return transactions aborted.
     */
    std::size_t abortFlow(mem::NetworkId id);

    /** Subscribe to channel up/down transitions. */
    void addLinkListener(LinkListener listener);

    /**
     * Fault injection: hard-fail a channel's wires. Detection is
     * protocol-driven — the LLC Tx escalates after maxReplayRounds
     * consecutive ack timeouts, which then triggers failover.
     */
    void failChannel(std::size_t i);

    /** Fault injection: repair a channel and restore it to routing. */
    void recoverChannel(std::size_t i);

    /**
     * Fault injection: transient flap — hard-fail the channel's wires
     * now and auto-recover them @p downFor later. Whether the outage
     * is even noticed depends on its length vs the LLC's replay
     * escalation: short flaps heal invisibly through go-back-N replay;
     * long ones escalate to link-down and the recovery retrains the
     * channel and re-admits it to routing.
     */
    void flapChannel(std::size_t i, sim::Tick downFor);

    /**
     * Register this datapath's injectable sites with @p reg:
     *   <prefix>.ch<i>          ChannelFail / ChannelFlap
     *   <prefix>.ch<i>.wire     BurstLoss (both directions)
     *   <prefix>.ch<i>.credits  CreditStarve (compute-side Tx)
     */
    void registerFaultPoints(sim::fault::Registry &reg,
                             const std::string &prefix);

    /** True once the datapath has declared channel @p i dead. */
    bool channelDown(std::size_t i) const { return _chDown.at(i); }

    std::uint64_t linkDownEvents() const { return _linkDowns.value(); }
    std::uint64_t channelFlaps() const { return _flaps.value(); }
    std::uint64_t reroutedRequests() const { return _reroutedReqs.value(); }
    std::uint64_t reroutedResponses() const
    {
        return _reroutedResps.value();
    }
    std::uint64_t droppedResponses() const
    {
        return _droppedResps.value();
    }

    /** Convenience: issue a host transaction into the M1 window. */
    void issue(mem::TxnPtr txn) { _compute.issue(std::move(txn)); }

    RoutingLayer &routing() { return _compute.routing(); }

    void reportStats(sim::StatSet &out) const;

    /**
     * Register the whole datapath tree with @p reg under @p prefix:
     *   <prefix>                 failover counters
     *   <prefix>.compute[...]    endpoint, RMMU, routing, crossings
     *   <prefix>.llc.ch<i>.*     per-channel LLC Tx/Rx/wires
     *   <prefix>.stealing[...]   donor endpoint + crossings
     *   <prefix>.c1              OpenCAPI C1 master
     */
    void registerStats(sim::StatsRegistry &reg,
                       const std::string &prefix);

  private:
    FlowParams _params;
    sim::EventQueue &_eq;
    ocapi::C1Master _c1;
    std::vector<std::unique_ptr<LlcChannel>> _channels;
    ComputeEndpoint _compute;
    StealingEndpoint _stealing;
    std::vector<bool> _chDown;
    std::vector<LinkListener> _listeners;
    sim::Counter _linkDowns;
    sim::Counter _flaps;
    sim::Counter _reroutedReqs;
    sim::Counter _reroutedResps;
    sim::Counter _droppedResps;

    void handleLinkDown(std::size_t ch);
    int firstAliveChannel() const;
    void notify(const LinkEvent &ev);
};

} // namespace tf::flow

#endif // TF_FLOW_DATAPATH_HH
