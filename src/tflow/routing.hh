/**
 * @file
 * Routing layer (Section IV-A3).
 *
 * Forwards translated transactions towards remote endpoints based on
 * the network identifier in the transaction header. Any number of
 * endpoints can be connected concurrently; each active thymesisflow
 * (network id) is assigned a set of physical channels, and when the
 * flow is in bonding mode its transactions are spread over the
 * channels round-robin. A channel may be shared by many flows,
 * bonded or not.
 *
 * Failover: physical channels can be masked down. Bonded flows
 * degrade onto the surviving channels (rebalancing their WRR credits
 * so weights stay proportional within the alive subset); flows whose
 * every channel is down are reported unroutable, distinct from flows
 * that were never routed at all.
 */

#ifndef TF_FLOW_ROUTING_HH
#define TF_FLOW_ROUTING_HH

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "mem/transaction.hh"
#include "sim/stats.hh"

namespace tf::flow {

class RoutingLayer
{
  public:
    /**
     * Install or replace the route for a flow.
     * @param channels indices of the physical channels the flow may
     *        use; a bonded flow round-robins over all of them, a
     *        non-bonded flow uses only the first.
     */
    void setRoute(mem::NetworkId id, std::vector<int> channels);

    /**
     * Weighted variant — the "more sophisticated channel sharing"
     * extension of Section IV-A3: a bonded flow spreads transactions
     * across its channels proportionally to @p weights (smooth
     * weighted round-robin), enabling bandwidth allocation / QoS
     * between flows sharing the physical channels.
     * @pre channels.size() == weights.size(), weights > 0.
     */
    void setWeightedRoute(mem::NetworkId id, std::vector<int> channels,
                          std::vector<std::uint32_t> weights);

    /** Remove a flow's route. */
    void clearRoute(mem::NetworkId id);

    /** True if the flow has a route installed. */
    bool hasRoute(mem::NetworkId id) const;

    /**
     * Mask a physical channel out of every route. Bonded flows fail
     * over to their surviving channels on the next transaction.
     */
    void markChannelDown(int channel);

    /** Clear the mask: flows spread back over the channel. */
    void markChannelUp(int channel);

    /** True if the channel is currently masked down. */
    bool channelDown(int channel) const;

    /**
     * Pick the physical channel for a transaction.
     * @return channel index, or -1 if the flow has no route or every
     *         channel it may use is down.
     */
    int route(const mem::MemTxn &txn);

    std::uint64_t routed() const { return _routed.value(); }
    /** Transactions for flows with no route installed at all. */
    std::uint64_t dropped() const { return _dropped.value(); }
    /** Transactions for known flows whose every channel is down. */
    std::uint64_t unroutableDropped() const { return _unroutable.value(); }
    /** Transactions routed while the flow was missing >=1 channel. */
    std::uint64_t degradedTxns() const { return _degradedTxns.value(); }
    /** Route alive-set rebuilds triggered by channel state changes. */
    std::uint64_t failoverEvents() const { return _failovers.value(); }
    std::size_t flows() const { return _routes.size(); }

    /**
     * Pre-create per-channel occupancy counters for channels
     * [0, n). route() grows the set on demand; calling this up front
     * makes the telemetry schema stable before any traffic flows.
     */
    void ensureChannels(std::size_t n);

    /** Transactions steered onto physical channel @p channel. */
    std::uint64_t routedOnChannel(std::size_t channel) const;

    /** Attach routed/drop-taxonomy/per-channel counters. */
    void attachStats(sim::StatSet &set);

  private:
    struct Route
    {
        std::vector<int> channels;
        std::size_t rr = 0; ///< round-robin cursor for bonded flows
        /** Per-channel weights; empty = plain round-robin. */
        std::vector<std::uint32_t> weights;
        /** Smooth-WRR current credit per channel. */
        std::vector<std::int64_t> wrrCredit;
        /** Indices into channels[] that are currently up. */
        std::vector<std::size_t> aliveIdx;
        /** Channel-mask generation this alive set was built against. */
        std::uint64_t seenDownGen = ~0ull;
    };

    int weightedPick(Route &route);
    void refreshAlive(Route &route);

    std::unordered_map<mem::NetworkId, Route> _routes;
    std::vector<bool> _channelDown;
    /** Bumped on every markChannelDown/Up; lazily invalidates routes. */
    std::uint64_t _downGen = 0;
    sim::Counter _routed;
    sim::Counter _dropped;
    sim::Counter _unroutable;
    sim::Counter _degradedTxns;
    sim::Counter _failovers;
    /** Per-channel occupancy; deque keeps addresses stable so the
     *  counters stay attachable while the set grows. */
    std::deque<sim::Counter> _chRouted;

    void noteRouted(int channel);
};

} // namespace tf::flow

#endif // TF_FLOW_ROUTING_HH
