/**
 * @file
 * Routing layer (Section IV-A3).
 *
 * Forwards translated transactions towards remote endpoints based on
 * the network identifier in the transaction header. Any number of
 * endpoints can be connected concurrently; each active thymesisflow
 * (network id) is assigned a set of physical channels, and when the
 * flow is in bonding mode its transactions are spread over the
 * channels round-robin. A channel may be shared by many flows,
 * bonded or not.
 */

#ifndef TF_FLOW_ROUTING_HH
#define TF_FLOW_ROUTING_HH

#include <unordered_map>
#include <vector>

#include "mem/transaction.hh"
#include "sim/stats.hh"

namespace tf::flow {

class RoutingLayer
{
  public:
    /**
     * Install or replace the route for a flow.
     * @param channels indices of the physical channels the flow may
     *        use; a bonded flow round-robins over all of them, a
     *        non-bonded flow uses only the first.
     */
    void setRoute(mem::NetworkId id, std::vector<int> channels);

    /**
     * Weighted variant — the "more sophisticated channel sharing"
     * extension of Section IV-A3: a bonded flow spreads transactions
     * across its channels proportionally to @p weights (smooth
     * weighted round-robin), enabling bandwidth allocation / QoS
     * between flows sharing the physical channels.
     * @pre channels.size() == weights.size(), weights > 0.
     */
    void setWeightedRoute(mem::NetworkId id, std::vector<int> channels,
                          std::vector<std::uint32_t> weights);

    /** Remove a flow's route. */
    void clearRoute(mem::NetworkId id);

    /** True if the flow has a route installed. */
    bool hasRoute(mem::NetworkId id) const;

    /**
     * Pick the physical channel for a transaction.
     * @return channel index, or -1 if the flow has no route.
     */
    int route(const mem::MemTxn &txn);

    std::uint64_t routed() const { return _routed.value(); }
    std::uint64_t dropped() const { return _dropped.value(); }
    std::size_t flows() const { return _routes.size(); }

  private:
    struct Route
    {
        std::vector<int> channels;
        std::size_t rr = 0; ///< round-robin cursor for bonded flows
        /** Per-channel weights; empty = plain round-robin. */
        std::vector<std::uint32_t> weights;
        /** Smooth-WRR current credit per channel. */
        std::vector<std::int64_t> wrrCredit;
    };

    int weightedPick(Route &route);

    std::unordered_map<mem::NetworkId, Route> _routes;
    sim::Counter _routed;
    sim::Counter _dropped;
};

} // namespace tf::flow

#endif // TF_FLOW_ROUTING_HH
