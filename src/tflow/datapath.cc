#include "tflow/datapath.hh"

#include "sim/logging.hh"

namespace tf::flow {

Datapath::Datapath(const std::string &name, sim::EventQueue &eq,
                   FlowParams params, ocapi::M1Window window,
                   ocapi::PasidRegistry &donorPasids,
                   mem::Dram &donorDram, sim::Rng &rng,
                   std::uint64_t sectionBytes)
    : _params(params),
      _c1(name + ".c1", eq, ocapi::C1Params{}, donorPasids, donorDram),
      _compute(name + ".compute", eq, _params, window,
               SectionTable(sectionBytes,
                            static_cast<std::size_t>(
                                (window.size + sectionBytes - 1) /
                                sectionBytes))),
      _stealing(name + ".stealing", eq, _params, _c1)
{
    TF_ASSERT(_params.channels > 0, "need at least one channel");
    std::vector<LlcTx *> computeTxs;
    std::vector<LlcTx *> stealTxs;
    for (int i = 0; i < _params.channels; ++i) {
        auto ch = std::make_unique<LlcChannel>(
            name + ".ch" + std::to_string(i), eq, _params, rng);
        int idx = i;
        ch->rxB().connectSink([this, idx](mem::TxnPtr txn) {
            _stealing.onNetworkRequest(idx, std::move(txn));
        });
        ch->rxA().connectSink([this](mem::TxnPtr txn) {
            _compute.onNetworkResponse(std::move(txn));
        });
        computeTxs.push_back(&ch->txA());
        stealTxs.push_back(&ch->txB());
        _channels.push_back(std::move(ch));
    }
    _compute.connectChannels(std::move(computeTxs));
    _stealing.connectChannels(std::move(stealTxs));
}

void
Datapath::attach(std::size_t sectionIndex, mem::Addr remoteBase,
                 mem::NetworkId id, std::vector<int> channels)
{
    TF_ASSERT(!channels.empty(), "attach with no channels");
    for (int ch : channels) {
        TF_ASSERT(ch >= 0 && static_cast<std::size_t>(ch) <
                                 _channels.size(),
                  "attach references unknown channel %d", ch);
    }
    bool bonded = channels.size() > 1;
    _compute.rmmu().table().map(sectionIndex, remoteBase, id, bonded);
    _compute.routing().setRoute(id, std::move(channels));
}

void
Datapath::detach(std::size_t sectionIndex)
{
    const SectionEntry &e =
        _compute.rmmu().table().entry(sectionIndex);
    if (!e.valid)
        return;
    mem::NetworkId id = e.networkId;
    _compute.rmmu().table().unmap(sectionIndex);

    // Only clear the route once no other section uses this flow id.
    bool in_use = false;
    for (std::size_t i = 0; i < _compute.rmmu().table().entries(); ++i) {
        const SectionEntry &other = _compute.rmmu().table().entry(i);
        if (other.valid && other.networkId == id) {
            in_use = true;
            break;
        }
    }
    if (!in_use)
        _compute.routing().clearRoute(id);
}

void
Datapath::reportStats(sim::StatSet &out) const
{
    _compute.reportStats(out);
    out.record("c1Txns", static_cast<double>(_c1.transactions()));
    out.record("c1Faults", static_cast<double>(_c1.faults()));
}

} // namespace tf::flow
