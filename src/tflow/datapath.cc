#include "tflow/datapath.hh"

#include "sim/logging.hh"

namespace tf::flow {

Datapath::Datapath(const std::string &name, sim::EventQueue &eq,
                   FlowParams params, ocapi::M1Window window,
                   ocapi::PasidRegistry &donorPasids,
                   mem::Dram &donorDram, sim::Rng &rng,
                   std::uint64_t sectionBytes)
    : _params(params), _eq(eq),
      _c1(name + ".c1", eq, ocapi::C1Params{}, donorPasids, donorDram),
      _compute(name + ".compute", eq, _params, window,
               SectionTable(sectionBytes,
                            static_cast<std::size_t>(
                                (window.size + sectionBytes - 1) /
                                sectionBytes))),
      _stealing(name + ".stealing", eq, _params, _c1)
{
    TF_ASSERT(_params.channels > 0, "need at least one channel");
    std::vector<LlcTx *> computeTxs;
    std::vector<LlcTx *> stealTxs;
    for (int i = 0; i < _params.channels; ++i) {
        auto ch = std::make_unique<LlcChannel>(
            name + ".ch" + std::to_string(i), eq, _params, rng);
        int idx = i;
        ch->rxB().connectSink([this, idx](mem::TxnPtr txn) {
            _stealing.onNetworkRequest(idx, std::move(txn));
        });
        ch->rxA().connectSink([this](mem::TxnPtr txn) {
            _compute.onNetworkResponse(std::move(txn));
        });
        std::size_t chIdx = static_cast<std::size_t>(i);
        ch->txA().connectHealth([this, chIdx]() { handleLinkDown(chIdx); });
        ch->txB().connectHealth([this, chIdx]() { handleLinkDown(chIdx); });
        // Late traffic handed to a dead Tx is salvaged the same way as
        // the backlog drained at link-down time.
        ch->txA().connectDeadLetter([this](mem::TxnPtr txn) {
            _reroutedReqs.inc();
            _compute.reroute(std::move(txn));
        });
        ch->txB().connectDeadLetter([this](mem::TxnPtr txn) {
            int alive = firstAliveChannel();
            if (alive >= 0) {
                _reroutedResps.inc();
                _stealing.resend(alive, std::move(txn));
            } else {
                _droppedResps.inc();
            }
        });
        computeTxs.push_back(&ch->txA());
        stealTxs.push_back(&ch->txB());
        _channels.push_back(std::move(ch));
    }
    _chDown.assign(_channels.size(), false);
    _compute.connectChannels(std::move(computeTxs));
    _stealing.connectChannels(std::move(stealTxs));
    // Pre-size the per-channel routing counters so the telemetry
    // schema is complete before the first transaction flows.
    _compute.routing().ensureChannels(_channels.size());
}

void
Datapath::attach(std::size_t sectionIndex, mem::Addr remoteBase,
                 mem::NetworkId id, std::vector<int> channels)
{
    TF_ASSERT(!channels.empty(), "attach with no channels");
    for (int ch : channels) {
        TF_ASSERT(ch >= 0 && static_cast<std::size_t>(ch) <
                                 _channels.size(),
                  "attach references unknown channel %d", ch);
    }
    bool bonded = channels.size() > 1;
    _compute.rmmu().table().map(sectionIndex, remoteBase, id, bonded);
    _compute.routing().setRoute(id, std::move(channels));
}

void
Datapath::detach(std::size_t sectionIndex)
{
    const SectionEntry &e =
        _compute.rmmu().table().entry(sectionIndex);
    if (!e.valid)
        return;
    mem::NetworkId id = e.networkId;
    _compute.rmmu().table().unmap(sectionIndex);

    // Only clear the route once no other section uses this flow id.
    bool in_use = false;
    for (std::size_t i = 0; i < _compute.rmmu().table().entries(); ++i) {
        const SectionEntry &other = _compute.rmmu().table().entry(i);
        if (other.valid && other.networkId == id) {
            in_use = true;
            break;
        }
    }
    if (!in_use)
        _compute.routing().clearRoute(id);
}

void
Datapath::reroute(mem::NetworkId id, std::vector<int> channels)
{
    TF_ASSERT(!channels.empty(), "reroute with no channels");
    for (int ch : channels) {
        TF_ASSERT(ch >= 0 &&
                      static_cast<std::size_t>(ch) < _channels.size(),
                  "reroute references unknown channel %d", ch);
    }
    bool bonded = channels.size() > 1;
    SectionTable &table = _compute.rmmu().table();
    for (std::size_t i = 0; i < table.entries(); ++i) {
        if (table.entry(i).valid && table.entry(i).networkId == id)
            table.setBonded(i, bonded);
    }
    _compute.routing().setRoute(id, std::move(channels));
}

std::size_t
Datapath::abortFlow(mem::NetworkId id)
{
    return _compute.abortOutstanding(id);
}

void
Datapath::addLinkListener(LinkListener listener)
{
    _listeners.push_back(std::move(listener));
}

void
Datapath::notify(const LinkEvent &ev)
{
    for (auto &listener : _listeners)
        listener(ev);
}

int
Datapath::firstAliveChannel() const
{
    for (std::size_t i = 0; i < _channels.size(); ++i)
        if (!_chDown[i])
            return static_cast<int>(i);
    return -1;
}

void
Datapath::failChannel(std::size_t i)
{
    // Only the wires die; the datapath learns about it the way real
    // hardware does, through the LLC's missing-ack escalation.
    channel(i).fail();
}

void
Datapath::recoverChannel(std::size_t i)
{
    channel(i).recover();
    if (_chDown.at(i)) {
        _chDown[i] = false;
        _compute.routing().markChannelUp(static_cast<int>(i));
        notify(LinkEvent{i, false});
    }
}

void
Datapath::flapChannel(std::size_t i, sim::Tick downFor)
{
    channel(i).fail();
    _flaps.inc();
    _eq.scheduleIn(downFor, [this, i]() { recoverChannel(i); });
}

void
Datapath::registerFaultPoints(sim::fault::Registry &reg,
                              const std::string &prefix)
{
    using sim::fault::Event;
    using sim::fault::Kind;
    using sim::fault::kindBit;
    for (std::size_t i = 0; i < _channels.size(); ++i) {
        const std::string base = prefix + ".ch" + std::to_string(i);
        reg.add(base,
                kindBit(Kind::ChannelFail) | kindBit(Kind::ChannelFlap),
                [this, i](const Event &ev) {
                    if (ev.kind == Kind::ChannelFail)
                        failChannel(i);
                    else
                        flapChannel(i, ev.duration);
                });
        reg.add(base + ".wire", kindBit(Kind::BurstLoss),
                [this, i](const Event &ev) {
                    channel(i).wireAB().startBurst(ev.ge, ev.duration);
                    channel(i).wireBA().startBurst(ev.ge, ev.duration);
                });
        reg.add(base + ".credits", kindBit(Kind::CreditStarve),
                [this, i](const Event &ev) {
                    channel(i).txA().starveCredits(ev.duration);
                });
    }
}

void
Datapath::handleLinkDown(std::size_t ch)
{
    if (_chDown.at(ch))
        return; // the other direction already escalated
    _chDown[ch] = true;
    _linkDowns.inc();
    _compute.routing().markChannelDown(static_cast<int>(ch));

    // Both directions share the fate of the channel: force the side
    // that has not escalated yet down too, so a later recover()
    // retrains the full channel.
    LlcChannel &c = channel(ch);
    c.txA().forceLinkDown();
    c.txB().forceLinkDown();

    // Tell listeners (the control plane) before salvaging: a repaired
    // or degraded route pushed synchronously from the notification is
    // then already in place when the backlog is re-routed, so even a
    // single-channel flow survives without fail-fast errors.
    notify(LinkEvent{ch, true});

    // Salvage undelivered requests onto surviving channels
    // (at-least-once: the requester suppresses duplicate responses).
    // If the notification tore the flow down instead, the re-route
    // finds no route and the duplicate-suppressed fail-fast is a
    // no-op for already-aborted transactions.
    for (auto &txn : c.txA().takeUndelivered()) {
        _reroutedReqs.inc();
        _compute.reroute(std::move(txn));
    }

    // Salvage undelivered responses the same way; with no survivor
    // they are dropped, and the control plane's teardown
    // error-completes the requests they belonged to.
    int alive = firstAliveChannel();
    for (auto &txn : c.txB().takeUndelivered()) {
        if (alive >= 0) {
            _reroutedResps.inc();
            _stealing.resend(alive, std::move(txn));
        } else {
            _droppedResps.inc();
        }
    }
}

void
Datapath::reportStats(sim::StatSet &out) const
{
    _compute.reportStats(out);
    out.record("c1Txns", static_cast<double>(_c1.transactions()));
    out.record("c1Faults", static_cast<double>(_c1.faults()));
    out.record("linkDownEvents", static_cast<double>(_linkDowns.value()));
    out.record("reroutedRequests",
               static_cast<double>(_reroutedReqs.value()));
    out.record("reroutedResponses",
               static_cast<double>(_reroutedResps.value()));
    out.record("droppedResponses",
               static_cast<double>(_droppedResps.value()));
}

void
Datapath::registerStats(sim::StatsRegistry &reg,
                        const std::string &prefix)
{
    sim::StatSet &set = reg.at(prefix);
    set.attach("linkDownEvents", _linkDowns, "events");
    set.attach("channelFlaps", _flaps, "events",
               "transient flap injections (down + auto-recover)");
    set.attach("reroutedRequests", _reroutedReqs, "txns",
               "salvaged requests re-entering the routing layer");
    set.attach("reroutedResponses", _reroutedResps, "txns",
               "salvaged responses resent on a surviving channel");
    set.attach("droppedResponses", _droppedResps, "txns",
               "salvaged responses with no surviving channel");
    _compute.registerStats(reg, prefix + ".compute");
    _stealing.registerStats(reg, prefix + ".stealing");
    _c1.attachStats(reg.at(prefix + ".c1"));
    for (std::size_t i = 0; i < _channels.size(); ++i) {
        const std::string ch =
            prefix + ".llc.ch" + std::to_string(i);
        _channels[i]->txA().attachStats(reg.at(ch + ".txA"));
        _channels[i]->rxA().attachStats(reg.at(ch + ".rxA"));
        _channels[i]->txB().attachStats(reg.at(ch + ".txB"));
        _channels[i]->rxB().attachStats(reg.at(ch + ".rxB"));
        _channels[i]->wireAB().attachStats(reg.at(ch + ".wireAB"));
        _channels[i]->wireBA().attachStats(reg.at(ch + ".wireBA"));
    }
}

} // namespace tf::flow
