/**
 * @file
 * ThymesisFlow compute endpoint (Section IV-A1).
 *
 * The compute endpoint introduces remote memory into the host's real
 * address space: the firmware assigns it an M1-mode window, and every
 * cacheline transaction landing in the window crosses the host serDES
 * and the FPGA stack, is translated by the RMMU into a donor effective
 * address plus network id, and is forwarded by the routing layer onto
 * one of the network channels. Responses retrace the FPGA stack and
 * complete the host transaction.
 *
 * The endpoint supports a bounded number of outstanding transactions
 * (OpenCAPI tags); excess requests queue at the host interface.
 */

#ifndef TF_FLOW_COMPUTE_ENDPOINT_HH
#define TF_FLOW_COMPUTE_ENDPOINT_HH

#include <deque>
#include <unordered_map>
#include <vector>

#include "opencapi/crossing.hh"
#include "opencapi/m1_window.hh"
#include "sim/stats.hh"
#include "tflow/llc.hh"
#include "tflow/rmmu.hh"
#include "tflow/routing.hh"

namespace tf::flow {

class ComputeEndpoint : public sim::SimObject
{
  public:
    ComputeEndpoint(std::string name, sim::EventQueue &eq,
                    const FlowParams &params, ocapi::M1Window window,
                    SectionTable sections);

    /** Wire the per-channel transmit sides (one LlcTx per channel). */
    void connectChannels(std::vector<LlcTx *> txs);

    /**
     * Host-bus entry point: a cacheline load/store whose real address
     * falls inside the M1 window. The transaction's onComplete fires
     * when the response returns (or immediately on an RMMU fault,
     * with error set).
     */
    void issue(mem::TxnPtr txn);

    /** Response arrival from a channel's LlcRx (any channel). */
    void onNetworkResponse(mem::TxnPtr txn);

    /**
     * Re-route a request salvaged from a dead channel's LLC. The
     * transaction is already translated, so it re-enters at the
     * routing layer; if no surviving channel can carry it the request
     * fails fast with an error response. Failover is at-least-once:
     * if the original delivery actually succeeded (only its ack died
     * with the link), the duplicate response is suppressed in
     * finish().
     */
    void reroute(mem::TxnPtr txn);

    /**
     * Error-complete every outstanding transaction of a flow whose
     * last channel died, so the host never hangs on a response that
     * can no longer arrive. Also drains the tag wait queue.
     * @return number of transactions aborted.
     */
    std::size_t abortOutstanding(mem::NetworkId id);

    Rmmu &rmmu() { return _rmmu; }
    RoutingLayer &routing() { return _routing; }
    const ocapi::M1Window &window() const { return _window; }

    std::size_t outstanding() const { return _outstanding.size(); }
    std::size_t queued() const { return _waitQueue.size(); }

    std::uint64_t issued() const { return _issued.value(); }
    std::uint64_t completed() const { return _completed.value(); }
    std::uint64_t rmmuFaults() const { return _rmmu.faults(); }
    std::uint64_t tagStalls() const { return _tagStalls.value(); }
    std::uint64_t duplicateResponses() const { return _dupResponses.value(); }
    std::uint64_t reroutedRequests() const { return _rerouted.value(); }
    std::uint64_t abortedTxns() const { return _aborted.value(); }
    /** Requests error-completed by the request deadline. */
    std::uint64_t deadlineExpired() const
    {
        return _deadlineExpired.value();
    }

    /** Round-trip latency distribution (ns) seen at the host bus. */
    const sim::SampleStat &rttNs() const { return _rttNs; }

    /** Issue-to-RMMU-translation latency (host crossings + queueing). */
    const sim::QuantileSketch &xlatNs() const { return _xlatNs; }

    void reportStats(sim::StatSet &out) const;

    /**
     * Register this endpoint's stats under @p prefix: its own set at
     * @p prefix, the RMMU at "<prefix>.rmmu", the routing layer at
     * "<prefix>.routing" and the four host-side crossing stages at
     * "<prefix>.xing.*".
     */
    void registerStats(sim::StatsRegistry &reg,
                       const std::string &prefix);

  private:
    const FlowParams &_params;
    ocapi::M1Window _window;
    Rmmu _rmmu;
    RoutingLayer _routing;

    // Host-side pipeline stages (one OpenCAPI FPGA stack instance).
    ocapi::CrossingStage _hostSerdesDown;
    ocapi::CrossingStage _stackDown;
    ocapi::CrossingStage _stackUp;
    ocapi::CrossingStage _hostSerdesUp;

    std::vector<LlcTx *> _channelTx;
    std::deque<mem::TxnPtr> _waitQueue;
    /** In-flight requests by id; the value keeps the txn reachable for
     *  abortOutstanding() when its response path has died. */
    std::unordered_map<std::uint64_t, mem::TxnPtr> _outstanding;

    sim::Counter _issued;
    sim::Counter _completed;
    sim::Counter _tagStalls;
    sim::Counter _dupResponses;
    sim::Counter _rerouted;
    sim::Counter _aborted;
    sim::Counter _deadlineExpired;
    sim::SampleStat _rttNs;
    sim::QuantileSketch _xlatNs;

    /**
     * Deadline sweeper (params.requestDeadline > 0): one periodic
     * event, armed lazily while work is in flight, that error-
     * completes requests older than the deadline with
     * TxnStatus::TimedOut. Sweeping at deadline/2 granularity bounds
     * the worst-case hang at 1.5x the deadline without the per-
     * transaction timer churn an exact deadline would cost.
     */
    sim::EventQueue::EventId _deadlineSweep =
        sim::EventQueue::invalidEvent;

    void admit(mem::TxnPtr txn);
    void routeAndSend(mem::TxnPtr txn);
    void finish(mem::TxnPtr txn);
    void failFast(mem::TxnPtr txn);
    void armDeadlineSweep();
    void onDeadlineSweep();
    void drainWaitQueue();
};

} // namespace tf::flow

#endif // TF_FLOW_COMPUTE_ENDPOINT_HH
