#include "tflow/rmmu.hh"

#include <bit>

#include "sim/logging.hh"

namespace tf::flow {

SectionTable::SectionTable(std::uint64_t sectionBytes, std::size_t entries)
    : _sectionBytes(sectionBytes), _table(entries)
{
    TF_ASSERT(sectionBytes > 0 && std::has_single_bit(sectionBytes),
              "section size must be a power of two");
    TF_ASSERT(entries > 0, "empty section table");
    _shift = static_cast<unsigned>(std::countr_zero(sectionBytes));
}

std::size_t
SectionTable::indexOf(mem::Addr internal) const
{
    return static_cast<std::size_t>(internal >> _shift);
}

void
SectionTable::map(std::size_t index, mem::Addr remoteBase,
                  mem::NetworkId networkId, bool bonded)
{
    TF_ASSERT(index < _table.size(), "section index out of range");
    TF_ASSERT(networkId != mem::invalidNetworkId, "invalid network id");
    SectionEntry &e = _table[index];
    if (!e.valid)
        ++_mapped;
    e.valid = true;
    e.remoteBase = remoteBase;
    e.networkId = networkId;
    e.bonded = bonded;
}

void
SectionTable::setBonded(std::size_t index, bool bonded)
{
    TF_ASSERT(index < _table.size(), "section index out of range");
    TF_ASSERT(_table[index].valid, "setBonded on unmapped section");
    _table[index].bonded = bonded;
}

void
SectionTable::unmap(std::size_t index)
{
    TF_ASSERT(index < _table.size(), "section index out of range");
    if (_table[index].valid)
        --_mapped;
    _table[index] = SectionEntry{};
}

const SectionEntry &
SectionTable::entry(std::size_t index) const
{
    TF_ASSERT(index < _table.size(), "section index out of range");
    return _table[index];
}

const SectionEntry &
SectionTable::lookup(mem::Addr internal) const
{
    static const SectionEntry invalid{};
    std::size_t idx = indexOf(internal);
    if (idx >= _table.size())
        return invalid;
    return _table[idx];
}

Rmmu::Rmmu(std::string name, SectionTable table)
    : _name(std::move(name)), _table(std::move(table))
{
}

void
Rmmu::attachStats(sim::StatSet &set)
{
    set.attach("hits", _translations, "txns",
               "translations through a valid section entry");
    set.attach("misses", _faults, "txns",
               "accesses to unmapped sections (fail fast)");
}

bool
Rmmu::translate(mem::MemTxn &txn)
{
    const SectionEntry &e = _table.lookup(txn.addr);
    if (!e.valid) {
        _faults.inc();
        return false;
    }
    mem::Addr offset = txn.addr & (_table.sectionBytes() - 1);
    txn.addr = e.remoteBase + offset;
    txn.networkId = e.networkId;
    txn.bonded = e.bonded;
    _translations.inc();
    return true;
}

} // namespace tf::flow
