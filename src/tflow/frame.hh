/**
 * @file
 * LLC frames and in-band control messages.
 *
 * The LLC groups transaction flits into fixed-size frames; incomplete
 * frames are padded with single-flit nop headers for immediate
 * transmission. Frames carry monotonically increasing identifiers so
 * the Rx side can detect loss and request an in-order replay
 * (Section IV-A4).
 */

#ifndef TF_FLOW_FRAME_HH
#define TF_FLOW_FRAME_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "mem/transaction.hh"

namespace tf::flow {

using FrameSeq = std::uint64_t;

struct Frame
{
    FrameSeq seq = 0;
    /** Whole transactions packed into this frame. */
    std::vector<mem::TxnPtr> txns;
    /** Flits occupied by transactions (rest of the frame is nops). */
    std::uint32_t usedFlits = 0;
    std::uint32_t padFlits = 0;
    /** Set by the channel when the frame arrives damaged. */
    bool corrupted = false;
    /** True when this transmission is a replay. */
    bool replayed = false;
};

using FramePtr = std::shared_ptr<Frame>;

/**
 * In-band control info travelling opposite to a frame's direction.
 * Models both the piggybacked credit/ack fields of transaction headers
 * and the special single-flit replay-request frames.
 */
struct ControlMsg
{
    /** Credits being returned (empty Rx ingress slots). */
    std::uint32_t credits = 0;
    /** Cumulative ack: highest in-order frame delivered, valid if set. */
    bool hasAck = false;
    FrameSeq ack = 0;
    /** Replay request: retransmit starting from this sequence. */
    bool replayRequest = false;
    FrameSeq replayFrom = 0;
};

} // namespace tf::flow

#endif // TF_FLOW_FRAME_HH
