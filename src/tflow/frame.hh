/**
 * @file
 * LLC frames and in-band control messages.
 *
 * The LLC groups transaction flits into fixed-size frames; incomplete
 * frames are padded with single-flit nop headers for immediate
 * transmission. Frames carry monotonically increasing identifiers so
 * the Rx side can detect loss and request an in-order replay
 * (Section IV-A4).
 */

#ifndef TF_FLOW_FRAME_HH
#define TF_FLOW_FRAME_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "mem/transaction.hh"

namespace tf::flow {

using FrameSeq = std::uint64_t;

struct Frame
{
    FrameSeq seq = 0;
    /** Whole transactions packed into this frame. */
    std::vector<mem::TxnPtr> txns;
    /** Flits occupied by transactions (rest of the frame is nops). */
    std::uint32_t usedFlits = 0;
    std::uint32_t padFlits = 0;
    /** Set by the channel when the frame arrives damaged. */
    bool corrupted = false;
    /** True when this transmission is a replay. */
    bool replayed = false;
};

using FramePtr = std::shared_ptr<Frame>;

/**
 * Flits a transaction occupies in a coalesced (cut-through) frame:
 * payload flits only for data-bearing transactions — their
 * per-transaction header fields ride the frame's shared header
 * flit's slot table — while payload-less transactions (read
 * requests, write acks) still pay their single header flit.
 */
inline std::uint32_t
coalescedFlitCount(const mem::MemTxn &txn)
{
    std::uint32_t flits = mem::flitCount(txn);
    return flits > 1 ? flits - 1 : 1;
}

/**
 * Freelist pool for Frame objects.
 *
 * Every wire transmission allocates a Frame (and its txns vector); at
 * datapath rates that is hundreds of thousands of shared_ptr
 * allocations per simulated millisecond. The pool recycles the Frame
 * *object* — most importantly the txns vector's capacity — through a
 * freelist.
 *
 * Lifetime: frames routinely outlive their LlcTx (deliveries already
 * scheduled in the event queue when a channel is torn down), so the
 * recycling deleter holds shared ownership of the freelist core; the
 * last outstanding frame keeps it alive.
 */
class FramePool
{
  public:
    FramePool() : _core(std::make_shared<Core>()) {}

    /** A fresh (default-state) pooled frame. */
    FramePtr
    acquire()
    {
        Frame *f;
        if (!_core->free.empty()) {
            f = _core->free.back().release();
            _core->free.pop_back();
        } else {
            f = new Frame();
        }
        return FramePtr(f, Recycler{_core});
    }

    std::size_t freeCount() const { return _core->free.size(); }

  private:
    /** Frames cached beyond this are genuinely freed. */
    static constexpr std::size_t kMaxFree = 512;

    struct Core
    {
        std::vector<std::unique_ptr<Frame>> free;
    };

    struct Recycler
    {
        std::shared_ptr<Core> core;

        void
        operator()(Frame *f) const noexcept
        {
            if (core->free.size() >= kMaxFree) {
                delete f;
                return;
            }
            // Reset to default state now so payload references are
            // released immediately; clear() keeps txns' capacity,
            // which is the allocation this pool exists to recycle.
            f->seq = 0;
            f->txns.clear();
            f->usedFlits = 0;
            f->padFlits = 0;
            f->corrupted = false;
            f->replayed = false;
            core->free.emplace_back(f);
        }
    };

    std::shared_ptr<Core> _core;
};

/**
 * In-band control info travelling opposite to a frame's direction.
 * Models both the piggybacked credit/ack fields of transaction headers
 * and the special single-flit replay-request frames.
 */
struct ControlMsg
{
    /** Credits being returned (empty Rx ingress slots). */
    std::uint32_t credits = 0;
    /** Cumulative ack: highest in-order frame delivered, valid if set. */
    bool hasAck = false;
    FrameSeq ack = 0;
    /** Replay request: retransmit starting from this sequence. */
    bool replayRequest = false;
    FrameSeq replayFrom = 0;
};

} // namespace tf::flow

#endif // TF_FLOW_FRAME_HH
