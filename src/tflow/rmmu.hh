/**
 * @file
 * Remote Memory Management Unit (Section IV-A1, Fig. 3).
 *
 * The RMMU sits in the compute endpoint. It receives transactions in
 * the device-internal address space (starting at 0x0) and rewrites each
 * address into a valid effective address at the memory-stealing
 * endpoint, attaching the network identifier used by the routing layer.
 *
 * The translation is table-driven at Linux sparse-memory-section
 * granularity: one entry per section, indexed by a bit range of the
 * transaction address. A section is the minimum unit of disaggregated
 * memory that can be independently handled, and each section maps to a
 * contiguous effective-address range on the donor. All transactions of
 * one section form an "active thymesisflow" identified by its network
 * id.
 */

#ifndef TF_FLOW_RMMU_HH
#define TF_FLOW_RMMU_HH

#include <optional>
#include <vector>

#include "mem/transaction.hh"
#include "sim/stats.hh"

namespace tf::flow {

/** One section-table row. */
struct SectionEntry
{
    bool valid = false;
    /** Donor effective address of the section base. */
    mem::Addr remoteBase = 0;
    /** Active-thymesisflow identifier used by the routing layer. */
    mem::NetworkId networkId = mem::invalidNetworkId;
    /** Forward over all bonded channels round-robin. */
    bool bonded = false;
};

class SectionTable
{
  public:
    /**
     * @param sectionBytes section size; must be a power of two.
     * @param entries table capacity (device window / section size).
     */
    SectionTable(std::uint64_t sectionBytes, std::size_t entries);

    std::uint64_t sectionBytes() const { return _sectionBytes; }
    std::size_t entries() const { return _table.size(); }

    /** Section index for a device-internal address. */
    std::size_t indexOf(mem::Addr internal) const;

    /** Install a mapping for section @p index. */
    void map(std::size_t index, mem::Addr remoteBase,
             mem::NetworkId networkId, bool bonded);

    /** Remove the mapping for section @p index. */
    void unmap(std::size_t index);

    /**
     * Rewrite the bonding flag of a mapped section. Used when a route
     * repair changes the channel count of an active flow.
     */
    void setBonded(std::size_t index, bool bonded);

    const SectionEntry &entry(std::size_t index) const;

    /** Look up the entry covering @p internal (invalid if unmapped). */
    const SectionEntry &lookup(mem::Addr internal) const;

    std::size_t mappedCount() const { return _mapped; }

  private:
    std::uint64_t _sectionBytes;
    unsigned _shift;
    std::vector<SectionEntry> _table;
    std::size_t _mapped = 0;
};

/**
 * The translation engine: applies the section-table transformation to
 * transactions in flight. Faults (accesses to unmapped sections) are
 * counted and reported; the paper's control plane guarantees only legal
 * destinations are configured, so faulting transactions fail fast.
 */
class Rmmu
{
  public:
    Rmmu(std::string name, SectionTable table);

    SectionTable &table() { return _table; }
    const SectionTable &table() const { return _table; }

    /**
     * Translate a transaction in place: device-internal address ->
     * donor effective address + network id + bonding flag.
     * @return false on a fault (unmapped section); txn is untouched.
     */
    bool translate(mem::MemTxn &txn);

    std::uint64_t translations() const { return _translations.value(); }
    std::uint64_t faults() const { return _faults.value(); }

    /** Attach hit/miss counters and the mapped-section gauge. */
    void attachStats(sim::StatSet &set);

  private:
    std::string _name;
    SectionTable _table;
    sim::Counter _translations;
    sim::Counter _faults;
};

} // namespace tf::flow

#endif // TF_FLOW_RMMU_HH
