#include "system/testbed.hh"

namespace tf::sys {

namespace {
constexpr mem::Addr kWindowBase = 0x2000000000ULL;
} // namespace

const char *
setupName(Setup s)
{
    switch (s) {
      case Setup::Local:
        return "local";
      case Setup::SingleDisaggregated:
        return "single-disaggregated";
      case Setup::BondingDisaggregated:
        return "bonding-disaggregated";
      case Setup::Interleaved:
        return "interleaved";
      case Setup::ScaleOut:
        return "scale-out";
    }
    return "?";
}

Testbed::Testbed(sim::EventQueue &eq, TestbedParams params)
    : _eq(eq), _params(params), _rng(params.seed),
      _network("net", eq)
{
    _serverA = std::make_unique<Node>("serverA", eq, _params.node);
    _serverB = std::make_unique<Node>("serverB", eq, _params.node);
    NodeParams client_params = _params.node;
    client_params.bootSections = 8;
    _client = std::make_unique<Node>("client", eq, client_params);

    _cpuA = std::make_unique<CpuSet>("cpuA", eq,
                                     _params.node.hwThreads);
    _cpuB = std::make_unique<CpuSet>("cpuB", eq,
                                     _params.node.hwThreads);

    _network.connect("client", "serverA", net::EthParams::tenGig());
    _network.connect("client", "serverB", net::EthParams::tenGig());
    _network.connect("serverA", "serverB",
                     net::EthParams::hundredGig());

    switch (_params.setup) {
      case Setup::Local:
      case Setup::ScaleOut:
        break;
      case Setup::SingleDisaggregated:
      case Setup::Interleaved:
        composeDisaggregated(1);
        break;
      case Setup::BondingDisaggregated:
        composeDisaggregated(2);
        break;
    }
}

void
Testbed::composeDisaggregated(int channels)
{
    // Donor memory must exist beyond what the app itself needs on B:
    // give B extra boot sections to donate from.
    std::uint64_t window =
        mem::alignUp(_params.donatedBytes, _params.node.sectionBytes) *
        2;
    _datapath = std::make_unique<flow::Datapath>(
        "tflow", _eq, _params.flow,
        ocapi::M1Window{kWindowBase, window}, _serverB->pasids(),
        _serverB->dram(), _rng, _params.node.sectionBytes);
    _serverA->attachDatapath(*_datapath);

    _cp = std::make_unique<ctrl::ControlPlane>(
        _params.node.agentToken);
    _cp->addUser("admin", ctrl::Role::Admin);
    _cp->registerHost("serverA", _serverA->agent(), _serverA->mm());
    _cp->registerHost("serverB", _serverB->agent(), _serverB->mm());
    _cp->registerDatapath("serverA", "serverB", *_datapath);

    auto id = _cp->allocate("admin", "serverA", "serverB",
                            _params.donatedBytes,
                            _serverA->tflowNode(), channels,
                            _serverB->localNode());
    TF_ASSERT(id.has_value(),
              "testbed failed to compose disaggregated memory");
    _allocationId = *id;

    if (_params.enablePageCache) {
        os::PageCacheParams pcp = _params.pageCache;
        // The cache pages the same units the kernel does.
        pcp.pageBytes = _params.node.pageBytes;
        flow::Datapath *dp = _datapath.get();
        _pageCache = std::make_unique<os::PageCache>(
            "serverA.pagecache", _eq, pcp, _serverA->mm(),
            _serverA->localNode(), _serverA->dram(),
            [dp](mem::TxnPtr txn) { dp->issue(std::move(txn)); });
        _serverA->attachPageCache(*_pageCache);
    }
}

os::AllocPolicy
Testbed::serverPolicy()
{
    switch (_params.setup) {
      case Setup::Local:
      case Setup::ScaleOut:
        return os::AllocPolicy::bind({_serverA->localNode()});
      case Setup::SingleDisaggregated:
      case Setup::BondingDisaggregated:
        return os::AllocPolicy::bind({_serverA->tflowNode()});
      case Setup::Interleaved:
        return os::AllocPolicy::interleave(
            {_serverA->localNode(), _serverA->tflowNode()});
    }
    return os::AllocPolicy::local();
}

void
Testbed::failChannel(std::size_t i)
{
    TF_ASSERT(_datapath != nullptr, "no datapath in this setup");
    _datapath->failChannel(i);
}

void
Testbed::recoverChannel(std::size_t i)
{
    TF_ASSERT(_datapath != nullptr, "no datapath in this setup");
    _datapath->recoverChannel(i);
}

void
Testbed::flapChannel(std::size_t i, sim::Tick downFor)
{
    TF_ASSERT(_datapath != nullptr, "no datapath in this setup");
    _datapath->flapChannel(i, downFor);
}

void
Testbed::registerFaultPoints(sim::fault::Registry &reg)
{
    using sim::fault::Event;
    using sim::fault::Kind;
    using sim::fault::kindBit;
    if (_datapath)
        _datapath->registerFaultPoints(reg, "tflow");
    if (_cp)
        _cp->registerFaultPoints(reg, "ctrl");
    _network.registerFaultPoints(reg, "net");
    mem::Dram *donor = &_serverB->dram();
    reg.add("serverB.dram", kindBit(Kind::DramStall),
            [donor](const Event &ev) { donor->stall(ev.duration); });
    if (_pageCache) {
        os::PageCache *pc = _pageCache.get();
        reg.add("cache", kindBit(Kind::CachePoison),
                [pc](const Event &) { pc->poisonCleanPage(); });
    }
}

void
Testbed::registerStats(sim::StatsRegistry &reg,
                       const std::string &prefix)
{
    auto path = [&prefix](const char *leaf) {
        return prefix.empty() ? std::string(leaf)
                              : prefix + "." + leaf;
    };
    if (_datapath)
        _datapath->registerStats(reg, path("tflow"));
    if (_cp)
        _cp->attachStats(reg.at(path("ctrl")));
    _network.registerStats(reg, path("net"));
    _serverB->dram().attachStats(reg.at(path("serverB.dram")));
    if (_pageCache)
        _pageCache->attachStats(reg.at(path("cache")));
}

} // namespace tf::sys
