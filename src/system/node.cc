#include "system/node.hh"

namespace tf::sys {

Node::Node(std::string name, sim::EventQueue &eq, NodeParams params)
    : _name(std::move(name)), _eq(eq), _params(params),
      _cache(params.cache)
{
    _localNode = _topo.addNode(_name + ".local", true);
    // A CPU-less node is pre-created for hotplugged ThymesisFlow
    // memory; its distance reflects the remote access RTT.
    _tflowNode = _topo.addNode(_name + ".tflow0", false);
    _topo.setDistance(_localNode, _tflowNode, 80);

    _mm = std::make_unique<os::MemoryManager>(
        _topo, _params.sectionBytes, _params.pageBytes);
    for (std::uint64_t i = 0; i < _params.bootSections; ++i) {
        bool ok = _mm->onlineSection(_localNode,
                                     i * _params.sectionBytes);
        TF_ASSERT(ok, "boot memory online failed");
    }

    _dram = std::make_unique<mem::Dram>(_name + ".dram", eq,
                                        _params.dram, &_store);
    _agent = std::make_unique<agent::Agent>(
        _name + ".agent", *_mm, _pasids, _params.agentToken);
}

void
Node::attachDatapath(flow::Datapath &dp)
{
    _datapath = &dp;
}

void
Node::attachPageCache(os::PageCache &pc)
{
    TF_ASSERT(_datapath != nullptr,
              "attach the datapath before its page cache");
    _pageCache = &pc;
}

void
Node::issue(mem::TxnPtr txn)
{
    TF_ASSERT(mem::isRequest(txn->type), "host bus takes requests");
    if (_datapath != nullptr &&
        _datapath->compute().window().contains(txn->addr, txn->size)) {
        _remoteAccesses.inc();
        // The compute endpoint rewrites txn->addr on the way down, so
        // capture the host-real address now: an error completion
        // (dead path, deadline) poisons the backing frame, and the
        // next touch of the page re-faults it off the dead memory.
        mem::Addr realAddr = txn->addr;
        auto inner = std::move(txn->onComplete);
        txn->onComplete = [this, realAddr,
                           inner = std::move(inner)](mem::MemTxn &t) {
            if (t.error) {
                _remoteErrors.inc();
                _mm->poisonPage(realAddr);
            }
            if (inner)
                inner(t);
        };
        if (_pageCache != nullptr)
            _pageCache->access(std::move(txn));
        else
            _datapath->issue(std::move(txn));
        return;
    }
    _localAccesses.inc();
    _dram->access(std::move(txn), [](mem::TxnPtr t) { t->complete(); });
}

} // namespace tf::sys
