#include "system/node.hh"

#include <algorithm>

namespace tf::sys {

Node::Node(std::string name, sim::EventQueue &eq, NodeParams params)
    : _name(std::move(name)), _eq(eq), _params(params),
      _cache(params.cache)
{
    _localNode = _topo.addNode(_name + ".local", true);
    // A CPU-less node is pre-created for hotplugged ThymesisFlow
    // memory; its distance reflects the remote access RTT.
    _tflowNode = _topo.addNode(_name + ".tflow0", false);
    // Placeholder until a datapath attaches; attachDatapath derives
    // the real SLIT distance from measured latency estimates.
    _topo.setDistance(_localNode, _tflowNode, 80);

    _mm = std::make_unique<os::MemoryManager>(
        _topo, _params.sectionBytes, _params.pageBytes);
    for (std::uint64_t i = 0; i < _params.bootSections; ++i) {
        bool ok = _mm->onlineSection(_localNode,
                                     i * _params.sectionBytes);
        TF_ASSERT(ok, "boot memory online failed");
    }

    _dram = std::make_unique<mem::Dram>(_name + ".dram", eq,
                                        _params.dram, &_store);
    _agent = std::make_unique<agent::Agent>(
        _name + ".agent", *_mm, _pasids, _params.agentToken);
}

void
Node::attachDatapath(flow::Datapath &dp)
{
    _datapath = &dp;
    // SLIT distance of the hotplugged node, local = 10 convention:
    // scale by the measured latency ratio of one remote cacheline
    // (flit RTT budget + the local controller's banked estimate as a
    // stand-in for the donor's) to one local cacheline. The banked
    // estimatedLatency feeds both sides, so bank backlog at attach
    // time shifts placement policy the way real ACPI SLITs bake in
    // controller load assumptions.
    sim::Tick local = _dram->estimatedLatency(mem::cachelineBytes);
    const flow::FlowParams &fp = dp.params();
    sim::Tick remote = 6 * fp.serdesLatency + 4 * fp.fpgaStackLatency +
                       2 * fp.wireLatency +
                       _dram->estimatedLatency(mem::cachelineBytes);
    int distance = 10;
    if (local > 0)
        distance = static_cast<int>((10 * remote + local / 2) / local);
    _topo.setDistance(_localNode, _tflowNode,
                      std::clamp(distance, 11, 254));
}

void
Node::attachPageCache(os::PageCache &pc)
{
    TF_ASSERT(_datapath != nullptr,
              "attach the datapath before its page cache");
    _pageCache = &pc;
}

void
Node::issue(mem::TxnPtr txn)
{
    TF_ASSERT(mem::isRequest(txn->type), "host bus takes requests");
    if (_datapath != nullptr &&
        _datapath->compute().window().contains(txn->addr, txn->size)) {
        _remoteAccesses.inc();
        // The compute endpoint rewrites txn->addr on the way down, so
        // capture the host-real address now: an error completion
        // (dead path, deadline) poisons the backing frame, and the
        // next touch of the page re-faults it off the dead memory.
        mem::Addr realAddr = txn->addr;
        auto inner = std::move(txn->onComplete);
        txn->onComplete = [this, realAddr,
                           inner = std::move(inner)](mem::MemTxn &t) {
            if (t.error) {
                _remoteErrors.inc();
                _mm->poisonPage(realAddr);
            }
            if (inner)
                inner(t);
        };
        if (_pageCache != nullptr)
            _pageCache->access(std::move(txn));
        else
            _datapath->issue(std::move(txn));
        return;
    }
    _localAccesses.inc();
    _dram->access(std::move(txn), [](mem::TxnPtr t) { t->complete(); });
}

} // namespace tf::sys
