/**
 * @file
 * The paper's experimental testbed (Section VI-A, Fig. 4).
 *
 * Three AC922-class nodes: two servers (A runs the application server
 * side, B donates memory or runs the second application instance) and
 * a client machine. Five configurations:
 *
 *  - local:                  every page on A's local node;
 *  - single-disaggregated:   pages bound to the ThymesisFlow node,
 *                            one 100 Gb/s channel;
 *  - bonding-disaggregated:  both channels (200 Gb/s), bonded;
 *  - interleaved:            pages round-robin local/disaggregated;
 *  - scale-out:              the application is split over A and B,
 *                            all pages local, servers linked with
 *                            100 Gb/s Ethernet.
 *
 * The client reaches the servers over 10 Gb/s Ethernet in every
 * configuration.
 */

#ifndef TF_SYS_TESTBED_HH
#define TF_SYS_TESTBED_HH

#include <memory>

#include "ctrl/control_plane.hh"
#include "net/ethernet.hh"
#include "system/cpuset.hh"
#include "system/node.hh"

namespace tf::sys {

enum class Setup {
    Local,
    SingleDisaggregated,
    BondingDisaggregated,
    Interleaved,
    ScaleOut,
};

const char *setupName(Setup s);

struct TestbedParams
{
    Setup setup = Setup::Local;
    NodeParams node;
    flow::FlowParams flow;
    /** Memory stolen from server B in the disaggregated setups. */
    std::uint64_t donatedBytes = 512ULL * 1024 * 1024;
    std::uint64_t seed = 42;
    /**
     * Interpose a compute-side page cache between server A's host
     * bus and the datapath (disaggregated setups only).
     */
    bool enablePageCache = false;
    os::PageCacheParams pageCache;
};

class Testbed
{
  public:
    Testbed(sim::EventQueue &eq, TestbedParams params);

    Setup setup() const { return _params.setup; }
    const TestbedParams &params() const { return _params; }

    Node &serverA() { return *_serverA; }
    Node &serverB() { return *_serverB; }
    Node &client() { return *_client; }
    CpuSet &cpuA() { return *_cpuA; }
    CpuSet &cpuB() { return *_cpuB; }
    net::Network &network() { return _network; }
    ctrl::ControlPlane &controlPlane() { return *_cp; }
    flow::Datapath *datapath() { return _datapath.get(); }
    os::PageCache *pageCache() { return _pageCache.get(); }
    sim::Rng &rng() { return _rng; }

    /** Page policy applications on server A should run under. */
    os::AllocPolicy serverPolicy();

    /** True when the app splits across both servers (scale-out). */
    bool scaleOut() const { return _params.setup == Setup::ScaleOut; }

    /** Allocation id of the composed flow (0 when none). */
    std::uint64_t allocationId() const { return _allocationId; }

    /** Fault injection on the composed datapath. */
    void failChannel(std::size_t i);
    void recoverChannel(std::size_t i);

    /** Fail channel @p i and auto-recover after @p downFor ticks. */
    void flapChannel(std::size_t i, sim::Tick downFor);

    /**
     * Register every injectable site with a fault-point registry:
     *   tflow.ch<i>[...]  channel fail/flap, wire bursts, credit
     *                     starvation (disaggregated setups only)
     *   net.<src>-><dst>  Ethernet latency spikes
     *   serverB.dram      donor memory-controller stalls
     *   ctrl              control-plane outages
     */
    void registerFaultPoints(sim::fault::Registry &reg);

    /**
     * Register the whole testbed with @p reg under @p prefix:
     *   tflow[...]   datapath tree (disaggregated setups only)
     *   ctrl         control-plane repair-ladder outcomes
     *   net.*        per-link Ethernet counters
     *   serverB.dram donor memory controller
     * A non-empty prefix lets several beds share one registry
     * (e.g. one per setup in a bench scenario).
     */
    void registerStats(sim::StatsRegistry &reg,
                       const std::string &prefix = "");

  private:
    sim::EventQueue &_eq;
    TestbedParams _params;
    sim::Rng _rng;
    std::unique_ptr<Node> _serverA;
    std::unique_ptr<Node> _serverB;
    std::unique_ptr<Node> _client;
    std::unique_ptr<CpuSet> _cpuA;
    std::unique_ptr<CpuSet> _cpuB;
    net::Network _network;
    std::unique_ptr<flow::Datapath> _datapath;
    std::unique_ptr<os::PageCache> _pageCache;
    std::unique_ptr<ctrl::ControlPlane> _cp;
    std::uint64_t _allocationId = 0;

    void composeDisaggregated(int channels);
};

} // namespace tf::sys

#endif // TF_SYS_TESTBED_HH
