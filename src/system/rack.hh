/**
 * @file
 * Rack-scale cluster for the parallel engine.
 *
 * One logical process per rack: a compute node and its memory donor,
 * coupled by a full ThymesisFlow datapath (the ~950 ns ld/st path of
 * Fig. 2 — latency-critical, so it stays inside one partition), plus
 * the donor's DRAM. Racks are wired in a 100 Gb/s Ethernet ring; that
 * link's fixed one-way latency is what gives the engine its lookahead,
 * mirroring the paper's observation that the disaggregation fabric is
 * orders of magnitude tighter than the scale-out network.
 *
 * Each rack replays a shard of a synthetic ClusterData-like trace
 * (dc::shardTrace): a job burst issues chained 128 B loads through
 * the rack's thymesisflow, and a seeded per-rack coin decides whether
 * the job also performs one cross-rack RPC (request over the ring,
 * remote DRAM read, response back). Everything a rack does is driven
 * by its own queue and its own Rng, so results are independent of the
 * worker-thread count — parallel_scale asserts exactly that.
 */

#ifndef TF_SYS_RACK_HH
#define TF_SYS_RACK_HH

#include <memory>
#include <string>
#include <vector>

#include "dc/trace.hh"
#include "mem/backing_store.hh"
#include "mem/dram.hh"
#include "net/ethernet.hh"
#include "sim/parallel/engine.hh"
#include "tflow/datapath.hh"

namespace tf::sys {

struct RackParams
{
    /** Racks in the cluster; one LP (and one trace shard) each. */
    std::size_t racks = 4;
    /** Chained datapath loads issued per job burst. */
    int opsPerJob = 8;
    /** Probability that a job also performs one cross-rack RPC. */
    double crossRackFraction = 0.25;
    /** RPC request / response sizes on the inter-rack ring. */
    std::uint64_t rpcRequestBytes = 512;
    std::uint64_t rpcResponseBytes = 4096;
    /** Inter-rack ring links (their latency is the lookahead). */
    net::EthParams interRack = net::EthParams::hundredGig();
    flow::FlowParams flow;
    mem::DramParams dram;
};

class RackCluster
{
  public:
    /**
     * Build the cluster on @p engine: one LP per rack, the Ethernet
     * ring partitioned across them, and every job of @p shards
     * (shard i drives rack i) scheduled at its arrival tick.
     */
    RackCluster(const std::string &name,
                sim::par::ParallelEngine &engine,
                const std::vector<std::vector<dc::Job>> &shards,
                RackParams params, std::uint64_t seed);

    const RackParams &params() const { return _params; }
    std::size_t rackCount() const { return _racks.size(); }

    /** Datapath loads completed, summed over all racks. */
    std::uint64_t opsCompleted() const;

    /** Cross-rack RPC round trips completed, summed over all racks. */
    std::uint64_t crossRackOps() const;

    net::Network &network() { return *_net; }

    /**
     * Register per-rack counters and RPC latency under
     * "<prefix>.rack<i>", plus the ring links under "<prefix>.net".
     * Deterministic: no wall-clock values.
     */
    void registerStats(sim::StatsRegistry &reg,
                       const std::string &prefix);

  private:
    /** One rack: compute + donor + datapath on a private LP. */
    struct Rack
    {
        std::size_t index;
        std::string endpoint;      ///< network endpoint name
        sim::par::LogicalProcess *lp;
        sim::Rng rng;
        mem::BackingStore store;
        std::unique_ptr<mem::Dram> dram;
        ocapi::PasidRegistry pasids;
        std::unique_ptr<flow::Datapath> dp;
        sim::Counter ops;          ///< datapath loads completed
        sim::Counter cross;        ///< RPC round trips completed
        sim::Summary rpcRttUs;     ///< per-RPC round-trip time

        Rack(std::size_t index, std::uint64_t seed)
            : index(index), lp(nullptr), rng(seed)
        {}
    };

    void startJob(Rack &rack, std::uint64_t jobId);
    void issueRead(Rack &rack, int remaining, std::uint64_t offset);
    void issueRpc(Rack &rack);

    std::string _name;
    RackParams _params;
    std::vector<std::unique_ptr<Rack>> _racks;
    std::unique_ptr<net::Network> _net;
};

} // namespace tf::sys

#endif // TF_SYS_RACK_HH
