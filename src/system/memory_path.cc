#include "system/memory_path.hh"

namespace tf::sys {

void
MemoryPath::burst(os::AddressSpace &space,
                  std::vector<mem::Addr> vaddrs, bool write, int mlp,
                  std::function<void()> done)
{
    std::vector<Access> accesses;
    accesses.reserve(vaddrs.size());
    for (mem::Addr va : vaddrs)
        accesses.push_back(Access{va, write});
    burstMixed(space, std::move(accesses), mlp, std::move(done));
}

void
MemoryPath::burstMixed(os::AddressSpace &space,
                       std::vector<Access> accesses, int mlp,
                       std::function<void()> done,
                       bool streamingStores)
{
    auto st = std::make_shared<BurstState>();
    st->space = &space;
    st->done = std::move(done);

    // Cache filter (zero-time: hits cost CPU time, charged by the
    // workload model's per-op CPU component). The cache is
    // physically indexed, so translate first.
    for (const Access &acc : accesses) {
        mem::Addr line =
            mem::alignDown(acc.vaddr, mem::cachelineBytes);
        auto pa = st->space->translate(line);
        TF_ASSERT(pa.has_value(), "workload OOM: no frame for burst");

        if (acc.write && streamingStores) {
            // Full-line store stream: write memory directly, no
            // fill, no cache residency, no later write-back.
            _misses.inc();
            st->misses.push_back(Access{*pa, true});
            continue;
        }

        auto res = _node.cache().access(*pa, acc.write);
        if (res.hit) {
            _hits.inc();
            continue;
        }
        _misses.inc();
        // Loads fill; stores fill-for-ownership. Both are reads on
        // the bus, with dirty lines surfacing later as write-backs.
        st->misses.push_back(Access{*pa, false});

        if (res.writeback) {
            _writebacks.inc();
            // Victim addresses are already physical-line tags from
            // this node's cache; write them back asynchronously.
            auto wb = mem::makeTxn(mem::TxnType::WriteReq,
                                   res.victimAddr);
            wb->data.assign(mem::cachelineBytes, 0);
            _node.issue(std::move(wb));
        }
    }

    if (st->misses.empty()) {
        st->done();
        return;
    }
    pump(st, mlp);
}

void
MemoryPath::pump(const std::shared_ptr<BurstState> &st, int mlp)
{
    while (st->next < st->misses.size() && st->inFlight < mlp) {
        Access miss = st->misses[st->next++];
        ++st->inFlight;
        auto txn = mem::makeTxn(miss.write ? mem::TxnType::WriteReq
                                           : mem::TxnType::ReadReq,
                                miss.vaddr);
        if (miss.write)
            txn->data.assign(mem::cachelineBytes, 0);
        txn->onComplete = [this, st, mlp](mem::MemTxn &) {
            --st->inFlight;
            if (st->next < st->misses.size()) {
                pump(st, mlp);
            } else if (st->inFlight == 0) {
                st->done();
            }
        };
        _node.issue(std::move(txn));
    }
}

} // namespace tf::sys
