/**
 * @file
 * One AC922-class server node.
 *
 * Bundles the per-host pieces: NUMA topology + memory manager, DRAM
 * with functional backing store, PASID registry, the trusted agent,
 * and a host bus that steers cacheline transactions either to local
 * DRAM or into an attached ThymesisFlow compute endpoint's M1 window.
 */

#ifndef TF_SYS_NODE_HH
#define TF_SYS_NODE_HH

#include <memory>

#include "agent/agent.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "os/pagecache/pagecache.hh"
#include "tflow/datapath.hh"

namespace tf::sys {

struct NodeParams
{
    /** Parallel hardware threads (dual-socket POWER9: 32c x SMT4). */
    int hwThreads = 128;
    /** Local DRAM model. */
    mem::DramParams dram{sim::nanoseconds(90), 110e9, 0};
    /** Shared last-level cache model used by workload models. */
    mem::CacheParams cache{64 * 1024 * 1024, 8, 128};
    /** Kernel section size (scaled down for simulation). */
    std::uint64_t sectionBytes = 1ULL << 24; // 16 MiB
    std::uint64_t pageBytes = 64 * 1024;
    /** Boot-time local memory, in sections. */
    std::uint64_t bootSections = 64; // 1 GiB at 16 MiB sections
    std::string agentToken = "cp-secret";
};

class Node
{
  public:
    Node(std::string name, sim::EventQueue &eq, NodeParams params);

    const std::string &name() const { return _name; }
    const NodeParams &params() const { return _params; }

    os::NumaTopology &topology() { return _topo; }
    os::MemoryManager &mm() { return *_mm; }
    os::NodeId localNode() const { return _localNode; }
    os::NodeId tflowNode() const { return _tflowNode; }

    mem::BackingStore &store() { return _store; }
    mem::Dram &dram() { return *_dram; }
    mem::Cache &cache() { return _cache; }
    ocapi::PasidRegistry &pasids() { return _pasids; }
    agent::Agent &agent() { return *_agent; }

    /**
     * Attach a compute-side datapath: transactions landing in its M1
     * window are forwarded over ThymesisFlow instead of local DRAM.
     */
    void attachDatapath(flow::Datapath &dp);
    flow::Datapath *datapath() { return _datapath; }

    /**
     * Interpose a page cache on the remote path: M1-window requests
     * go through the cache (hits stay in local DRAM, misses stream
     * the page from the donor) instead of straight to the datapath.
     */
    void attachPageCache(os::PageCache &pc);
    os::PageCache *pageCache() { return _pageCache; }

    /**
     * Host bus entry: route a cacheline request by physical address
     * (local DRAM, or the M1 window). onComplete fires on response.
     */
    void issue(mem::TxnPtr txn);

    std::uint64_t localAccesses() const { return _localAccesses.value(); }
    std::uint64_t remoteAccesses() const
    {
        return _remoteAccesses.value();
    }
    /** Remote accesses that error-completed (frame poisoned). */
    std::uint64_t remoteErrors() const { return _remoteErrors.value(); }

  private:
    std::string _name;
    sim::EventQueue &_eq;
    NodeParams _params;
    os::NumaTopology _topo;
    std::unique_ptr<os::MemoryManager> _mm;
    os::NodeId _localNode = os::invalidNode;
    os::NodeId _tflowNode = os::invalidNode;
    mem::BackingStore _store;
    std::unique_ptr<mem::Dram> _dram;
    mem::Cache _cache;
    ocapi::PasidRegistry _pasids;
    std::unique_ptr<agent::Agent> _agent;
    flow::Datapath *_datapath = nullptr;
    os::PageCache *_pageCache = nullptr;
    sim::Counter _localAccesses;
    sim::Counter _remoteAccesses;
    sim::Counter _remoteErrors;
};

} // namespace tf::sys

#endif // TF_SYS_NODE_HH
