/**
 * @file
 * Hardware-thread occupancy model.
 *
 * Workload models execute CPU work by acquiring a hardware thread for
 * a given duration; excess tasks queue FIFO. Busy-time accounting
 * gives the "utilised CPU cores" (UCC) metric of the paper's VoltDB
 * profiling (Fig. 6), equivalent to perf's task-clock.
 */

#ifndef TF_SYS_CPUSET_HH
#define TF_SYS_CPUSET_HH

#include <deque>
#include <functional>

#include "sim/sim_object.hh"
#include "sim/stats.hh"

namespace tf::sys {

class CpuSet : public sim::SimObject
{
  public:
    CpuSet(std::string name, sim::EventQueue &eq, int hwThreads);

    int hwThreads() const { return _hwThreads; }
    int busyThreads() const { return _busy; }

    /**
     * Occupy one hardware thread for @p cpuTime, then run @p done.
     * Queued when all threads are busy.
     */
    void exec(sim::Tick cpuTime, std::function<void()> done);

    /** Total busy thread-time accumulated. */
    sim::Tick busyTime() const { return _busyTime; }

    /** Average busy hardware threads over [start, end]. */
    double
    averageBusy(sim::Tick start, sim::Tick end) const
    {
        if (end <= start)
            return 0.0;
        return static_cast<double>(_busyTime - 0) /
               static_cast<double>(end - start);
    }

    /** Busy-time accumulated since @p mark (for windowed UCC). */
    sim::Tick busySince(sim::Tick mark) const { return _busyTime - mark; }

    std::uint64_t tasksRun() const { return _tasks.value(); }
    std::uint64_t queuedPeak() const { return _queuedPeak; }

  private:
    int _hwThreads;
    int _busy = 0;
    sim::Tick _busyTime = 0;
    std::deque<std::pair<sim::Tick, std::function<void()>>> _queue;
    sim::Counter _tasks;
    std::uint64_t _queuedPeak = 0;

    void start(sim::Tick cpuTime, std::function<void()> done);
};

} // namespace tf::sys

#endif // TF_SYS_CPUSET_HH
