/**
 * @file
 * Cache-filtered memory access path for workload models.
 *
 * A burst is the memory phase of one application operation: a set of
 * virtual cacheline addresses touched with a given memory-level
 * parallelism. Each address is looked up in the node's shared cache;
 * misses are translated through the process page table and issued on
 * the host bus, landing either in local DRAM or in the ThymesisFlow
 * window depending on where the kernel placed the page. Dirty
 * victims generate write-back traffic.
 */

#ifndef TF_SYS_MEMORY_PATH_HH
#define TF_SYS_MEMORY_PATH_HH

#include <functional>
#include <memory>
#include <vector>

#include "os/address_space.hh"
#include "system/node.hh"

namespace tf::sys {

/** One access of a mixed burst. */
struct Access
{
    mem::Addr vaddr;
    bool write;
};

class MemoryPath
{
  public:
    explicit MemoryPath(Node &node) : _node(node) {}

    /**
     * Touch @p vaddrs (cacheline granular) in @p space.
     * @param write   store accesses (marks lines dirty).
     * @param mlp     outstanding misses allowed concurrently.
     * @param done    invoked once every miss has completed.
     */
    void burst(os::AddressSpace &space,
               std::vector<mem::Addr> vaddrs, bool write, int mlp,
               std::function<void()> done);

    /**
     * Mixed burst: loads and stores overlap on the same miss window
     * (loads fill, stores fill-for-ownership), as the core's load/
     * store queues allow.
     * @param streamingStores full-line stores bypass the cache and
     *        write memory directly (POWER9 dcbz-style store streams;
     *        no read-for-ownership, no write-back).
     */
    void burstMixed(os::AddressSpace &space,
                    std::vector<Access> accesses, int mlp,
                    std::function<void()> done,
                    bool streamingStores = false);

    std::uint64_t hits() const { return _hits.value(); }
    std::uint64_t misses() const { return _misses.value(); }
    std::uint64_t writebacks() const { return _writebacks.value(); }

  private:
    struct BurstState
    {
        os::AddressSpace *space;
        /** Post-filter misses: physical address + store-stream flag. */
        std::vector<Access> misses;
        std::size_t next = 0;
        int inFlight = 0;
        std::function<void()> done;
    };

    Node &_node;
    sim::Counter _hits;
    sim::Counter _misses;
    sim::Counter _writebacks;

    void pump(const std::shared_ptr<BurstState> &st, int mlp);
};

} // namespace tf::sys

#endif // TF_SYS_MEMORY_PATH_HH
