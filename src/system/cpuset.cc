#include "system/cpuset.hh"

#include "sim/logging.hh"

namespace tf::sys {

CpuSet::CpuSet(std::string name, sim::EventQueue &eq, int hwThreads)
    : SimObject(std::move(name), eq), _hwThreads(hwThreads)
{
    TF_ASSERT(hwThreads > 0, "need at least one hardware thread");
}

void
CpuSet::exec(sim::Tick cpuTime, std::function<void()> done)
{
    if (_busy >= _hwThreads) {
        _queue.emplace_back(cpuTime, std::move(done));
        _queuedPeak = std::max(_queuedPeak, _queue.size());
        return;
    }
    start(cpuTime, std::move(done));
}

void
CpuSet::start(sim::Tick cpuTime, std::function<void()> done)
{
    ++_busy;
    _tasks.inc();
    after(cpuTime, [this, cpuTime, done = std::move(done)]() mutable {
        _busyTime += cpuTime;
        --_busy;
        if (!_queue.empty()) {
            auto [next_time, next_done] = std::move(_queue.front());
            _queue.pop_front();
            start(next_time, std::move(next_done));
        }
        done();
    });
}

} // namespace tf::sys
