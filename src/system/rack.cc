#include "system/rack.hh"

#include "sim/logging.hh"

namespace tf::sys {

namespace {

// Same geometry as the datapath benches: a 1 GiB M1 window backed by
// two 16 MiB sections of donor memory; RPC reads target a disjoint
// region of the donor DRAM.
constexpr mem::Addr kWindowBase = 0x2000000000ULL;
constexpr std::uint64_t kWindowSize = 1ULL << 30;
constexpr std::uint64_t kSection = 1ULL << 24;
constexpr mem::Addr kDonorBase = 0x100000000ULL;
constexpr mem::Addr kRpcBase = 0x300000000ULL;

} // namespace

RackCluster::RackCluster(const std::string &name,
                         sim::par::ParallelEngine &engine,
                         const std::vector<std::vector<dc::Job>> &shards,
                         RackParams params, std::uint64_t seed)
    : _name(name), _params(params)
{
    TF_ASSERT(_params.racks >= 1, "%s: need at least one rack",
              _name.c_str());
    TF_ASSERT(shards.size() == _params.racks,
              "%s: %zu trace shards for %zu racks", _name.c_str(),
              shards.size(), _params.racks);

    for (std::size_t i = 0; i < _params.racks; ++i) {
        auto rack = std::make_unique<Rack>(i, seed + i);
        rack->endpoint = "rack" + std::to_string(i);
        rack->lp = &engine.addLp(rack->endpoint);
        sim::EventQueue &eq = rack->lp->queue();

        rack->dram = std::make_unique<mem::Dram>(
            _name + "." + rack->endpoint + ".dram", eq, _params.dram,
            &rack->store);
        rack->dp = std::make_unique<flow::Datapath>(
            _name + "." + rack->endpoint + ".dp", eq, _params.flow,
            ocapi::M1Window{kWindowBase, kWindowSize}, rack->pasids,
            *rack->dram, rack->rng, kSection);
        ocapi::Pasid pasid = rack->pasids.allocate();
        rack->pasids.registerRegion(pasid, kDonorBase, kWindowSize);
        rack->dp->stealing().setPasid(pasid);
        rack->dp->attach(0, kDonorBase, 1, {0});
        rack->dp->attach(1, kDonorBase + kSection, 2, {0, 1});
        _racks.push_back(std::move(rack));
    }

    // Ethernet ring: every endpoint homed on its rack's LP *before*
    // the links exist, then cross-LP links rerouted through engine
    // channels — the ring latency becomes the engine's lookahead.
    _net = std::make_unique<net::Network>(_name + ".net",
                                          _racks[0]->lp->queue());
    for (auto &rack : _racks)
        _net->assign(rack->endpoint, *rack->lp);
    for (std::size_t i = 0; i < _racks.size(); ++i) {
        std::size_t j = (i + 1) % _racks.size();
        if (i == j ||
            _net->connected(_racks[i]->endpoint, _racks[j]->endpoint))
            continue;
        _net->connect(_racks[i]->endpoint, _racks[j]->endpoint,
                      _params.interRack);
    }
    _net->partition(engine);

    for (std::size_t i = 0; i < shards.size(); ++i) {
        Rack *rack = _racks[i].get();
        for (const dc::Job &job : shards[i])
            rack->lp->queue().schedule(
                job.arrival, [this, rack, id = job.id]() {
                    startJob(*rack, id);
                });
    }
}

void
RackCluster::startJob(Rack &rack, std::uint64_t jobId)
{
    // Spread bursts across the section so jobs do not all hammer the
    // same cachelines; the offset is a pure function of the job id.
    issueRead(rack, _params.opsPerJob, (jobId * 4096) % kSection);
    if (_racks.size() > 1 &&
        rack.rng.chance(_params.crossRackFraction))
        issueRpc(rack);
}

void
RackCluster::issueRead(Rack &rack, int remaining, std::uint64_t offset)
{
    if (remaining <= 0)
        return;
    auto txn = mem::makeTxn(mem::TxnType::ReadReq,
                            kWindowBase + offset % kSection);
    Rack *r = &rack;
    txn->onComplete = [this, r, remaining, offset](mem::MemTxn &) {
        r->ops.inc();
        issueRead(*r, remaining - 1, offset + 128);
    };
    rack.dp->issue(std::move(txn));
}

void
RackCluster::issueRpc(Rack &rack)
{
    Rack *src = &rack;
    Rack *dst = _racks[(rack.index + 1) % _racks.size()].get();
    sim::Tick sent = rack.lp->queue().now();
    // Request crosses the ring, the remote rack reads its DRAM, the
    // response crosses back; each leg runs on the owning rack's LP.
    _net->send(src->endpoint, dst->endpoint, _params.rpcRequestBytes,
               [this, src, dst, sent]() {
                   auto txn = mem::makeTxn(
                       mem::TxnType::ReadReq,
                       kRpcBase + (sent % kSection),
                       static_cast<std::uint32_t>(
                           _params.rpcResponseBytes));
                   dst->dram->access(
                       txn, [this, src, dst, sent](mem::TxnPtr) {
                           _net->send(dst->endpoint, src->endpoint,
                                      _params.rpcResponseBytes,
                                      [this, src, sent]() {
                                          src->cross.inc();
                                          src->rpcRttUs.add(sim::toUs(
                                              src->lp->queue().now() -
                                              sent));
                                      });
                       });
               });
}

std::uint64_t
RackCluster::opsCompleted() const
{
    std::uint64_t total = 0;
    for (const auto &rack : _racks)
        total += rack->ops.value();
    return total;
}

std::uint64_t
RackCluster::crossRackOps() const
{
    std::uint64_t total = 0;
    for (const auto &rack : _racks)
        total += rack->cross.value();
    return total;
}

void
RackCluster::registerStats(sim::StatsRegistry &reg,
                           const std::string &prefix)
{
    for (auto &rack : _racks) {
        sim::StatSet &set = reg.at(prefix + "." + rack->endpoint);
        set.attach("ops", rack->ops, "ops",
                   "datapath loads completed");
        set.attach("cross", rack->cross, "rpcs",
                   "cross-rack RPC round trips completed");
        set.attach("rpcRttUs", rack->rpcRttUs, "us",
                   "cross-rack RPC round-trip time");
    }
    _net->registerStats(reg, prefix + ".net");
}

} // namespace tf::sys
