#include "mem/cache.hh"

#include "sim/logging.hh"

namespace tf::mem {

namespace {
bool
isPow2(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}
} // namespace

Cache::Cache(CacheParams params) : _params(params)
{
    TF_ASSERT(_params.lineBytes > 0 && isPow2(_params.lineBytes),
              "line size must be a power of two");
    TF_ASSERT(_params.ways > 0, "need at least one way");
    std::uint64_t lines = _params.sizeBytes / _params.lineBytes;
    TF_ASSERT(lines >= _params.ways, "cache smaller than one set");
    _sets = static_cast<std::uint32_t>(lines / _params.ways);
    TF_ASSERT(isPow2(_sets), "set count must be a power of two");
    _lines.resize(static_cast<std::size_t>(_sets) * _params.ways);
}

Cache::Line *
Cache::setBase(Addr addr)
{
    std::uint64_t line = addr / _params.lineBytes;
    std::uint32_t set = static_cast<std::uint32_t>(line & (_sets - 1));
    return &_lines[static_cast<std::size_t>(set) * _params.ways];
}

CacheResult
Cache::access(Addr addr, bool write)
{
    ++_tick;
    Addr tag = addr / _params.lineBytes;
    Line *set = setBase(addr);

    Line *victim = set;
    for (std::uint32_t w = 0; w < _params.ways; ++w) {
        Line &line = set[w];
        if (line.valid && line.tag == tag) {
            line.lru = _tick;
            line.dirty = line.dirty || write;
            _hits.inc();
            return CacheResult{true, false, 0};
        }
        if (!line.valid) {
            victim = &line;
        } else if (victim->valid && line.lru < victim->lru) {
            victim = &line;
        }
    }

    _misses.inc();
    CacheResult result{false, false, 0};
    if (victim->valid && victim->dirty) {
        result.writeback = true;
        result.victimAddr = victim->tag * _params.lineBytes;
        _writebacks.inc();
    }
    victim->valid = true;
    victim->tag = tag;
    victim->lru = _tick;
    victim->dirty = write;
    return result;
}

void
Cache::flush()
{
    for (auto &line : _lines)
        line = Line{};
}

double
Cache::hitRatio() const
{
    std::uint64_t total = _hits.value() + _misses.value();
    return total == 0 ? 0.0
                      : static_cast<double>(_hits.value()) /
                            static_cast<double>(total);
}

} // namespace tf::mem
