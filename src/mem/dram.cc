#include "mem/dram.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace tf::mem {

Dram::Dram(std::string name, sim::EventQueue &eq, DramParams params,
           BackingStore *store)
    : SimObject(std::move(name), eq), _params(params), _store(store)
{
    TF_ASSERT(_params.bandwidthBps > 0, "dram bandwidth must be positive");
    if (_params.banks > 1) {
        TF_ASSERT(_params.bankStrideBytes > 0, "bank stride must be positive");
        TF_ASSERT(_params.rowBytes > 0, "row size must be positive");
        TF_ASSERT(_params.reorderWindow > 0, "reorder window must be >= 1");
        _bankFree.assign(_params.banks, 0);
        _openRow.assign(_params.banks, 0);
        _bankStats = std::vector<BankStats>(_params.banks);
        _bankQueued.assign(_params.banks, 0);
    }
}

sim::Tick
Dram::serializationDelay(std::uint64_t bytes) const
{
    double secs = static_cast<double>(bytes) / _params.bandwidthBps;
    return sim::seconds(secs);
}

std::uint32_t
Dram::bankOf(Addr addr) const
{
    return static_cast<std::uint32_t>((addr / _params.bankStrideBytes) %
                                      _params.banks);
}

std::uint64_t
Dram::rowOf(Addr addr) const
{
    // One row spans banks * rowBytes of contiguous address space (the
    // stripes of a row land in every bank), so a streaming access
    // pattern activates one row per bank instead of thrashing one.
    return addr / (_params.rowBytes * _params.banks);
}

sim::Tick
Dram::estimatedLatency(std::uint32_t bytes) const
{
    sim::Tick start = std::max(now(), _nextFree);
    if (_params.banks > 1) {
        // A new arrival dispatches behind the queued backlog on the
        // channel and no earlier than the least-loaded bank frees up.
        // stall() freezes every bank cursor, so a frozen controller
        // is fully reflected here (fault_soak's bounded-recovery
        // estimate depends on that).
        sim::Tick minBank =
            *std::min_element(_bankFree.begin(), _bankFree.end());
        start = std::max(start, minBank);
        start += serializationDelay(_pendingBytes);
    }
    return (start - now()) + serializationDelay(bytes) +
           _params.accessLatency;
}

void
Dram::complete(TxnPtr txn, DoneFn done, sim::Tick finish)
{
    after(finish - now(),
          [this, txn = std::move(txn), done = std::move(done)]() mutable {
              if (_store) {
                  if (txn->type == TxnType::WriteReq) {
                      if (!txn->data.empty())
                          _store->write(txn->addr, txn->data.data(),
                                        std::min<std::uint64_t>(
                                            txn->data.size(), txn->size));
                  } else {
                      txn->data.resize(txn->size);
                      _store->read(txn->addr, txn->data.data(), txn->size);
                  }
              }
              txn->makeResponse();
              done(std::move(txn));
          });
}

void
Dram::access(TxnPtr txn, DoneFn done)
{
    TF_ASSERT(isRequest(txn->type), "dram got a response");

    _bytes.inc(txn->size);
    if (txn->isRead())
        _reads.inc();
    else
        _writes.inc();

    if (_params.banks <= 1) {
        // Legacy single-cursor model: the channel is the only
        // serialisation point.
        sim::Tick start = std::max(now(), _nextFree);
        sim::Tick ser = serializationDelay(txn->size);
        _nextFree = start + ser;
        complete(std::move(txn), std::move(done),
                 start + ser + _params.accessLatency);
        return;
    }

    _pendingBytes += txn->size;
    std::uint32_t bank = bankOf(txn->addr);
    _pending.push_back(Pending{std::move(txn), std::move(done)});
    _bankQueued[bank]++;
    _bankStats[bank].queueDepth.add(
        static_cast<double>(_bankQueued[bank]));
    tryDispatch();
}

void
Dram::tryDispatch()
{
    while (!_pending.empty()) {
        if (_nextFree > now()) {
            scheduleDispatch(_nextFree);
            return;
        }
        // FR-FCFS over a bounded window: the oldest row hit on a
        // ready bank goes first, then the oldest request on any
        // ready bank; if no bank in the window is ready, retry when
        // the earliest one frees up.
        std::size_t window = std::min<std::size_t>(
            _pending.size(), _params.reorderWindow);
        std::size_t pick = window; // sentinel: nothing ready
        sim::Tick earliest = 0;
        bool haveEarliest = false;
        for (std::size_t i = 0; i < window; ++i) {
            std::uint32_t b = bankOf(_pending[i].txn->addr);
            if (_bankFree[b] <= now()) {
                if (_openRow[b] == rowOf(_pending[i].txn->addr) + 1) {
                    pick = i; // oldest row hit wins outright
                    break;
                }
                if (pick == window)
                    pick = i;
            } else if (!haveEarliest || _bankFree[b] < earliest) {
                earliest = _bankFree[b];
                haveEarliest = true;
            }
        }
        if (pick == window) {
            TF_ASSERT(haveEarliest, "no ready bank and none pending");
            scheduleDispatch(earliest);
            return;
        }

        Pending p = std::move(_pending[pick]);
        _pending.erase(_pending.begin() +
                       static_cast<std::ptrdiff_t>(pick));
        if (pick != 0)
            _reorders.inc();

        std::uint32_t b = bankOf(p.txn->addr);
        std::uint64_t row = rowOf(p.txn->addr) + 1;
        bool hit = _openRow[b] == row;
        (hit ? _rowHits : _rowMisses).inc();
        _openRow[b] = row;

        sim::Tick ser = serializationDelay(p.txn->size);
        sim::Tick start = now();
        _nextFree = start + ser;
        // A miss occupies the bank for the activate/restore cycle (or
        // the transfer, whichever is longer); a hit only for the
        // transfer. Access latency is not bank occupancy: it
        // pipelines, like the legacy model's fixed tail.
        sim::Tick occupancy =
            hit ? ser : std::max(_params.rowCycleLatency, ser);
        _bankFree[b] = start + occupancy;
        BankStats &bs = _bankStats[b];
        bs.dispatches.inc();
        (hit ? bs.rowHits : bs.rowMisses).inc();
        bs.busyNs.inc(static_cast<std::uint64_t>(sim::toNs(occupancy)));
        _bankQueued[b]--;
        _pendingBytes -= p.txn->size;
        complete(std::move(p.txn), std::move(p.done),
                 start + ser + _params.accessLatency);
    }
}

void
Dram::scheduleDispatch(sim::Tick when)
{
    // One armed retry at the earliest useful tick; later requests for
    // the same or a later tick piggyback on it, an earlier request
    // supersedes it (the stale event sees a mismatched tick and
    // drops out).
    if (_dispatchArmed && _dispatchAt <= when)
        return;
    _dispatchArmed = true;
    _dispatchAt = when;
    after(when - now(), [this, when]() {
        if (!_dispatchArmed || _dispatchAt != when)
            return; // superseded
        _dispatchArmed = false;
        tryDispatch();
    });
}

void
Dram::stall(sim::Tick duration)
{
    sim::Tick until = now() + duration;
    _nextFree = std::max(_nextFree, until);
    // Freeze every bank cursor too: the banked scheduler must not
    // slip requests around the stall via an idle bank.
    for (auto &bank : _bankFree)
        bank = std::max(bank, until);
    _stalls.inc();
}

void
Dram::reportStats(sim::StatSet &out) const
{
    out.record("reads", static_cast<double>(_reads.value()), "txns");
    out.record("writes", static_cast<double>(_writes.value()), "txns");
    out.record("bytes", static_cast<double>(_bytes.value()), "B");
    out.record("rowHits", static_cast<double>(_rowHits.value()), "txns");
    out.record("rowMisses", static_cast<double>(_rowMisses.value()),
               "txns");
    out.record("reorders", static_cast<double>(_reorders.value()), "txns");
}

void
Dram::attachStats(sim::StatSet &set)
{
    set.attach("reads", _reads, "txns");
    set.attach("writes", _writes, "txns");
    set.attach("bytes", _bytes, "bytes");
    set.attach("serviceStalls", _stalls, "events",
               "injected service-stall windows");
    set.attach("rowHits", _rowHits, "txns", "open-row accesses");
    set.attach("rowMisses", _rowMisses, "txns",
               "row activations (bank busy for the row cycle)");
    set.attach("reorders", _reorders, "txns",
               "FR-FCFS dispatches ahead of an older request");
    for (std::uint32_t b = 0; b < _bankStats.size(); ++b) {
        std::string p = "bank" + std::to_string(b) + ".";
        BankStats &bs = _bankStats[b];
        set.attach(p + "dispatches", bs.dispatches, "txns");
        set.attach(p + "rowHits", bs.rowHits, "txns");
        set.attach(p + "rowMisses", bs.rowMisses, "txns");
        set.attach(p + "busyNs", bs.busyNs, "ns",
                   "cursor occupancy charged to this bank");
        set.attach(p + "queueDepth", bs.queueDepth, "txns",
                   "queued requests for this bank at enqueue");
    }
}

} // namespace tf::mem
