#include "mem/dram.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace tf::mem {

Dram::Dram(std::string name, sim::EventQueue &eq, DramParams params,
           BackingStore *store)
    : SimObject(std::move(name), eq), _params(params), _store(store)
{
    TF_ASSERT(_params.bandwidthBps > 0, "dram bandwidth must be positive");
}

sim::Tick
Dram::serializationDelay(std::uint32_t bytes) const
{
    double secs = static_cast<double>(bytes) / _params.bandwidthBps;
    return sim::seconds(secs);
}

sim::Tick
Dram::estimatedLatency(std::uint32_t bytes) const
{
    sim::Tick start = std::max(now(), _nextFree);
    return (start - now()) + serializationDelay(bytes) +
           _params.accessLatency;
}

void
Dram::access(TxnPtr txn, DoneFn done)
{
    TF_ASSERT(isRequest(txn->type), "dram got a response");

    sim::Tick start = std::max(now(), _nextFree);
    sim::Tick ser = serializationDelay(txn->size);
    _nextFree = start + ser;
    sim::Tick finish = start + ser + _params.accessLatency;

    _bytes.inc(txn->size);
    if (txn->isRead())
        _reads.inc();
    else
        _writes.inc();

    after(finish - now(),
          [this, txn = std::move(txn), done = std::move(done)]() mutable {
              if (_store) {
                  if (txn->type == TxnType::WriteReq) {
                      if (!txn->data.empty())
                          _store->write(txn->addr, txn->data.data(),
                                        std::min<std::uint64_t>(
                                            txn->data.size(), txn->size));
                  } else {
                      txn->data.resize(txn->size);
                      _store->read(txn->addr, txn->data.data(), txn->size);
                  }
              }
              txn->makeResponse();
              done(std::move(txn));
          });
}

void
Dram::stall(sim::Tick duration)
{
    _nextFree = std::max(_nextFree, now() + duration);
    _stalls.inc();
}

void
Dram::reportStats(sim::StatSet &out) const
{
    out.record("reads", static_cast<double>(_reads.value()), "txns");
    out.record("writes", static_cast<double>(_writes.value()), "txns");
    out.record("bytes", static_cast<double>(_bytes.value()), "B");
}

void
Dram::attachStats(sim::StatSet &set)
{
    set.attach("reads", _reads, "txns");
    set.attach("writes", _writes, "txns");
    set.attach("bytes", _bytes, "bytes");
    set.attach("serviceStalls", _stalls, "events",
               "injected service-stall windows");
}

} // namespace tf::mem
