/**
 * @file
 * Memory transactions.
 *
 * A MemTxn models one bus-level load/store: a 128-byte cacheline read or
 * write, as issued by the POWER9 onto the OpenCAPI port. Transactions
 * flow from the host bus through the ThymesisFlow compute endpoint
 * (where the RMMU rewrites the address and attaches a network ID),
 * across the network stack, and into the memory-stealing endpoint which
 * masters them into donor memory. Responses retrace the arrival channel.
 */

#ifndef TF_MEM_TRANSACTION_HH
#define TF_MEM_TRANSACTION_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "mem/addr.hh"
#include "sim/ticks.hh"
#include "sim/trace/span.hh"

namespace tf::mem {

enum class TxnType : std::uint8_t {
    ReadReq,
    WriteReq,
    ReadResp,
    WriteResp,
};

/** True for the two request types. */
constexpr bool
isRequest(TxnType t)
{
    return t == TxnType::ReadReq || t == TxnType::WriteReq;
}

/** Matching response type for a request. */
constexpr TxnType
responseFor(TxnType t)
{
    return t == TxnType::ReadReq ? TxnType::ReadResp : TxnType::WriteResp;
}

/** Identifier carried by routing headers; selects an active flow. */
using NetworkId = std::uint16_t;
constexpr NetworkId invalidNetworkId = 0xffff;

struct MemTxn;
using TxnPtr = std::shared_ptr<MemTxn>;

/**
 * Final disposition of a transaction, settled exactly once when the
 * requester's completion fires. Pending means the completion has not
 * run yet; every other state is terminal.
 */
enum class TxnStatus : std::uint8_t {
    Pending = 0, ///< still in flight
    Ok,          ///< completed successfully
    Error,       ///< error-completed (RMMU fault, abort, unroutable)
    TimedOut,    ///< error-completed by the request deadline
};

/** Stable status name for logs and stats keys. */
constexpr const char *
statusName(TxnStatus s)
{
    switch (s) {
      case TxnStatus::Pending:  return "pending";
      case TxnStatus::Ok:       return "ok";
      case TxnStatus::Error:    return "error";
      case TxnStatus::TimedOut: return "timedOut";
    }
    return "unknown";
}

/**
 * One in-flight memory transaction.
 *
 * The address field is rewritten as the transaction moves through the
 * stack (Fig. 3 of the paper): effective -> real (host MMU), real ->
 * device-internal (OpenCAPI window), device-internal -> remote
 * effective (RMMU). Each stage overwrites @c addr; @c origAddr keeps
 * the address as first seen by the compute endpoint for bookkeeping.
 */
struct MemTxn
{
    std::uint64_t id = 0;
    TxnType type = TxnType::ReadReq;
    Addr addr = 0;
    Addr origAddr = 0;
    std::uint32_t size = cachelineBytes;

    /** Routing header fields (attached by the RMMU). */
    NetworkId networkId = invalidNetworkId;
    bool bonded = false;

    /** Channel the request arrived on; responses retrace it. */
    int arrivalChannel = -1;

    /** Set when the access failed (RMMU fault, C1 authorisation). */
    bool error = false;

    /**
     * Completion status, settled by complete() from the error flag
     * (Error when set, Ok otherwise) unless a completer pre-set a
     * terminal status (e.g. TimedOut). Never reverts once terminal.
     */
    TxnStatus status = TxnStatus::Pending;

    /** Issue time at the original requester, for latency stats. */
    sim::Tick issued = 0;

    /**
     * Causal-trace id, allocated by the compute endpoint at issue
     * (noTrace when the transaction is unsampled or tracing is off).
     * makeResponse() flips this object in place, so the response
     * inherits the id and one trace covers the full round trip.
     */
    sim::trace::TraceId traceId = sim::trace::noTrace;

    /** Functional payload (writes carry data; read responses fill it). */
    std::vector<std::uint8_t> data;

    /** Completion callback, invoked exactly once at the requester. */
    std::function<void(MemTxn &)> onComplete;

    bool isRead() const { return type == TxnType::ReadReq ||
                                 type == TxnType::ReadResp; }
    bool isWrite() const { return !isRead(); }

    /** Flip a request into its response in place. */
    void makeResponse();

    /** Invoke and clear the completion callback. */
    void complete();
};

/** Allocate a fresh transaction with a process-unique id. */
TxnPtr makeTxn(TxnType type, Addr addr, std::uint32_t size = cachelineBytes);

/** Number of 32-byte flits a transaction occupies on the link. */
std::uint32_t flitCount(const MemTxn &txn);

} // namespace tf::mem

#endif // TF_MEM_TRANSACTION_HH
