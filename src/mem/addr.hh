/**
 * @file
 * Address types and geometry constants.
 *
 * The POWER9 issues 128-byte cacheline load/store transactions onto the
 * OpenCAPI port (Section VI-C); that granularity is load-bearing for the
 * whole reproduction (it caps the C1-mode bandwidth at ~16 GiB/s).
 */

#ifndef TF_MEM_ADDR_HH
#define TF_MEM_ADDR_HH

#include <cstdint>

namespace tf::mem {

/** A (real, effective or device-internal) memory address. */
using Addr = std::uint64_t;

/** POWER9 cacheline size in bytes. */
constexpr std::uint32_t cachelineBytes = 128;

/** Base page size used by the simulated kernel (POWER9 uses 64 KiB). */
constexpr std::uint64_t pageBytes = 64 * 1024;

/**
 * Sparse-memory-model section size. The Linux kernel on ppc64 uses
 * 256 MiB sections; the RMMU section table is indexed at this
 * granularity (Section IV-A1). Kept configurable in tests via
 * SectionTable, but this is the default.
 */
constexpr std::uint64_t sectionBytes = 256ULL * 1024 * 1024;

constexpr Addr
alignDown(Addr a, std::uint64_t unit)
{
    return a - (a % unit);
}

constexpr Addr
alignUp(Addr a, std::uint64_t unit)
{
    Addr r = a % unit;
    return r == 0 ? a : a + (unit - r);
}

constexpr bool
isAligned(Addr a, std::uint64_t unit)
{
    return a % unit == 0;
}

constexpr std::uint64_t
lineIndex(Addr a)
{
    return a / cachelineBytes;
}

constexpr std::uint64_t
pageIndex(Addr a)
{
    return a / pageBytes;
}

} // namespace tf::mem

#endif // TF_MEM_ADDR_HH
