/**
 * @file
 * DRAM channel model.
 *
 * A latency + bandwidth model of one memory controller's DRAM. The
 * channel serialises data at the configured bandwidth, every access
 * pays a fixed access latency, and — with banks > 1 — requests also
 * contend for per-bank cursors: a row miss occupies the bank for an
 * activate/restore cycle, a row hit only for the data transfer, and a
 * bounded-window FR-FCFS scheduler reorders queued requests onto
 * ready banks so one hot bank no longer convoys the whole channel.
 * This captures the three effects the disaggregated tail depends on:
 * local access latency (~100 ns class), a per-socket bandwidth
 * ceiling, and a bank-conflict service tail. banks <= 1 restores the
 * original single-cursor model exactly.
 *
 * The DRAM optionally fronts a BackingStore so accesses move real bytes.
 */

#ifndef TF_MEM_DRAM_HH
#define TF_MEM_DRAM_HH

#include <deque>
#include <functional>
#include <vector>

#include "mem/backing_store.hh"
#include "mem/transaction.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"

namespace tf::mem {

struct DramParams
{
    /** Fixed access (CAS-to-data) latency. */
    sim::Tick accessLatency = sim::nanoseconds(90);
    /** Sustained channel bandwidth, bytes per second. */
    double bandwidthBps = 110e9; // AC922-class per-socket ballpark
    /** Capacity, bytes (0 = unbounded). Checked, not enforced. */
    std::uint64_t capacity = 0;
    /**
     * Independent banks behind the channel. 1 = legacy single-cursor
     * model (the channel is the only serialisation point); > 1 adds
     * per-bank busy cursors and FR-FCFS reordering.
     */
    std::uint32_t banks = 16;
    /** Consecutive-address stripe rotated across banks. */
    std::uint64_t bankStrideBytes = 256;
    /**
     * Per-bank row-buffer capacity. With stripe interleaving one row
     * spans banks * rowBytes of contiguous address space, so
     * streaming accesses activate rows across all banks in parallel.
     */
    std::uint64_t rowBytes = 4096;
    /**
     * Bank occupancy on a row miss (activate + restore, tRC class).
     * Row hits occupy the bank only for the data transfer.
     */
    sim::Tick rowCycleLatency = sim::nanoseconds(45);
    /**
     * FR-FCFS reorder window: how many queued requests the scheduler
     * scans for one whose bank is ready, row hits first. 1 = FCFS.
     */
    std::uint32_t reorderWindow = 8;
};

class Dram : public sim::SimObject
{
  public:
    using DoneFn = std::function<void(TxnPtr)>;

    Dram(std::string name, sim::EventQueue &eq, DramParams params,
         BackingStore *store = nullptr);

    /**
     * Service a request transaction. The response (same object,
     * type flipped) is delivered through @p done after the modelled
     * delay. Functional data movement happens against the backing
     * store, if one is attached.
     */
    void access(TxnPtr txn, DoneFn done);

    /**
     * Latency the next request would see if issued now: channel
     * backlog (queued bytes plus cursors — including stall-frozen
     * bank cursors) + serialisation + access latency.
     */
    sim::Tick estimatedLatency(std::uint32_t bytes) const;

    /**
     * Fault injection: the channel services nothing for the next
     * @p duration ticks (refresh storm / thermal throttle). New
     * arrivals queue behind the stall; the channel cursor AND every
     * bank cursor freeze until it expires, so the banked scheduler
     * cannot slip requests around the stall. Accesses already in
     * flight complete normally. Nothing is lost.
     */
    void stall(sim::Tick duration);

    std::uint64_t stalls() const { return _stalls.value(); }

    const DramParams &params() const { return _params; }

    std::uint64_t reads() const { return _reads.value(); }
    std::uint64_t writes() const { return _writes.value(); }
    std::uint64_t bytesMoved() const { return _bytes.value(); }
    std::uint64_t rowHits() const { return _rowHits.value(); }
    std::uint64_t rowMisses() const { return _rowMisses.value(); }
    std::uint64_t reorders() const { return _reorders.value(); }
    std::size_t queueDepth() const { return _pending.size(); }

    /**
     * Per-bank scheduler telemetry (banks > 1 only): dispatches,
     * row-buffer outcomes, occupancy charged to the bank cursor, and
     * the per-bank queue depth observed at each enqueue. Exported as
     * "bank<i>.*" by attachStats, so the bench JSON shows which
     * banks a workload's stride actually lands on.
     */
    struct BankStats
    {
        sim::Counter dispatches;
        sim::Counter rowHits;
        sim::Counter rowMisses;
        /** Busy time charged to this bank's cursor, nanoseconds. */
        sim::Counter busyNs;
        /** Queued requests for this bank, sampled at enqueue. */
        sim::Summary queueDepth;
    };

    const BankStats &bankStats(std::uint32_t bank) const
    {
        return _bankStats.at(bank);
    }

    void reportStats(sim::StatSet &out) const;

    /** Attach read/write/byte counters for telemetry export. */
    void attachStats(sim::StatSet &set);

  private:
    struct Pending
    {
        TxnPtr txn;
        DoneFn done;
    };

    DramParams _params;
    BackingStore *_store;
    /** Channel (data-bus) cursor: next tick a transfer can start. */
    sim::Tick _nextFree = 0;
    /** Per-bank busy cursors (banks > 1 only). */
    std::vector<sim::Tick> _bankFree;
    /** Open row per bank, rowOf(addr) + 1; 0 = none open. */
    std::vector<std::uint64_t> _openRow;
    /** FR-FCFS request queue, arrival order (banks > 1 only). */
    std::deque<Pending> _pending;
    /** Bytes queued but not yet dispatched (estimate input). */
    std::uint64_t _pendingBytes = 0;
    /** Earliest armed dispatch retry; dedups scheduler wakeups. */
    bool _dispatchArmed = false;
    sim::Tick _dispatchAt = 0;
    sim::Counter _reads;
    sim::Counter _writes;
    sim::Counter _bytes;
    sim::Counter _stalls;
    sim::Counter _rowHits;
    sim::Counter _rowMisses;
    sim::Counter _reorders;
    /** Per-bank telemetry (banks > 1 only). */
    std::vector<BankStats> _bankStats;
    /** Requests currently queued per bank (enqueue minus dispatch). */
    std::vector<std::uint32_t> _bankQueued;

    sim::Tick serializationDelay(std::uint64_t bytes) const;
    std::uint32_t bankOf(Addr addr) const;
    std::uint64_t rowOf(Addr addr) const;
    void tryDispatch();
    void scheduleDispatch(sim::Tick when);
    void complete(TxnPtr txn, DoneFn done, sim::Tick finish);
};

} // namespace tf::mem

#endif // TF_MEM_DRAM_HH
