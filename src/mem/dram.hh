/**
 * @file
 * DRAM channel model.
 *
 * A latency + bandwidth model of one memory controller's DRAM: each
 * access pays a fixed access latency, and the channel serialises data
 * at the configured bandwidth (next-free-time model). This captures the
 * two effects the paper's evaluation depends on -- local access latency
 * (~100 ns class) and a per-socket bandwidth ceiling -- without
 * simulating banks/rows, which the paper does not vary.
 *
 * The DRAM optionally fronts a BackingStore so accesses move real bytes.
 */

#ifndef TF_MEM_DRAM_HH
#define TF_MEM_DRAM_HH

#include <functional>

#include "mem/backing_store.hh"
#include "mem/transaction.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"

namespace tf::mem {

struct DramParams
{
    /** Fixed access (CAS-to-data) latency. */
    sim::Tick accessLatency = sim::nanoseconds(90);
    /** Sustained channel bandwidth, bytes per second. */
    double bandwidthBps = 110e9; // AC922-class per-socket ballpark
    /** Capacity, bytes (0 = unbounded). Checked, not enforced. */
    std::uint64_t capacity = 0;
};

class Dram : public sim::SimObject
{
  public:
    using DoneFn = std::function<void(TxnPtr)>;

    Dram(std::string name, sim::EventQueue &eq, DramParams params,
         BackingStore *store = nullptr);

    /**
     * Service a request transaction. The response (same object,
     * type flipped) is delivered through @p done after the modelled
     * delay. Functional data movement happens against the backing
     * store, if one is attached.
     */
    void access(TxnPtr txn, DoneFn done);

    /** Latency the next request would see if issued now (queue + access). */
    sim::Tick estimatedLatency(std::uint32_t bytes) const;

    /**
     * Fault injection: the channel services nothing for the next
     * @p duration ticks (refresh storm / thermal throttle). New
     * arrivals queue behind the stall on the next-free-time cursor;
     * accesses already in flight complete normally. Nothing is lost.
     */
    void stall(sim::Tick duration);

    std::uint64_t stalls() const { return _stalls.value(); }

    const DramParams &params() const { return _params; }

    std::uint64_t reads() const { return _reads.value(); }
    std::uint64_t writes() const { return _writes.value(); }
    std::uint64_t bytesMoved() const { return _bytes.value(); }

    void reportStats(sim::StatSet &out) const;

    /** Attach read/write/byte counters for telemetry export. */
    void attachStats(sim::StatSet &set);

  private:
    DramParams _params;
    BackingStore *_store;
    sim::Tick _nextFree = 0;
    sim::Counter _reads;
    sim::Counter _writes;
    sim::Counter _bytes;
    sim::Counter _stalls;

    sim::Tick serializationDelay(std::uint32_t bytes) const;
};

} // namespace tf::mem

#endif // TF_MEM_DRAM_HH
