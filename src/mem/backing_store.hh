/**
 * @file
 * Sparse functional memory.
 *
 * Holds the actual bytes behind simulated physical memory so that the
 * datapath can be verified end-to-end: a value stored through the
 * ThymesisFlow stack must read back identically from donor memory.
 * Pages are allocated lazily on first touch (zero-filled).
 */

#ifndef TF_MEM_BACKING_STORE_HH
#define TF_MEM_BACKING_STORE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "mem/addr.hh"

namespace tf::mem {

class BackingStore
{
  public:
    BackingStore() = default;
    BackingStore(const BackingStore &) = delete;
    BackingStore &operator=(const BackingStore &) = delete;

    /** Copy @p len bytes at @p addr into @p dst. */
    void read(Addr addr, void *dst, std::uint64_t len) const;

    /** Copy @p len bytes from @p src into memory at @p addr. */
    void write(Addr addr, const void *src, std::uint64_t len);

    /** Read a little-endian 64-bit word. */
    std::uint64_t read64(Addr addr) const;

    /** Write a little-endian 64-bit word. */
    void write64(Addr addr, std::uint64_t value);

    /** Number of pages materialised so far. */
    std::size_t touchedPages() const { return _pages.size(); }

    /** Drop all contents. */
    void clear() { _pages.clear(); }

  private:
    using Page = std::array<std::uint8_t, pageBytes>;
    // mutable: reads materialise zero pages lazily.
    mutable std::unordered_map<std::uint64_t, std::unique_ptr<Page>> _pages;

    Page &pageFor(Addr addr) const;
};

} // namespace tf::mem

#endif // TF_MEM_BACKING_STORE_HH
