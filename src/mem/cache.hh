/**
 * @file
 * Set-associative cache model (tags only).
 *
 * Workload models use this to decide which accesses reach memory. The
 * paper's analysis hinges on cache behaviour: Memcached's high locality
 * keeps disaggregated latency hidden (Section VI-E), while STREAM's
 * streaming pattern defeats the cache entirely (Section VI-C). A real
 * tag array -- rather than a fixed hit ratio -- lets those behaviours
 * emerge from the access patterns.
 */

#ifndef TF_MEM_CACHE_HH
#define TF_MEM_CACHE_HH

#include <cstdint>
#include <vector>

#include "mem/addr.hh"
#include "sim/stats.hh"

namespace tf::mem {

struct CacheParams
{
    std::uint64_t sizeBytes = 10 * 1024 * 1024; // L3-slice class
    std::uint32_t ways = 8;
    std::uint32_t lineBytes = cachelineBytes;
};

/** Outcome of one cache access. */
struct CacheResult
{
    bool hit = false;
    /** A dirty line was evicted; its address (for write-back traffic). */
    bool writeback = false;
    Addr victimAddr = 0;
};

class Cache
{
  public:
    explicit Cache(CacheParams params);

    /**
     * Look up @p addr, filling on miss (write-allocate).
     * @param write marks the line dirty on hit/fill.
     */
    CacheResult access(Addr addr, bool write);

    /** Invalidate the whole cache (e.g. between benchmark phases). */
    void flush();

    std::uint64_t hits() const { return _hits.value(); }
    std::uint64_t misses() const { return _misses.value(); }
    std::uint64_t writebacks() const { return _writebacks.value(); }
    double hitRatio() const;

    std::uint32_t sets() const { return _sets; }
    const CacheParams &params() const { return _params; }

  private:
    struct Line
    {
        Addr tag = 0;
        std::uint64_t lru = 0;
        bool valid = false;
        bool dirty = false;
    };

    CacheParams _params;
    std::uint32_t _sets;
    std::vector<Line> _lines; // sets x ways, row-major
    std::uint64_t _tick = 0;  // LRU clock
    sim::Counter _hits;
    sim::Counter _misses;
    sim::Counter _writebacks;

    Line *setBase(Addr addr);
};

} // namespace tf::mem

#endif // TF_MEM_CACHE_HH
