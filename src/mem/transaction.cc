#include "mem/transaction.hh"

#include <atomic>

#include "sim/logging.hh"

namespace tf::mem {

namespace {
std::atomic<std::uint64_t> g_nextTxnId{1};
} // namespace

void
MemTxn::makeResponse()
{
    TF_ASSERT(isRequest(type), "makeResponse on a response");
    type = responseFor(type);
}

void
MemTxn::complete()
{
    if (status == TxnStatus::Pending)
        status = error ? TxnStatus::Error : TxnStatus::Ok;
    if (onComplete) {
        auto cb = std::move(onComplete);
        onComplete = nullptr;
        cb(*this);
    }
}

TxnPtr
makeTxn(TxnType type, Addr addr, std::uint32_t size)
{
    auto txn = std::make_shared<MemTxn>();
    txn->id = g_nextTxnId.fetch_add(1, std::memory_order_relaxed);
    txn->type = type;
    txn->addr = addr;
    txn->origAddr = addr;
    txn->size = size;
    return txn;
}

std::uint32_t
flitCount(const MemTxn &txn)
{
    // The LLC datapath is 32B wide; flits are 32B. A transaction is a
    // header flit plus the payload for data-bearing transactions.
    // Write requests and read responses carry the cacheline; read
    // requests and write responses are header-only.
    constexpr std::uint32_t flitBytes = 32;
    bool carries_data = txn.type == TxnType::WriteReq ||
                        txn.type == TxnType::ReadResp;
    std::uint32_t payload_flits =
        carries_data ? (txn.size + flitBytes - 1) / flitBytes : 0;
    return 1 + payload_flits;
}

} // namespace tf::mem
