#include "mem/backing_store.hh"

#include <cstring>

namespace tf::mem {

BackingStore::Page &
BackingStore::pageFor(Addr addr) const
{
    std::uint64_t idx = pageIndex(addr);
    auto it = _pages.find(idx);
    if (it == _pages.end()) {
        auto page = std::make_unique<Page>();
        page->fill(0);
        it = _pages.emplace(idx, std::move(page)).first;
    }
    return *it->second;
}

void
BackingStore::read(Addr addr, void *dst, std::uint64_t len) const
{
    auto *out = static_cast<std::uint8_t *>(dst);
    while (len > 0) {
        std::uint64_t off = addr % pageBytes;
        std::uint64_t chunk = std::min(len, pageBytes - off);
        const Page &page = pageFor(addr);
        std::memcpy(out, page.data() + off, chunk);
        addr += chunk;
        out += chunk;
        len -= chunk;
    }
}

void
BackingStore::write(Addr addr, const void *src, std::uint64_t len)
{
    const auto *in = static_cast<const std::uint8_t *>(src);
    while (len > 0) {
        std::uint64_t off = addr % pageBytes;
        std::uint64_t chunk = std::min(len, pageBytes - off);
        Page &page = pageFor(addr);
        std::memcpy(page.data() + off, in, chunk);
        addr += chunk;
        in += chunk;
        len -= chunk;
    }
}

std::uint64_t
BackingStore::read64(Addr addr) const
{
    std::uint64_t v = 0;
    read(addr, &v, sizeof(v));
    return v;
}

void
BackingStore::write64(Addr addr, std::uint64_t value)
{
    write(addr, &value, sizeof(value));
}

} // namespace tf::mem
