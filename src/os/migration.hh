/**
 * @file
 * AutoNUMA-style page migration (Section IV-B).
 *
 * The kernel optimises access to frequently used memory by reusing the
 * existing NUMA balancing machinery: hot pages resident on distant
 * (CPU-less, disaggregated) nodes are migrated towards the accessing
 * CPU's node. This model tracks per-page access counts between scans
 * and migrates the hottest remote pages, bounded per scan, when local
 * frames are available.
 */

#ifndef TF_OS_MIGRATION_HH
#define TF_OS_MIGRATION_HH

#include <unordered_map>
#include <vector>

#include "os/address_space.hh"
#include "sim/stats.hh"

namespace tf::os {

struct AutoNumaParams
{
    /** Minimum access count in a scan window to consider a page hot. */
    std::uint64_t hotThreshold = 32;
    /** Maximum pages migrated per scan (rate limiting). */
    std::size_t maxMigrationsPerScan = 64;
    /**
     * Keep this fraction of each CPU node's pages free so migration
     * never starves regular allocations.
     */
    double freeReserve = 0.05;
};

/** One executed migration (for stats and cost accounting). */
struct Migration
{
    mem::Addr vaddr;
    NodeId from;
    NodeId to;
};

class AutoNuma
{
  public:
    AutoNuma(MemoryManager &mm, AutoNumaParams params = {});

    /**
     * Record one access to the page containing @p vaddr in @p space,
     * issued from a CPU on @p cpuNode.
     */
    void recordAccess(AddressSpace &space, mem::Addr vaddr,
                      NodeId cpuNode);

    /**
     * Run one balancing scan: pick hot pages on nodes distant from
     * their accessor and migrate them closer. Access counters reset
     * afterwards (sliding window).
     * @return the migrations performed (already applied to the
     *         address spaces; callers charge the copy cost).
     */
    std::vector<Migration> scan();

    std::uint64_t migrations() const { return _migrations.value(); }
    std::uint64_t failedMigrations() const { return _failed.value(); }

  private:
    struct PageHeat
    {
        AddressSpace *space;
        mem::Addr vaddr; // page-aligned
        NodeId accessor; // last accessing CPU node
        std::uint64_t count;
    };

    MemoryManager &_mm;
    AutoNumaParams _params;
    // key: (space, vpn) folded; value: heat record.
    std::unordered_map<std::uint64_t, PageHeat> _heat;
    sim::Counter _migrations;
    sim::Counter _failed;

    std::uint64_t key(const AddressSpace &space, mem::Addr vaddr) const;
    bool nodeHasHeadroom(NodeId node) const;
};

} // namespace tf::os

#endif // TF_OS_MIGRATION_HH
