/**
 * @file
 * Per-process virtual address space (page-granular page table).
 *
 * Workload models allocate their data through an AddressSpace; the
 * backing page frames are placed by the kernel's NUMA policy and may
 * later be moved by AutoNUMA page migration without the application
 * noticing -- exactly the transparency property the paper's design
 * provides to unmodified binaries.
 */

#ifndef TF_OS_ADDRESS_SPACE_HH
#define TF_OS_ADDRESS_SPACE_HH

#include <optional>
#include <unordered_map>

#include "mem/addr.hh"
#include "os/memory_manager.hh"

namespace tf::os {

class AddressSpace
{
  public:
    AddressSpace(MemoryManager &mm, NodeId homeNode,
                 AllocPolicy policy = AllocPolicy::local());

    NodeId homeNode() const { return _homeNode; }
    /** Manager-scoped id; stable across runs, unlike `this`. */
    std::uint64_t id() const { return _id; }
    AllocPolicy &policy() { return _policy; }
    void setPolicy(AllocPolicy p) { _policy = std::move(p); }

    /**
     * Reserve @p bytes of virtual space; pages are faulted in lazily
     * on first translation. @return the virtual base address.
     */
    mem::Addr mmap(std::uint64_t bytes);

    /** Unmap and free every frame of a previous mmap. */
    void munmap(mem::Addr vbase, std::uint64_t bytes);

    /**
     * Virtual -> physical translation, faulting the page in under the
     * current policy if needed. Returns nullopt when the system is
     * out of memory under the policy. A mapping whose frame was
     * poisoned (hwpoison after a remote-memory error) is torn down and
     * re-faulted to a fresh frame, so the application transparently
     * leaves the dead memory behind — at the cost of losing the
     * page's contents, exactly like a fresh anonymous page.
     */
    std::optional<mem::Addr> translate(mem::Addr vaddr);

    /** Physical frame of a mapped virtual page (no fault-in). */
    std::optional<mem::Addr> frameOf(mem::Addr vaddr) const;

    /** NUMA node currently backing @p vaddr (faults the page in). */
    NodeId nodeOf(mem::Addr vaddr);

    /**
     * Replace the frame backing @p vaddr (page migration). The old
     * frame is freed; the page table is updated atomically.
     */
    void remap(mem::Addr vaddr, mem::Addr newFrame);

    std::uint64_t mappedPages() const { return _pageTable.size(); }
    std::uint64_t faults() const { return _faults; }
    /** Pages re-faulted away from a poisoned frame. */
    std::uint64_t refaults() const { return _refaults; }

    /** Pages resident on each node (diagnostic, O(pages)). */
    std::unordered_map<NodeId, std::uint64_t> residency() const;

  private:
    MemoryManager &_mm;
    std::uint64_t _id;
    NodeId _homeNode;
    AllocPolicy _policy;
    mem::Addr _nextVBase = 0x0000'7f00'0000'0000ULL;
    std::unordered_map<std::uint64_t, mem::Addr> _pageTable; // vpn->frame
    std::uint64_t _faults = 0;
    std::uint64_t _refaults = 0;

    std::uint64_t
    vpn(mem::Addr vaddr) const
    {
        return vaddr / _mm.pageBytes();
    }
};

} // namespace tf::os

#endif // TF_OS_ADDRESS_SPACE_HH
