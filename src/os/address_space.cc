#include "os/address_space.hh"

namespace tf::os {

AddressSpace::AddressSpace(MemoryManager &mm, NodeId homeNode,
                           AllocPolicy policy)
    : _mm(mm), _id(mm.nextSpaceId()), _homeNode(homeNode),
      _policy(std::move(policy))
{
}

mem::Addr
AddressSpace::mmap(std::uint64_t bytes)
{
    mem::Addr base = _nextVBase;
    _nextVBase += mem::alignUp(bytes, _mm.pageBytes()) +
                  _mm.pageBytes(); // guard page
    return base;
}

void
AddressSpace::munmap(mem::Addr vbase, std::uint64_t bytes)
{
    std::uint64_t first = vpn(vbase);
    std::uint64_t last = vpn(vbase + bytes - 1);
    for (std::uint64_t p = first; p <= last; ++p) {
        auto it = _pageTable.find(p);
        if (it != _pageTable.end()) {
            _mm.freePage(it->second);
            _pageTable.erase(it);
        }
    }
}

std::optional<mem::Addr>
AddressSpace::translate(mem::Addr vaddr)
{
    std::uint64_t p = vpn(vaddr);
    auto it = _pageTable.find(p);
    if (it != _pageTable.end() && _mm.isPoisoned(it->second)) {
        // The frame died under us (hwpoison). Retire the mapping —
        // freePage() drops poisoned frames instead of recycling them —
        // and fall through to a fresh fault-in.
        _mm.freePage(it->second);
        _pageTable.erase(it);
        it = _pageTable.end();
        ++_refaults;
    }
    if (it == _pageTable.end()) {
        auto frame = _mm.allocPage(_policy, _homeNode);
        if (!frame)
            return std::nullopt;
        ++_faults;
        it = _pageTable.emplace(p, *frame).first;
    }
    return it->second + (vaddr % _mm.pageBytes());
}

std::optional<mem::Addr>
AddressSpace::frameOf(mem::Addr vaddr) const
{
    auto it = _pageTable.find(vpn(vaddr));
    if (it == _pageTable.end())
        return std::nullopt;
    return it->second;
}

NodeId
AddressSpace::nodeOf(mem::Addr vaddr)
{
    auto pa = translate(vaddr);
    if (!pa)
        return invalidNode;
    return _mm.nodeOf(*pa);
}

void
AddressSpace::remap(mem::Addr vaddr, mem::Addr newFrame)
{
    auto it = _pageTable.find(vpn(vaddr));
    TF_ASSERT(it != _pageTable.end(), "remap of an unmapped page");
    _mm.freePage(it->second);
    it->second = newFrame;
}

std::unordered_map<NodeId, std::uint64_t>
AddressSpace::residency() const
{
    std::unordered_map<NodeId, std::uint64_t> out;
    for (const auto &[p, frame] : _pageTable)
        ++out[_mm.nodeOf(frame)];
    return out;
}

} // namespace tf::os
