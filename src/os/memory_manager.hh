/**
 * @file
 * Sparse-memory-model page frame allocator with memory hotplug
 * (Section IV-B).
 *
 * The kernel divides the physical address space into fixed-size
 * aligned sections, each independently handled and hot-pluggable at
 * runtime. The ThymesisFlow agent probes and onlines a section once
 * the compute endpoint has been configured for it; offline requires
 * all of the section's pages to be free (or migrated away first).
 */

#ifndef TF_OS_MEMORY_MANAGER_HH
#define TF_OS_MEMORY_MANAGER_HH

#include <deque>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "mem/addr.hh"
#include "os/numa.hh"
#include "sim/stats.hh"

namespace tf::os {

/** One hotplugged (or boot) memory section. */
struct Section
{
    mem::Addr base = 0;
    NodeId node = invalidNode;
    bool online = false;
    std::uint64_t pagesInUse = 0;
};

class MemoryManager
{
  public:
    MemoryManager(NumaTopology &topo,
                  std::uint64_t sectionBytes = mem::sectionBytes,
                  std::uint64_t pageBytes = mem::pageBytes);

    std::uint64_t sectionBytes() const { return _sectionBytes; }
    std::uint64_t pageBytes() const { return _pageBytes; }

    /**
     * Hand out a manager-scoped address-space id. Ids replace object
     * addresses wherever a space must act as a map key (AutoNUMA heat
     * tracking): pointer values depend on allocator and thread layout,
     * so hashing them leaks worker interleaving into hash-iteration
     * order and breaks --jobs determinism.
     */
    std::uint64_t nextSpaceId() { return _nextSpaceId++; }

    /**
     * Online a section at physical @p base into NUMA node @p node
     * (memory hotplug "probe + online"). Base must be section-aligned
     * and not already online.
     */
    bool onlineSection(NodeId node, mem::Addr base);

    /**
     * Offline the section at @p base. Fails when any page is in use
     * (callers migrate pages away first) unless @p force is set:
     * forced offline models surprise memory removal — the backing
     * store died, so the section disappears with its pages; later
     * freePage() calls against it are tolerated and ignored.
     */
    bool offlineSection(mem::Addr base, bool force = false);

    bool isOnline(mem::Addr base) const;

    /** Allocate one page frame under @p policy for @p homeNode. */
    std::optional<mem::Addr> allocPage(AllocPolicy &policy,
                                       NodeId homeNode);

    /** Allocate one page frame on a specific node. */
    std::optional<mem::Addr> allocPageOn(NodeId node);

    /** Return a page frame to its node's free list. */
    void freePage(mem::Addr page);

    // ------------------------- hwpoison ----------------------------

    /**
     * Mark the frame backing @p addr as poisoned (the kernel's
     * hwpoison path: the backing memory returned an unrecoverable
     * error). A poisoned frame is retired: freePage() drops it
     * instead of returning it to the free list, so it is never
     * handed out again.
     */
    void poisonPage(mem::Addr addr);

    /** Whether the frame backing @p addr is poisoned. */
    bool isPoisoned(mem::Addr addr) const;

    /** Frames currently marked poisoned (retired or still mapped). */
    std::uint64_t poisonedPages() const { return _poisoned.size(); }

    /**
     * Claim one entirely-free online section on @p node (all of its
     * pages leave the free list). Used by the memory-stealing agent,
     * which must pin physically contiguous section-sized ranges.
     * @return the section base, or nullopt if none is fully free.
     */
    std::optional<mem::Addr> claimWholeSection(NodeId node);

    /** Release a section claimed with claimWholeSection(). */
    void releaseWholeSection(mem::Addr base);

    /** NUMA node owning a physical address (invalidNode if unknown). */
    NodeId nodeOf(mem::Addr addr) const;

    std::uint64_t freePages(NodeId node) const;
    std::uint64_t totalPages(NodeId node) const;
    std::size_t onlineSections() const;

    const NumaTopology &topology() const { return _topo; }

  private:
    NumaTopology &_topo;
    std::uint64_t _sectionBytes;
    std::uint64_t _pageBytes;
    std::map<mem::Addr, Section> _sections; // by base address
    std::vector<std::deque<mem::Addr>> _freeLists; // per node
    std::vector<std::uint64_t> _totalPages;        // per node
    std::set<mem::Addr> _poisoned; // retired frames (page-aligned)
    std::uint64_t _nextSpaceId = 1;

    void ensureNode(NodeId node);
    Section *sectionOf(mem::Addr addr);
    const Section *sectionOf(mem::Addr addr) const;
};

} // namespace tf::os

#endif // TF_OS_MEMORY_MANAGER_HH
