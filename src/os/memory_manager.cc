#include "os/memory_manager.hh"

#include <algorithm>

namespace tf::os {

MemoryManager::MemoryManager(NumaTopology &topo,
                             std::uint64_t sectionBytes,
                             std::uint64_t pageBytes)
    : _topo(topo), _sectionBytes(sectionBytes), _pageBytes(pageBytes)
{
    TF_ASSERT(sectionBytes % pageBytes == 0,
              "section must be a whole number of pages");
}

void
MemoryManager::ensureNode(NodeId node)
{
    TF_ASSERT(node >= 0 &&
                  static_cast<std::size_t>(node) < _topo.nodeCount(),
              "unknown node %d", node);
    if (_freeLists.size() < _topo.nodeCount()) {
        _freeLists.resize(_topo.nodeCount());
        _totalPages.resize(_topo.nodeCount(), 0);
    }
}

Section *
MemoryManager::sectionOf(mem::Addr addr)
{
    auto it = _sections.upper_bound(addr);
    if (it == _sections.begin())
        return nullptr;
    --it;
    if (addr < it->second.base + _sectionBytes)
        return &it->second;
    return nullptr;
}

const Section *
MemoryManager::sectionOf(mem::Addr addr) const
{
    return const_cast<MemoryManager *>(this)->sectionOf(addr);
}

bool
MemoryManager::onlineSection(NodeId node, mem::Addr base)
{
    ensureNode(node);
    if (!mem::isAligned(base, _sectionBytes))
        return false;
    if (_sections.count(base) && _sections[base].online)
        return false;

    Section &s = _sections[base];
    s.base = base;
    s.node = node;
    s.online = true;
    s.pagesInUse = 0;

    std::uint64_t pages = _sectionBytes / _pageBytes;
    auto &fl = _freeLists[static_cast<std::size_t>(node)];
    for (std::uint64_t i = 0; i < pages; ++i)
        fl.push_back(base + i * _pageBytes);
    _totalPages[static_cast<std::size_t>(node)] += pages;
    return true;
}

bool
MemoryManager::offlineSection(mem::Addr base, bool force)
{
    auto it = _sections.find(base);
    if (it == _sections.end() || !it->second.online)
        return false;
    Section &s = it->second;
    if (s.pagesInUse > 0 && !force)
        return false; // pages must be migrated away first

    // Pull the section's pages out of the node free list.
    auto &fl = _freeLists[static_cast<std::size_t>(s.node)];
    std::uint64_t pages = _sectionBytes / _pageBytes;
    fl.erase(std::remove_if(fl.begin(), fl.end(),
                            [&](mem::Addr p) {
                                return p >= base &&
                                       p < base + _sectionBytes;
                            }),
             fl.end());
    _totalPages[static_cast<std::size_t>(s.node)] -= pages;
    _sections.erase(it);
    return true;
}

bool
MemoryManager::isOnline(mem::Addr base) const
{
    auto it = _sections.find(base);
    return it != _sections.end() && it->second.online;
}

std::optional<mem::Addr>
MemoryManager::allocPageOn(NodeId node)
{
    if (node < 0 ||
        static_cast<std::size_t>(node) >= _freeLists.size())
        return std::nullopt;
    auto &fl = _freeLists[static_cast<std::size_t>(node)];
    // Frames poisoned while sitting on the free list are retired on
    // the way out instead of being handed to a new mapping.
    while (!fl.empty() && _poisoned.count(fl.front()))
        fl.pop_front();
    if (fl.empty())
        return std::nullopt;
    mem::Addr page = fl.front();
    fl.pop_front();
    Section *s = sectionOf(page);
    TF_ASSERT(s != nullptr, "free page outside any section");
    ++s->pagesInUse;
    return page;
}

std::optional<mem::Addr>
MemoryManager::allocPage(AllocPolicy &policy, NodeId homeNode)
{
    switch (policy.mode) {
      case AllocPolicy::Mode::Local: {
        // Local first, then closest node with free memory.
        for (NodeId n : _topo.byDistance(homeNode)) {
            if (auto page = allocPageOn(n))
                return page;
        }
        return std::nullopt;
      }
      case AllocPolicy::Mode::Interleave: {
        TF_ASSERT(!policy.nodes.empty(), "interleave over no nodes");
        // Strict round-robin; skip exhausted nodes.
        for (std::size_t i = 0; i < policy.nodes.size(); ++i) {
            NodeId n = policy.nodes[policy.cursor %
                                    policy.nodes.size()];
            ++policy.cursor;
            if (auto page = allocPageOn(n))
                return page;
        }
        return std::nullopt;
      }
      case AllocPolicy::Mode::Preferred: {
        TF_ASSERT(!policy.nodes.empty(), "no preferred node");
        if (auto page = allocPageOn(policy.nodes.front()))
            return page;
        for (NodeId n : _topo.byDistance(policy.nodes.front())) {
            if (auto page = allocPageOn(n))
                return page;
        }
        return std::nullopt;
      }
      case AllocPolicy::Mode::Bind: {
        for (NodeId n : policy.nodes) {
            if (auto page = allocPageOn(n))
                return page;
        }
        return std::nullopt;
      }
    }
    return std::nullopt;
}

void
MemoryManager::freePage(mem::Addr page)
{
    Section *s = sectionOf(page);
    if (s == nullptr) {
        // The page's section was force-offlined (surprise removal):
        // the frame is gone, there is nothing to return.
        return;
    }
    TF_ASSERT(s->online, "freeing an unmanaged page");
    TF_ASSERT(s->pagesInUse > 0, "double free in section");
    --s->pagesInUse;
    if (_poisoned.count(page - page % _pageBytes)) {
        // hwpoison: the frame is retired, never handed out again.
        return;
    }
    _freeLists[static_cast<std::size_t>(s->node)].push_back(page);
}

void
MemoryManager::poisonPage(mem::Addr addr)
{
    _poisoned.insert(addr - addr % _pageBytes);
}

bool
MemoryManager::isPoisoned(mem::Addr addr) const
{
    return _poisoned.count(addr - addr % _pageBytes) > 0;
}

std::optional<mem::Addr>
MemoryManager::claimWholeSection(NodeId node)
{
    for (auto &[base, s] : _sections) {
        if (s.node != node || !s.online || s.pagesInUse != 0)
            continue;
        auto &fl = _freeLists[static_cast<std::size_t>(node)];
        fl.erase(std::remove_if(fl.begin(), fl.end(),
                                [&, b = base](mem::Addr p) {
                                    return p >= b &&
                                           p < b + _sectionBytes;
                                }),
                 fl.end());
        s.pagesInUse = _sectionBytes / _pageBytes;
        return base;
    }
    return std::nullopt;
}

void
MemoryManager::releaseWholeSection(mem::Addr base)
{
    auto it = _sections.find(base);
    TF_ASSERT(it != _sections.end() && it->second.online,
              "releasing an unknown section");
    Section &s = it->second;
    TF_ASSERT(s.pagesInUse == _sectionBytes / _pageBytes,
              "section was not fully claimed");
    s.pagesInUse = 0;
    auto &fl = _freeLists[static_cast<std::size_t>(s.node)];
    for (std::uint64_t i = 0; i < _sectionBytes / _pageBytes; ++i)
        fl.push_back(base + i * _pageBytes);
}

NodeId
MemoryManager::nodeOf(mem::Addr addr) const
{
    const Section *s = sectionOf(addr);
    return s ? s->node : invalidNode;
}

std::uint64_t
MemoryManager::freePages(NodeId node) const
{
    if (node < 0 ||
        static_cast<std::size_t>(node) >= _freeLists.size())
        return 0;
    return _freeLists[static_cast<std::size_t>(node)].size();
}

std::uint64_t
MemoryManager::totalPages(NodeId node) const
{
    if (node < 0 ||
        static_cast<std::size_t>(node) >= _totalPages.size())
        return 0;
    return _totalPages[static_cast<std::size_t>(node)];
}

std::size_t
MemoryManager::onlineSections() const
{
    std::size_t n = 0;
    for (const auto &[base, s] : _sections)
        n += s.online;
    return n;
}

} // namespace tf::os
