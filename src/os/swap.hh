/**
 * @file
 * Page-fault-based remote memory — the software baseline
 * (Section III, "remote memory" category: Lim et al., Infiniswap,
 * Hotpot).
 *
 * These systems over-subscribe local memory and rely on an OS trap:
 * an access to a non-resident page takes a page fault, the kernel
 * evicts a victim page (writing it back if dirty) and fetches the
 * whole page from a remote host over RDMA, then the access retries.
 * ThymesisFlow's pitch is that byte-addressable ld/st access avoids
 * the fault/trap cost, the page-granularity amplification and the
 * thrashing cliff. This model lets the benchmarks quantify exactly
 * that comparison.
 */

#ifndef TF_OS_SWAP_HH
#define TF_OS_SWAP_HH

#include <functional>
#include <list>
#include <unordered_map>

#include "mem/dram.hh"
#include "sim/sim_object.hh"

namespace tf::os {

struct SwapParams
{
    std::uint64_t pageBytes = 64 * 1024;
    /** Pages that fit in local memory. */
    std::uint64_t localPages = 1024;
    /** Remote link (RDMA-class): bandwidth and one-way latency. */
    double linkBps = 100e9 / 8;
    sim::Tick linkLatency = sim::microseconds(1.5);
    /** Trap + kernel page-fault handling CPU cost. */
    sim::Tick faultHandlingCpu = sim::microseconds(4);
};

/**
 * Local memory as a fully associative LRU cache of remote pages,
 * with a fault-driven fetch/evict path. Accesses are cacheline
 * granular like the rest of the simulator; resident accesses go to
 * local DRAM, misses pay the full page-in (and possible page-out).
 */
class SwappingMemory : public sim::SimObject
{
  public:
    SwappingMemory(std::string name, sim::EventQueue &eq,
                   SwapParams params, mem::Dram &localDram);

    /**
     * Access one cacheline at @p vaddr; @p done runs when the access
     * (including any page fault) completes.
     */
    void access(mem::Addr vaddr, bool write,
                std::function<void()> done);

    std::uint64_t minorAccesses() const { return _resident.value(); }
    std::uint64_t majorFaults() const { return _faults.value(); }
    std::uint64_t pageOuts() const { return _pageOuts.value(); }

    /** Latency distribution of faulting accesses (us). */
    const sim::SampleStat &faultLatencyUs() const { return _faultUs; }

  private:
    struct Frame
    {
        std::uint64_t vpn;
        bool dirty;
    };

    SwapParams _params;
    mem::Dram &_dram;
    std::list<Frame> _lru; // front = most recent
    std::unordered_map<std::uint64_t, std::list<Frame>::iterator>
        _residentMap;
    sim::Tick _linkNextFree = 0;
    sim::Counter _resident;
    sim::Counter _faults;
    sim::Counter _pageOuts;
    sim::SampleStat _faultUs;

    /** Queue a whole-page transfer on the link; cb at completion. */
    void pageTransfer(std::function<void()> done);
    void localAccess(mem::Addr vaddr, bool write,
                     std::function<void()> done);
};

} // namespace tf::os

#endif // TF_OS_SWAP_HH
