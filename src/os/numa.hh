/**
 * @file
 * NUMA topology with CPU-less nodes (Section IV-B).
 *
 * At hotplug time each disaggregated memory section is mapped to a
 * CPU-less NUMA node whose distance reflects the transaction RTT
 * between the compute and memory-stealing endpoints; the kernel's
 * existing NUMA policies (local, interleave, preferred) and page
 * migration then work unmodified on top.
 */

#ifndef TF_OS_NUMA_HH
#define TF_OS_NUMA_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/logging.hh"

namespace tf::os {

using NodeId = int;
constexpr NodeId invalidNode = -1;

class NumaTopology
{
  public:
    /** Create a node; returns its id (dense, starting at 0). */
    NodeId addNode(std::string name, bool hasCpu);

    std::size_t nodeCount() const { return _nodes.size(); }
    bool hasCpu(NodeId n) const { return node(n).hasCpu; }
    const std::string &name(NodeId n) const { return node(n).name; }

    /** Symmetric ACPI-SLIT-style distance (10 = local). */
    void setDistance(NodeId a, NodeId b, int distance);
    int distance(NodeId a, NodeId b) const;

    /** Nodes sorted by distance from @p from (closest first). */
    std::vector<NodeId> byDistance(NodeId from) const;

    /** All CPU-less nodes (disaggregated memory lives here). */
    std::vector<NodeId> cpulessNodes() const;

  private:
    struct Node
    {
        std::string name;
        bool hasCpu;
    };

    const Node &
    node(NodeId n) const
    {
        TF_ASSERT(n >= 0 && static_cast<std::size_t>(n) < _nodes.size(),
                  "bad node id %d", n);
        return _nodes[static_cast<std::size_t>(n)];
    }

    std::vector<Node> _nodes;
    std::vector<std::vector<int>> _dist;
};

/** Kernel page-allocation policy (mbind/set_mempolicy analogue). */
struct AllocPolicy
{
    enum class Mode {
        Local,      ///< allocate on the task's home node
        Interleave, ///< round-robin across the given nodes
        Preferred,  ///< try preferred node, fall back by distance
        Bind,       ///< only the given nodes; fail otherwise
    };

    Mode mode = Mode::Local;
    std::vector<NodeId> nodes; ///< meaning depends on mode
    std::size_t cursor = 0;    ///< interleave round-robin state

    static AllocPolicy local() { return {Mode::Local, {}, 0}; }

    static AllocPolicy
    interleave(std::vector<NodeId> ns)
    {
        return {Mode::Interleave, std::move(ns), 0};
    }

    static AllocPolicy
    preferred(NodeId n)
    {
        return {Mode::Preferred, {n}, 0};
    }

    static AllocPolicy
    bind(std::vector<NodeId> ns)
    {
        return {Mode::Bind, std::move(ns), 0};
    }
};

} // namespace tf::os

#endif // TF_OS_NUMA_HH
