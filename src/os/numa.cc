#include "os/numa.hh"

#include <algorithm>
#include <numeric>

namespace tf::os {

NodeId
NumaTopology::addNode(std::string name, bool hasCpu)
{
    NodeId id = static_cast<NodeId>(_nodes.size());
    _nodes.push_back(Node{std::move(name), hasCpu});
    for (auto &row : _dist)
        row.push_back(255);
    _dist.emplace_back(_nodes.size(), 255);
    _dist[static_cast<std::size_t>(id)][static_cast<std::size_t>(id)] =
        10;
    return id;
}

void
NumaTopology::setDistance(NodeId a, NodeId b, int distance)
{
    node(a);
    node(b);
    TF_ASSERT(distance >= 10, "NUMA distances start at 10");
    _dist[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] =
        distance;
    _dist[static_cast<std::size_t>(b)][static_cast<std::size_t>(a)] =
        distance;
}

int
NumaTopology::distance(NodeId a, NodeId b) const
{
    node(a);
    node(b);
    return _dist[static_cast<std::size_t>(a)]
                [static_cast<std::size_t>(b)];
}

std::vector<NodeId>
NumaTopology::byDistance(NodeId from) const
{
    std::vector<NodeId> ids(_nodes.size());
    std::iota(ids.begin(), ids.end(), 0);
    std::stable_sort(ids.begin(), ids.end(), [&](NodeId a, NodeId b) {
        return distance(from, a) < distance(from, b);
    });
    return ids;
}

std::vector<NodeId>
NumaTopology::cpulessNodes() const
{
    std::vector<NodeId> out;
    for (std::size_t i = 0; i < _nodes.size(); ++i)
        if (!_nodes[i].hasCpu)
            out.push_back(static_cast<NodeId>(i));
    return out;
}

} // namespace tf::os
