/**
 * @file
 * Compute-side page cache over disaggregated memory.
 *
 * A ScaleStore-style buffer manager interposed between the host bus
 * and the ThymesisFlow compute endpoint: donor pages are cached in
 * local DRAM frames so a hot working set stops paying the full wire
 * RTT on every access and remote latency becomes a hit-rate problem.
 *
 * Core pieces:
 *  - a fixed-budget frame table (frames allocated from the local
 *    NUMA node at construction) with hash-based page lookup;
 *  - clock / second-chance eviction over the frame array;
 *  - an async read buffer: misses park on the frame and the fill
 *    streams the page from the donor as a bounded-MLP sequence of
 *    cacheline reads (the LLC frames at most `frameFlits` flits per
 *    transaction, so a page can never travel as one transfer);
 *  - a write-back dirty queue with bounded in-flight flushes; a
 *    flushing frame stays in the lookup table so a re-access rescues
 *    it instead of re-fetching a page the donor has not seen yet;
 *  - a background page provider (lazily armed, like the deadline
 *    sweeper) that keeps a partitioned free list between its
 *    watermarks so misses rarely evict inline.
 *
 * Everything runs on the owning EventQueue: no wall-clock, no
 * unordered-container iteration, byte-identical stats across bench
 * --jobs sweeps. The cache exposes a fault hook (poisonCleanPage) so
 * a fault plan can hwpoison a cached frame and force a refault
 * through the miss path.
 */

#ifndef TF_OS_PAGECACHE_PAGECACHE_HH
#define TF_OS_PAGECACHE_PAGECACHE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "mem/dram.hh"
#include "mem/transaction.hh"
#include "os/memory_manager.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"

namespace tf::os {

struct PageCacheParams
{
    /** Cache page size; must match the MemoryManager's. */
    std::uint64_t pageBytes = mem::pageBytes;
    /** Local DRAM frames the cache may pin. */
    std::uint32_t frameBudget = 64;
    /** Free-list partitions (pages hash to a home partition). */
    std::uint32_t partitions = 4;
    /** Concurrent page fills (async read buffer slots). */
    std::uint32_t maxInflightFills = 4;
    /** Concurrent dirty write-backs. */
    std::uint32_t maxInflightFlushes = 2;
    /** Outstanding cacheline transfers per fill/flush stream. */
    std::uint32_t lineMlp = 8;
    /** Background page-provider wakeup period. */
    sim::Tick providerPeriod = sim::microseconds(2);
    /** Provider arms when the free list drops below this. */
    std::uint32_t lowWatermark = 4;
    /** ... and evicts until it is back up to this. */
    std::uint32_t highWatermark = 8;
    /**
     * Local-controller pressure gate: when the local DRAM's
     * estimatedLatency for one cacheline exceeds this, the provider
     * defers its eviction sweep to the next period instead of piling
     * write-back staging reads onto a stalled or deeply backlogged
     * controller (the banked estimate reflects both queue and frozen
     * bank cursors). Misses still evict inline, so a deferral never
     * wedges the cache. 0 disables the gate.
     */
    sim::Tick providerPressureLatency = sim::microseconds(2);
};

/**
 * Page-granular buffer manager caching donor memory in local DRAM.
 *
 * The cache is addressed in host-real (M1 window) coordinates: the
 * page number is txn->addr / pageBytes, and fills/flushes reconstruct
 * donor line addresses from it, so no separate window base is needed.
 * Remote traffic leaves through the RemoteIssue callback (the
 * datapath's issue()), keeping tf_os free of a tflow dependency.
 */
class PageCache : public sim::SimObject
{
  public:
    using RemoteIssue = std::function<void(mem::TxnPtr)>;

    PageCache(std::string name, sim::EventQueue &eq,
              PageCacheParams params, MemoryManager &mm,
              NodeId localNode, mem::Dram &localDram,
              RemoteIssue remote);
    ~PageCache() override;

    const PageCacheParams &params() const { return _params; }

    /**
     * Host-bus entry: service a cacheline request against the cache.
     * Hits complete after a local DRAM access; misses park until the
     * page fill lands. onComplete fires exactly once either way, with
     * txn->error set when the backing fill failed.
     */
    void access(mem::TxnPtr txn);

    /**
     * Fault hook: hwpoison the first clean resident frame in clock
     * order (an uncorrectable error in the cached copy). The page is
     * dropped from the table — since it was clean the donor still has
     * the truth and the next touch refaults through the miss path —
     * the frame is retired via MemoryManager::poisonPage, and a
     * replacement frame is allocated to keep the budget whole.
     * @return true when a frame was poisoned.
     */
    bool poisonCleanPage();

    /** Write back every dirty resident page (test/teardown aid). */
    void flushAll();

    // ------------------------- telemetry ---------------------------

    std::uint64_t hits() const { return _hits.value(); }
    std::uint64_t misses() const { return _misses.value(); }
    std::uint64_t evictions() const { return _evictions.value(); }
    std::uint64_t writebacks() const { return _writebacks.value(); }
    std::uint64_t fills() const { return _fills.value(); }
    std::uint64_t fillErrors() const { return _fillErrors.value(); }
    std::uint64_t wbErrors() const { return _wbErrors.value(); }
    std::uint64_t rescues() const { return _rescues.value(); }
    std::uint64_t poisonedFrames() const { return _poisonedFrames.value(); }
    std::uint64_t providerRuns() const { return _providerRuns.value(); }
    std::uint64_t providerDeferrals() const
    {
        return _providerDeferrals.value();
    }
    double hitRate() const { return _hitRate.mean(); }

    /** Resident (servable) pages right now. */
    std::uint32_t residentPages() const;
    /** Dirty resident pages right now. */
    std::uint32_t dirtyPages() const;
    /** Frames on the free lists right now. */
    std::uint32_t freeFrames() const;

    /** Attach cache.{hits,misses,...} + hit/miss latency sketches. */
    void attachStats(sim::StatSet &set);

  private:
    enum class FrameState : std::uint8_t {
        Free,     ///< on a free list, no page bound
        Filling,  ///< fill in flight; waiters parked on the frame
        Resident, ///< servable copy in local DRAM
        Flushing, ///< dirty write-back in flight; rescuable
        Retired,  ///< frame lost to hwpoison, no replacement left
    };

    /** One parked access waiting on a fill or flush. */
    struct Waiter
    {
        mem::TxnPtr txn;
        sim::Tick start = 0;
        sim::trace::TraceId traceId = sim::trace::noTrace;
    };

    struct Frame
    {
        mem::Addr addr = 0;      ///< local physical frame address
        std::uint64_t page = 0;  ///< cached page number (addr/pageBytes)
        FrameState state = FrameState::Free;
        bool dirty = false;
        bool referenced = false; ///< clock second-chance bit
        bool rescue = false;     ///< re-accessed while Flushing
        std::vector<Waiter> waiters;

        // Fill / flush stream bookkeeping (one stream at a time).
        std::uint32_t lineNext = 0; ///< next line index to issue
        std::uint32_t lineDone = 0; ///< line completions seen
        bool ioError = false;       ///< any line of the stream failed
        std::vector<std::uint8_t> buf; ///< page staging buffer
        sim::trace::TraceId wbTraceId = sim::trace::noTrace;
    };

    std::uint64_t pageOf(mem::Addr addr) const
    {
        return addr / _params.pageBytes;
    }
    std::uint32_t linesPerPage() const
    {
        return static_cast<std::uint32_t>(_params.pageBytes /
                                          mem::cachelineBytes);
    }
    std::uint32_t partitionOf(std::uint64_t page) const
    {
        return static_cast<std::uint32_t>(page % _params.partitions);
    }

    void serveHit(std::uint32_t idx, Waiter w, bool wasMiss);
    void pump();
    bool evictOne();
    std::int32_t allocFrame(std::uint64_t page);
    void releaseFrame(std::uint32_t idx);

    void startFill(std::uint32_t idx);
    void issueFillLine(std::uint32_t idx);
    void onFillLine(std::uint32_t idx, std::uint32_t line,
                    mem::MemTxn &t);
    void finishFill(std::uint32_t idx);

    void startFlush(std::uint32_t idx);
    void beginFlushIo(std::uint32_t idx);
    void issueFlushLine(std::uint32_t idx);
    void onFlushLine(std::uint32_t idx, mem::MemTxn &t);
    void finishFlush(std::uint32_t idx);

    void maybeArmProvider();
    void providerTick();
    bool hasEvictable() const;

    PageCacheParams _params;
    MemoryManager &_mm;
    NodeId _localNode;
    mem::Dram &_dram;
    RemoteIssue _remote;

    std::vector<Frame> _frames;
    /** page -> frame index; Filling/Resident/Flushing entries only.
     *  Never iterated, so the unordered map stays deterministic. */
    std::unordered_map<std::uint64_t, std::uint32_t> _table;
    /** Misses still waiting for a frame: page -> parked accesses. */
    std::unordered_map<std::uint64_t, std::vector<Waiter>> _pending;
    /** FIFO of pages in _pending, in first-miss order. */
    std::deque<std::uint64_t> _backlog;
    /** Partitioned free lists of frame indices. */
    std::vector<std::deque<std::uint32_t>> _free;
    /** Dirty victims waiting for a write-back slot. */
    std::deque<std::uint32_t> _flushQueue;

    std::uint32_t _clockHand = 0;
    std::uint32_t _activeFills = 0;
    std::uint32_t _activeFlushes = 0;
    std::uint32_t _freeCount = 0;
    bool _providerArmed = false;

    sim::Counter _hits;
    sim::Counter _misses;
    sim::Counter _evictions;
    sim::Counter _writebacks;
    sim::Counter _fills;
    sim::Counter _fillErrors;
    sim::Counter _wbErrors;
    sim::Counter _rescues;
    sim::Counter _poisonedFrames;
    sim::Counter _providerRuns;
    sim::Counter _providerDeferrals;
    sim::Summary _hitRate;
    sim::QuantileSketch _hitNs;
    sim::QuantileSketch _missNs;
};

} // namespace tf::os

#endif // TF_OS_PAGECACHE_PAGECACHE_HH
