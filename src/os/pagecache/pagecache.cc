#include "os/pagecache/pagecache.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"

namespace tf::os {

using sim::trace::Stage;

PageCache::PageCache(std::string name, sim::EventQueue &eq,
                     PageCacheParams params, MemoryManager &mm,
                     NodeId localNode, mem::Dram &localDram,
                     RemoteIssue remote)
    : SimObject(std::move(name), eq), _params(params), _mm(mm),
      _localNode(localNode), _dram(localDram),
      _remote(std::move(remote))
{
    TF_ASSERT(_params.pageBytes == _mm.pageBytes(),
              "cache page size must match the memory manager's");
    TF_ASSERT(_params.pageBytes % mem::cachelineBytes == 0,
              "page size must be a whole number of cachelines");
    TF_ASSERT(_params.frameBudget >= 2, "cache needs >= 2 frames");
    TF_ASSERT(_params.partitions >= 1, "cache needs >= 1 partition");
    TF_ASSERT(_params.lineMlp >= 1, "cache needs >= 1 line in flight");
    TF_ASSERT(_params.maxInflightFills >= 1, "cache needs a fill slot");
    TF_ASSERT(_params.maxInflightFlushes >= 1,
              "cache needs a flush slot");
    TF_ASSERT(_params.highWatermark >= _params.lowWatermark,
              "cache watermarks inverted");

    _frames.resize(_params.frameBudget);
    _free.resize(_params.partitions);
    for (std::uint32_t i = 0; i < _params.frameBudget; ++i) {
        auto frame = _mm.allocPageOn(_localNode);
        TF_ASSERT(frame.has_value(),
                  "local node cannot back the cache frame budget");
        _frames[i].addr = *frame;
        _free[i % _params.partitions].push_back(i);
        ++_freeCount;
    }
}

PageCache::~PageCache()
{
    for (Frame &f : _frames) {
        if (f.state != FrameState::Retired)
            _mm.freePage(f.addr);
    }
}

void
PageCache::access(mem::TxnPtr txn)
{
    TF_ASSERT(mem::isRequest(txn->type), "cache takes requests");
    std::uint64_t page = pageOf(txn->addr);
    TF_ASSERT(pageOf(txn->addr + txn->size - 1) == page,
              "cache access must not straddle a page");

    Waiter w;
    w.start = now();
    w.traceId = eventQueue().trace().newTrace();
    w.txn = std::move(txn);

    auto it = _table.find(page);
    if (it != _table.end()) {
        std::uint32_t idx = it->second;
        Frame &f = _frames[idx];
        switch (f.state) {
          case FrameState::Resident:
            _hits.inc();
            _hitRate.add(1.0);
            eventQueue().trace().begin(now(), w.traceId,
                                       Stage::CacheHit);
            serveHit(idx, std::move(w), false);
            return;
          case FrameState::Flushing:
            // The donor has not seen the write-back yet, so the local
            // copy is the only correct source: rescue the frame and
            // replay once the flush settles.
            _hits.inc();
            _rescues.inc();
            _hitRate.add(1.0);
            eventQueue().trace().begin(now(), w.traceId,
                                       Stage::CacheHit);
            f.rescue = true;
            f.waiters.push_back(std::move(w));
            return;
          case FrameState::Filling:
            _misses.inc();
            _hitRate.add(0.0);
            eventQueue().trace().begin(now(), w.traceId,
                                       Stage::CacheMiss);
            f.waiters.push_back(std::move(w));
            return;
          default:
            TF_ASSERT(false, "page table holds a %d-state frame",
                      static_cast<int>(f.state));
        }
    }

    _misses.inc();
    _hitRate.add(0.0);
    eventQueue().trace().begin(now(), w.traceId, Stage::CacheMiss);
    auto pit = _pending.find(page);
    if (pit == _pending.end()) {
        _pending[page].push_back(std::move(w));
        _backlog.push_back(page);
    } else {
        pit->second.push_back(std::move(w));
    }
    pump();
}

void
PageCache::serveHit(std::uint32_t idx, Waiter w, bool wasMiss)
{
    Frame &f = _frames[idx];
    TF_ASSERT(f.state == FrameState::Resident,
              "serveHit on a non-resident frame");
    f.referenced = true;
    if (w.txn->type == mem::TxnType::WriteReq)
        f.dirty = true;
    std::uint64_t off = w.txn->addr % _params.pageBytes;
    w.txn->addr = f.addr + off;
    sim::Tick start = w.start;
    sim::trace::TraceId id = w.traceId;
    _dram.access(std::move(w.txn),
                 [this, start, id, wasMiss](mem::TxnPtr t) {
                     double ns = static_cast<double>(now() - start);
                     (wasMiss ? _missNs : _hitNs).add(ns);
                     eventQueue().trace().end(
                         now(), id,
                         wasMiss ? Stage::CacheMiss : Stage::CacheHit);
                     t->complete();
                 });
}

void
PageCache::pump()
{
    // Queued write-backs first: they are the only path that turns a
    // Flushing frame back into a free one.
    while (!_flushQueue.empty() &&
           _activeFlushes < _params.maxInflightFlushes) {
        std::uint32_t idx = _flushQueue.front();
        _flushQueue.pop_front();
        beginFlushIo(idx);
    }

    while (!_backlog.empty() &&
           _activeFills < _params.maxInflightFills) {
        std::uint64_t page = _backlog.front();
        std::int32_t idx = allocFrame(page);
        if (idx < 0) {
            if (!evictOne())
                break; // nothing evictable; IO completions re-pump
            continue;
        }
        _backlog.pop_front();
        Frame &f = _frames[static_cast<std::uint32_t>(idx)];
        f.page = page;
        f.state = FrameState::Filling;
        f.dirty = false;
        f.referenced = false;
        f.rescue = false;
        auto pit = _pending.find(page);
        TF_ASSERT(pit != _pending.end(),
                  "backlog page with no parked waiters");
        f.waiters = std::move(pit->second);
        _pending.erase(pit);
        _table.emplace(page, static_cast<std::uint32_t>(idx));
        startFill(static_cast<std::uint32_t>(idx));
    }
    maybeArmProvider();
}

std::int32_t
PageCache::allocFrame(std::uint64_t page)
{
    std::uint32_t home = partitionOf(page);
    for (std::uint32_t n = 0; n < _params.partitions; ++n) {
        std::uint32_t p = (home + n) % _params.partitions;
        if (_free[p].empty())
            continue;
        std::uint32_t idx = _free[p].front();
        _free[p].pop_front();
        --_freeCount;
        TF_ASSERT(_frames[idx].state == FrameState::Free,
                  "free list holds a busy frame");
        return static_cast<std::int32_t>(idx);
    }
    return -1;
}

void
PageCache::releaseFrame(std::uint32_t idx)
{
    Frame &f = _frames[idx];
    f.state = FrameState::Free;
    f.dirty = false;
    f.referenced = false;
    f.rescue = false;
    f.waiters.clear();
    f.buf.clear();
    f.buf.shrink_to_fit();
    _free[idx % _params.partitions].push_back(idx);
    ++_freeCount;
}

bool
PageCache::evictOne()
{
    // Two clock laps: the first may only clear reference bits.
    std::uint32_t budget = _params.frameBudget * 2;
    for (std::uint32_t n = 0; n < budget; ++n) {
        std::uint32_t idx = _clockHand;
        _clockHand = (_clockHand + 1) % _params.frameBudget;
        Frame &f = _frames[idx];
        if (f.state != FrameState::Resident)
            continue;
        if (f.referenced) {
            f.referenced = false; // second chance
            continue;
        }
        _evictions.inc();
        if (f.dirty) {
            // The frame frees when the write-back lands; keep
            // scanning for a clean victim to free right now.
            startFlush(idx);
            continue;
        }
        _table.erase(f.page);
        releaseFrame(idx);
        return true;
    }
    return false;
}

// --------------------------- fill path ----------------------------

void
PageCache::startFill(std::uint32_t idx)
{
    Frame &f = _frames[idx];
    TF_ASSERT(f.state == FrameState::Filling, "startFill state");
    ++_activeFills;
    f.ioError = false;
    f.lineNext = 0;
    f.lineDone = 0;
    f.buf.assign(_params.pageBytes, 0);
    for (std::uint32_t i = 0;
         i < _params.lineMlp && f.lineNext < linesPerPage(); ++i)
        issueFillLine(idx);
}

void
PageCache::issueFillLine(std::uint32_t idx)
{
    Frame &f = _frames[idx];
    std::uint32_t line = f.lineNext++;
    mem::Addr addr = f.page * _params.pageBytes +
                     static_cast<mem::Addr>(line) * mem::cachelineBytes;
    auto rd = mem::makeTxn(mem::TxnType::ReadReq, addr,
                           mem::cachelineBytes);
    rd->onComplete = [this, idx, line](mem::MemTxn &t) {
        onFillLine(idx, line, t);
    };
    _remote(std::move(rd));
}

void
PageCache::onFillLine(std::uint32_t idx, std::uint32_t line,
                      mem::MemTxn &t)
{
    Frame &f = _frames[idx];
    TF_ASSERT(f.state == FrameState::Filling,
              "fill line landed on a non-filling frame");
    if (t.status != mem::TxnStatus::Ok || t.error) {
        f.ioError = true;
    } else {
        TF_ASSERT(t.data.size() >= mem::cachelineBytes,
                  "fill response short of a cacheline");
        std::copy_n(t.data.begin(), mem::cachelineBytes,
                    f.buf.begin() +
                        static_cast<std::size_t>(line) *
                            mem::cachelineBytes);
    }
    ++f.lineDone;
    if (!f.ioError && f.lineNext < linesPerPage())
        issueFillLine(idx); // keep the MLP window full
    else if (f.lineDone == f.lineNext)
        finishFill(idx);
}

void
PageCache::finishFill(std::uint32_t idx)
{
    Frame &f = _frames[idx];
    TF_ASSERT(_activeFills > 0, "fill accounting underflow");
    --_activeFills;

    if (f.ioError) {
        // The fill died (dead path, deadline): error-complete every
        // parked access so requester-side recovery (hwpoison of the
        // window frame) proceeds exactly as without a cache.
        _fillErrors.inc();
        auto ws = std::move(f.waiters);
        _table.erase(f.page);
        releaseFrame(idx);
        for (Waiter &w : ws) {
            w.txn->error = true;
            _missNs.add(static_cast<double>(now() - w.start));
            eventQueue().trace().end(now(), w.traceId,
                                     Stage::CacheMiss);
            w.txn->complete();
        }
        pump();
        return;
    }

    // Install the assembled page into the frame through the DRAM
    // model (pays local latency + serialisation), then replay the
    // parked accesses against the resident copy.
    auto wr = mem::makeTxn(
        mem::TxnType::WriteReq, f.addr,
        static_cast<std::uint32_t>(_params.pageBytes));
    wr->data = std::move(f.buf);
    f.buf.clear();
    _dram.access(std::move(wr), [this, idx](mem::TxnPtr) {
        Frame &fr = _frames[idx];
        TF_ASSERT(fr.state == FrameState::Filling,
                  "install landed on a non-filling frame");
        fr.state = FrameState::Resident;
        fr.referenced = true;
        fr.dirty = false;
        _fills.inc();
        auto ws = std::move(fr.waiters);
        fr.waiters.clear();
        for (Waiter &w : ws)
            serveHit(idx, std::move(w), true);
        pump();
    });
}

// -------------------------- flush path ----------------------------

void
PageCache::startFlush(std::uint32_t idx)
{
    Frame &f = _frames[idx];
    TF_ASSERT(f.state == FrameState::Resident && f.dirty,
              "startFlush wants a dirty resident frame");
    f.state = FrameState::Flushing;
    f.rescue = false;
    if (_activeFlushes < _params.maxInflightFlushes)
        beginFlushIo(idx);
    else
        _flushQueue.push_back(idx);
}

void
PageCache::beginFlushIo(std::uint32_t idx)
{
    Frame &f = _frames[idx];
    TF_ASSERT(f.state == FrameState::Flushing, "beginFlushIo state");
    ++_activeFlushes;
    f.ioError = false;
    f.lineNext = 0;
    f.lineDone = 0;
    f.wbTraceId = eventQueue().trace().newTrace();
    eventQueue().trace().begin(now(), f.wbTraceId, Stage::CacheWb);
    // Snapshot the page from local DRAM first. Re-accesses arriving
    // during the flush park until it settles, so the snapshot cannot
    // be overtaken by a local write.
    auto rd = mem::makeTxn(
        mem::TxnType::ReadReq, f.addr,
        static_cast<std::uint32_t>(_params.pageBytes));
    _dram.access(std::move(rd), [this, idx](mem::TxnPtr t) {
        Frame &fr = _frames[idx];
        TF_ASSERT(fr.state == FrameState::Flushing,
                  "flush snapshot on a non-flushing frame");
        fr.buf = std::move(t->data);
        for (std::uint32_t i = 0;
             i < _params.lineMlp && fr.lineNext < linesPerPage(); ++i)
            issueFlushLine(idx);
    });
}

void
PageCache::issueFlushLine(std::uint32_t idx)
{
    Frame &f = _frames[idx];
    std::uint32_t line = f.lineNext++;
    mem::Addr addr = f.page * _params.pageBytes +
                     static_cast<mem::Addr>(line) * mem::cachelineBytes;
    auto wr = mem::makeTxn(mem::TxnType::WriteReq, addr,
                           mem::cachelineBytes);
    auto first = f.buf.begin() +
                 static_cast<std::size_t>(line) * mem::cachelineBytes;
    wr->data.assign(first, first + mem::cachelineBytes);
    wr->onComplete = [this, idx](mem::MemTxn &t) {
        onFlushLine(idx, t);
    };
    _remote(std::move(wr));
}

void
PageCache::onFlushLine(std::uint32_t idx, mem::MemTxn &t)
{
    Frame &f = _frames[idx];
    TF_ASSERT(f.state == FrameState::Flushing,
              "flush line landed on a non-flushing frame");
    if (t.status != mem::TxnStatus::Ok || t.error)
        f.ioError = true;
    ++f.lineDone;
    if (!f.ioError && f.lineNext < linesPerPage())
        issueFlushLine(idx);
    else if (f.lineDone == f.lineNext)
        finishFlush(idx);
}

void
PageCache::finishFlush(std::uint32_t idx)
{
    Frame &f = _frames[idx];
    TF_ASSERT(_activeFlushes > 0, "flush accounting underflow");
    --_activeFlushes;
    eventQueue().trace().end(now(), f.wbTraceId, Stage::CacheWb);
    f.wbTraceId = sim::trace::noTrace;
    f.buf.clear();

    if (f.ioError) {
        // The donor may hold a torn page: keep the local copy
        // resident and dirty so a later eviction retries.
        _wbErrors.inc();
        f.state = FrameState::Resident;
        f.dirty = true;
        f.referenced = true;
    } else {
        _writebacks.inc();
        if (f.rescue) {
            f.state = FrameState::Resident;
            f.dirty = false;
            f.referenced = true;
        } else {
            TF_ASSERT(f.waiters.empty(),
                      "unrescued flush with parked waiters");
            _table.erase(f.page);
            releaseFrame(idx);
        }
    }
    f.rescue = false;
    if (f.state == FrameState::Resident && !f.waiters.empty()) {
        auto ws = std::move(f.waiters);
        f.waiters.clear();
        for (Waiter &w : ws)
            serveHit(idx, std::move(w), false);
    }
    pump();
}

// ------------------------- page provider --------------------------

void
PageCache::maybeArmProvider()
{
    if (_providerArmed || _freeCount >= _params.lowWatermark ||
        !hasEvictable())
        return;
    _providerArmed = true;
    after(_params.providerPeriod, [this] { providerTick(); });
}

void
PageCache::providerTick()
{
    _providerArmed = false;
    if (_params.providerPressureLatency > 0 &&
        _dram.estimatedLatency(mem::cachelineBytes) >
            _params.providerPressureLatency) {
        // The local controller is stalled or deeply backlogged (the
        // banked estimate covers frozen bank cursors and queued
        // bytes alike): eviction write-backs would stage their dirty
        // lines into that backlog. Defer the sweep a period; misses
        // still evict inline, so nothing can wedge on this.
        _providerDeferrals.inc();
        _providerArmed = true;
        after(_params.providerPeriod, [this] { providerTick(); });
        return;
    }
    _providerRuns.inc();
    while (_freeCount < _params.highWatermark) {
        if (!evictOne())
            break;
    }
    pump(); // re-arms through maybeArmProvider when still low
}

bool
PageCache::hasEvictable() const
{
    for (const Frame &f : _frames) {
        if (f.state == FrameState::Resident)
            return true;
    }
    return false;
}

// ------------------------------ misc ------------------------------

bool
PageCache::poisonCleanPage()
{
    for (std::uint32_t n = 0; n < _params.frameBudget; ++n) {
        std::uint32_t idx = (_clockHand + n) % _params.frameBudget;
        Frame &f = _frames[idx];
        if (f.state != FrameState::Resident || f.dirty)
            continue;
        TF_ASSERT(f.waiters.empty(), "resident frame with waiters");
        _poisonedFrames.inc();
        _table.erase(f.page);
        // Retire the frame through the kernel hwpoison path; the
        // page was clean so the donor still holds the truth and the
        // next touch refaults through the miss path.
        _mm.poisonPage(f.addr);
        _mm.freePage(f.addr);
        if (auto repl = _mm.allocPageOn(_localNode)) {
            f.addr = *repl;
            releaseFrame(idx);
            pump();
        } else {
            f.state = FrameState::Retired;
        }
        return true;
    }
    return false;
}

void
PageCache::flushAll()
{
    for (std::uint32_t idx = 0; idx < _params.frameBudget; ++idx) {
        Frame &f = _frames[idx];
        if (f.state == FrameState::Resident && f.dirty) {
            startFlush(idx);
            f.rescue = true; // write back but stay resident
        }
    }
}

std::uint32_t
PageCache::residentPages() const
{
    std::uint32_t n = 0;
    for (const Frame &f : _frames)
        n += f.state == FrameState::Resident ? 1 : 0;
    return n;
}

std::uint32_t
PageCache::dirtyPages() const
{
    std::uint32_t n = 0;
    for (const Frame &f : _frames) {
        n += (f.state == FrameState::Resident && f.dirty) ? 1 : 0;
    }
    return n;
}

std::uint32_t
PageCache::freeFrames() const
{
    return _freeCount;
}

void
PageCache::attachStats(sim::StatSet &set)
{
    set.attach("hits", _hits, "accesses",
               "served from a resident local frame");
    set.attach("misses", _misses, "accesses",
               "parked on a remote page fill");
    set.attach("evictions", _evictions, "pages",
               "clock victims (clean frees + flush starts)");
    set.attach("writebacks", _writebacks, "pages",
               "dirty pages flushed to the donor");
    set.attach("fills", _fills, "pages",
               "pages streamed in from the donor");
    set.attach("fillErrors", _fillErrors, "pages",
               "fills that error-completed their waiters");
    set.attach("wbErrors", _wbErrors, "pages",
               "write-backs kept dirty after a line error");
    set.attach("rescues", _rescues, "accesses",
               "hits on a frame mid write-back");
    set.attach("poisonedFrames", _poisonedFrames, "frames",
               "frames retired by injected hwpoison");
    set.attach("providerRuns", _providerRuns, "runs",
               "background page-provider wakeups");
    set.attach("providerDeferrals", _providerDeferrals, "runs",
               "sweeps deferred on local-controller pressure");
    set.attach("hitRate", _hitRate, "ratio",
               "1 per hit, 0 per miss; mean is the hit rate");
    set.attach("hitNs", _hitNs, "ns",
               "access-to-completion latency, hit path");
    set.attach("missNs", _missNs, "ns",
               "access-to-completion latency, miss path");
}

} // namespace tf::os
