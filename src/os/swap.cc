#include "os/swap.hh"

#include <algorithm>

namespace tf::os {

SwappingMemory::SwappingMemory(std::string name, sim::EventQueue &eq,
                               SwapParams params, mem::Dram &localDram)
    : SimObject(std::move(name), eq), _params(params), _dram(localDram)
{
    TF_ASSERT(_params.localPages > 0, "swap cache needs local pages");
}

void
SwappingMemory::pageTransfer(std::function<void()> done)
{
    double secs =
        static_cast<double>(_params.pageBytes) / _params.linkBps;
    sim::Tick ser = sim::seconds(secs);
    sim::Tick start = std::max(now(), _linkNextFree);
    _linkNextFree = start + ser;
    sim::Tick deliver = start + ser + _params.linkLatency;
    after(deliver - now(), std::move(done));
}

void
SwappingMemory::localAccess(mem::Addr vaddr, bool write,
                            std::function<void()> done)
{
    auto txn = mem::makeTxn(write ? mem::TxnType::WriteReq
                                  : mem::TxnType::ReadReq,
                            vaddr);
    if (write)
        txn->data.assign(mem::cachelineBytes, 0);
    _dram.access(std::move(txn),
                 [done = std::move(done)](mem::TxnPtr) { done(); });
}

void
SwappingMemory::access(mem::Addr vaddr, bool write,
                       std::function<void()> done)
{
    std::uint64_t vpn = vaddr / _params.pageBytes;
    auto it = _residentMap.find(vpn);
    if (it != _residentMap.end()) {
        // Minor path: refresh LRU, access local memory.
        _resident.inc();
        it->second->dirty = it->second->dirty || write;
        _lru.splice(_lru.begin(), _lru, it->second);
        localAccess(vaddr, write, std::move(done));
        return;
    }

    // Major fault: trap, (possibly) evict, fetch, retry.
    _faults.inc();
    sim::Tick start = now();

    bool evict_dirty = false;
    if (_lru.size() >= _params.localPages) {
        Frame victim = _lru.back();
        _lru.pop_back();
        _residentMap.erase(victim.vpn);
        evict_dirty = victim.dirty;
        if (evict_dirty)
            _pageOuts.inc();
    }
    _lru.push_front(Frame{vpn, write});
    _residentMap[vpn] = _lru.begin();

    auto finish = [this, vaddr, write, start,
                   done = std::move(done)]() mutable {
        localAccess(vaddr, write,
                    [this, start, done = std::move(done)]() {
                        _faultUs.add(sim::toUs(now() - start));
                        done();
                    });
    };

    after(_params.faultHandlingCpu,
          [this, evict_dirty, finish = std::move(finish)]() mutable {
              if (evict_dirty) {
                  // Page-out then page-in, serialised on the link.
                  pageTransfer([this,
                                finish = std::move(finish)]() mutable {
                      pageTransfer(std::move(finish));
                  });
              } else {
                  pageTransfer(std::move(finish));
              }
          });
}

} // namespace tf::os
