#include "os/migration.hh"

#include <algorithm>

namespace tf::os {

AutoNuma::AutoNuma(MemoryManager &mm, AutoNumaParams params)
    : _mm(mm), _params(params)
{
}

std::uint64_t
AutoNuma::key(const AddressSpace &space, mem::Addr vaddr) const
{
    auto sp = reinterpret_cast<std::uintptr_t>(&space);
    std::uint64_t vpn = vaddr / _mm.pageBytes();
    return (static_cast<std::uint64_t>(sp) * 0x9e3779b97f4a7c15ULL) ^
           vpn;
}

void
AutoNuma::recordAccess(AddressSpace &space, mem::Addr vaddr,
                       NodeId cpuNode)
{
    mem::Addr page_va = mem::alignDown(vaddr, _mm.pageBytes());
    auto &h = _heat[key(space, page_va)];
    if (h.count == 0) {
        h.space = &space;
        h.vaddr = page_va;
    }
    h.accessor = cpuNode;
    ++h.count;
}

bool
AutoNuma::nodeHasHeadroom(NodeId node) const
{
    std::uint64_t total = _mm.totalPages(node);
    if (total == 0)
        return false;
    double free_frac = static_cast<double>(_mm.freePages(node)) /
                       static_cast<double>(total);
    return free_frac > _params.freeReserve;
}

std::vector<Migration>
AutoNuma::scan()
{
    // Collect hot pages living further from their accessor than the
    // accessor's own node.
    std::vector<PageHeat *> candidates;
    for (auto &[k, h] : _heat) {
        if (h.count < _params.hotThreshold)
            continue;
        NodeId cur = h.space->nodeOf(h.vaddr);
        if (cur == invalidNode || h.accessor == invalidNode)
            continue;
        if (_mm.topology().distance(h.accessor, cur) >
            _mm.topology().distance(h.accessor, h.accessor))
            candidates.push_back(&h);
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const PageHeat *a, const PageHeat *b) {
                  return a->count > b->count;
              });

    std::vector<Migration> done;
    for (PageHeat *h : candidates) {
        if (done.size() >= _params.maxMigrationsPerScan)
            break;
        NodeId target = h->accessor;
        if (!nodeHasHeadroom(target)) {
            _failed.inc();
            continue;
        }
        auto frame = _mm.allocPageOn(target);
        if (!frame) {
            _failed.inc();
            continue;
        }
        NodeId from = h->space->nodeOf(h->vaddr);
        h->space->remap(h->vaddr, *frame);
        _migrations.inc();
        done.push_back(Migration{h->vaddr, from, target});
    }

    _heat.clear(); // sliding window: fresh counts each scan
    return done;
}

} // namespace tf::os
