#include "os/migration.hh"

#include <algorithm>

namespace tf::os {

AutoNuma::AutoNuma(MemoryManager &mm, AutoNumaParams params)
    : _mm(mm), _params(params)
{
}

std::uint64_t
AutoNuma::key(const AddressSpace &space, mem::Addr vaddr) const
{
    // Keyed by the manager-scoped space id, never the object address:
    // pointer values vary with allocator/thread layout, and the hash
    // iteration order of _heat feeds candidate collection, so an
    // address-derived key would leak --jobs worker interleaving into
    // migration order (and, with a banked DRAM, into timing).
    std::uint64_t vpn = vaddr / _mm.pageBytes();
    return (space.id() * 0x9e3779b97f4a7c15ULL) ^ vpn;
}

void
AutoNuma::recordAccess(AddressSpace &space, mem::Addr vaddr,
                       NodeId cpuNode)
{
    mem::Addr page_va = mem::alignDown(vaddr, _mm.pageBytes());
    auto &h = _heat[key(space, page_va)];
    if (h.count == 0) {
        h.space = &space;
        h.vaddr = page_va;
    }
    h.accessor = cpuNode;
    ++h.count;
}

bool
AutoNuma::nodeHasHeadroom(NodeId node) const
{
    std::uint64_t total = _mm.totalPages(node);
    if (total == 0)
        return false;
    double free_frac = static_cast<double>(_mm.freePages(node)) /
                       static_cast<double>(total);
    return free_frac > _params.freeReserve;
}

std::vector<Migration>
AutoNuma::scan()
{
    // Collect hot pages living further from their accessor than the
    // accessor's own node.
    std::vector<PageHeat *> candidates;
    for (auto &[k, h] : _heat) {
        if (h.count < _params.hotThreshold)
            continue;
        NodeId cur = h.space->nodeOf(h.vaddr);
        if (cur == invalidNode || h.accessor == invalidNode)
            continue;
        if (_mm.topology().distance(h.accessor, cur) >
            _mm.topology().distance(h.accessor, h.accessor))
            candidates.push_back(&h);
    }
    // Full ordering (ties broken by space id, then address): equal
    // heat counts are common under skewed workloads, and the frame a
    // page receives from allocPageOn depends on its position here.
    std::sort(candidates.begin(), candidates.end(),
              [](const PageHeat *a, const PageHeat *b) {
                  if (a->count != b->count)
                      return a->count > b->count;
                  if (a->space->id() != b->space->id())
                      return a->space->id() < b->space->id();
                  return a->vaddr < b->vaddr;
              });

    std::vector<Migration> done;
    for (PageHeat *h : candidates) {
        if (done.size() >= _params.maxMigrationsPerScan)
            break;
        NodeId target = h->accessor;
        if (!nodeHasHeadroom(target)) {
            _failed.inc();
            continue;
        }
        auto frame = _mm.allocPageOn(target);
        if (!frame) {
            _failed.inc();
            continue;
        }
        NodeId from = h->space->nodeOf(h->vaddr);
        h->space->remap(h->vaddr, *frame);
        _migrations.inc();
        done.push_back(Migration{h->vaddr, from, target});
    }

    _heat.clear(); // sliding window: fresh counts each scan
    return done;
}

} // namespace tf::os
