#include "topo/json.hh"

#include <cctype>
#include <cstdlib>

namespace tf::topo::json {

const Value *
Value::find(const std::string &key) const
{
    if (!isObject())
        return nullptr;
    for (const auto &kv : *_members)
        if (kv.first == key)
            return &kv.second;
    return nullptr;
}

Value
Value::makeNull(std::string where)
{
    Value v;
    v._type = Type::Null;
    v._where = std::move(where);
    return v;
}

Value
Value::makeBool(bool b, std::string where)
{
    Value v;
    v._type = Type::Bool;
    v._bool = b;
    v._where = std::move(where);
    return v;
}

Value
Value::makeNumber(double n, std::string where)
{
    Value v;
    v._type = Type::Number;
    v._number = n;
    v._where = std::move(where);
    return v;
}

Value
Value::makeString(std::string s, std::string where)
{
    Value v;
    v._type = Type::String;
    v._string = std::move(s);
    v._where = std::move(where);
    return v;
}

Value
Value::makeArray(std::vector<Value> items, std::string where)
{
    Value v;
    v._type = Type::Array;
    v._items = std::make_shared<std::vector<Value>>(std::move(items));
    v._where = std::move(where);
    return v;
}

Value
Value::makeObject(Members members, std::string where)
{
    Value v;
    v._type = Type::Object;
    v._members = std::make_shared<Members>(std::move(members));
    v._where = std::move(where);
    return v;
}

namespace {

class Parser
{
  public:
    Parser(const std::string &text, const std::string &origin)
        : _text(text), _origin(origin)
    {
    }

    Value document()
    {
        skipWs();
        Value v = value();
        skipWs();
        if (_pos != _text.size())
            fail("trailing content after JSON document");
        return v;
    }

  private:
    const std::string &_text;
    const std::string &_origin;
    std::size_t _pos = 0;
    std::size_t _line = 1;
    std::size_t _col = 1;

    [[noreturn]] void fail(const std::string &msg) const
    {
        throw SpecError(where() + ": " + msg);
    }

    std::string where() const
    {
        return _origin + ":" + std::to_string(_line) + ":" +
               std::to_string(_col);
    }

    bool atEnd() const { return _pos >= _text.size(); }

    char peek() const
    {
        if (atEnd())
            fail("unexpected end of input");
        return _text[_pos];
    }

    char advance()
    {
        char c = peek();
        ++_pos;
        if (c == '\n') {
            ++_line;
            _col = 1;
        } else {
            ++_col;
        }
        return c;
    }

    void expect(char c)
    {
        if (atEnd() || peek() != c)
            fail(std::string("expected '") + c + "'");
        advance();
    }

    void skipWs()
    {
        while (!atEnd()) {
            char c = _text[_pos];
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
                advance();
            } else if (c == '/' && _pos + 1 < _text.size() &&
                       _text[_pos + 1] == '/') {
                // Line comments: configs deserve annotations.
                while (!atEnd() && _text[_pos] != '\n')
                    advance();
            } else {
                break;
            }
        }
    }

    Value value()
    {
        switch (peek()) {
          case '{':
            return object();
          case '[':
            return array();
          case '"':
            return Value::makeString(string(), where());
          case 't':
          case 'f':
            return boolean();
          case 'n':
            return null();
          default:
            return number();
        }
    }

    Value object()
    {
        std::string loc = where();
        expect('{');
        Members members;
        skipWs();
        if (!atEnd() && peek() == '}') {
            advance();
            return Value::makeObject(std::move(members), loc);
        }
        while (true) {
            skipWs();
            if (peek() != '"')
                fail("expected object key string");
            std::string key = string();
            for (const auto &kv : members)
                if (kv.first == key)
                    fail("duplicate key \"" + key + "\"");
            skipWs();
            expect(':');
            skipWs();
            members.emplace_back(std::move(key), value());
            skipWs();
            if (peek() == ',') {
                advance();
                continue;
            }
            expect('}');
            return Value::makeObject(std::move(members), loc);
        }
    }

    Value array()
    {
        std::string loc = where();
        expect('[');
        std::vector<Value> items;
        skipWs();
        if (!atEnd() && peek() == ']') {
            advance();
            return Value::makeArray(std::move(items), loc);
        }
        while (true) {
            skipWs();
            items.push_back(value());
            skipWs();
            if (peek() == ',') {
                advance();
                continue;
            }
            expect(']');
            return Value::makeArray(std::move(items), loc);
        }
    }

    std::string string()
    {
        expect('"');
        std::string out;
        while (true) {
            char c = advance();
            if (c == '"')
                return out;
            if (c == '\n')
                fail("unterminated string");
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            char esc = advance();
            switch (esc) {
              case '"':  out.push_back('"');  break;
              case '\\': out.push_back('\\'); break;
              case '/':  out.push_back('/');  break;
              case 'n':  out.push_back('\n'); break;
              case 't':  out.push_back('\t'); break;
              case 'r':  out.push_back('\r'); break;
              case 'b':  out.push_back('\b'); break;
              case 'f':  out.push_back('\f'); break;
              default:
                fail(std::string("unsupported escape '\\") + esc +
                     "'");
            }
        }
    }

    Value boolean()
    {
        std::string loc = where();
        if (_text.compare(_pos, 4, "true") == 0) {
            for (int i = 0; i < 4; ++i)
                advance();
            return Value::makeBool(true, loc);
        }
        if (_text.compare(_pos, 5, "false") == 0) {
            for (int i = 0; i < 5; ++i)
                advance();
            return Value::makeBool(false, loc);
        }
        fail("expected 'true' or 'false'");
    }

    Value null()
    {
        std::string loc = where();
        if (_text.compare(_pos, 4, "null") != 0)
            fail("expected 'null'");
        for (int i = 0; i < 4; ++i)
            advance();
        return Value::makeNull(loc);
    }

    Value number()
    {
        std::string loc = where();
        std::size_t start = _pos;
        if (!atEnd() && (peek() == '-' || peek() == '+'))
            advance();
        bool sawDigit = false;
        while (!atEnd()) {
            char c = _text[_pos];
            if (std::isdigit(static_cast<unsigned char>(c))) {
                sawDigit = true;
                advance();
            } else if (c == '.' || c == 'e' || c == 'E' || c == '-' ||
                       c == '+') {
                advance();
            } else {
                break;
            }
        }
        if (!sawDigit)
            fail("expected a value");
        std::string lexeme = _text.substr(start, _pos - start);
        char *end = nullptr;
        double n = std::strtod(lexeme.c_str(), &end);
        if (end == nullptr || *end != '\0')
            fail("malformed number \"" + lexeme + "\"");
        return Value::makeNumber(n, loc);
    }
};

} // namespace

Value
parse(const std::string &text, const std::string &origin)
{
    return Parser(text, origin).document();
}

} // namespace tf::topo::json
