#include "topo/spec.hh"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <deque>
#include <fstream>
#include <initializer_list>
#include <map>
#include <set>
#include <sstream>

namespace tf::topo {

const NodeSpec *
Spec::node(const std::string &name) const
{
    for (const NodeSpec &n : nodes)
        if (n.name == name)
            return &n;
    return nullptr;
}

namespace {

using json::Value;

[[noreturn]] void
fail(const Value &v, const std::string &msg)
{
    throw SpecError(v.where() + ": " + msg);
}

/** Reject typo'd keys: every stanza lists what it accepts. */
void
checkKeys(const Value &obj,
          std::initializer_list<const char *> allowed)
{
    for (const auto &kv : obj.members()) {
        bool ok = false;
        for (const char *k : allowed)
            if (kv.first == k)
                ok = true;
        if (!ok)
            fail(kv.second, "unknown key \"" + kv.first + "\"");
    }
}

const Value &
require(const Value &obj, const std::string &key)
{
    const Value *v = obj.find(key);
    if (v == nullptr)
        fail(obj, "missing required key \"" + key + "\"");
    return *v;
}

std::string
str(const Value &v, const std::string &what)
{
    if (!v.isString())
        fail(v, what + " must be a string");
    return v.str();
}

double
num(const Value &v, const std::string &what)
{
    if (!v.isNumber())
        fail(v, what + " must be a number");
    return v.number();
}

double
numOr(const Value &obj, const std::string &key, double dflt)
{
    const Value *v = obj.find(key);
    return v == nullptr ? dflt : num(*v, "\"" + key + "\"");
}

std::uint64_t
uintOr(const Value &obj, const std::string &key, std::uint64_t dflt)
{
    const Value *v = obj.find(key);
    if (v == nullptr)
        return dflt;
    double n = num(*v, "\"" + key + "\"");
    if (n < 0 || n != std::floor(n))
        fail(*v, "\"" + key + "\" must be a non-negative integer");
    return static_cast<std::uint64_t>(n);
}

bool
boolOr(const Value &obj, const std::string &key, bool dflt)
{
    const Value *v = obj.find(key);
    if (v == nullptr)
        return dflt;
    if (!v->isBool())
        fail(*v, "\"" + key + "\" must be true or false");
    return v->boolean();
}

std::string
strOr(const Value &obj, const std::string &key,
      const std::string &dflt)
{
    const Value *v = obj.find(key);
    return v == nullptr ? dflt : str(*v, "\"" + key + "\"");
}

/** Element names become stat paths and LP names: keep them tame. */
void
checkIdent(const Value &v, const std::string &name,
           const std::string &what)
{
    if (name.empty())
        fail(v, what + " name must not be empty");
    for (char c : name) {
        bool ok = std::isalnum(static_cast<unsigned char>(c)) ||
                  c == '_' || c == '-';
        if (!ok)
            fail(v, what + " name \"" + name +
                        "\" may only contain [A-Za-z0-9_-]");
    }
}

const Value &
arrayOf(const Value &root, const std::string &key, bool required)
{
    static const Value empty =
        Value::makeArray({}, std::string("<builtin>"));
    const Value *v = root.find(key);
    if (v == nullptr) {
        if (required)
            fail(root, "missing required key \"" + key + "\"");
        return empty;
    }
    if (!v->isArray())
        fail(*v, "\"" + key + "\" must be an array");
    return *v;
}

DramSpec
parseDram(const Value &v)
{
    if (!v.isObject())
        fail(v, "\"dram\" must be an object");
    checkKeys(v, {"accessNs", "gbps", "banks"});
    DramSpec d;
    d.accessNs = numOr(v, "accessNs", d.accessNs);
    d.gbps = numOr(v, "gbps", d.gbps);
    d.banks = static_cast<std::uint32_t>(uintOr(v, "banks", d.banks));
    if (d.accessNs <= 0)
        fail(v, "dram accessNs must be positive");
    if (d.gbps <= 0)
        fail(v, "dram gbps must be positive");
    if (d.banks < 1)
        fail(v, "dram banks must be >= 1");
    return d;
}

PageCacheSpec
parseCache(const Value &v)
{
    if (!v.isObject())
        fail(v, "\"cache\" must be an object");
    checkKeys(v, {"enabled", "frameBudget", "lineMlp", "lowWatermark",
                  "highWatermark"});
    PageCacheSpec c;
    c.enabled = boolOr(v, "enabled", true);
    c.frameBudget = static_cast<std::uint32_t>(
        uintOr(v, "frameBudget", c.frameBudget));
    c.lineMlp =
        static_cast<std::uint32_t>(uintOr(v, "lineMlp", c.lineMlp));
    c.lowWatermark = static_cast<std::uint32_t>(
        uintOr(v, "lowWatermark", c.lowWatermark));
    c.highWatermark = static_cast<std::uint32_t>(
        uintOr(v, "highWatermark", c.highWatermark));
    if (c.frameBudget < 1)
        fail(v, "cache frameBudget must be >= 1");
    if (c.lineMlp < 1)
        fail(v, "cache lineMlp must be >= 1");
    if (c.lowWatermark > c.highWatermark)
        fail(v, "cache lowWatermark must not exceed highWatermark");
    return c;
}

const std::set<std::string> kFaultKinds = {
    "channelFail", "channelFlap", "burstLoss",     "latencySpike",
    "dramStall",   "creditStarve", "controlOutage", "cachePoison",
};

} // namespace

Spec
parseSpec(const std::string &text, const std::string &origin)
{
    Value root = json::parse(text, origin);
    if (!root.isObject())
        fail(root, "topology file must be a JSON object");
    checkKeys(root, {"name", "nodes", "switches", "links", "traffic",
                     "faults", "monitors", "timelineUs"});

    Spec spec;
    spec.name = str(require(root, "name"), "\"name\"");
    checkIdent(require(root, "name"), spec.name, "topology");

    // --- nodes -------------------------------------------------------
    std::set<std::string> elementNames; // nodes + switches share it
    for (const Value &nv : arrayOf(root, "nodes", true).items()) {
        if (!nv.isObject())
            fail(nv, "node entry must be an object");
        checkKeys(nv, {"name", "role", "donor", "channels",
                       "donatedMiB", "dram", "cache"});
        NodeSpec n;
        n.name = str(require(nv, "name"), "node \"name\"");
        checkIdent(require(nv, "name"), n.name, "node");
        if (!elementNames.insert(n.name).second)
            fail(nv, "duplicate name \"" + n.name + "\"");
        n.role = strOr(nv, "role", n.role);
        if (n.role != "host" && n.role != "donor")
            fail(nv, "node \"" + n.name + "\" role must be \"host\" "
                     "or \"donor\", got \"" + n.role + "\"");
        n.donor = strOr(nv, "donor", "");
        if (!n.donor.empty() && n.role != "host")
            fail(nv, "node \"" + n.name +
                         "\": only hosts can claim a donor");
        n.channels = static_cast<std::uint32_t>(
            uintOr(nv, "channels", n.channels));
        if (n.channels < 1 || n.channels > 8)
            fail(nv, "node \"" + n.name +
                         "\" channels must be in [1, 8]");
        n.donatedMiB = uintOr(nv, "donatedMiB", n.donatedMiB);
        if (n.role == "donor" && n.donatedMiB < 1)
            fail(nv, "donor \"" + n.name +
                         "\" donatedMiB must be >= 1");
        if (const Value *dv = nv.find("dram"))
            n.dram = parseDram(*dv);
        if (const Value *cv = nv.find("cache")) {
            n.cache = parseCache(*cv);
            if (n.cache.enabled && n.role != "host")
                fail(*cv, "node \"" + n.name +
                              "\": only hosts mount a page cache");
        }
        spec.nodes.push_back(std::move(n));
    }
    if (spec.nodes.empty())
        fail(root, "topology needs at least one node");

    // Donor references: must exist, be donor-role, claimed once.
    std::set<std::string> claimedDonors;
    for (const Value &nv : arrayOf(root, "nodes", true).items()) {
        const std::string name = str(require(nv, "name"), "name");
        const NodeSpec &n = *spec.node(name);
        if (n.donor.empty())
            continue;
        const NodeSpec *donor = spec.node(n.donor);
        if (donor == nullptr)
            fail(nv, "node \"" + n.name +
                         "\" references unknown node \"" + n.donor +
                         "\"");
        if (donor->role != "donor")
            fail(nv, "node \"" + n.name + "\" claims \"" + n.donor +
                         "\", whose role is \"" + donor->role +
                         "\", not \"donor\"");
        if (!claimedDonors.insert(n.donor).second)
            fail(nv, "donor \"" + n.donor +
                         "\" is claimed by more than one host");
    }

    // --- switches ----------------------------------------------------
    for (const Value &sv : arrayOf(root, "switches", false).items()) {
        if (!sv.isObject())
            fail(sv, "switch entry must be an object");
        checkKeys(sv, {"name", "crossingNs", "radix"});
        SwitchSpec s;
        s.name = str(require(sv, "name"), "switch \"name\"");
        checkIdent(require(sv, "name"), s.name, "switch");
        if (!elementNames.insert(s.name).second)
            fail(sv, "duplicate name \"" + s.name + "\"");
        s.crossingNs = numOr(sv, "crossingNs", s.crossingNs);
        if (s.crossingNs < 0)
            fail(sv, "switch \"" + s.name +
                         "\" crossingNs must not be negative");
        s.radix =
            static_cast<std::uint32_t>(uintOr(sv, "radix", s.radix));
        if (s.radix < 2)
            fail(sv, "switch \"" + s.name + "\" radix must be >= 2");
        spec.switches.push_back(std::move(s));
    }

    // --- links -------------------------------------------------------
    std::set<std::string> linkPairs;
    std::map<std::string, std::uint32_t> ports;
    for (const Value &lv : arrayOf(root, "links", false).items()) {
        if (!lv.isObject())
            fail(lv, "link entry must be an object");
        checkKeys(lv, {"a", "b", "gbps", "latencyNs"});
        LinkSpec l;
        l.a = str(require(lv, "a"), "link \"a\"");
        l.b = str(require(lv, "b"), "link \"b\"");
        for (const std::string &end : {l.a, l.b})
            if (elementNames.count(end) == 0)
                fail(lv, "link references unknown node \"" + end +
                             "\"");
        if (l.a == l.b)
            fail(lv, "link endpoints must differ (self-link on \"" +
                         l.a + "\")");
        std::string key = std::min(l.a, l.b) + "<->" +
                          std::max(l.a, l.b);
        if (!linkPairs.insert(key).second)
            fail(lv, "duplicate link " + key);
        l.gbps = numOr(lv, "gbps", l.gbps);
        if (l.gbps <= 0)
            fail(lv, "link " + key + " gbps must be positive");
        l.latencyNs = numOr(lv, "latencyNs", l.latencyNs);
        if (l.latencyNs <= 0)
            fail(lv, "link " + key +
                         " latencyNs must be positive — zero-latency "
                         "links break the parallel engine's "
                         "conservative lookahead");
        ports[l.a]++;
        ports[l.b]++;
        spec.links.push_back(std::move(l));
    }
    for (const SwitchSpec &s : spec.switches) {
        auto it = ports.find(s.name);
        std::uint32_t used = it == ports.end() ? 0 : it->second;
        if (used > s.radix)
            fail(root, "switch \"" + s.name + "\" has " +
                           std::to_string(used) +
                           " links but radix " +
                           std::to_string(s.radix));
    }

    // Reachability over the undirected element graph, for traffic
    // validation below.
    std::map<std::string, std::vector<std::string>> adj;
    for (const LinkSpec &l : spec.links) {
        adj[l.a].push_back(l.b);
        adj[l.b].push_back(l.a);
    }
    auto reachable = [&adj](const std::string &from,
                            const std::string &to) {
        std::set<std::string> seen{from};
        std::deque<std::string> frontier{from};
        while (!frontier.empty()) {
            std::string cur = frontier.front();
            frontier.pop_front();
            if (cur == to)
                return true;
            auto it = adj.find(cur);
            if (it == adj.end())
                continue;
            for (const std::string &nb : it->second)
                if (seen.insert(nb).second)
                    frontier.push_back(nb);
        }
        return false;
    };

    // --- traffic -----------------------------------------------------
    std::set<std::string> trafficNames;
    for (const Value &tv : arrayOf(root, "traffic", false).items()) {
        if (!tv.isObject())
            fail(tv, "traffic entry must be an object");
        checkKeys(tv, {"name", "kind", "src", "dst", "requestBytes",
                       "responseBytes", "accessBytes", "policy",
                       "window", "ops", "smokeOps", "startUs"});
        TrafficSpec t;
        t.name = str(require(tv, "name"), "traffic \"name\"");
        checkIdent(require(tv, "name"), t.name, "traffic");
        if (!trafficNames.insert(t.name).second)
            fail(tv, "duplicate traffic name \"" + t.name + "\"");
        t.kind = strOr(tv, "kind", t.kind);
        if (t.kind != "rpc" && t.kind != "memory")
            fail(tv, "traffic \"" + t.name +
                         "\" kind must be \"rpc\" or \"memory\"");
        t.src = str(require(tv, "src"), "traffic \"src\"");
        if (spec.node(t.src) == nullptr)
            fail(tv, "traffic \"" + t.name +
                         "\" references unknown node \"" + t.src +
                         "\"");
        t.requestBytes = uintOr(tv, "requestBytes", t.requestBytes);
        t.responseBytes = uintOr(tv, "responseBytes", t.responseBytes);
        t.accessBytes = uintOr(tv, "accessBytes", t.accessBytes);
        t.window = static_cast<std::uint32_t>(
            uintOr(tv, "window", t.window));
        t.ops = uintOr(tv, "ops", t.ops);
        t.smokeOps = uintOr(tv, "smokeOps", t.smokeOps);
        t.startUs = numOr(tv, "startUs", t.startUs);
        if (t.window < 1)
            fail(tv, "traffic \"" + t.name + "\" window must be >= 1");
        if (t.ops < 1)
            fail(tv, "traffic \"" + t.name + "\" ops must be >= 1");
        if (t.startUs < 0)
            fail(tv, "traffic \"" + t.name +
                         "\" startUs must not be negative");
        if (t.kind == "rpc") {
            t.dst = str(require(tv, "dst"), "traffic \"dst\"");
            if (spec.node(t.dst) == nullptr)
                fail(tv, "traffic \"" + t.name +
                             "\" references unknown node \"" + t.dst +
                             "\"");
            if (t.dst == t.src)
                fail(tv, "traffic \"" + t.name +
                             "\" src and dst must differ");
            if (t.requestBytes < 1 || t.responseBytes < 1)
                fail(tv, "traffic \"" + t.name +
                             "\" request/responseBytes must be >= 1");
            if (!reachable(t.src, t.dst))
                fail(tv, "traffic \"" + t.name + "\": endpoint \"" +
                             t.dst + "\" is unreachable from \"" +
                             t.src + "\" over the declared links");
        } else {
            if (tv.find("dst") != nullptr)
                fail(tv, "traffic \"" + t.name +
                             "\": memory traffic has no \"dst\" — "
                             "the donated window is the target");
            t.policy = strOr(tv, "policy", t.policy);
            if (t.policy != "remote" && t.policy != "local" &&
                t.policy != "interleave")
                fail(tv, "traffic \"" + t.name +
                             "\" policy must be \"remote\", "
                             "\"local\", or \"interleave\"");
            if (t.accessBytes < 1)
                fail(tv, "traffic \"" + t.name +
                             "\" accessBytes must be >= 1");
            const NodeSpec &srcNode = *spec.node(t.src);
            if (srcNode.role != "host")
                fail(tv, "traffic \"" + t.name + "\" src \"" + t.src +
                             "\" must be a host");
            if (t.policy != "local" && srcNode.donor.empty())
                fail(tv, "traffic \"" + t.name + "\": host \"" +
                             t.src + "\" has no donor, so policy \"" +
                             t.policy + "\" has no remote window");
        }
        spec.traffic.push_back(std::move(t));
    }

    // --- faults ------------------------------------------------------
    for (const Value &fv : arrayOf(root, "faults", false).items()) {
        if (!fv.isObject())
            fail(fv, "fault entry must be an object");
        checkKeys(fv, {"kind", "point", "atUs", "forUs", "extraNs"});
        FaultSpec f;
        f.kind = str(require(fv, "kind"), "fault \"kind\"");
        if (kFaultKinds.count(f.kind) == 0) {
            std::string known;
            for (const std::string &k : kFaultKinds)
                known += (known.empty() ? "" : ", ") + k;
            fail(fv, "unknown fault kind \"" + f.kind +
                         "\" (known: " + known + ")");
        }
        f.point = str(require(fv, "point"), "fault \"point\"");
        f.atUs = numOr(fv, "atUs", f.atUs);
        f.forUs = numOr(fv, "forUs", f.forUs);
        f.extraNs = numOr(fv, "extraNs", f.extraNs);
        if (f.atUs < 0)
            fail(fv, "fault atUs must not be negative");
        if (f.forUs < 0)
            fail(fv, "fault forUs must not be negative");
        if (f.extraNs < 0)
            fail(fv, "fault extraNs must not be negative");
        spec.faults.push_back(std::move(f));
    }

    // --- timeline + monitors -----------------------------------------
    spec.timelineUs = numOr(root, "timelineUs", spec.timelineUs);
    if (spec.timelineUs <= 0)
        fail(root, "timelineUs must be positive");
    std::set<std::string> monitorNames;
    for (const Value &mv : arrayOf(root, "monitors", false).items()) {
        if (!mv.isObject())
            fail(mv, "monitor entry must be an object");
        checkKeys(mv, {"name", "metric", "op", "threshold",
                       "forWindows", "fromUs", "untilUs", "dumpFlight"});
        MonitorSpec m;
        m.name = str(require(mv, "name"), "monitor \"name\"");
        checkIdent(require(mv, "name"), m.name, "monitor");
        if (!monitorNames.insert(m.name).second)
            fail(mv, "duplicate monitor name \"" + m.name + "\"");
        m.metric = str(require(mv, "metric"), "monitor \"metric\"");
        if (m.metric.empty())
            fail(mv, "monitor \"" + m.name +
                         "\" metric must not be empty");
        m.op = strOr(mv, "op", m.op);
        if (m.op != ">" && m.op != "<" && m.op != ">=" && m.op != "<=")
            fail(mv, "monitor \"" + m.name + "\" op must be one of "
                     "\">\", \"<\", \">=\", \"<=\", got \"" + m.op +
                         "\"");
        m.threshold = num(require(mv, "threshold"),
                          "monitor \"threshold\"");
        m.forWindows = uintOr(mv, "forWindows", m.forWindows);
        if (m.forWindows < 1)
            fail(mv, "monitor \"" + m.name +
                         "\" forWindows must be >= 1");
        m.fromUs = numOr(mv, "fromUs", m.fromUs);
        if (m.fromUs < 0)
            fail(mv, "monitor \"" + m.name +
                         "\" fromUs must not be negative");
        m.untilUs = numOr(mv, "untilUs", m.untilUs);
        if (mv.find("untilUs") != nullptr && m.untilUs <= m.fromUs)
            fail(mv, "monitor \"" + m.name +
                         "\" untilUs must exceed fromUs");
        m.dumpFlight = boolOr(mv, "dumpFlight", m.dumpFlight);
        m.where = mv.where();
        spec.monitors.push_back(std::move(m));
    }

    return spec;
}

Spec
loadSpecFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw SpecError(path + ": cannot open topology file");
    std::ostringstream buf;
    buf << in.rdbuf();
    return parseSpec(buf.str(), path);
}

} // namespace tf::topo
