/**
 * @file
 * Declarative topology & scenario description.
 *
 * A topology file is one JSON object describing a rack: nodes (hosts
 * and memory donors with per-node DRAM and page-cache config),
 * switches, links, traffic stanzas (closed-loop RPC or memory
 * workloads), and a fault schedule. parseSpec() turns the text into
 * a fully validated topo::Spec — every cross-reference resolved,
 * every unit range-checked — so the builder (builder.hh) can
 * instantiate it without further error handling, and a bad config is
 * a crisp SpecError naming file:line:col, never a TF_ASSERT deep in
 * a run.
 *
 * Schema (all latencies/durations in the unit the key names):
 *
 *   {
 *     "name": "ring",
 *     "nodes": [
 *       {"name": "h0", "role": "host", "donor": "d0",
 *        "channels": 2, "dram": {"accessNs": 90, "gbps": 110,
 *        "banks": 16}, "cache": {"enabled": true, "frameBudget": 64}},
 *       {"name": "d0", "role": "donor", "donatedMiB": 64}
 *     ],
 *     "switches": [{"name": "s0", "crossingNs": 50, "radix": 16}],
 *     "links": [{"a": "h0", "b": "s0", "gbps": 100,
 *                "latencyNs": 500}],
 *     "traffic": [
 *       {"name": "vic", "kind": "rpc", "src": "h0", "dst": "h1",
 *        "requestBytes": 128, "responseBytes": 4096, "window": 4,
 *        "ops": 2000, "smokeOps": 200, "startUs": 0},
 *       {"name": "mem", "kind": "memory", "src": "h0",
 *        "policy": "remote", "accessBytes": 128, "ops": 4000}
 *     ],
 *     "faults": [{"kind": "latencySpike", "point": "fabric.h0->s0",
 *                 "atUs": 50, "forUs": 20, "extraNs": 2000}],
 *     "timelineUs": 50,
 *     "monitors": [
 *       {"name": "vic_tail", "metric": "vic.latP99Us", "op": ">",
 *        "threshold": 30, "forWindows": 2, "fromUs": 500,
 *        "dumpFlight": false}
 *     ]
 *   }
 */

#ifndef TF_TOPO_SPEC_HH
#define TF_TOPO_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "topo/json.hh"

namespace tf::topo {

struct DramSpec
{
    double accessNs = 90.0;
    double gbps = 110.0; ///< gigaBYTES per second (DRAM convention)
    std::uint32_t banks = 16;
};

struct PageCacheSpec
{
    bool enabled = false;
    std::uint32_t frameBudget = 64;
    std::uint32_t lineMlp = 8;
    std::uint32_t lowWatermark = 4;
    std::uint32_t highWatermark = 8;
};

struct NodeSpec
{
    std::string name;
    /** "host" issues traffic; "donor" lends memory to its host. */
    std::string role = "host";
    /** Donor node claimed by this host ("" = none). */
    std::string donor;
    /** Bonded ThymesisFlow channels to the donor. */
    std::uint32_t channels = 1;
    /** Memory a donor lends (donor role only). */
    std::uint64_t donatedMiB = 64;
    DramSpec dram;
    PageCacheSpec cache;
};

struct SwitchSpec
{
    std::string name;
    double crossingNs = 50.0;
    std::uint32_t radix = 16;
};

struct LinkSpec
{
    std::string a;
    std::string b;
    double gbps = 100.0; ///< gigaBITS per second (network convention)
    double latencyNs = 500.0;
};

struct TrafficSpec
{
    std::string name;
    /** "rpc" = request/response over the fabric; "memory" = loads
     * and stores through the node's memory path. */
    std::string kind = "rpc";
    std::string src;
    std::string dst; ///< rpc only
    std::uint64_t requestBytes = 128;
    std::uint64_t responseBytes = 4096;
    std::uint64_t accessBytes = 128;
    /** memory only: "remote" (donated window), "local", or
     * "interleave" (alternate between the two). */
    std::string policy = "remote";
    std::uint32_t window = 4;
    std::uint64_t ops = 2000;
    /** Override for --smoke runs; 0 = ops / 10 (min 1). */
    std::uint64_t smokeOps = 0;
    double startUs = 0.0;
};

/**
 * Declarative SLO rule from the "monitors" stanza, bound at build
 * time to the timeline series named by @p metric (the builder
 * rejects unknown metrics with a file:line:col SpecError listing
 * what exists). Evaluated by the in-sim watchdog as timeline
 * windows close; results land under "slo.<name>.*".
 */
struct MonitorSpec
{
    std::string name;
    /** Timeline series, e.g. "vic.latP99Us" or
     * "fabric.s0->s1.queueDepth". */
    std::string metric;
    /** ">", "<", ">=" or "<=". */
    std::string op = ">";
    double threshold = 0.0;
    /** Consecutive bad windows before violations count. */
    std::uint64_t forWindows = 1;
    double fromUs = 0.0;
    /** < 0 = end of run. */
    double untilUs = -1.0;
    bool dumpFlight = false;
    /** file:line:col of the stanza, for build-time diagnostics. */
    std::string where;
};

struct FaultSpec
{
    /** fault kind name: channelFail, channelFlap, burstLoss,
     * latencySpike, dramStall, creditStarve, controlOutage,
     * cachePoison. */
    std::string kind;
    std::string point;
    double atUs = 0.0;
    double forUs = 0.0;
    double extraNs = 0.0;
};

struct Spec
{
    std::string name;
    std::vector<NodeSpec> nodes;
    std::vector<SwitchSpec> switches;
    std::vector<LinkSpec> links;
    std::vector<TrafficSpec> traffic;
    std::vector<FaultSpec> faults;
    std::vector<MonitorSpec> monitors;
    /** Timeline window width; the default applies when monitors are
     * declared (or the harness enables the timeline) without an
     * explicit "timelineUs". */
    double timelineUs = 50.0;

    const NodeSpec *node(const std::string &name) const;
};

/** Parse + validate; @p origin names the source for errors. */
Spec parseSpec(const std::string &text, const std::string &origin);

/** Read @p path and parseSpec() it. */
Spec loadSpecFile(const std::string &path);

} // namespace tf::topo

#endif // TF_TOPO_SPEC_HH
