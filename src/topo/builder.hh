/**
 * @file
 * Topology instantiation: Spec -> running simulation.
 *
 * An Instance turns a validated topo::Spec into the same wiring the
 * hand-written rigs use — sys::Node per node, flow::Datapath +
 * ctrl::ControlPlane per host/donor pair (replicating
 * Testbed::composeDisaggregated), optional page cache, a net::Fabric
 * over the declared switches and links, per-LP fault registries with
 * the scheduled FaultSpecs armed, and closed-loop traffic runners —
 * partitioned onto a sim::par::ParallelEngine so `--jobs N` stays
 * bit-identical to serial.
 *
 * Partitioning: each host (together with its claimed donor) is one
 * LP, each unclaimed donor one LP, each switch one LP. Fabric links
 * live on their source element's LP and cross partitions through
 * engine channels with the link's wire latency as lookahead.
 *
 * Everything that can go wrong from a config file throws SpecError
 * at build time (unknown fault point, compose failure); TF_ASSERT is
 * reserved for internal invariants.
 */

#ifndef TF_TOPO_BUILDER_HH
#define TF_TOPO_BUILDER_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ctrl/control_plane.hh"
#include "net/switch.hh"
#include "sim/fault/fault.hh"
#include "sim/parallel/engine.hh"
#include "sim/timeline/timeline.hh"
#include "system/node.hh"
#include "topo/spec.hh"

namespace tf::topo {

struct BuildOptions
{
    std::uint64_t seed = 42;
    unsigned jobs = 1;
    /** Scale traffic to each stanza's smokeOps. */
    bool smoke = false;
    /** Response-framing override (bench --cut-through). */
    std::optional<bool> cutThrough;
    /**
     * Timeline window width override (bench --timeline-window), in
     * microseconds. 0 keeps the spec's choice: the timeline is on
     * whenever the spec declares monitors (width = spec.timelineUs)
     * and off otherwise.
     */
    double timelineUs = 0.0;
    /** Directory for SLO dumpFlight breach dumps ("" = cwd). */
    std::string dumpDir;
};

class Instance
{
  public:
    Instance(const Spec &spec, BuildOptions opt);
    ~Instance();

    Instance(const Instance &) = delete;
    Instance &operator=(const Instance &) = delete;

    const Spec &spec() const { return _spec; }

    /** Start every traffic runner and drain the engine. */
    std::uint64_t run();

    std::size_t lpCount() const { return _engine->lpCount(); }
    sim::par::LogicalProcess &lp(std::size_t i)
    {
        return _engine->lp(i);
    }

    net::Fabric &fabric() { return *_fabric; }

    /** Per-traffic-stanza outcome, in spec order. */
    struct TrafficStats
    {
        std::string name;
        std::uint64_t target = 0;  ///< ops requested
        sim::Counter completed;    ///< ops finished
        sim::SampleStat latUs;     ///< per-op latency, microseconds
        /** Same latencies, sketched — feeds the per-window p50/p95/
         * p99 timeline series ("<name>.latP99Us"). */
        sim::QuantileSketch latSketch;
        sim::Tick lastDone = 0; ///< completion time of the last op
    };

    std::size_t trafficCount() const { return _runners.size(); }
    const TrafficStats &traffic(std::size_t i) const;

    /** Fault events fired, summed over the per-LP engines. */
    std::uint64_t faultsFired() const;

    /** Simulated span: latest traffic completion across stanzas. */
    sim::Tick lastCompletion() const;

    /** Is the windowed timeline recording this instance? */
    bool timelineEnabled() const { return !_recorders.empty(); }

    /**
     * The merged timeline (empty until run() finishes). Valid for
     * the Instance's lifetime; the bench harness adopts a copy.
     */
    const sim::timeline::Timeline &timeline() const { return _timeline; }

    /** Watchdog outcomes, one per monitors stanza (post-run). */
    const std::vector<sim::timeline::SloResult> &sloResults() const
    {
        return _timeline.slo();
    }

    /**
     * Register the whole instance under @p reg:
     *   <host>.tflow[...] / <host>.ctrl / <host>.cache
     *   <node>.dram           every node's memory controller
     *   fabric.*              per-link + per-switch counters
     *   traffic.<name>        completed ops per stanza
     *   fault.<lp>            per-LP fault engine counters
     *   sim.par[...]          engine + per-LP kernels
     */
    void registerStats(sim::StatsRegistry &reg);

  private:
    struct Group;
    struct Runner;

    const Spec _spec;
    BuildOptions _opt;
    std::unique_ptr<sim::par::ParallelEngine> _engine;
    std::vector<std::unique_ptr<Group>> _groups;
    std::unique_ptr<net::Fabric> _fabric;
    std::vector<std::unique_ptr<Runner>> _runners;
    /** Per-LP fault plumbing, index = LP id. */
    std::vector<std::unique_ptr<sim::fault::Registry>> _faultRegs;
    std::vector<std::unique_ptr<sim::fault::Engine>> _faultEngines;
    /** Per-LP timeline recorders, index = LP id; empty = disabled. */
    std::vector<std::unique_ptr<sim::timeline::Recorder>> _recorders;
    sim::timeline::Timeline _timeline;
    bool _harvested = false;

    Group *group(const std::string &nodeName);
    sys::Node *nodeOf(const std::string &nodeName);
    void buildGroups();
    void buildFabric();
    void buildFaults();
    void buildTraffic();
    void buildTimeline();
    void harvestTimeline();
    void startRpc(Runner &r);
    void startMemory(Runner &r);
    void rpcOp(Runner &r);
    void memoryOp(Runner &r);
};

} // namespace tf::topo

#endif // TF_TOPO_BUILDER_HH
