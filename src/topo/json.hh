/**
 * @file
 * Minimal JSON reader for topology files.
 *
 * A recursive-descent parser producing a small Value tree; object
 * members preserve file order so validation errors can point at the
 * first offending stanza. Errors throw topo::SpecError with the
 * originating file plus line:column, which is the contract the
 * topology layer exposes: a malformed config is a parse error at
 * load time, never a TF_ASSERT at runtime.
 *
 * Deliberately small: no escapes beyond the JSON standard set, no
 * \uXXXX surrogate pairs (configs are ASCII), numbers as double.
 */

#ifndef TF_TOPO_JSON_HH
#define TF_TOPO_JSON_HH

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace tf::topo {

/** Any topology-file problem: syntax, schema, or semantic. */
class SpecError : public std::runtime_error
{
  public:
    explicit SpecError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

namespace json {

class Value;

/** Object members in file order (duplicate keys rejected at parse). */
using Members = std::vector<std::pair<std::string, Value>>;

class Value
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    Value() = default;

    Type type() const { return _type; }
    bool isNull() const { return _type == Type::Null; }
    bool isBool() const { return _type == Type::Bool; }
    bool isNumber() const { return _type == Type::Number; }
    bool isString() const { return _type == Type::String; }
    bool isArray() const { return _type == Type::Array; }
    bool isObject() const { return _type == Type::Object; }

    bool boolean() const { return _bool; }
    double number() const { return _number; }
    const std::string &str() const { return _string; }
    const std::vector<Value> &items() const { return *_items; }
    const Members &members() const { return *_members; }

    /** Member lookup; nullptr when absent (objects only). */
    const Value *find(const std::string &key) const;

    /** "file:line:col", for error messages about this value. */
    const std::string &where() const { return _where; }

    static Value makeNull(std::string where);
    static Value makeBool(bool b, std::string where);
    static Value makeNumber(double n, std::string where);
    static Value makeString(std::string s, std::string where);
    static Value makeArray(std::vector<Value> items, std::string where);
    static Value makeObject(Members members, std::string where);

  private:
    Type _type = Type::Null;
    bool _bool = false;
    double _number = 0.0;
    std::string _string;
    std::shared_ptr<std::vector<Value>> _items;
    std::shared_ptr<Members> _members;
    std::string _where;
};

/**
 * Parse @p text as one JSON document. @p origin names the source
 * (file path) for error messages. Throws SpecError on any syntax
 * problem, duplicate object key, or trailing garbage.
 */
Value parse(const std::string &text, const std::string &origin);

} // namespace json
} // namespace tf::topo

#endif // TF_TOPO_JSON_HH
