#include "topo/builder.hh"

#include <algorithm>
#include <map>

#include "mem/addr.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace tf::topo {

namespace {

/** Same bases the hand-wired rigs use (testbed.cc, rack.cc). */
constexpr mem::Addr kWindowBase = 0x2000000000ULL;
constexpr mem::Addr kLocalBase = 0x10000000ULL;
constexpr mem::Addr kRpcBase = 0x300000000ULL;
/** RPC service-buffer wrap, keeps the backing store bounded. */
constexpr std::uint64_t kRpcSpan = 4ULL << 20;

sim::fault::Kind
kindFromName(const std::string &name)
{
    using sim::fault::Kind;
    for (int i = 0; i < sim::fault::kKindCount; ++i) {
        Kind k = static_cast<Kind>(i);
        if (name == sim::fault::kindName(k))
            return k;
    }
    // Unreachable: parseSpec validated the name already.
    TF_ASSERT(false, "unvalidated fault kind '%s'", name.c_str());
    return Kind::ChannelFail;
}

} // namespace

/** One host (with its claimed donor, if any) or a lone donor. */
struct Instance::Group
{
    const NodeSpec *spec = nullptr;
    sim::par::LogicalProcess *lp = nullptr;
    std::unique_ptr<sim::Rng> rng;
    std::unique_ptr<sys::Node> node;
    std::unique_ptr<sys::Node> donorNode;
    std::unique_ptr<flow::Datapath> datapath;
    std::unique_ptr<ctrl::ControlPlane> cp;
    std::unique_ptr<os::PageCache> cache;
    std::string donorName;
    std::uint64_t donatedBytes = 0;
};

/** One closed-loop traffic stanza, confined to its source LP. */
struct Instance::Runner
{
    const TrafficSpec *ts = nullptr;
    sys::Node *srcNode = nullptr;
    sys::Node *dstNode = nullptr; ///< rpc only
    sim::EventQueue *q = nullptr;
    std::uint64_t target = 0;
    std::uint64_t issued = 0;
    std::uint64_t donated = 0; ///< source host's remote window bytes
    TrafficStats stats;
};

Instance::Instance(const Spec &spec, BuildOptions opt)
    : _spec(spec), _opt(opt)
{
    _engine = std::make_unique<sim::par::ParallelEngine>(
        opt.jobs ? opt.jobs : 1);
    buildGroups();
    buildFabric();
    buildFaults();
    buildTraffic();
    buildTimeline();
}

Instance::~Instance() = default;

Instance::Group *
Instance::group(const std::string &nodeName)
{
    for (auto &g : _groups)
        if (g->spec->name == nodeName || g->donorName == nodeName)
            return g.get();
    return nullptr;
}

sys::Node *
Instance::nodeOf(const std::string &nodeName)
{
    Group *g = group(nodeName);
    if (g == nullptr)
        return nullptr;
    return g->donorName == nodeName ? g->donorNode.get()
                                    : g->node.get();
}

void
Instance::buildGroups()
{
    // Donors claimed by a host fold into the host's group (and LP);
    // everything else gets its own.
    std::map<std::string, const NodeSpec *> claimed;
    for (const NodeSpec &n : _spec.nodes)
        if (!n.donor.empty())
            claimed[n.donor] = &n;

    auto nodeParams = [](const NodeSpec &n) {
        sys::NodeParams np;
        np.dram.accessLatency = sim::nanoseconds(n.dram.accessNs);
        np.dram.bandwidthBps = n.dram.gbps * 1e9;
        np.dram.banks = n.dram.banks;
        return np;
    };

    std::size_t index = 0;
    for (const NodeSpec &n : _spec.nodes) {
        if (n.role == "donor" && claimed.count(n.name))
            continue; // built with its host below
        auto g = std::make_unique<Group>();
        g->spec = &n;
        g->lp = &_engine->addLp(n.name);
        sim::EventQueue &eq = g->lp->queue();
        // Distinct stream per group; the offset keeps groups from
        // replaying each other's draws.
        g->rng = std::make_unique<sim::Rng>(_opt.seed +
                                            index * 7919 + 1);
        sys::NodeParams np = nodeParams(n);
        g->node = std::make_unique<sys::Node>(n.name, eq, np);

        if (!n.donor.empty()) {
            const NodeSpec &d = *_spec.node(n.donor);
            g->donorName = d.name;
            g->donatedBytes = d.donatedMiB << 20;
            g->donorNode = std::make_unique<sys::Node>(
                d.name, eq, nodeParams(d));

            // Replicates Testbed::composeDisaggregated: window twice
            // the aligned donation so the RMMU has regrow headroom.
            std::uint64_t window =
                mem::alignUp(g->donatedBytes, np.sectionBytes) * 2;
            flow::FlowParams fp;
            fp.channels = static_cast<int>(n.channels);
            if (_opt.cutThrough)
                fp.cutThrough = *_opt.cutThrough;
            g->datapath = std::make_unique<flow::Datapath>(
                n.name + ".tflow", eq, fp,
                ocapi::M1Window{kWindowBase, window},
                g->donorNode->pasids(), g->donorNode->dram(),
                *g->rng, np.sectionBytes);
            g->node->attachDatapath(*g->datapath);

            g->cp = std::make_unique<ctrl::ControlPlane>(
                np.agentToken);
            g->cp->addUser("admin", ctrl::Role::Admin);
            g->cp->registerHost(n.name, g->node->agent(),
                                g->node->mm());
            g->cp->registerHost(d.name, g->donorNode->agent(),
                                g->donorNode->mm());
            g->cp->registerDatapath(n.name, d.name, *g->datapath);
            g->cp->setHoldDown(eq, sim::microseconds(5),
                               sim::microseconds(80));
            auto id = g->cp->allocate(
                "admin", n.name, d.name, g->donatedBytes,
                g->node->tflowNode(),
                static_cast<int>(n.channels),
                g->donorNode->localNode());
            if (!id.has_value())
                throw SpecError(
                    "topology \"" + _spec.name +
                    "\": composing host \"" + n.name +
                    "\" with donor \"" + d.name +
                    "\" failed — allocation rejected (donatedMiB "
                    "larger than the donor's bootable memory?)");

            if (n.cache.enabled) {
                os::PageCacheParams pcp;
                pcp.pageBytes = np.pageBytes;
                pcp.frameBudget = n.cache.frameBudget;
                pcp.lineMlp = n.cache.lineMlp;
                pcp.lowWatermark = n.cache.lowWatermark;
                pcp.highWatermark = n.cache.highWatermark;
                flow::Datapath *dp = g->datapath.get();
                g->cache = std::make_unique<os::PageCache>(
                    n.name + ".pagecache", eq, pcp, g->node->mm(),
                    g->node->localNode(), g->node->dram(),
                    [dp](mem::TxnPtr txn) {
                        dp->issue(std::move(txn));
                    });
                g->node->attachPageCache(*g->cache);
            }
        }
        _groups.push_back(std::move(g));
        ++index;
    }
}

void
Instance::buildFabric()
{
    TF_ASSERT(_engine->lpCount() > 0, "topology with no LPs");
    std::map<std::string, sim::par::LogicalProcess *> switchLp;
    for (const SwitchSpec &s : _spec.switches)
        switchLp[s.name] = &_engine->addLp(s.name);

    _fabric = std::make_unique<net::Fabric>(
        "fabric", _engine->lp(0).queue());
    for (const NodeSpec &n : _spec.nodes)
        _fabric->addEndpoint(n.name);
    for (const SwitchSpec &s : _spec.switches) {
        net::SwitchParams sp;
        sp.crossingLatency = sim::nanoseconds(s.crossingNs);
        sp.radix = s.radix;
        _fabric->addSwitch(s.name, sp);
    }
    for (const NodeSpec &n : _spec.nodes)
        _fabric->assign(n.name, *group(n.name)->lp);
    for (const SwitchSpec &s : _spec.switches)
        _fabric->assign(s.name, *switchLp.at(s.name));
    for (const LinkSpec &l : _spec.links) {
        net::FabricLinkParams lp;
        lp.bandwidthBps = l.gbps * 1e9 / 8;
        lp.latency = sim::nanoseconds(l.latencyNs);
        _fabric->connect(l.a, l.b, lp);
    }
    _fabric->finalize();
    _fabric->partition(*_engine);
}

void
Instance::buildFaults()
{
    using sim::fault::Event;
    using sim::fault::Kind;
    using sim::fault::kindBit;

    for (std::size_t i = 0; i < _engine->lpCount(); ++i) {
        _faultRegs.push_back(
            std::make_unique<sim::fault::Registry>());
        _faultEngines.push_back(std::make_unique<sim::fault::Engine>(
            _engine->lp(i).queue(), *_faultRegs.back()));
    }

    for (auto &gp : _groups) {
        Group &g = *gp;
        sim::fault::Registry &reg = *_faultRegs.at(g.lp->id());
        if (g.datapath)
            g.datapath->registerFaultPoints(
                reg, g.spec->name + ".tflow");
        if (g.cp) {
            ctrl::ControlPlane *cp = g.cp.get();
            reg.add(g.spec->name + ".ctrl",
                    kindBit(Kind::ControlOutage),
                    [cp](const Event &ev) {
                        cp->controlOutage(ev.duration);
                    });
        }
        mem::Dram *dram = &g.node->dram();
        reg.add(g.spec->name + ".dram", kindBit(Kind::DramStall),
                [dram](const Event &ev) {
                    dram->stall(ev.duration);
                });
        if (g.donorNode) {
            mem::Dram *dd = &g.donorNode->dram();
            reg.add(g.donorName + ".dram", kindBit(Kind::DramStall),
                    [dd](const Event &ev) { dd->stall(ev.duration); });
        }
        if (g.cache) {
            os::PageCache *pc = g.cache.get();
            reg.add(g.spec->name + ".cache",
                    kindBit(Kind::CachePoison),
                    [pc](const Event &) { pc->poisonCleanPage(); });
        }
    }
    for (std::size_t i = 0; i < _engine->lpCount(); ++i)
        _fabric->registerFaultPoints(*_faultRegs[i], "fabric",
                                     &_engine->lp(i));

    // Route each scheduled fault to the one LP owning its point.
    std::vector<sim::fault::Plan> plans(_engine->lpCount());
    for (const FaultSpec &f : _spec.faults) {
        Kind kind = kindFromName(f.kind);
        std::size_t owner = _engine->lpCount();
        for (std::size_t i = 0; i < _faultRegs.size(); ++i)
            if (_faultRegs[i]->has(f.point))
                owner = i;
        if (owner == _engine->lpCount()) {
            std::string known;
            for (const auto &reg : _faultRegs)
                for (const std::string &n : reg->names())
                    known += (known.empty() ? "" : ", ") + n;
            throw SpecError("topology \"" + _spec.name +
                            "\": fault point \"" + f.point +
                            "\" does not exist (known points: " +
                            known + ")");
        }
        if (!_faultRegs[owner]->supports(f.point, kind))
            throw SpecError("topology \"" + _spec.name +
                            "\": fault point \"" + f.point +
                            "\" does not support kind \"" + f.kind +
                            "\"");
        Event ev;
        ev.at = sim::microseconds(f.atUs);
        ev.kind = kind;
        ev.point = f.point;
        ev.duration = sim::microseconds(f.forUs);
        ev.extraLatency = sim::nanoseconds(f.extraNs);
        plans[owner].add(ev);
    }
    for (std::size_t i = 0; i < plans.size(); ++i)
        if (!plans[i].empty())
            _faultEngines[i]->arm(plans[i]);
}

void
Instance::buildTraffic()
{
    for (const TrafficSpec &t : _spec.traffic) {
        auto r = std::make_unique<Runner>();
        r->ts = &t;
        Group *src = group(t.src);
        r->srcNode = src->node.get();
        r->q = &src->lp->queue();
        r->donated = src->donatedBytes;
        if (t.kind == "rpc")
            r->dstNode = nodeOf(t.dst);
        r->target = t.ops;
        if (_opt.smoke)
            r->target = t.smokeOps ? t.smokeOps
                                   : std::max<std::uint64_t>(
                                         1, t.ops / 10);
        r->stats.name = t.name;
        r->stats.target = r->target;
        _runners.push_back(std::move(r));
    }
    for (auto &rp : _runners) {
        Runner *r = rp.get();
        r->q->schedule(sim::microseconds(r->ts->startUs), [this, r]() {
            if (r->ts->kind == "rpc")
                startRpc(*r);
            else
                startMemory(*r);
        });
    }
}

void
Instance::startRpc(Runner &r)
{
    std::uint64_t burst =
        std::min<std::uint64_t>(r.ts->window, r.target);
    for (std::uint64_t i = 0; i < burst; ++i)
        rpcOp(r);
}

void
Instance::startMemory(Runner &r)
{
    std::uint64_t burst =
        std::min<std::uint64_t>(r.ts->window, r.target);
    for (std::uint64_t i = 0; i < burst; ++i)
        memoryOp(r);
}

void
Instance::rpcOp(Runner &r)
{
    // Everything mutable on the Runner is touched only from the
    // source LP: the op index and service address are computed here
    // and captured by value, the destination-side continuation only
    // touches destination-LP state (its DRAM), and the final
    // continuation is delivered back on the source LP.
    std::uint64_t op = r.issued++;
    sim::Tick t0 = r.q->now();
    auto respBytes = static_cast<std::uint32_t>(r.ts->responseBytes);
    mem::Addr addr = kRpcBase + (op * 256) % kRpcSpan;
    sys::Node *dst = r.dstNode;
    Runner *rp = &r;
    _fabric->send(
        r.ts->src, r.ts->dst, r.ts->requestBytes,
        [this, rp, t0, addr, respBytes, dst]() {
            auto txn = mem::makeTxn(mem::TxnType::ReadReq, addr,
                                    respBytes);
            dst->dram().access(
                std::move(txn),
                [this, rp, t0, respBytes](mem::TxnPtr) {
                    _fabric->send(
                        rp->ts->dst, rp->ts->src, respBytes,
                        [this, rp, t0]() {
                            double us =
                                sim::toUs(rp->q->now() - t0);
                            rp->stats.latUs.add(us);
                            rp->stats.latSketch.add(us);
                            rp->stats.completed.inc();
                            rp->stats.lastDone = rp->q->now();
                            if (rp->issued < rp->target)
                                rpcOp(*rp);
                        });
                });
        });
}

void
Instance::memoryOp(Runner &r)
{
    std::uint64_t op = r.issued++;
    sim::Tick t0 = r.q->now();
    bool remote = r.ts->policy == "remote" ||
                  (r.ts->policy == "interleave" && op % 2 == 0);
    auto bytes = static_cast<std::uint32_t>(r.ts->accessBytes);
    mem::Addr addr;
    if (remote) {
        // Stay in the lower half of the donated window: the upper
        // half is the RMMU's regrow headroom.
        std::uint64_t span =
            std::max<std::uint64_t>(r.donated / 2, 4096);
        addr = kWindowBase + (op * 256) % span;
    } else {
        addr = kLocalBase + (op * 256) % (32ULL << 20);
    }
    // A deterministic read-mostly mix: every fourth op writes.
    mem::TxnType type = op % 4 == 3 ? mem::TxnType::WriteReq
                                    : mem::TxnType::ReadReq;
    auto txn = mem::makeTxn(type, addr, bytes);
    Runner *rp = &r;
    txn->onComplete = [this, rp, t0](mem::MemTxn &) {
        double us = sim::toUs(rp->q->now() - t0);
        rp->stats.latUs.add(us);
        rp->stats.latSketch.add(us);
        rp->stats.completed.inc();
        rp->stats.lastDone = rp->q->now();
        if (rp->issued < rp->target)
            memoryOp(*rp);
    };
    r.srcNode->issue(std::move(txn));
}

void
Instance::buildTimeline()
{
    bool enabled = _opt.timelineUs > 0.0 || !_spec.monitors.empty();
    if (!enabled)
        return;
    double widthUs =
        _opt.timelineUs > 0.0 ? _opt.timelineUs : _spec.timelineUs;
    sim::Tick window = sim::microseconds(widthUs);

    for (std::size_t i = 0; i < _engine->lpCount(); ++i) {
        auto rec = std::make_unique<sim::timeline::Recorder>(
            _engine->lp(i).queue(), window);
        if (!_opt.dumpDir.empty())
            rec->setDumpDir(_opt.dumpDir);
        _recorders.push_back(std::move(rec));
    }

    // Traffic probes live on the stanza's source LP: per-window
    // completions plus the windowed latency quantiles (whose series
    // names match the aggregate bench metrics, "<name>.latP99Us").
    for (auto &rp : _runners) {
        Runner *r = rp.get();
        sim::timeline::Recorder &rec =
            *_recorders.at(group(r->ts->src)->lp->id());
        rec.addCounter(r->ts->name + ".ops", r->stats.completed,
                       "ops");
        rec.addSketch(r->ts->name + ".lat", r->stats.latSketch, "Us",
                      "us");
    }

    // Per-port fabric probes, on the LP owning each egress queue:
    // instantaneous depth (gauge), bytes and waiting time (deltas).
    _fabric->forEachLink([this](const std::string &key,
                                net::FabricLink &link,
                                sim::par::LogicalProcess *home) {
        if (home == nullptr)
            return;
        sim::timeline::Recorder &rec = *_recorders.at(home->id());
        net::FabricLink *l = &link;
        sim::EventQueue *q = &home->queue();
        rec.addGauge(
            "fabric." + key + ".queueDepth",
            [l, q]() {
                return static_cast<double>(l->queueDepth(q->now()));
            },
            "msgs");
        rec.addCounter("fabric." + key + ".bytes",
                       link.bytesCounter(), "bytes");
        rec.addCounter("fabric." + key + ".queueOccupancyNs",
                       link.queueOccupancyNs(), "ns");
    });

    // Fault windows annotate the timeline of the LP that fired them.
    for (std::size_t i = 0; i < _faultEngines.size(); ++i) {
        sim::timeline::Recorder *rec = _recorders.at(i).get();
        _faultEngines[i]->setObserver(
            [rec](const sim::fault::Event &ev) {
                rec->noteFault(
                    std::string(sim::fault::kindName(ev.kind)) + ":" +
                        ev.point,
                    ev.at, ev.at + ev.duration);
            });
    }

    // Bind each monitors stanza to the recorder producing its metric;
    // a typo'd metric is a config error with file:line:col, not a
    // TF_ASSERT deep in the watchdog.
    for (const MonitorSpec &m : _spec.monitors) {
        sim::timeline::SloRule rule;
        rule.name = m.name;
        rule.metric = m.metric;
        bool opOk = sim::timeline::parseOp(m.op, rule.op);
        TF_ASSERT(opOk, "unvalidated monitor op '%s'", m.op.c_str());
        rule.threshold = m.threshold;
        rule.forWindows = static_cast<std::uint32_t>(m.forWindows);
        rule.from = sim::microseconds(m.fromUs);
        rule.until = m.untilUs < 0 ? sim::maxTick
                                   : sim::microseconds(m.untilUs);
        rule.dumpFlight = m.dumpFlight;

        sim::timeline::Recorder *owner = nullptr;
        for (auto &rec : _recorders)
            if (rec->hasSeries(m.metric)) {
                owner = rec.get();
                break;
            }
        if (owner == nullptr) {
            std::string known;
            for (const auto &rec : _recorders)
                for (const std::string &n : rec->seriesNames())
                    known += (known.empty() ? "" : ", ") + n;
            throw SpecError(m.where + ": monitor \"" + m.name +
                            "\" references unknown metric \"" +
                            m.metric + "\" (known series: " + known +
                            ")");
        }
        owner->addRule(rule);
    }

    // Wake hooks re-arm a drained sampler when the merge delivers
    // fresh cross-LP work; then arm everyone for tick 0.
    for (std::size_t i = 0; i < _recorders.size(); ++i) {
        sim::timeline::Recorder *rec = _recorders[i].get();
        _engine->lp(i).setWakeHook([rec]() { rec->ensureArmed(); });
        rec->start();
    }
}

void
Instance::harvestTimeline()
{
    if (_recorders.empty() || _harvested)
        return;
    _harvested = true;
    for (auto &rec : _recorders)
        rec->finish();
    // LP-index order keeps the merge deterministic for any --jobs.
    for (auto &rec : _recorders)
        _timeline.adopt(*rec);
}

std::uint64_t
Instance::run()
{
    std::uint64_t events = _engine->run();
    harvestTimeline();
    return events;
}

const Instance::TrafficStats &
Instance::traffic(std::size_t i) const
{
    return _runners.at(i)->stats;
}

std::uint64_t
Instance::faultsFired() const
{
    std::uint64_t total = 0;
    for (const auto &e : _faultEngines)
        total += e->fired();
    return total;
}

sim::Tick
Instance::lastCompletion() const
{
    sim::Tick last = 0;
    for (const auto &r : _runners)
        last = std::max(last, r->stats.lastDone);
    return last;
}

void
Instance::registerStats(sim::StatsRegistry &reg)
{
    for (auto &gp : _groups) {
        Group &g = *gp;
        const std::string &host = g.spec->name;
        if (g.datapath)
            g.datapath->registerStats(reg, host + ".tflow");
        if (g.cp)
            g.cp->attachStats(reg.at(host + ".ctrl"));
        g.node->dram().attachStats(reg.at(host + ".dram"));
        if (g.donorNode)
            g.donorNode->dram().attachStats(
                reg.at(g.donorName + ".dram"));
        if (g.cache)
            g.cache->attachStats(reg.at(host + ".cache"));
    }
    _fabric->registerStats(reg, "fabric");
    for (auto &rp : _runners) {
        sim::StatSet &set = reg.at("traffic." + rp->stats.name);
        set.record("completed",
                   static_cast<double>(rp->stats.completed.value()),
                   "ops");
        set.record("target", static_cast<double>(rp->stats.target),
                   "ops");
    }
    for (const auto &s : _timeline.slo()) {
        sim::StatSet &set = reg.at("slo." + s.name);
        set.record("violations", static_cast<double>(s.violations),
                   "windows");
        set.record("evaluated", static_cast<double>(s.evaluated),
                   "windows");
        set.record("worstValue", s.worstValue, "");
        if (s.firstViolationTick != sim::maxTick)
            set.record("firstViolationUs",
                       sim::toUs(s.firstViolationTick), "us");
    }
    for (std::size_t i = 0; i < _faultEngines.size(); ++i)
        _faultEngines[i]->attachStats(
            reg.at("fault." + _engine->lp(i).name()));
    _engine->attachStats(reg, "sim.par", false);
}

} // namespace tf::topo
