/**
 * @file
 * Per-host user-space agent (Section IV-B).
 *
 * A daemon runs on every host and executes configuration commands from
 * the orchestration layer. Its role is twofold:
 *
 *  - memory-stealing role: allocate and pin cacheline-aligned local
 *    memory, register the stealing process's PASID with the endpoint
 *    hardware, and hand the pinned effective addresses back to the
 *    orchestrator;
 *  - compute role: program the compute endpoint (RMMU section table +
 *    routing) for each attached section, then use the Linux memory
 *    hotplug subsystem to probe and online the new memory into a
 *    CPU-less NUMA node.
 *
 * Agents accept configuration only from a trusted control plane
 * (token-authenticated), mirroring the paper's security model.
 */

#ifndef TF_AGENT_AGENT_HH
#define TF_AGENT_AGENT_HH

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "opencapi/pasid.hh"
#include "os/memory_manager.hh"
#include "tflow/datapath.hh"

namespace tf::agent {

/**
 * One pinned donor-side chunk: a section-sized, physically contiguous
 * effective-address range.
 */
struct DonatedChunk
{
    mem::Addr base = 0;
    std::uint64_t size = 0;
};

/** The result of a memory-stealing operation. */
struct Donation
{
    std::uint64_t id = 0;
    ocapi::Pasid pasid = ocapi::invalidPasid;
    os::NodeId fromNode = os::invalidNode;
    std::vector<DonatedChunk> chunks;

    std::uint64_t
    bytes() const
    {
        std::uint64_t total = 0;
        for (const auto &c : chunks)
            total += c.size;
        return total;
    }
};

/** A live compute-side attachment of one donation. */
struct Attachment
{
    std::uint64_t id = 0;
    os::NodeId numaNode = os::invalidNode;
    mem::NetworkId networkId = mem::invalidNetworkId;
    std::vector<std::size_t> sectionIndices; ///< RMMU/window sections
    std::vector<mem::Addr> hotplugBases;     ///< physical bases onlined
};

class Agent
{
  public:
    /**
     * @param mm      the host kernel's memory manager.
     * @param pasids  the host's PASID registry (donor role).
     * @param token   shared secret with the trusted control plane.
     */
    Agent(std::string name, os::MemoryManager &mm,
          ocapi::PasidRegistry &pasids, std::string token);

    const std::string &name() const { return _name; }

    // ---------------- memory-stealing (donor) role ----------------

    /**
     * Allocate and pin @p bytes (rounded up to whole sections) of
     * local memory from @p fromNode, registering the stealing
     * process's PASID. Returns nullopt when the node lacks free
     * whole sections or the token is wrong.
     */
    std::optional<Donation> stealMemory(const std::string &token,
                                        std::uint64_t bytes,
                                        os::NodeId fromNode);

    /** Unpin and free a donation's memory. */
    bool releaseDonation(const std::string &token,
                         const Donation &donation);

    // --------------------- compute role ---------------------------

    /**
     * Attach @p donation through @p datapath: program one RMMU
     * section per chunk routed over @p channels under a fresh network
     * id, then hotplug each section into NUMA node @p numaNode.
     * @pre the datapath's section size equals the kernel's.
     */
    std::optional<Attachment> attachMemory(const std::string &token,
                                           flow::Datapath &datapath,
                                           const Donation &donation,
                                           os::NodeId numaNode,
                                           std::vector<int> channels);

    /**
     * Detach: offline every hotplugged section (fails if pages are
     * still in use) and clear the RMMU/routing state.
     * @param force surprise-removal semantics: offline sections even
     *        with pages in use (the backing flow is gone; leaving the
     *        memory online would hang or corrupt the host).
     */
    bool detachMemory(const std::string &token,
                      flow::Datapath &datapath,
                      const Attachment &attachment, bool force = false);

    /**
     * Push a repaired channel set for a live attachment (control
     * plane route repair after a link failure or recovery).
     */
    bool repairRoute(const std::string &token, flow::Datapath &datapath,
                     const Attachment &attachment,
                     const std::vector<int> &channels);

    /**
     * Subscribe to a datapath's link health events; the agent logs
     * them and counts them (the control plane registers its own
     * listener for repair).
     */
    void watchDatapath(flow::Datapath &datapath);

    std::uint64_t rejectedCommands() const { return _rejected.value(); }
    std::uint64_t linkEventsObserved() const { return _linkEvents.value(); }
    std::uint64_t routeRepairs() const { return _routeRepairs.value(); }

  private:
    std::string _name;
    os::MemoryManager &_mm;
    ocapi::PasidRegistry &_pasids;
    std::string _token;
    std::uint64_t _nextDonationId = 1;
    std::uint64_t _nextAttachmentId = 1;
    mem::NetworkId _nextNetworkId = 1;
    /** Window-section occupancy per datapath the agent configures. */
    std::map<flow::Datapath *, std::vector<bool>> _sectionsInUse;
    sim::Counter _rejected;
    sim::Counter _linkEvents;
    sim::Counter _routeRepairs;

    bool authorised(const std::string &token);
    std::optional<std::size_t> reserveSectionIndex(
        flow::Datapath &datapath);
};

} // namespace tf::agent

#endif // TF_AGENT_AGENT_HH
