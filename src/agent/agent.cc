#include "agent/agent.hh"

#include "sim/logging.hh"

namespace tf::agent {

Agent::Agent(std::string name, os::MemoryManager &mm,
             ocapi::PasidRegistry &pasids, std::string token)
    : _name(std::move(name)), _mm(mm), _pasids(pasids),
      _token(std::move(token))
{
}

bool
Agent::authorised(const std::string &token)
{
    if (token == _token)
        return true;
    _rejected.inc();
    sim::warn("%s: rejected command with bad control-plane token",
              _name.c_str());
    return false;
}

std::optional<Donation>
Agent::stealMemory(const std::string &token, std::uint64_t bytes,
                   os::NodeId fromNode)
{
    if (!authorised(token))
        return std::nullopt;

    std::uint64_t section = _mm.sectionBytes();
    std::uint64_t need = mem::alignUp(bytes, section) / section;
    if (need == 0)
        need = 1;

    Donation donation;
    donation.id = _nextDonationId++;
    donation.fromNode = fromNode;
    donation.pasid = _pasids.allocate();

    for (std::uint64_t i = 0; i < need; ++i) {
        auto base = _mm.claimWholeSection(fromNode);
        if (!base)
            break;
        donation.chunks.push_back(DonatedChunk{*base, section});
    }
    if (donation.chunks.size() != need) {
        // Not enough fully-free sections: roll back.
        for (const auto &c : donation.chunks)
            _mm.releaseWholeSection(c.base);
        _pasids.release(donation.pasid);
        return std::nullopt;
    }

    // Pin: register each chunk under the stealing process's PASID.
    for (const auto &c : donation.chunks) {
        bool ok = _pasids.registerRegion(donation.pasid, c.base, c.size);
        TF_ASSERT(ok, "PASID registration failed for claimed section");
    }
    return donation;
}

bool
Agent::releaseDonation(const std::string &token,
                       const Donation &donation)
{
    if (!authorised(token))
        return false;
    for (const auto &c : donation.chunks)
        _mm.releaseWholeSection(c.base);
    _pasids.release(donation.pasid);
    return true;
}

std::optional<std::size_t>
Agent::reserveSectionIndex(flow::Datapath &datapath)
{
    auto &used = _sectionsInUse[&datapath];
    std::size_t entries =
        datapath.compute().rmmu().table().entries();
    used.resize(entries, false);
    for (std::size_t i = 0; i < entries; ++i) {
        if (!used[i]) {
            used[i] = true;
            return i;
        }
    }
    return std::nullopt;
}

std::optional<Attachment>
Agent::attachMemory(const std::string &token, flow::Datapath &datapath,
                    const Donation &donation, os::NodeId numaNode,
                    std::vector<int> channels)
{
    if (!authorised(token))
        return std::nullopt;
    TF_ASSERT(datapath.compute().rmmu().table().sectionBytes() ==
                  _mm.sectionBytes(),
              "kernel and RMMU section sizes must match");

    Attachment att;
    att.id = _nextAttachmentId++;
    att.numaNode = numaNode;
    att.networkId = _nextNetworkId++;
    // The stealing endpoint masters this flow's transactions under
    // the donation's PASID.
    datapath.stealing().registerFlow(att.networkId, donation.pasid);

    const mem::Addr window_base = datapath.compute().window().base;
    for (const auto &chunk : donation.chunks) {
        auto idx = reserveSectionIndex(datapath);
        if (!idx) {
            sim::warn("%s: M1 window out of free sections",
                      _name.c_str());
            detachMemory(token, datapath, att);
            return std::nullopt;
        }
        datapath.attach(*idx, chunk.base, att.networkId, channels);
        mem::Addr phys = window_base + *idx * _mm.sectionBytes();
        bool ok = _mm.onlineSection(numaNode, phys);
        TF_ASSERT(ok, "memory hotplug failed for section %zu", *idx);
        att.sectionIndices.push_back(*idx);
        att.hotplugBases.push_back(phys);
    }
    return att;
}

bool
Agent::detachMemory(const std::string &token, flow::Datapath &datapath,
                    const Attachment &attachment, bool force)
{
    if (!authorised(token))
        return false;

    // First make sure the kernel can give every section back.
    for (mem::Addr base : attachment.hotplugBases) {
        if (_mm.isOnline(base) && !_mm.offlineSection(base, force)) {
            sim::warn("%s: detach blocked, section %#llx has pages "
                      "in use",
                      _name.c_str(), (unsigned long long)base);
            return false;
        }
    }
    auto &used = _sectionsInUse[&datapath];
    for (std::size_t idx : attachment.sectionIndices) {
        datapath.detach(idx);
        if (idx < used.size())
            used[idx] = false;
    }
    datapath.stealing().unregisterFlow(attachment.networkId);
    return true;
}

bool
Agent::repairRoute(const std::string &token, flow::Datapath &datapath,
                   const Attachment &attachment,
                   const std::vector<int> &channels)
{
    if (!authorised(token))
        return false;
    TF_ASSERT(!channels.empty(), "repairRoute with no channels");
    _routeRepairs.inc();
    datapath.reroute(attachment.networkId, channels);
    return true;
}

void
Agent::watchDatapath(flow::Datapath &datapath)
{
    datapath.addLinkListener([this](const flow::Datapath::LinkEvent &ev) {
        _linkEvents.inc();
        sim::warn("%s: datapath channel %zu %s", _name.c_str(),
                  ev.channel, ev.down ? "went down" : "recovered");
    });
}

} // namespace tf::agent
