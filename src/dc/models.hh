/**
 * @file
 * Data-centre infrastructure models for the Fig. 1 motivation study.
 *
 * Two infrastructures offering the same total resources:
 *
 *  - FixedModel: 12555 conventional servers, each with 1.0 CPU and
 *    1.0 memory capacity; a job must fit entirely on one server.
 *  - DisaggModel: 12555 compute modules and 12555 memory modules;
 *    a job's CPU lands on one compute module and its memory on one
 *    or more memory modules, subject to each compute module having
 *    16 interconnect links (modelling parallel transceivers) in a
 *    fully connected topology.
 *
 * Both use an online best-fit allocation policy without resource
 * overcommitment (Section II).
 */

#ifndef TF_DC_MODELS_HH
#define TF_DC_MODELS_HH

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "dc/trace.hh"
#include "sim/stats.hh"

namespace tf::dc {

/** Utilisation metrics matching Fig. 1's two bar groups. */
struct UtilMetrics
{
    /**
     * Fragmentation index: fraction of total capacity that sits
     * unused inside powered-on (partially allocated) units.
     */
    double cpuFragmentation = 0;
    double memFragmentation = 0;
    /** Fraction of units with zero allocation (can be switched off). */
    double cpuOff = 0;
    double memOff = 0;
};

/** Common interface so the simulation can drive either model. */
class DataCentreModel
{
  public:
    virtual ~DataCentreModel() = default;

    /** Try to place a job; false when it does not fit anywhere. */
    virtual bool place(const Job &job) = 0;

    /** Release a previously placed job. */
    virtual void remove(std::uint64_t jobId) = 0;

    /** Snapshot current utilisation. */
    virtual UtilMetrics metrics() const = 0;
};

// --------------------------------------------------------------------

class FixedModel : public DataCentreModel
{
  public:
    /**
     * Placement policy. BestFit packs (minimum leftover). LeastLoaded
     * spreads like production cluster schedulers balance machines --
     * it reproduces the ClusterData behaviour that nearly every
     * machine hosts something (Fig. 1's ~1% switched-off servers).
     */
    enum class Placement { BestFit, LeastLoaded };

    explicit FixedModel(std::size_t servers,
                        Placement placement = Placement::BestFit);

    bool place(const Job &job) override;
    void remove(std::uint64_t jobId) override;
    UtilMetrics metrics() const override;

    std::uint64_t rejected() const { return _rejected.value(); }

  private:
    struct Server
    {
        double cpuUsed = 0;
        double memUsed = 0;
        int jobs = 0;
    };

    std::vector<Server> _servers;
    Placement _placement;
    std::map<std::uint64_t, std::pair<std::size_t, Job>> _placements;
    sim::Counter _rejected;
    // O(1) aggregates for metrics().
    std::size_t _poweredOn = 0;
    double _cpuUsedTotal = 0;
    double _memUsedTotal = 0;
};

// --------------------------------------------------------------------

class DisaggModel : public DataCentreModel
{
  public:
    DisaggModel(std::size_t computeModules, std::size_t memoryModules,
                int linksPerModule = 16);

    bool place(const Job &job) override;
    void remove(std::uint64_t jobId) override;
    UtilMetrics metrics() const override;

    std::uint64_t rejected() const { return _rejected.value(); }

  private:
    struct ComputeModule
    {
        double cpuUsed = 0;
        int jobs = 0;
        int linksUsed = 0;
        /** memory module -> number of this module's jobs using it. */
        std::map<std::size_t, int> attachments;
    };

    struct MemoryModule
    {
        double memUsed = 0;
        int jobs = 0;
    };

    struct Placement
    {
        Job job;
        std::size_t compute = 0;
        /** memory module -> bytes (capacity units) allocated there. */
        std::map<std::size_t, double> memory;
    };

    std::vector<ComputeModule> _compute;
    std::vector<MemoryModule> _memory;
    std::map<std::uint64_t, Placement> _placements;
    int _linksPerModule;
    sim::Counter _rejected;
    // O(1) aggregates for metrics().
    std::size_t _computeOn = 0;
    std::size_t _memoryOn = 0;
    double _cpuUsedTotal = 0;
    double _memUsedTotal = 0;

    bool allocateMemory(ComputeModule &cm, std::size_t cmIdx,
                        double mem,
                        std::map<std::size_t, double> &out);
    void rollbackMemory(ComputeModule &cm,
                        const std::map<std::size_t, double> &taken);
};

} // namespace tf::dc

#endif // TF_DC_MODELS_HH
