#include "dc/simulation.hh"

#include <algorithm>
#include <algorithm>
#include <queue>

namespace tf::dc {

namespace {

struct Event
{
    sim::Tick when;
    bool isArrival;
    std::size_t jobIdx; // into the trace

    bool
    operator>(const Event &other) const
    {
        if (when != other.when)
            return when > other.when;
        // Process departures before arrivals at the same instant.
        return isArrival && !other.isArrival;
    }
};

} // namespace

SimulationResult
DataCentreSimulation::run(DataCentreModel &model,
                          const std::vector<Job> &trace)
{
    SimulationResult result;
    if (trace.empty())
        return result;

    std::priority_queue<Event, std::vector<Event>, std::greater<>>
        events;
    for (std::size_t i = 0; i < trace.size(); ++i)
        events.push(Event{trace[i].arrival, true, i});

    sim::Tick warmup_until =
        trace.front().arrival +
        static_cast<sim::Tick>(
            _warmupFraction *
            static_cast<double>(trace.back().arrival -
                                trace.front().arrival));

    // Measure only while the arrival process is live: after the
    // final arrival the cluster drains along the heavy duration tail
    // and would otherwise dominate the time-weighted average.
    sim::Tick measure_until = trace.back().arrival;

    sim::Tick last = warmup_until;
    double weight_total = 0;
    UtilMetrics acc;

    auto accumulate = [&](sim::Tick now) {
        now = std::min(now, measure_until);
        if (now <= last)
            return;
        double w = static_cast<double>(now - last);
        UtilMetrics m = model.metrics();
        acc.cpuFragmentation += m.cpuFragmentation * w;
        acc.memFragmentation += m.memFragmentation * w;
        acc.cpuOff += m.cpuOff * w;
        acc.memOff += m.memOff * w;
        weight_total += w;
        last = now;
    };

    while (!events.empty()) {
        Event ev = events.top();
        events.pop();
        if (ev.when > warmup_until)
            accumulate(ev.when);
        (void)0;
        const Job &job = trace[ev.jobIdx];
        if (ev.isArrival) {
            if (model.place(job)) {
                ++result.placed;
                events.push(
                    Event{ev.when + job.duration, false, ev.jobIdx});
            } else {
                ++result.rejectedAtArrival;
            }
        } else {
            model.remove(job.id);
        }
    }

    if (weight_total > 0) {
        result.average.cpuFragmentation =
            acc.cpuFragmentation / weight_total;
        result.average.memFragmentation =
            acc.memFragmentation / weight_total;
        result.average.cpuOff = acc.cpuOff / weight_total;
        result.average.memOff = acc.memOff / weight_total;
    }
    return result;
}

} // namespace tf::dc
