#include "dc/trace.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace tf::dc {

TraceGenerator::TraceGenerator(TraceParams params, std::uint64_t seed)
    : _params(params), _rng(seed)
{
}

std::vector<Job>
TraceGenerator::generate()
{
    std::vector<Job> jobs;
    jobs.reserve(_params.jobs);
    sim::Tick t = 0;
    for (std::uint64_t i = 0; i < _params.jobs; ++i) {
        t += static_cast<sim::Tick>(_rng.exponential(
            static_cast<double>(_params.meanInterarrival)));

        Job job;
        job.id = i;
        job.arrival = t;

        // Heavy-tailed duration: log-normal body, occasionally a
        // bounded-Pareto long-runner (services vs batch split).
        double dur;
        if (_rng.chance(0.01)) {
            dur = _rng.boundedPareto(
                1.1, std::exp(_params.durationMu),
                std::exp(_params.durationMu) * 100.0);
        } else {
            dur = _rng.logNormal(_params.durationMu,
                                 _params.durationSigma);
        }
        job.duration = static_cast<sim::Tick>(dur);

        double cpu = _rng.logNormal(_params.cpuMu, _params.cpuSigma);
        double ratio = std::pow(
            10.0,
            _rng.uniform(_params.ratioCenter - _params.ratioSpan / 2,
                         _params.ratioCenter + _params.ratioSpan / 2));
        double mem = cpu * ratio;
        job.cpu = std::clamp(cpu, _params.minDemand,
                             _params.maxDemand);
        job.mem = std::clamp(mem, _params.minDemand,
                             _params.maxDemand);
        jobs.push_back(job);
    }
    return jobs;
}

std::vector<std::vector<Job>>
shardTrace(const std::vector<Job> &trace, std::size_t shards)
{
    TF_ASSERT(shards > 0, "cannot shard a trace into zero shards");
    std::vector<std::vector<Job>> out(shards);
    for (auto &shard : out)
        shard.reserve(trace.size() / shards + 1);
    for (std::size_t i = 0; i < trace.size(); ++i)
        out[i % shards].push_back(trace[i]);
    return out;
}

} // namespace tf::dc
