/**
 * @file
 * Synthetic Google-ClusterData-like allocation trace (Section II).
 *
 * The paper's motivation study replays the public Google ClusterData
 * 2011 trace. That trace is not redistributable here, so this
 * generator produces a statistically matched synthetic stream with
 * the properties Fig. 1 depends on:
 *
 *  - memory/CPU demand ratios spanning three orders of magnitude
 *    (log-uniform ratio), per the trace analyses cited by the paper;
 *  - heavy-tailed job durations (log-normal body, bounded-Pareto
 *    tail) and Poisson arrivals;
 *  - job sizes small relative to one machine, so packing dynamics
 *    (not admission) drive fragmentation.
 *
 * Demands are normalised to a machine capacity of 1.0 per resource.
 */

#ifndef TF_DC_TRACE_HH
#define TF_DC_TRACE_HH

#include <cmath>
#include <cstdint>
#include <vector>

#include "sim/rng.hh"
#include "sim/ticks.hh"

namespace tf::dc {

struct Job
{
    std::uint64_t id = 0;
    double cpu = 0;  ///< CPU demand, machines (0..1]
    double mem = 0;  ///< memory demand, machines (0..1]
    sim::Tick arrival = 0;
    sim::Tick duration = 0;
};

struct TraceParams
{
    std::uint64_t jobs = 50000;
    /** Mean inter-arrival time. */
    sim::Tick meanInterarrival = sim::milliseconds(10);
    /** Log-normal job duration (of the underlying normal). */
    double durationMu = std::log(
        static_cast<double>(sim::seconds(30)));
    double durationSigma = 1.2;
    /** Log-normal CPU demand; median ~2% of a machine. */
    double cpuMu = std::log(0.02);
    double cpuSigma = 1.0;
    /**
     * log10 of the mem:cpu demand ratio is uniform in
     * [center - span/2, center + span/2]; 3.0 spans three orders of
     * magnitude as reported for cloud workloads [1], [2]. The centre
     * sits below 0 so aggregate memory demand trails CPU demand,
     * matching the ClusterData-era machines the paper replays
     * (memory is the less-utilised resource in Fig. 1).
     */
    double ratioSpan = 3.0;
    double ratioCenter = -0.6;
    /** Clamp so one job fits one machine/module. */
    double maxDemand = 0.95;
    double minDemand = 0.001;
};

class TraceGenerator
{
  public:
    explicit TraceGenerator(TraceParams params = {},
                            std::uint64_t seed = 1);

    /** Generate the whole trace, sorted by arrival time. */
    std::vector<Job> generate();

    const TraceParams &params() const { return _params; }

  private:
    TraceParams _params;
    sim::Rng _rng;
};

/**
 * Deal a trace across @p shards round-robin by index: job i goes to
 * shard i % shards, so every shard sees the same arrival-rate and
 * demand mix and per-shard arrival order is preserved. Used to drive
 * one rack partition per shard in parallel rack-scale runs — the
 * split depends only on the trace, never on thread scheduling.
 */
std::vector<std::vector<Job>> shardTrace(const std::vector<Job> &trace,
                                         std::size_t shards);

} // namespace tf::dc

#endif // TF_DC_TRACE_HH
