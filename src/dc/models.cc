#include "dc/models.hh"

#include <algorithm>
#include <limits>

#include "sim/logging.hh"

namespace tf::dc {

// ----------------------------------------------------------- Fixed

FixedModel::FixedModel(std::size_t servers, Placement placement)
    : _servers(servers), _placement(placement)
{
}

bool
FixedModel::place(const Job &job)
{
    // Online placement over the feasible servers: best-fit minimises
    // the combined leftover; least-loaded picks the emptiest server.
    double best_score = std::numeric_limits<double>::infinity();
    std::size_t best = _servers.size();
    for (std::size_t i = 0; i < _servers.size(); ++i) {
        const Server &s = _servers[i];
        double cpu_free = 1.0 - s.cpuUsed;
        double mem_free = 1.0 - s.memUsed;
        if (cpu_free < job.cpu || mem_free < job.mem)
            continue;
        double leftover = (cpu_free - job.cpu) + (mem_free - job.mem);
        double score = _placement == Placement::BestFit
                           ? leftover
                           : -leftover; // least-loaded: max leftover
        if (score < best_score) {
            best_score = score;
            best = i;
        }
    }
    if (best == _servers.size()) {
        _rejected.inc();
        return false;
    }
    if (_servers[best].jobs == 0)
        ++_poweredOn;
    _servers[best].cpuUsed += job.cpu;
    _servers[best].memUsed += job.mem;
    ++_servers[best].jobs;
    _cpuUsedTotal += job.cpu;
    _memUsedTotal += job.mem;
    _placements[job.id] = {best, job};
    return true;
}

void
FixedModel::remove(std::uint64_t jobId)
{
    auto it = _placements.find(jobId);
    if (it == _placements.end())
        return;
    auto [idx, job] = it->second;
    Server &s = _servers[idx];
    s.cpuUsed = std::max(0.0, s.cpuUsed - job.cpu);
    s.memUsed = std::max(0.0, s.memUsed - job.mem);
    --s.jobs;
    if (s.jobs == 0)
        --_poweredOn;
    _cpuUsedTotal -= job.cpu;
    _memUsedTotal -= job.mem;
    _placements.erase(it);
}

UtilMetrics
FixedModel::metrics() const
{
    // All used capacity lives on powered-on servers, so the waste on
    // powered-on servers is poweredOn - used (O(1)).
    UtilMetrics m;
    double total = static_cast<double>(_servers.size());
    double on = static_cast<double>(_poweredOn);
    m.cpuFragmentation = (on - _cpuUsedTotal) / total;
    m.memFragmentation = (on - _memUsedTotal) / total;
    // A conventional server powers CPU and memory together.
    m.cpuOff = (total - on) / total;
    m.memOff = m.cpuOff;
    return m;
}

// ------------------------------------------------------ Disaggregated

DisaggModel::DisaggModel(std::size_t computeModules,
                         std::size_t memoryModules, int linksPerModule)
    : _compute(computeModules), _memory(memoryModules),
      _linksPerModule(linksPerModule)
{
}

bool
DisaggModel::allocateMemory(ComputeModule &cm, std::size_t cmIdx,
                            double mem,
                            std::map<std::size_t, double> &out)
{
    (void)cmIdx;
    double remaining = mem;

    // Global best-fit per chunk: prefer the module that absorbs the
    // whole remainder with minimal leftover (ties broken towards
    // modules this compute module is already linked to, which cost
    // no extra link); if none fits, drain the largest free module.
    while (remaining > 1e-12) {
        bool links_left = cm.linksUsed < _linksPerModule;
        double best_score = std::numeric_limits<double>::infinity();
        std::size_t best = _memory.size();
        double best_partial = 0;
        std::size_t best_partial_idx = _memory.size();
        for (std::size_t i = 0; i < _memory.size(); ++i) {
            bool attached = cm.attachments.count(i) > 0;
            if (!attached && !links_left)
                continue;
            double free = 1.0 - _memory[i].memUsed;
            if (out.count(i))
                free -= out[i];
            if (free <= 1e-12)
                continue;
            if (free >= remaining) {
                // Small bias towards attached modules on near-ties.
                double score = (free - remaining) + (attached ? 0.0
                                                             : 1e-6);
                if (score < best_score) {
                    best_score = score;
                    best = i;
                }
            } else if (free > best_partial) {
                best_partial = free;
                best_partial_idx = i;
            }
        }
        if (best == _memory.size())
            best = best_partial_idx;
        if (best == _memory.size())
            return false;

        double free = 1.0 - _memory[best].memUsed;
        if (out.count(best))
            free -= out[best];
        double take = std::min(free, remaining);
        out[best] += take;
        remaining -= take;
        if (!cm.attachments.count(best)) {
            ++cm.linksUsed;
            cm.attachments[best] = 0; // provisional; bumped on commit
        }
    }
    return true;
}

void
DisaggModel::rollbackMemory(ComputeModule &cm,
                            const std::map<std::size_t, double> &taken)
{
    for (const auto &[mmIdx, amount] : taken) {
        (void)amount;
        auto it = cm.attachments.find(mmIdx);
        if (it != cm.attachments.end() && it->second == 0) {
            cm.attachments.erase(it);
            --cm.linksUsed;
        }
    }
}

bool
DisaggModel::place(const Job &job)
{
    // Best-fit compute module by CPU.
    double best_score = std::numeric_limits<double>::infinity();
    std::size_t best = _compute.size();
    for (std::size_t i = 0; i < _compute.size(); ++i) {
        double free = 1.0 - _compute[i].cpuUsed;
        if (free < job.cpu)
            continue;
        double score = free - job.cpu;
        if (score < best_score) {
            best_score = score;
            best = i;
        }
    }
    if (best == _compute.size()) {
        _rejected.inc();
        return false;
    }

    ComputeModule &cm = _compute[best];
    std::map<std::size_t, double> memory;
    if (!allocateMemory(cm, best, job.mem, memory)) {
        rollbackMemory(cm, memory);
        _rejected.inc();
        return false;
    }

    // Commit.
    if (cm.jobs == 0)
        ++_computeOn;
    cm.cpuUsed += job.cpu;
    ++cm.jobs;
    _cpuUsedTotal += job.cpu;
    for (const auto &[mmIdx, amount] : memory) {
        if (_memory[mmIdx].jobs == 0)
            ++_memoryOn;
        _memory[mmIdx].memUsed += amount;
        ++_memory[mmIdx].jobs;
        _memUsedTotal += amount;
        ++cm.attachments[mmIdx];
    }
    _placements[job.id] = Placement{job, best, memory};
    return true;
}

void
DisaggModel::remove(std::uint64_t jobId)
{
    auto it = _placements.find(jobId);
    if (it == _placements.end())
        return;
    const Placement &p = it->second;
    ComputeModule &cm = _compute[p.compute];
    cm.cpuUsed = std::max(0.0, cm.cpuUsed - p.job.cpu);
    --cm.jobs;
    if (cm.jobs == 0)
        --_computeOn;
    _cpuUsedTotal -= p.job.cpu;
    for (const auto &[mmIdx, amount] : p.memory) {
        MemoryModule &mm = _memory[mmIdx];
        mm.memUsed = std::max(0.0, mm.memUsed - amount);
        --mm.jobs;
        if (mm.jobs == 0)
            --_memoryOn;
        _memUsedTotal -= amount;
        auto att = cm.attachments.find(mmIdx);
        TF_ASSERT(att != cm.attachments.end(),
                  "placement without attachment");
        if (--att->second == 0) {
            cm.attachments.erase(att);
            --cm.linksUsed;
        }
    }
    _placements.erase(it);
}

UtilMetrics
DisaggModel::metrics() const
{
    UtilMetrics m;
    double nc = static_cast<double>(_compute.size());
    double nm = static_cast<double>(_memory.size());
    m.cpuFragmentation =
        (static_cast<double>(_computeOn) - _cpuUsedTotal) / nc;
    m.memFragmentation =
        (static_cast<double>(_memoryOn) - _memUsedTotal) / nm;
    m.cpuOff = (nc - static_cast<double>(_computeOn)) / nc;
    m.memOff = (nm - static_cast<double>(_memoryOn)) / nm;
    return m;
}

} // namespace tf::dc
