/**
 * @file
 * Replays an allocation trace through a data-centre model and
 * accumulates time-weighted utilisation metrics (Fig. 1).
 */

#ifndef TF_DC_SIMULATION_HH
#define TF_DC_SIMULATION_HH

#include "dc/models.hh"

namespace tf::dc {

struct SimulationResult
{
    /** Time-weighted averages over the measured window. */
    UtilMetrics average;
    std::uint64_t placed = 0;
    std::uint64_t rejectedAtArrival = 0;
};

class DataCentreSimulation
{
  public:
    /**
     * @param warmupFraction skip this fraction of the trace before
     *        measuring, so metrics reflect steady state.
     */
    explicit DataCentreSimulation(double warmupFraction = 0.2)
        : _warmupFraction(warmupFraction)
    {}

    SimulationResult run(DataCentreModel &model,
                         const std::vector<Job> &trace);

  private:
    double _warmupFraction;
};

} // namespace tf::dc

#endif // TF_DC_SIMULATION_HH
