/**
 * @file
 * OpenCAPI C1-mode master.
 *
 * In C1 (accelerator) mode the device masters cache-coherent
 * transactions into the virtual address space of the memory-stealing
 * process, without host CPU or DMA involvement (Section IV-A). The
 * paper measures the mode's ceiling at ~16 GiB/s with the 128 B
 * transactions POWER9 emits, and ~20 GiB/s with 256 B bursts that the
 * design cannot use (Section VI-C). We model the mode as a per-
 * transaction overhead plus raw byte rate calibrated to reproduce both
 * figures, in front of the donor node's DRAM.
 */

#ifndef TF_OCAPI_C1_MASTER_HH
#define TF_OCAPI_C1_MASTER_HH

#include <functional>

#include "mem/dram.hh"
#include "opencapi/pasid.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"

namespace tf::ocapi {

struct C1Params
{
    /**
     * Per-transaction command overhead and raw payload rate. With
     * o = 3 ns and raw = 28.6 GB/s:
     *   128 B: 128/(3n + 128/28.6G) ~= 17 GiB/s  (paper: ~16 GiB/s)
     *   256 B: 256/(3n + 256/28.6G) ~= 21 GiB/s  (paper: ~20 GiB/s)
     */
    sim::Tick perTxnOverhead = sim::nanoseconds(3.5);
    double rawBandwidthBps = 28.6e9;
};

class C1Master : public sim::SimObject
{
  public:
    using DoneFn = std::function<void(mem::TxnPtr)>;

    C1Master(std::string name, sim::EventQueue &eq, C1Params params,
             PasidRegistry &pasids, mem::Dram &hostDram);

    /**
     * Master a transaction into host memory under @p pasid.
     * The transaction's address is a host effective address; it must
     * fall inside a region registered for the pasid, otherwise the
     * access faults (response flagged via @p done with no data and the
     * fault counter bumped).
     */
    void master(Pasid pasid, mem::TxnPtr txn, DoneFn done);

    std::uint64_t faults() const { return _faults.value(); }
    std::uint64_t transactions() const { return _txns.value(); }
    std::uint64_t bytesMastered() const { return _bytes.value(); }

    /** Command-to-completion service latency (incl. DRAM). */
    const sim::QuantileSketch &serviceNs() const { return _serviceNs; }

    /** Attach transaction/fault/byte counters + service latency. */
    void attachStats(sim::StatSet &set);

  private:
    C1Params _params;
    PasidRegistry &_pasids;
    mem::Dram &_dram;
    sim::Tick _nextFree = 0;
    sim::Counter _txns;
    sim::Counter _faults;
    sim::Counter _bytes;
    sim::QuantileSketch _serviceNs;
};

} // namespace tf::ocapi

#endif // TF_OCAPI_C1_MASTER_HH
