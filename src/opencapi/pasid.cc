#include "opencapi/pasid.hh"

#include <algorithm>

namespace tf::ocapi {

Pasid
PasidRegistry::allocate()
{
    Pasid p = _next++;
    _live.push_back(p);
    return p;
}

bool
PasidRegistry::registerRegion(Pasid pasid, mem::Addr base,
                              std::uint64_t size)
{
    if (std::find(_live.begin(), _live.end(), pasid) == _live.end())
        return false;
    if (size == 0)
        return false;

    // Overlap check against neighbours in the ordered map.
    auto next = _regions.lower_bound(base);
    if (next != _regions.end() && base + size > next->second.base)
        return false;
    if (next != _regions.begin()) {
        auto prev = std::prev(next);
        if (prev->second.base + prev->second.size > base)
            return false;
    }

    _regions.emplace(base, PinnedRegion{pasid, base, size});
    return true;
}

bool
PasidRegistry::unregisterRegion(Pasid pasid, mem::Addr base)
{
    auto it = _regions.find(base);
    if (it == _regions.end() || it->second.pasid != pasid)
        return false;
    _regions.erase(it);
    return true;
}

void
PasidRegistry::release(Pasid pasid)
{
    for (auto it = _regions.begin(); it != _regions.end();) {
        if (it->second.pasid == pasid)
            it = _regions.erase(it);
        else
            ++it;
    }
    _live.erase(std::remove(_live.begin(), _live.end(), pasid),
                _live.end());
}

std::optional<PinnedRegion>
PasidRegistry::lookup(mem::Addr addr, std::uint64_t len) const
{
    auto it = _regions.upper_bound(addr);
    if (it == _regions.begin())
        return std::nullopt;
    --it;
    if (it->second.contains(addr, len))
        return it->second;
    return std::nullopt;
}

bool
PasidRegistry::authorised(Pasid pasid, mem::Addr addr,
                          std::uint64_t len) const
{
    auto region = lookup(addr, len);
    return region && region->pasid == pasid;
}

} // namespace tf::ocapi
