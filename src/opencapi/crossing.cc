#include "opencapi/crossing.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace tf::ocapi {

CrossingStage::CrossingStage(std::string name, sim::EventQueue &eq,
                             CrossingParams params)
    : SimObject(std::move(name), eq), _params(params)
{
}

std::uint32_t
CrossingStage::wireBytes(const mem::MemTxn &txn)
{
    return mem::flitCount(txn) * 32;
}

void
CrossingStage::push(mem::TxnPtr txn)
{
    TF_ASSERT(_out != nullptr, "%s: crossing stage not connected",
              name().c_str());

    sim::Tick ser = 0;
    if (_params.bandwidthBps > 0) {
        double secs = static_cast<double>(wireBytes(*txn)) /
                      _params.bandwidthBps;
        ser = sim::seconds(secs);
    }
    sim::Tick start = std::max(now(), _nextFree);
    _nextFree = start + ser;
    sim::Tick deliver = start + ser + _params.latency;

    _items.inc();
    _bytes.inc(wireBytes(*txn));
    _latencyNs.add(sim::toNs(deliver - now()));
    if (_traceStage != sim::trace::Stage::None &&
        txn->traceId != sim::trace::noTrace) {
        auto &tb = eventQueue().trace();
        tb.begin(now(), txn->traceId, _traceStage);
        tb.end(deliver, txn->traceId, _traceStage);
    }
    auto forward = [this, txn = std::move(txn)]() mutable {
        _out(std::move(txn));
    };
    if (_channel != nullptr)
        _channel->send(deliver, std::move(forward));
    else
        after(deliver - now(), std::move(forward));
}

void
CrossingStage::bindChannel(sim::par::LinkChannel *channel)
{
    TF_ASSERT(channel == nullptr ||
                  channel->minLatency() <= _params.latency,
              "%s: channel lookahead %llu exceeds stage latency %llu",
              name().c_str(),
              (unsigned long long)channel->minLatency(),
              (unsigned long long)_params.latency);
    _channel = channel;
}

void
CrossingStage::attachStats(sim::StatSet &set)
{
    set.attach("items", _items, "txns");
    set.attach("bytes", _bytes, "bytes");
    set.attach("latencyNs", _latencyNs, "ns",
               "queueing + serialisation + fixed crossing latency");
}

} // namespace tf::ocapi
