/**
 * @file
 * Pipelined latency/bandwidth stages.
 *
 * The prototype's flit round trip costs ~950 ns: four FPGA-stack
 * crossings plus six serDES crossings (Section V). Each crossing is a
 * CrossingStage: fixed latency plus byte serialisation at the stage's
 * rate. Stages are pipelined -- concurrent transactions overlap their
 * latencies and only contend on serialisation -- which is what lets the
 * prototype reach wire-rate bandwidth despite the ~1 us RTT.
 */

#ifndef TF_OCAPI_CROSSING_HH
#define TF_OCAPI_CROSSING_HH

#include <functional>

#include "mem/transaction.hh"
#include "sim/parallel/engine.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"

namespace tf::ocapi {

struct CrossingParams
{
    /** Fixed pipeline latency per item. */
    sim::Tick latency = 0;
    /** Serialisation rate in bytes per second (0 = infinite). */
    double bandwidthBps = 0;
};

/** One pipelined crossing (serDES, FPGA-stack hop, wire). */
class CrossingStage : public sim::SimObject
{
  public:
    using OutFn = std::function<void(mem::TxnPtr)>;

    CrossingStage(std::string name, sim::EventQueue &eq,
                  CrossingParams params);

    /** Connect the downstream consumer. */
    void connect(OutFn out) { _out = std::move(out); }

    /**
     * Route deliveries through a cross-LP channel: the downstream
     * consumer then runs on the channel's destination LP. Use when
     * this crossing is the partition boundary of a parallel run (an
     * OpenCAPI wire between nodes). The channel's lookahead must not
     * exceed this stage's fixed latency. Pass nullptr to unbind.
     */
    void bindChannel(sim::par::LinkChannel *channel);

    /** Accept a transaction; delivers downstream after the delay. */
    void push(mem::TxnPtr txn);

    /** Bytes this stage charges for a transaction (header + payload). */
    static std::uint32_t wireBytes(const mem::MemTxn &txn);

    std::uint64_t itemsForwarded() const { return _items.value(); }
    std::uint64_t bytesForwarded() const { return _bytes.value(); }
    const CrossingParams &params() const { return _params; }

    /** Per-item crossing latency (queueing + serialisation + fixed). */
    const sim::QuantileSketch &latencyNs() const { return _latencyNs; }

    /** Attach item/byte counters and the latency sketch. */
    void attachStats(sim::StatSet &set);

    /**
     * Tag the stage for causal tracing: traced transactions open a
     * span named after @p stage on push and close it at the delivery
     * tick. Both edges are recorded at push time on this stage's own
     * LP, so channel-bound crossings never write a remote buffer.
     */
    void setTraceStage(sim::trace::Stage stage) { _traceStage = stage; }

  private:
    CrossingParams _params;
    OutFn _out;
    sim::par::LinkChannel *_channel = nullptr;
    sim::trace::Stage _traceStage = sim::trace::Stage::None;
    sim::Tick _nextFree = 0;
    sim::Counter _items;
    sim::Counter _bytes;
    sim::QuantileSketch _latencyNs;
};

} // namespace tf::ocapi

#endif // TF_OCAPI_CROSSING_HH
