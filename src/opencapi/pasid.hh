/**
 * @file
 * Process Address Space ID registry.
 *
 * The memory-stealing process pins donor memory and registers its PASID
 * with the endpoint hardware (Section IV-A2); the C1-mode master may
 * then issue cache-coherent transactions only into effective-address
 * regions registered under a valid PASID.
 */

#ifndef TF_OCAPI_PASID_HH
#define TF_OCAPI_PASID_HH

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "mem/addr.hh"

namespace tf::ocapi {

using Pasid = std::uint32_t;
constexpr Pasid invalidPasid = 0;

/** One pinned effective-address region owned by a PASID. */
struct PinnedRegion
{
    Pasid pasid = invalidPasid;
    mem::Addr base = 0;
    std::uint64_t size = 0;

    bool
    contains(mem::Addr addr, std::uint64_t len) const
    {
        return addr >= base && addr + len <= base + size;
    }
};

class PasidRegistry
{
  public:
    /** Allocate a fresh PASID. */
    Pasid allocate();

    /**
     * Register a pinned region under @p pasid.
     * @return false if the pasid is unknown or the region overlaps an
     *         existing registration.
     */
    bool registerRegion(Pasid pasid, mem::Addr base, std::uint64_t size);

    /** Drop one region (exact base match). */
    bool unregisterRegion(Pasid pasid, mem::Addr base);

    /** Release a PASID and all its regions. */
    void release(Pasid pasid);

    /** Find the region covering [addr, addr+len), if any. */
    std::optional<PinnedRegion> lookup(mem::Addr addr,
                                       std::uint64_t len) const;

    /** True if the access is covered by a region of this pasid. */
    bool authorised(Pasid pasid, mem::Addr addr, std::uint64_t len) const;

    std::size_t regionCount() const { return _regions.size(); }

  private:
    Pasid _next = 1;
    std::vector<Pasid> _live;
    // key: region base address; regions are non-overlapping.
    std::map<mem::Addr, PinnedRegion> _regions;
};

} // namespace tf::ocapi

#endif // TF_OCAPI_PASID_HH
