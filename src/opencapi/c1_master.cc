#include "opencapi/c1_master.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace tf::ocapi {

C1Master::C1Master(std::string name, sim::EventQueue &eq, C1Params params,
                   PasidRegistry &pasids, mem::Dram &hostDram)
    : SimObject(std::move(name), eq), _params(params), _pasids(pasids),
      _dram(hostDram)
{
}

void
C1Master::master(Pasid pasid, mem::TxnPtr txn, DoneFn done)
{
    TF_ASSERT(mem::isRequest(txn->type), "C1 master got a response");

    eventQueue().trace().begin(now(), txn->traceId,
                               sim::trace::Stage::C1);
    if (!_pasids.authorised(pasid, txn->addr, txn->size)) {
        _faults.inc();
        sim::warn("%s: C1 fault: pasid %u addr %#llx size %u",
                  name().c_str(), pasid,
                  (unsigned long long)txn->addr, txn->size);
        txn->makeResponse();
        txn->data.clear();
        txn->error = true;
        eventQueue().trace().end(now(), txn->traceId,
                                 sim::trace::Stage::C1);
        done(std::move(txn));
        return;
    }

    _txns.inc();
    _bytes.inc(txn->size);
    // C1 command pipeline: per-txn overhead + payload serialisation.
    double ser_secs =
        static_cast<double>(txn->size) / _params.rawBandwidthBps;
    sim::Tick service = _params.perTxnOverhead + sim::seconds(ser_secs);
    sim::Tick start = std::max(now(), _nextFree);
    _nextFree = start + service;

    sim::Tick accepted = now();
    after(_nextFree - now(),
          [this, txn = std::move(txn), done = std::move(done),
           accepted]() mutable {
              _dram.access(std::move(txn),
                           [this, done = std::move(done),
                            accepted](mem::TxnPtr resp) {
                               _serviceNs.add(
                                   sim::toNs(now() - accepted));
                               eventQueue().trace().end(
                                   now(), resp->traceId,
                                   sim::trace::Stage::C1);
                               done(std::move(resp));
                           });
          });
}

void
C1Master::attachStats(sim::StatSet &set)
{
    set.attach("txns", _txns, "txns");
    set.attach("faults", _faults, "txns",
               "PASID authorisation failures");
    set.attach("bytes", _bytes, "bytes");
    set.attach("serviceNs", _serviceNs, "ns",
               "C1 command accept to DRAM completion");
}

} // namespace tf::ocapi
