/**
 * @file
 * OpenCAPI M1-mode address window.
 *
 * In M1 (memory controller) mode the firmware assigns the device a
 * portion of the host real address space; cacheline transactions whose
 * real address falls in the window are steered to the device, which
 * sees them in its internal address space starting at 0x0 (Fig. 3).
 */

#ifndef TF_OCAPI_M1_WINDOW_HH
#define TF_OCAPI_M1_WINDOW_HH

#include "mem/addr.hh"
#include "sim/logging.hh"

namespace tf::ocapi {

struct M1Window
{
    mem::Addr base = 0;
    std::uint64_t size = 0;

    bool
    contains(mem::Addr real, std::uint64_t len = 1) const
    {
        return real >= base && real + len <= base + size;
    }

    /** Host real address -> device-internal address (starts at 0x0). */
    mem::Addr
    toInternal(mem::Addr real) const
    {
        TF_ASSERT(contains(real), "address outside M1 window");
        return real - base;
    }

    /** Device-internal address -> host real address. */
    mem::Addr
    toReal(mem::Addr internal) const
    {
        TF_ASSERT(internal < size, "internal address outside window");
        return base + internal;
    }
};

} // namespace tf::ocapi

#endif // TF_OCAPI_M1_WINDOW_HH
