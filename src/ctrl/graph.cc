#include "ctrl/graph.hh"

#include <algorithm>
#include <deque>

#include "sim/logging.hh"

namespace tf::ctrl {

VertexId
PropertyGraph::addVertex(VertexType type, std::string name)
{
    VertexId id = _nextVertex++;
    _vertices[id] = Vertex{id, type, std::move(name), {}};
    _adjacency[id];
    return id;
}

EdgeId
PropertyGraph::addEdge(VertexId a, VertexId b, double capacityGbps)
{
    TF_ASSERT(_vertices.count(a) && _vertices.count(b),
              "edge references unknown vertex");
    EdgeId id = _nextEdge++;
    _edges[id] = Edge{id, a, b, capacityGbps, 0};
    _adjacency[a].push_back(id);
    _adjacency[b].push_back(id);
    return id;
}

void
PropertyGraph::removeEdge(EdgeId e)
{
    auto it = _edges.find(e);
    if (it == _edges.end())
        return;
    for (VertexId v : {it->second.a, it->second.b}) {
        auto &adj = _adjacency[v];
        adj.erase(std::remove(adj.begin(), adj.end(), e), adj.end());
    }
    _edges.erase(it);
}

void
PropertyGraph::removeVertex(VertexId v)
{
    auto it = _adjacency.find(v);
    if (it == _adjacency.end())
        return;
    std::vector<EdgeId> incident = it->second;
    for (EdgeId e : incident)
        removeEdge(e);
    _adjacency.erase(v);
    _vertices.erase(v);
}

const Vertex &
PropertyGraph::vertex(VertexId v) const
{
    auto it = _vertices.find(v);
    TF_ASSERT(it != _vertices.end(), "unknown vertex");
    return it->second;
}

Vertex &
PropertyGraph::vertex(VertexId v)
{
    auto it = _vertices.find(v);
    TF_ASSERT(it != _vertices.end(), "unknown vertex");
    return it->second;
}

const Edge &
PropertyGraph::edge(EdgeId e) const
{
    auto it = _edges.find(e);
    TF_ASSERT(it != _edges.end(), "unknown edge");
    return it->second;
}

void
PropertyGraph::setEdgeUp(EdgeId e, bool up)
{
    auto it = _edges.find(e);
    TF_ASSERT(it != _edges.end(), "unknown edge");
    it->second.up = up;
}

std::optional<VertexId>
PropertyGraph::findByName(const std::string &name) const
{
    for (const auto &[id, v] : _vertices)
        if (v.name == name)
            return id;
    return std::nullopt;
}

std::vector<std::pair<EdgeId, VertexId>>
PropertyGraph::neighbours(VertexId v) const
{
    std::vector<std::pair<EdgeId, VertexId>> out;
    auto it = _adjacency.find(v);
    if (it == _adjacency.end())
        return out;
    for (EdgeId e : it->second) {
        const Edge &edge = _edges.at(e);
        out.emplace_back(e, edge.a == v ? edge.b : edge.a);
    }
    return out;
}

std::optional<Path>
PropertyGraph::findPath(VertexId from, VertexId to, double demandGbps,
                        const std::vector<EdgeId> *exclude) const
{
    if (!_vertices.count(from) || !_vertices.count(to))
        return std::nullopt;

    auto excluded = [&](EdgeId e) {
        return exclude != nullptr &&
               std::find(exclude->begin(), exclude->end(), e) !=
                   exclude->end();
    };

    // BFS for the fewest-hops path over edges with enough free
    // capacity ("best available path").
    std::map<VertexId, std::pair<VertexId, EdgeId>> parent;
    std::deque<VertexId> frontier{from};
    parent[from] = {from, 0};
    while (!frontier.empty()) {
        VertexId v = frontier.front();
        frontier.pop_front();
        if (v == to)
            break;
        for (const auto &[e, next] : neighbours(v)) {
            if (excluded(e))
                continue;
            const Edge &cand = _edges.at(e);
            if (!cand.up || cand.free() < demandGbps)
                continue;
            if (parent.count(next))
                continue;
            parent[next] = {v, e};
            frontier.push_back(next);
        }
    }
    if (!parent.count(to))
        return std::nullopt;

    Path path;
    for (VertexId v = to; v != from; v = parent[v].first) {
        path.vertices.push_back(v);
        path.edges.push_back(parent[v].second);
    }
    path.vertices.push_back(from);
    std::reverse(path.vertices.begin(), path.vertices.end());
    std::reverse(path.edges.begin(), path.edges.end());
    return path;
}

void
PropertyGraph::reserve(const Path &path, double demandGbps)
{
    for (EdgeId e : path.edges) {
        Edge &edge = _edges.at(e);
        TF_ASSERT(edge.free() >= demandGbps,
                  "reservation exceeds edge capacity");
        edge.reservedGbps += demandGbps;
    }
}

void
PropertyGraph::release(const Path &path, double demandGbps)
{
    for (EdgeId e : path.edges) {
        auto it = _edges.find(e);
        if (it == _edges.end())
            continue;
        it->second.reservedGbps =
            std::max(0.0, it->second.reservedGbps - demandGbps);
    }
}

} // namespace tf::ctrl
