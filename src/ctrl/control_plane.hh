/**
 * @file
 * Software-defined control plane (Section IV-C).
 *
 * Responsibilities, as in the paper: i) system state maintenance (the
 * property graph), ii) configuration of endpoints via the trusted
 * host agents, iii) a system access interface (a REST-style command
 * handler), and iv) security and access control (per-user tokens with
 * roles; agents only accept the control plane's token).
 *
 * For each allocation request the control plane traverses the graph
 * for the best available path(s) between the compute and
 * memory-stealing endpoints, reserves their resources, and pushes the
 * resulting configuration to the agents on both hosts.
 */

#ifndef TF_CTRL_CONTROL_PLANE_HH
#define TF_CTRL_CONTROL_PLANE_HH

#include <map>
#include <optional>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "agent/agent.hh"
#include "ctrl/graph.hh"
#include "sim/event_queue.hh"
#include "sim/fault/fault.hh"
#include "sim/stats.hh"

namespace tf::ctrl {

enum class Role { Admin, Observer };

/** A composed disaggregated-memory allocation. */
struct AllocationRecord
{
    std::uint64_t id = 0;
    std::string computeHost;
    std::string donorHost;
    agent::Donation donation;
    agent::Attachment attachment;
    std::vector<Path> paths; ///< reserved network paths (1 per channel)
    /** Channel index carried by paths[i] (kept in lockstep). */
    std::vector<int> channels;
    /** Channel count originally requested; repair grows back to it. */
    int channelsWanted = 0;
    double demandGbpsPerPath = 0;
    flow::Datapath *datapath = nullptr;
};

class ControlPlane
{
  public:
    /** @param agentToken shared secret pushed to trusted agents. */
    explicit ControlPlane(std::string agentToken);

    const std::string &agentToken() const { return _agentToken; }

    // ------------------------- users / ACL -------------------------

    void addUser(const std::string &userToken, Role role);
    bool isAuthorised(const std::string &userToken, Role needed) const;

    // --------------------- topology registration -------------------

    /** Register a host (both roles); creates its endpoint vertices. */
    void registerHost(const std::string &name, agent::Agent &agent,
                      os::MemoryManager &mm);

    /**
     * Register a point-to-point datapath between two registered
     * hosts; creates transceiver vertices and 100 Gb/s link edges,
     * one per channel.
     */
    void registerDatapath(const std::string &computeHost,
                          const std::string &donorHost,
                          flow::Datapath &datapath);

    const PropertyGraph &graph() const { return _graph; }

    // --------------------------- operations ------------------------

    /**
     * Compose disaggregated memory: steal @p bytes on the donor,
     * reserve @p channelsWanted network paths, configure the
     * endpoints, and hotplug the memory into @p numaNode on the
     * compute host.
     * @return the allocation id, or nullopt (no capacity / memory /
     *         permission).
     */
    std::optional<std::uint64_t>
    allocate(const std::string &userToken,
             const std::string &computeHost,
             const std::string &donorHost, std::uint64_t bytes,
             os::NodeId numaNode, int channelsWanted = 1,
             os::NodeId donorNode = 0);

    /** Tear an allocation down and release every resource. */
    bool deallocate(const std::string &userToken, std::uint64_t id);

    const AllocationRecord *allocation(std::uint64_t id) const;
    std::size_t allocationCount() const { return _allocations.size(); }

    // ------------------------ failure repair ------------------------

    /**
     * Enable hold-down for flapping channels: a channel reporting
     * back up is only re-admitted (edge up + allocations regrown)
     * after a quarantine of base << (flaps - 1), capped at @p max.
     * A re-flap during the quarantine cancels the pending
     * re-admission and doubles the next one, so a flap storm costs
     * one repair per down instead of a repair/regrow pair per cycle.
     * base = 0 (the default, no event queue bound) keeps the legacy
     * behaviour: synchronous re-admission on the up event.
     */
    void setHoldDown(sim::EventQueue &eq, sim::Tick base, sim::Tick max);

    /**
     * Fault injection: control-plane outage. Link events arriving in
     * the next @p duration ticks are deferred (FIFO) and processed
     * when the outage lifts. Requires setHoldDown's event queue; a
     * plane with no queue bound ignores the outage.
     */
    void controlOutage(sim::Tick duration);

    /** Register the "<name>" ControlOutage fault point. */
    void registerFaultPoints(sim::fault::Registry &reg,
                             const std::string &name);

    /** Successful path repairs (replacement channel found + pushed). */
    std::uint64_t repairs() const { return _repairs.value(); }
    /** Allocations degraded to fewer channels (no spare capacity). */
    std::uint64_t degrades() const { return _degrades.value(); }
    /** Allocations torn down after losing every channel. */
    std::uint64_t teardowns() const { return _teardowns.value(); }
    /** Allocations regrown to their wanted width after recovery. */
    std::uint64_t regrows() const { return _regrows.value(); }
    /** Channel re-admissions delayed by the hold-down. */
    std::uint64_t holdDowns() const { return _holdDowns.value(); }
    /** Link events deferred by control-plane outages. */
    std::uint64_t deferredLinkEvents() const
    {
        return _deferredEvents.value();
    }

    /** Attach the repair-ladder outcome counters for telemetry. */
    void attachStats(sim::StatSet &set);

    // ----------------------- REST-style access ---------------------

    struct HttpResponse
    {
        int status = 200;
        std::string body;
    };

    /**
     * Handle a REST-style request:
     *   POST /flows    body: compute=H donor=H bytes=N numa=N
     *                        channels=N [donor_node=N]
     *   DELETE /flows/<id>
     *   GET /flows | GET /flows/<id> | GET /topology
     * Mutations need an Admin token; reads need any known token.
     */
    HttpResponse handleRequest(const std::string &userToken,
                               const std::string &method,
                               const std::string &path,
                               const std::string &body = "");

  private:
    struct HostInfo
    {
        agent::Agent *agent = nullptr;
        os::MemoryManager *mm = nullptr;
        VertexId computeEp = 0;
        VertexId memoryEp = 0;
    };

    struct DatapathInfo
    {
        flow::Datapath *datapath = nullptr;
        std::string computeHost;
        std::string donorHost;
        /** channel index -> link edge id. */
        std::vector<EdgeId> channelEdges;
    };

    std::string _agentToken;
    std::map<std::string, Role> _users;
    PropertyGraph _graph;
    std::map<std::string, HostInfo> _hosts;
    std::vector<DatapathInfo> _datapaths;
    std::map<std::uint64_t, AllocationRecord> _allocations;
    std::uint64_t _nextAllocation = 1;
    sim::Counter _repairs;
    sim::Counter _degrades;
    sim::Counter _teardowns;
    sim::Counter _regrows;
    sim::Counter _holdDowns;
    sim::Counter _outages;
    sim::Counter _deferredEvents;

    /** Per-(datapath, channel) flap-tracking state for the hold-down. */
    struct ChannelHealth
    {
        std::uint32_t flapCount = 0;
        sim::EventQueue::EventId readmit =
            sim::EventQueue::invalidEvent;
    };

    sim::EventQueue *_eq = nullptr;
    sim::Tick _holdDownBase = 0;
    sim::Tick _holdDownMax = 0;
    std::map<std::pair<std::size_t, std::size_t>, ChannelHealth>
        _chHealth;
    /** Outage window end; link events before it are deferred. */
    sim::Tick _outageUntil = 0;
    std::vector<std::tuple<std::size_t, std::size_t, bool>> _deferred;

    DatapathInfo *findDatapath(const std::string &computeHost,
                               const std::string &donorHost);
    void onLinkEvent(std::size_t dpIndex, std::size_t channel,
                     bool down);
    void processLinkEvent(std::size_t dpIndex, std::size_t channel,
                          bool down);
    void readmitChannel(std::size_t dpIndex, std::size_t channel);
    void repairAllocation(AllocationRecord &rec,
                          const DatapathInfo &dpi, std::size_t channel);
    void growAllocation(AllocationRecord &rec, const DatapathInfo &dpi);
    void forceTeardown(std::uint64_t id);
    void pushRoute(AllocationRecord &rec);
    std::vector<int> channelsFromPaths(const DatapathInfo &dpi,
                                       const std::vector<Path> &paths)
        const;
    static std::map<std::string, std::string>
    parseBody(const std::string &body);
};

} // namespace tf::ctrl

#endif // TF_CTRL_CONTROL_PLANE_HH
