#include "ctrl/control_plane.hh"

#include <algorithm>
#include <sstream>

#include "sim/logging.hh"

namespace tf::ctrl {

namespace {
/** Soft per-flow reservation on a shared 100 Gb/s channel. */
constexpr double kFlowDemandGbps = 25.0;
} // namespace

ControlPlane::ControlPlane(std::string agentToken)
    : _agentToken(std::move(agentToken))
{
}

void
ControlPlane::addUser(const std::string &userToken, Role role)
{
    _users[userToken] = role;
}

bool
ControlPlane::isAuthorised(const std::string &userToken,
                           Role needed) const
{
    auto it = _users.find(userToken);
    if (it == _users.end())
        return false;
    if (needed == Role::Admin)
        return it->second == Role::Admin;
    return true;
}

void
ControlPlane::registerHost(const std::string &name, agent::Agent &agent,
                           os::MemoryManager &mm)
{
    TF_ASSERT(!_hosts.count(name), "host %s already registered",
              name.c_str());
    HostInfo info;
    info.agent = &agent;
    info.mm = &mm;
    info.computeEp = _graph.addVertex(VertexType::ComputeEndpoint,
                                      name + ".computeEp");
    info.memoryEp =
        _graph.addVertex(VertexType::MemoryEndpoint, name + ".memoryEp");
    _hosts[name] = info;
}

void
ControlPlane::registerDatapath(const std::string &computeHost,
                               const std::string &donorHost,
                               flow::Datapath &datapath)
{
    TF_ASSERT(_hosts.count(computeHost) && _hosts.count(donorHost),
              "datapath references unregistered hosts");
    DatapathInfo info;
    info.datapath = &datapath;
    info.computeHost = computeHost;
    info.donorHost = donorHost;

    const HostInfo &chost = _hosts[computeHost];
    const HostInfo &dhost = _hosts[donorHost];
    double channel_gbps =
        datapath.params().channelBps * 8.0 / 1e9; // 100 Gb/s

    for (std::size_t ch = 0; ch < datapath.channelCount(); ++ch) {
        std::string suffix = "." + computeHost + "-" + donorHost +
                             ".ch" + std::to_string(ch);
        VertexId tx_c = _graph.addVertex(VertexType::Transceiver,
                                         "tx.compute" + suffix);
        VertexId tx_d = _graph.addVertex(VertexType::Transceiver,
                                         "tx.donor" + suffix);
        _graph.vertex(tx_c).props["channel"] = std::to_string(ch);
        _graph.vertex(tx_d).props["channel"] = std::to_string(ch);
        // Endpoint-to-transceiver hops have the host-link capacity.
        _graph.addEdge(chost.computeEp, tx_c, 200.0);
        EdgeId link = _graph.addEdge(tx_c, tx_d, channel_gbps);
        _graph.addEdge(tx_d, dhost.memoryEp, 200.0);
        info.channelEdges.push_back(link);
    }
    std::size_t dpIndex = _datapaths.size();
    _datapaths.push_back(std::move(info));

    // The control plane watches the datapath's health (via the host
    // agents' monitoring duty) and repairs allocations on transitions.
    _hosts[computeHost].agent->watchDatapath(datapath);
    datapath.addLinkListener(
        [this, dpIndex](const flow::Datapath::LinkEvent &ev) {
            onLinkEvent(dpIndex, ev.channel, ev.down);
        });
}

ControlPlane::DatapathInfo *
ControlPlane::findDatapath(const std::string &computeHost,
                           const std::string &donorHost)
{
    for (auto &dpi : _datapaths)
        if (dpi.computeHost == computeHost &&
            dpi.donorHost == donorHost)
            return &dpi;
    return nullptr;
}

std::vector<int>
ControlPlane::channelsFromPaths(const DatapathInfo &dpi,
                                const std::vector<Path> &paths) const
{
    std::vector<int> channels;
    for (const Path &p : paths) {
        for (EdgeId e : p.edges) {
            for (std::size_t ch = 0; ch < dpi.channelEdges.size();
                 ++ch) {
                if (dpi.channelEdges[ch] == e)
                    channels.push_back(static_cast<int>(ch));
            }
        }
    }
    return channels;
}

std::optional<std::uint64_t>
ControlPlane::allocate(const std::string &userToken,
                       const std::string &computeHost,
                       const std::string &donorHost,
                       std::uint64_t bytes, os::NodeId numaNode,
                       int channelsWanted, os::NodeId donorNode)
{
    if (!isAuthorised(userToken, Role::Admin))
        return std::nullopt;
    if (!_hosts.count(computeHost) || !_hosts.count(donorHost))
        return std::nullopt;
    DatapathInfo *dpi = findDatapath(computeHost, donorHost);
    if (dpi == nullptr)
        return std::nullopt;

    const HostInfo &chost = _hosts[computeHost];
    const HostInfo &dhost = _hosts[donorHost];

    // 1. Find and reserve the network paths (disjoint per channel).
    std::vector<Path> paths;
    std::vector<EdgeId> used;
    for (int i = 0; i < channelsWanted; ++i) {
        auto path = _graph.findPath(chost.computeEp, dhost.memoryEp,
                                    kFlowDemandGbps, &used);
        if (!path) {
            for (const Path &p : paths)
                _graph.release(p, kFlowDemandGbps);
            return std::nullopt;
        }
        _graph.reserve(*path, kFlowDemandGbps);
        used.insert(used.end(), path->edges.begin(),
                    path->edges.end());
        paths.push_back(std::move(*path));
    }
    std::vector<int> channels = channelsFromPaths(*dpi, paths);
    if (channels.size() != static_cast<std::size_t>(channelsWanted)) {
        for (const Path &p : paths)
            _graph.release(p, kFlowDemandGbps);
        return std::nullopt;
    }

    // 2. Donor side: steal + pin the memory.
    auto donation =
        dhost.agent->stealMemory(_agentToken, bytes, donorNode);
    if (!donation) {
        for (const Path &p : paths)
            _graph.release(p, kFlowDemandGbps);
        return std::nullopt;
    }

    // 3. Compute side: program the endpoint and hotplug the memory.
    auto attachment = chost.agent->attachMemory(
        _agentToken, *dpi->datapath, *donation, numaNode, channels);
    if (!attachment) {
        dhost.agent->releaseDonation(_agentToken, *donation);
        for (const Path &p : paths)
            _graph.release(p, kFlowDemandGbps);
        return std::nullopt;
    }

    AllocationRecord rec;
    rec.id = _nextAllocation++;
    rec.computeHost = computeHost;
    rec.donorHost = donorHost;
    rec.donation = *donation;
    rec.attachment = *attachment;
    rec.paths = std::move(paths);
    rec.channels = std::move(channels);
    rec.channelsWanted = channelsWanted;
    rec.demandGbpsPerPath = kFlowDemandGbps;
    rec.datapath = dpi->datapath;
    std::uint64_t id = rec.id;
    _allocations[id] = std::move(rec);
    return id;
}

bool
ControlPlane::deallocate(const std::string &userToken, std::uint64_t id)
{
    if (!isAuthorised(userToken, Role::Admin))
        return false;
    auto it = _allocations.find(id);
    if (it == _allocations.end())
        return false;
    AllocationRecord &rec = it->second;

    agent::Agent *cagent = _hosts[rec.computeHost].agent;
    agent::Agent *dagent = _hosts[rec.donorHost].agent;
    if (!cagent->detachMemory(_agentToken, *rec.datapath,
                              rec.attachment))
        return false; // pages in use; caller must drain first
    dagent->releaseDonation(_agentToken, rec.donation);
    for (const Path &p : rec.paths)
        _graph.release(p, rec.demandGbpsPerPath);
    _allocations.erase(it);
    return true;
}

void
ControlPlane::setHoldDown(sim::EventQueue &eq, sim::Tick base,
                          sim::Tick max)
{
    _eq = &eq;
    _holdDownBase = base;
    _holdDownMax = std::max(base, max);
}

void
ControlPlane::controlOutage(sim::Tick duration)
{
    if (_eq == nullptr || duration == 0)
        return;
    _outages.inc();
    _outageUntil = std::max(_outageUntil, _eq->now() + duration);
    _eq->scheduleIn(duration, [this]() {
        if (_outageUntil > _eq->now())
            return; // a later outage extended the window
        // Catch up on everything that happened while we were away,
        // in arrival order.
        auto deferred = std::move(_deferred);
        _deferred.clear();
        for (const auto &[dp, ch, down] : deferred)
            processLinkEvent(dp, ch, down);
    });
}

void
ControlPlane::registerFaultPoints(sim::fault::Registry &reg,
                                  const std::string &name)
{
    reg.add(name, sim::fault::kindBit(sim::fault::Kind::ControlOutage),
            [this](const sim::fault::Event &ev) {
                controlOutage(ev.duration);
            });
}

void
ControlPlane::onLinkEvent(std::size_t dpIndex, std::size_t channel,
                          bool down)
{
    TF_ASSERT(dpIndex < _datapaths.size(), "link event from unknown dp");
    TF_ASSERT(channel < _datapaths[dpIndex].channelEdges.size(),
              "link event for unknown channel");
    if (_eq != nullptr && _outageUntil > _eq->now()) {
        // Control-plane outage: the event is noted but not acted on
        // until the plane comes back. The datapath has already masked
        // its own routing, so traffic safety does not depend on us.
        _deferredEvents.inc();
        _deferred.emplace_back(dpIndex, channel, down);
        return;
    }
    processLinkEvent(dpIndex, channel, down);
}

void
ControlPlane::processLinkEvent(std::size_t dpIndex, std::size_t channel,
                               bool down)
{
    const DatapathInfo &dpi = _datapaths[dpIndex];
    ChannelHealth &health = _chHealth[{dpIndex, channel}];

    if (!down) {
        if (_holdDownBase == 0 || _eq == nullptr) {
            // Legacy behaviour: re-admit synchronously.
            health.flapCount = 0;
            readmitChannel(dpIndex, channel);
            return;
        }
        // Hold-down: quarantine the returning channel with bounded
        // exponential backoff before trusting it again.
        std::uint32_t flaps = health.flapCount > 0
                                  ? health.flapCount - 1
                                  : 0;
        sim::Tick delay = _holdDownBase
                          << std::min<std::uint32_t>(flaps, 20);
        delay = std::min(delay, _holdDownMax);
        _holdDowns.inc();
        if (health.readmit != sim::EventQueue::invalidEvent)
            _eq->deschedule(health.readmit);
        health.readmit =
            _eq->scheduleIn(delay, [this, dpIndex, channel]() {
                ChannelHealth &h = _chHealth[{dpIndex, channel}];
                h.readmit = sim::EventQueue::invalidEvent;
                h.flapCount = 0; // survived the quarantine
                readmitChannel(dpIndex, channel);
            });
        return;
    }

    // Channel down. A pending re-admission is moot now; cancelling it
    // is what keeps a flap storm from double-counting regrows.
    ++health.flapCount;
    if (health.readmit != sim::EventQueue::invalidEvent) {
        _eq->deschedule(health.readmit);
        health.readmit = sim::EventQueue::invalidEvent;
    }

    // i) state maintenance: reflect the link health in the graph.
    _graph.setEdgeUp(dpi.channelEdges[channel], false);

    // ii) repair every allocation riding this datapath. Collect ids
    // first: a teardown erases from _allocations mid-iteration.
    std::vector<std::uint64_t> affected;
    for (const auto &[id, rec] : _allocations)
        if (rec.datapath == dpi.datapath)
            affected.push_back(id);

    for (std::uint64_t id : affected) {
        auto it = _allocations.find(id);
        if (it == _allocations.end())
            continue;
        repairAllocation(it->second, dpi, channel);
    }
}

void
ControlPlane::readmitChannel(std::size_t dpIndex, std::size_t channel)
{
    const DatapathInfo &dpi = _datapaths[dpIndex];
    _graph.setEdgeUp(dpi.channelEdges[channel], true);

    std::vector<std::uint64_t> affected;
    for (const auto &[id, rec] : _allocations)
        if (rec.datapath == dpi.datapath)
            affected.push_back(id);

    for (std::uint64_t id : affected) {
        auto it = _allocations.find(id);
        if (it == _allocations.end())
            continue;
        growAllocation(it->second, dpi);
    }
}

void
ControlPlane::pushRoute(AllocationRecord &rec)
{
    agent::Agent *cagent = _hosts[rec.computeHost].agent;
    cagent->repairRoute(_agentToken, *rec.datapath, rec.attachment,
                        rec.channels);
}

void
ControlPlane::repairAllocation(AllocationRecord &rec,
                               const DatapathInfo &dpi,
                               std::size_t channel)
{
    // Does this allocation use the dead channel at all?
    auto pos = std::find(rec.channels.begin(), rec.channels.end(),
                         static_cast<int>(channel));
    if (pos == rec.channels.end())
        return;
    std::size_t idx =
        static_cast<std::size_t>(pos - rec.channels.begin());

    // Release the dead path's reservation and drop it from the record.
    _graph.release(rec.paths[idx], rec.demandGbpsPerPath);
    rec.paths.erase(rec.paths.begin() + static_cast<std::ptrdiff_t>(idx));
    rec.channels.erase(pos);

    if (rec.channels.empty()) {
        // No surviving channel: search for any replacement before
        // giving up entirely (down edges are skipped automatically).
        const HostInfo &chost = _hosts[rec.computeHost];
        const HostInfo &dhost = _hosts[rec.donorHost];
        auto path = _graph.findPath(chost.computeEp, dhost.memoryEp,
                                    rec.demandGbpsPerPath);
        std::vector<int> mapped;
        if (path)
            mapped = channelsFromPaths(dpi, {*path});
        if (!path || mapped.size() != 1) {
            _teardowns.inc();
            forceTeardown(rec.id);
            return;
        }
        _graph.reserve(*path, rec.demandGbpsPerPath);
        rec.paths.push_back(std::move(*path));
        rec.channels.push_back(mapped.front());
        _repairs.inc();
        pushRoute(rec);
        return;
    }

    // Try to find a replacement path disjoint from the survivors.
    std::vector<EdgeId> used;
    for (const Path &p : rec.paths)
        used.insert(used.end(), p.edges.begin(), p.edges.end());
    const HostInfo &chost = _hosts[rec.computeHost];
    const HostInfo &dhost = _hosts[rec.donorHost];
    auto path = _graph.findPath(chost.computeEp, dhost.memoryEp,
                                rec.demandGbpsPerPath, &used);
    std::vector<int> mapped;
    if (path)
        mapped = channelsFromPaths(dpi, {*path});
    if (path && mapped.size() == 1) {
        _graph.reserve(*path, rec.demandGbpsPerPath);
        rec.paths.push_back(std::move(*path));
        rec.channels.push_back(mapped.front());
        _repairs.inc();
    } else {
        // No spare capacity: run degraded on the surviving channels.
        _degrades.inc();
    }
    pushRoute(rec);
}

void
ControlPlane::growAllocation(AllocationRecord &rec,
                             const DatapathInfo &dpi)
{
    bool grew = false;
    const HostInfo &chost = _hosts[rec.computeHost];
    const HostInfo &dhost = _hosts[rec.donorHost];
    while (rec.channels.size() <
           static_cast<std::size_t>(rec.channelsWanted)) {
        std::vector<EdgeId> used;
        for (const Path &p : rec.paths)
            used.insert(used.end(), p.edges.begin(), p.edges.end());
        auto path = _graph.findPath(chost.computeEp, dhost.memoryEp,
                                    rec.demandGbpsPerPath, &used);
        if (!path)
            break;
        std::vector<int> mapped = channelsFromPaths(dpi, {*path});
        if (mapped.size() != 1)
            break;
        _graph.reserve(*path, rec.demandGbpsPerPath);
        rec.paths.push_back(std::move(*path));
        rec.channels.push_back(mapped.front());
        grew = true;
    }
    if (grew) {
        _regrows.inc();
        pushRoute(rec);
    }
}

void
ControlPlane::forceTeardown(std::uint64_t id)
{
    auto it = _allocations.find(id);
    TF_ASSERT(it != _allocations.end(), "teardown of unknown allocation");
    AllocationRecord &rec = it->second;

    // Every channel is gone: error-complete what is still in flight so
    // the host never hangs, then surprise-remove the hotplugged memory
    // and release every remaining resource.
    rec.datapath->abortFlow(rec.attachment.networkId);
    agent::Agent *cagent = _hosts[rec.computeHost].agent;
    agent::Agent *dagent = _hosts[rec.donorHost].agent;
    bool detached = cagent->detachMemory(_agentToken, *rec.datapath,
                                         rec.attachment, /*force=*/true);
    TF_ASSERT(detached, "forced detach cannot fail");
    dagent->releaseDonation(_agentToken, rec.donation);
    for (const Path &p : rec.paths)
        _graph.release(p, rec.demandGbpsPerPath);
    _allocations.erase(it);
}

void
ControlPlane::attachStats(sim::StatSet &set)
{
    set.attach("repairs", _repairs, "events",
               "path repairs: replacement channel found and pushed");
    set.attach("degrades", _degrades, "events",
               "allocations narrowed to fewer channels");
    set.attach("teardowns", _teardowns, "events",
               "allocations torn down after losing every channel");
    set.attach("regrows", _regrows, "events",
               "allocations regrown to wanted width after recovery");
    set.attach("holdDowns", _holdDowns, "events",
               "channel re-admissions delayed by the hold-down");
    set.attach("outages", _outages, "events",
               "injected control-plane outages");
    set.attach("deferredLinkEvents", _deferredEvents, "events",
               "link events deferred by control-plane outages");
}

const AllocationRecord *
ControlPlane::allocation(std::uint64_t id) const
{
    auto it = _allocations.find(id);
    return it == _allocations.end() ? nullptr : &it->second;
}

std::map<std::string, std::string>
ControlPlane::parseBody(const std::string &body)
{
    std::map<std::string, std::string> out;
    std::istringstream is(body);
    std::string token;
    while (is >> token) {
        auto eq = token.find('=');
        if (eq == std::string::npos)
            continue;
        out[token.substr(0, eq)] = token.substr(eq + 1);
    }
    return out;
}

ControlPlane::HttpResponse
ControlPlane::handleRequest(const std::string &userToken,
                            const std::string &method,
                            const std::string &path,
                            const std::string &body)
{
    bool mutation = method == "POST" || method == "DELETE";
    if (!isAuthorised(userToken,
                      mutation ? Role::Admin : Role::Observer)) {
        return {403, "forbidden"};
    }

    if (method == "GET" && path == "/topology") {
        std::ostringstream os;
        os << "vertices=" << _graph.vertexCount()
           << " edges=" << _graph.edgeCount();
        return {200, os.str()};
    }

    if (method == "GET" && path == "/flows") {
        std::ostringstream os;
        for (const auto &[id, rec] : _allocations) {
            os << "id=" << id << " compute=" << rec.computeHost
               << " donor=" << rec.donorHost
               << " bytes=" << rec.donation.bytes()
               << " channels=" << rec.paths.size() << "\n";
        }
        return {200, os.str()};
    }

    if (method == "GET" && path.rfind("/flows/", 0) == 0) {
        std::uint64_t id = std::stoull(path.substr(7));
        const AllocationRecord *rec = allocation(id);
        if (rec == nullptr)
            return {404, "no such flow"};
        std::ostringstream os;
        os << "id=" << rec->id << " compute=" << rec->computeHost
           << " donor=" << rec->donorHost
           << " bytes=" << rec->donation.bytes()
           << " numa=" << rec->attachment.numaNode;
        return {200, os.str()};
    }

    if (method == "POST" && path == "/flows") {
        auto kv = parseBody(body);
        if (!kv.count("compute") || !kv.count("donor") ||
            !kv.count("bytes") || !kv.count("numa")) {
            return {400, "missing parameter"};
        }
        int channels =
            kv.count("channels") ? std::stoi(kv["channels"]) : 1;
        os::NodeId donor_node =
            kv.count("donor_node") ? std::stoi(kv["donor_node"]) : 0;
        auto id = allocate(userToken, kv["compute"], kv["donor"],
                           std::stoull(kv["bytes"]),
                           std::stoi(kv["numa"]), channels,
                           donor_node);
        if (!id)
            return {409, "allocation failed"};
        return {201, "id=" + std::to_string(*id)};
    }

    if (method == "DELETE" && path.rfind("/flows/", 0) == 0) {
        std::uint64_t id = std::stoull(path.substr(7));
        if (!deallocate(userToken, id))
            return {409, "deallocation failed"};
        return {200, "ok"};
    }

    return {404, "unknown endpoint"};
}

} // namespace tf::ctrl
