/**
 * @file
 * System-state property graph (Section IV-C).
 *
 * The control plane models the system as an undirected graph whose
 * vertices are compute and memory endpoints, the transceivers
 * associated with each endpoint, and switch ports; edges are the
 * possible physical links. For each disaggregated-memory allocation
 * the control plane searches the graph for the best available path
 * and reserves its resources.
 *
 * The paper backs this with JanusGraph; a process-local property
 * graph preserves the observable behaviour (see DESIGN.md).
 */

#ifndef TF_CTRL_GRAPH_HH
#define TF_CTRL_GRAPH_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace tf::ctrl {

using VertexId = std::uint64_t;
using EdgeId = std::uint64_t;

enum class VertexType {
    ComputeEndpoint,
    MemoryEndpoint,
    Transceiver,
    SwitchPort,
};

struct Vertex
{
    VertexId id = 0;
    VertexType type = VertexType::Transceiver;
    std::string name;
    std::map<std::string, std::string> props;
};

struct Edge
{
    EdgeId id = 0;
    VertexId a = 0;
    VertexId b = 0;
    double capacityGbps = 0;
    double reservedGbps = 0;
    /** Health: a down link stays in the graph (it may come back) but
     *  is never picked by findPath. */
    bool up = true;

    double free() const { return capacityGbps - reservedGbps; }
};

/** A reserved end-to-end path: ordered vertices and the edges used. */
struct Path
{
    std::vector<VertexId> vertices;
    std::vector<EdgeId> edges;
};

class PropertyGraph
{
  public:
    VertexId addVertex(VertexType type, std::string name);
    EdgeId addEdge(VertexId a, VertexId b, double capacityGbps);

    void removeVertex(VertexId v); ///< also removes incident edges
    void removeEdge(EdgeId e);

    const Vertex &vertex(VertexId v) const;
    Vertex &vertex(VertexId v);
    const Edge &edge(EdgeId e) const;

    /** Mark a link up/down; down edges are skipped by findPath. */
    void setEdgeUp(EdgeId e, bool up);

    std::optional<VertexId> findByName(const std::string &name) const;

    /** (edge, neighbour) pairs incident to @p v. */
    std::vector<std::pair<EdgeId, VertexId>> neighbours(VertexId v)
        const;

    std::size_t vertexCount() const { return _vertices.size(); }
    std::size_t edgeCount() const { return _edges.size(); }

    /**
     * Shortest (fewest hops) path from @p from to @p to using only
     * edges with at least @p demandGbps free capacity.
     * @param exclude edges that must not be used (e.g. to find a
     *        disjoint second path for channel bonding).
     */
    std::optional<Path> findPath(
        VertexId from, VertexId to, double demandGbps,
        const std::vector<EdgeId> *exclude = nullptr) const;

    /** Reserve @p demandGbps on every edge of @p path. */
    void reserve(const Path &path, double demandGbps);

    /** Release a previous reservation. */
    void release(const Path &path, double demandGbps);

  private:
    std::map<VertexId, Vertex> _vertices;
    std::map<EdgeId, Edge> _edges;
    std::map<VertexId, std::vector<EdgeId>> _adjacency;
    VertexId _nextVertex = 1;
    EdgeId _nextEdge = 1;
};

} // namespace tf::ctrl

#endif // TF_CTRL_GRAPH_HH
