#include "net/switch.hh"

#include <algorithm>
#include <deque>

#include "sim/logging.hh"

namespace tf::net {

FabricLink::FabricLink(std::string name, sim::EventQueue &eq,
                       FabricLinkParams params)
    : SimObject(std::move(name), eq), _params(params)
{
    TF_ASSERT(_params.bandwidthBps > 0,
              "%s: fabric link bandwidth must be positive",
              this->name().c_str());
    TF_ASSERT(_params.latency > 0,
              "%s: fabric link latency must be positive (it is the "
              "conservative engine's lookahead floor)",
              this->name().c_str());
}

void
FabricLink::send(std::uint64_t bytes, sim::Tick extraDelay,
                 sim::EventQueue::Callback delivered)
{
    sim::Tick ser = sim::seconds(static_cast<double>(bytes) /
                                 _params.bandwidthBps);
    sim::Tick ready = now() + extraDelay;
    sim::Tick start = std::max(ready, _nextFree);
    _nextFree = start + ser;
    _messages.inc();
    _bytes.inc(bytes);
    _queueNs.add(sim::toNs(start - ready));
    // Occupancy bookkeeping: a message owns a queue slot from the
    // tick it becomes ready until the port finishes serialising it.
    // High-water is the deepest the port backlog ever got — the
    // timeline surfaces it so trunk oversubscription shows up as a
    // filling queue, not just a worse p99.
    while (!_queued.empty() && _queued.front() <= ready)
        _queued.pop_front();
    _queued.push_back(start + ser);
    if (_queued.size() > _queueHighWater.value())
        _queueHighWater.inc(_queued.size() - _queueHighWater.value());
    _occupancyNs.inc((start - ready) / sim::ticksPerNs);
    sim::Tick deliver = start + ser + _params.latency + spikeNow();
    // Every hop is its own span on the source element's LP: crossing
    // + egress queue + serialisation + wire, begin at ingress.
    auto &tb = eventQueue().trace();
    if (sim::trace::TraceId id = tb.newTrace();
        id != sim::trace::noTrace) {
        tb.begin(now(), id, sim::trace::Stage::SwitchHop);
        tb.end(deliver, id, sim::trace::Stage::SwitchHop);
    }
    if (_channel != nullptr)
        _channel->send(deliver, std::move(delivered));
    else
        after(deliver - now(), std::move(delivered));
}

void
FabricLink::bindChannel(sim::par::LinkChannel *channel)
{
    TF_ASSERT(channel == nullptr ||
                  channel->minLatency() <= _params.latency,
              "%s: channel lookahead %llu exceeds link latency %llu",
              name().c_str(),
              (unsigned long long)channel->minLatency(),
              (unsigned long long)_params.latency);
    _channel = channel;
}

void
FabricLink::spike(sim::Tick extra, sim::Tick duration)
{
    _spikeExtra = std::max(_spikeExtra, extra);
    _spikeUntil = std::max(_spikeUntil, now() + duration);
    _spikes.inc();
    after(duration, [this]() {
        if (now() >= _spikeUntil)
            _spikeExtra = 0;
    });
}

std::size_t
FabricLink::queueDepth(sim::Tick at)
{
    while (!_queued.empty() && _queued.front() <= at)
        _queued.pop_front();
    return _queued.size();
}

void
FabricLink::attachStats(sim::StatSet &set)
{
    set.attach("messages", _messages, "msgs");
    set.attach("bytes", _bytes, "bytes");
    set.attach("queueNs", _queueNs, "ns",
               "egress output-queue delay per message");
    set.attach("queueHighWater", _queueHighWater, "msgs",
               "deepest egress backlog (queued + serialising)");
    set.attach("queueOccupancyNs", _occupancyNs, "ns",
               "summed time messages waited for the port");
    set.attach("latencySpikes", _spikes, "events",
               "injected latency-spike windows");
}

struct Fabric::Msg
{
    const Path *path;
    std::uint64_t bytes;
    sim::EventQueue::Callback delivered;
};

Fabric::Fabric(std::string name, sim::EventQueue &eq)
    : _name(std::move(name)), _eq(eq)
{
}

Fabric::Element &
Fabric::element(const std::string &name)
{
    auto it = _elements.find(name);
    TF_ASSERT(it != _elements.end(), "%s: unknown element '%s'",
              _name.c_str(), name.c_str());
    return it->second;
}

sim::EventQueue &
Fabric::queueOf(const std::string &name)
{
    sim::par::LogicalProcess *lp = element(name).home;
    return lp != nullptr ? lp->queue() : _eq;
}

void
Fabric::addEndpoint(const std::string &name)
{
    TF_ASSERT(_elements.count(name) == 0,
              "%s: duplicate element '%s'", _name.c_str(),
              name.c_str());
    _elements[name] = Element{};
}

void
Fabric::addSwitch(const std::string &name, SwitchParams params)
{
    TF_ASSERT(_elements.count(name) == 0,
              "%s: duplicate element '%s'", _name.c_str(),
              name.c_str());
    Element e;
    e.isSwitch = true;
    e.sw = params;
    _elements[name] = std::move(e);
}

void
Fabric::assign(const std::string &name, sim::par::LogicalProcess &lp)
{
    TF_ASSERT(_links.empty(),
              "%s: assign('%s') after connect() — links are built on "
              "their source element's queue, so homes must be known "
              "first",
              _name.c_str(), name.c_str());
    element(name).home = &lp;
}

void
Fabric::connect(const std::string &a, const std::string &b,
                FabricLinkParams params)
{
    TF_ASSERT(!_finalized, "%s: connect('%s','%s') after finalize()",
              _name.c_str(), a.c_str(), b.c_str());
    TF_ASSERT(a != b, "%s: self-link on '%s'", _name.c_str(),
              a.c_str());
    TF_ASSERT(_links.count(a + "->" + b) == 0,
              "%s: duplicate link %s <-> %s", _name.c_str(),
              a.c_str(), b.c_str());
    for (const std::string &n : {a, b}) {
        Element &e = element(n);
        e.ports++;
        TF_ASSERT(!e.isSwitch || e.ports <= e.sw.radix,
                  "%s: switch '%s' exceeds radix %u", _name.c_str(),
                  n.c_str(), e.sw.radix);
    }
    element(a).neighbours.push_back(b);
    element(b).neighbours.push_back(a);
    _links[a + "->" + b] = std::make_unique<FabricLink>(
        _name + "." + a + "->" + b, queueOf(a), params);
    _links[b + "->" + a] = std::make_unique<FabricLink>(
        _name + "." + b + "->" + a, queueOf(b), params);
}

void
Fabric::finalize()
{
    TF_ASSERT(!_finalized, "%s: finalize() twice", _name.c_str());
    _finalized = true;
    for (auto &kv : _elements)
        std::sort(kv.second.neighbours.begin(),
                  kv.second.neighbours.end());

    // Per-destination BFS over the undirected graph; dist[] plus the
    // sorted-neighbour visit order makes the parent choice — and so
    // every route — a pure function of the topology.
    for (auto &dstKv : _elements) {
        if (dstKv.second.isSwitch)
            continue;
        const std::string &dst = dstKv.first;
        std::map<std::string, std::size_t> dist;
        std::deque<std::string> frontier;
        dist[dst] = 0;
        frontier.push_back(dst);
        while (!frontier.empty()) {
            std::string cur = frontier.front();
            frontier.pop_front();
            for (const std::string &nb :
                 _elements.at(cur).neighbours) {
                if (dist.count(nb))
                    continue;
                dist[nb] = dist.at(cur) + 1;
                frontier.push_back(nb);
            }
        }
        for (auto &srcKv : _elements) {
            const std::string &src = srcKv.first;
            if (srcKv.second.isSwitch || src == dst ||
                dist.count(src) == 0)
                continue;
            Path path;
            std::string cur = src;
            while (cur != dst) {
                // Next hop: the sorted-first neighbour one step
                // closer to the destination.
                const Element &e = _elements.at(cur);
                const std::string *next = nullptr;
                for (const std::string &nb : e.neighbours) {
                    auto it = dist.find(nb);
                    if (it != dist.end() &&
                        it->second + 1 == dist.at(cur)) {
                        next = &nb;
                        break;
                    }
                }
                TF_ASSERT(next != nullptr,
                          "%s: BFS route %s -> %s broke at '%s'",
                          _name.c_str(), src.c_str(), dst.c_str(),
                          cur.c_str());
                path.push_back(Hop{_links.at(cur + "->" + *next).get(),
                                   &_elements.at(cur)});
                cur = *next;
            }
            _routes[src + "->" + dst] = std::move(path);
        }
    }
}

void
Fabric::partition(sim::par::ParallelEngine &engine)
{
    // Map iteration order makes channel indices (and the engine's
    // merge tiebreak) independent of connect() order.
    for (auto &kv : _links) {
        const std::string &key = kv.first;
        auto sep = key.find("->");
        sim::par::LogicalProcess *src =
            _elements.at(key.substr(0, sep)).home;
        sim::par::LogicalProcess *dst =
            _elements.at(key.substr(sep + 2)).home;
        if (src == nullptr || dst == nullptr || src == dst)
            continue;
        kv.second->bindChannel(&engine.connect(
            *src, *dst, kv.second->params().latency,
            _name + "." + key));
    }
}

bool
Fabric::reachable(const std::string &src,
                  const std::string &dst) const
{
    return _routes.count(src + "->" + dst) > 0;
}

std::size_t
Fabric::hopCount(const std::string &src, const std::string &dst) const
{
    auto it = _routes.find(src + "->" + dst);
    return it == _routes.end() ? 0 : it->second.size();
}

void
Fabric::send(const std::string &src, const std::string &dst,
             std::uint64_t bytes, sim::EventQueue::Callback delivered)
{
    auto it = _routes.find(src + "->" + dst);
    TF_ASSERT(it != _routes.end(), "%s: no route %s -> %s",
              _name.c_str(), src.c_str(), dst.c_str());
    auto msg = std::make_shared<Msg>(
        Msg{&it->second, bytes, std::move(delivered)});
    step(std::move(msg), 0);
}

void
Fabric::step(std::shared_ptr<Msg> msg, std::size_t hop)
{
    const Path &path = *msg->path;
    if (hop == path.size()) {
        auto cb = std::move(msg->delivered);
        cb();
        return;
    }
    Element *from = path[hop].from;
    sim::Tick crossing = 0;
    if (from->isSwitch) {
        crossing = from->sw.crossingLatency;
        from->relayed.inc();
        from->relayedBytes.inc(msg->bytes);
    }
    std::uint64_t bytes = msg->bytes;
    path[hop].link->send(bytes, crossing,
                         [this, msg = std::move(msg), hop]() mutable {
                             step(std::move(msg), hop + 1);
                         });
}

std::uint64_t
Fabric::relayedMessages() const
{
    std::uint64_t total = 0;
    for (const auto &kv : _elements)
        if (kv.second.isSwitch)
            total += kv.second.relayed.value();
    return total;
}

double
Fabric::maxQueueDelayNs() const
{
    double worst = 0.0;
    for (const auto &kv : _links)
        worst = std::max(worst, kv.second->queueDelayNs().max());
    return worst;
}

std::uint64_t
Fabric::maxQueueHighWater() const
{
    std::uint64_t worst = 0;
    for (const auto &kv : _links)
        worst = std::max(worst, kv.second->queueHighWater());
    return worst;
}

void
Fabric::forEachLink(
    const std::function<void(const std::string &, FabricLink &,
                             sim::par::LogicalProcess *)> &fn)
{
    for (auto &kv : _links) {
        std::string src = kv.first.substr(0, kv.first.find("->"));
        fn(kv.first, *kv.second, element(src).home);
    }
}

void
Fabric::registerStats(sim::StatsRegistry &reg,
                      const std::string &prefix)
{
    for (auto &kv : _links)
        kv.second->attachStats(reg.at(prefix + "." + kv.first));
    for (auto &kv : _elements) {
        if (!kv.second.isSwitch)
            continue;
        sim::StatSet &set = reg.at(prefix + ".sw." + kv.first);
        set.attach("relayedMsgs", kv.second.relayed, "msgs",
                   "messages forwarded through this switch");
        set.attach("relayedBytes", kv.second.relayedBytes, "bytes");
    }
}

void
Fabric::registerFaultPoints(
    sim::fault::Registry &reg, const std::string &prefix,
    const sim::par::LogicalProcess *homeFilter)
{
    using sim::fault::Event;
    using sim::fault::Kind;
    using sim::fault::kindBit;
    for (auto &kv : _links) {
        const std::string &key = kv.first;
        auto sep = key.find("->");
        const Element &src = _elements.at(key.substr(0, sep));
        if (homeFilter != nullptr && src.home != homeFilter)
            continue;
        FabricLink *l = kv.second.get();
        reg.add(prefix + "." + key, kindBit(Kind::LatencySpike),
                [l](const Event &ev) {
                    l->spike(ev.extraLatency, ev.duration);
                });
    }
}

} // namespace tf::net
