/**
 * @file
 * Switched multi-hop fabric model.
 *
 * net::Network models point-to-point Ethernet links; rack-scale
 * topologies (ring / chain / full-mesh, DRackSim- and Xerxes-style)
 * need switches: elements with a configurable radix, a fixed crossing
 * latency, and per-egress-port output queues whose serialisation rate
 * is the attached link's — which is where oversubscription lives. A
 * Fabric is a set of named endpoints and switches joined by
 * full-duplex links; messages are routed hop by hop along shortest
 * paths (deterministic lexicographic tie-break), each hop charging
 *
 *     crossing (switches only) + egress queue + serialisation + wire
 *
 * and recording a Stage::SwitchHop trace span on the hop's source
 * element, so Perfetto shows exactly which oversubscribed queue a
 * noisy neighbour is parked in.
 *
 * Partitioned runs follow the net::Network idiom: every directed link
 * is a SimObject on its *source* element's queue, assign() homes
 * elements onto LPs before connect(), and partition() reroutes
 * cross-LP links through engine channels with the link's fixed wire
 * latency as lookahead.
 */

#ifndef TF_NET_SWITCH_HH
#define TF_NET_SWITCH_HH

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/fault/fault.hh"
#include "sim/parallel/engine.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"

namespace tf::net {

struct SwitchParams
{
    /** Ingress-to-egress pipeline latency. */
    sim::Tick crossingLatency = sim::nanoseconds(50);
    /** Maximum attached links (ports). */
    std::uint32_t radix = 16;
};

struct FabricLinkParams
{
    /** Line rate, bytes per second (100 Gb/s default). */
    double bandwidthBps = 100e9 / 8;
    /** Fixed one-way wire latency; the PDES lookahead floor (> 0). */
    sim::Tick latency = sim::nanoseconds(500);
};

/**
 * One directed fabric hop: an egress port's output queue plus the
 * wire behind it. Serialisation is charged on the source element's
 * clock; @p extraDelay models the upstream switch crossing.
 */
class FabricLink : public sim::SimObject
{
  public:
    FabricLink(std::string name, sim::EventQueue &eq,
               FabricLinkParams params);

    /**
     * Deliver @p bytes to the far end. The message is ready for the
     * egress queue at now + @p extraDelay (the crossing); it then
     * waits for the port, serialises at line rate and crosses the
     * wire. @p delivered runs on arrival.
     */
    void send(std::uint64_t bytes, sim::Tick extraDelay,
              sim::EventQueue::Callback delivered);

    /** Route deliveries through a cross-LP channel (see EthLink). */
    void bindChannel(sim::par::LinkChannel *channel);

    const FabricLinkParams &params() const { return _params; }

    /**
     * Fault injection: add @p extra to the wire latency of every
     * message for @p duration ticks. Additive only, so a bound
     * channel's lookahead floor stays valid.
     */
    void spike(sim::Tick extra, sim::Tick duration);

    std::uint64_t messages() const { return _messages.value(); }
    std::uint64_t bytesSent() const { return _bytes.value(); }
    /** Egress output-queue delay distribution, in nanoseconds. */
    const sim::Summary &queueDelayNs() const { return _queueNs; }

    /**
     * Messages occupying this egress port (queued or serialising) at
     * @p at. Prunes departed entries, so @p at must not go backwards
     * between calls — the timeline gauge samples it at
     * monotonically-increasing window boundaries.
     */
    std::size_t queueDepth(sim::Tick at);

    /** Deepest the egress queue ever got, in messages. */
    std::uint64_t queueHighWater() const { return _queueHighWater.value(); }
    /** Total time messages spent waiting for the port (ns, summed). */
    const sim::Counter &queueOccupancyNs() const { return _occupancyNs; }
    const sim::Counter &bytesCounter() const { return _bytes; }
    const sim::Counter &messagesCounter() const { return _messages; }

    void attachStats(sim::StatSet &set);

  private:
    FabricLinkParams _params;
    sim::par::LinkChannel *_channel = nullptr;
    sim::Tick _nextFree = 0;
    sim::Tick _spikeExtra = 0;
    sim::Tick _spikeUntil = 0;
    sim::Counter _messages;
    sim::Counter _bytes;
    sim::Counter _spikes;
    sim::Summary _queueNs;
    /** Departure times (port-free tick) of in-queue messages. */
    std::deque<sim::Tick> _queued;
    sim::Counter _queueHighWater;
    sim::Counter _occupancyNs;

    sim::Tick spikeNow() const
    {
        return now() < _spikeUntil ? _spikeExtra : 0;
    }
};

/**
 * Named endpoints and switches joined by full-duplex links; messages
 * are addressed endpoint to endpoint and forwarded along precomputed
 * shortest paths.
 */
class Fabric
{
  public:
    Fabric(std::string name, sim::EventQueue &eq);

    /** Declare a traffic source/sink element. */
    void addEndpoint(const std::string &name);

    /** Declare a forwarding element. */
    void addSwitch(const std::string &name, SwitchParams params);

    /**
     * Home an element on a logical process. Must precede the
     * connect() calls naming it (links live on their source
     * element's queue).
     */
    void assign(const std::string &element,
                sim::par::LogicalProcess &lp);

    /** Full-duplex link between two declared elements. */
    void connect(const std::string &a, const std::string &b,
                 FabricLinkParams params);

    /**
     * Compute routes: per-element next-hop tables by BFS hop count,
     * neighbours visited in sorted name order so equal-cost paths
     * break ties deterministically. Call once, after connect().
     */
    void finalize();

    /** Reroute cross-LP links through engine channels (lookahead =
     * wire latency). Call after finalize(). */
    void partition(sim::par::ParallelEngine &engine);

    /** Route known from @p src to @p dst (post-finalize)? */
    bool reachable(const std::string &src,
                   const std::string &dst) const;

    /** Links on the src -> dst path (post-finalize; 0 if none). */
    std::size_t hopCount(const std::string &src,
                         const std::string &dst) const;

    /**
     * Send @p bytes from endpoint @p src to endpoint @p dst;
     * @p delivered runs on @p dst's LP after the last hop. Must be
     * invoked from @p src's LP.
     */
    void send(const std::string &src, const std::string &dst,
              std::uint64_t bytes,
              sim::EventQueue::Callback delivered);

    /** Messages forwarded by switches (each hop through one). */
    std::uint64_t relayedMessages() const;

    /** Worst egress output-queue delay seen anywhere, nanoseconds. */
    double maxQueueDelayNs() const;

    /** Deepest any egress queue ever got, in messages. */
    std::uint64_t maxQueueHighWater() const;

    /**
     * Visit every directed link as (key, link, home LP) in sorted
     * key order; home is the *source* element's LP (nullptr when
     * unassigned). The timeline wiring uses this to hang per-port
     * probes on the LP that owns each egress queue.
     */
    void forEachLink(
        const std::function<void(const std::string &, FabricLink &,
                                 sim::par::LogicalProcess *)> &fn);

    /**
     * Register per-link stats under "<prefix>.<src>-><dst>" and
     * per-switch forwarding counters under "<prefix>.sw.<name>".
     */
    void registerStats(sim::StatsRegistry &reg,
                       const std::string &prefix);

    /**
     * Register a LatencySpike fault point per directed link as
     * "<prefix>.<src>-><dst>". A non-null @p homeFilter restricts
     * registration to links homed on that LP, so partitioned rigs
     * can keep one fault registry per LP.
     */
    void registerFaultPoints(
        sim::fault::Registry &reg, const std::string &prefix,
        const sim::par::LogicalProcess *homeFilter = nullptr);

  private:
    struct Element
    {
        bool isSwitch = false;
        SwitchParams sw;
        sim::par::LogicalProcess *home = nullptr;
        std::uint32_t ports = 0;
        std::vector<std::string> neighbours; ///< sorted by insertion
        sim::Counter relayed;
        sim::Counter relayedBytes;
    };

    struct Hop
    {
        FabricLink *link;
        Element *from;
    };

    using Path = std::vector<Hop>;

    std::string _name;
    sim::EventQueue &_eq;
    std::map<std::string, Element> _elements;
    // key: "src->dst" directed.
    std::map<std::string, std::unique_ptr<FabricLink>> _links;
    // key: "src->dst" endpoint pairs, post-finalize.
    std::map<std::string, Path> _routes;
    bool _finalized = false;

    struct Msg;
    void step(std::shared_ptr<Msg> msg, std::size_t hop);

    Element &element(const std::string &name);
    sim::EventQueue &queueOf(const std::string &element);
};

} // namespace tf::net

#endif // TF_NET_SWITCH_HH
