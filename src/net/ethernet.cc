#include "net/ethernet.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace tf::net {

EthLink::EthLink(std::string name, sim::EventQueue &eq, EthParams params)
    : SimObject(std::move(name), eq), _params(params)
{
}

sim::Tick
EthLink::estimate(std::uint64_t bytes) const
{
    sim::Tick ser = sim::seconds(static_cast<double>(bytes) /
                                 _params.bandwidthBps);
    sim::Tick queue = _nextFree > now() ? _nextFree - now() : 0;
    return queue + ser + _params.perMessageOverhead + _params.latency +
           spikeNow();
}

void
EthLink::send(std::uint64_t bytes, sim::EventQueue::Callback delivered)
{
    sim::Tick ser = sim::seconds(static_cast<double>(bytes) /
                                 _params.bandwidthBps) +
                    _params.perMessageOverhead;
    sim::Tick start = std::max(now(), _nextFree);
    _nextFree = start + ser;
    _messages.inc();
    _bytes.inc(bytes);
    sim::Tick deliver = start + ser + _params.latency + spikeNow();
    // Control-plane messages carry no MemTxn, so each send gets its
    // own trace id. Both edges are recorded here on the source LP.
    auto &tb = eventQueue().trace();
    if (sim::trace::TraceId id = tb.newTrace();
        id != sim::trace::noTrace) {
        tb.begin(now(), id, sim::trace::Stage::Eth);
        tb.end(deliver, id, sim::trace::Stage::Eth);
    }
    if (_channel != nullptr)
        _channel->send(deliver, std::move(delivered));
    else
        after(deliver - now(), std::move(delivered));
}

void
EthLink::bindChannel(sim::par::LinkChannel *channel)
{
    TF_ASSERT(channel == nullptr ||
                  channel->minLatency() <= _params.latency,
              "%s: channel lookahead %llu exceeds link latency %llu",
              name().c_str(),
              (unsigned long long)channel->minLatency(),
              (unsigned long long)_params.latency);
    _channel = channel;
}

void
EthLink::spike(sim::Tick extra, sim::Tick duration)
{
    _spikeExtra = std::max(_spikeExtra, extra);
    _spikeUntil = std::max(_spikeUntil, now() + duration);
    _spikes.inc();
    // Reset the extra once the window closes so a later spike is not
    // stuck with an old maximum.
    after(duration, [this]() {
        if (!spikeActive())
            _spikeExtra = 0;
    });
}

void
EthLink::attachStats(sim::StatSet &set)
{
    set.attach("messages", _messages, "msgs");
    set.attach("bytes", _bytes, "bytes");
    set.attach("latencySpikes", _spikes, "events",
               "injected latency-spike windows");
}

Network::Network(std::string name, sim::EventQueue &eq)
    : _name(std::move(name)), _eq(eq)
{
}

void
Network::assign(const std::string &endpoint,
                sim::par::LogicalProcess &lp)
{
    TF_ASSERT(_links.empty(),
              "%s: assign('%s') after connect() — links are built on "
              "their source endpoint's queue, so homes must be known "
              "first",
              _name.c_str(), endpoint.c_str());
    _homes[endpoint] = &lp;
}

sim::par::LogicalProcess *
Network::home(const std::string &endpoint) const
{
    auto it = _homes.find(endpoint);
    return it == _homes.end() ? nullptr : it->second;
}

sim::EventQueue &
Network::queueOf(const std::string &endpoint)
{
    sim::par::LogicalProcess *lp = home(endpoint);
    return lp != nullptr ? lp->queue() : _eq;
}

void
Network::connect(const std::string &a, const std::string &b,
                 EthParams params)
{
    _links[a + "->" + b] = std::make_unique<EthLink>(
        _name + "." + a + "->" + b, queueOf(a), params);
    _links[b + "->" + a] = std::make_unique<EthLink>(
        _name + "." + b + "->" + a, queueOf(b), params);
}

void
Network::partition(sim::par::ParallelEngine &engine)
{
    // Map iteration order makes channel indices (and therefore the
    // engine's merge tiebreak) independent of connect() order.
    for (auto &kv : _links) {
        const std::string &key = kv.first;
        auto sep = key.find("->");
        sim::par::LogicalProcess *src = home(key.substr(0, sep));
        sim::par::LogicalProcess *dst = home(key.substr(sep + 2));
        if (src == nullptr || dst == nullptr || src == dst)
            continue;
        kv.second->bindChannel(&engine.connect(
            *src, *dst, kv.second->params().latency,
            _name + "." + key));
    }
}

bool
Network::connected(const std::string &a, const std::string &b) const
{
    return _links.count(a + "->" + b) > 0;
}

EthLink *
Network::link(const std::string &src, const std::string &dst)
{
    auto it = _links.find(src + "->" + dst);
    return it == _links.end() ? nullptr : it->second.get();
}

const EthLink *
Network::link(const std::string &src, const std::string &dst) const
{
    return const_cast<Network *>(this)->link(src, dst);
}

void
Network::send(const std::string &src, const std::string &dst,
              std::uint64_t bytes, sim::EventQueue::Callback delivered)
{
    EthLink *l = link(src, dst);
    TF_ASSERT(l != nullptr, "no link %s -> %s", src.c_str(),
              dst.c_str());
    l->send(bytes, std::move(delivered));
}

sim::Tick
Network::estimate(const std::string &src, const std::string &dst,
                  std::uint64_t bytes) const
{
    const EthLink *l = link(src, dst);
    TF_ASSERT(l != nullptr, "no link %s -> %s", src.c_str(),
              dst.c_str());
    return l->estimate(bytes);
}

void
Network::registerStats(sim::StatsRegistry &reg, const std::string &prefix)
{
    for (auto &kv : _links)
        kv.second->attachStats(reg.at(prefix + "." + kv.first));
}

void
Network::registerFaultPoints(sim::fault::Registry &reg,
                             const std::string &prefix)
{
    using sim::fault::Event;
    using sim::fault::Kind;
    using sim::fault::kindBit;
    for (auto &kv : _links) {
        EthLink *l = kv.second.get();
        reg.add(prefix + "." + kv.first, kindBit(Kind::LatencySpike),
                [l](const Event &ev) {
                    l->spike(ev.extraLatency, ev.duration);
                });
    }
}

} // namespace tf::net
