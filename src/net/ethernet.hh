/**
 * @file
 * Message-level Ethernet model for client traffic and scale-out.
 *
 * The paper's testbed wires the client machine to the servers over
 * 10 Gb/s Ethernet and, in the scale-out configuration, the two
 * servers to each other over 100 Gb/s Ethernet (Section VI-A). App
 * models exchange whole request/response messages; the link charges
 * serialisation at line rate plus a fixed one-way latency (switch +
 * kernel network stack), which is what makes scale-out's extra
 * network hops expensive relative to ld/st disaggregation.
 */

#ifndef TF_NET_ETHERNET_HH
#define TF_NET_ETHERNET_HH

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "sim/fault/fault.hh"
#include "sim/parallel/engine.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"

namespace tf::net {

struct EthParams
{
    /** Line rate, bytes per second. */
    double bandwidthBps = 10e9 / 8;
    /**
     * Fixed one-way message latency: NIC + switch + kernel stack.
     * The paper's Memcached local round trip is ~600 us dominated by
     * software; we charge the network-stack share here.
     */
    sim::Tick latency = sim::microseconds(25);
    /** Per-message CPU/NIC overhead added to serialisation. */
    sim::Tick perMessageOverhead = sim::microseconds(2);

    static EthParams
    tenGig()
    {
        return EthParams{10e9 / 8, sim::microseconds(25),
                         sim::microseconds(2)};
    }

    static EthParams
    hundredGig()
    {
        return EthParams{100e9 / 8, sim::microseconds(15),
                         sim::microseconds(1)};
    }
};

/** One unidirectional link: serialisation + fixed latency. */
class EthLink : public sim::SimObject
{
  public:
    EthLink(std::string name, sim::EventQueue &eq, EthParams params);

    /** Deliver @p bytes to the far end; @p delivered runs on arrival. */
    void send(std::uint64_t bytes, sim::EventQueue::Callback delivered);

    /**
     * Route deliveries through a cross-LP channel instead of the
     * local queue. The link keeps charging serialisation on the
     * sender's clock; the delivery callback then runs on the
     * channel's destination LP. The channel's lookahead must not
     * exceed the link's fixed latency (the conservative floor of
     * every delivery). Pass nullptr to unbind.
     */
    void bindChannel(sim::par::LinkChannel *channel);

    const EthParams &params() const { return _params; }

    std::uint64_t messages() const { return _messages.value(); }
    std::uint64_t bytesSent() const { return _bytes.value(); }

    /** Attach message/byte counters for telemetry export. */
    void attachStats(sim::StatSet &set);

    /** Queueing + serialisation + latency a message would see now. */
    sim::Tick estimate(std::uint64_t bytes) const;

    /**
     * Fault injection: add @p extra to the one-way latency of every
     * message sent in the next @p duration ticks (congestion /
     * misbehaving switch). Only *adds* latency, so a bound channel's
     * lookahead floor stays valid. Overlapping spikes keep the larger
     * extra and the later end.
     */
    void spike(sim::Tick extra, sim::Tick duration);

    bool spikeActive() const { return _spikeUntil > now(); }

    std::uint64_t spikes() const { return _spikes.value(); }

  private:
    EthParams _params;
    sim::par::LinkChannel *_channel = nullptr;
    sim::Tick _nextFree = 0;
    sim::Tick _spikeExtra = 0;
    sim::Tick _spikeUntil = 0;
    sim::Counter _messages;
    sim::Counter _bytes;
    sim::Counter _spikes;

    /** Latency spike in force for a message sent now (else 0). */
    sim::Tick spikeNow() const
    {
        return now() < _spikeUntil ? _spikeExtra : 0;
    }
};

/**
 * A set of named endpoints with full-duplex links between pairs.
 * Apps address messages by endpoint name.
 */
class Network
{
  public:
    Network(std::string name, sim::EventQueue &eq);

    /**
     * Home an endpoint on a logical process for partitioned runs.
     * Must precede the connect() calls naming the endpoint: each
     * directed link is a SimObject on its *source* endpoint's queue
     * (its serialisation clock belongs to the sender's partition).
     */
    void assign(const std::string &endpoint,
                sim::par::LogicalProcess &lp);

    /**
     * Create a channel for every directed link whose endpoints are
     * homed on different LPs — lookahead is the link's fixed one-way
     * latency, the conservative floor of every delivery — and route
     * those links through them. Links between co-located (or
     * unassigned) endpoints keep delivering locally. Call once,
     * after all connect() calls.
     */
    void partition(sim::par::ParallelEngine &engine);

    /** Create a full-duplex link between two endpoints. */
    void connect(const std::string &a, const std::string &b,
                 EthParams params);

    bool connected(const std::string &a, const std::string &b) const;

    /**
     * Send @p bytes from @p src to @p dst; @p delivered runs at the
     * destination after the one-way cost.
     */
    void send(const std::string &src, const std::string &dst,
              std::uint64_t bytes, sim::EventQueue::Callback delivered);

    /** Current one-way estimate (for schedulers / diagnostics). */
    sim::Tick estimate(const std::string &src, const std::string &dst,
                       std::uint64_t bytes) const;

    /**
     * Register every directed link under "<prefix>.<src>-><dst>";
     * map iteration keeps the export order deterministic.
     */
    void registerStats(sim::StatsRegistry &reg,
                       const std::string &prefix);

    /**
     * Register a LatencySpike fault point per directed link as
     * "<prefix>.<src>-><dst>". Must follow every connect() call.
     */
    void registerFaultPoints(sim::fault::Registry &reg,
                             const std::string &prefix);

  private:
    std::string _name;
    sim::EventQueue &_eq;
    // key: "src->dst" directed.
    std::map<std::string, std::unique_ptr<EthLink>> _links;
    std::map<std::string, sim::par::LogicalProcess *> _homes;

    EthLink *link(const std::string &src, const std::string &dst);
    const EthLink *link(const std::string &src,
                        const std::string &dst) const;
    sim::par::LogicalProcess *home(const std::string &endpoint) const;
    sim::EventQueue &queueOf(const std::string &endpoint);
};

} // namespace tf::net

#endif // TF_NET_ETHERNET_HH
