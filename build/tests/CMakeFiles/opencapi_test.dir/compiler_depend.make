# Empty compiler generated dependencies file for opencapi_test.
# This may be replaced when dependencies are built.
