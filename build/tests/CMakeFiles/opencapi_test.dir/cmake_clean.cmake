file(REMOVE_RECURSE
  "CMakeFiles/opencapi_test.dir/opencapi_test.cpp.o"
  "CMakeFiles/opencapi_test.dir/opencapi_test.cpp.o.d"
  "opencapi_test"
  "opencapi_test.pdb"
  "opencapi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opencapi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
