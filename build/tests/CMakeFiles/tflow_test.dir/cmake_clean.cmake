file(REMOVE_RECURSE
  "CMakeFiles/tflow_test.dir/tflow_test.cpp.o"
  "CMakeFiles/tflow_test.dir/tflow_test.cpp.o.d"
  "tflow_test"
  "tflow_test.pdb"
  "tflow_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tflow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
