# Empty dependencies file for tflow_test.
# This may be replaced when dependencies are built.
