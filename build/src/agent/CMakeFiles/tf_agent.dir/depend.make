# Empty dependencies file for tf_agent.
# This may be replaced when dependencies are built.
