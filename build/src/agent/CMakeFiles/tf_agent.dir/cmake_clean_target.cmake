file(REMOVE_RECURSE
  "libtf_agent.a"
)
