file(REMOVE_RECURSE
  "CMakeFiles/tf_agent.dir/agent.cc.o"
  "CMakeFiles/tf_agent.dir/agent.cc.o.d"
  "libtf_agent.a"
  "libtf_agent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tf_agent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
