# Empty dependencies file for tf_net.
# This may be replaced when dependencies are built.
