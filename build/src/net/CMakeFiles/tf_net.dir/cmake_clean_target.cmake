file(REMOVE_RECURSE
  "libtf_net.a"
)
