file(REMOVE_RECURSE
  "CMakeFiles/tf_net.dir/ethernet.cc.o"
  "CMakeFiles/tf_net.dir/ethernet.cc.o.d"
  "libtf_net.a"
  "libtf_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tf_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
