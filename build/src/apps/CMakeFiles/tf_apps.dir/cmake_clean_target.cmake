file(REMOVE_RECURSE
  "libtf_apps.a"
)
