file(REMOVE_RECURSE
  "CMakeFiles/tf_apps.dir/elastic.cc.o"
  "CMakeFiles/tf_apps.dir/elastic.cc.o.d"
  "CMakeFiles/tf_apps.dir/memcached.cc.o"
  "CMakeFiles/tf_apps.dir/memcached.cc.o.d"
  "CMakeFiles/tf_apps.dir/stream.cc.o"
  "CMakeFiles/tf_apps.dir/stream.cc.o.d"
  "CMakeFiles/tf_apps.dir/voltdb.cc.o"
  "CMakeFiles/tf_apps.dir/voltdb.cc.o.d"
  "libtf_apps.a"
  "libtf_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tf_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
