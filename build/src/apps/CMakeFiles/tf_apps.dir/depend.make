# Empty dependencies file for tf_apps.
# This may be replaced when dependencies are built.
