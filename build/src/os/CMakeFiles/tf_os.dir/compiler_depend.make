# Empty compiler generated dependencies file for tf_os.
# This may be replaced when dependencies are built.
