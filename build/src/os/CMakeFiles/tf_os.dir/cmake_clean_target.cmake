file(REMOVE_RECURSE
  "libtf_os.a"
)
