
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/address_space.cc" "src/os/CMakeFiles/tf_os.dir/address_space.cc.o" "gcc" "src/os/CMakeFiles/tf_os.dir/address_space.cc.o.d"
  "/root/repo/src/os/memory_manager.cc" "src/os/CMakeFiles/tf_os.dir/memory_manager.cc.o" "gcc" "src/os/CMakeFiles/tf_os.dir/memory_manager.cc.o.d"
  "/root/repo/src/os/migration.cc" "src/os/CMakeFiles/tf_os.dir/migration.cc.o" "gcc" "src/os/CMakeFiles/tf_os.dir/migration.cc.o.d"
  "/root/repo/src/os/numa.cc" "src/os/CMakeFiles/tf_os.dir/numa.cc.o" "gcc" "src/os/CMakeFiles/tf_os.dir/numa.cc.o.d"
  "/root/repo/src/os/swap.cc" "src/os/CMakeFiles/tf_os.dir/swap.cc.o" "gcc" "src/os/CMakeFiles/tf_os.dir/swap.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/tf_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tf_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
