file(REMOVE_RECURSE
  "CMakeFiles/tf_os.dir/address_space.cc.o"
  "CMakeFiles/tf_os.dir/address_space.cc.o.d"
  "CMakeFiles/tf_os.dir/memory_manager.cc.o"
  "CMakeFiles/tf_os.dir/memory_manager.cc.o.d"
  "CMakeFiles/tf_os.dir/migration.cc.o"
  "CMakeFiles/tf_os.dir/migration.cc.o.d"
  "CMakeFiles/tf_os.dir/numa.cc.o"
  "CMakeFiles/tf_os.dir/numa.cc.o.d"
  "CMakeFiles/tf_os.dir/swap.cc.o"
  "CMakeFiles/tf_os.dir/swap.cc.o.d"
  "libtf_os.a"
  "libtf_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tf_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
