file(REMOVE_RECURSE
  "libtf_mem.a"
)
