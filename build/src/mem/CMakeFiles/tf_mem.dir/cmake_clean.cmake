file(REMOVE_RECURSE
  "CMakeFiles/tf_mem.dir/backing_store.cc.o"
  "CMakeFiles/tf_mem.dir/backing_store.cc.o.d"
  "CMakeFiles/tf_mem.dir/cache.cc.o"
  "CMakeFiles/tf_mem.dir/cache.cc.o.d"
  "CMakeFiles/tf_mem.dir/dram.cc.o"
  "CMakeFiles/tf_mem.dir/dram.cc.o.d"
  "CMakeFiles/tf_mem.dir/transaction.cc.o"
  "CMakeFiles/tf_mem.dir/transaction.cc.o.d"
  "libtf_mem.a"
  "libtf_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tf_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
