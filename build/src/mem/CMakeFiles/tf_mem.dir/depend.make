# Empty dependencies file for tf_mem.
# This may be replaced when dependencies are built.
