
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opencapi/c1_master.cc" "src/opencapi/CMakeFiles/tf_opencapi.dir/c1_master.cc.o" "gcc" "src/opencapi/CMakeFiles/tf_opencapi.dir/c1_master.cc.o.d"
  "/root/repo/src/opencapi/crossing.cc" "src/opencapi/CMakeFiles/tf_opencapi.dir/crossing.cc.o" "gcc" "src/opencapi/CMakeFiles/tf_opencapi.dir/crossing.cc.o.d"
  "/root/repo/src/opencapi/pasid.cc" "src/opencapi/CMakeFiles/tf_opencapi.dir/pasid.cc.o" "gcc" "src/opencapi/CMakeFiles/tf_opencapi.dir/pasid.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/tf_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tf_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
