# Empty compiler generated dependencies file for tf_opencapi.
# This may be replaced when dependencies are built.
