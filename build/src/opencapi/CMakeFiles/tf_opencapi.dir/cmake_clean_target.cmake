file(REMOVE_RECURSE
  "libtf_opencapi.a"
)
