file(REMOVE_RECURSE
  "CMakeFiles/tf_opencapi.dir/c1_master.cc.o"
  "CMakeFiles/tf_opencapi.dir/c1_master.cc.o.d"
  "CMakeFiles/tf_opencapi.dir/crossing.cc.o"
  "CMakeFiles/tf_opencapi.dir/crossing.cc.o.d"
  "CMakeFiles/tf_opencapi.dir/pasid.cc.o"
  "CMakeFiles/tf_opencapi.dir/pasid.cc.o.d"
  "libtf_opencapi.a"
  "libtf_opencapi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tf_opencapi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
