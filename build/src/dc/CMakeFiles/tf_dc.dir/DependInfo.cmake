
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dc/models.cc" "src/dc/CMakeFiles/tf_dc.dir/models.cc.o" "gcc" "src/dc/CMakeFiles/tf_dc.dir/models.cc.o.d"
  "/root/repo/src/dc/simulation.cc" "src/dc/CMakeFiles/tf_dc.dir/simulation.cc.o" "gcc" "src/dc/CMakeFiles/tf_dc.dir/simulation.cc.o.d"
  "/root/repo/src/dc/trace.cc" "src/dc/CMakeFiles/tf_dc.dir/trace.cc.o" "gcc" "src/dc/CMakeFiles/tf_dc.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/tf_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
