file(REMOVE_RECURSE
  "libtf_dc.a"
)
