# Empty dependencies file for tf_dc.
# This may be replaced when dependencies are built.
