file(REMOVE_RECURSE
  "CMakeFiles/tf_dc.dir/models.cc.o"
  "CMakeFiles/tf_dc.dir/models.cc.o.d"
  "CMakeFiles/tf_dc.dir/simulation.cc.o"
  "CMakeFiles/tf_dc.dir/simulation.cc.o.d"
  "CMakeFiles/tf_dc.dir/trace.cc.o"
  "CMakeFiles/tf_dc.dir/trace.cc.o.d"
  "libtf_dc.a"
  "libtf_dc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tf_dc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
