# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sim")
subdirs("mem")
subdirs("opencapi")
subdirs("tflow")
subdirs("os")
subdirs("agent")
subdirs("ctrl")
subdirs("net")
subdirs("dc")
subdirs("system")
subdirs("apps")
