# Empty compiler generated dependencies file for tf_tflow.
# This may be replaced when dependencies are built.
