file(REMOVE_RECURSE
  "CMakeFiles/tf_tflow.dir/compute_endpoint.cc.o"
  "CMakeFiles/tf_tflow.dir/compute_endpoint.cc.o.d"
  "CMakeFiles/tf_tflow.dir/datapath.cc.o"
  "CMakeFiles/tf_tflow.dir/datapath.cc.o.d"
  "CMakeFiles/tf_tflow.dir/llc.cc.o"
  "CMakeFiles/tf_tflow.dir/llc.cc.o.d"
  "CMakeFiles/tf_tflow.dir/rmmu.cc.o"
  "CMakeFiles/tf_tflow.dir/rmmu.cc.o.d"
  "CMakeFiles/tf_tflow.dir/routing.cc.o"
  "CMakeFiles/tf_tflow.dir/routing.cc.o.d"
  "CMakeFiles/tf_tflow.dir/stealing_endpoint.cc.o"
  "CMakeFiles/tf_tflow.dir/stealing_endpoint.cc.o.d"
  "libtf_tflow.a"
  "libtf_tflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tf_tflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
