
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tflow/compute_endpoint.cc" "src/tflow/CMakeFiles/tf_tflow.dir/compute_endpoint.cc.o" "gcc" "src/tflow/CMakeFiles/tf_tflow.dir/compute_endpoint.cc.o.d"
  "/root/repo/src/tflow/datapath.cc" "src/tflow/CMakeFiles/tf_tflow.dir/datapath.cc.o" "gcc" "src/tflow/CMakeFiles/tf_tflow.dir/datapath.cc.o.d"
  "/root/repo/src/tflow/llc.cc" "src/tflow/CMakeFiles/tf_tflow.dir/llc.cc.o" "gcc" "src/tflow/CMakeFiles/tf_tflow.dir/llc.cc.o.d"
  "/root/repo/src/tflow/rmmu.cc" "src/tflow/CMakeFiles/tf_tflow.dir/rmmu.cc.o" "gcc" "src/tflow/CMakeFiles/tf_tflow.dir/rmmu.cc.o.d"
  "/root/repo/src/tflow/routing.cc" "src/tflow/CMakeFiles/tf_tflow.dir/routing.cc.o" "gcc" "src/tflow/CMakeFiles/tf_tflow.dir/routing.cc.o.d"
  "/root/repo/src/tflow/stealing_endpoint.cc" "src/tflow/CMakeFiles/tf_tflow.dir/stealing_endpoint.cc.o" "gcc" "src/tflow/CMakeFiles/tf_tflow.dir/stealing_endpoint.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/opencapi/CMakeFiles/tf_opencapi.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/tf_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tf_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
