file(REMOVE_RECURSE
  "libtf_tflow.a"
)
