# CMake generated Testfile for 
# Source directory: /root/repo/src/tflow
# Build directory: /root/repo/build/src/tflow
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
