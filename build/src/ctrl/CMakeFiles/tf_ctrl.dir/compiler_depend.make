# Empty compiler generated dependencies file for tf_ctrl.
# This may be replaced when dependencies are built.
