file(REMOVE_RECURSE
  "CMakeFiles/tf_ctrl.dir/control_plane.cc.o"
  "CMakeFiles/tf_ctrl.dir/control_plane.cc.o.d"
  "CMakeFiles/tf_ctrl.dir/graph.cc.o"
  "CMakeFiles/tf_ctrl.dir/graph.cc.o.d"
  "libtf_ctrl.a"
  "libtf_ctrl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tf_ctrl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
