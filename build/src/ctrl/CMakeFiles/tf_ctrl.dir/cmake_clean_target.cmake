file(REMOVE_RECURSE
  "libtf_ctrl.a"
)
