file(REMOVE_RECURSE
  "CMakeFiles/tf_system.dir/cpuset.cc.o"
  "CMakeFiles/tf_system.dir/cpuset.cc.o.d"
  "CMakeFiles/tf_system.dir/memory_path.cc.o"
  "CMakeFiles/tf_system.dir/memory_path.cc.o.d"
  "CMakeFiles/tf_system.dir/node.cc.o"
  "CMakeFiles/tf_system.dir/node.cc.o.d"
  "CMakeFiles/tf_system.dir/testbed.cc.o"
  "CMakeFiles/tf_system.dir/testbed.cc.o.d"
  "libtf_system.a"
  "libtf_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tf_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
