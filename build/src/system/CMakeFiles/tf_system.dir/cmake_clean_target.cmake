file(REMOVE_RECURSE
  "libtf_system.a"
)
