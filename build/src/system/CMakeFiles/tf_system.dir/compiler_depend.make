# Empty compiler generated dependencies file for tf_system.
# This may be replaced when dependencies are built.
