file(REMOVE_RECURSE
  "CMakeFiles/tf_sim.dir/event_queue.cc.o"
  "CMakeFiles/tf_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/tf_sim.dir/logging.cc.o"
  "CMakeFiles/tf_sim.dir/logging.cc.o.d"
  "CMakeFiles/tf_sim.dir/rng.cc.o"
  "CMakeFiles/tf_sim.dir/rng.cc.o.d"
  "CMakeFiles/tf_sim.dir/stats.cc.o"
  "CMakeFiles/tf_sim.dir/stats.cc.o.d"
  "libtf_sim.a"
  "libtf_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tf_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
