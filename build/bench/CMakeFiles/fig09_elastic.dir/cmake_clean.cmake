file(REMOVE_RECURSE
  "CMakeFiles/fig09_elastic.dir/fig09_elastic.cpp.o"
  "CMakeFiles/fig09_elastic.dir/fig09_elastic.cpp.o.d"
  "fig09_elastic"
  "fig09_elastic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_elastic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
