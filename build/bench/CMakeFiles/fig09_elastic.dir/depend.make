# Empty dependencies file for fig09_elastic.
# This may be replaced when dependencies are built.
