file(REMOVE_RECURSE
  "CMakeFiles/fig06_voltdb_profile.dir/fig06_voltdb_profile.cpp.o"
  "CMakeFiles/fig06_voltdb_profile.dir/fig06_voltdb_profile.cpp.o.d"
  "fig06_voltdb_profile"
  "fig06_voltdb_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_voltdb_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
