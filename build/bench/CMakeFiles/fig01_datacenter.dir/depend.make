# Empty dependencies file for fig01_datacenter.
# This may be replaced when dependencies are built.
