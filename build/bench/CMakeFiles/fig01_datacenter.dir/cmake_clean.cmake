file(REMOVE_RECURSE
  "CMakeFiles/fig01_datacenter.dir/fig01_datacenter.cpp.o"
  "CMakeFiles/fig01_datacenter.dir/fig01_datacenter.cpp.o.d"
  "fig01_datacenter"
  "fig01_datacenter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_datacenter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
