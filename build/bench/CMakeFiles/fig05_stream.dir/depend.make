# Empty dependencies file for fig05_stream.
# This may be replaced when dependencies are built.
