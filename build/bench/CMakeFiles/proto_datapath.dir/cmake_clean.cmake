file(REMOVE_RECURSE
  "CMakeFiles/proto_datapath.dir/proto_datapath.cpp.o"
  "CMakeFiles/proto_datapath.dir/proto_datapath.cpp.o.d"
  "proto_datapath"
  "proto_datapath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proto_datapath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
