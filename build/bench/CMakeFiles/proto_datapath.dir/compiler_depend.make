# Empty compiler generated dependencies file for proto_datapath.
# This may be replaced when dependencies are built.
