# Empty dependencies file for fig08_memcached.
# This may be replaced when dependencies are built.
