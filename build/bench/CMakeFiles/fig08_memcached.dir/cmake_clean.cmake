file(REMOVE_RECURSE
  "CMakeFiles/fig08_memcached.dir/fig08_memcached.cpp.o"
  "CMakeFiles/fig08_memcached.dir/fig08_memcached.cpp.o.d"
  "fig08_memcached"
  "fig08_memcached.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_memcached.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
