# Empty dependencies file for baseline_swap.
# This may be replaced when dependencies are built.
