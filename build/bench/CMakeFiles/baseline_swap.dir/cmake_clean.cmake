file(REMOVE_RECURSE
  "CMakeFiles/baseline_swap.dir/baseline_swap.cpp.o"
  "CMakeFiles/baseline_swap.dir/baseline_swap.cpp.o.d"
  "baseline_swap"
  "baseline_swap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_swap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
