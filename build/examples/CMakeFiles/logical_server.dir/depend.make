# Empty dependencies file for logical_server.
# This may be replaced when dependencies are built.
