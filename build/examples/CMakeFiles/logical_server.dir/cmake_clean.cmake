file(REMOVE_RECURSE
  "CMakeFiles/logical_server.dir/logical_server.cpp.o"
  "CMakeFiles/logical_server.dir/logical_server.cpp.o.d"
  "logical_server"
  "logical_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logical_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
