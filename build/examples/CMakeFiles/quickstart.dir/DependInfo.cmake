
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/tf_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/system/CMakeFiles/tf_system.dir/DependInfo.cmake"
  "/root/repo/build/src/ctrl/CMakeFiles/tf_ctrl.dir/DependInfo.cmake"
  "/root/repo/build/src/agent/CMakeFiles/tf_agent.dir/DependInfo.cmake"
  "/root/repo/build/src/tflow/CMakeFiles/tf_tflow.dir/DependInfo.cmake"
  "/root/repo/build/src/opencapi/CMakeFiles/tf_opencapi.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/tf_os.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/tf_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tf_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tf_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
