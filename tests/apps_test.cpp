/**
 * @file
 * Tests for the workload models: STREAM traffic accounting,
 * Memcached LRU/Zipf behaviour, VoltDB partitioning/metrics, and
 * Elasticsearch fan-out -- including the cross-configuration
 * relationships the paper's evaluation rests on.
 */

#include <gtest/gtest.h>

#include "apps/elastic.hh"
#include "apps/memcached.hh"
#include "apps/stream.hh"
#include "apps/voltdb.hh"

using namespace tf;
using namespace tf::apps;

namespace {

sys::TestbedParams
smallBed(sys::Setup setup)
{
    sys::TestbedParams tp;
    tp.setup = setup;
    tp.donatedBytes = 128ULL * 1024 * 1024;
    tp.node.cache = mem::CacheParams{2 * 1024 * 1024, 8, 128};
    return tp;
}

} // namespace

TEST(StreamT, BytesPerElementMatchMcCalpin)
{
    EXPECT_EQ(StreamBenchmark::bytesPerElement(StreamKernel::Copy),
              16u);
    EXPECT_EQ(StreamBenchmark::bytesPerElement(StreamKernel::Scale),
              16u);
    EXPECT_EQ(StreamBenchmark::bytesPerElement(StreamKernel::Add),
              24u);
    EXPECT_EQ(StreamBenchmark::bytesPerElement(StreamKernel::Triad),
              24u);
}

TEST(StreamT, LocalFasterThanDisaggregated)
{
    StreamParams sp;
    sp.elements = 128 * 1024; // 1 MiB arrays, fast test
    sp.threads = 4;
    sp.iterations = 1;

    double local_gibs, remote_gibs;
    {
        sim::EventQueue eq;
        sys::Testbed tb(eq, smallBed(sys::Setup::Local));
        local_gibs =
            StreamBenchmark(tb, sp).run(StreamKernel::Copy).bestGiBs;
    }
    {
        sim::EventQueue eq;
        sys::Testbed tb(eq,
                        smallBed(sys::Setup::SingleDisaggregated));
        remote_gibs =
            StreamBenchmark(tb, sp).run(StreamKernel::Copy).bestGiBs;
    }
    EXPECT_GT(local_gibs, 2.0 * remote_gibs);
    EXPECT_GT(remote_gibs, 1.0); // still GiB/s-class, not MB/s
}

TEST(StreamT, BondingBeatsSingleUnderLoad)
{
    // Store-and-forward framing keeps the wire the bottleneck, which
    // is the regime where the paper's bonding gain shows (VI-C). With
    // cut-through the single channel already saturates the C1
    // pipeline on this duplex workload, so the gap closes — covered
    // by CutThroughLiftsSingleChannel below.
    StreamParams sp;
    sp.elements = 256 * 1024;
    sp.threads = 8;
    sp.iterations = 1;
    auto bed = [](sys::Setup setup) {
        sys::TestbedParams tp = smallBed(setup);
        tp.flow.cutThrough = false;
        tp.flow.frameFlits = 16;
        return tp;
    };
    double single, bonded;
    {
        sim::EventQueue eq;
        sys::Testbed tb(eq, bed(sys::Setup::SingleDisaggregated));
        single =
            StreamBenchmark(tb, sp).run(StreamKernel::Copy).bestGiBs;
    }
    {
        sim::EventQueue eq;
        sys::Testbed tb(eq, bed(sys::Setup::BondingDisaggregated));
        bonded =
            StreamBenchmark(tb, sp).run(StreamKernel::Copy).bestGiBs;
    }
    EXPECT_GT(bonded, single * 1.1);
    // The C1 128B ceiling keeps bonding well below 2x (Section VI-C).
    EXPECT_LT(bonded, single * 1.9);
}

TEST(StreamT, CutThroughLiftsSingleChannel)
{
    // Cut-through framing (the default) on a single channel must
    // clearly beat the store-and-forward single channel: the frame
    // padding and in-order release overhead is what it removes.
    StreamParams sp;
    sp.elements = 256 * 1024;
    sp.threads = 8;
    sp.iterations = 1;
    auto measure = [&](bool ct, std::uint32_t flits) {
        sim::EventQueue eq;
        sys::TestbedParams tp =
            smallBed(sys::Setup::SingleDisaggregated);
        tp.flow.cutThrough = ct;
        tp.flow.frameFlits = flits;
        sys::Testbed tb(eq, tp);
        return StreamBenchmark(tb, sp).run(StreamKernel::Copy).bestGiBs;
    };
    double storeForward = measure(false, 16);
    double cutThrough = measure(true, 64);
    // This duplex workload is close to C1-bound, so the lift is the
    // padding + in-order-release overhead only (~15-20%), not the
    // full wire-bound gap.
    EXPECT_GT(cutThrough, storeForward * 1.1);
}

TEST(MemcachedT, HitRatioTracksCacheToKeySpaceRatio)
{
    sim::EventQueue eq;
    sys::Testbed tb(eq, smallBed(sys::Setup::Local));
    MemcachedParams mp;
    mp.cacheItems = 20000;
    mp.keySpaceItems = 30000; // 10:15 GiB scaled
    mp.bufferRegionBytes = 16ULL * 1024 * 1024;
    mp.clientThreads = 16;
    mp.requestsPerThread = 400;
    MemcachedBenchmark bench(tb, mp);
    auto r = bench.run();
    // Paper reports 80-82% under the same ratio and Zipf(1.0).
    EXPECT_GT(r.hitRatio, 0.70);
    EXPECT_LT(r.hitRatio, 0.92);
    EXPECT_EQ(r.getLatencyUs.count() + r.setLatencyUs.count(),
              16u * 400u);
}

TEST(MemcachedT, GetSetRatioApproximately30To1)
{
    sim::EventQueue eq;
    sys::Testbed tb(eq, smallBed(sys::Setup::Local));
    MemcachedParams mp;
    mp.cacheItems = 5000;
    mp.keySpaceItems = 8000;
    mp.bufferRegionBytes = 16ULL * 1024 * 1024;
    mp.clientThreads = 8;
    mp.requestsPerThread = 500;
    MemcachedBenchmark bench(tb, mp);
    auto r = bench.run();
    double ratio = static_cast<double>(r.getLatencyUs.count()) /
                   static_cast<double>(r.setLatencyUs.count());
    EXPECT_GT(ratio, 20.0);
    EXPECT_LT(ratio, 45.0);
}

TEST(MemcachedT, DisaggregationAddsLatencyNotCollapse)
{
    MemcachedParams mp;
    mp.cacheItems = 20000;
    mp.keySpaceItems = 30000;
    mp.bufferRegionBytes = 16ULL * 1024 * 1024;
    mp.clientThreads = 16;
    mp.requestsPerThread = 300;

    double local_mean, remote_mean;
    {
        sim::EventQueue eq;
        sys::Testbed tb(eq, smallBed(sys::Setup::Local));
        local_mean = MemcachedBenchmark(tb, mp)
                         .run()
                         .getLatencyUs.mean();
    }
    {
        sim::EventQueue eq;
        sys::Testbed tb(eq,
                        smallBed(sys::Setup::SingleDisaggregated));
        remote_mean = MemcachedBenchmark(tb, mp)
                          .run()
                          .getLatencyUs.mean();
    }
    EXPECT_GT(remote_mean, local_mean);
    // Cache-friendliness keeps the penalty modest (paper: <= ~7%).
    EXPECT_LT(remote_mean, local_mean * 1.25);
}

TEST(VoltDbT, CompletesAllOps)
{
    sim::EventQueue eq;
    sys::Testbed tb(eq, smallBed(sys::Setup::Local));
    VoltDbParams vp;
    vp.partitions = 8;
    vp.totalRows = 32768;
    vp.totalOps = 4000;
    vp.clientThreads = 200;
    VoltDbBenchmark bench(tb, vp);
    auto r = bench.run();
    EXPECT_EQ(r.latencyUs.count(), 4000u);
    EXPECT_GT(r.throughputOps, 0.0);
    EXPECT_GT(r.ucc, 0.0);
    EXPECT_GT(r.packageIpc, 0.0);
}

TEST(VoltDbT, MorePartitionsHelpMixedWorkload)
{
    VoltDbParams vp;
    vp.workload = YcsbWorkload::A;
    vp.totalRows = 32768;
    vp.totalOps = 6000;
    double tput4, tput32;
    {
        sim::EventQueue eq;
        sys::Testbed tb(eq, smallBed(sys::Setup::Local));
        vp.partitions = 4;
        tput4 = VoltDbBenchmark(tb, vp).run().throughputOps;
    }
    {
        sim::EventQueue eq;
        sys::Testbed tb(eq, smallBed(sys::Setup::Local));
        vp.partitions = 32;
        vp.rowsPerPartition = 0; // re-derive
        tput32 = VoltDbBenchmark(tb, vp).run().throughputOps;
    }
    EXPECT_GT(tput32, tput4 * 1.3);
}

TEST(VoltDbT, DisaggregationRaisesStallsAndUcc)
{
    VoltDbParams vp;
    vp.workload = YcsbWorkload::A;
    vp.partitions = 16;
    vp.totalRows = 32768;
    vp.totalOps = 6000;

    VoltDbResult local, remote;
    {
        sim::EventQueue eq;
        sys::Testbed tb(eq, smallBed(sys::Setup::Local));
        local = VoltDbBenchmark(tb, vp).run();
    }
    {
        sim::EventQueue eq;
        sys::Testbed tb(eq,
                        smallBed(sys::Setup::SingleDisaggregated));
        vp.rowsPerPartition = 0;
        remote = VoltDbBenchmark(tb, vp).run();
    }
    // Fig. 6 text: back-end stalls 55.5% local vs 80.9% remote; the
    // relationships (higher stalls, higher UCC, lower IPC) must hold.
    EXPECT_GT(remote.backendStallFraction,
              local.backendStallFraction);
    EXPECT_GT(remote.ucc, local.ucc * 0.95);
    EXPECT_LT(remote.packageIpc, local.packageIpc);
}

TEST(ElasticT, CompletesAllQueries)
{
    sim::EventQueue eq;
    sys::Testbed tb(eq, smallBed(sys::Setup::Local));
    ElasticParams ep;
    ep.shards = 5;
    ep.challenge = EsChallenge::MA;
    ep.totalOps = 200;
    ElasticBenchmark bench(tb, ep);
    auto r = bench.run();
    EXPECT_EQ(r.latencyUs.count(), 200u);
    EXPECT_GT(r.throughputOps, 0.0);
}

TEST(ElasticT, ShardScalingDegradesSyncHeavyChallenge)
{
    ElasticParams ep;
    ep.challenge = EsChallenge::RSTQ;
    ep.totalOps = 100;
    double t5, t32;
    {
        sim::EventQueue eq;
        sys::Testbed tb(eq, smallBed(sys::Setup::Local));
        ep.shards = 5;
        t5 = ElasticBenchmark(tb, ep).run().throughputOps;
    }
    {
        sim::EventQueue eq;
        sys::Testbed tb(eq, smallBed(sys::Setup::Local));
        ep.shards = 32;
        t32 = ElasticBenchmark(tb, ep).run().throughputOps;
    }
    EXPECT_LT(t32, t5); // merge/sync cost grows with shards
}

TEST(ElasticT, ScaleOutBeatsDisaggregatedOnRtq)
{
    ElasticParams ep;
    ep.challenge = EsChallenge::RTQ;
    ep.shards = 16;
    ep.shardBytes = 4ULL * 1024 * 1024;
    ep.totalOps = 120;
    double scale_out, single;
    {
        sim::EventQueue eq;
        sys::Testbed tb(eq, smallBed(sys::Setup::ScaleOut));
        scale_out = ElasticBenchmark(tb, ep).run().throughputOps;
    }
    {
        sim::EventQueue eq;
        sys::Testbed tb(eq,
                        smallBed(sys::Setup::SingleDisaggregated));
        single = ElasticBenchmark(tb, ep).run().throughputOps;
    }
    EXPECT_GT(scale_out, single);
}
