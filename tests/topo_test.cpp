/**
 * @file
 * Tests for the declarative topology subsystem: JSON parsing, spec
 * validation error paths (each a crisp SpecError, never a TF_ASSERT
 * at runtime), the switched fabric model, instantiation, and
 * jobs-independence of a multi-hop run.
 */

#include <gtest/gtest.h>

#include "net/switch.hh"
#include "topo/builder.hh"
#include "topo/spec.hh"

using namespace tf;
using topo::Spec;
using topo::SpecError;

namespace {

/** Two hosts (one with a donor) behind two switches. */
const char *kValid = R"({
  "name": "mini",
  "nodes": [
    {"name": "h0", "role": "host", "donor": "d0", "channels": 2,
     "dram": {"accessNs": 80, "gbps": 100, "banks": 8}},
    {"name": "h1", "role": "host"},
    {"name": "d0", "role": "donor", "donatedMiB": 32}
  ],
  "switches": [
    {"name": "s0", "crossingNs": 40, "radix": 4},
    {"name": "s1", "crossingNs": 40, "radix": 4}
  ],
  "links": [
    {"a": "h0", "b": "s0", "gbps": 100, "latencyNs": 500},
    {"a": "h1", "b": "s1", "gbps": 100, "latencyNs": 500},
    {"a": "s0", "b": "s1", "gbps": 25, "latencyNs": 800}
  ],
  "traffic": [
    {"name": "ping", "kind": "rpc", "src": "h0", "dst": "h1",
     "requestBytes": 128, "responseBytes": 1024, "window": 2,
     "ops": 50},
    {"name": "mem", "kind": "memory", "src": "h0",
     "policy": "remote", "accessBytes": 128, "window": 2,
     "ops": 60}
  ]
})";

std::string
expectError(const std::string &text)
{
    try {
        topo::parseSpec(text, "test.json");
    } catch (const SpecError &e) {
        return e.what();
    }
    ADD_FAILURE() << "expected SpecError, got a valid parse";
    return "";
}

} // namespace

TEST(TopoJsonT, SyntaxErrorCarriesLineAndColumn)
{
    std::string err = expectError("{\n  \"name\": \"x\",\n  oops\n}");
    EXPECT_NE(err.find("test.json:3"), std::string::npos) << err;
}

TEST(TopoJsonT, DuplicateObjectKeyRejected)
{
    std::string err =
        expectError(R"({"name": "x", "name": "y", "nodes": []})");
    EXPECT_NE(err.find("duplicate key"), std::string::npos) << err;
}

TEST(TopoJsonT, LineCommentsAllowed)
{
    Spec spec = topo::parseSpec(
        "// header comment\n"
        "{\"name\": \"c\", // trailing\n"
        " \"nodes\": [{\"name\": \"n0\", \"role\": \"host\"}]}",
        "c.json");
    EXPECT_EQ(spec.name, "c");
    ASSERT_EQ(spec.nodes.size(), 1u);
}

TEST(TopoSpecT, ValidFileParses)
{
    Spec spec = topo::parseSpec(kValid, "mini.json");
    EXPECT_EQ(spec.name, "mini");
    ASSERT_EQ(spec.nodes.size(), 3u);
    EXPECT_EQ(spec.nodes[0].donor, "d0");
    EXPECT_EQ(spec.nodes[0].channels, 2u);
    EXPECT_EQ(spec.nodes[0].dram.banks, 8u);
    ASSERT_EQ(spec.switches.size(), 2u);
    EXPECT_EQ(spec.switches[0].radix, 4u);
    ASSERT_EQ(spec.links.size(), 3u);
    EXPECT_DOUBLE_EQ(spec.links[2].gbps, 25.0);
    ASSERT_EQ(spec.traffic.size(), 2u);
    EXPECT_EQ(spec.traffic[0].kind, "rpc");
    EXPECT_EQ(spec.traffic[1].policy, "remote");
}

TEST(TopoSpecT, UnknownNodeReferenceInLink)
{
    std::string err = expectError(R"({
      "name": "x",
      "nodes": [{"name": "h0", "role": "host"}],
      "links": [{"a": "h0", "b": "ghost", "latencyNs": 500}]
    })");
    EXPECT_NE(err.find("unknown node \"ghost\""), std::string::npos)
        << err;
}

TEST(TopoSpecT, UnknownDonorReference)
{
    std::string err = expectError(R"({
      "name": "x",
      "nodes": [{"name": "h0", "role": "host", "donor": "nope"}]
    })");
    EXPECT_NE(err.find("unknown node \"nope\""), std::string::npos)
        << err;
}

TEST(TopoSpecT, DuplicateNodeName)
{
    std::string err = expectError(R"({
      "name": "x",
      "nodes": [{"name": "h0", "role": "host"},
                {"name": "h0", "role": "host"}]
    })");
    EXPECT_NE(err.find("duplicate name \"h0\""), std::string::npos)
        << err;
}

TEST(TopoSpecT, SwitchMayNotShadowNodeName)
{
    std::string err = expectError(R"({
      "name": "x",
      "nodes": [{"name": "h0", "role": "host"}],
      "switches": [{"name": "h0"}]
    })");
    EXPECT_NE(err.find("duplicate name \"h0\""), std::string::npos)
        << err;
}

TEST(TopoSpecT, NonPositiveLinkLatencyBreaksLookahead)
{
    std::string err = expectError(R"({
      "name": "x",
      "nodes": [{"name": "h0", "role": "host"},
                {"name": "h1", "role": "host"}],
      "links": [{"a": "h0", "b": "h1", "latencyNs": 0}]
    })");
    EXPECT_NE(err.find("latencyNs must be positive"),
              std::string::npos)
        << err;
    EXPECT_NE(err.find("lookahead"), std::string::npos) << err;
}

TEST(TopoSpecT, UnreachableEndpoint)
{
    std::string err = expectError(R"({
      "name": "x",
      "nodes": [{"name": "h0", "role": "host"},
                {"name": "h1", "role": "host"},
                {"name": "h2", "role": "host"}],
      "links": [{"a": "h0", "b": "h1", "latencyNs": 500}],
      "traffic": [{"name": "t", "kind": "rpc",
                   "src": "h0", "dst": "h2"}]
    })");
    EXPECT_NE(err.find("unreachable"), std::string::npos) << err;
}

TEST(TopoSpecT, TypoedKeyRejected)
{
    std::string err = expectError(R"({
      "name": "x",
      "nodes": [{"name": "h0", "role": "host",
                 "chanels": 2}]
    })");
    EXPECT_NE(err.find("unknown key \"chanels\""), std::string::npos)
        << err;
}

TEST(TopoSpecT, RadixOverflowRejected)
{
    std::string err = expectError(R"({
      "name": "x",
      "nodes": [{"name": "h0", "role": "host"},
                {"name": "h1", "role": "host"},
                {"name": "h2", "role": "host"}],
      "switches": [{"name": "s0", "radix": 2}],
      "links": [{"a": "h0", "b": "s0", "latencyNs": 500},
                {"a": "h1", "b": "s0", "latencyNs": 500},
                {"a": "h2", "b": "s0", "latencyNs": 500}]
    })");
    EXPECT_NE(err.find("radix"), std::string::npos) << err;
}

TEST(TopoSpecT, DonorClaimedTwiceRejected)
{
    std::string err = expectError(R"({
      "name": "x",
      "nodes": [{"name": "h0", "role": "host", "donor": "d0"},
                {"name": "h1", "role": "host", "donor": "d0"},
                {"name": "d0", "role": "donor"}]
    })");
    EXPECT_NE(err.find("claimed by more than one host"),
              std::string::npos)
        << err;
}

TEST(TopoSpecT, UnknownFaultKindRejected)
{
    std::string err = expectError(R"({
      "name": "x",
      "nodes": [{"name": "h0", "role": "host"}],
      "faults": [{"kind": "gremlins", "point": "h0.dram"}]
    })");
    EXPECT_NE(err.find("unknown fault kind \"gremlins\""),
              std::string::npos)
        << err;
}

TEST(TopoSpecT, MemoryTrafficNeedsADonorForRemotePolicy)
{
    std::string err = expectError(R"({
      "name": "x",
      "nodes": [{"name": "h0", "role": "host"}],
      "traffic": [{"name": "m", "kind": "memory", "src": "h0",
                   "policy": "remote"}]
    })");
    EXPECT_NE(err.find("has no donor"), std::string::npos) << err;
}

TEST(FabricT, RoutesAndHopCounts)
{
    sim::EventQueue eq;
    net::Fabric fabric("f", eq);
    fabric.addEndpoint("a");
    fabric.addEndpoint("b");
    fabric.addSwitch("s0", net::SwitchParams{});
    fabric.addSwitch("s1", net::SwitchParams{});
    net::FabricLinkParams lp;
    fabric.connect("a", "s0", lp);
    fabric.connect("s0", "s1", lp);
    fabric.connect("s1", "b", lp);
    fabric.finalize();

    EXPECT_TRUE(fabric.reachable("a", "b"));
    EXPECT_TRUE(fabric.reachable("b", "a"));
    EXPECT_EQ(fabric.hopCount("a", "b"), 3u);

    bool delivered = false;
    fabric.send("a", "b", 4096, [&] { delivered = true; });
    eq.run();
    EXPECT_TRUE(delivered);
    // Both switches forwarded the one message.
    EXPECT_EQ(fabric.relayedMessages(), 2u);
}

TEST(FabricT, OversubscribedEgressQueues)
{
    // Two 100 Gb/s sources funnel into one 10 Gb/s egress: the
    // second message must wait out the first one's serialisation in
    // the switch's output queue.
    sim::EventQueue eq;
    net::Fabric fabric("f", eq);
    fabric.addEndpoint("a");
    fabric.addEndpoint("b");
    fabric.addEndpoint("sink");
    fabric.addSwitch("sw", net::SwitchParams{});
    net::FabricLinkParams fast;
    fast.bandwidthBps = 100e9 / 8;
    net::FabricLinkParams slow;
    slow.bandwidthBps = 10e9 / 8;
    fabric.connect("a", "sw", fast);
    fabric.connect("b", "sw", fast);
    fabric.connect("sw", "sink", slow);
    fabric.finalize();

    int arrived = 0;
    fabric.send("a", "sink", 100000, [&] { ++arrived; });
    fabric.send("b", "sink", 100000, [&] { ++arrived; });
    eq.run();
    EXPECT_EQ(arrived, 2);
    // 100 kB at 1.25 GB/s = 80 us of serialisation the second
    // message waited behind.
    EXPECT_GT(fabric.maxQueueDelayNs(), 70e3);
}

TEST(TopoBuildT, InstanceRunsAllTraffic)
{
    Spec spec = topo::parseSpec(kValid, "mini.json");
    topo::BuildOptions opt;
    topo::Instance inst(spec, opt);
    // 2 host groups (donor folded into h0's) + 2 switches.
    EXPECT_EQ(inst.lpCount(), 4u);
    EXPECT_EQ(inst.fabric().hopCount("h0", "h1"), 3u);

    inst.run();
    ASSERT_EQ(inst.trafficCount(), 2u);
    for (std::size_t i = 0; i < inst.trafficCount(); ++i) {
        const auto &t = inst.traffic(i);
        EXPECT_EQ(t.completed.value(), t.target) << t.name;
        EXPECT_GT(t.latUs.mean(), 0.0) << t.name;
    }
    EXPECT_GT(inst.fabric().relayedMessages(), 0u);
}

TEST(TopoBuildT, UnknownFaultPointIsASpecError)
{
    std::string text(kValid);
    auto pos = text.rfind('}');
    ASSERT_NE(pos, std::string::npos);
    text.insert(
        pos,
        R"(, "faults": [{"kind": "dramStall", "point": "nosuch.dram",
                         "atUs": 10, "forUs": 5}])");
    Spec spec = topo::parseSpec(text, "mini.json");
    try {
        topo::Instance inst(spec, topo::BuildOptions{});
        FAIL() << "expected SpecError for unknown fault point";
    } catch (const SpecError &e) {
        EXPECT_NE(std::string(e.what()).find("nosuch.dram"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("known points"),
                  std::string::npos);
    }
}

TEST(TopoBuildT, JobsDoNotChangeTheSimulation)
{
    Spec spec = topo::parseSpec(kValid, "mini.json");

    auto runWith = [&spec](unsigned jobs) {
        topo::BuildOptions opt;
        opt.jobs = jobs;
        topo::Instance inst(spec, opt);
        inst.run();
        return std::make_tuple(
            inst.traffic(0).latUs.samples(),
            inst.traffic(1).latUs.samples(),
            inst.fabric().relayedMessages(), inst.lastCompletion());
    };

    auto serial = runWith(1);
    auto parallel = runWith(2);
    EXPECT_EQ(std::get<0>(serial), std::get<0>(parallel));
    EXPECT_EQ(std::get<1>(serial), std::get<1>(parallel));
    EXPECT_EQ(std::get<2>(serial), std::get<2>(parallel));
    EXPECT_EQ(std::get<3>(serial), std::get<3>(parallel));
}

TEST(TopoBuildT, InterferenceRaisesVictimTail)
{
    // Inline miniature of configs/noisy_neighbor.json: victim runs
    // quiet, then again alongside a bulk aggressor sharing the
    // oversubscribed core -> edge downlink.
    const char *text = R"({
      "name": "noisy_mini",
      "nodes": [
        {"name": "vc", "role": "host"}, {"name": "vs", "role": "host"},
        {"name": "ac", "role": "host"}, {"name": "as", "role": "host"}
      ],
      "switches": [{"name": "edge", "radix": 3},
                   {"name": "core", "radix": 3}],
      "links": [
        {"a": "vc", "b": "edge", "gbps": 100, "latencyNs": 500},
        {"a": "ac", "b": "edge", "gbps": 100, "latencyNs": 500},
        {"a": "edge", "b": "core", "gbps": 25, "latencyNs": 800},
        {"a": "core", "b": "vs", "gbps": 100, "latencyNs": 500},
        {"a": "core", "b": "as", "gbps": 100, "latencyNs": 500}
      ],
      "traffic": [
        {"name": "quiet", "kind": "rpc", "src": "vc", "dst": "vs",
         "requestBytes": 128, "responseBytes": 4096, "window": 2,
         "ops": 60, "startUs": 0},
        {"name": "aggr", "kind": "rpc", "src": "ac", "dst": "as",
         "requestBytes": 256, "responseBytes": 32768, "window": 8,
         "ops": 60, "startUs": 200},
        {"name": "contended", "kind": "rpc", "src": "vc", "dst": "vs",
         "requestBytes": 128, "responseBytes": 4096, "window": 2,
         "ops": 60, "startUs": 200}
      ]
    })";
    Spec spec = topo::parseSpec(text, "noisy_mini.json");
    topo::Instance inst(spec, topo::BuildOptions{});
    inst.run();

    const auto &quiet = inst.traffic(0);
    const auto &contended = inst.traffic(2);
    ASSERT_EQ(quiet.completed.value(), quiet.target);
    ASSERT_EQ(contended.completed.value(), contended.target);
    // The aggressor's 32 KiB responses park in the shared egress
    // queue; the contended victim's tail must visibly suffer.
    EXPECT_GT(contended.latUs.quantile(0.99),
              2.0 * quiet.latUs.quantile(0.99));
}

// ------------------------------------------------- monitors stanza

TEST(TopoMonitorsT, BadOpRejectedWithLocation)
{
    std::string err = expectError(R"({
      "name": "m", "nodes": [{"name": "h0", "role": "host"}],
      "monitors": [{"name": "r", "metric": "x.ops", "op": "!=",
                    "threshold": 1}]
    })");
    EXPECT_NE(err.find("test.json:3"), std::string::npos) << err;
    EXPECT_NE(err.find("op"), std::string::npos) << err;
}

TEST(TopoMonitorsT, MissingThresholdRejected)
{
    std::string err = expectError(R"({
      "name": "m", "nodes": [{"name": "h0", "role": "host"}],
      "monitors": [{"name": "r", "metric": "x.ops"}]
    })");
    EXPECT_NE(err.find("threshold"), std::string::npos) << err;
}

TEST(TopoMonitorsT, ZeroForWindowsRejected)
{
    std::string err = expectError(R"({
      "name": "m", "nodes": [{"name": "h0", "role": "host"}],
      "monitors": [{"name": "r", "metric": "x.ops",
                    "threshold": 1, "forWindows": 0}]
    })");
    EXPECT_NE(err.find("forWindows"), std::string::npos) << err;
}

TEST(TopoMonitorsT, UntilBeforeFromRejected)
{
    std::string err = expectError(R"({
      "name": "m", "nodes": [{"name": "h0", "role": "host"}],
      "monitors": [{"name": "r", "metric": "x.ops", "threshold": 1,
                    "fromUs": 100, "untilUs": 50}]
    })");
    EXPECT_NE(err.find("untilUs"), std::string::npos) << err;
}

TEST(TopoMonitorsT, DuplicateMonitorNameRejected)
{
    std::string err = expectError(R"({
      "name": "m", "nodes": [{"name": "h0", "role": "host"}],
      "monitors": [
        {"name": "r", "metric": "x.ops", "threshold": 1},
        {"name": "r", "metric": "y.ops", "threshold": 2}]
    })");
    EXPECT_NE(err.find("duplicate"), std::string::npos) << err;
}

TEST(TopoMonitorsT, UnknownMetricIsABuildErrorListingSeries)
{
    std::string text(kValid);
    auto pos = text.rfind('}');
    ASSERT_NE(pos, std::string::npos);
    text.insert(pos,
                R"(, "monitors": [{"name": "r",
                    "metric": "nosuch.latP99Us", "threshold": 1}])");
    Spec spec = topo::parseSpec(text, "mini.json");
    try {
        topo::Instance inst(spec, topo::BuildOptions{});
        FAIL() << "expected SpecError for unknown monitor metric";
    } catch (const SpecError &e) {
        std::string what = e.what();
        // file:line:col of the stanza, the typo, and what exists.
        EXPECT_NE(what.find("mini.json:"), std::string::npos) << what;
        EXPECT_NE(what.find("nosuch.latP99Us"), std::string::npos)
            << what;
        EXPECT_NE(what.find("ping.latP99Us"), std::string::npos)
            << what;
    }
}

TEST(TopoMonitorsT, WatchdogTripsUnderContentionOnly)
{
    // The InterferenceRaisesVictimTail rig, with the interference
    // signal promoted to declarative SLO rules: the quiet-phase rule
    // must never trip, the contended-phase rule must.
    const char *text = R"({
      "name": "noisy_mon",
      "nodes": [
        {"name": "vc", "role": "host"}, {"name": "vs", "role": "host"},
        {"name": "ac", "role": "host"}, {"name": "as", "role": "host"}
      ],
      "switches": [{"name": "edge", "radix": 3},
                   {"name": "core", "radix": 3}],
      "links": [
        {"a": "vc", "b": "edge", "gbps": 100, "latencyNs": 500},
        {"a": "ac", "b": "edge", "gbps": 100, "latencyNs": 500},
        {"a": "edge", "b": "core", "gbps": 25, "latencyNs": 800},
        {"a": "core", "b": "vs", "gbps": 100, "latencyNs": 500},
        {"a": "core", "b": "as", "gbps": 100, "latencyNs": 500}
      ],
      "traffic": [
        {"name": "quiet", "kind": "rpc", "src": "vc", "dst": "vs",
         "requestBytes": 128, "responseBytes": 4096, "window": 2,
         "ops": 60, "startUs": 0},
        {"name": "aggr", "kind": "rpc", "src": "ac", "dst": "as",
         "requestBytes": 256, "responseBytes": 32768, "window": 8,
         "ops": 60, "startUs": 200},
        {"name": "contended", "kind": "rpc", "src": "vc", "dst": "vs",
         "requestBytes": 128, "responseBytes": 4096, "window": 2,
         "ops": 60, "startUs": 200}
      ],
      "timelineUs": 25,
      "monitors": [
        {"name": "quiet_tail", "metric": "quiet.latP99Us",
         "op": ">", "threshold": 30, "untilUs": 200},
        {"name": "contended_tail", "metric": "contended.latP99Us",
         "op": ">", "threshold": 30, "fromUs": 200}
      ]
    })";
    Spec spec = topo::parseSpec(text, "noisy_mon.json");

    auto runWith = [&spec](unsigned jobs) {
        topo::BuildOptions opt;
        opt.jobs = jobs;
        topo::Instance inst(spec, opt);
        EXPECT_TRUE(inst.timelineEnabled());
        inst.run();
        return std::make_pair(
            std::vector<sim::timeline::SloResult>(inst.sloResults()),
            inst.timeline().windows());
    };

    auto [slo, windows] = runWith(1);
    EXPECT_GT(windows, 0u);
    ASSERT_EQ(slo.size(), 2u);
    const auto &contended =
        slo[0].name == "contended_tail" ? slo[0] : slo[1];
    const auto &quiet =
        slo[0].name == "quiet_tail" ? slo[0] : slo[1];
    EXPECT_EQ(quiet.violations, 0u);
    EXPECT_GT(quiet.evaluated, 0u);
    EXPECT_GE(contended.violations, 1u);
    EXPECT_GT(contended.worstValue, 30.0);
    EXPECT_NE(contended.firstViolationTick, sim::maxTick);

    // Same watchdog verdicts for a partitioned run.
    auto [slo2, windows2] = runWith(2);
    EXPECT_EQ(windows, windows2);
    ASSERT_EQ(slo2.size(), 2u);
    for (std::size_t i = 0; i < slo.size(); ++i) {
        EXPECT_EQ(slo[i].violations, slo2[i].violations);
        EXPECT_EQ(slo[i].evaluated, slo2[i].evaluated);
        EXPECT_EQ(slo[i].worstValue, slo2[i].worstValue);
        EXPECT_EQ(slo[i].firstViolationTick,
                  slo2[i].firstViolationTick);
    }
}

#ifdef TF_TOPO_CONFIG_DIR
TEST(TopoConfigsT, CheckedInConfigsBuild)
{
    const char *files[] = {"ring.json", "chain.json", "fullmesh.json",
                           "noisy_neighbor.json"};
    for (const char *f : files) {
        std::string path = std::string(TF_TOPO_CONFIG_DIR) + "/" + f;
        Spec spec = topo::loadSpecFile(path);
        topo::BuildOptions opt;
        opt.smoke = true;
        topo::Instance inst(spec, opt);
        EXPECT_GT(inst.lpCount(), 0u) << f;
    }
}

TEST(TopoConfigsT, NoisyNeighborMonitorsTripAsDesigned)
{
    // The checked-in config's monitors are part of its contract:
    // quiet phase clean, contended phase tripping. CI additionally
    // pins slo.vic_quiet_tail.violations at 0 in the baseline.
    std::string path =
        std::string(TF_TOPO_CONFIG_DIR) + "/noisy_neighbor.json";
    Spec spec = topo::loadSpecFile(path);
    ASSERT_EQ(spec.monitors.size(), 2u);
    topo::BuildOptions opt;
    opt.smoke = true;
    topo::Instance inst(spec, opt);
    ASSERT_TRUE(inst.timelineEnabled());
    inst.run();

    ASSERT_EQ(inst.sloResults().size(), 2u);
    for (const auto &s : inst.sloResults()) {
        if (s.name == "vic_quiet_tail") {
            EXPECT_EQ(s.violations, 0u);
            EXPECT_GT(s.evaluated, 0u);
        } else {
            EXPECT_EQ(s.name, "vic_contended_tail");
            EXPECT_GE(s.violations, 1u);
        }
    }
}
#endif
