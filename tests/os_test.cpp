/**
 * @file
 * Tests for the OS support layer: NUMA topology, sparse-section memory
 * manager with hotplug, allocation policies, address spaces and
 * AutoNUMA page migration.
 */

#include <gtest/gtest.h>

#include "mem/dram.hh"
#include "os/address_space.hh"
#include "os/memory_manager.hh"
#include "os/migration.hh"
#include "os/numa.hh"
#include "os/swap.hh"

using namespace tf;
using namespace tf::os;

namespace {

constexpr std::uint64_t kSection = 1 << 22; // 4 MiB sections in tests
constexpr std::uint64_t kPage = 64 * 1024;

struct OsFixture : ::testing::Test
{
    NumaTopology topo;
    std::unique_ptr<MemoryManager> mm;
    NodeId local = invalidNode;
    NodeId remote = invalidNode; // CPU-less disaggregated node

    void
    SetUp() override
    {
        local = topo.addNode("local", true);
        remote = topo.addNode("tflow0", false);
        topo.setDistance(local, remote, 80);
        mm = std::make_unique<MemoryManager>(topo, kSection, kPage);
        // Boot memory: 4 sections on the local node.
        for (int i = 0; i < 4; ++i)
            ASSERT_TRUE(mm->onlineSection(
                local, static_cast<mem::Addr>(i) * kSection));
    }
};

} // namespace

TEST(NumaTopologyT, DistancesAndCpulessNodes)
{
    NumaTopology topo;
    NodeId a = topo.addNode("n0", true);
    NodeId b = topo.addNode("n1", true);
    NodeId c = topo.addNode("tflow", false);
    topo.setDistance(a, b, 20);
    topo.setDistance(a, c, 80);
    topo.setDistance(b, c, 80);

    EXPECT_EQ(topo.distance(a, a), 10);
    EXPECT_EQ(topo.distance(a, b), 20);
    EXPECT_EQ(topo.distance(b, a), 20);
    EXPECT_EQ(topo.cpulessNodes(), std::vector<NodeId>{c});

    auto order = topo.byDistance(a);
    EXPECT_EQ(order.front(), a);
    EXPECT_EQ(order.back(), c);
}

TEST_F(OsFixture, HotplugAddsPages)
{
    EXPECT_EQ(mm->totalPages(local), 4 * (kSection / kPage));
    EXPECT_EQ(mm->freePages(local), mm->totalPages(local));
    EXPECT_EQ(mm->totalPages(remote), 0u);

    mem::Addr remote_base = 0x100000000ULL;
    ASSERT_TRUE(mm->onlineSection(remote, remote_base));
    EXPECT_EQ(mm->totalPages(remote), kSection / kPage);
    EXPECT_TRUE(mm->isOnline(remote_base));
    EXPECT_EQ(mm->onlineSections(), 5u);
}

TEST_F(OsFixture, HotplugRejectsUnalignedAndDuplicate)
{
    EXPECT_FALSE(mm->onlineSection(remote, 0x1234));
    EXPECT_FALSE(mm->onlineSection(remote, 0)); // already online
}

TEST_F(OsFixture, OfflineRequiresFreePages)
{
    mem::Addr base = 0x100000000ULL;
    ASSERT_TRUE(mm->onlineSection(remote, base));
    auto page = mm->allocPageOn(remote);
    ASSERT_TRUE(page.has_value());
    EXPECT_FALSE(mm->offlineSection(base)); // page in use
    mm->freePage(*page);
    EXPECT_TRUE(mm->offlineSection(base));
    EXPECT_EQ(mm->totalPages(remote), 0u);
}

TEST_F(OsFixture, NodeOfMapsAddresses)
{
    mem::Addr base = 0x100000000ULL;
    ASSERT_TRUE(mm->onlineSection(remote, base));
    EXPECT_EQ(mm->nodeOf(0x1000), local);
    EXPECT_EQ(mm->nodeOf(base + 123), remote);
    EXPECT_EQ(mm->nodeOf(0xdeadbeef00ULL), invalidNode);
}

TEST_F(OsFixture, LocalPolicyPrefersHomeThenFallsBack)
{
    mem::Addr base = 0x100000000ULL;
    ASSERT_TRUE(mm->onlineSection(remote, base));
    AllocPolicy policy = AllocPolicy::local();

    // Drain local memory completely.
    std::uint64_t local_pages = mm->freePages(local);
    for (std::uint64_t i = 0; i < local_pages; ++i) {
        auto p = mm->allocPage(policy, local);
        ASSERT_TRUE(p.has_value());
        EXPECT_EQ(mm->nodeOf(*p), local);
    }
    // Next allocation falls back to the remote node.
    auto p = mm->allocPage(policy, local);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(mm->nodeOf(*p), remote);
}

TEST_F(OsFixture, InterleavePolicyAlternates)
{
    mem::Addr base = 0x100000000ULL;
    ASSERT_TRUE(mm->onlineSection(remote, base));
    AllocPolicy policy = AllocPolicy::interleave({local, remote});

    int local_count = 0, remote_count = 0;
    for (int i = 0; i < 40; ++i) {
        auto p = mm->allocPage(policy, local);
        ASSERT_TRUE(p.has_value());
        (mm->nodeOf(*p) == local ? local_count : remote_count)++;
    }
    // Strict 50/50 round-robin while both nodes have memory.
    EXPECT_EQ(local_count, 20);
    EXPECT_EQ(remote_count, 20);
}

TEST_F(OsFixture, BindPolicyFailsWhenExhausted)
{
    mem::Addr base = 0x100000000ULL;
    ASSERT_TRUE(mm->onlineSection(remote, base));
    AllocPolicy policy = AllocPolicy::bind({remote});
    std::uint64_t pages = mm->freePages(remote);
    for (std::uint64_t i = 0; i < pages; ++i)
        ASSERT_TRUE(mm->allocPage(policy, local).has_value());
    EXPECT_FALSE(mm->allocPage(policy, local).has_value());
    EXPECT_GT(mm->freePages(local), 0u); // bind never spills
}

TEST_F(OsFixture, ClaimWholeSectionRemovesFromFreeList)
{
    std::uint64_t before = mm->freePages(local);
    auto base = mm->claimWholeSection(local);
    ASSERT_TRUE(base.has_value());
    EXPECT_EQ(mm->freePages(local), before - kSection / kPage);
    mm->releaseWholeSection(*base);
    EXPECT_EQ(mm->freePages(local), before);
}

TEST_F(OsFixture, ClaimSkipsPartiallyUsedSections)
{
    // Use one page from each of the first three sections.
    std::vector<mem::Addr> held;
    for (int s = 0; s < 3; ++s) {
        auto p = mm->allocPageOn(local);
        ASSERT_TRUE(p.has_value());
        held.push_back(*p);
    }
    // Pages come from section 0's free-list head, so sections 1-3 are
    // still fully free; claiming must not return section 0.
    auto base = mm->claimWholeSection(local);
    ASSERT_TRUE(base.has_value());
    for (mem::Addr p : held)
        EXPECT_FALSE(p >= *base && p < *base + kSection);
}

TEST_F(OsFixture, AddressSpaceFaultsInLazily)
{
    AddressSpace as(*mm, local);
    mem::Addr va = as.mmap(10 * kPage);
    EXPECT_EQ(as.mappedPages(), 0u);
    auto pa = as.translate(va + 3 * kPage + 17);
    ASSERT_TRUE(pa.has_value());
    EXPECT_EQ(*pa % kPage, 17u);
    EXPECT_EQ(as.mappedPages(), 1u);
    EXPECT_EQ(as.faults(), 1u);
    // Same page again: no new fault.
    as.translate(va + 3 * kPage + 1000);
    EXPECT_EQ(as.faults(), 1u);
}

TEST_F(OsFixture, AddressSpaceMunmapFreesFrames)
{
    AddressSpace as(*mm, local);
    std::uint64_t before = mm->freePages(local);
    mem::Addr va = as.mmap(4 * kPage);
    for (int i = 0; i < 4; ++i)
        as.translate(va + static_cast<mem::Addr>(i) * kPage);
    EXPECT_EQ(mm->freePages(local), before - 4);
    as.munmap(va, 4 * kPage);
    EXPECT_EQ(mm->freePages(local), before);
    EXPECT_EQ(as.mappedPages(), 0u);
}

TEST_F(OsFixture, ResidencyFollowsPolicy)
{
    mem::Addr base = 0x100000000ULL;
    ASSERT_TRUE(mm->onlineSection(remote, base));
    AddressSpace as(*mm, local,
                    AllocPolicy::interleave({local, remote}));
    mem::Addr va = as.mmap(20 * kPage);
    for (int i = 0; i < 20; ++i)
        as.translate(va + static_cast<mem::Addr>(i) * kPage);
    auto res = as.residency();
    EXPECT_EQ(res[local], 10u);
    EXPECT_EQ(res[remote], 10u);
}

TEST_F(OsFixture, AutoNumaMigratesHotRemotePages)
{
    mem::Addr base = 0x100000000ULL;
    ASSERT_TRUE(mm->onlineSection(remote, base));
    AddressSpace as(*mm, local, AllocPolicy::bind({remote}));
    mem::Addr va = as.mmap(8 * kPage);
    for (int i = 0; i < 8; ++i)
        as.translate(va + static_cast<mem::Addr>(i) * kPage);
    EXPECT_EQ(as.residency()[remote], 8u);

    AutoNumaParams params;
    params.hotThreshold = 16;
    AutoNuma numa(*mm, params);
    // Hammer pages 0 and 1 from the local CPU node.
    for (int i = 0; i < 100; ++i) {
        numa.recordAccess(as, va, local);
        numa.recordAccess(as, va + kPage, local);
    }
    // Touch page 7 below the hot threshold.
    for (int i = 0; i < 4; ++i)
        numa.recordAccess(as, va + 7 * kPage, local);

    auto migrated = numa.scan();
    EXPECT_EQ(migrated.size(), 2u);
    auto res = as.residency();
    EXPECT_EQ(res[local], 2u);
    EXPECT_EQ(res[remote], 6u);
    EXPECT_EQ(numa.migrations(), 2u);
}

TEST_F(OsFixture, AutoNumaRespectsRateLimit)
{
    mem::Addr base = 0x100000000ULL;
    ASSERT_TRUE(mm->onlineSection(remote, base));
    AddressSpace as(*mm, local, AllocPolicy::bind({remote}));
    mem::Addr va = as.mmap(32 * kPage);

    AutoNumaParams params;
    params.hotThreshold = 4;
    params.maxMigrationsPerScan = 5;
    AutoNuma numa(*mm, params);
    for (int p = 0; p < 32; ++p)
        for (int i = 0; i < 10; ++i)
            numa.recordAccess(as, va + static_cast<mem::Addr>(p) * kPage,
                              local);
    EXPECT_EQ(numa.scan().size(), 5u);
}

TEST_F(OsFixture, AutoNumaLeavesLocalPagesAlone)
{
    AddressSpace as(*mm, local); // local policy
    mem::Addr va = as.mmap(4 * kPage);
    AutoNuma numa(*mm);
    for (int i = 0; i < 100; ++i)
        numa.recordAccess(as, va, local);
    EXPECT_TRUE(numa.scan().empty());
}

TEST(SwapT, ResidentAccessIsMinor)
{
    sim::EventQueue eq;
    mem::Dram dram("d", eq, mem::DramParams{}, nullptr);
    SwapParams sp;
    sp.localPages = 4;
    SwappingMemory swap("swap", eq, sp, dram);
    int done = 0;
    swap.access(0, false, [&] { ++done; });
    eq.run();
    swap.access(64, false, [&] { ++done; }); // same page
    eq.run();
    EXPECT_EQ(done, 2);
    EXPECT_EQ(swap.majorFaults(), 1u);
    EXPECT_EQ(swap.minorAccesses(), 1u);
}

TEST(SwapT, EvictsLruBeyondCapacity)
{
    sim::EventQueue eq;
    mem::Dram dram("d", eq, mem::DramParams{}, nullptr);
    SwapParams sp;
    sp.localPages = 2;
    SwappingMemory swap("swap", eq, sp, dram);
    int done = 0;
    auto touch = [&](std::uint64_t page) {
        swap.access(page * sp.pageBytes, false, [&] { ++done; });
        eq.run();
    };
    touch(0);
    touch(1);
    touch(0); // refresh page 0
    touch(2); // evicts page 1
    touch(0); // still resident
    EXPECT_EQ(swap.majorFaults(), 3u);
    touch(1); // was evicted -> faults again
    EXPECT_EQ(swap.majorFaults(), 4u);
    EXPECT_EQ(done, 6);
}

TEST(SwapT, DirtyEvictionPaysPageOut)
{
    sim::EventQueue eq;
    mem::Dram dram("d", eq, mem::DramParams{}, nullptr);
    SwapParams sp;
    sp.localPages = 1;
    SwappingMemory swap("swap", eq, sp, dram);
    int done = 0;
    swap.access(0, true, [&] { ++done; }); // dirty page 0
    eq.run();
    sim::Tick before = eq.now();
    swap.access(sp.pageBytes, false, [&] { ++done; }); // evict dirty
    eq.run();
    sim::Tick dirty_evict = eq.now() - before;
    EXPECT_EQ(swap.pageOuts(), 1u);

    before = eq.now();
    swap.access(0, false, [&] { ++done; }); // evict clean page
    eq.run();
    EXPECT_EQ(done, 3);
    // Dirty eviction pays two transfers, clean only one.
    EXPECT_GT(dirty_evict, eq.now() - before);
}

TEST(SwapT, FaultLatencyDominatedByPageTransfer)
{
    sim::EventQueue eq;
    mem::Dram dram("d", eq, mem::DramParams{}, nullptr);
    SwapParams sp;
    SwappingMemory swap("swap", eq, sp, dram);
    swap.access(0, false, [] {});
    eq.run();
    // 64 KiB at 12.5 GB/s = 5.24 us + 1.5 us link + 4 us trap + DRAM.
    double fault_us = swap.faultLatencyUs().mean();
    EXPECT_GT(fault_us, 10.0);
    EXPECT_LT(fault_us, 12.0);
}
