#!/bin/sh
# Same-seed determinism cross-check for the parallel bench harness.
#
# Runs the smoke-sized proto_datapath, fig05_stream, fault_soak and
# cache_vs_migration scenarios with --jobs 1, 2 and 4 and requires
# every result document to be byte-identical (--no-wall strips the
# only legitimately varying field). This is the end-to-end guarantee
# the parallel engine and the point-sharding harness promise: worker
# count must not be observable in any output — including the chaos
# soak, whose seeded FaultPlans must replay identically on every
# worker layout, and the page cache, whose fill/flush/provider
# machinery must not leak scheduling order into its stats.
#
# Usage: check_determinism.sh <path-to-tf_bench>

set -e

bench="$1"
if [ -z "$bench" ] || [ ! -x "$bench" ]; then
    echo "usage: $0 <path-to-tf_bench>" >&2
    exit 2
fi

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

scenarios="proto_datapath fig05_stream fault_soak cache_vs_migration"
for jobs in 1 2 4; do
    mkdir -p "$workdir/j$jobs"
    "$bench" --smoke --no-wall --seed 42 --jobs "$jobs" \
        --scenario proto_datapath --scenario fig05_stream \
        --scenario fault_soak --scenario cache_vs_migration \
        --out "$workdir/j$jobs" > /dev/null
done

# The switched multi-hop fabric is the newest cross-LP machinery:
# every switch is its own logical process, so a config-driven topology
# exercises LP counts and channel layouts none of the C++ scenarios
# reach. noisy_neighbor funnels two RPC flows through a shared
# oversubscribed egress queue — worker count must not perturb the
# queueing order.
configdir=$(dirname "$0")/../configs
for jobs in 1 2 4; do
    mkdir -p "$workdir/tj$jobs"
    "$bench" --smoke --no-wall --seed 42 --jobs "$jobs" \
        --topo "$configdir/noisy_neighbor.json" \
        --topo "$configdir/ring.json" \
        --out "$workdir/tj$jobs" > /dev/null
done

# Windowed telemetry leg: the timeline sampler schedules real events
# (boundary closes, disarm/re-arm through the merge wake hook), so it
# must itself be invisible to worker count — both the `timeline`
# section in the BENCH JSON and the Perfetto counter tracks in the
# trace file. noisy_neighbor's monitors auto-enable its timeline; the
# soak gets an explicit 10 us window over its per-point series.
for jobs in 1 2 4; do
    mkdir -p "$workdir/tlj$jobs"
    "$bench" --smoke --no-wall --seed 42 --jobs "$jobs" \
        --scenario fault_soak --timeline-window 10 \
        --out "$workdir/tlj$jobs" > /dev/null
    "$bench" --smoke --no-wall --seed 42 --jobs "$jobs" \
        --topo "$configdir/noisy_neighbor.json" \
        --trace "$workdir/tlj$jobs/trace.json" \
        --out "$workdir/tlj$jobs" > /dev/null
done

# Both framing modes must hold the guarantee: cut-through adds the
# early-release set and per-transaction staggered delivery, which is
# exactly the kind of machinery that could leak scheduling order.
for jobs in 1 2 4; do
    mkdir -p "$workdir/sfj$jobs"
    "$bench" --smoke --no-wall --seed 42 --jobs "$jobs" \
        --cut-through off --scenario proto_datapath \
        --out "$workdir/sfj$jobs" > /dev/null
done

status=0
for s in $scenarios; do
    for jobs in 2 4; do
        if ! cmp -s "$workdir/j1/BENCH_$s.json" \
                    "$workdir/j$jobs/BENCH_$s.json"; then
            echo "FAIL: $s differs between --jobs 1 and" \
                 "--jobs $jobs" >&2
            diff "$workdir/j1/BENCH_$s.json" \
                 "$workdir/j$jobs/BENCH_$s.json" | head -20 >&2
            status=1
        fi
    done
done
for t in noisy_neighbor ring; do
    for jobs in 2 4; do
        if ! cmp -s "$workdir/tj1/BENCH_$t.json" \
                    "$workdir/tj$jobs/BENCH_$t.json"; then
            echo "FAIL: --topo $t differs between --jobs 1 and" \
                 "--jobs $jobs" >&2
            diff "$workdir/tj1/BENCH_$t.json" \
                 "$workdir/tj$jobs/BENCH_$t.json" | head -20 >&2
            status=1
        fi
    done
done
for f in BENCH_fault_soak.json BENCH_noisy_neighbor.json trace.json; do
    for jobs in 2 4; do
        if ! cmp -s "$workdir/tlj1/$f" "$workdir/tlj$jobs/$f"; then
            echo "FAIL: timeline leg $f differs between --jobs 1" \
                 "and --jobs $jobs" >&2
            diff "$workdir/tlj1/$f" "$workdir/tlj$jobs/$f" \
                | head -20 >&2
            status=1
        fi
    done
done
if ! grep -q '"ph":"C"' "$workdir/tlj1/trace.json"; then
    echo "FAIL: timeline trace carries no counter-track events" >&2
    status=1
fi
if ! grep -q '"timeline"' "$workdir/tlj1/BENCH_fault_soak.json"; then
    echo "FAIL: --timeline-window produced no timeline section" >&2
    status=1
fi
for jobs in 2 4; do
    if ! cmp -s "$workdir/sfj1/BENCH_proto_datapath.json" \
                "$workdir/sfj$jobs/BENCH_proto_datapath.json"; then
        echo "FAIL: proto_datapath (--cut-through off) differs" \
             "between --jobs 1 and --jobs $jobs" >&2
        diff "$workdir/sfj1/BENCH_proto_datapath.json" \
             "$workdir/sfj$jobs/BENCH_proto_datapath.json" \
            | head -20 >&2
        status=1
    fi
done
if cmp -s "$workdir/j1/BENCH_proto_datapath.json" \
          "$workdir/sfj1/BENCH_proto_datapath.json"; then
    echo "FAIL: --cut-through off produced the same proto_datapath" \
         "document as the default (flag not reaching the rig?)" >&2
    status=1
fi

if [ "$status" -eq 0 ]; then
    echo "determinism OK: $scenarios + topo noisy_neighbor/ring" \
         "+ timeline/trace byte-identical at --jobs 1/2/4" \
         "(cut-through on and off)"
fi
exit $status
