/**
 * @file
 * Tests for the system layer: node host-bus routing, CPU occupancy
 * model, memory path bursts, and the five testbed configurations.
 */

#include <gtest/gtest.h>

#include "system/memory_path.hh"
#include "system/testbed.hh"

using namespace tf;
using namespace tf::sys;

TEST(CpuSetT, SerialisesBeyondCapacity)
{
    sim::EventQueue eq;
    CpuSet cpu("c", eq, 2);
    std::vector<sim::Tick> done;
    for (int i = 0; i < 4; ++i)
        cpu.exec(sim::microseconds(10),
                 [&] { done.push_back(eq.now()); });
    eq.run();
    ASSERT_EQ(done.size(), 4u);
    // Two run immediately, two queue behind them.
    EXPECT_EQ(done[0], sim::microseconds(10));
    EXPECT_EQ(done[1], sim::microseconds(10));
    EXPECT_EQ(done[2], sim::microseconds(20));
    EXPECT_EQ(done[3], sim::microseconds(20));
    EXPECT_EQ(cpu.busyTime(), sim::microseconds(40));
    EXPECT_EQ(cpu.tasksRun(), 4u);
}

TEST(NodeT, RoutesLocalAndRemote)
{
    sim::EventQueue eq;
    sim::Rng rng(1);
    NodeParams params;
    Node nodeA("a", eq, params);
    Node nodeB("b", eq, params);

    flow::Datapath dp("dp", eq, flow::FlowParams{},
                      ocapi::M1Window{0x2000000000ULL, 1ULL << 28},
                      nodeB.pasids(), nodeB.dram(), rng,
                      params.sectionBytes);
    nodeA.attachDatapath(dp);
    auto pasid = nodeB.pasids().allocate();
    ASSERT_TRUE(nodeB.pasids().registerRegion(pasid, 0x100000000ULL,
                                              1ULL << 28));
    dp.stealing().setPasid(pasid);
    dp.attach(0, 0x100000000ULL, 1, {0});

    int completed = 0;
    auto local = mem::makeTxn(mem::TxnType::ReadReq, 0x1000);
    local->onComplete = [&](mem::MemTxn &) { ++completed; };
    nodeA.issue(local);
    auto remote =
        mem::makeTxn(mem::TxnType::ReadReq, 0x2000000000ULL);
    remote->onComplete = [&](mem::MemTxn &) { ++completed; };
    nodeA.issue(remote);
    eq.run();
    EXPECT_EQ(completed, 2);
    EXPECT_EQ(nodeA.localAccesses(), 1u);
    EXPECT_EQ(nodeA.remoteAccesses(), 1u);
}

namespace {

struct PathFixture : ::testing::Test
{
    sim::EventQueue eq;
    NodeParams params;
    std::unique_ptr<Node> node;
    std::unique_ptr<os::AddressSpace> space;
    std::unique_ptr<MemoryPath> path;

    void
    SetUp() override
    {
        node = std::make_unique<Node>("n", eq, params);
        space = std::make_unique<os::AddressSpace>(
            node->mm(), node->localNode());
        path = std::make_unique<MemoryPath>(*node);
    }
};

} // namespace

TEST_F(PathFixture, BurstCompletesAllMisses)
{
    mem::Addr va = space->mmap(1 << 20);
    std::vector<mem::Addr> lines;
    for (int i = 0; i < 256; ++i)
        lines.push_back(va + static_cast<mem::Addr>(i) * 128);
    bool done = false;
    path->burst(*space, lines, false, 8, [&] { done = true; });
    eq.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(path->misses(), 256u);
    EXPECT_EQ(path->hits(), 0u);
}

TEST_F(PathFixture, CacheHitsSkipMemory)
{
    mem::Addr va = space->mmap(1 << 20);
    std::vector<mem::Addr> lines;
    for (int i = 0; i < 64; ++i)
        lines.push_back(va + static_cast<mem::Addr>(i) * 128);
    bool first = false, second = false;
    path->burst(*space, lines, false, 8, [&] { first = true; });
    eq.run();
    std::uint64_t dram_reads = node->dram().reads();
    path->burst(*space, lines, false, 8, [&] { second = true; });
    eq.run();
    EXPECT_TRUE(first && second);
    EXPECT_EQ(path->hits(), 64u);
    EXPECT_EQ(node->dram().reads(), dram_reads); // no new traffic
}

TEST_F(PathFixture, StreamingStoresBypassCache)
{
    mem::Addr va = space->mmap(1 << 20);
    std::vector<Access> acc;
    for (int i = 0; i < 32; ++i)
        acc.push_back(Access{va + static_cast<mem::Addr>(i) * 128,
                             true});
    bool done = false;
    path->burstMixed(*space, acc, 8, [&] { done = true; }, true);
    eq.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(node->dram().writes(), 32u);
    // Lines were not cached: a read burst misses.
    std::vector<mem::Addr> lines;
    for (int i = 0; i < 32; ++i)
        lines.push_back(va + static_cast<mem::Addr>(i) * 128);
    path->burst(*space, lines, false, 8, [] {});
    eq.run();
    EXPECT_EQ(path->hits(), 0u);
}

TEST(TestbedT, LocalSetupHasNoDatapath)
{
    sim::EventQueue eq;
    TestbedParams tp;
    tp.setup = Setup::Local;
    Testbed tb(eq, tp);
    EXPECT_EQ(tb.datapath(), nullptr);
    auto policy = tb.serverPolicy();
    EXPECT_EQ(policy.mode, os::AllocPolicy::Mode::Bind);
    EXPECT_EQ(policy.nodes,
              std::vector<os::NodeId>{tb.serverA().localNode()});
}

TEST(TestbedT, DisaggregatedSetupOnlinesRemoteMemory)
{
    sim::EventQueue eq;
    TestbedParams tp;
    tp.setup = Setup::SingleDisaggregated;
    tp.donatedBytes = 128ULL * 1024 * 1024;
    Testbed tb(eq, tp);
    ASSERT_NE(tb.datapath(), nullptr);
    EXPECT_EQ(tb.serverA().mm().totalPages(tb.serverA().tflowNode()),
              128ULL * 1024 * 1024 / tp.node.pageBytes);
    // The donor gave up the sections.
    EXPECT_LT(tb.serverB().mm().freePages(tb.serverB().localNode()),
              tp.node.bootSections * tp.node.sectionBytes /
                  tp.node.pageBytes);
}

TEST(TestbedT, BondingUsesTwoChannels)
{
    sim::EventQueue eq;
    TestbedParams tp;
    tp.setup = Setup::BondingDisaggregated;
    tp.donatedBytes = 64ULL * 1024 * 1024;
    Testbed tb(eq, tp);
    os::AddressSpace space(tb.serverA().mm(),
                           tb.serverA().localNode(),
                           tb.serverPolicy());
    MemoryPath path(tb.serverA());
    mem::Addr va = space.mmap(1 << 20);
    std::vector<mem::Addr> lines;
    for (int i = 0; i < 512; ++i)
        lines.push_back(va + static_cast<mem::Addr>(i) * 128);
    path.burst(space, lines, false, 16, [] {});
    eq.run();
    EXPECT_GT(tb.datapath()->channel(0).wireAB().framesSent(), 0u);
    EXPECT_GT(tb.datapath()->channel(1).wireAB().framesSent(), 0u);
}

TEST(TestbedT, InterleavedPolicySplitsPages)
{
    sim::EventQueue eq;
    TestbedParams tp;
    tp.setup = Setup::Interleaved;
    tp.donatedBytes = 128ULL * 1024 * 1024;
    Testbed tb(eq, tp);
    os::AddressSpace space(tb.serverA().mm(),
                           tb.serverA().localNode(),
                           tb.serverPolicy());
    mem::Addr va = space.mmap(64 * tp.node.pageBytes);
    for (int i = 0; i < 64; ++i)
        space.translate(va + static_cast<mem::Addr>(i) *
                                 tp.node.pageBytes);
    auto res = space.residency();
    EXPECT_EQ(res[tb.serverA().localNode()], 32u);
    EXPECT_EQ(res[tb.serverA().tflowNode()], 32u);
}

TEST(TestbedT, AllSetupsConstruct)
{
    for (auto setup :
         {Setup::Local, Setup::SingleDisaggregated,
          Setup::BondingDisaggregated, Setup::Interleaved,
          Setup::ScaleOut}) {
        sim::EventQueue eq;
        TestbedParams tp;
        tp.setup = setup;
        tp.donatedBytes = 64ULL * 1024 * 1024;
        Testbed tb(eq, tp);
        EXPECT_STREQ(setupName(tb.setup()), setupName(setup));
        EXPECT_TRUE(tb.network().connected("client", "serverA"));
        EXPECT_TRUE(tb.network().connected("serverA", "serverB"));
    }
}
