/**
 * @file
 * Tests for the RMMU, routing layer, and the assembled datapath
 * (compute endpoint <-> channels <-> stealing endpoint <-> donor DRAM).
 */

#include <gtest/gtest.h>

#include <map>

#include "mem/dram.hh"
#include "tflow/datapath.hh"

using namespace tf;
using namespace tf::flow;
using tf::mem::Addr;
using tf::mem::TxnPtr;
using tf::mem::TxnType;

// ----------------------------------------------------------- RMMU

TEST(SectionTableT, IndexAndMap)
{
    SectionTable table(1 << 20, 16); // 1 MiB sections
    EXPECT_EQ(table.indexOf(0), 0u);
    EXPECT_EQ(table.indexOf((1 << 20) - 1), 0u);
    EXPECT_EQ(table.indexOf(1 << 20), 1u);
    EXPECT_EQ(table.indexOf(5u << 20), 5u);

    table.map(3, 0xdead0000, 7, true);
    EXPECT_TRUE(table.entry(3).valid);
    EXPECT_EQ(table.mappedCount(), 1u);
    table.unmap(3);
    EXPECT_FALSE(table.entry(3).valid);
    EXPECT_EQ(table.mappedCount(), 0u);
}

TEST(RmmuT, TranslatesWithinSection)
{
    SectionTable table(1 << 20, 16);
    table.map(2, 0x80000000, 5, false);
    Rmmu rmmu("rmmu", std::move(table));

    auto txn = mem::makeTxn(TxnType::ReadReq, (2u << 20) + 0x1234);
    ASSERT_TRUE(rmmu.translate(*txn));
    EXPECT_EQ(txn->addr, 0x80001234u);
    EXPECT_EQ(txn->networkId, 5);
    EXPECT_FALSE(txn->bonded);
    EXPECT_EQ(rmmu.translations(), 1u);
}

TEST(RmmuT, FaultOnUnmappedSection)
{
    SectionTable table(1 << 20, 16);
    Rmmu rmmu("rmmu", std::move(table));
    auto txn = mem::makeTxn(TxnType::ReadReq, 0x1000);
    Addr before = txn->addr;
    EXPECT_FALSE(rmmu.translate(*txn));
    EXPECT_EQ(txn->addr, before); // untouched on fault
    EXPECT_EQ(rmmu.faults(), 1u);
}

TEST(RmmuT, AdjacentSectionsToDifferentDonorRanges)
{
    SectionTable table(1 << 20, 8);
    table.map(0, 0x10000000, 1, false);
    table.map(1, 0x90000000, 2, false); // non-contiguous donor ranges
    Rmmu rmmu("rmmu", std::move(table));

    auto a = mem::makeTxn(TxnType::ReadReq, 0x0fff80);
    auto b = mem::makeTxn(TxnType::ReadReq, 0x100000);
    ASSERT_TRUE(rmmu.translate(*a));
    ASSERT_TRUE(rmmu.translate(*b));
    EXPECT_EQ(a->addr, 0x100fff80u);
    EXPECT_EQ(b->addr, 0x90000000u);
    EXPECT_EQ(a->networkId, 1);
    EXPECT_EQ(b->networkId, 2);
}

// --------------------------------------------------------- Routing

TEST(RoutingT, SingleChannelFlow)
{
    RoutingLayer routing;
    routing.setRoute(3, {1});
    auto txn = mem::makeTxn(TxnType::ReadReq, 0);
    txn->networkId = 3;
    txn->bonded = false;
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(routing.route(*txn), 1);
}

TEST(RoutingT, BondedRoundRobin)
{
    RoutingLayer routing;
    routing.setRoute(3, {0, 1});
    auto txn = mem::makeTxn(TxnType::ReadReq, 0);
    txn->networkId = 3;
    txn->bonded = true;
    std::vector<int> picks;
    for (int i = 0; i < 6; ++i)
        picks.push_back(routing.route(*txn));
    EXPECT_EQ(picks, (std::vector<int>{0, 1, 0, 1, 0, 1}));
}

TEST(RoutingT, BondedFlagOffUsesFirstChannelOnly)
{
    RoutingLayer routing;
    routing.setRoute(3, {0, 1});
    auto txn = mem::makeTxn(TxnType::ReadReq, 0);
    txn->networkId = 3;
    txn->bonded = false;
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(routing.route(*txn), 0);
}

TEST(RoutingT, UnknownFlowDropped)
{
    RoutingLayer routing;
    auto txn = mem::makeTxn(TxnType::ReadReq, 0);
    txn->networkId = 9;
    EXPECT_EQ(routing.route(*txn), -1);
    EXPECT_EQ(routing.dropped(), 1u);
}

TEST(RoutingT, ConcurrentFlowsShareChannel)
{
    RoutingLayer routing;
    routing.setRoute(1, {0, 1});
    routing.setRoute(2, {1});
    auto bonded = mem::makeTxn(TxnType::ReadReq, 0);
    bonded->networkId = 1;
    bonded->bonded = true;
    auto plain = mem::makeTxn(TxnType::ReadReq, 0);
    plain->networkId = 2;
    EXPECT_EQ(routing.route(*bonded), 0);
    EXPECT_EQ(routing.route(*plain), 1);
    EXPECT_EQ(routing.route(*bonded), 1);
    EXPECT_EQ(routing.flows(), 2u);
}

TEST(RoutingT, BondedFlowDegradesOntoSurvivors)
{
    RoutingLayer routing;
    routing.setRoute(3, {0, 1, 2, 3});
    auto txn = mem::makeTxn(TxnType::ReadReq, 0);
    txn->networkId = 3;
    txn->bonded = true;

    routing.markChannelDown(1);
    std::vector<int> picks;
    for (int i = 0; i < 6; ++i)
        picks.push_back(routing.route(*txn));
    EXPECT_EQ(picks, (std::vector<int>{0, 2, 3, 0, 2, 3}));
    EXPECT_EQ(routing.degradedTxns(), 6u);
    EXPECT_EQ(routing.failoverEvents(), 1u);
    EXPECT_EQ(routing.unroutableDropped(), 0u);

    // Recovery spreads back over the full set.
    routing.markChannelUp(1);
    picks.clear();
    for (int i = 0; i < 4; ++i)
        picks.push_back(routing.route(*txn));
    EXPECT_EQ(picks, (std::vector<int>{0, 1, 2, 3}));
    EXPECT_EQ(routing.degradedTxns(), 6u); // no longer degraded
}

TEST(RoutingT, KnownFlowAllChannelsDownIsUnroutableNotDropped)
{
    RoutingLayer routing;
    routing.setRoute(3, {0, 1});
    routing.markChannelDown(0);
    routing.markChannelDown(1);
    auto txn = mem::makeTxn(TxnType::ReadReq, 0);
    txn->networkId = 3;
    txn->bonded = true;
    EXPECT_EQ(routing.route(*txn), -1);
    EXPECT_EQ(routing.unroutableDropped(), 1u);
    EXPECT_EQ(routing.dropped(), 0u); // distinct from unknown flows

    auto unknown = mem::makeTxn(TxnType::ReadReq, 0);
    unknown->networkId = 9;
    EXPECT_EQ(routing.route(*unknown), -1);
    EXPECT_EQ(routing.dropped(), 1u);
    EXPECT_EQ(routing.unroutableDropped(), 1u);
}

TEST(RoutingT, NonBondedFlowUnroutableWhenPinnedChannelDies)
{
    RoutingLayer routing;
    routing.setRoute(3, {0, 1});
    routing.markChannelDown(0);
    auto txn = mem::makeTxn(TxnType::ReadReq, 0);
    txn->networkId = 3;
    txn->bonded = false; // pinned to channel 0, cannot spread
    EXPECT_EQ(routing.route(*txn), -1);
    EXPECT_EQ(routing.unroutableDropped(), 1u);
}

TEST(RoutingT, WeightedRouteRebalancesOnFailure)
{
    RoutingLayer routing;
    routing.setWeightedRoute(3, {0, 1, 2}, {3, 2, 1});
    auto txn = mem::makeTxn(TxnType::ReadReq, 0);
    txn->networkId = 3;
    txn->bonded = true;

    routing.markChannelDown(0); // the heaviest channel dies
    std::map<int, int> counts;
    for (int i = 0; i < 300; ++i)
        ++counts[routing.route(*txn)];
    EXPECT_EQ(counts.count(0), 0u);
    // Weights 2:1 over the survivors.
    EXPECT_EQ(counts[1], 200);
    EXPECT_EQ(counts[2], 100);
}

// -------------------------------------------------------- Datapath

namespace {

constexpr Addr kWindowBase = 0x2000000000ULL;
constexpr std::uint64_t kWindowSize = 1ULL << 30;   // 1 GiB
constexpr std::uint64_t kSectionBytes = 1ULL << 24; // 16 MiB (tests)
constexpr Addr kDonorBase = 0x100000000ULL;

struct DatapathFixture : ::testing::Test
{
    sim::EventQueue eq;
    sim::Rng rng{2024};
    mem::BackingStore donorStore;
    std::unique_ptr<mem::Dram> donorDram;
    ocapi::PasidRegistry pasids;
    std::unique_ptr<Datapath> dp;
    ocapi::Pasid pasid = ocapi::invalidPasid;

    void
    build(FlowParams params = FlowParams{})
    {
        donorDram = std::make_unique<mem::Dram>(
            "donorDram", eq, mem::DramParams{}, &donorStore);
        dp = std::make_unique<Datapath>(
            "dp", eq, params,
            ocapi::M1Window{kWindowBase, kWindowSize}, pasids,
            *donorDram, rng, kSectionBytes);
        pasid = pasids.allocate();
        ASSERT_TRUE(
            pasids.registerRegion(pasid, kDonorBase, kWindowSize));
        dp->stealing().setPasid(pasid);
        // Map section 0 un-bonded on channel 0.
        dp->attach(0, kDonorBase, 1, {0});
    }

    TxnPtr
    issueAndRun(TxnType type, Addr real,
                const std::vector<std::uint8_t> &data = {})
    {
        auto txn = mem::makeTxn(type, real);
        if (!data.empty())
            txn->data = data;
        TxnPtr got;
        txn->onComplete = [&](mem::MemTxn &t) {
            got = std::make_shared<mem::MemTxn>(t);
        };
        dp->issue(txn);
        eq.run();
        return got;
    }
};

} // namespace

TEST_F(DatapathFixture, WriteThenReadRoundTripsData)
{
    build();
    std::vector<std::uint8_t> payload(128);
    for (int i = 0; i < 128; ++i)
        payload[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(255 - i);

    auto wr = issueAndRun(TxnType::WriteReq, kWindowBase + 0x4000,
                          payload);
    ASSERT_TRUE(wr);
    EXPECT_FALSE(wr->error);

    auto rd = issueAndRun(TxnType::ReadReq, kWindowBase + 0x4000);
    ASSERT_TRUE(rd);
    EXPECT_FALSE(rd->error);
    EXPECT_EQ(rd->data, payload);

    // The bytes physically live in donor memory at the donor base.
    std::vector<std::uint8_t> donor_bytes(128);
    donorStore.read(kDonorBase + 0x4000, donor_bytes.data(), 128);
    EXPECT_EQ(donor_bytes, payload);
}

TEST_F(DatapathFixture, UnloadedReadLatencyNear950nsBudget)
{
    build();
    auto rd = issueAndRun(TxnType::ReadReq, kWindowBase + 0x100);
    ASSERT_TRUE(rd);
    double mean = dp->compute().rttNs().mean();
    // 950 ns flit RTT + serialization + C1 + donor DRAM access.
    EXPECT_GT(mean, 950.0);
    EXPECT_LT(mean, 1300.0);
}

TEST_F(DatapathFixture, FaultsOnUnmappedSection)
{
    build();
    // Section 1 (offset 16 MiB) is not attached.
    auto rd = issueAndRun(TxnType::ReadReq,
                          kWindowBase + kSectionBytes + 0x100);
    ASSERT_TRUE(rd);
    EXPECT_TRUE(rd->error);
    EXPECT_EQ(dp->compute().rmmuFaults(), 1u);
}

TEST_F(DatapathFixture, DetachStopsTraffic)
{
    build();
    auto ok = issueAndRun(TxnType::ReadReq, kWindowBase + 0x100);
    ASSERT_TRUE(ok);
    EXPECT_FALSE(ok->error);

    dp->detach(0);
    auto bad = issueAndRun(TxnType::ReadReq, kWindowBase + 0x100);
    ASSERT_TRUE(bad);
    EXPECT_TRUE(bad->error);
}

TEST_F(DatapathFixture, BondedFlowUsesBothChannels)
{
    build();
    dp->attach(1, kDonorBase + kSectionBytes, 2, {0, 1});
    int completed = 0;
    for (int i = 0; i < 64; ++i) {
        auto txn = mem::makeTxn(
            TxnType::ReadReq,
            kWindowBase + kSectionBytes + static_cast<Addr>(i) * 128);
        txn->onComplete = [&](mem::MemTxn &) { ++completed; };
        dp->issue(txn);
    }
    eq.run();
    EXPECT_EQ(completed, 64);
    // Both channels carried traffic.
    EXPECT_GT(dp->channel(0).wireAB().framesSent(), 0u);
    EXPECT_GT(dp->channel(1).wireAB().framesSent(), 0u);
}

TEST_F(DatapathFixture, ManyOutstandingAllComplete)
{
    build();
    const int n = 5000;
    int completed = 0;
    for (int i = 0; i < n; ++i) {
        auto txn = mem::makeTxn(
            TxnType::ReadReq,
            kWindowBase + (static_cast<Addr>(i) * 128) % kSectionBytes);
        txn->onComplete = [&](mem::MemTxn &) { ++completed; };
        dp->issue(txn);
    }
    eq.run();
    EXPECT_EQ(completed, n);
    EXPECT_EQ(dp->compute().outstanding(), 0u);
    EXPECT_EQ(dp->compute().queued(), 0u);
}

TEST_F(DatapathFixture, LossyNetworkStillCorrect)
{
    FlowParams params;
    params.frameErrorRate = 0.02;
    params.ackTimeout = sim::microseconds(10);
    build(params);

    // Write a pattern, read it back through the lossy network.
    std::vector<std::uint8_t> payload(128, 0x77);
    auto wr = issueAndRun(TxnType::WriteReq, kWindowBase, payload);
    ASSERT_TRUE(wr);
    int completed = 0;
    bool all_match = true;
    for (int i = 0; i < 500; ++i) {
        auto txn = mem::makeTxn(TxnType::ReadReq, kWindowBase);
        txn->onComplete = [&](mem::MemTxn &t) {
            ++completed;
            all_match = all_match && t.data == payload && !t.error;
        };
        dp->issue(txn);
    }
    eq.run();
    EXPECT_EQ(completed, 500);
    EXPECT_TRUE(all_match);
}

TEST_F(DatapathFixture, TagLimitQueuesExcess)
{
    FlowParams params;
    params.maxTags = 8;
    build(params);
    int completed = 0;
    for (int i = 0; i < 64; ++i) {
        auto txn = mem::makeTxn(
            TxnType::ReadReq, kWindowBase + static_cast<Addr>(i) * 128);
        txn->onComplete = [&](mem::MemTxn &) { ++completed; };
        dp->issue(txn);
    }
    EXPECT_GT(dp->compute().queued(), 0u);
    eq.run();
    EXPECT_EQ(completed, 64);
    EXPECT_GT(dp->compute().tagStalls(), 0u);
}

TEST_F(DatapathFixture, C1AuthorisationEnforced)
{
    build();
    // Attach a section whose donor range was never pinned/registered:
    // the C1 master must fault it, and the host must see the error.
    dp->attach(2, 0xdead000000ULL, 3, {0});
    auto rd = issueAndRun(TxnType::ReadReq,
                          kWindowBase + 2 * kSectionBytes);
    ASSERT_TRUE(rd);
    EXPECT_TRUE(rd->error);
    EXPECT_EQ(dp->c1().faults(), 1u);
}

TEST_F(DatapathFixture, ReadBandwidthSingleChannel)
{
    build();
    // Closed-loop: keep 128 reads outstanding for a while; sustained
    // bandwidth should approach the ~10 GiB/s the paper reports for
    // reads on one 100 Gb/s channel (response frames carry 160B per
    // 128B line).
    const int outstanding = 128;
    const int total = 30000;
    int issued = 0;
    int completed = 0;
    std::function<void()> issueOne = [&]() {
        if (issued >= total)
            return;
        auto txn = mem::makeTxn(
            TxnType::ReadReq,
            kWindowBase +
                (static_cast<Addr>(issued) * 128) % kSectionBytes);
        ++issued;
        txn->onComplete = [&](mem::MemTxn &) {
            ++completed;
            issueOne();
        };
        dp->issue(txn);
    };
    for (int i = 0; i < outstanding; ++i)
        issueOne();
    eq.run();
    ASSERT_EQ(completed, total);
    double secs = sim::toSec(eq.now());
    double gib = static_cast<double>(total) * 128 /
                 (1024.0 * 1024 * 1024) / secs;
    EXPECT_GT(gib, 8.0);
    EXPECT_LT(gib, 12.5);
}

TEST(RoutingT, WeightedRouteProportionalSplit)
{
    RoutingLayer routing;
    routing.setWeightedRoute(4, {0, 1}, {3, 1});
    auto txn = mem::makeTxn(TxnType::ReadReq, 0);
    txn->networkId = 4;
    txn->bonded = true;
    int ch0 = 0, ch1 = 0;
    for (int i = 0; i < 400; ++i)
        (routing.route(*txn) == 0 ? ch0 : ch1)++;
    EXPECT_EQ(ch0, 300);
    EXPECT_EQ(ch1, 100);
}

TEST(RoutingT, WeightedRouteSmoothInterleaving)
{
    // Smooth WRR must interleave, not burst: with weights 2:1 the
    // pattern over any window of 3 holds 2x ch0, 1x ch1.
    RoutingLayer routing;
    routing.setWeightedRoute(4, {0, 1}, {2, 1});
    auto txn = mem::makeTxn(TxnType::ReadReq, 0);
    txn->networkId = 4;
    txn->bonded = true;
    std::vector<int> picks;
    for (int i = 0; i < 9; ++i)
        picks.push_back(routing.route(*txn));
    for (int w = 0; w + 3 <= 9; w += 3) {
        int ch0 = 0;
        for (int i = w; i < w + 3; ++i)
            ch0 += (picks[static_cast<std::size_t>(i)] == 0);
        EXPECT_EQ(ch0, 2);
    }
}

TEST(RoutingT, WeightedRouteUnbondedStillPinned)
{
    RoutingLayer routing;
    routing.setWeightedRoute(4, {1, 0}, {1, 5});
    auto txn = mem::makeTxn(TxnType::ReadReq, 0);
    txn->networkId = 4;
    txn->bonded = false;
    // Non-bonded flows use the first listed channel only.
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(routing.route(*txn), 1);
}
