/**
 * @file
 * Tests for the causal-span tracing subsystem: buffer modes and
 * sampling, balanced span propagation through the full datapath
 * (including the LLC replay path), latency attribution, the Perfetto
 * export, and the panic flight recorder.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <dirent.h>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "mem/dram.hh"
#include "sim/logging.hh"
#include "sim/trace/export.hh"
#include "tflow/datapath.hh"

using namespace tf;
using namespace tf::flow;
using tf::mem::Addr;
using tf::mem::TxnPtr;
using tf::mem::TxnType;
namespace trace = tf::sim::trace;

// ------------------------------------------------------ TraceBuffer

TEST(TraceBufferT, FullModeRecordsEveryTransaction)
{
    trace::TraceBuffer tb;
    tb.setFull(true);
    std::set<trace::TraceId> ids;
    for (int i = 0; i < 100; ++i) {
        trace::TraceId id = tb.newTrace();
        EXPECT_NE(id, trace::noTrace);
        ids.insert(id);
    }
    EXPECT_EQ(ids.size(), 100u);
}

TEST(TraceBufferT, FlightModeSamples)
{
    trace::TraceBuffer tb;
    int sampled = 0;
    const int issues = 3 * trace::TraceBuffer::kSampleInterval;
    for (int i = 0; i < issues; ++i)
        if (tb.newTrace() != trace::noTrace)
            ++sampled;
    EXPECT_EQ(sampled, 3); // first issue plus every interval-th
}

TEST(TraceBufferT, FlightRingKeepsNewestEvents)
{
    trace::TraceBuffer tb;
    const std::size_t cap = trace::TraceBuffer::kFlightCap;
    for (std::size_t i = 0; i < cap + 100; ++i)
        tb.begin(i, 1, trace::Stage::C1);
    EXPECT_EQ(tb.size(), cap);
    auto events = tb.snapshot();
    ASSERT_EQ(events.size(), cap);
    // Oldest-first unroll: first retained tick is 100.
    EXPECT_EQ(events.front().tick, 100u);
    EXPECT_EQ(events.back().tick, cap + 99);
}

TEST(TraceBufferT, IdTagDisambiguatesBuffers)
{
    trace::TraceBuffer a;
    trace::TraceBuffer b;
    a.setFull(true);
    b.setFull(true);
    b.setIdTag(1);
    EXPECT_NE(a.newTrace(), b.newTrace());
}

TEST(TraceBufferT, NoTraceHooksAreNoOps)
{
    trace::TraceBuffer tb;
    tb.begin(10, trace::noTrace, trace::Stage::Rmmu);
    tb.end(20, trace::noTrace, trace::Stage::Rmmu);
    EXPECT_EQ(tb.size(), 0u);
}

// -------------------------------------------- datapath propagation

namespace {

constexpr Addr kWindowBase = 0x2000000000ULL;
constexpr std::uint64_t kWindowSize = 1ULL << 30;
constexpr std::uint64_t kSectionBytes = 1ULL << 24;
constexpr Addr kDonorBase = 0x100000000ULL;

struct TraceFixture : ::testing::Test
{
    sim::EventQueue eq;
    sim::Rng rng{2024};
    mem::BackingStore donorStore;
    std::unique_ptr<mem::Dram> donorDram;
    ocapi::PasidRegistry pasids;
    std::unique_ptr<Datapath> dp;

    void
    build(FlowParams params = FlowParams{})
    {
        eq.trace().setFull(true);
        donorDram = std::make_unique<mem::Dram>(
            "donorDram", eq, mem::DramParams{}, &donorStore);
        dp = std::make_unique<Datapath>(
            "dp", eq, params,
            ocapi::M1Window{kWindowBase, kWindowSize}, pasids,
            *donorDram, rng, kSectionBytes);
        ocapi::Pasid pasid = pasids.allocate();
        ASSERT_TRUE(
            pasids.registerRegion(pasid, kDonorBase, kWindowSize));
        dp->stealing().setPasid(pasid);
        dp->attach(0, kDonorBase, 1, {0});
    }

    /** Issue @p count chained reads with @p outstanding in flight. */
    int
    pump(int count, int outstanding = 32)
    {
        int issued = 0;
        int completed = 0;
        std::function<void()> one = [&]() {
            if (issued >= count)
                return;
            auto txn = mem::makeTxn(
                TxnType::ReadReq,
                kWindowBase + (static_cast<Addr>(issued) * 128) %
                                  kSectionBytes);
            ++issued;
            txn->onComplete = [&](mem::MemTxn &) {
                ++completed;
                one();
            };
            dp->issue(txn);
        };
        for (int i = 0; i < outstanding && i < count; ++i)
            one();
        eq.run();
        return completed;
    }
};

/** begins/ends per (id, stage) and unmatched-open count. */
struct SpanTally
{
    std::map<std::pair<trace::TraceId, int>, int> begins;
    std::map<std::pair<trace::TraceId, int>, int> ends;
    std::set<trace::TraceId> ids;
};

SpanTally
tally(const std::vector<trace::SpanEvent> &events)
{
    SpanTally t;
    for (const auto &ev : events) {
        auto key = std::make_pair(ev.id, static_cast<int>(ev.stage));
        if (ev.kind == trace::SpanEvent::Kind::Begin)
            ++t.begins[key];
        else
            ++t.ends[key];
        t.ids.insert(ev.id);
    }
    return t;
}

} // namespace

TEST_F(TraceFixture, EveryStageOpensExactlyOneBalancedSpan)
{
    build();
    ASSERT_EQ(pump(50), 50);

    auto events = eq.trace().snapshot();
    SpanTally t = tally(events);
    EXPECT_EQ(t.ids.size(), 50u);

    // The un-bonded single-channel read path crosses exactly these
    // stages, each with one begin and one end per transaction.
    const std::set<trace::Stage> expected = {
        trace::Stage::TagQueue,       trace::Stage::HostSerdesDown,
        trace::Stage::StackDown,      trace::Stage::Rmmu,
        trace::Stage::Route,          trace::Stage::LlcReq,
        trace::Stage::DonorStackDown, trace::Stage::DonorSerdesDown,
        trace::Stage::C1,             trace::Stage::DonorSerdesUp,
        trace::Stage::DonorStackUp,   trace::Stage::LlcResp,
        trace::Stage::StackUp,        trace::Stage::HostSerdesUp,
    };
    for (trace::TraceId id : t.ids) {
        for (trace::Stage stage : expected) {
            auto key = std::make_pair(id, static_cast<int>(stage));
            EXPECT_EQ(t.begins[key], 1)
                << "id " << id << " stage " << trace::stageName(stage);
            EXPECT_EQ(t.ends[key], 1)
                << "id " << id << " stage " << trace::stageName(stage);
        }
    }
    EXPECT_EQ(events.size(), 50u * expected.size() * 2);
}

TEST_F(TraceFixture, SpansStayBalancedAcrossLlcReplay)
{
    FlowParams params;
    params.frameErrorRate = 0.2; // drops + corruption -> replays
    build(params);
    ASSERT_EQ(pump(300), 300);

    // The error injection must actually have exercised go-back-N.
    EXPECT_GT(dp->channel(0).txA().replayedFrames() +
                  dp->channel(0).txB().replayedFrames(),
              0u);

    SpanTally t = tally(eq.trace().snapshot());
    EXPECT_EQ(t.ids.size(), 300u);
    // Replayed frames re-deliver the same transaction object exactly
    // once (duplicates are discarded by sequence number), so every
    // begin still has exactly one end -- no orphans either way.
    for (const auto &[key, n] : t.begins) {
        EXPECT_EQ(n, 1) << "stage "
                        << trace::stageName(
                               static_cast<trace::Stage>(key.second));
        EXPECT_EQ(t.ends[key], 1);
    }
    for (const auto &[key, n] : t.ends)
        EXPECT_EQ(t.begins[key], 1)
            << "orphan end, stage "
            << trace::stageName(static_cast<trace::Stage>(key.second));
}

TEST_F(TraceFixture, StageDurationsTileTheRoundTrip)
{
    build();
    ASSERT_EQ(pump(1, 1), 1);

    trace::TraceCollector collector;
    collector.addBuffer(eq.trace(), "dp");
    trace::Attribution attr = collector.attribution();

    ASSERT_EQ(attr.totalNs.count(), 1u);
    double stageSum = 0;
    for (const auto &q : attr.stageNs)
        if (q.count() > 0)
            stageSum += q.mean();
    // Stage spans tile the round trip exactly: means are exact sums
    // (no sketch quantisation), so the agreement is tight.
    double rtt = dp->compute().rttNs().mean();
    EXPECT_NEAR(stageSum, rtt, rtt * 1e-9);
    EXPECT_NEAR(attr.totalNs.mean(), rtt, rtt * 1e-9);
}

TEST(TraceTilingT, StageDurationsTileUnderBothFramingModes)
{
    // The tiling invariant must survive cut-through: staggered
    // per-transaction release and coalesced shared-header frames move
    // where time is spent (llcResp shrinks, c1 overlap grows) but
    // every nanosecond of the round trip still belongs to exactly one
    // stage span. Run loaded so frames actually coalesce.
    for (bool ct : {false, true}) {
        SCOPED_TRACE(ct ? "cut-through" : "store-and-forward");
        sim::EventQueue eq;
        eq.trace().setFull(true);
        sim::Rng rng{2024};
        mem::BackingStore donorStore;
        mem::Dram donorDram(
            "donorDram", eq, mem::DramParams{}, &donorStore);
        ocapi::PasidRegistry pasids;
        FlowParams params;
        params.cutThrough = ct;
        Datapath dp("dp", eq, params,
                    ocapi::M1Window{kWindowBase, kWindowSize}, pasids,
                    donorDram, rng, kSectionBytes);
        ocapi::Pasid pasid = pasids.allocate();
        ASSERT_TRUE(
            pasids.registerRegion(pasid, kDonorBase, kWindowSize));
        dp.stealing().setPasid(pasid);
        dp.attach(0, kDonorBase, 1, {0});

        const int total = 64;
        int issued = 0;
        int completed = 0;
        std::function<void()> one = [&]() {
            if (issued >= total)
                return;
            auto txn = mem::makeTxn(
                TxnType::ReadReq,
                kWindowBase + (static_cast<Addr>(issued) * 128) %
                                  kSectionBytes);
            ++issued;
            txn->onComplete = [&](mem::MemTxn &) {
                ++completed;
                one();
            };
            dp.issue(txn);
        };
        for (int i = 0; i < 16; ++i)
            one();
        eq.run();
        ASSERT_EQ(completed, total);

        trace::TraceCollector collector;
        collector.addBuffer(eq.trace(), "dp");
        trace::Attribution attr = collector.attribution();

        ASSERT_EQ(attr.totalNs.count(),
                  static_cast<std::size_t>(total));
        double stageSum = 0;
        for (const auto &q : attr.stageNs)
            if (q.count() > 0)
                stageSum += q.mean() * static_cast<double>(q.count()) /
                            static_cast<double>(total);
        double rtt = dp.compute().rttNs().mean();
        EXPECT_NEAR(stageSum, rtt, rtt * 1e-9);
        EXPECT_NEAR(attr.totalNs.mean(), rtt, rtt * 1e-9);
    }
}

TEST_F(TraceFixture, ResponsesReuseTheRequestTraceId)
{
    build();
    auto txn = mem::makeTxn(TxnType::ReadReq, kWindowBase + 0x100);
    TxnPtr got;
    txn->onComplete = [&](mem::MemTxn &t) {
        got = std::make_shared<mem::MemTxn>(t);
    };
    dp->issue(txn);
    eq.run();
    ASSERT_NE(got, nullptr);
    EXPECT_NE(got->traceId, trace::noTrace);
    // One id covers the whole round trip: request and response spans
    // all carry it.
    SpanTally t = tally(eq.trace().snapshot());
    EXPECT_EQ(t.ids.size(), 1u);
    EXPECT_EQ(*t.ids.begin(), got->traceId);
}

// ------------------------------------------------------- exporting

TEST_F(TraceFixture, PerfettoExportIsWellFormed)
{
    build();
    ASSERT_EQ(pump(5), 5);

    trace::TraceCollector collector;
    collector.addBuffer(eq.trace(), "dp");
    std::ostringstream os;
    collector.writeJson(os);
    const std::string json = os.str();

    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"process_name\""), std::string::npos);
    EXPECT_NE(json.find("\"tagQueue\""), std::string::npos);
    EXPECT_NE(json.find("\"displayTimeUnit\":\"ns\""),
              std::string::npos);
    // Balanced async begin/end counts in the serialised form too.
    std::size_t b = 0, e = 0;
    for (std::size_t pos = 0;
         (pos = json.find("\"ph\":\"b\"", pos)) != std::string::npos;
         ++pos)
        ++b;
    for (std::size_t pos = 0;
         (pos = json.find("\"ph\":\"e\"", pos)) != std::string::npos;
         ++pos)
        ++e;
    EXPECT_EQ(b, e);
    EXPECT_GT(b, 0u);
}

// ------------------------------------------------- flight recorder

namespace {

std::vector<std::string>
flightDumps()
{
    std::vector<std::string> out;
    DIR *dir = ::opendir(".");
    if (dir == nullptr)
        return out;
    while (struct dirent *ent = ::readdir(dir)) {
        std::string name = ent->d_name;
        if (name.rfind("tf_flight_", 0) == 0 &&
            name.size() > 5 &&
            name.compare(name.size() - 5, 5, ".json") == 0)
            out.push_back(name);
    }
    ::closedir(dir);
    return out;
}

void
removeFlightDumps()
{
    for (const auto &name : flightDumps())
        std::remove(name.c_str());
}

} // namespace

using FlightRecorderDeathTest = TraceFixture;

TEST_F(FlightRecorderDeathTest, PanicDumpsLastSpans)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    removeFlightDumps();

    // The child re-runs the statement: drive sampled flight-mode
    // traffic (the fixture's setFull is overridden back to flight
    // mode), then hit an assertion.
    EXPECT_DEATH(
        {
            build();
            eq.trace().setFull(false);
            pump(200);
            TF_ASSERT(false, "forced failure for the recorder");
        },
        "flight recorder: .* dumped to tf_flight_");

    auto dumps = flightDumps();
    ASSERT_EQ(dumps.size(), 1u);
    std::ifstream in(dumps.front());
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string json = ss.str();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"tagQueue\""), std::string::npos);
    EXPECT_NE(json.find("forced failure for the recorder"),
              std::string::npos);
    removeFlightDumps();
}

TEST_F(FlightRecorderDeathTest, FatalDoesNotDumpFlight)
{
    // The asymmetry is deliberate (DESIGN.md §17): panic() marks an
    // internal bug, so the last in-flight spans are evidence worth
    // shipping; fatal() marks a user/configuration error, where a
    // flight dump would bury the actionable message under an
    // irrelevant wall of JSON. Pin both halves: exit code 1, no
    // tf_flight_*.json left behind.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    removeFlightDumps();

    EXPECT_EXIT(
        {
            build();
            eq.trace().setFull(false);
            pump(200);
            sim::fatal("configuration rejected: %s", "bad knob");
        },
        ::testing::ExitedWithCode(1),
        "configuration rejected: bad knob");

    EXPECT_TRUE(flightDumps().empty());
}

// ------------------------------------------------------- TF_DEBUG

TEST(TfDebugT, ArgumentsSkippedWhenFiltered)
{
    sim::setLogLevel(sim::LogLevel::Warn);
    int evaluated = 0;
    auto expensive = [&evaluated]() {
        ++evaluated;
        return 7;
    };
    TF_DEBUG("value %d", expensive());
    EXPECT_EQ(evaluated, 0); // filtered: arguments never evaluated

    sim::setLogLevel(sim::LogLevel::Debug);
    TF_DEBUG("value %d", expensive());
    EXPECT_EQ(evaluated, 1);
    sim::setLogLevel(sim::LogLevel::Warn);
}
