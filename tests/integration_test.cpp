/**
 * @file
 * End-to-end property tests: random mixed traffic through the full
 * datapath checked against a shadow reference memory, swept over
 * frame loss and channel bonding; plus a two-tenant control-plane
 * scenario sharing the physical channels.
 */

#include <gtest/gtest.h>

#include <map>

#include "ctrl/control_plane.hh"
#include "mem/dram.hh"
#include "os/address_space.hh"
#include "tflow/datapath.hh"

using namespace tf;
using tf::mem::Addr;
using tf::mem::TxnPtr;
using tf::mem::TxnType;

namespace {

constexpr Addr kWindowBase = 0x2000000000ULL;
constexpr std::uint64_t kWindowSize = 1ULL << 28;
constexpr std::uint64_t kSection = 1ULL << 24;
constexpr Addr kDonorBase = 0x100000000ULL;

struct FuzzParams
{
    double errorRate;
    bool bonded;
    std::uint64_t seed;
};

class DatapathFuzz : public ::testing::TestWithParam<FuzzParams>
{
};

} // namespace

TEST_P(DatapathFuzz, ShadowMemoryAgreesUnderRandomTraffic)
{
    const FuzzParams fp = GetParam();
    sim::EventQueue eq;
    sim::Rng rng(fp.seed);
    mem::BackingStore store;
    mem::Dram dram("donorDram", eq, mem::DramParams{}, &store);
    ocapi::PasidRegistry pasids;

    flow::FlowParams params;
    params.frameErrorRate = fp.errorRate;
    params.ackTimeout = sim::microseconds(10);
    flow::Datapath dp("dp", eq, params,
                      ocapi::M1Window{kWindowBase, kWindowSize},
                      pasids, dram, rng, kSection);
    auto pasid = pasids.allocate();
    ASSERT_TRUE(pasids.registerRegion(pasid, kDonorBase, kWindowSize));
    dp.stealing().setPasid(pasid);
    std::vector<int> channels = fp.bonded ? std::vector<int>{0, 1}
                                          : std::vector<int>{0};
    dp.attach(0, kDonorBase, 1, channels);

    // Shadow model: last value written per line. ThymesisFlow
    // guarantees per-line ordering only through completion: issue a
    // new access to a line only after the previous one finished.
    constexpr int kLines = 64;
    std::map<int, std::uint8_t> shadow; // line -> expected fill byte
    std::vector<bool> busy(kLines, false);
    int issued = 0;
    int mismatches = 0;
    const int total = 4000;
    sim::Rng traffic(fp.seed ^ 0xabcdef);

    std::function<void()> issueOne = [&]() {
        if (issued >= total)
            return;
        // Find a non-busy line.
        int line = static_cast<int>(traffic.below(kLines));
        for (int tries = 0; busy[static_cast<std::size_t>(line)] &&
                            tries < kLines;
             ++tries)
            line = (line + 1) % kLines;
        if (busy[static_cast<std::size_t>(line)])
            return; // everything in flight; retried on completion
        ++issued;
        busy[static_cast<std::size_t>(line)] = true;
        Addr addr = kWindowBase +
                    static_cast<Addr>(line) * mem::cachelineBytes;
        bool write = traffic.chance(0.4);
        auto txn = mem::makeTxn(write ? TxnType::WriteReq
                                      : TxnType::ReadReq,
                                addr);
        if (write) {
            auto fill = static_cast<std::uint8_t>(traffic.below(256));
            txn->data.assign(mem::cachelineBytes, fill);
            shadow[line] = fill;
            txn->onComplete = [&, line](mem::MemTxn &t) {
                busy[static_cast<std::size_t>(line)] = false;
                if (t.error)
                    ++mismatches;
                issueOne();
            };
        } else {
            txn->onComplete = [&, line](mem::MemTxn &t) {
                busy[static_cast<std::size_t>(line)] = false;
                std::uint8_t expect =
                    shadow.count(line) ? shadow[line] : 0;
                if (t.error || t.data.size() != mem::cachelineBytes)
                    ++mismatches;
                else
                    for (auto byte : t.data)
                        if (byte != expect) {
                            ++mismatches;
                            break;
                        }
                issueOne();
            };
        }
        dp.issue(txn);
    };

    for (int i = 0; i < 32; ++i)
        issueOne();
    eq.run();

    EXPECT_EQ(mismatches, 0);
    EXPECT_EQ(issued, total);
    EXPECT_EQ(dp.compute().outstanding(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    LossBondingSeeds, DatapathFuzz,
    ::testing::Values(FuzzParams{0.0, false, 1},
                      FuzzParams{0.0, true, 2},
                      FuzzParams{0.02, false, 3},
                      FuzzParams{0.02, true, 4},
                      FuzzParams{0.1, true, 5},
                      FuzzParams{0.1, false, 6}));

// ------------------------------------------------------------------
// Two tenants through the control plane, sharing physical channels.
// ------------------------------------------------------------------

TEST(MultiTenant, TwoFlowsShareChannelsIndependently)
{
    sim::EventQueue eq;
    sim::Rng rng(77);

    os::NumaTopology topoA, topoB;
    os::NodeId localA = topoA.addNode("a.local", true);
    os::NodeId tflowA = topoA.addNode("a.tflow", false);
    topoA.setDistance(localA, tflowA, 80);
    os::NodeId localB = topoB.addNode("b.local", true);
    os::MemoryManager mmA(topoA, kSection, 64 * 1024);
    os::MemoryManager mmB(topoB, kSection, 64 * 1024);
    ASSERT_TRUE(mmA.onlineSection(localA, 0));
    for (int i = 0; i < 8; ++i)
        ASSERT_TRUE(
            mmB.onlineSection(localB, static_cast<Addr>(i) * kSection));

    ocapi::PasidRegistry pasidsA, pasidsB;
    agent::Agent agentA("agentA", mmA, pasidsA, "tok");
    agent::Agent agentB("agentB", mmB, pasidsB, "tok");
    mem::BackingStore storeB;
    mem::Dram dramB("dramB", eq, mem::DramParams{}, &storeB);
    flow::Datapath dp("dp", eq, flow::FlowParams{},
                      ocapi::M1Window{kWindowBase, kWindowSize},
                      pasidsB, dramB, rng, kSection);

    ctrl::ControlPlane cp("tok");
    cp.addUser("admin", ctrl::Role::Admin);
    cp.registerHost("A", agentA, mmA);
    cp.registerHost("B", agentB, mmB);
    cp.registerDatapath("A", "B", dp);

    auto id1 = cp.allocate("admin", "A", "B", kSection, tflowA, 2,
                           localB);
    auto id2 = cp.allocate("admin", "A", "B", kSection, tflowA, 1,
                           localB);
    ASSERT_TRUE(id1.has_value());
    ASSERT_TRUE(id2.has_value());

    // Distinct network ids per allocation; both usable concurrently.
    const auto *r1 = cp.allocation(*id1);
    const auto *r2 = cp.allocation(*id2);
    ASSERT_NE(r1, nullptr);
    ASSERT_NE(r2, nullptr);
    EXPECT_NE(r1->attachment.networkId, r2->attachment.networkId);

    int completed = 0;
    for (const auto *rec : {r1, r2}) {
        Addr base = rec->attachment.hotplugBases.front();
        for (int i = 0; i < 64; ++i) {
            auto txn = mem::makeTxn(
                TxnType::ReadReq,
                base + static_cast<Addr>(i) * mem::cachelineBytes);
            txn->onComplete = [&](mem::MemTxn &t) {
                EXPECT_FALSE(t.error);
                ++completed;
            };
            dp.issue(txn);
        }
    }
    eq.run();
    EXPECT_EQ(completed, 128);

    // Tear down one tenant; the other keeps working.
    EXPECT_TRUE(cp.deallocate("admin", *id1));
    auto txn = mem::makeTxn(TxnType::ReadReq,
                            r2->attachment.hotplugBases.front());
    bool ok = false;
    txn->onComplete = [&](mem::MemTxn &t) { ok = !t.error; };
    dp.issue(txn);
    eq.run();
    EXPECT_TRUE(ok);
}
