/**
 * @file
 * Tests for the message-level Ethernet model.
 */

#include <gtest/gtest.h>

#include "net/ethernet.hh"

using namespace tf;
using namespace tf::net;

TEST(EthLinkT, LatencyPlusSerialisation)
{
    sim::EventQueue eq;
    EthParams params;
    params.bandwidthBps = 1.25e9; // 10 Gb/s
    params.latency = sim::microseconds(25);
    params.perMessageOverhead = sim::microseconds(2);
    EthLink link("l", eq, params);

    sim::Tick arrival = 0;
    link.send(12500, [&] { arrival = eq.now(); }); // 10 us at line rate
    eq.run();
    EXPECT_EQ(arrival, sim::microseconds(10 + 2 + 25));
    EXPECT_EQ(link.messages(), 1u);
    EXPECT_EQ(link.bytesSent(), 12500u);
}

TEST(EthLinkT, BackToBackMessagesQueue)
{
    sim::EventQueue eq;
    EthParams params;
    params.bandwidthBps = 1.25e9;
    params.latency = sim::microseconds(25);
    params.perMessageOverhead = 0;
    EthLink link("l", eq, params);

    std::vector<sim::Tick> arrivals;
    for (int i = 0; i < 3; ++i)
        link.send(12500, [&] { arrivals.push_back(eq.now()); });
    eq.run();
    ASSERT_EQ(arrivals.size(), 3u);
    EXPECT_EQ(arrivals[0], sim::microseconds(35));
    EXPECT_EQ(arrivals[1], sim::microseconds(45)); // serialised
    EXPECT_EQ(arrivals[2], sim::microseconds(55));
}

TEST(EthLinkT, EstimateIncludesQueueing)
{
    sim::EventQueue eq;
    EthParams params = EthParams::tenGig();
    EthLink link("l", eq, params);
    sim::Tick empty = link.estimate(1250);
    link.send(1250000, [] {}); // ~1 ms of backlog
    EXPECT_GT(link.estimate(1250), empty);
}

TEST(NetworkT, DuplexAndAddressing)
{
    sim::EventQueue eq;
    Network net("n", eq);
    net.connect("a", "b", EthParams::hundredGig());
    EXPECT_TRUE(net.connected("a", "b"));
    EXPECT_TRUE(net.connected("b", "a"));
    EXPECT_FALSE(net.connected("a", "c"));

    int delivered = 0;
    net.send("a", "b", 1000, [&] { ++delivered; });
    net.send("b", "a", 1000, [&] { ++delivered; });
    eq.run();
    EXPECT_EQ(delivered, 2);
}

TEST(NetworkT, DirectionsAreIndependentLinks)
{
    sim::EventQueue eq;
    Network net("n", eq);
    EthParams params;
    params.bandwidthBps = 1.25e9;
    params.latency = sim::microseconds(10);
    params.perMessageOverhead = 0;
    net.connect("a", "b", params);

    // Saturate a->b; b->a latency must stay unaffected.
    for (int i = 0; i < 10; ++i)
        net.send("a", "b", 125000, [] {});
    sim::Tick reverse_arrival = 0;
    net.send("b", "a", 1250, [&] { reverse_arrival = eq.now(); });
    eq.run();
    EXPECT_EQ(reverse_arrival, sim::microseconds(1 + 10));
}

TEST(NetworkT, HundredGigFasterThanTen)
{
    sim::EventQueue eq;
    Network net("n", eq);
    net.connect("a", "b", EthParams::tenGig());
    net.connect("a", "c", EthParams::hundredGig());
    EXPECT_GT(net.estimate("a", "b", 1000000),
              net.estimate("a", "c", 1000000));
}
