/**
 * @file
 * Control-plane tests: property graph, path finding with reservation,
 * ACL, and orchestrated allocate/deallocate through real agents.
 */

#include <gtest/gtest.h>

#include "ctrl/control_plane.hh"
#include "mem/dram.hh"

using namespace tf;
using namespace tf::ctrl;
using tf::mem::Addr;

// ------------------------------------------------------- graph

TEST(Graph, AddAndQuery)
{
    PropertyGraph g;
    VertexId a = g.addVertex(VertexType::ComputeEndpoint, "a");
    VertexId b = g.addVertex(VertexType::MemoryEndpoint, "b");
    EdgeId e = g.addEdge(a, b, 100.0);
    EXPECT_EQ(g.vertexCount(), 2u);
    EXPECT_EQ(g.edgeCount(), 1u);
    EXPECT_EQ(g.edge(e).free(), 100.0);
    EXPECT_EQ(g.findByName("b"), b);
    EXPECT_FALSE(g.findByName("zzz").has_value());
    auto nb = g.neighbours(a);
    ASSERT_EQ(nb.size(), 1u);
    EXPECT_EQ(nb[0].second, b);
}

TEST(Graph, RemoveVertexDropsEdges)
{
    PropertyGraph g;
    VertexId a = g.addVertex(VertexType::Transceiver, "a");
    VertexId b = g.addVertex(VertexType::Transceiver, "b");
    VertexId c = g.addVertex(VertexType::Transceiver, "c");
    g.addEdge(a, b, 10);
    g.addEdge(b, c, 10);
    g.removeVertex(b);
    EXPECT_EQ(g.edgeCount(), 0u);
    EXPECT_TRUE(g.neighbours(a).empty());
}

TEST(Graph, FindPathShortest)
{
    PropertyGraph g;
    // a - b - c and a direct a - c edge: direct wins.
    VertexId a = g.addVertex(VertexType::ComputeEndpoint, "a");
    VertexId b = g.addVertex(VertexType::SwitchPort, "b");
    VertexId c = g.addVertex(VertexType::MemoryEndpoint, "c");
    g.addEdge(a, b, 100);
    g.addEdge(b, c, 100);
    g.addEdge(a, c, 100);
    auto p = g.findPath(a, c, 25);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->edges.size(), 1u);
    EXPECT_EQ(p->vertices.front(), a);
    EXPECT_EQ(p->vertices.back(), c);
}

TEST(Graph, FindPathRespectsCapacity)
{
    PropertyGraph g;
    VertexId a = g.addVertex(VertexType::ComputeEndpoint, "a");
    VertexId b = g.addVertex(VertexType::SwitchPort, "b");
    VertexId c = g.addVertex(VertexType::MemoryEndpoint, "c");
    EdgeId direct = g.addEdge(a, c, 20);
    g.addEdge(a, b, 100);
    g.addEdge(b, c, 100);
    // Demand 25 exceeds the direct edge's capacity -> two-hop path.
    auto p = g.findPath(a, c, 25);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->edges.size(), 2u);
    EXPECT_EQ(std::count(p->edges.begin(), p->edges.end(), direct), 0);
}

TEST(Graph, ReserveAndRelease)
{
    PropertyGraph g;
    VertexId a = g.addVertex(VertexType::ComputeEndpoint, "a");
    VertexId c = g.addVertex(VertexType::MemoryEndpoint, "c");
    EdgeId e = g.addEdge(a, c, 100);
    auto p = g.findPath(a, c, 60);
    ASSERT_TRUE(p.has_value());
    g.reserve(*p, 60);
    EXPECT_DOUBLE_EQ(g.edge(e).free(), 40.0);
    EXPECT_FALSE(g.findPath(a, c, 60).has_value());
    g.release(*p, 60);
    EXPECT_DOUBLE_EQ(g.edge(e).free(), 100.0);
}

TEST(Graph, FindPathAvoidsDownEdges)
{
    PropertyGraph g;
    VertexId a = g.addVertex(VertexType::ComputeEndpoint, "a");
    VertexId b = g.addVertex(VertexType::SwitchPort, "b");
    VertexId c = g.addVertex(VertexType::MemoryEndpoint, "c");
    EdgeId direct = g.addEdge(a, c, 100);
    g.addEdge(a, b, 100);
    g.addEdge(b, c, 100);

    // The shorter direct edge goes down: routing detours via b.
    g.setEdgeUp(direct, false);
    EXPECT_FALSE(g.edge(direct).up);
    auto p = g.findPath(a, c, 25);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->edges.size(), 2u);
    EXPECT_EQ(std::count(p->edges.begin(), p->edges.end(), direct), 0);

    // Back up: the direct edge wins again.
    g.setEdgeUp(direct, true);
    auto p2 = g.findPath(a, c, 25);
    ASSERT_TRUE(p2.has_value());
    EXPECT_EQ(p2->edges.size(), 1u);
    EXPECT_EQ(p2->edges[0], direct);
}

TEST(Graph, OnlyPathDownMeansNoPath)
{
    PropertyGraph g;
    VertexId a = g.addVertex(VertexType::ComputeEndpoint, "a");
    VertexId c = g.addVertex(VertexType::MemoryEndpoint, "c");
    EdgeId e = g.addEdge(a, c, 100);
    g.setEdgeUp(e, false);
    EXPECT_FALSE(g.findPath(a, c, 25).has_value());
}

TEST(Graph, DisjointPathsViaExclusion)
{
    PropertyGraph g;
    VertexId a = g.addVertex(VertexType::ComputeEndpoint, "a");
    VertexId c = g.addVertex(VertexType::MemoryEndpoint, "c");
    g.addEdge(a, c, 100);
    g.addEdge(a, c, 100);
    auto p1 = g.findPath(a, c, 25);
    ASSERT_TRUE(p1.has_value());
    auto p2 = g.findPath(a, c, 25, &p1->edges);
    ASSERT_TRUE(p2.has_value());
    EXPECT_NE(p1->edges[0], p2->edges[0]);
    auto p3_edges = p1->edges;
    p3_edges.insert(p3_edges.end(), p2->edges.begin(),
                    p2->edges.end());
    EXPECT_FALSE(g.findPath(a, c, 25, &p3_edges).has_value());
}

// ------------------------------------------- orchestration fixture

namespace {

constexpr std::uint64_t kSection = 1 << 22; // 4 MiB
constexpr std::uint64_t kPage = 64 * 1024;
constexpr Addr kWindowBase = 0x2000000000ULL;
constexpr std::uint64_t kWindowSize = 1ULL << 28;
const std::string kAgentToken = "agent-secret";
const std::string kAdmin = "admin-tok";
const std::string kObserver = "observer-tok";

struct CtrlFixture : ::testing::Test
{
    sim::EventQueue eq;
    sim::Rng rng{5};

    os::NumaTopology topoA, topoB;
    std::unique_ptr<os::MemoryManager> mmA, mmB;
    os::NodeId localA{}, tflowNode{}, localB{};
    ocapi::PasidRegistry pasidsA, pasidsB;
    std::unique_ptr<agent::Agent> agentA, agentB;
    mem::BackingStore storeB;
    std::unique_ptr<mem::Dram> dramB;
    std::unique_ptr<flow::Datapath> dp;
    std::unique_ptr<ControlPlane> cp;

    void
    SetUp() override
    {
        localA = topoA.addNode("a.local", true);
        tflowNode = topoA.addNode("a.tflow0", false);
        topoA.setDistance(localA, tflowNode, 80);
        mmA = std::make_unique<os::MemoryManager>(topoA, kSection,
                                                  kPage);
        ASSERT_TRUE(mmA->onlineSection(localA, 0));
        agentA = std::make_unique<agent::Agent>("agentA", *mmA,
                                                pasidsA, kAgentToken);

        localB = topoB.addNode("b.local", true);
        mmB = std::make_unique<os::MemoryManager>(topoB, kSection,
                                                  kPage);
        for (int i = 0; i < 8; ++i)
            ASSERT_TRUE(mmB->onlineSection(
                localB, static_cast<Addr>(i) * kSection));
        agentB = std::make_unique<agent::Agent>("agentB", *mmB,
                                                pasidsB, kAgentToken);
        dramB = std::make_unique<mem::Dram>("dramB", eq,
                                            mem::DramParams{},
                                            &storeB);
        dp = std::make_unique<flow::Datapath>(
            "dp", eq, flow::FlowParams{},
            ocapi::M1Window{kWindowBase, kWindowSize}, pasidsB,
            *dramB, rng, kSection);

        cp = std::make_unique<ControlPlane>(kAgentToken);
        cp->addUser(kAdmin, Role::Admin);
        cp->addUser(kObserver, Role::Observer);
        cp->registerHost("hostA", *agentA, *mmA);
        cp->registerHost("hostB", *agentB, *mmB);
        cp->registerDatapath("hostA", "hostB", *dp);
    }
};

} // namespace

TEST_F(CtrlFixture, TopologyGraphShape)
{
    // 2 hosts x 2 endpoint vertices + 2 channels x 2 transceivers.
    EXPECT_EQ(cp->graph().vertexCount(), 8u);
    // Per channel: ep-tx, tx-tx, tx-ep = 3 edges; 2 channels.
    EXPECT_EQ(cp->graph().edgeCount(), 6u);
}

TEST_F(CtrlFixture, AllocateComposesMemory)
{
    auto id = cp->allocate(kAdmin, "hostA", "hostB", 2 * kSection,
                           tflowNode, 1, localB);
    ASSERT_TRUE(id.has_value());
    const AllocationRecord *rec = cp->allocation(*id);
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->donation.bytes(), 2 * kSection);
    EXPECT_EQ(rec->paths.size(), 1u);
    // Memory is online on the CPU-less node of hostA.
    EXPECT_EQ(mmA->totalPages(tflowNode), 2 * (kSection / kPage));
}

TEST_F(CtrlFixture, ObserverCannotAllocate)
{
    EXPECT_FALSE(cp->allocate(kObserver, "hostA", "hostB", kSection,
                              tflowNode, 1, localB)
                     .has_value());
    EXPECT_FALSE(cp->allocate("rogue", "hostA", "hostB", kSection,
                              tflowNode, 1, localB)
                     .has_value());
}

TEST_F(CtrlFixture, BondedAllocationUsesDisjointChannels)
{
    auto id = cp->allocate(kAdmin, "hostA", "hostB", kSection,
                           tflowNode, 2, localB);
    ASSERT_TRUE(id.has_value());
    const AllocationRecord *rec = cp->allocation(*id);
    ASSERT_EQ(rec->paths.size(), 2u);
    EXPECT_NE(rec->paths[0].edges, rec->paths[1].edges);
    EXPECT_TRUE(rec->attachment.networkId != mem::invalidNetworkId);
}

TEST_F(CtrlFixture, CapacityExhaustionFailsCleanly)
{
    // Each flow soft-reserves 25 Gb/s per channel link; 4 single-
    // channel flows fill channel 0's 100 Gb/s, then BFS shifts to
    // channel 1; after 8 the fabric is full.
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 8; ++i) {
        auto id = cp->allocate(kAdmin, "hostA", "hostB", kSection,
                               tflowNode, 1, localB);
        ASSERT_TRUE(id.has_value()) << "allocation " << i;
        ids.push_back(*id);
    }
    auto extra = cp->allocate(kAdmin, "hostA", "hostB", kSection,
                              tflowNode, 1, localB);
    EXPECT_FALSE(extra.has_value());
    // Deallocate one and retry.
    EXPECT_TRUE(cp->deallocate(kAdmin, ids[0]));
    EXPECT_TRUE(cp->allocate(kAdmin, "hostA", "hostB", kSection,
                             tflowNode, 1, localB)
                    .has_value());
}

TEST_F(CtrlFixture, DeallocateReleasesEverything)
{
    std::uint64_t free_b = mmB->freePages(localB);
    auto id = cp->allocate(kAdmin, "hostA", "hostB", kSection,
                           tflowNode, 2, localB);
    ASSERT_TRUE(id.has_value());
    EXPECT_LT(mmB->freePages(localB), free_b);
    ASSERT_TRUE(cp->deallocate(kAdmin, *id));
    EXPECT_EQ(mmB->freePages(localB), free_b);
    EXPECT_EQ(mmA->totalPages(tflowNode), 0u);
    EXPECT_EQ(cp->allocationCount(), 0u);
}

TEST_F(CtrlFixture, RestApiAllocateAndQuery)
{
    auto resp = cp->handleRequest(
        kAdmin, "POST", "/flows",
        "compute=hostA donor=hostB bytes=4194304 numa=" +
            std::to_string(tflowNode) + " channels=2");
    EXPECT_EQ(resp.status, 201);
    EXPECT_EQ(resp.body.rfind("id=", 0), 0u);
    std::uint64_t id = std::stoull(resp.body.substr(3));

    auto list = cp->handleRequest(kObserver, "GET", "/flows");
    EXPECT_EQ(list.status, 200);
    EXPECT_NE(list.body.find("compute=hostA"), std::string::npos);

    auto one = cp->handleRequest(kObserver, "GET",
                                 "/flows/" + std::to_string(id));
    EXPECT_EQ(one.status, 200);

    auto del = cp->handleRequest(kAdmin, "DELETE",
                                 "/flows/" + std::to_string(id));
    EXPECT_EQ(del.status, 200);
    auto gone = cp->handleRequest(kObserver, "GET",
                                  "/flows/" + std::to_string(id));
    EXPECT_EQ(gone.status, 404);
}

TEST_F(CtrlFixture, RestApiAccessControl)
{
    auto resp = cp->handleRequest(kObserver, "POST", "/flows",
                                  "compute=hostA donor=hostB "
                                  "bytes=4194304 numa=1");
    EXPECT_EQ(resp.status, 403);
    auto rogue = cp->handleRequest("rogue", "GET", "/flows");
    EXPECT_EQ(rogue.status, 403);
    auto topo = cp->handleRequest(kObserver, "GET", "/topology");
    EXPECT_EQ(topo.status, 200);
    auto bad = cp->handleRequest(kAdmin, "POST", "/flows",
                                 "compute=hostA bytes=1");
    EXPECT_EQ(bad.status, 400);
}
