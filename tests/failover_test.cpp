/**
 * @file
 * End-to-end link-failure tests: bonded degradation under load,
 * control-plane path repair, regrow after recovery, clean teardown
 * when every channel is lost, transient flap storms riding the
 * hold-down ladder, Gilbert-Elliott burst windows healed by LLC
 * replay, and deadline-bounded error completion on permanent death.
 */

#include <gtest/gtest.h>

#include <functional>

#include "ctrl/control_plane.hh"
#include "mem/dram.hh"
#include "sim/fault/fault.hh"
#include "tflow/llc.hh"

using namespace tf;
using namespace tf::ctrl;
using tf::mem::Addr;
using tf::mem::TxnPtr;
using tf::mem::TxnType;

// ---------------------------------------- datapath-level bonding

namespace {

constexpr Addr kWindowBase = 0x2000000000ULL;
constexpr std::uint64_t kWindowSize = 1ULL << 30;   // 1 GiB
constexpr std::uint64_t kSectionBytes = 1ULL << 24; // 16 MiB
constexpr Addr kDonorBase = 0x100000000ULL;

/**
 * A four-channel datapath driven closed-loop. Channel bandwidth is
 * scaled down so the network -- not the donor's C1 link -- is the
 * bottleneck; otherwise losing one of four channels would be
 * invisible in the aggregate throughput.
 */
struct BondedFailoverFixture : ::testing::Test
{
    sim::EventQueue eq;
    sim::Rng rng{7};
    mem::BackingStore donorStore;
    std::unique_ptr<mem::Dram> donorDram;
    ocapi::PasidRegistry pasids;
    flow::FlowParams params;
    std::unique_ptr<flow::Datapath> dp;

    void
    SetUp() override
    {
        params.channels = 4;
        params.channelBps = 3.125e9; // stress-scaled (see above)
        params.hostLinkBps = 100e9;
        params.maxTags = 512;
        params.maxReplayRounds = 4;
        params.ackTimeout = sim::microseconds(2);

        donorDram = std::make_unique<mem::Dram>(
            "donorDram", eq, mem::DramParams{}, &donorStore);
        dp = std::make_unique<flow::Datapath>(
            "dp", eq, params,
            ocapi::M1Window{kWindowBase, kWindowSize}, pasids,
            *donorDram, rng, kSectionBytes);
        ocapi::Pasid pasid = pasids.allocate();
        ASSERT_TRUE(
            pasids.registerRegion(pasid, kDonorBase, kWindowSize));
        dp->stealing().setPasid(pasid);
        dp->attach(0, kDonorBase, 1, {0, 1, 2, 3}); // bonded x4
    }

    /**
     * Issue @p total reads closed-loop with @p window in flight;
     * every completion must be error-free. Returns the phase
     * duration in ticks.
     */
    sim::Tick
    runPhase(int total, int window)
    {
        sim::Tick start = eq.now();
        int issued = 0;
        int done = 0;
        std::function<void()> pump = [&]() {
            while (issued < total && issued - done < window) {
                Addr addr = kWindowBase +
                            static_cast<Addr>(issued % 1024) * 128;
                auto txn = mem::makeTxn(TxnType::ReadReq, addr);
                txn->onComplete = [&](mem::MemTxn &t) {
                    EXPECT_FALSE(t.error);
                    ++done;
                    pump();
                };
                ++issued;
                dp->issue(std::move(txn));
            }
        };
        pump();
        eq.run();
        EXPECT_EQ(done, total);
        return eq.now() - start;
    }
};

} // namespace

TEST_F(BondedFailoverFixture, FourChannelBondedDegradesGracefully)
{
    constexpr int kReads = 4000;
    constexpr int kWindow = 256;

    sim::Tick healthy = runPhase(kReads, kWindow);

    // Kill one channel, then push traffic until the LLC's missing-ack
    // escalation detects it and the backlog is salvaged.
    dp->failChannel(0);
    runPhase(500, kWindow);
    ASSERT_TRUE(dp->channelDown(0));
    EXPECT_EQ(dp->linkDownEvents(), 1u);
    EXPECT_GT(dp->reroutedRequests() + dp->reroutedResponses(), 0u);

    sim::Tick degraded = runPhase(kReads, kWindow);

    // 3 of 4 channels left: ~3/4 the bandwidth, not a collapse.
    double ratio = static_cast<double>(healthy) /
                   static_cast<double>(degraded);
    EXPECT_GT(ratio, 0.6) << "lost more than the failed channel";
    EXPECT_LT(ratio, 0.9) << "failure made no bandwidth difference";

    EXPECT_GT(dp->routing().degradedTxns(), 0u);
    EXPECT_EQ(dp->routing().unroutableDropped(), 0u);
    EXPECT_EQ(dp->compute().outstanding(), 0u);
}

TEST_F(BondedFailoverFixture, RecoveryRestoresFullBandwidth)
{
    constexpr int kReads = 4000;
    constexpr int kWindow = 256;

    sim::Tick healthy = runPhase(kReads, kWindow);

    dp->failChannel(0);
    runPhase(500, kWindow);
    ASSERT_TRUE(dp->channelDown(0));

    dp->recoverChannel(0);
    ASSERT_FALSE(dp->channelDown(0));
    sim::Tick recovered = runPhase(kReads, kWindow);

    double ratio = static_cast<double>(healthy) /
                   static_cast<double>(recovered);
    EXPECT_GT(ratio, 0.9);
    EXPECT_LT(ratio, 1.1);
    EXPECT_EQ(dp->compute().outstanding(), 0u);
}

TEST_F(BondedFailoverFixture, BurstLossWindowHealedByReplay)
{
    constexpr int kReads = 4000;
    constexpr int kWindow = 256;

    sim::fault::Registry reg;
    dp->registerFaultPoints(reg, "dp");
    ASSERT_TRUE(reg.has("dp.ch1.wire"));
    sim::fault::Engine engine(eq, reg);

    // Correlated loss: ~2.5-frame bursts, 40% frame-error rate while
    // bad. The window (6 us) is shorter than the missing-ack
    // escalation (4 rounds x 2 us), so the LLC must absorb every
    // corrupted frame with go-back-N replay -- no link-down, no
    // error surfaces to the application.
    sim::fault::GilbertElliott ge;
    ge.pGoodBad = 0.05;
    ge.pBadGood = 0.4;
    ge.errBad = 0.4;
    sim::fault::Plan plan;
    plan.burst(sim::microseconds(2), "dp.ch1.wire",
               sim::microseconds(6), ge);
    engine.arm(plan);

    runPhase(kReads, kWindow); // every completion must be error-free

    EXPECT_EQ(engine.fired(), 1u);
    auto &ch = dp->channel(1);
    EXPECT_GT(ch.wireAB().framesCorrupted() +
                  ch.wireBA().framesCorrupted(),
              0u)
        << "burst window corrupted no frames";
    EXPECT_GT(ch.txA().replayedFrames() + ch.txB().replayedFrames(),
              0u);
    EXPECT_FALSE(dp->channelDown(1));
    EXPECT_EQ(dp->routing().unroutableDropped(), 0u);
    EXPECT_EQ(dp->compute().outstanding(), 0u);
}

TEST_F(BondedFailoverFixture, RecoveredChannelDoesNotResumeMidBurst)
{
    constexpr int kWindow = 256;

    // A total-loss burst window far outliving the escalation
    // threshold: every frame on channel 0's forward wire corrupts, so
    // replay makes no ack progress and the Tx declares link-down.
    sim::fault::GilbertElliott ge;
    ge.pGoodBad = 1.0;
    ge.pBadGood = 0.0;
    ge.errBad = 1.0;
    auto &wire = dp->channel(0).wireAB();
    wire.startBurst(ge, sim::seconds(1));

    runPhase(1000, kWindow);
    ASSERT_TRUE(dp->channelDown(0));
    EXPECT_EQ(dp->linkDownEvents(), 1u);
    EXPECT_TRUE(wire.burstActive()) << "outage outlived by the window";

    // Repair must cancel the burst residue: a recovered channel that
    // resumed mid-burst would corrupt every frame again and flap
    // straight back down.
    dp->recoverChannel(0);
    EXPECT_FALSE(wire.burstActive());
    EXPECT_FALSE(wire.chainBad());

    runPhase(2000, kWindow);
    EXPECT_FALSE(dp->channelDown(0));
    EXPECT_EQ(dp->linkDownEvents(), 1u) << "healed channel re-flapped";
    EXPECT_EQ(dp->compute().outstanding(), 0u);
}

// ------------------------- channel-repair escalation-residue audit

TEST(LlcRecoverRegression, FlapLeavesNoEscalationResidue)
{
    // A flap accrues consecutive ack-timeout rounds one short of
    // escalation; after repair, the very next (benign) timeout must
    // replay and heal -- not inherit the dead wire's rounds and
    // declare a healthy link down.
    sim::EventQueue eq;
    sim::Rng rng{3};
    flow::FlowParams p;
    p.ackTimeout = sim::microseconds(2);
    p.maxReplayRounds = 4;
    flow::LlcChannel ch("ch", eq, p, rng);
    int delivered = 0;
    ch.rxB().connectSink([&](TxnPtr) { ++delivered; });
    ch.rxA().connectSink([](TxnPtr) {});

    ch.fail();
    ch.txA().enqueue(mem::makeTxn(TxnType::WriteReq, 0));
    // Three timeout rounds fire at 2/4/6 us against the dead wire.
    eq.run(sim::microseconds(7));
    EXPECT_EQ(ch.txA().consecTimeouts(), 3u);
    ASSERT_FALSE(ch.txA().linkDown());

    ch.recover(); // flap repair: no link-down, so no retrain
    EXPECT_EQ(ch.txA().consecTimeouts(), 0u);

    // The next timeout replays over the healed wire and delivers.
    eq.run();
    EXPECT_EQ(delivered, 1);
    EXPECT_FALSE(ch.txA().linkDown());
    EXPECT_EQ(ch.txA().linkDownsDeclared(), 0u);
    EXPECT_EQ(ch.txA().consecTimeouts(), 0u);
}

TEST(LlcRecoverRegression, RecoverClearsGilbertElliottChainState)
{
    // The steady-state GE chain must restart in its good state after
    // retrain: pGoodBad = 1 parks the chain bad on the first frame
    // (error-free, so traffic still flows and the state is pure
    // residue), and a recover() must clear it.
    sim::EventQueue eq;
    sim::Rng rng{4};
    flow::FlowParams p;
    p.geEnabled = true;
    p.geGoodBad = 1.0;
    p.geBadGood = 0.0;
    p.geErrGood = 0.0;
    p.geErrBad = 0.0;
    flow::LlcChannel ch("ch", eq, p, rng);
    int delivered = 0;
    ch.rxB().connectSink([&](TxnPtr) { ++delivered; });
    ch.rxA().connectSink([](TxnPtr) {});

    ch.txA().enqueue(mem::makeTxn(TxnType::WriteReq, 0));
    eq.run();
    ASSERT_EQ(delivered, 1);
    EXPECT_TRUE(ch.wireAB().chainBad());

    ch.fail();
    ch.recover();
    EXPECT_FALSE(ch.wireAB().chainBad());
    EXPECT_FALSE(ch.wireAB().burstActive());

    ch.txA().enqueue(mem::makeTxn(TxnType::WriteReq, 128));
    eq.run();
    EXPECT_EQ(delivered, 2);
    EXPECT_EQ(ch.wireAB().framesCorrupted(), 0u);
}

// ------------------------------------- control-plane orchestration

namespace {

constexpr std::uint64_t kSection = 1 << 22; // 4 MiB
constexpr std::uint64_t kPage = 64 * 1024;
constexpr Addr kCpWindowBase = 0x2000000000ULL;
constexpr std::uint64_t kCpWindowSize = 1ULL << 28;
const std::string kAgentToken = "agent-secret";
const std::string kAdmin = "admin-tok";

/**
 * Two hosts under a control plane, with fast LLC failure detection
 * so the repair ladder runs inside short test horizons.
 */
struct RepairFixture : ::testing::Test
{
    sim::EventQueue eq;
    sim::Rng rng{11};

    os::NumaTopology topoA, topoB;
    std::unique_ptr<os::MemoryManager> mmA, mmB;
    os::NodeId localA{}, tflowNode{}, localB{};
    ocapi::PasidRegistry pasidsA, pasidsB;
    std::unique_ptr<agent::Agent> agentA, agentB;
    mem::BackingStore storeB;
    std::unique_ptr<mem::Dram> dramB;
    flow::FlowParams params;
    std::unique_ptr<flow::Datapath> dp;
    std::unique_ptr<ControlPlane> cp;

    int completions = 0;
    int errors = 0;

    void
    SetUp() override
    {
        params.maxReplayRounds = 3;
        params.ackTimeout = sim::microseconds(2);

        localA = topoA.addNode("a.local", true);
        tflowNode = topoA.addNode("a.tflow0", false);
        topoA.setDistance(localA, tflowNode, 80);
        mmA = std::make_unique<os::MemoryManager>(topoA, kSection,
                                                  kPage);
        ASSERT_TRUE(mmA->onlineSection(localA, 0));
        agentA = std::make_unique<agent::Agent>("agentA", *mmA,
                                                pasidsA, kAgentToken);

        localB = topoB.addNode("b.local", true);
        mmB = std::make_unique<os::MemoryManager>(topoB, kSection,
                                                  kPage);
        for (int i = 0; i < 8; ++i)
            ASSERT_TRUE(mmB->onlineSection(
                localB, static_cast<Addr>(i) * kSection));
        agentB = std::make_unique<agent::Agent>("agentB", *mmB,
                                                pasidsB, kAgentToken);
        dramB = std::make_unique<mem::Dram>("dramB", eq,
                                            mem::DramParams{},
                                            &storeB);
        dp = std::make_unique<flow::Datapath>(
            "dp", eq, params,
            ocapi::M1Window{kCpWindowBase, kCpWindowSize}, pasidsB,
            *dramB, rng, kSection);

        cp = std::make_unique<ControlPlane>(kAgentToken);
        cp->addUser(kAdmin, Role::Admin);
        cp->registerHost("hostA", *agentA, *mmA);
        cp->registerHost("hostB", *agentB, *mmB);
        cp->registerDatapath("hostA", "hostB", *dp);
    }

    /** Schedule @p n reads into the allocation, one every @p gap. */
    void
    scheduleReads(const agent::Attachment &att, int n, sim::Tick gap)
    {
        Addr base = kCpWindowBase +
                    static_cast<Addr>(att.sectionIndices.front()) *
                        kSection;
        for (int i = 0; i < n; ++i) {
            eq.schedule(eq.now() + static_cast<sim::Tick>(i + 1) * gap,
                        [this, base, i]() {
                            auto txn = mem::makeTxn(
                                TxnType::ReadReq,
                                base + static_cast<Addr>(i % 512) *
                                           128);
                            txn->onComplete = [this](mem::MemTxn &t) {
                                ++completions;
                                if (t.error)
                                    ++errors;
                            };
                            dp->issue(std::move(txn));
                        });
        }
    }
};

} // namespace

TEST_F(RepairFixture, RepairFindsReplacementChannel)
{
    auto id = cp->allocate(kAdmin, "hostA", "hostB", kSection,
                           tflowNode, 1, localB);
    ASSERT_TRUE(id.has_value());
    const AllocationRecord *rec = cp->allocation(*id);
    ASSERT_NE(rec, nullptr);
    ASSERT_EQ(rec->channels.size(), 1u);
    int victim = rec->channels.front();

    // Reads span the failure; the victim channel dies mid-stream.
    scheduleReads(rec->attachment, 200, sim::nanoseconds(100));
    eq.schedule(sim::microseconds(4),
                [this, victim]() {
                    dp->failChannel(static_cast<std::size_t>(victim));
                });
    eq.run();

    // The control plane moved the flow to the spare channel before
    // the backlog was salvaged: nothing is lost, nothing errors.
    EXPECT_EQ(cp->repairs(), 1u);
    EXPECT_EQ(cp->teardowns(), 0u);
    EXPECT_EQ(completions, 200);
    EXPECT_EQ(errors, 0);
    EXPECT_EQ(dp->compute().outstanding(), 0u);

    rec = cp->allocation(*id);
    ASSERT_NE(rec, nullptr);
    ASSERT_EQ(rec->channels.size(), 1u);
    EXPECT_NE(rec->channels.front(), victim);

    // Post-repair traffic keeps flowing cleanly.
    scheduleReads(rec->attachment, 50, sim::nanoseconds(100));
    eq.run();
    EXPECT_EQ(completions, 250);
    EXPECT_EQ(errors, 0);
}

TEST_F(RepairFixture, RecoveryGrowsBondedFlowBack)
{
    auto id = cp->allocate(kAdmin, "hostA", "hostB", kSection,
                           tflowNode, 2, localB);
    ASSERT_TRUE(id.has_value());
    const AllocationRecord *rec = cp->allocation(*id);
    ASSERT_EQ(rec->channels.size(), 2u);

    // With both fabric channels reserved there is no spare path, so
    // losing one degrades the allocation instead of repairing it.
    scheduleReads(rec->attachment, 200, sim::nanoseconds(100));
    eq.schedule(sim::microseconds(4),
                [this]() { dp->failChannel(0); });
    eq.run();

    EXPECT_EQ(cp->degrades(), 1u);
    EXPECT_EQ(cp->repairs(), 0u);
    EXPECT_EQ(completions, 200);
    EXPECT_EQ(errors, 0);
    rec = cp->allocation(*id);
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->channels.size(), 1u);

    // The channel comes back: the control plane regrows the bond.
    dp->recoverChannel(0);
    EXPECT_EQ(cp->regrows(), 1u);
    rec = cp->allocation(*id);
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->channels.size(), 2u);

    scheduleReads(rec->attachment, 50, sim::nanoseconds(100));
    eq.run();
    EXPECT_EQ(completions, 250);
    EXPECT_EQ(errors, 0);
    EXPECT_EQ(dp->compute().outstanding(), 0u);
}

TEST_F(RepairFixture, FlapStormRegrowsOncePerFlapUnderHoldDown)
{
    cp->setHoldDown(eq, sim::microseconds(2), sim::microseconds(16));
    auto id = cp->allocate(kAdmin, "hostA", "hostB", kSection,
                           tflowNode, 2, localB);
    ASSERT_TRUE(id.has_value());
    const AllocationRecord *rec = cp->allocation(*id);
    ASSERT_EQ(rec->channels.size(), 2u);

    // 120 us of continuous reads spanning three transient flaps; each
    // flap outlives the escalation threshold (3 rounds x 2 us), so
    // every one walks the full ladder: link down -> degrade ->
    // self-return -> hold-down -> readmit -> regrow.
    scheduleReads(rec->attachment, 1200, sim::nanoseconds(100));
    for (int i = 0; i < 3; ++i) {
        eq.schedule(sim::microseconds(8 + 30 * i), [this]() {
            dp->flapChannel(0, sim::microseconds(10));
        });
    }
    eq.run();

    // The self-returning channel must count exactly one regrow per
    // flap -- the flap's own recovery and the hold-down readmit are
    // the same event, not two.
    EXPECT_EQ(dp->channelFlaps(), 3u);
    EXPECT_EQ(cp->degrades(), 3u);
    EXPECT_EQ(cp->holdDowns(), 3u);
    EXPECT_EQ(cp->regrows(), 3u);
    EXPECT_EQ(cp->teardowns(), 0u);
    rec = cp->allocation(*id);
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->channels.size(), 2u);
    EXPECT_EQ(completions, 1200);
    EXPECT_EQ(errors, 0);
    EXPECT_EQ(dp->compute().outstanding(), 0u);
}

TEST_F(RepairFixture, TotalChannelLossTearsDownCleanly)
{
    std::uint64_t donorFree = mmB->freePages(localB);
    auto id = cp->allocate(kAdmin, "hostA", "hostB", kSection,
                           tflowNode, 2, localB);
    ASSERT_TRUE(id.has_value());
    const AllocationRecord *rec = cp->allocation(*id);
    ASSERT_NE(rec, nullptr);
    // The record dies with the teardown; keep what we need to check.
    agent::Attachment att = rec->attachment;
    ASSERT_FALSE(att.hotplugBases.empty());

    // Reads span the double failure so both LLCs have in-flight
    // frames to time out on (detection is passive: no traffic, no
    // missing acks).
    scheduleReads(att, 200, sim::nanoseconds(100));
    eq.schedule(sim::microseconds(4), [this]() {
        dp->failChannel(0);
        dp->failChannel(1);
    });
    eq.run();

    // Degrade on the first loss, teardown on the second.
    EXPECT_EQ(cp->teardowns(), 1u);
    EXPECT_EQ(cp->allocationCount(), 0u);
    EXPECT_EQ(cp->allocation(*id), nullptr);

    // Every issued read completed exactly once; the ones the flow
    // could no longer serve completed with an error.
    EXPECT_EQ(completions, 200);
    EXPECT_GT(errors, 0);
    EXPECT_LT(errors, 200);
    EXPECT_EQ(dp->compute().outstanding(), 0u);

    // The disaggregated sections were surprise-removed on the
    // compute host and the donor got its pages back.
    for (Addr base : att.hotplugBases)
        EXPECT_FALSE(mmA->isOnline(base));
    EXPECT_EQ(mmA->totalPages(tflowNode), 0u);
    EXPECT_EQ(mmB->freePages(localB), donorFree);

    EXPECT_EQ(dp->linkDownEvents(), 2u);
    EXPECT_GT(agentA->linkEventsObserved(), 0u);
    EXPECT_GT(agentA->routeRepairs(), 0u); // the degrade push
}

// ------------------------ deadline-bounded completion, no hang

TEST(DeadlineFailover, PermanentDeathErrorCompletesEveryRequest)
{
    // No control plane: nothing tears the flow down when both
    // channels die, so without a request deadline the backlog would
    // simply never complete. The deadline sweeper must error-complete
    // every stuck request (TxnStatus::TimedOut) in bounded time.
    sim::EventQueue eq;
    sim::Rng rng{5};
    mem::BackingStore store;
    mem::Dram dram("dram", eq, mem::DramParams{}, &store);
    ocapi::PasidRegistry pasids;
    flow::FlowParams p;
    p.channels = 2;
    p.maxReplayRounds = 3;
    p.ackTimeout = sim::microseconds(2);
    p.requestDeadline = sim::microseconds(40);
    flow::Datapath dp("dp", eq, p,
                      ocapi::M1Window{kWindowBase, kWindowSize},
                      pasids, dram, rng, kSectionBytes);
    ocapi::Pasid pasid = pasids.allocate();
    ASSERT_TRUE(pasids.registerRegion(pasid, kDonorBase, kWindowSize));
    dp.stealing().setPasid(pasid);
    dp.attach(0, kDonorBase, 1, {0, 1});

    int done = 0;
    int failed = 0;
    int timedOut = 0;
    for (int i = 0; i < 200; ++i) {
        eq.schedule(static_cast<sim::Tick>(i + 1) *
                        sim::nanoseconds(100),
                    [&, i]() {
                        auto txn = mem::makeTxn(
                            TxnType::ReadReq,
                            kWindowBase +
                                static_cast<Addr>(i % 512) * 128);
                        txn->onComplete = [&](mem::MemTxn &t) {
                            ++done;
                            if (t.error)
                                ++failed;
                            if (t.status == mem::TxnStatus::TimedOut)
                                ++timedOut;
                        };
                        dp.issue(std::move(txn));
                    });
    }
    eq.schedule(sim::microseconds(5), [&]() {
        dp.failChannel(0);
        dp.failChannel(1);
    });
    eq.run(); // terminates only because the sweeper drains the backlog

    EXPECT_EQ(done, 200);
    EXPECT_GT(failed, 0);
    EXPECT_GT(timedOut, 0);
    EXPECT_GT(dp.compute().deadlineExpired(), 0u);
    EXPECT_EQ(dp.compute().outstanding(), 0u);
    // Worst case per request: 1.5x the deadline past the issue tail.
    EXPECT_LT(eq.now(), sim::microseconds(200));
}
