/**
 * @file
 * Unit tests for the OpenCAPI attachment model: PASID registry,
 * crossing stages, M1 window and C1 master.
 */

#include <gtest/gtest.h>

#include "mem/dram.hh"
#include "opencapi/c1_master.hh"
#include "opencapi/crossing.hh"
#include "opencapi/m1_window.hh"
#include "opencapi/pasid.hh"

using namespace tf;
using namespace tf::ocapi;
using tf::mem::Addr;
using tf::mem::TxnPtr;
using tf::mem::TxnType;

TEST(Pasid, AllocateAndRegister)
{
    PasidRegistry reg;
    Pasid p = reg.allocate();
    EXPECT_NE(p, invalidPasid);
    EXPECT_TRUE(reg.registerRegion(p, 0x10000, 0x1000));
    EXPECT_TRUE(reg.authorised(p, 0x10000, 128));
    EXPECT_TRUE(reg.authorised(p, 0x10f80, 128));
    EXPECT_FALSE(reg.authorised(p, 0x10f81, 128)); // crosses the end
    EXPECT_FALSE(reg.authorised(p, 0xffff, 1));
}

TEST(Pasid, UnknownPasidRejected)
{
    PasidRegistry reg;
    EXPECT_FALSE(reg.registerRegion(12345, 0x0, 0x1000));
}

TEST(Pasid, OverlapRejected)
{
    PasidRegistry reg;
    Pasid a = reg.allocate();
    Pasid b = reg.allocate();
    ASSERT_TRUE(reg.registerRegion(a, 0x1000, 0x1000));
    EXPECT_FALSE(reg.registerRegion(b, 0x1800, 0x1000)); // overlaps
    EXPECT_FALSE(reg.registerRegion(b, 0x0800, 0x1000)); // overlaps
    EXPECT_TRUE(reg.registerRegion(b, 0x2000, 0x1000));  // adjacent OK
}

TEST(Pasid, CrossPasidAccessDenied)
{
    PasidRegistry reg;
    Pasid a = reg.allocate();
    Pasid b = reg.allocate();
    ASSERT_TRUE(reg.registerRegion(a, 0x1000, 0x1000));
    EXPECT_FALSE(reg.authorised(b, 0x1000, 128));
}

TEST(Pasid, ReleaseDropsRegions)
{
    PasidRegistry reg;
    Pasid p = reg.allocate();
    ASSERT_TRUE(reg.registerRegion(p, 0x1000, 0x1000));
    reg.release(p);
    EXPECT_FALSE(reg.authorised(p, 0x1000, 128));
    EXPECT_EQ(reg.regionCount(), 0u);
}

TEST(Pasid, UnregisterExactBase)
{
    PasidRegistry reg;
    Pasid p = reg.allocate();
    ASSERT_TRUE(reg.registerRegion(p, 0x1000, 0x1000));
    EXPECT_FALSE(reg.unregisterRegion(p, 0x1800));
    EXPECT_TRUE(reg.unregisterRegion(p, 0x1000));
    EXPECT_EQ(reg.regionCount(), 0u);
}

TEST(M1Window, Translation)
{
    M1Window win{0x2000000000ULL, 1ULL << 30};
    EXPECT_TRUE(win.contains(0x2000000000ULL));
    EXPECT_TRUE(win.contains(0x203fffffffULL));
    EXPECT_FALSE(win.contains(0x2040000000ULL));
    EXPECT_EQ(win.toInternal(0x2000001000ULL), 0x1000u);
    EXPECT_EQ(win.toReal(0x1000), 0x2000001000ULL);
}

TEST(Crossing, LatencyOnly)
{
    sim::EventQueue eq;
    CrossingStage stage("s", eq, {sim::nanoseconds(75), 0});
    sim::Tick arrival = 0;
    stage.connect([&](TxnPtr) { arrival = eq.now(); });
    stage.push(mem::makeTxn(TxnType::ReadReq, 0));
    eq.run();
    EXPECT_EQ(arrival, sim::nanoseconds(75));
}

TEST(Crossing, PipelinedSerialisation)
{
    sim::EventQueue eq;
    // 32 GB/s: a 5-flit (160B) write request serialises in 5 ns.
    CrossingStage stage("s", eq, {sim::nanoseconds(100), 32e9});
    std::vector<sim::Tick> arrivals;
    stage.connect([&](TxnPtr) { arrivals.push_back(eq.now()); });
    for (int i = 0; i < 4; ++i)
        stage.push(mem::makeTxn(TxnType::WriteReq, 0));
    eq.run();
    ASSERT_EQ(arrivals.size(), 4u);
    // First: 5 ns ser + 100 ns latency; then 5 ns apart (pipelined).
    EXPECT_EQ(arrivals[0], sim::nanoseconds(105));
    EXPECT_EQ(arrivals[1], sim::nanoseconds(110));
    EXPECT_EQ(arrivals[3], sim::nanoseconds(120));
}

namespace {

struct C1Fixture : ::testing::Test
{
    sim::EventQueue eq;
    mem::BackingStore store;
    mem::DramParams dparams;
    std::unique_ptr<mem::Dram> dram;
    PasidRegistry pasids;
    std::unique_ptr<C1Master> c1;
    Pasid pasid = invalidPasid;

    void
    SetUp() override
    {
        dparams.accessLatency = sim::nanoseconds(90);
        dparams.bandwidthBps = 110e9;
        dram = std::make_unique<mem::Dram>("dram", eq, dparams, &store);
        c1 = std::make_unique<C1Master>("c1", eq, C1Params{}, pasids,
                                        *dram);
        pasid = pasids.allocate();
        ASSERT_TRUE(pasids.registerRegion(pasid, 0x100000, 1 << 20));
    }
};

} // namespace

TEST_F(C1Fixture, AuthorizedAccessReachesDram)
{
    auto txn = mem::makeTxn(TxnType::ReadReq, 0x100000);
    bool done = false;
    c1->master(pasid, txn, [&](TxnPtr t) {
        done = true;
        EXPECT_FALSE(t->error);
        EXPECT_EQ(t->data.size(), mem::cachelineBytes);
    });
    eq.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(c1->transactions(), 1u);
    EXPECT_EQ(c1->faults(), 0u);
}

TEST_F(C1Fixture, UnauthorizedAccessFaults)
{
    auto txn = mem::makeTxn(TxnType::ReadReq, 0x0); // unregistered
    bool done = false;
    c1->master(pasid, txn, [&](TxnPtr t) {
        done = true;
        EXPECT_TRUE(t->error);
    });
    eq.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(c1->faults(), 1u);
    EXPECT_EQ(dram->reads(), 0u);
}

TEST_F(C1Fixture, BandwidthCeiling128B)
{
    // Saturate the C1 command pipeline with 128B writes; sustained
    // bandwidth must land near the paper's ~16 GiB/s ceiling and well
    // below the 20 GiB/s achievable with 256B bursts.
    const int n = 20000;
    int completed = 0;
    for (int i = 0; i < n; ++i) {
        auto txn = mem::makeTxn(
            TxnType::WriteReq,
            0x100000 + (static_cast<Addr>(i) * 128) % (1 << 20));
        txn->data.assign(128, 0x5a);
        c1->master(pasid, txn, [&](TxnPtr) { ++completed; });
    }
    eq.run();
    ASSERT_EQ(completed, n);
    double secs = sim::toSec(eq.now());
    double gib = static_cast<double>(n) * 128 /
                 (1024.0 * 1024 * 1024) / secs;
    EXPECT_GT(gib, 14.0);
    EXPECT_LT(gib, 18.5);
}

TEST_F(C1Fixture, BandwidthHigherWith256B)
{
    const int n = 10000;
    int completed = 0;
    for (int i = 0; i < n; ++i) {
        auto txn = mem::makeTxn(
            TxnType::WriteReq,
            0x100000 + (static_cast<Addr>(i) * 256) % (1 << 20), 256);
        txn->data.assign(256, 0x5a);
        c1->master(pasid, txn, [&](TxnPtr) { ++completed; });
    }
    eq.run();
    ASSERT_EQ(completed, n);
    double secs = sim::toSec(eq.now());
    double gib = static_cast<double>(n) * 256 /
                 (1024.0 * 1024 * 1024) / secs;
    // Paper: ~20 GiB/s with 256B transactions.
    EXPECT_GT(gib, 18.5);
    EXPECT_LT(gib, 23.0);
}
