/**
 * @file
 * Telemetry subsystem tests: the quantile sketch, StatSet attach /
 * freeze / resetAll semantics, the deterministic JSON writer, the
 * hierarchical registry's export schema, byte-identical same-seed
 * exports, and datapath failover counters reaching the registry.
 */

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <sstream>

#include "mem/dram.hh"
#include "sim/json.hh"
#include "sim/stats.hh"
#include "tflow/datapath.hh"

using namespace tf;
using tf::mem::Addr;
using tf::mem::TxnType;

// -------------------------------------------- QuantileSketch

TEST(QuantileSketch, QuantilesAreMonotoneAndBounded)
{
    sim::QuantileSketch q;
    for (int i = 1; i <= 10000; ++i)
        q.add(static_cast<double>(i));

    EXPECT_EQ(q.count(), 10000u);
    EXPECT_DOUBLE_EQ(q.min(), 1.0);
    EXPECT_DOUBLE_EQ(q.max(), 10000.0);
    EXPECT_NEAR(q.mean(), 5000.5, 1.0);

    double last = q.quantile(0.0);
    for (double p : {0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0}) {
        double v = q.quantile(p);
        EXPECT_GE(v, last) << "quantile not monotone at p=" << p;
        EXPECT_GE(v, q.min());
        EXPECT_LE(v, q.max());
        last = v;
    }
    // Log-linear buckets: ~3% relative error at worst.
    EXPECT_NEAR(q.quantile(0.5), 5000.0, 5000.0 * 0.05);
    EXPECT_NEAR(q.quantile(0.99), 9900.0, 9900.0 * 0.05);
}

TEST(QuantileSketch, HandlesZeroAndResets)
{
    sim::QuantileSketch q;
    q.add(0.0);
    q.add(0.0);
    q.add(8.0);
    EXPECT_EQ(q.count(), 3u);
    EXPECT_DOUBLE_EQ(q.min(), 0.0);
    EXPECT_DOUBLE_EQ(q.quantile(0.3), 0.0);
    // Floor ranking: rank 2 of {0, 0, 8} is the non-zero sample.
    EXPECT_GT(q.quantile(1.0), 0.0);

    q.reset();
    EXPECT_EQ(q.count(), 0u);
    EXPECT_DOUBLE_EQ(q.quantile(0.5), 0.0);
}

TEST(QuantileSketch, ShardedMergeMatchesUnsharded)
{
    // Buckets share a fixed global layout, so a merge of N shards is
    // bucket-exact against the unsharded sketch: every quantile and
    // every counter agrees, with zero drift -- the --jobs trace
    // attribution merge relies on this.
    constexpr int kShards = 7;
    sim::QuantileSketch whole;
    sim::QuantileSketch shards[kShards];
    std::uint64_t state = 0x9e3779b97f4a7c15ULL;
    for (int i = 0; i < 20000; ++i) {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        // Wide dynamic range incl. zeros: exercises every bucket path.
        double v = static_cast<double>(state >> 40) / 256.0;
        if (i % 97 == 0)
            v = 0.0;
        whole.add(v);
        shards[i % kShards].add(v);
    }

    sim::QuantileSketch merged;
    for (const auto &shard : shards)
        merged.merge(shard);

    EXPECT_EQ(merged.count(), whole.count());
    EXPECT_DOUBLE_EQ(merged.min(), whole.min());
    EXPECT_DOUBLE_EQ(merged.max(), whole.max());
    EXPECT_NEAR(merged.mean(), whole.mean(),
                std::abs(whole.mean()) * 1e-12);
    for (double p : {0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95,
                     0.99, 0.999, 1.0})
        EXPECT_DOUBLE_EQ(merged.quantile(p), whole.quantile(p))
            << "quantile drift at p=" << p;

    // Merging into a non-empty sketch and merging empties both work.
    sim::QuantileSketch empty;
    merged.merge(empty);
    EXPECT_EQ(merged.count(), whole.count());
    empty.merge(whole);
    EXPECT_EQ(empty.count(), whole.count());
    EXPECT_DOUBLE_EQ(empty.quantile(0.5), whole.quantile(0.5));
}

// -------------------------------------------- JsonWriter

TEST(JsonWriter, DeterministicFormatting)
{
    std::ostringstream os;
    sim::JsonWriter w(os, /*pretty=*/false);
    w.beginObject();
    w.field("int", std::uint64_t{42});
    w.field("real", 2.5);
    w.field("text", "a\"b\nc");
    w.name("arr");
    w.beginArray();
    w.value(1);
    w.value(true);
    w.valueNull();
    w.endArray();
    w.endObject();
    EXPECT_EQ(os.str(),
              "{\"int\":42,\"real\":2.5,\"text\":\"a\\\"b\\nc\","
              "\"arr\":[1,true,null]}");
}

// -------------------------------------------- StatSet semantics

TEST(StatSet, ResetAllClearsAttachedStatsAndRecordedRows)
{
    sim::Counter c;
    sim::SampleStat s;
    sim::StatSet set("unit");
    set.attach("count", c, "txns");
    set.attach("lat", s, "ns");

    c.inc(5);
    s.add(10.0);
    set.record("adhoc", 1.0);

    set.resetAll();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(s.count(), 0u);
    EXPECT_TRUE(set.entries().empty());

    // Post-reset activity is visible again: no staleness.
    c.inc(2);
    std::ostringstream os;
    sim::JsonWriter w(os, false);
    set.writeJson(w);
    EXPECT_NE(os.str().find("\"count\":2"), std::string::npos);
}

TEST(StatSet, FreezeSurvivesOwnerDeath)
{
    sim::StatSet set("unit");
    {
        auto c = std::make_unique<sim::Counter>();
        c->inc(7);
        set.attach("count", *c, "txns");
        set.freeze();
    } // counter destroyed; the frozen copy must carry the value

    std::ostringstream os;
    sim::JsonWriter w(os, false);
    set.writeJson(w);
    EXPECT_NE(os.str().find("\"count\":7"), std::string::npos);
}

TEST(StatsRegistry, PathsSortedAndSubtreeReset)
{
    sim::StatsRegistry reg;
    sim::Counter a, b;
    reg.at("z.leaf").attach("n", a);
    reg.at("a.leaf").attach("n", b);
    a.inc(3);
    b.inc(4);

    auto paths = reg.paths();
    ASSERT_EQ(paths.size(), 2u);
    EXPECT_EQ(paths[0], "a.leaf");
    EXPECT_EQ(paths[1], "z.leaf");

    // Prefix-scoped reset leaves the other subtree untouched.
    reg.resetAll("a");
    EXPECT_EQ(b.value(), 0u);
    EXPECT_EQ(a.value(), 3u);
}

// -------------------------------------------- datapath exports

namespace {

constexpr Addr kWindowBase = 0x2000000000ULL;
constexpr std::uint64_t kWindowSize = 1ULL << 30;
constexpr std::uint64_t kSectionBytes = 1ULL << 24;
constexpr Addr kDonorBase = 0x100000000ULL;

/** Two-channel bonded datapath with its stats registered. */
struct TelemetryRig
{
    sim::EventQueue eq;
    sim::Rng rng;
    mem::BackingStore store;
    std::unique_ptr<mem::Dram> dram;
    ocapi::PasidRegistry pasids;
    std::unique_ptr<flow::Datapath> dp;
    sim::StatsRegistry reg;

    explicit TelemetryRig(std::uint64_t seed) : rng(seed)
    {
        flow::FlowParams params;
        params.maxReplayRounds = 4;
        params.ackTimeout = sim::microseconds(2);
        dram = std::make_unique<mem::Dram>("donorDram", eq,
                                           mem::DramParams{}, &store);
        dp = std::make_unique<flow::Datapath>(
            "dp", eq, params,
            ocapi::M1Window{kWindowBase, kWindowSize}, pasids, *dram,
            rng, kSectionBytes);
        ocapi::Pasid pasid = pasids.allocate();
        pasids.registerRegion(pasid, kDonorBase, kWindowSize);
        dp->stealing().setPasid(pasid);
        dp->attach(0, kDonorBase, 1, {0, 1});
        dp->registerStats(reg, "tflow");
    }

    void
    drive(int total, bool expectSuccess = true)
    {
        int issued = 0;
        int done = 0;
        std::function<void()> pump = [&]() {
            while (issued < total && issued - done < 64) {
                Addr addr = kWindowBase +
                            static_cast<Addr>(issued % 1024) * 128;
                auto txn = mem::makeTxn(TxnType::ReadReq, addr);
                txn->onComplete = [&, expectSuccess](mem::MemTxn &t) {
                    if (expectSuccess)
                        EXPECT_FALSE(t.error);
                    ++done;
                    pump();
                };
                ++issued;
                dp->issue(std::move(txn));
            }
        };
        pump();
        eq.run();
    }
};

} // namespace

TEST(TelemetryExport, RegistryCarriesTheDatapathSchema)
{
    TelemetryRig rig(42);
    rig.drive(500);
    std::string json = rig.reg.toJson();

    // One entry per component path, counters under each.
    for (const char *needle :
         {"\"tflow\"", "\"tflow.compute\"", "\"tflow.compute.rmmu\"",
          "\"tflow.compute.routing\"", "\"tflow.llc.ch0.txA\"",
          "\"tflow.llc.ch1.rxB\"", "\"tflow.llc.ch0.wireAB\"",
          "\"tflow.stealing\"", "\"tflow.c1\"", "\"hits\"",
          "\"creditStalls\"", "\"framesSent\"", "\"routed.ch0\"",
          "\"serviceNs\"", "\"linkDownEvents\""}) {
        EXPECT_NE(json.find(needle), std::string::npos)
            << "missing " << needle;
    }
    // 500 error-free reads: issued == completed == 500.
    EXPECT_NE(json.find("\"issued\": 500"), std::string::npos);
    EXPECT_NE(json.find("\"completed\": 500"), std::string::npos);
}

TEST(TelemetryExport, SameSeedRunsExportIdenticalJson)
{
    auto runOnce = []() {
        TelemetryRig rig(1234);
        rig.drive(2000);
        return rig.reg.toJson();
    };
    std::string first = runOnce();
    std::string second = runOnce();
    EXPECT_FALSE(first.empty());
    EXPECT_EQ(first, second);
}

TEST(TelemetryExport, FailoverCountersReachTheRegistry)
{
    TelemetryRig rig(7);
    rig.drive(500);
    rig.dp->failChannel(0);
    // Salvaged requests may complete as duplicates-after-error;
    // tolerate errors while the failure is being detected.
    rig.drive(500, /*expectSuccess=*/false);
    ASSERT_TRUE(rig.dp->channelDown(0));

    std::string json = rig.reg.toJson();
    EXPECT_NE(json.find("\"linkDownEvents\": 1"), std::string::npos);
    // The dead channel's Tx recorded its link-down escalation and
    // the Wire dropped frames while it was down.
    const sim::StatSet *tx = rig.reg.find("tflow.llc.ch0.txA");
    ASSERT_NE(tx, nullptr);
    std::ostringstream os;
    sim::JsonWriter w(os, false);
    tx->writeJson(w);
    EXPECT_NE(os.str().find("\"linkDowns\":1"), std::string::npos);

    // Survivor keeps routing: per-channel routed counter moved.
    EXPECT_GT(rig.dp->routing().routedOnChannel(1), 0u);
}
