/**
 * @file
 * Fault-injection engine tests: plan builders, seeded randomized
 * plans, registry dispatch, engine scheduling/counting, hwpoison
 * frame retirement, and a randomized testbed soak replayed twice for
 * bit-identical results.
 */

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "os/address_space.hh"
#include "os/memory_manager.hh"
#include "sim/fault/fault.hh"
#include "system/testbed.hh"

using namespace tf;
using namespace tf::sim::fault;

// ------------------------------------------------- plan + registry

TEST(FaultPlan, BuildersKeepEventsSortedByFireTime)
{
    GilbertElliott ge;
    ge.pGoodBad = 0.1;

    Plan plan;
    plan.stall(sim::microseconds(30), "dram", sim::microseconds(5))
        .flap(sim::microseconds(10), "ch0", sim::microseconds(20))
        .burst(sim::microseconds(50), "wire", sim::microseconds(5), ge)
        .spike(sim::microseconds(20), "eth", sim::microseconds(5),
               sim::nanoseconds(500));

    ASSERT_EQ(plan.size(), 4u);
    for (std::size_t i = 1; i < plan.events().size(); ++i)
        EXPECT_LE(plan.events()[i - 1].at, plan.events()[i].at);
    EXPECT_EQ(plan.events().front().kind, Kind::ChannelFlap);
    EXPECT_EQ(plan.events().back().kind, Kind::BurstLoss);
}

TEST(FaultRegistry, DispatchRespectsKindMask)
{
    Registry reg;
    int flaps = 0;
    reg.add("ch0", kindBit(Kind::ChannelFlap) | kindBit(Kind::ChannelFail),
            [&](const Event &) { ++flaps; });

    EXPECT_TRUE(reg.has("ch0"));
    EXPECT_TRUE(reg.supports("ch0", Kind::ChannelFlap));
    EXPECT_FALSE(reg.supports("ch0", Kind::DramStall));
    EXPECT_FALSE(reg.supports("nope", Kind::ChannelFlap));

    Event ev;
    ev.kind = Kind::ChannelFlap;
    ev.point = "ch0";
    EXPECT_TRUE(reg.dispatch(ev));
    EXPECT_EQ(flaps, 1);

    ev.kind = Kind::DramStall; // registered point, unsupported kind
    EXPECT_FALSE(reg.dispatch(ev));
    ev.kind = Kind::ChannelFlap;
    ev.point = "nope"; // unknown point
    EXPECT_FALSE(reg.dispatch(ev));
    EXPECT_EQ(flaps, 1);
}

TEST(FaultRegistry, NamesAndPointsSupportingAreSorted)
{
    Registry reg;
    auto nop = [](const Event &) {};
    reg.add("z.ch1", kindBit(Kind::ChannelFlap), nop);
    reg.add("a.ch0", kindBit(Kind::ChannelFlap), nop);
    reg.add("m.dram", kindBit(Kind::DramStall), nop);

    EXPECT_EQ(reg.names(),
              (std::vector<std::string>{"a.ch0", "m.dram", "z.ch1"}));
    EXPECT_EQ(reg.pointsSupporting(Kind::ChannelFlap),
              (std::vector<std::string>{"a.ch0", "z.ch1"}));
    EXPECT_TRUE(reg.pointsSupporting(Kind::ControlOutage).empty());
}

// --------------------------------------------------------- engine

TEST(FaultEngine, FiresAtScheduledTicksAndCounts)
{
    sim::EventQueue eq;
    Registry reg;
    std::vector<sim::Tick> fireTimes;
    reg.add("ch0",
            kindBit(Kind::ChannelFlap) | kindBit(Kind::CreditStarve),
            [&](const Event &) { fireTimes.push_back(eq.now()); });

    Plan plan;
    plan.flap(sim::microseconds(5), "ch0", sim::microseconds(1))
        .starve(sim::microseconds(9), "ch0", sim::microseconds(1))
        .stall(sim::microseconds(7), "missing", sim::microseconds(1));

    Engine engine(eq, reg);
    engine.arm(plan);
    EXPECT_EQ(engine.armed(), 3u);
    eq.run();

    ASSERT_EQ(fireTimes.size(), 2u);
    EXPECT_EQ(fireTimes[0], sim::microseconds(5));
    EXPECT_EQ(fireTimes[1], sim::microseconds(9));
    EXPECT_EQ(engine.fired(), 2u);
    EXPECT_EQ(engine.unmatched(), 1u); // the stall had no point
    EXPECT_EQ(engine.firedOfKind(Kind::ChannelFlap), 1u);
    EXPECT_EQ(engine.firedOfKind(Kind::CreditStarve), 1u);
    EXPECT_EQ(engine.firedOfKind(Kind::DramStall), 0u);
}

TEST(FaultPlan, RandomizedIsSeedDeterministic)
{
    Registry reg;
    auto nop = [](const Event &) {};
    reg.add("ch0", kindBit(Kind::ChannelFlap) | kindBit(Kind::ChannelFail),
            nop);
    reg.add("ch0.wire", kindBit(Kind::BurstLoss), nop);
    reg.add("dram", kindBit(Kind::DramStall), nop);
    reg.add("eth", kindBit(Kind::LatencySpike), nop);

    const sim::Tick horizon = sim::microseconds(200);
    Plan a = Plan::randomized(1234, horizon, reg, 12);
    Plan b = Plan::randomized(1234, horizon, reg, 12);
    Plan c = Plan::randomized(4321, horizon, reg, 12);

    ASSERT_EQ(a.size(), 12u);
    ASSERT_EQ(b.size(), 12u);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.events()[i].at, b.events()[i].at);
        EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
        EXPECT_EQ(a.events()[i].point, b.events()[i].point);
        EXPECT_EQ(a.events()[i].duration, b.events()[i].duration);
    }
    bool differs = false;
    for (std::size_t i = 0; i < c.size() && !differs; ++i)
        differs = c.events()[i].at != a.events()[i].at ||
                  c.events()[i].point != a.events()[i].point;
    EXPECT_TRUE(differs) << "different seeds drew identical plans";

    for (const Event &ev : a.events()) {
        EXPECT_NE(ev.kind, Kind::ChannelFail)
            << "random soaks must stay transient";
        EXPECT_TRUE(reg.supports(ev.point, ev.kind));
        EXPECT_GT(ev.at, sim::Tick{0});
        EXPECT_LT(ev.at, horizon);
    }
}

// ------------------------------------------------------- hwpoison

namespace {

constexpr std::uint64_t kSection = 1 << 22; // 4 MiB
constexpr std::uint64_t kPage = 64 * 1024;

} // namespace

TEST(HwPoison, PoisonedFrameIsRetiredNotRecycled)
{
    os::NumaTopology topo;
    os::NodeId node = topo.addNode("local", true);
    os::MemoryManager mm(topo, kSection, kPage);
    ASSERT_TRUE(mm.onlineSection(node, 0));

    auto frame = mm.allocPageOn(node);
    ASSERT_TRUE(frame.has_value());
    mm.poisonPage(*frame + 17); // any byte inside the page poisons it
    EXPECT_TRUE(mm.isPoisoned(*frame));
    EXPECT_EQ(mm.poisonedPages(), 1u);

    std::uint64_t freeBefore = mm.freePages(node);
    mm.freePage(*frame); // retired, not pushed back on the free list
    EXPECT_EQ(mm.freePages(node), freeBefore);

    // Drain the node: the poisoned frame must never be handed out.
    while (auto p = mm.allocPageOn(node))
        EXPECT_NE(*p, *frame);
}

TEST(HwPoison, TranslateRefaultsPoisonedMapping)
{
    os::NumaTopology topo;
    os::NodeId node = topo.addNode("local", true);
    os::MemoryManager mm(topo, kSection, kPage);
    ASSERT_TRUE(mm.onlineSection(node, 0));

    os::AddressSpace as(mm, node);
    mem::Addr vbase = as.mmap(4 * kPage);
    auto frame = as.translate(vbase + kPage);
    ASSERT_TRUE(frame.has_value());

    mm.poisonPage(*frame);
    auto fresh = as.translate(vbase + kPage);
    ASSERT_TRUE(fresh.has_value());
    EXPECT_NE(*fresh, *frame);
    EXPECT_EQ(as.refaults(), 1u);
    EXPECT_FALSE(mm.isPoisoned(*fresh));

    // The replacement mapping is stable: no further refaults.
    auto again = as.translate(vbase + kPage);
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(*again, *fresh);
    EXPECT_EQ(as.refaults(), 1u);
}

// ------------------------------------------- randomized soak replay

namespace {

/**
 * One randomized chaos soak against the bonded testbed: closed-loop
 * reads/writes while a seeded Plan::randomized schedule fires.
 * Returns a tuple of invariant-bearing counters for replay
 * comparison.
 */
struct SoakResult
{
    std::uint64_t completed = 0;
    std::uint64_t ok = 0;
    std::uint64_t errored = 0;
    std::uint64_t byteErrors = 0;
    std::uint64_t fired = 0;
    std::uint64_t linkDowns = 0;
    std::uint64_t executed = 0;

    bool
    operator==(const SoakResult &o) const
    {
        return completed == o.completed && ok == o.ok &&
               errored == o.errored && byteErrors == o.byteErrors &&
               fired == o.fired && linkDowns == o.linkDowns &&
               executed == o.executed;
    }
};

SoakResult
runRandomizedSoak(std::uint64_t seed, int totalOps)
{
    const sim::Tick horizon = sim::microseconds(120);
    sim::EventQueue eq;
    sys::TestbedParams tp;
    tp.setup = sys::Setup::BondingDisaggregated;
    tp.donatedBytes = 32ULL * 1024 * 1024;
    tp.seed = seed;
    tp.flow.requestDeadline = sim::microseconds(400);
    tp.flow.ackTimeout = sim::microseconds(5);
    tp.flow.maxReplayRounds = 4;
    sys::Testbed bed(eq, tp);
    bed.controlPlane().setHoldDown(eq, sim::microseconds(5),
                                   sim::microseconds(80));

    Registry reg;
    bed.registerFaultPoints(reg);
    Engine engine(eq, reg);
    Plan plan = Plan::randomized(seed * 7 + 1, horizon, reg, 8);
    EXPECT_FALSE(plan.empty());
    engine.arm(plan);

    const mem::Addr base =
        bed.serverA().datapath()->compute().window().base;
    const std::uint64_t lines = 128;
    std::vector<std::uint8_t> expected(lines, 0);
    std::vector<bool> valid(lines, false), tainted(lines, false),
        busy(lines, false);
    sim::Rng wrng(seed ^ 0x9e3779b97f4a7c15ULL);

    SoakResult res;
    std::uint64_t launched = 0;
    std::function<void()> issueOne = [&]() {
        std::uint64_t line = wrng.below(lines);
        while (busy[line])
            line = wrng.below(lines);
        busy[line] = true;
        bool write = wrng.chance(0.5);
        std::uint8_t pat =
            static_cast<std::uint8_t>((launched * 37 + line) & 0xff);
        auto txn = mem::makeTxn(write ? mem::TxnType::WriteReq
                                      : mem::TxnType::ReadReq,
                                base + line * mem::cachelineBytes);
        if (write)
            txn->data.assign(mem::cachelineBytes, pat);
        ++launched;
        txn->onComplete = [&, line, write, pat](mem::MemTxn &t) {
            ++res.completed;
            busy[line] = false;
            if (t.status == mem::TxnStatus::Ok) {
                ++res.ok;
                if (write) {
                    expected[line] = pat;
                    valid[line] = true;
                } else if (valid[line] && !tainted[line]) {
                    for (std::uint8_t b : t.data)
                        if (b != expected[line]) {
                            ++res.byteErrors;
                            break;
                        }
                }
            } else {
                ++res.errored;
                if (write)
                    tainted[line] = true;
            }
            if (launched < static_cast<std::uint64_t>(totalOps))
                issueOne();
        };
        bed.serverA().issue(std::move(txn));
    };
    for (int i = 0; i < 32 && i < totalOps; ++i)
        issueOne();
    eq.run();

    res.fired = engine.fired();
    res.linkDowns = bed.datapath()->linkDownEvents();
    res.executed = eq.executed();
    return res;
}

} // namespace

TEST(FaultSoak, RandomizedSoakHoldsInvariantsAndReplaysExactly)
{
    constexpr int kOps = 4000;
    SoakResult first = runRandomizedSoak(97, kOps);

    // Invariants: nothing lost, nothing hangs, settled bytes correct.
    EXPECT_EQ(first.completed, static_cast<std::uint64_t>(kOps));
    EXPECT_EQ(first.ok + first.errored, first.completed);
    EXPECT_EQ(first.byteErrors, 0u);
    EXPECT_GT(first.fired, 0u);

    // Determinism: the same seed replays the same run bit-for-bit,
    // down to the total event count the kernel executed.
    SoakResult replay = runRandomizedSoak(97, kOps);
    EXPECT_TRUE(first == replay);

    // A different seed is a different soak (event counts diverge).
    SoakResult other = runRandomizedSoak(98, kOps);
    EXPECT_NE(first.executed, other.executed);
}
