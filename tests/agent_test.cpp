/**
 * @file
 * Agent tests: memory-stealing role, compute-side attach/detach, and
 * the full agent-driven integration path (steal -> attach -> hotplug
 * -> allocate -> ld/st over the wire -> detach).
 */

#include <gtest/gtest.h>

#include "agent/agent.hh"
#include "mem/dram.hh"
#include "os/address_space.hh"

using namespace tf;
using namespace tf::agent;
using tf::mem::Addr;
using tf::mem::TxnPtr;
using tf::mem::TxnType;

namespace {

constexpr std::uint64_t kSection = 1 << 22; // 4 MiB
constexpr std::uint64_t kPage = 64 * 1024;
constexpr Addr kWindowBase = 0x2000000000ULL;
constexpr std::uint64_t kWindowSize = 1ULL << 28; // 256 MiB
const std::string kToken = "cp-secret";

/** Two hosts: "compute" (hostA) and "donor" (hostB), one datapath. */
struct AgentFixture : ::testing::Test
{
    sim::EventQueue eq;
    sim::Rng rng{7};

    // Host A (compute side)
    os::NumaTopology topoA;
    std::unique_ptr<os::MemoryManager> mmA;
    os::NodeId localA = os::invalidNode;
    os::NodeId tflowNode = os::invalidNode;
    ocapi::PasidRegistry pasidsA;
    std::unique_ptr<Agent> agentA;

    // Host B (donor side)
    os::NumaTopology topoB;
    std::unique_ptr<os::MemoryManager> mmB;
    os::NodeId localB = os::invalidNode;
    ocapi::PasidRegistry pasidsB;
    std::unique_ptr<Agent> agentB;
    mem::BackingStore storeB;
    std::unique_ptr<mem::Dram> dramB;

    std::unique_ptr<flow::Datapath> dp;

    void
    SetUp() override
    {
        localA = topoA.addNode("a.local", true);
        tflowNode = topoA.addNode("a.tflow0", false);
        topoA.setDistance(localA, tflowNode, 80);
        mmA = std::make_unique<os::MemoryManager>(topoA, kSection,
                                                  kPage);
        for (int i = 0; i < 2; ++i)
            ASSERT_TRUE(mmA->onlineSection(
                localA, static_cast<Addr>(i) * kSection));
        agentA =
            std::make_unique<Agent>("agentA", *mmA, pasidsA, kToken);

        localB = topoB.addNode("b.local", true);
        mmB = std::make_unique<os::MemoryManager>(topoB, kSection,
                                                  kPage);
        for (int i = 0; i < 8; ++i)
            ASSERT_TRUE(mmB->onlineSection(
                localB, static_cast<Addr>(i) * kSection));
        agentB =
            std::make_unique<Agent>("agentB", *mmB, pasidsB, kToken);
        dramB = std::make_unique<mem::Dram>("dramB", eq,
                                            mem::DramParams{}, &storeB);

        dp = std::make_unique<flow::Datapath>(
            "dp", eq, flow::FlowParams{},
            ocapi::M1Window{kWindowBase, kWindowSize}, pasidsB,
            *dramB, rng, kSection);
    }
};

} // namespace

TEST_F(AgentFixture, StealReturnsWholeSections)
{
    auto donation = agentB->stealMemory(kToken, 6 * 1024 * 1024,
                                        localB);
    ASSERT_TRUE(donation.has_value());
    EXPECT_EQ(donation->chunks.size(), 2u); // rounded up to 2 sections
    EXPECT_EQ(donation->bytes(), 2 * kSection);
    EXPECT_NE(donation->pasid, ocapi::invalidPasid);
    // Pinned regions registered for the C1 master.
    for (const auto &c : donation->chunks)
        EXPECT_TRUE(pasidsB.authorised(donation->pasid, c.base, 128));
    // Donor node lost the pages.
    EXPECT_EQ(mmB->freePages(localB),
              6 * (kSection / kPage));
}

TEST_F(AgentFixture, StealFailsWhenNoFreeSections)
{
    auto big = agentB->stealMemory(kToken, 9 * kSection, localB);
    EXPECT_FALSE(big.has_value());
    // Roll-back: everything still free.
    EXPECT_EQ(mmB->freePages(localB), 8 * (kSection / kPage));
    EXPECT_EQ(pasidsB.regionCount(), 0u);
}

TEST_F(AgentFixture, BadTokenRejected)
{
    EXPECT_FALSE(
        agentB->stealMemory("wrong", kSection, localB).has_value());
    EXPECT_EQ(agentB->rejectedCommands(), 1u);
}

TEST_F(AgentFixture, AttachHotplugsIntoNumaNode)
{
    auto donation = agentB->stealMemory(kToken, 2 * kSection, localB);
    ASSERT_TRUE(donation.has_value());
    auto att = agentA->attachMemory(kToken, *dp, *donation, tflowNode,
                                    {0});
    ASSERT_TRUE(att.has_value());
    EXPECT_EQ(att->sectionIndices.size(), 2u);
    EXPECT_EQ(mmA->totalPages(tflowNode), 2 * (kSection / kPage));
    // Hotplugged physical ranges live inside the M1 window.
    for (Addr base : att->hotplugBases) {
        EXPECT_GE(base, kWindowBase);
        EXPECT_LT(base, kWindowBase + kWindowSize);
    }
}

TEST_F(AgentFixture, EndToEndLoadStoreOverDatapath)
{
    auto donation = agentB->stealMemory(kToken, kSection, localB);
    ASSERT_TRUE(donation.has_value());
    auto att = agentA->attachMemory(kToken, *dp, *donation, tflowNode,
                                    {0, 1});
    ASSERT_TRUE(att.has_value());

    // Allocate a page from the new CPU-less NUMA node and store/load
    // through the full stack.
    os::AddressSpace as(*mmA, localA, os::AllocPolicy::bind({tflowNode}));
    Addr va = as.mmap(kPage);
    auto pa = as.translate(va);
    ASSERT_TRUE(pa.has_value());

    std::vector<std::uint8_t> payload(128, 0xc3);
    auto wr = mem::makeTxn(TxnType::WriteReq, *pa);
    wr->data = payload;
    bool wrote = false;
    wr->onComplete = [&](mem::MemTxn &t) {
        wrote = true;
        EXPECT_FALSE(t.error);
    };
    dp->issue(wr);
    eq.run();
    ASSERT_TRUE(wrote);

    auto rd = mem::makeTxn(TxnType::ReadReq, *pa);
    bool read_ok = false;
    rd->onComplete = [&](mem::MemTxn &t) {
        read_ok = !t.error && t.data == payload;
    };
    dp->issue(rd);
    eq.run();
    EXPECT_TRUE(read_ok);

    // The data physically resides in donor memory.
    Addr donor_ea = donation->chunks[0].base +
                    (*pa - att->hotplugBases[0]);
    std::vector<std::uint8_t> donor_bytes(128);
    storeB.read(donor_ea, donor_bytes.data(), 128);
    EXPECT_EQ(donor_bytes, payload);
}

TEST_F(AgentFixture, DetachBlockedWhilePagesInUse)
{
    auto donation = agentB->stealMemory(kToken, kSection, localB);
    ASSERT_TRUE(donation.has_value());
    auto att = agentA->attachMemory(kToken, *dp, *donation, tflowNode,
                                    {0});
    ASSERT_TRUE(att.has_value());

    auto page = mmA->allocPageOn(tflowNode);
    ASSERT_TRUE(page.has_value());
    EXPECT_FALSE(agentA->detachMemory(kToken, *dp, *att));

    mmA->freePage(*page);
    EXPECT_TRUE(agentA->detachMemory(kToken, *dp, *att));
    EXPECT_TRUE(agentB->releaseDonation(kToken, *donation));
    EXPECT_EQ(mmB->freePages(localB), 8 * (kSection / kPage));
}

TEST_F(AgentFixture, SectionIndicesReusedAfterDetach)
{
    auto d1 = agentB->stealMemory(kToken, kSection, localB);
    ASSERT_TRUE(d1.has_value());
    auto a1 = agentA->attachMemory(kToken, *dp, *d1, tflowNode, {0});
    ASSERT_TRUE(a1.has_value());
    std::size_t idx = a1->sectionIndices[0];
    ASSERT_TRUE(agentA->detachMemory(kToken, *dp, *a1));
    ASSERT_TRUE(agentB->releaseDonation(kToken, *d1));

    auto d2 = agentB->stealMemory(kToken, kSection, localB);
    ASSERT_TRUE(d2.has_value());
    auto a2 = agentA->attachMemory(kToken, *dp, *d2, tflowNode, {0});
    ASSERT_TRUE(a2.has_value());
    EXPECT_EQ(a2->sectionIndices[0], idx);
}
