/**
 * @file
 * Tests for the Fig. 1 data-centre models: trace generation
 * invariants, placement correctness, link limits, metric accounting.
 */

#include <gtest/gtest.h>

#include "dc/simulation.hh"

using namespace tf;
using namespace tf::dc;

TEST(TraceGen, SortedAndBounded)
{
    TraceParams tp;
    tp.jobs = 5000;
    TraceGenerator gen(tp, 1);
    auto trace = gen.generate();
    ASSERT_EQ(trace.size(), 5000u);
    for (std::size_t i = 1; i < trace.size(); ++i)
        EXPECT_GE(trace[i].arrival, trace[i - 1].arrival);
    for (const auto &j : trace) {
        EXPECT_GE(j.cpu, tp.minDemand);
        EXPECT_LE(j.cpu, tp.maxDemand);
        EXPECT_GE(j.mem, tp.minDemand);
        EXPECT_LE(j.mem, tp.maxDemand);
        EXPECT_GT(j.duration, 0u);
    }
}

TEST(TraceGen, RatioSpansOrdersOfMagnitude)
{
    TraceParams tp;
    tp.jobs = 20000;
    tp.minDemand = 1e-6; // avoid clamping for this check
    TraceGenerator gen(tp, 2);
    auto trace = gen.generate();
    int high = 0, low = 0;
    for (const auto &j : trace) {
        double ratio = j.mem / j.cpu;
        if (ratio > 1.0)
            ++high;
        if (ratio < 0.01)
            ++low;
    }
    // Both cpu-heavy and mem-heavy jobs exist in volume.
    EXPECT_GT(high, 1000);
    EXPECT_GT(low, 300);
}

TEST(TraceGen, Deterministic)
{
    TraceParams tp;
    tp.jobs = 100;
    auto a = TraceGenerator(tp, 7).generate();
    auto b = TraceGenerator(tp, 7).generate();
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].cpu, b[i].cpu);
        EXPECT_EQ(a[i].arrival, b[i].arrival);
    }
}

TEST(FixedModelT, PlaceAndRemoveRestoresState)
{
    FixedModel model(4);
    Job job{1, 0.5, 0.5, 0, 100};
    ASSERT_TRUE(model.place(job));
    auto m = model.metrics();
    EXPECT_DOUBLE_EQ(m.cpuOff, 0.75);
    EXPECT_NEAR(m.cpuFragmentation, 0.5 / 4, 1e-12);
    model.remove(1);
    m = model.metrics();
    EXPECT_DOUBLE_EQ(m.cpuOff, 1.0);
    EXPECT_DOUBLE_EQ(m.cpuFragmentation, 0.0);
}

TEST(FixedModelT, BestFitPacks)
{
    FixedModel model(3, FixedModel::Placement::BestFit);
    ASSERT_TRUE(model.place(Job{1, 0.5, 0.5, 0, 1}));
    ASSERT_TRUE(model.place(Job{2, 0.4, 0.4, 0, 1}));
    // Both land on the same server (minimum leftover).
    EXPECT_DOUBLE_EQ(model.metrics().cpuOff, 2.0 / 3.0);
}

TEST(FixedModelT, LeastLoadedSpreads)
{
    FixedModel model(3, FixedModel::Placement::LeastLoaded);
    ASSERT_TRUE(model.place(Job{1, 0.3, 0.3, 0, 1}));
    ASSERT_TRUE(model.place(Job{2, 0.3, 0.3, 0, 1}));
    ASSERT_TRUE(model.place(Job{3, 0.3, 0.3, 0, 1}));
    EXPECT_DOUBLE_EQ(model.metrics().cpuOff, 0.0);
}

TEST(FixedModelT, RejectsWhenNothingFits)
{
    FixedModel model(1);
    ASSERT_TRUE(model.place(Job{1, 0.6, 0.1, 0, 1}));
    EXPECT_FALSE(model.place(Job{2, 0.6, 0.1, 0, 1}));
    EXPECT_EQ(model.rejected(), 1u);
}

TEST(FixedModelT, BiDimensionalConstraint)
{
    FixedModel model(1);
    ASSERT_TRUE(model.place(Job{1, 0.1, 0.9, 0, 1}));
    // CPU would fit, memory does not.
    EXPECT_FALSE(model.place(Job{2, 0.1, 0.2, 0, 1}));
}

TEST(DisaggModelT, SplitsMemoryAcrossModules)
{
    DisaggModel model(2, 2, 16);
    // 1.4 machine-units of memory cannot fit one module.
    ASSERT_TRUE(model.place(Job{1, 0.2, 0.95, 0, 1}));
    ASSERT_TRUE(model.place(Job{2, 0.2, 0.95, 0, 1}));
    auto m = model.metrics();
    EXPECT_DOUBLE_EQ(m.memOff, 0.0); // both modules carry memory
    EXPECT_NEAR(m.memFragmentation, (2.0 - 1.9) / 2.0, 1e-9);
}

TEST(DisaggModelT, LinkLimitEnforced)
{
    // One compute module with only 1 link: a job needing memory from
    // two modules must fail.
    DisaggModel model(1, 4, 1);
    ASSERT_TRUE(model.place(Job{1, 0.1, 0.9, 0, 1}));
    // 0.9 left on the linked module is too small for 0.95 and a
    // second link is not available.
    EXPECT_FALSE(model.place(Job{2, 0.1, 0.95, 0, 1}));
    EXPECT_EQ(model.rejected(), 1u);
}

TEST(DisaggModelT, RemoveReleasesLinks)
{
    DisaggModel model(1, 4, 1);
    ASSERT_TRUE(model.place(Job{1, 0.1, 0.9, 0, 1}));
    model.remove(1);
    // Link freed: a fresh large job fits again.
    EXPECT_TRUE(model.place(Job{2, 0.1, 0.95, 0, 1}));
}

TEST(DisaggModelT, DecouplesStranding)
{
    // CPU-heavy jobs strand memory on fixed servers; the
    // disaggregated model pools the leftover memory into unused
    // modules that can be switched off.
    FixedModel fixed(4);
    DisaggModel disagg(4, 4, 16);
    for (std::uint64_t id = 1; id <= 3; ++id) {
        Job job{id, 0.9, 0.1, 0, 1};
        ASSERT_TRUE(fixed.place(job));
        ASSERT_TRUE(disagg.place(job));
    }
    // Fixed: 3 servers on, each wasting 0.9 memory.
    EXPECT_NEAR(fixed.metrics().memFragmentation, 2.7 / 4, 1e-9);
    // Disagg: all memory packs into one module; the rest are off.
    EXPECT_GT(disagg.metrics().memOff, fixed.metrics().memOff);
    EXPECT_LT(disagg.metrics().memFragmentation,
              fixed.metrics().memFragmentation / 3);
}

TEST(SimulationT, StableUnderEmptyTrace)
{
    DataCentreSimulation sim;
    FixedModel model(4);
    auto res = sim.run(model, {});
    EXPECT_EQ(res.placed, 0u);
}

TEST(SimulationT, PlacesAndCompletes)
{
    TraceParams tp;
    tp.jobs = 2000;
    tp.cpuMu = std::log(0.02);
    TraceGenerator gen(tp, 3);
    auto trace = gen.generate();
    DataCentreSimulation sim(0.1);
    FixedModel model(200);
    auto res = sim.run(model, trace);
    EXPECT_EQ(res.placed + res.rejectedAtArrival, trace.size());
    EXPECT_GT(res.placed, trace.size() * 9 / 10);
    // After the run everything departed.
    EXPECT_DOUBLE_EQ(model.metrics().cpuOff, 1.0);
}
