/**
 * @file
 * Tests for the windowed timeline subsystem (sim/timeline): the
 * sampling protocol (boundary closes, gap batching, disarm/re-arm),
 * per-window counter deltas / gauge samples / quantile sketches, the
 * declarative SLO watchdog (trip, hysteresis, evaluation ranges),
 * and the Timeline merge (prefixes, delta summing, padding).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/timeline/timeline.hh"

using namespace tf;
using sim::timeline::Recorder;
using sim::timeline::SloRule;
using sim::timeline::Timeline;

namespace {

constexpr sim::Tick kW = 1000; // window width for these tests

} // namespace

// ------------------------------------------------ sampling protocol

TEST(TimelineRecorderT, CounterDeltasLandInTheirWindows)
{
    sim::EventQueue eq;
    sim::Counter c;
    eq.schedule(100, [&] { c.inc(); });
    eq.schedule(1500, [&] { c.inc(2); });
    // Two empty windows, then activity again: the sampler skips the
    // gap in one batch close, attributing nothing to w2/w3.
    eq.schedule(4200, [&] { c.inc(); });

    Recorder rec(eq, kW);
    rec.addCounter("c", c, "ops");
    rec.start();
    eq.run();
    rec.finish();

    Timeline tl;
    tl.adopt(rec);
    ASSERT_EQ(tl.windows(), 5u);
    const auto &s = tl.series().at("c");
    EXPECT_EQ(s.values,
              (std::vector<double>{1.0, 2.0, 0.0, 0.0, 1.0}));
}

TEST(TimelineRecorderT, FinishClosesThePartialWindow)
{
    sim::EventQueue eq;
    sim::Counter c;
    eq.schedule(300, [&] { c.inc(); });

    Recorder rec(eq, kW);
    rec.addCounter("c", c, "ops");
    rec.start();
    eq.run();
    rec.finish();
    // Idempotent: a second finish must not close another window.
    rec.finish();

    Timeline tl;
    tl.adopt(rec);
    ASSERT_EQ(tl.windows(), 1u);
    EXPECT_EQ(tl.at("c", 0), 1.0);
}

TEST(TimelineRecorderT, EmptyRunProducesNoWindows)
{
    sim::EventQueue eq;
    sim::Counter c;
    Recorder rec(eq, kW);
    rec.addCounter("c", c, "ops");
    rec.start();
    eq.run();
    rec.finish();
    EXPECT_EQ(rec.windows(), 0u);
}

TEST(TimelineRecorderT, ReArmAfterDrainRecordsLaterWindows)
{
    // A drained queue disarms the sampler (it must never keep a
    // finished LP alive); ensureArmed() — the LP wake hook — brings
    // it back when new work shows up.
    sim::EventQueue eq;
    sim::Counter c;
    eq.schedule(100, [&] { c.inc(); });

    Recorder rec(eq, kW);
    rec.addCounter("c", c, "ops");
    rec.start();
    eq.run();

    eq.schedule(2500, [&] { c.inc(); });
    rec.ensureArmed();
    eq.run();
    rec.finish();

    Timeline tl;
    tl.adopt(rec);
    ASSERT_EQ(tl.windows(), 3u);
    EXPECT_EQ(tl.at("c", 0), 1.0);
    EXPECT_EQ(tl.at("c", 1), 0.0);
    EXPECT_EQ(tl.at("c", 2), 1.0);
}

TEST(TimelineRecorderT, GaugeSampledAtEachBoundary)
{
    sim::EventQueue eq;
    double v = 0.0;
    for (sim::Tick t = 0; t < 4; ++t)
        eq.schedule(t * kW + 100,
                    [&v, t] { v = static_cast<double>(10 * (t + 1)); });

    Recorder rec(eq, kW);
    rec.addGauge("g", [&v] { return v; }, "units");
    rec.start();
    eq.run();
    rec.finish();

    Timeline tl;
    tl.adopt(rec);
    ASSERT_EQ(tl.windows(), 4u);
    const auto &s = tl.series().at("g");
    EXPECT_EQ(s.values,
              (std::vector<double>{10.0, 20.0, 30.0, 40.0}));
}

TEST(TimelineRecorderT, QuantileWindowsWithNaNGaps)
{
    sim::EventQueue eq;
    sim::QuantileSketch q;
    // w0: tight latencies; w2: 10x worse; w1 has no samples at all.
    eq.schedule(200, [&] {
        q.add(100.0);
        q.add(110.0);
        q.add(120.0);
    });
    eq.schedule(2300, [&] {
        q.add(1000.0);
        q.add(1100.0);
    });

    Recorder rec(eq, kW);
    rec.addSketch("lat", q, "Ns", "ns");
    rec.start();
    eq.run();
    rec.finish();

    Timeline tl;
    tl.adopt(rec);
    ASSERT_EQ(tl.windows(), 3u);
    const auto &p99 = tl.series().at("latP99Ns");
    ASSERT_EQ(p99.values.size(), 3u);
    EXPECT_GT(p99.values[0], 100.0 * 0.9);
    EXPECT_LT(p99.values[0], 130.0);
    EXPECT_TRUE(std::isnan(p99.values[1]));
    // The window-2 quantiles must reflect only window-2 samples —
    // the sketch delta isolates them from the earlier fast ones.
    EXPECT_GT(p99.values[2], 900.0);
    const auto &p50 = tl.series().at("latP50Ns");
    EXPECT_GT(p50.values[2], 900.0);
}

// ----------------------------------------------------- sketch delta

TEST(QuantileSketchDeltaT, IsolatesNewSamples)
{
    sim::QuantileSketch q;
    for (int i = 0; i < 100; ++i)
        q.add(10.0);
    sim::QuantileSketch snap = q;
    for (int i = 0; i < 50; ++i)
        q.add(1000.0);

    sim::QuantileSketch d = q.delta(snap);
    EXPECT_EQ(d.count(), 50u);
    EXPECT_GT(d.quantile(0.50), 900.0);
    EXPECT_GT(d.min(), 500.0);
}

TEST(QuantileSketchDeltaT, EmptyDeltaHasNoSamples)
{
    sim::QuantileSketch q;
    q.add(5.0);
    sim::QuantileSketch snap = q;
    sim::QuantileSketch d = q.delta(snap);
    EXPECT_EQ(d.count(), 0u);
}

// --------------------------------------------------------- watchdog

namespace {

/** Run a gauge through @p perWindow values, one window each. */
std::vector<sim::timeline::SloResult>
runGaugeRule(const std::vector<double> &perWindow, SloRule rule)
{
    sim::EventQueue eq;
    double v = 0.0;
    for (std::size_t w = 0; w < perWindow.size(); ++w) {
        double val = perWindow[w];
        eq.schedule(static_cast<sim::Tick>(w) * kW + 100,
                    [&v, val] { v = val; });
    }
    Recorder rec(eq, kW);
    rec.addGauge("g", [&v] { return v; }, "units");
    rule.metric = "g";
    rec.addRule(rule);
    rec.start();
    eq.run();
    rec.finish();
    return rec.sloResults();
}

} // namespace

TEST(TimelineSloT, TripAndWorstValue)
{
    SloRule rule;
    rule.name = "tail";
    rule.op = SloRule::Op::Gt;
    rule.threshold = 10.0;
    auto res = runGaugeRule({5, 20, 25, 5}, rule);
    ASSERT_EQ(res.size(), 1u);
    EXPECT_EQ(res[0].evaluated, 4u);
    EXPECT_EQ(res[0].violations, 2u);
    EXPECT_EQ(res[0].worstValue, 25.0);
    EXPECT_EQ(res[0].firstViolationTick, 1 * kW);
}

TEST(TimelineSloT, NoTripBelowThreshold)
{
    SloRule rule;
    rule.name = "tail";
    rule.op = SloRule::Op::Gt;
    rule.threshold = 100.0;
    auto res = runGaugeRule({5, 20, 25, 5}, rule);
    ASSERT_EQ(res.size(), 1u);
    EXPECT_EQ(res[0].violations, 0u);
    EXPECT_EQ(res[0].firstViolationTick, sim::maxTick);
    // Worst value is tracked even when nothing trips — it is the
    // baselined headroom signal.
    EXPECT_EQ(res[0].worstValue, 25.0);
}

TEST(TimelineSloT, ForWindowsHysteresis)
{
    SloRule rule;
    rule.name = "tail";
    rule.op = SloRule::Op::Gt;
    rule.threshold = 10.0;
    rule.forWindows = 2;

    // Alternating bad/good never sustains a 2-window streak.
    auto flappy = runGaugeRule({20, 5, 20, 5, 20}, rule);
    EXPECT_EQ(flappy[0].violations, 0u);

    // Three consecutive bad windows: the streak reaches 2 on the
    // second, so windows 2 and 3 count.
    auto sustained = runGaugeRule({5, 20, 20, 20, 5}, rule);
    EXPECT_EQ(sustained[0].violations, 2u);
    EXPECT_EQ(sustained[0].firstViolationTick, 2 * kW);
}

TEST(TimelineSloT, LowerBoundOps)
{
    // Lt-style rule: throughput floor.
    SloRule rule;
    rule.name = "floor";
    rule.op = SloRule::Op::Lt;
    rule.threshold = 10.0;
    auto res = runGaugeRule({15, 4, 15}, rule);
    EXPECT_EQ(res[0].violations, 1u);
    EXPECT_EQ(res[0].worstValue, 4.0); // worst = min for Lt
}

TEST(TimelineSloT, FromUntilRestrictsEvaluation)
{
    SloRule rule;
    rule.name = "tail";
    rule.op = SloRule::Op::Gt;
    rule.threshold = 10.0;
    rule.from = 2 * kW;
    rule.until = 4 * kW;
    // Bad everywhere, but only windows 2 and 3 are in range.
    auto res = runGaugeRule({20, 20, 20, 20, 20}, rule);
    EXPECT_EQ(res[0].evaluated, 2u);
    EXPECT_EQ(res[0].violations, 2u);
    EXPECT_EQ(res[0].firstViolationTick, 2 * kW);
}

TEST(TimelineSloT, StreakResetsAcrossRangeBoundary)
{
    // forWindows 2 with only the last bad window in range: the
    // streak must not carry over from out-of-range windows.
    SloRule rule;
    rule.name = "tail";
    rule.op = SloRule::Op::Gt;
    rule.threshold = 10.0;
    rule.forWindows = 2;
    rule.from = 3 * kW;
    auto res = runGaugeRule({20, 20, 20, 20}, rule);
    EXPECT_EQ(res[0].evaluated, 1u);
    EXPECT_EQ(res[0].violations, 0u);
}

// ---------------------------------------------------- merge / export

TEST(TimelineMergeT, DeltaSeriesSumAcrossRecorders)
{
    sim::EventQueue eqA, eqB;
    sim::Counter a, b;
    eqA.schedule(100, [&] { a.inc(3); });
    eqB.schedule(100, [&] { b.inc(4); });
    eqB.schedule(1100, [&] { b.inc(1); });

    Recorder ra(eqA, kW), rb(eqB, kW);
    ra.addCounter("x.ops", a, "ops");
    rb.addCounter("x.ops", b, "ops");
    ra.start();
    rb.start();
    eqA.run();
    eqB.run();
    ra.finish();
    rb.finish();

    Timeline tl;
    tl.adopt(ra);
    tl.adopt(rb);
    ASSERT_EQ(tl.windows(), 2u);
    EXPECT_EQ(tl.at("x.ops", 0), 7.0); // 3 + 4, summed window-wise
    EXPECT_EQ(tl.at("x.ops", 1), 1.0); // short series zero-padded
}

TEST(TimelineMergeT, PrefixNamespacesEverything)
{
    sim::EventQueue eq;
    sim::Counter c;
    eq.schedule(100, [&] { c.inc(); });
    Recorder rec(eq, kW);
    rec.addCounter("ops", c, "ops");
    rec.noteFault("dramStall:x", 50, 500);
    rec.start();
    eq.run();
    rec.finish();

    Timeline tl;
    tl.adopt(rec, "p0.");
    EXPECT_TRUE(tl.series().count("p0.ops"));
    EXPECT_FALSE(tl.series().count("ops"));
    ASSERT_EQ(tl.faults().size(), 1u);
    EXPECT_EQ(tl.faults()[0].label, "p0.dramStall:x");
}

TEST(TimelineMergeT, PaddingByKind)
{
    // Recorder A runs 3 windows; recorder B only 1. Past B's
    // horizon: deltas read 0, gauges hold, quantiles are NaN.
    sim::EventQueue eqA, eqB;
    sim::Counter a, b;
    sim::QuantileSketch q;
    eqA.schedule(2100, [&] { a.inc(); });
    eqB.schedule(100, [&] {
        b.inc();
        q.add(42.0);
    });

    Recorder ra(eqA, kW), rb(eqB, kW);
    ra.addCounter("a", a, "ops");
    rb.addCounter("b", b, "ops");
    rb.addGauge("g", [] { return 7.0; }, "units");
    rb.addSketch("q", q, "Ns", "ns");
    ra.start();
    rb.start();
    eqA.run();
    eqB.run();
    ra.finish();
    rb.finish();

    Timeline tl;
    tl.adopt(ra);
    tl.adopt(rb);
    ASSERT_EQ(tl.windows(), 3u);
    EXPECT_EQ(tl.at("b", 2), 0.0);
    EXPECT_EQ(tl.at("g", 2), 7.0);
    EXPECT_TRUE(std::isnan(tl.at("qP99Ns", 2)));
}

TEST(TimelineOpsT, OpNamesRoundTrip)
{
    using Op = SloRule::Op;
    for (Op op : {Op::Gt, Op::Lt, Op::Ge, Op::Le}) {
        Op back;
        ASSERT_TRUE(
            sim::timeline::parseOp(sim::timeline::opName(op), back));
        EXPECT_EQ(back, op);
    }
    SloRule::Op out;
    EXPECT_FALSE(sim::timeline::parseOp("!=", out));
    EXPECT_FALSE(sim::timeline::parseOp("", out));
}
