/**
 * @file
 * Unit tests for the memory substrate: transactions, backing store,
 * DRAM model and cache model.
 */

#include <gtest/gtest.h>

#include "mem/backing_store.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/transaction.hh"

using namespace tf;
using namespace tf::mem;

TEST(Txn, MakeTxnAssignsUniqueIds)
{
    auto a = makeTxn(TxnType::ReadReq, 0x1000);
    auto b = makeTxn(TxnType::WriteReq, 0x2000);
    EXPECT_NE(a->id, b->id);
    EXPECT_EQ(a->size, cachelineBytes);
    EXPECT_EQ(a->origAddr, 0x1000u);
}

TEST(Txn, ResponseFlip)
{
    auto txn = makeTxn(TxnType::ReadReq, 0x80);
    txn->makeResponse();
    EXPECT_EQ(txn->type, TxnType::ReadResp);
    EXPECT_TRUE(txn->isRead());
    EXPECT_FALSE(isRequest(txn->type));
}

TEST(Txn, CompleteFiresOnce)
{
    auto txn = makeTxn(TxnType::WriteReq, 0x80);
    int fired = 0;
    txn->onComplete = [&](MemTxn &) { ++fired; };
    txn->complete();
    txn->complete();
    EXPECT_EQ(fired, 1);
}

TEST(Txn, FlitCounts)
{
    // 32B flits: header + 4 data flits for 128B payloads.
    auto rd = makeTxn(TxnType::ReadReq, 0);
    EXPECT_EQ(flitCount(*rd), 1u);
    rd->makeResponse();
    EXPECT_EQ(flitCount(*rd), 5u);

    auto wr = makeTxn(TxnType::WriteReq, 0);
    EXPECT_EQ(flitCount(*wr), 5u);
    wr->makeResponse();
    EXPECT_EQ(flitCount(*wr), 1u);
}

TEST(Addr, Alignment)
{
    EXPECT_EQ(alignDown(0x1234, 0x100), 0x1200u);
    EXPECT_EQ(alignUp(0x1234, 0x100), 0x1300u);
    EXPECT_EQ(alignUp(0x1200, 0x100), 0x1200u);
    EXPECT_TRUE(isAligned(0x1200, 0x100));
    EXPECT_FALSE(isAligned(0x1201, 0x100));
}

TEST(BackingStore, ReadBackWritten)
{
    BackingStore store;
    store.write64(0x1000, 0xdeadbeefcafef00dULL);
    EXPECT_EQ(store.read64(0x1000), 0xdeadbeefcafef00dULL);
}

TEST(BackingStore, ZeroFilledByDefault)
{
    BackingStore store;
    EXPECT_EQ(store.read64(0x123456), 0u);
}

TEST(BackingStore, CrossPageAccess)
{
    BackingStore store;
    std::vector<std::uint8_t> out(256), in(256);
    for (std::size_t i = 0; i < in.size(); ++i)
        in[i] = static_cast<std::uint8_t>(i);
    Addr addr = pageBytes - 100; // straddles a page boundary
    store.write(addr, in.data(), in.size());
    store.read(addr, out.data(), out.size());
    EXPECT_EQ(in, out);
    EXPECT_EQ(store.touchedPages(), 2u);
}

namespace {

struct DramFixture : ::testing::Test
{
    sim::EventQueue eq;
    BackingStore store;
    DramParams params;
    std::unique_ptr<Dram> dram;

    void
    SetUp() override
    {
        params.accessLatency = sim::nanoseconds(90);
        params.bandwidthBps = 128e9; // 1 ns per 128B line
        dram = std::make_unique<Dram>("dram", eq, params, &store);
    }
};

} // namespace

TEST_F(DramFixture, SingleAccessLatency)
{
    auto txn = makeTxn(TxnType::ReadReq, 0x1000);
    sim::Tick done_at = 0;
    dram->access(txn, [&](TxnPtr t) {
        done_at = eq.now();
        EXPECT_EQ(t->type, TxnType::ReadResp);
        EXPECT_EQ(t->data.size(), cachelineBytes);
    });
    eq.run();
    // 1 ns serialization + 90 ns access.
    EXPECT_EQ(done_at, sim::nanoseconds(91));
}

TEST_F(DramFixture, BandwidthSerialisesBackToBack)
{
    // Channel-cursor model (banks = 1): 100 simultaneous reads,
    // completions spaced by the 1 ns serialization delay of a 128B
    // line at 128 GB/s.
    params.banks = 1;
    dram = std::make_unique<Dram>("dram", eq, params, &store);
    std::vector<sim::Tick> completions;
    for (int i = 0; i < 100; ++i) {
        auto txn = makeTxn(TxnType::ReadReq,
                           static_cast<Addr>(i) * cachelineBytes);
        dram->access(txn,
                     [&](TxnPtr) { completions.push_back(eq.now()); });
    }
    eq.run();
    ASSERT_EQ(completions.size(), 100u);
    EXPECT_EQ(completions.front(), sim::nanoseconds(91));
    EXPECT_EQ(completions.back(), sim::nanoseconds(190));
    for (std::size_t i = 1; i < completions.size(); ++i)
        EXPECT_EQ(completions[i] - completions[i - 1],
                  sim::nanoseconds(1));
}

TEST_F(DramFixture, BankedSameStripeNeighborWaitsRowCycle)
{
    // Addresses 0 and 128 share one 256B stripe: same bank, same
    // row. The first access activates the row (bank busy for the
    // 45 ns row cycle); the neighbor is a row hit but can only
    // dispatch once the bank frees: 45 + 1 ns transfer + 90 ns.
    std::vector<sim::Tick> completions;
    for (Addr a : {Addr{0}, Addr{128}}) {
        dram->access(makeTxn(TxnType::ReadReq, a),
                     [&](TxnPtr) { completions.push_back(eq.now()); });
    }
    eq.run();
    ASSERT_EQ(completions.size(), 2u);
    EXPECT_EQ(completions[0], sim::nanoseconds(91));
    EXPECT_EQ(completions[1], sim::nanoseconds(136));
    EXPECT_EQ(dram->rowMisses(), 1u);
    EXPECT_EQ(dram->rowHits(), 1u);
}

TEST_F(DramFixture, BankedIndependentBanksPipelineAtChannelRate)
{
    // One access per bank: every row activation proceeds in parallel,
    // so completions are spaced by the channel serialization alone —
    // identical to the legacy single-cursor model.
    std::vector<sim::Tick> completions;
    for (int i = 0; i < 4; ++i) {
        dram->access(makeTxn(TxnType::ReadReq,
                             static_cast<Addr>(i) * 256),
                     [&](TxnPtr) { completions.push_back(eq.now()); });
    }
    eq.run();
    ASSERT_EQ(completions.size(), 4u);
    for (std::size_t i = 0; i < completions.size(); ++i)
        EXPECT_EQ(completions[i],
                  sim::nanoseconds(91 + static_cast<std::uint64_t>(i)));
    EXPECT_EQ(dram->rowMisses(), 4u);
    EXPECT_EQ(dram->reorders(), 0u);
}

TEST_F(DramFixture, FrFcfsDispatchesAroundBusyBank)
{
    // A1 occupies bank 0 with a row activation; A2 also wants bank 0
    // (a different row, 4 KiB * 16 banks away is irrelevant — 4096 is
    // stripe 16, bank 0, row 1) while A3 wants idle bank 1. FR-FCFS
    // sends A3 ahead of the older A2 instead of convoying the channel
    // behind the busy bank.
    std::vector<int> order;
    auto issue = [&](int id, Addr a) {
        dram->access(makeTxn(TxnType::ReadReq, a),
                     [&order, id](TxnPtr) { order.push_back(id); });
    };
    issue(1, 0);
    issue(2, 4096);
    issue(3, 256);
    eq.run();
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
    EXPECT_EQ(dram->reorders(), 1u);
}

TEST_F(DramFixture, StallFreezesAllBankCursorsAndEstimate)
{
    // A service stall must freeze every bank cursor, not just the
    // channel cursor: accesses to *different* banks both wait out
    // the stall, and estimatedLatency reflects it immediately
    // (fault_soak's bounded-recovery estimate depends on this).
    const sim::Tick stall = sim::microseconds(10);
    dram->stall(stall);
    EXPECT_GE(dram->estimatedLatency(cachelineBytes),
              stall + sim::nanoseconds(90));

    std::vector<sim::Tick> completions;
    for (Addr a : {Addr{0}, Addr{256}}) { // banks 0 and 1
        dram->access(makeTxn(TxnType::ReadReq, a),
                     [&](TxnPtr) { completions.push_back(eq.now()); });
    }
    eq.run();
    ASSERT_EQ(completions.size(), 2u);
    EXPECT_EQ(completions[0], stall + sim::nanoseconds(91));
    EXPECT_EQ(completions[1], stall + sim::nanoseconds(92));
}

TEST_F(DramFixture, PerBankTelemetryTracksDispatchAndOccupancy)
{
    // Three bank-0 accesses (miss, same-row hit, other-row miss) and
    // one to an independent bank: the per-bank counters must
    // attribute the work to the right bank. The first access
    // dispatches straight off the idle channel, so the two held back
    // behind the busy bank are the two-deep backlog high-water.
    for (Addr a : {Addr{0}, Addr{128}, Addr{65536}, Addr{256}}) {
        dram->access(makeTxn(TxnType::ReadReq, a), [](TxnPtr) {});
    }
    eq.run();

    const auto &b0 = dram->bankStats(0);
    EXPECT_EQ(b0.dispatches.value(), 3u);
    EXPECT_EQ(b0.rowMisses.value(), 2u);
    EXPECT_EQ(b0.rowHits.value(), 1u);
    // Misses pay the 45 ns row cycle, the hit only its 1 ns transfer.
    EXPECT_EQ(b0.busyNs.value(), 91u);
    EXPECT_EQ(b0.queueDepth.max(), 2.0);

    const auto &b1 = dram->bankStats(1);
    EXPECT_EQ(b1.dispatches.value(), 1u);
    EXPECT_EQ(b1.rowMisses.value(), 1u);
    EXPECT_EQ(b1.rowHits.value(), 0u);
    EXPECT_EQ(b1.queueDepth.max(), 1.0);
}

TEST_F(DramFixture, BankedEstimateReflectsQueuedBacklog)
{
    // Queue a burst, then ask for the estimate: it must grow with the
    // undispatched backlog instead of reporting an idle channel.
    sim::Tick idle = dram->estimatedLatency(cachelineBytes);
    for (int i = 0; i < 64; ++i) {
        dram->access(makeTxn(TxnType::ReadReq,
                             static_cast<Addr>(i) * cachelineBytes),
                     [](TxnPtr) {});
    }
    EXPECT_GT(dram->estimatedLatency(cachelineBytes), idle);
    eq.run();
    EXPECT_EQ(dram->estimatedLatency(cachelineBytes), idle);
}

TEST_F(DramFixture, FunctionalWriteThenRead)
{
    auto wr = makeTxn(TxnType::WriteReq, 0x2000);
    wr->data.assign(cachelineBytes, 0xab);
    bool wrote = false;
    dram->access(wr, [&](TxnPtr) { wrote = true; });
    eq.run();
    ASSERT_TRUE(wrote);

    auto rd = makeTxn(TxnType::ReadReq, 0x2000);
    dram->access(rd, [&](TxnPtr t) {
        for (auto byte : t->data)
            EXPECT_EQ(byte, 0xab);
    });
    eq.run();
    EXPECT_EQ(dram->reads(), 1u);
    EXPECT_EQ(dram->writes(), 1u);
    EXPECT_EQ(dram->bytesMoved(), 2u * cachelineBytes);
}

TEST(CacheModel, HitAfterFill)
{
    Cache cache({1024 * 128, 8, 128});
    EXPECT_FALSE(cache.access(0x1000, false).hit);
    EXPECT_TRUE(cache.access(0x1000, false).hit);
    EXPECT_TRUE(cache.access(0x1040, false).hit); // same line
    EXPECT_FALSE(cache.access(0x1080, false).hit); // next line
}

TEST(CacheModel, LruEviction)
{
    // Direct calculation: 2 KiB cache, 2 ways, 128B lines -> 8 sets.
    Cache cache({2048, 2, 128});
    EXPECT_EQ(cache.sets(), 8u);
    // Three lines mapping to set 0: addresses 0, 8*128, 16*128.
    EXPECT_FALSE(cache.access(0, false).hit);
    EXPECT_FALSE(cache.access(8 * 128, false).hit);
    EXPECT_TRUE(cache.access(0, false).hit); // refresh line 0
    // Fill third line: evicts 8*128 (LRU), not 0.
    EXPECT_FALSE(cache.access(16 * 128, false).hit);
    EXPECT_TRUE(cache.access(0, false).hit);
    EXPECT_FALSE(cache.access(8 * 128, false).hit);
}

TEST(CacheModel, DirtyEvictionReportsWriteback)
{
    Cache cache({2048, 2, 128});
    cache.access(0, true); // dirty line in set 0
    cache.access(8 * 128, false);
    auto res = cache.access(16 * 128, false); // evicts dirty line 0
    EXPECT_TRUE(res.writeback);
    EXPECT_EQ(res.victimAddr, 0u);
    EXPECT_EQ(cache.writebacks(), 1u);
}

TEST(CacheModel, StreamingDefeatsCache)
{
    Cache cache({1024 * 1024, 8, 128});
    // One pass over 16 MiB: every access a miss.
    for (Addr a = 0; a < 16 * 1024 * 1024; a += 128)
        cache.access(a, false);
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_DOUBLE_EQ(cache.hitRatio(), 0.0);
}

TEST(CacheModel, HotSetStaysResident)
{
    Cache cache({1024 * 1024, 8, 128});
    // Working set: 256 KiB, fits. First pass misses, then all hits.
    for (int pass = 0; pass < 4; ++pass)
        for (Addr a = 0; a < 256 * 1024; a += 128)
            cache.access(a, false);
    EXPECT_EQ(cache.misses(), 2048u);
    EXPECT_EQ(cache.hits(), 3u * 2048u);
    cache.flush();
    EXPECT_FALSE(cache.access(0, false).hit);
}
