/**
 * @file
 * LLC protocol tests: framing/padding, credit backpressure, in-order
 * delivery, and go-back-N replay under injected frame loss/corruption.
 */

#include <gtest/gtest.h>

#include <vector>

#include "tflow/llc.hh"

using namespace tf;
using namespace tf::flow;
using tf::mem::TxnPtr;
using tf::mem::TxnType;

namespace {

struct LlcFixture : ::testing::Test
{
    sim::EventQueue eq;
    sim::Rng rng{99};
    FlowParams params;
    std::unique_ptr<LlcChannel> ch;
    std::vector<std::uint64_t> deliveredIds;

    void
    build()
    {
        ch = std::make_unique<LlcChannel>("ch", eq, params, rng);
        ch->rxB().connectSink([this](TxnPtr txn) {
            deliveredIds.push_back(txn->id);
        });
        ch->rxA().connectSink([](TxnPtr) {});
    }

    std::vector<std::uint64_t>
    sendTxns(int n, TxnType type = TxnType::WriteReq)
    {
        std::vector<std::uint64_t> ids;
        for (int i = 0; i < n; ++i) {
            auto txn = mem::makeTxn(type,
                                    static_cast<mem::Addr>(i) * 128);
            ids.push_back(txn->id);
            ch->txA().enqueue(std::move(txn));
        }
        return ids;
    }
};

} // namespace

TEST_F(LlcFixture, DeliversSingleTxn)
{
    build();
    auto ids = sendTxns(1);
    eq.run();
    EXPECT_EQ(deliveredIds, ids);
    // One frame sent, padded: 16 flits - 5 used = 11 nops.
    EXPECT_EQ(ch->txA().framesSent(), 1u);
    EXPECT_EQ(ch->txA().padFlitsSent(), 11u);
}

TEST_F(LlcFixture, SameTickBurstPacksOneFrame)
{
    build();
    // Three write requests (5 flits each) -> 15 flits, one frame.
    auto ids = sendTxns(3);
    eq.run();
    EXPECT_EQ(deliveredIds, ids);
    EXPECT_EQ(ch->txA().framesSent(), 1u);
    EXPECT_EQ(ch->txA().padFlitsSent(), 1u);
}

TEST_F(LlcFixture, ReadRequestsPackDensely)
{
    build();
    // 16 single-flit read requests fill exactly one frame.
    auto ids = sendTxns(16, TxnType::ReadReq);
    eq.run();
    EXPECT_EQ(deliveredIds, ids);
    EXPECT_EQ(ch->txA().framesSent(), 1u);
    EXPECT_EQ(ch->txA().padFlitsSent(), 0u);
}

TEST_F(LlcFixture, InOrderDeliveryLargeStream)
{
    build();
    auto ids = sendTxns(2000);
    eq.run();
    EXPECT_EQ(deliveredIds, ids);
    EXPECT_EQ(ch->rxB().gapsDetected(), 0u);
}

TEST_F(LlcFixture, CreditsNeverExceedInitial)
{
    build();
    sendTxns(500);
    while (!eq.empty()) {
        eq.runEvents(1);
        EXPECT_LE(ch->txA().credits(), params.rxQueueFrames);
    }
}

TEST_F(LlcFixture, CreditsFullyRestoredAfterDrain)
{
    build();
    sendTxns(300);
    eq.run();
    EXPECT_EQ(ch->txA().credits(), params.rxQueueFrames);
    EXPECT_EQ(ch->txA().replayBufDepth(), 0u); // all acked
}

TEST_F(LlcFixture, TinyCreditWindowStillDelivers)
{
    params.rxQueueFrames = 2;
    build();
    auto ids = sendTxns(400);
    eq.run();
    EXPECT_EQ(deliveredIds, ids);
    EXPECT_GT(ch->txA().creditStalls(), 0u);
}

TEST_F(LlcFixture, BackloggedQueuePacksWithoutPadding)
{
    params.rxQueueFrames = 4; // throttle so the queue backs up
    build();
    sendTxns(160, TxnType::ReadReq); // 10 full frames worth
    eq.run();
    ASSERT_EQ(deliveredIds.size(), 160u);
    // Everything after the first (immediately-sent, padded) frame
    // should pack densely: padding well under one frame's worth.
    EXPECT_LE(ch->txA().padFlitsSent(), 2u * params.frameFlits);
}

TEST_F(LlcFixture, ReplayRecoversFromLoss)
{
    params.frameErrorRate = 0.05;
    build();
    auto ids = sendTxns(3000);
    eq.run();
    EXPECT_EQ(deliveredIds, ids);
    EXPECT_GT(ch->txA().replayedFrames(), 0u);
}

TEST_F(LlcFixture, HeavyLossStillInOrder)
{
    params.frameErrorRate = 0.3;
    params.ackTimeout = sim::microseconds(5);
    build();
    auto ids = sendTxns(1000);
    eq.run();
    EXPECT_EQ(deliveredIds, ids);
}

TEST_F(LlcFixture, BidirectionalTrafficIndependent)
{
    build();
    std::vector<std::uint64_t> reverseIds;
    ch->rxA().connectSink(
        [&](TxnPtr txn) { reverseIds.push_back(txn->id); });
    auto fwd = sendTxns(100);
    std::vector<std::uint64_t> sent_back;
    for (int i = 0; i < 100; ++i) {
        auto txn = mem::makeTxn(TxnType::ReadResp,
                                static_cast<mem::Addr>(i) * 128);
        txn->data.assign(128, 1);
        sent_back.push_back(txn->id);
        ch->txB().enqueue(std::move(txn));
    }
    eq.run();
    EXPECT_EQ(deliveredIds, fwd);
    EXPECT_EQ(reverseIds, sent_back);
}

TEST_F(LlcFixture, WireUtilisationBounded)
{
    build();
    sendTxns(5000);
    eq.run();
    EXPECT_LE(ch->wireAB().utilisation(), 1.0);
    EXPECT_GT(ch->wireAB().utilisation(), 0.1);
}

TEST_F(LlcFixture, PayloadIntegrityThroughChannel)
{
    build();
    std::vector<std::uint8_t> got;
    ch->rxB().connectSink(
        [&](TxnPtr txn) { got = txn->data; });
    auto txn = mem::makeTxn(TxnType::WriteReq, 0x1000);
    txn->data.resize(128);
    for (int i = 0; i < 128; ++i)
        txn->data[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(i * 3);
    auto expect = txn->data;
    ch->txA().enqueue(std::move(txn));
    eq.run();
    EXPECT_EQ(got, expect);
}

// ------------------------------------------------------------------
// Property sweep: for any loss rate and credit window, every
// transaction is delivered exactly once and in order.
// ------------------------------------------------------------------

struct LlcPropertyParams
{
    double errorRate;
    std::uint32_t credits;
};

class LlcProperty : public ::testing::TestWithParam<LlcPropertyParams>
{
};

TEST_P(LlcProperty, ExactlyOnceInOrder)
{
    sim::EventQueue eq;
    sim::Rng rng{1234};
    FlowParams params;
    params.frameErrorRate = GetParam().errorRate;
    params.rxQueueFrames = GetParam().credits;
    params.ackTimeout = sim::microseconds(5);

    LlcChannel ch("ch", eq, params, rng);
    std::vector<std::uint64_t> delivered;
    ch.rxB().connectSink(
        [&](TxnPtr txn) { delivered.push_back(txn->id); });
    ch.rxA().connectSink([](TxnPtr) {});

    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 800; ++i) {
        auto txn = mem::makeTxn(i % 3 == 0 ? TxnType::ReadReq
                                           : TxnType::WriteReq,
                                static_cast<mem::Addr>(i) * 128);
        ids.push_back(txn->id);
        ch.txA().enqueue(std::move(txn));
    }
    eq.run();
    EXPECT_EQ(delivered, ids);
}

INSTANTIATE_TEST_SUITE_P(
    LossAndCredits, LlcProperty,
    ::testing::Values(LlcPropertyParams{0.0, 64},
                      LlcPropertyParams{0.01, 64},
                      LlcPropertyParams{0.05, 64},
                      LlcPropertyParams{0.15, 64},
                      LlcPropertyParams{0.05, 4},
                      LlcPropertyParams{0.05, 2},
                      LlcPropertyParams{0.15, 2},
                      LlcPropertyParams{0.3, 8}));
