/**
 * @file
 * LLC protocol tests: framing/padding, credit backpressure, in-order
 * delivery, and go-back-N replay under injected frame loss/corruption.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "tflow/llc.hh"

using namespace tf;
using namespace tf::flow;
using tf::mem::TxnPtr;
using tf::mem::TxnType;

namespace {

struct LlcFixture : ::testing::Test
{
    sim::EventQueue eq;
    sim::Rng rng{99};
    FlowParams params;
    std::unique_ptr<LlcChannel> ch;
    std::vector<std::uint64_t> deliveredIds;

    void
    build()
    {
        ch = std::make_unique<LlcChannel>("ch", eq, params, rng);
        ch->rxB().connectSink([this](TxnPtr txn) {
            deliveredIds.push_back(txn->id);
        });
        ch->rxA().connectSink([](TxnPtr) {});
    }

    std::vector<std::uint64_t>
    sendTxns(int n, TxnType type = TxnType::WriteReq)
    {
        std::vector<std::uint64_t> ids;
        for (int i = 0; i < n; ++i) {
            auto txn = mem::makeTxn(type,
                                    static_cast<mem::Addr>(i) * 128);
            ids.push_back(txn->id);
            ch->txA().enqueue(std::move(txn));
        }
        return ids;
    }
};

} // namespace

TEST_F(LlcFixture, DeliversSingleTxn)
{
    // Store-and-forward framing (the paper's fixed-size frames).
    params.cutThrough = false;
    params.frameFlits = 16;
    build();
    auto ids = sendTxns(1);
    eq.run();
    EXPECT_EQ(deliveredIds, ids);
    // One frame sent, padded: 16 flits - 5 used = 11 nops.
    EXPECT_EQ(ch->txA().framesSent(), 1u);
    EXPECT_EQ(ch->txA().padFlitsSent(), 11u);
}

TEST_F(LlcFixture, SameTickBurstPacksOneFrame)
{
    params.cutThrough = false;
    params.frameFlits = 16;
    build();
    // Three write requests (5 flits each) -> 15 flits, one frame.
    auto ids = sendTxns(3);
    eq.run();
    EXPECT_EQ(deliveredIds, ids);
    EXPECT_EQ(ch->txA().framesSent(), 1u);
    EXPECT_EQ(ch->txA().padFlitsSent(), 1u);
}

TEST_F(LlcFixture, ReadRequestsPackDensely)
{
    params.cutThrough = false;
    params.frameFlits = 16;
    build();
    // 16 single-flit read requests fill exactly one frame.
    auto ids = sendTxns(16, TxnType::ReadReq);
    eq.run();
    EXPECT_EQ(deliveredIds, ids);
    EXPECT_EQ(ch->txA().framesSent(), 1u);
    EXPECT_EQ(ch->txA().padFlitsSent(), 0u);
}

TEST_F(LlcFixture, CutThroughNeverPads)
{
    // Cut-through frames carry only occupied flits: no nop padding,
    // and data-bearing transactions coalesce behind the shared
    // header flit (3 writes = 1 header + 3 x 4 data flits).
    build();
    auto ids = sendTxns(3);
    eq.run();
    EXPECT_EQ(deliveredIds, ids);
    EXPECT_EQ(ch->txA().framesSent(), 1u);
    EXPECT_EQ(ch->txA().padFlitsSent(), 0u);
    // Only the 13 occupied flits travel (control is latency-only).
    EXPECT_EQ(ch->wireAB().wireBytes(), 13u * params.flitBytes);
}

TEST_F(LlcFixture, CutThroughBeatsStoreAndForwardLatency)
{
    // One write, identical params except the framing mode:
    // cut-through must deliver strictly earlier (header-time
    // hand-off, no pad flits serialised ahead of the payload).
    auto deliveryTime = [](bool cutThrough) {
        sim::EventQueue eq2;
        sim::Rng rng2{99};
        FlowParams p2;
        p2.cutThrough = cutThrough;
        p2.frameFlits = 16;
        LlcChannel ch2("ch2", eq2, p2, rng2);
        sim::Tick delivered = 0;
        ch2.rxB().connectSink([&](TxnPtr) { delivered = eq2.now(); });
        ch2.rxA().connectSink([](TxnPtr) {});
        ch2.txA().enqueue(mem::makeTxn(TxnType::WriteReq, 0));
        eq2.run();
        return delivered;
    };
    sim::Tick ct = deliveryTime(true);
    sim::Tick sf = deliveryTime(false);
    EXPECT_GT(ct, 0u);
    EXPECT_LT(ct, sf);
}

TEST_F(LlcFixture, InOrderDeliveryLargeStream)
{
    build();
    auto ids = sendTxns(2000);
    eq.run();
    EXPECT_EQ(deliveredIds, ids);
    EXPECT_EQ(ch->rxB().gapsDetected(), 0u);
}

TEST_F(LlcFixture, CreditsNeverExceedInitial)
{
    build();
    sendTxns(500);
    while (!eq.empty()) {
        eq.runEvents(1);
        EXPECT_LE(ch->txA().credits(), params.rxQueueFrames);
    }
}

TEST_F(LlcFixture, CreditsFullyRestoredAfterDrain)
{
    build();
    sendTxns(300);
    eq.run();
    EXPECT_EQ(ch->txA().credits(), params.rxQueueFrames);
    EXPECT_EQ(ch->txA().replayBufDepth(), 0u); // all acked
}

TEST_F(LlcFixture, TinyCreditWindowStillDelivers)
{
    params.rxQueueFrames = 2;
    build();
    auto ids = sendTxns(400);
    eq.run();
    EXPECT_EQ(deliveredIds, ids);
    EXPECT_GT(ch->txA().creditStalls(), 0u);
}

TEST_F(LlcFixture, BackloggedQueuePacksWithoutPadding)
{
    params.rxQueueFrames = 4; // throttle so the queue backs up
    build();
    sendTxns(160, TxnType::ReadReq); // 10 full frames worth
    eq.run();
    ASSERT_EQ(deliveredIds.size(), 160u);
    // Everything after the first (immediately-sent, padded) frame
    // should pack densely: padding well under one frame's worth.
    EXPECT_LE(ch->txA().padFlitsSent(), 2u * params.frameFlits);
}

TEST_F(LlcFixture, ReplayRecoversFromLoss)
{
    // Store-and-forward keeps strict in-order delivery under loss.
    params.cutThrough = false;
    params.frameFlits = 16;
    params.frameErrorRate = 0.05;
    build();
    auto ids = sendTxns(3000);
    eq.run();
    EXPECT_EQ(deliveredIds, ids);
    EXPECT_GT(ch->txA().replayedFrames(), 0u);
}

TEST_F(LlcFixture, HeavyLossStillInOrder)
{
    params.cutThrough = false;
    params.frameFlits = 16;
    params.frameErrorRate = 0.3;
    params.ackTimeout = sim::microseconds(5);
    build();
    auto ids = sendTxns(1000);
    eq.run();
    EXPECT_EQ(deliveredIds, ids);
}

TEST_F(LlcFixture, CutThroughLossyExactlyOnceAnyOrder)
{
    // Cut-through trades strict ordering for early release: under a
    // gap, intact younger frames complete immediately. Delivery must
    // stay exactly-once — every transaction arrives, none twice —
    // and the early-release path must actually engage.
    params.frameErrorRate = 0.1;
    params.ackTimeout = sim::microseconds(5);
    build();
    auto ids = sendTxns(3000);
    eq.run();
    ASSERT_EQ(deliveredIds.size(), ids.size());
    auto sortedDelivered = deliveredIds;
    auto sortedIds = ids;
    std::sort(sortedDelivered.begin(), sortedDelivered.end());
    std::sort(sortedIds.begin(), sortedIds.end());
    EXPECT_EQ(sortedDelivered, sortedIds);
    EXPECT_GT(ch->rxB().earlyReleases(), 0u);
    EXPECT_GT(ch->txA().replayedFrames(), 0u);
}

TEST_F(LlcFixture, BidirectionalTrafficIndependent)
{
    build();
    std::vector<std::uint64_t> reverseIds;
    ch->rxA().connectSink(
        [&](TxnPtr txn) { reverseIds.push_back(txn->id); });
    auto fwd = sendTxns(100);
    std::vector<std::uint64_t> sent_back;
    for (int i = 0; i < 100; ++i) {
        auto txn = mem::makeTxn(TxnType::ReadResp,
                                static_cast<mem::Addr>(i) * 128);
        txn->data.assign(128, 1);
        sent_back.push_back(txn->id);
        ch->txB().enqueue(std::move(txn));
    }
    eq.run();
    EXPECT_EQ(deliveredIds, fwd);
    EXPECT_EQ(reverseIds, sent_back);
}

TEST_F(LlcFixture, WireUtilisationBounded)
{
    build();
    sendTxns(5000);
    eq.run();
    EXPECT_LE(ch->wireAB().utilisation(), 1.0);
    EXPECT_GT(ch->wireAB().utilisation(), 0.1);
}

TEST_F(LlcFixture, PayloadIntegrityThroughChannel)
{
    build();
    std::vector<std::uint8_t> got;
    ch->rxB().connectSink(
        [&](TxnPtr txn) { got = txn->data; });
    auto txn = mem::makeTxn(TxnType::WriteReq, 0x1000);
    txn->data.resize(128);
    for (int i = 0; i < 128; ++i)
        txn->data[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(i * 3);
    auto expect = txn->data;
    ch->txA().enqueue(std::move(txn));
    eq.run();
    EXPECT_EQ(got, expect);
}

// ------------------------------------------------------------------
// Property sweep: for any loss rate and credit window, every
// transaction is delivered exactly once and in order.
// ------------------------------------------------------------------

struct LlcPropertyParams
{
    double errorRate;
    std::uint32_t credits;
};

class LlcProperty : public ::testing::TestWithParam<LlcPropertyParams>
{
};

TEST_P(LlcProperty, ExactlyOnceInOrder)
{
    // Store-and-forward property: exactly once AND in order, for any
    // loss rate and credit window.
    sim::EventQueue eq;
    sim::Rng rng{1234};
    FlowParams params;
    params.cutThrough = false;
    params.frameFlits = 16;
    params.frameErrorRate = GetParam().errorRate;
    params.rxQueueFrames = GetParam().credits;
    params.ackTimeout = sim::microseconds(5);

    LlcChannel ch("ch", eq, params, rng);
    std::vector<std::uint64_t> delivered;
    ch.rxB().connectSink(
        [&](TxnPtr txn) { delivered.push_back(txn->id); });
    ch.rxA().connectSink([](TxnPtr) {});

    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 800; ++i) {
        auto txn = mem::makeTxn(i % 3 == 0 ? TxnType::ReadReq
                                           : TxnType::WriteReq,
                                static_cast<mem::Addr>(i) * 128);
        ids.push_back(txn->id);
        ch.txA().enqueue(std::move(txn));
    }
    eq.run();
    EXPECT_EQ(delivered, ids);
}

TEST_P(LlcProperty, CutThroughExactlyOnce)
{
    // Cut-through property: exactly once (any order — gaps release
    // intact younger frames early), for any loss rate and credit
    // window, with zero-loss runs additionally staying in order.
    sim::EventQueue eq;
    sim::Rng rng{1234};
    FlowParams params;
    params.frameErrorRate = GetParam().errorRate;
    params.rxQueueFrames = GetParam().credits;
    params.ackTimeout = sim::microseconds(5);

    LlcChannel ch("ch", eq, params, rng);
    std::vector<std::uint64_t> delivered;
    ch.rxB().connectSink(
        [&](TxnPtr txn) { delivered.push_back(txn->id); });
    ch.rxA().connectSink([](TxnPtr) {});

    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 800; ++i) {
        auto txn = mem::makeTxn(i % 3 == 0 ? TxnType::ReadReq
                                           : TxnType::WriteReq,
                                static_cast<mem::Addr>(i) * 128);
        ids.push_back(txn->id);
        ch.txA().enqueue(std::move(txn));
    }
    eq.run();
    if (GetParam().errorRate == 0.0) {
        EXPECT_EQ(delivered, ids);
    } else {
        auto sortedDelivered = delivered;
        auto sortedIds = ids;
        std::sort(sortedDelivered.begin(), sortedDelivered.end());
        std::sort(sortedIds.begin(), sortedIds.end());
        EXPECT_EQ(sortedDelivered, sortedIds);
    }
}

INSTANTIATE_TEST_SUITE_P(
    LossAndCredits, LlcProperty,
    ::testing::Values(LlcPropertyParams{0.0, 64},
                      LlcPropertyParams{0.01, 64},
                      LlcPropertyParams{0.05, 64},
                      LlcPropertyParams{0.15, 64},
                      LlcPropertyParams{0.05, 4},
                      LlcPropertyParams{0.05, 2},
                      LlcPropertyParams{0.15, 2},
                      LlcPropertyParams{0.3, 8}));

// ------------------------------------------------------------------
// Replay-stall regression: a replay that runs out of credits must
// resume when the next credit refund arrives, not wait for the ack
// timeout. The test drives a bare Wire + LlcTx with hand-crafted
// control messages and a bounded run that never reaches the (huge)
// ack timeout, so the old behaviour fails it.
// ------------------------------------------------------------------

TEST(LlcReplayStall, ResumesOnCreditRefundNotTimeout)
{
    sim::EventQueue eq;
    sim::Rng rng{7};
    FlowParams params;
    params.rxQueueFrames = 2;
    params.ackTimeout = sim::seconds(1); // must never be the rescuer

    Wire wire("wire", eq, params, rng);
    LlcTx tx("tx", eq, params, wire);
    std::vector<FramePtr> arrived;
    wire.connect([&](FramePtr f) { arrived.push_back(std::move(f)); },
                 [](ControlMsg) {});

    // Three frames: send two (credits 2 -> 0), queue the third.
    sim::Tick step = sim::microseconds(1);
    for (int i = 0; i < 3; ++i) {
        eq.run(static_cast<sim::Tick>(i + 1) * step);
        tx.enqueue(mem::makeTxn(TxnType::ReadReq,
                                static_cast<mem::Addr>(i) * 128));
    }
    eq.run(4 * step);
    ASSERT_EQ(arrived.size(), 2u);
    ASSERT_EQ(tx.credits(), 0u);

    // One credit frees frame 2; all three now sit unacked.
    ControlMsg credit;
    credit.credits = 1;
    tx.onCtrl(credit);
    eq.run(5 * step);
    ASSERT_EQ(arrived.size(), 3u);
    ASSERT_EQ(tx.replayBufDepth(), 3u);

    // Rx asks for a full replay from 0. Credits only cover frames
    // 0 and 1 (refund caps at the window of 2): the replay stalls
    // before frame 2.
    ControlMsg replay;
    replay.replayRequest = true;
    replay.replayFrom = 0;
    tx.onCtrl(replay);
    eq.run(6 * step);
    std::size_t beforeRefund = arrived.size();
    ASSERT_EQ(beforeRefund, 5u); // 3 originals + replayed 0, 1

    // The next credit must resume the stalled replay immediately.
    tx.onCtrl(credit);
    eq.run(7 * step);

    bool replayedTail = false;
    for (std::size_t i = beforeRefund; i < arrived.size(); ++i)
        if (arrived[i]->seq == 2 && arrived[i]->replayed)
            replayedTail = true;
    EXPECT_TRUE(replayedTail)
        << "stalled replay frame was not resent on credit refund";
}

// ------------------------------------------------------------------
// Hard-failure escalation: a dead channel is detected after
// maxReplayRounds consecutive ack timeouts and raised through the
// health callback exactly once.
// ------------------------------------------------------------------

TEST_F(LlcFixture, DeadChannelEscalatesToLinkDown)
{
    params.maxReplayRounds = 3;
    params.ackTimeout = sim::microseconds(2);
    build();
    int healthCalls = 0;
    ch->txA().connectHealth([&]() { ++healthCalls; });

    sendTxns(50);
    // Kill the channel mid-stream, while frames are still queued.
    eq.schedule(sim::nanoseconds(300), [&]() { ch->fail(); });
    eq.run();

    EXPECT_TRUE(ch->txA().linkDown());
    EXPECT_EQ(healthCalls, 1);
    EXPECT_EQ(ch->txA().linkDownsDeclared(), 1u);
    EXPECT_GE(ch->txA().timeouts(), 3u);
    EXPECT_GT(ch->wireAB().framesLostDown() + ch->wireAB().framesDropped(),
              0u);
}

TEST_F(LlcFixture, EscalationDisabledReplaysForever)
{
    params.maxReplayRounds = 0; // paper baseline: transient-loss only
    params.ackTimeout = sim::microseconds(2);
    build();
    sendTxns(20);
    eq.schedule(sim::nanoseconds(200), [&]() { ch->fail(); });
    eq.run(sim::milliseconds(1));
    EXPECT_FALSE(ch->txA().linkDown());
    EXPECT_GT(ch->txA().timeouts(), 10u);

    // A flap heals without losing anything: sequence continuity makes
    // the outage look like ordinary loss to the replay protocol.
    ch->recover();
    eq.run();
    ASSERT_EQ(deliveredIds.size(), 20u);
}

TEST_F(LlcFixture, SalvageDrainsTxState)
{
    params.maxReplayRounds = 2;
    params.ackTimeout = sim::microseconds(2);
    params.rxQueueFrames = 4;
    build();
    sendTxns(200);
    eq.run(sim::microseconds(2));
    ch->fail();
    eq.run();
    ASSERT_TRUE(ch->txA().linkDown());

    auto salvaged = ch->txA().takeUndelivered();
    EXPECT_GT(salvaged.size(), 0u);
    EXPECT_EQ(ch->txA().queueDepth(), 0u);
    EXPECT_EQ(ch->txA().replayBufDepth(), 0u);
    for (const auto &txn : salvaged)
        EXPECT_NE(txn, nullptr);
}

// ------------------------------------------------------------------
// Soak sweep (robustness satellite): random seeds x combined drop +
// corrupt + tail loss + mid-stream channel flaps. Escalation is off,
// so sequence continuity must deliver every transaction exactly once
// and in order across the outages, and credits must stay conserved.
// ------------------------------------------------------------------

struct LlcSoakParams
{
    std::uint64_t seed;
    double errorRate;
    std::uint32_t credits;
};

class LlcSoak : public ::testing::TestWithParam<LlcSoakParams>
{
};

TEST_P(LlcSoak, FlapsAndLossExactlyOnceInOrder)
{
    sim::EventQueue eq;
    sim::Rng rng{GetParam().seed};
    FlowParams params;
    // Alternate framing modes across the sweep so the soak covers
    // both: odd seeds run cut-through (exactly-once, any order),
    // even seeds store-and-forward (exactly-once, in order).
    const bool cutThrough = GetParam().seed % 2 == 1;
    params.cutThrough = cutThrough;
    if (!cutThrough)
        params.frameFlits = 16;
    params.frameErrorRate = GetParam().errorRate;
    params.rxQueueFrames = GetParam().credits;
    params.ackTimeout = sim::microseconds(5);
    params.maxReplayRounds = 0; // pure-replay mode: flaps must heal

    LlcChannel ch("ch", eq, params, rng);
    std::vector<std::uint64_t> delivered;
    ch.rxB().connectSink(
        [&](TxnPtr txn) { delivered.push_back(txn->id); });
    ch.rxA().connectSink([](TxnPtr) {});

    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 1500; ++i) {
        auto txn = mem::makeTxn(i % 3 == 0 ? TxnType::ReadReq
                                           : TxnType::WriteReq,
                                static_cast<mem::Addr>(i) * 128);
        ids.push_back(txn->id);
        eq.schedule(static_cast<sim::Tick>(i) * sim::nanoseconds(50),
                    [&ch, t = std::move(txn)]() mutable {
                        ch.txA().enqueue(std::move(t));
                    });
    }
    // Two hard flaps in the middle of the stream.
    eq.schedule(sim::microseconds(30), [&]() { ch.fail(); });
    eq.schedule(sim::microseconds(45), [&]() { ch.recover(); });
    eq.schedule(sim::microseconds(60), [&]() { ch.fail(); });
    eq.schedule(sim::microseconds(70), [&]() { ch.recover(); });

    // Credit conservation, sampled while the storm runs.
    for (int us = 10; us <= 90; us += 10) {
        eq.schedule(sim::microseconds(static_cast<std::uint64_t>(us)),
                    [&]() {
                        EXPECT_LE(ch.txA().credits(),
                                  params.rxQueueFrames);
                    });
    }

    eq.run();
    if (cutThrough) {
        auto sortedDelivered = delivered;
        auto sortedIds = ids;
        std::sort(sortedDelivered.begin(), sortedDelivered.end());
        std::sort(sortedIds.begin(), sortedIds.end());
        EXPECT_EQ(sortedDelivered, sortedIds);
    } else {
        EXPECT_EQ(delivered, ids);
    }
    EXPECT_FALSE(ch.txA().linkDown());
    EXPECT_EQ(ch.txA().queueDepth(), 0u);
    EXPECT_EQ(ch.txA().replayBufDepth(), 0u);
    EXPECT_LE(ch.txA().credits(), params.rxQueueFrames);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsLossFlaps, LlcSoak,
    ::testing::Values(LlcSoakParams{1, 0.0, 64},
                      LlcSoakParams{2, 0.05, 64},
                      LlcSoakParams{3, 0.15, 64},
                      LlcSoakParams{4, 0.05, 8},
                      LlcSoakParams{5, 0.15, 4},
                      LlcSoakParams{6, 0.3, 16},
                      LlcSoakParams{7, 0.05, 2},
                      LlcSoakParams{8, 0.2, 32}));

// ------------------------------------------------------------------
// Event-kernel interaction: sustained ack traffic (with flaps, so
// timers both re-arm and genuinely cancel) must not inflate the
// kernel's physical heap. This soaked unbounded on the pre-rewrite
// kernel, which kept one dead heap entry per deschedule until its
// original deadline tick was reached.
// ------------------------------------------------------------------

TEST_F(LlcFixture, AckChurnKeepsKernelHeapBounded)
{
    params.frameErrorRate = 0.05;
    params.ackTimeout = sim::microseconds(5);
    build();
    for (int i = 0; i < 4000; ++i) {
        auto txn = mem::makeTxn(TxnType::WriteReq,
                                static_cast<mem::Addr>(i) * 128);
        eq.schedule(static_cast<sim::Tick>(i) * sim::nanoseconds(50),
                    [this, t = std::move(txn)]() mutable {
                        ch->txA().enqueue(std::move(t));
                    });
    }
    // Mid-stream flap: failover deschedules the armed ack timer for
    // real (disarm), then recovery re-arms it.
    eq.schedule(sim::microseconds(60), [&]() { ch->fail(); });
    eq.schedule(sim::microseconds(80), [&]() { ch->recover(); });

    std::size_t worstHeap = 0;
    while (!eq.empty()) {
        eq.runEvents(64);
        worstHeap = std::max(worstHeap, eq.heapSize());
        ASSERT_LE(eq.heapSize(),
                  2 * eq.pending() + sim::EventQueue::kCompactMinDead);
    }
    EXPECT_EQ(deliveredIds.size(), 4000u);
    // The whole soak must fit far below one ack-timeout's worth of
    // per-ack timer garbage (the old kernel's steady-state, ~tens of
    // thousands). Cut-through adds up to one live release event per
    // in-flight transaction, so the bound sits above 4000 but well
    // under the garbage regime.
    EXPECT_LT(worstHeap, 6000u);
}

// ------------------------------------------------------------------
// FramePool: the Tx path's frame freelist.
// ------------------------------------------------------------------

TEST(FramePool, RecycledFrameComesBackInDefaultState)
{
    FramePool pool;
    Frame *raw = nullptr;
    {
        FramePtr f = pool.acquire();
        raw = f.get();
        f->seq = 7;
        f->usedFlits = 3;
        f->padFlits = 13;
        f->corrupted = true;
        f->replayed = true;
        f->txns.push_back(mem::makeTxn(TxnType::ReadReq, 0));
    }
    ASSERT_EQ(pool.freeCount(), 1u);
    FramePtr g = pool.acquire();
    EXPECT_EQ(g.get(), raw); // recycled object, not a fresh allocation
    EXPECT_EQ(pool.freeCount(), 0u);
    EXPECT_EQ(g->seq, 0u);
    EXPECT_TRUE(g->txns.empty());
    EXPECT_EQ(g->usedFlits, 0u);
    EXPECT_EQ(g->padFlits, 0u);
    EXPECT_FALSE(g->corrupted);
    EXPECT_FALSE(g->replayed);
}

TEST(FramePool, RecyclingReleasesTxnPayloadImmediately)
{
    FramePool pool;
    auto txn = mem::makeTxn(TxnType::WriteReq, 0);
    std::weak_ptr<TxnPtr::element_type> weak = txn;
    {
        FramePtr f = pool.acquire();
        f->txns.push_back(std::move(txn));
    }
    // The frame sits on the freelist, but its payload must be gone.
    EXPECT_EQ(pool.freeCount(), 1u);
    EXPECT_TRUE(weak.expired());
}

TEST(FramePool, FrameMayOutliveItsPool)
{
    FramePtr f;
    {
        FramePool pool;
        f = pool.acquire();
        f->seq = 9;
    }
    // The recycler's shared core keeps the freelist storage alive;
    // releasing the frame after the pool died must not crash.
    EXPECT_EQ(f->seq, 9u);
    f.reset();
}
