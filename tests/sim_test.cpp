/**
 * @file
 * Unit tests for the discrete-event kernel, RNG and statistics.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <memory>
#include <vector>

#include "sim/clock_domain.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/ticks.hh"

using namespace tf::sim;

TEST(Ticks, Conversions)
{
    EXPECT_EQ(nanoseconds(1), 1000u);
    EXPECT_EQ(microseconds(1), 1000u * 1000u);
    EXPECT_EQ(milliseconds(1), 1000ull * 1000 * 1000);
    EXPECT_EQ(seconds(1), 1000ull * 1000 * 1000 * 1000);
    EXPECT_DOUBLE_EQ(toNs(nanoseconds(950)), 950.0);
    EXPECT_DOUBLE_EQ(toUs(microseconds(3.5)), 3.5);
    EXPECT_DOUBLE_EQ(toSec(seconds(2)), 2.0);
}

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(300, [&] { order.push_back(3); });
    eq.schedule(100, [&] { order.push_back(1); });
    eq.schedule(200, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 300u);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, SameTickFifoAndPriority)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(50, [&] { order.push_back(1); });
    eq.schedule(50, [&] { order.push_back(2); });
    eq.schedule(50, [&] { order.push_back(0); },
                EventPriority::ClockEdge);
    eq.schedule(50, [&] { order.push_back(3); }, EventPriority::Stats);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueue, RunWithLimitLeavesLaterEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(100, [&] { ++fired; });
    eq.schedule(200, [&] { ++fired; });
    std::uint64_t n = eq.run(150);
    EXPECT_EQ(n, 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 150u);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, ScheduleFromCallback)
{
    EventQueue eq;
    int chain = 0;
    std::function<void()> step = [&] {
        if (++chain < 5)
            eq.scheduleIn(10, step);
    };
    eq.schedule(0, step);
    eq.run();
    EXPECT_EQ(chain, 5);
    EXPECT_EQ(eq.now(), 40u);
}

TEST(EventQueue, Deschedule)
{
    EventQueue eq;
    int fired = 0;
    auto id = eq.schedule(100, [&] { ++fired; });
    eq.schedule(50, [&] { ++fired; });
    eq.deschedule(id);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(fired, 1);
    // Descheduling an already-fired id is a no-op.
    eq.deschedule(id);
}

TEST(EventQueue, PendingCountsLiveEventsOnly)
{
    EventQueue eq;
    auto a = eq.schedule(10, [] {});
    eq.schedule(20, [] {});
    EXPECT_EQ(eq.pending(), 2u);
    eq.deschedule(a);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_EQ(eq.executed(), 1u);
}

TEST(EventQueue, Warp)
{
    EventQueue eq;
    eq.warp(500);
    EXPECT_EQ(eq.now(), 500u);
    int fired = 0;
    eq.schedule(600, [&] { ++fired; });
    eq.run();
    EXPECT_EQ(fired, 1);
}

TEST(ClockDomain, PrototypeFrequency)
{
    ClockDomain clk = prototypeClock();
    // 401 MHz -> 2493 ps period (integer truncation of 2493.77).
    EXPECT_EQ(clk.period(), 2493u);
    EXPECT_NEAR(clk.frequencyHz(), 401e6, 1e6);
}

TEST(ClockDomain, EdgesAndCycles)
{
    ClockDomain clk(1e9); // 1 GHz, 1000 ps period
    EXPECT_EQ(clk.nextEdge(0), 0u);
    EXPECT_EQ(clk.nextEdge(1), 1000u);
    EXPECT_EQ(clk.nextEdge(1000), 1000u);
    EXPECT_EQ(clk.nextEdge(1001), 2000u);
    EXPECT_EQ(clk.cycles(5), 5000u);
    EXPECT_EQ(clk.cycleCount(5500), 5u);
}

TEST(ClockDomain, MesochronousPhase)
{
    ClockDomain clk(1e9, 250);
    EXPECT_EQ(clk.nextEdge(0), 250u);
    EXPECT_EQ(clk.nextEdge(251), 1250u);
}

TEST(ClockDomain, MesochronousEdgeAlignment)
{
    // Three transceiver-group clocks at the prototype frequency with
    // distinct skews (thirds of a period): every edge must stay
    // phase-aligned to its own domain — same frequency, constant
    // offset, zero drift — for arbitrary query times.
    const std::array<Tick, 3> phases = {0, 831, 1662};
    std::vector<ClockDomain> domains;
    for (Tick p : phases)
        domains.push_back(prototypeClock(p));
    const Tick period = domains[0].period();

    const std::array<Tick, 7> queries = {0u,    1u,      830u,   831u,
                                         2493u, 100000u, 999983u};
    for (Tick t : queries) {
        for (const ClockDomain &clk : domains) {
            Tick e = clk.nextEdge(t);
            EXPECT_GE(e, t);
            EXPECT_EQ((e - clk.phase()) % period, 0u);
            // Edges are fixed points; the following edge is exactly
            // one period later and advances the cycle count by one.
            EXPECT_EQ(clk.nextEdge(e), e);
            EXPECT_EQ(clk.nextEdge(e + 1), e + period);
            EXPECT_EQ(clk.cycleCount(e + period),
                      clk.cycleCount(e) + 1);
        }
        // Mesochronous pair: the offset between the domains' next
        // edges is always congruent to their phase skew.
        Tick ea = domains[0].nextEdge(t);
        Tick eb = domains[1].nextEdge(t);
        EXPECT_EQ((eb + period - ea) % period, phases[1] % period);
    }
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformBounds)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, BelowBounds)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(11);
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(5.0);
    EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, NormalMoments)
{
    Rng rng(13);
    Summary s;
    for (int i = 0; i < 200000; ++i)
        s.add(rng.normal(10.0, 2.0));
    EXPECT_NEAR(s.mean(), 10.0, 0.05);
    EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, BoundedParetoStaysBounded)
{
    Rng rng(17);
    for (int i = 0; i < 10000; ++i) {
        double v = rng.boundedPareto(1.2, 1.0, 1000.0);
        EXPECT_GE(v, 1.0);
        EXPECT_LE(v, 1000.0);
    }
}

TEST(Zipf, RankZeroMostPopular)
{
    Rng rng(19);
    ZipfGenerator zipf(1000, 1.0);
    std::vector<int> counts(1000, 0);
    for (int i = 0; i < 200000; ++i)
        ++counts[zipf(rng)];
    EXPECT_GT(counts[0], counts[9]);
    EXPECT_GT(counts[9], counts[99]);
    EXPECT_GT(counts[99], counts[999]);
}

TEST(Zipf, TheoreticalHeadMass)
{
    // With theta = 1.0 over n = 1000, the top item's probability is
    // 1/H_1000 ~= 0.1336.
    Rng rng(23);
    ZipfGenerator zipf(1000, 1.0);
    const int n = 300000;
    int top = 0;
    for (int i = 0; i < n; ++i)
        top += (zipf(rng) == 0);
    double h1000 = 0;
    for (int k = 1; k <= 1000; ++k)
        h1000 += 1.0 / k;
    EXPECT_NEAR(static_cast<double>(top) / n, 1.0 / h1000, 0.01);
}

TEST(Summary, Moments)
{
    Summary s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(SampleStat, Quantiles)
{
    SampleStat s;
    for (int i = 1; i <= 100; ++i)
        s.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
    EXPECT_NEAR(s.quantile(0.5), 50.5, 1e-9);
    EXPECT_NEAR(s.quantile(0.9), 90.1, 1e-9);
}

TEST(SampleStat, InterleavedAddAndQuantile)
{
    SampleStat s;
    s.add(3.0);
    s.add(1.0);
    EXPECT_DOUBLE_EQ(s.quantile(1.0), 3.0);
    s.add(5.0); // re-sort required after new sample
    EXPECT_DOUBLE_EQ(s.quantile(1.0), 5.0);
    EXPECT_DOUBLE_EQ(s.quantile(0.5), 3.0);
}

TEST(Histogram, Buckets)
{
    Histogram h(0.0, 10.0, 10);
    h.add(-1.0);
    h.add(0.0);
    h.add(5.5);
    h.add(9.999);
    h.add(10.0);
    h.add(42.0);
    EXPECT_EQ(h.count(), 6u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(5), 1u);
    EXPECT_EQ(h.bucket(9), 1u);
    EXPECT_DOUBLE_EQ(h.bucketLo(5), 5.0);
    EXPECT_DOUBLE_EQ(h.bucketHi(5), 6.0);
}

TEST(StatSet, PrintsOwnerPrefixedRows)
{
    StatSet set("dram0");
    set.record("reads", 42, "txns", "read requests");
    std::ostringstream os;
    set.print(os);
    EXPECT_NE(os.str().find("dram0.reads"), std::string::npos);
    EXPECT_NE(os.str().find("42"), std::string::npos);
    EXPECT_NE(os.str().find("read requests"), std::string::npos);
}

TEST(SampleStat, WriteCdfMonotone)
{
    SampleStat s;
    Rng rng(3);
    for (int i = 0; i < 1000; ++i)
        s.add(rng.uniform(10.0, 50.0));
    std::ostringstream os;
    s.writeCdf(os, 50);
    std::istringstream is(os.str());
    double value, fraction;
    double prev_value = -1, prev_fraction = -1;
    int rows = 0;
    while (is >> value >> fraction) {
        EXPECT_GE(value, prev_value);
        EXPECT_GT(fraction, prev_fraction);
        EXPECT_GE(fraction, 0.0);
        EXPECT_LE(fraction, 1.0);
        prev_value = value;
        prev_fraction = fraction;
        ++rows;
    }
    EXPECT_EQ(rows, 51); // 0..points inclusive
    EXPECT_DOUBLE_EQ(prev_fraction, 1.0);
}

TEST(SampleStat, WriteCdfEmptyProducesNothing)
{
    SampleStat s;
    std::ostringstream os;
    s.writeCdf(os);
    EXPECT_TRUE(os.str().empty());
}

TEST(EventQueue, DescheduleFromWithinCallback)
{
    EventQueue eq;
    int fired = 0;
    EventQueue::EventId later = 0;
    eq.schedule(10, [&] {
        ++fired;
        eq.deschedule(later); // cancel a not-yet-fired event
    });
    later = eq.schedule(20, [&] { ++fired; });
    eq.run();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, ManyEventsStaySorted)
{
    EventQueue eq;
    Rng rng(9);
    Tick last_seen = 0;
    bool monotone = true;
    for (int i = 0; i < 10000; ++i) {
        Tick when = rng.below(1000000);
        eq.schedule(when, [&, when] {
            monotone = monotone && eq.now() >= last_seen &&
                       eq.now() == when;
            last_seen = eq.now();
        });
    }
    eq.run();
    EXPECT_TRUE(monotone);
    EXPECT_EQ(eq.executed(), 10000u);
}

// ---- dead-timer retention regression (the PR 3 kernel bugfix) ----

TEST(EventQueue, DescheduleReleasesCapturedStateImmediately)
{
    EventQueue eq;
    auto payload = std::make_shared<int>(7);
    std::weak_ptr<int> weak = payload;
    auto id =
        eq.schedule(100, [p = std::move(payload)] { (void)*p; });
    ASSERT_FALSE(weak.expired());
    // The lazy pre-rewrite kernel kept the closure (and its captured
    // shared_ptr) inside the heap until tick 100 was popped.
    eq.deschedule(id);
    EXPECT_TRUE(weak.expired());
    eq.run();
    EXPECT_EQ(eq.executed(), 0u);
}

TEST(EventQueue, CancelChurnKeepsHeapPhysicallyBounded)
{
    // The LlcTx ack-timer pattern: a long-dated timeout is cancelled
    // and re-armed over and over. Dead entries must stay within the
    // documented compaction bound instead of accumulating for a full
    // timeout window.
    EventQueue eq;
    EventQueue::EventId timer = EventQueue::invalidEvent;
    std::size_t worst = 0;
    for (Tick t = 0; t < 100000; ++t) {
        if (timer != EventQueue::invalidEvent)
            eq.deschedule(timer);
        timer = eq.schedule(t + 20000, [] {});
        std::size_t bound =
            2 * eq.pending() + EventQueue::kCompactMinDead;
        worst = std::max(worst, eq.heapSize());
        ASSERT_LE(eq.heapSize(), bound);
    }
    // One live timer; the physical heap must be nowhere near the
    // 20000-entry window the old kernel retained.
    EXPECT_EQ(eq.pending(), 1u);
    EXPECT_LE(worst, 2u + 2 * EventQueue::kCompactMinDead);
    EXPECT_GT(eq.compactions(), 0u);
    EXPECT_EQ(eq.cancelled(), 99999u);
}

TEST(EventQueue, CallbacksRunExactlyOnceUnderReentrantScheduling)
{
    // Standalone regression for the owned-heap rewrite (the old
    // kernel moved callbacks out of priority_queue::top() via
    // const_cast): callbacks that schedule and deschedule reentrantly
    // must each run exactly once.
    EventQueue eq;
    std::vector<int> runs(6, 0);
    EventQueue::EventId self = EventQueue::invalidEvent;
    EventQueue::EventId victim = EventQueue::invalidEvent;
    self = eq.schedule(10, [&] {
        ++runs[0];
        eq.deschedule(self);   // own id already retired: no-op
        eq.deschedule(victim); // same-tick later event: cancelled
        // Same-tick insertion from within a callback still runs, once.
        eq.schedule(10, [&] { ++runs[2]; });
        eq.scheduleIn(5, [&] { ++runs[3]; });
    });
    victim = eq.schedule(10, [&] { ++runs[1]; });
    eq.run();
    EXPECT_EQ(runs[0], 1);
    EXPECT_EQ(runs[1], 0);
    EXPECT_EQ(runs[2], 1);
    EXPECT_EQ(runs[3], 1);
    EXPECT_EQ(eq.executed(), 3u);
}

TEST(EventQueue, StaleIdAfterSlotReuseIsNoOp)
{
    EventQueue eq;
    int fired = 0;
    auto a = eq.schedule(10, [&] { ++fired; });
    eq.run();
    ASSERT_EQ(fired, 1);
    // The fired event's slot is recycled under a new generation; the
    // stale handle must not cancel the slot's new occupant.
    auto b = eq.schedule(20, [&] { ++fired; });
    eq.deschedule(a);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(fired, 2);
    // Double-deschedule of a cancelled id is also a no-op.
    auto c = eq.schedule(30, [&] { ++fired; });
    eq.deschedule(c);
    eq.deschedule(c);
    eq.deschedule(b); // already fired
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, SameTickOrderDeterministicUnderCancellation)
{
    // Two identical seeded workloads with interleaved cancellations
    // must execute the surviving events in the identical
    // (tick, priority, schedule-order) sequence.
    auto trace = [] {
        EventQueue eq;
        Rng rng(31);
        std::vector<int> order;
        std::vector<EventQueue::EventId> ids;
        for (int i = 0; i < 2000; ++i) {
            Tick when = rng.below(50); // dense: many same-tick ties
            auto prio = rng.chance(0.3) ? EventPriority::ClockEdge
                                        : EventPriority::Default;
            ids.push_back(
                eq.schedule(when, [&order, i] { order.push_back(i); },
                            prio));
        }
        for (int i = 0; i < 2000; ++i)
            if (rng.chance(0.4))
                eq.deschedule(ids[i]);
        eq.run();
        return order;
    };
    auto a = trace();
    auto b = trace();
    EXPECT_EQ(a, b);
    EXPECT_FALSE(a.empty());
}

TEST(EventQueue, AttachStatsExportsKernelCounters)
{
    EventQueue eq;
    StatSet set("sim.eq");
    eq.attachStats(set);
    auto id = eq.schedule(5, [] {});
    eq.deschedule(id);
    eq.schedule(7, [] {});
    eq.run();
    double executed = -1, cancelled = -1, highWater = -1;
    for (const auto &row : set.snapshot()) {
        if (row.name == "executed")
            executed = row.value;
        else if (row.name == "cancelled")
            cancelled = row.value;
        else if (row.name == "heapHighWater")
            highWater = row.value;
    }
    EXPECT_EQ(executed, 1.0);
    EXPECT_EQ(cancelled, 1.0);
    EXPECT_EQ(highWater, 2.0);
}

// ---- SmallFn (the kernel's small-buffer callback type) ----

TEST(EventCallback, InlineCaptureAvoidsNullAndInvokes)
{
    int hits = 0;
    EventCallback cb([&hits] { ++hits; });
    EXPECT_TRUE(static_cast<bool>(cb));
    cb();
    cb();
    EXPECT_EQ(hits, 2);
    cb.reset();
    EXPECT_FALSE(static_cast<bool>(cb));
}

TEST(EventCallback, MoveTransfersOwnershipAndReleasesCaptures)
{
    auto payload = std::make_shared<int>(1);
    std::weak_ptr<int> weak = payload;
    EventCallback a([p = std::move(payload)] { (void)p; });
    EventCallback b(std::move(a));
    EXPECT_FALSE(static_cast<bool>(a));
    EXPECT_TRUE(static_cast<bool>(b));
    EXPECT_FALSE(weak.expired());
    b = nullptr;
    EXPECT_TRUE(weak.expired());
}

TEST(EventCallback, OversizedCaptureFallsBackToHeapAndStillWorks)
{
    // > 64 bytes of capture takes the heap path; semantics identical.
    std::array<std::uint64_t, 16> big{};
    big[0] = 3;
    big[15] = 4;
    std::uint64_t sum = 0;
    EventCallback cb([big, &sum] { sum = big[0] + big[15]; });
    EventCallback moved(std::move(cb));
    moved();
    EXPECT_EQ(sum, 7u);
}
