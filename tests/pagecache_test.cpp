/**
 * @file
 * Page-cache tests: hit/miss/eviction clock order, dirty write-back
 * exactly-once under injected remote errors, fill-error propagation,
 * hwpoison refault through the miss path, run-to-run determinism,
 * and the cache interposed on a full disaggregated testbed.
 *
 * Most tests drive a PageCache directly against a scripted donor (a
 * BackingStore behind a fixed delay that can be told to fail remote
 * transactions), so error paths fire deterministically without the
 * control plane tearing down a single-channel flow.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "mem/backing_store.hh"
#include "system/testbed.hh"

using namespace tf;
using namespace tf::sys;

namespace {

constexpr std::uint64_t kPage = 8192;
constexpr mem::Addr kBase = 0x100000000ULL;

/** Donor memory behind a fixed delay with switchable error injection. */
struct ScriptedDonor
{
    sim::EventQueue &eq;
    mem::BackingStore store;
    /** Successful writes applied, per line address (exactly-once). */
    std::map<mem::Addr, int> applied;
    int failNext = 0;   ///< error-complete this many txns, then heal
    bool failAll = false;
    sim::Tick delay = sim::nanoseconds(500);

    explicit ScriptedDonor(sim::EventQueue &q) : eq(q) {}

    void
    issue(mem::TxnPtr txn)
    {
        bool fail = failAll;
        if (!fail && failNext > 0) {
            --failNext;
            fail = true;
        }
        eq.scheduleIn(delay, [this, fail, txn]() mutable {
            if (fail) {
                txn->error = true;
            } else if (txn->type == mem::TxnType::ReadReq) {
                txn->data.assign(txn->size, 0);
                store.read(txn->addr, txn->data.data(), txn->size);
            } else {
                store.write(txn->addr, txn->data.data(), txn->size);
                ++applied[txn->addr];
            }
            txn->makeResponse();
            txn->complete();
        });
    }
};

/** Records one access's completion. */
struct Probe
{
    int done = 0;
    bool error = false;
    std::vector<std::uint8_t> data;
};

struct PageCacheFixture : ::testing::Test
{
    sim::EventQueue eq;
    std::unique_ptr<Node> node;
    std::unique_ptr<ScriptedDonor> donor;
    std::unique_ptr<os::PageCache> pc;

    void
    SetUp() override
    {
        NodeParams np;
        np.pageBytes = kPage;
        node = std::make_unique<Node>("n", eq, np);
        donor = std::make_unique<ScriptedDonor>(eq);
    }

    /** Build the cache; lowWatermark 0 keeps the provider dormant so
     *  eviction order is exactly the clock's. */
    void
    makeCache(std::uint32_t budget, std::uint32_t low = 0,
              std::uint32_t high = 0)
    {
        os::PageCacheParams p;
        p.pageBytes = kPage;
        p.frameBudget = budget;
        p.partitions = 2;
        p.maxInflightFills = 2;
        p.maxInflightFlushes = 1;
        p.lineMlp = 8;
        p.lowWatermark = low;
        p.highWatermark = high;
        ScriptedDonor *d = donor.get();
        pc = std::make_unique<os::PageCache>(
            "pc", eq, p, node->mm(), node->localNode(), node->dram(),
            [d](mem::TxnPtr txn) { d->issue(std::move(txn)); });
    }

    static mem::Addr
    pageAddr(int i)
    {
        return kBase + static_cast<mem::Addr>(i) * kPage;
    }

    void
    read(mem::Addr addr, Probe &p)
    {
        auto txn = mem::makeTxn(mem::TxnType::ReadReq, addr);
        txn->onComplete = [&p](mem::MemTxn &t) {
            ++p.done;
            p.error = t.error;
            p.data = t.data;
        };
        pc->access(std::move(txn));
    }

    void
    write(mem::Addr addr, std::uint8_t byte, Probe &p)
    {
        auto txn = mem::makeTxn(mem::TxnType::WriteReq, addr);
        txn->data.assign(mem::cachelineBytes, byte);
        txn->onComplete = [&p](mem::MemTxn &t) {
            ++p.done;
            p.error = t.error;
        };
        pc->access(std::move(txn));
    }

    /** Read and drain; returns data[0] (asserts success). */
    std::uint8_t
    readByte(mem::Addr addr)
    {
        Probe p;
        read(addr, p);
        eq.run();
        EXPECT_EQ(p.done, 1);
        EXPECT_FALSE(p.error);
        EXPECT_GE(p.data.size(), 1u);
        return p.data.empty() ? 0 : p.data[0];
    }
};

} // namespace

TEST_F(PageCacheFixture, MissThenHitServesDonorData)
{
    makeCache(4);
    for (int i = 0; i < 4; ++i)
        donor->store.write64(pageAddr(i), 0xA0 + i);

    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(readByte(pageAddr(i)), 0xA0 + i);
    EXPECT_EQ(pc->misses(), 4u);
    EXPECT_EQ(pc->fills(), 4u);
    EXPECT_EQ(pc->hits(), 0u);
    EXPECT_EQ(pc->residentPages(), 4u);
    EXPECT_EQ(pc->freeFrames(), 0u);

    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(readByte(pageAddr(i)), 0xA0 + i);
    EXPECT_EQ(pc->hits(), 4u);
    EXPECT_EQ(pc->misses(), 4u);
    EXPECT_EQ(pc->fills(), 4u); // hits refetch nothing
    EXPECT_DOUBLE_EQ(pc->hitRate(), 0.5);
}

TEST_F(PageCacheFixture, ClockEvictsInSecondChanceOrder)
{
    makeCache(4);
    for (int i = 0; i < 4; ++i)
        readByte(pageAddr(i)); // fill A..D, all referenced
    for (int i = 0; i < 4; ++i)
        readByte(pageAddr(i)); // 4 hits, re-reference

    // E misses: the first clock lap strips every reference bit, the
    // second evicts frame 0 (page A).
    readByte(pageAddr(4));
    EXPECT_EQ(pc->evictions(), 1u);

    // A misses again -- proof A was the victim -- and the hand, now
    // past frame 0, evicts B next.
    readByte(pageAddr(0));
    EXPECT_EQ(pc->misses(), 6u);
    EXPECT_EQ(pc->evictions(), 2u);

    // C and D survived both evictions.
    readByte(pageAddr(2));
    readByte(pageAddr(3));
    EXPECT_EQ(pc->hits(), 6u);
    EXPECT_EQ(pc->misses(), 6u);
    EXPECT_EQ(pc->residentPages(), 4u);
}

TEST_F(PageCacheFixture, DirtyEvictionWritesBackExactlyOnce)
{
    makeCache(2);
    Probe w;
    readByte(pageAddr(0));       // A clean
    write(pageAddr(1), 0x5B, w); // B dirty
    eq.run();
    ASSERT_EQ(w.done, 1);
    EXPECT_EQ(pc->dirtyPages(), 1u);

    // C evicts clean A; then A evicts dirty B (write-back) and clean
    // C in the same scan, so the miss is served without waiting.
    readByte(pageAddr(2));
    readByte(pageAddr(0));
    EXPECT_EQ(pc->writebacks(), 1u);
    EXPECT_EQ(pc->wbErrors(), 0u);
    for (std::uint32_t l = 0; l < kPage / mem::cachelineBytes; ++l) {
        mem::Addr line = pageAddr(1) + l * mem::cachelineBytes;
        EXPECT_EQ(donor->applied[line], 1) << "line " << l;
    }
    EXPECT_EQ(donor->store.read64(pageAddr(1)) & 0xff, 0x5BULL);

    // Refault B through the fill path: the donor copy round-trips.
    EXPECT_EQ(readByte(pageAddr(1)), 0x5B);
}

TEST_F(PageCacheFixture, WritebackRetriesAfterRemoteErrorExactlyOnce)
{
    makeCache(2);
    Probe w;
    write(pageAddr(0), 0x7E, w);
    eq.run();
    ASSERT_EQ(w.done, 1);

    // Channel-down analog: every remote txn error-completes. The
    // flush fails, the frame stays dirty-resident, the donor saw no
    // torn write applied.
    donor->failAll = true;
    pc->flushAll();
    eq.run();
    EXPECT_EQ(pc->wbErrors(), 1u);
    EXPECT_EQ(pc->writebacks(), 0u);
    EXPECT_EQ(pc->dirtyPages(), 1u);
    EXPECT_TRUE(donor->applied.empty());

    // Link back up: the retry lands the page exactly once and the
    // rescue keeps it resident and clean.
    donor->failAll = false;
    pc->flushAll();
    eq.run();
    EXPECT_EQ(pc->writebacks(), 1u);
    EXPECT_EQ(pc->dirtyPages(), 0u);
    EXPECT_EQ(pc->residentPages(), 1u);
    for (std::uint32_t l = 0; l < kPage / mem::cachelineBytes; ++l) {
        mem::Addr line = pageAddr(0) + l * mem::cachelineBytes;
        EXPECT_EQ(donor->applied[line], 1) << "line " << l;
    }
    EXPECT_EQ(donor->store.read64(pageAddr(0)) & 0xff, 0x7EULL);

    // Still servable without a refetch.
    std::uint64_t fills = pc->fills();
    EXPECT_EQ(readByte(pageAddr(0)), 0x7E);
    EXPECT_EQ(pc->fills(), fills);
}

TEST_F(PageCacheFixture, FillErrorPropagatesThenRetrySucceeds)
{
    makeCache(4);
    donor->store.write64(pageAddr(0), 0x3C);

    donor->failNext = 1;
    Probe p;
    read(pageAddr(0), p);
    eq.run();
    EXPECT_EQ(p.done, 1);
    EXPECT_TRUE(p.error);
    EXPECT_EQ(pc->fillErrors(), 1u);
    EXPECT_EQ(pc->residentPages(), 0u);
    EXPECT_EQ(pc->freeFrames(), 4u); // failed fill returns the frame

    EXPECT_EQ(readByte(pageAddr(0)), 0x3C);
    EXPECT_EQ(pc->fills(), 1u);
    EXPECT_EQ(pc->misses(), 2u);
}

TEST_F(PageCacheFixture, PoisonedFrameRefaultsThroughMissPath)
{
    makeCache(4);
    donor->store.write64(pageAddr(0), 0x44);
    EXPECT_EQ(readByte(pageAddr(0)), 0x44);

    EXPECT_TRUE(pc->poisonCleanPage());
    EXPECT_EQ(pc->poisonedFrames(), 1u);
    EXPECT_EQ(pc->residentPages(), 0u);
    EXPECT_EQ(pc->freeFrames(), 4u); // replacement frame allocated

    // The donor still holds the truth; the next touch refaults.
    EXPECT_EQ(readByte(pageAddr(0)), 0x44);
    EXPECT_EQ(pc->misses(), 2u);
    EXPECT_EQ(pc->fills(), 2u);

    // A dirty page is the only correct copy -- never poisonable.
    Probe w;
    write(pageAddr(0), 0x55, w);
    eq.run();
    ASSERT_EQ(w.done, 1);
    EXPECT_FALSE(pc->poisonCleanPage());
}

TEST_F(PageCacheFixture, ProviderKeepsFreeListBetweenWatermarks)
{
    makeCache(8, 2, 4);
    for (int i = 0; i < 8; ++i)
        readByte(pageAddr(i));
    // The provider woke when the free list dipped below the low
    // watermark and restocked it toward the high one; the last miss
    // may have taken one frame back since.
    eq.run();
    EXPECT_GE(pc->providerRuns(), 1u);
    EXPECT_GE(pc->freeFrames(), 2u);
    EXPECT_EQ(pc->residentPages() + pc->freeFrames(), 8u);
}

TEST(PageCacheDeterminism, RepeatRunsYieldIdenticalStats)
{
    // Mixed concurrent workload (reads + writes, working set over
    // budget, batched MLP); two fresh instances must agree exactly.
    auto run = [] {
        sim::EventQueue eq;
        NodeParams np;
        np.pageBytes = kPage;
        Node n("n", eq, np);
        ScriptedDonor donor(eq);
        os::PageCacheParams p;
        p.pageBytes = kPage;
        p.frameBudget = 8;
        p.partitions = 2;
        p.maxInflightFills = 2;
        p.maxInflightFlushes = 1;
        p.lowWatermark = 2;
        p.highWatermark = 4;
        os::PageCache pc("pc", eq, p, n.mm(), n.localNode(), n.dram(),
                         [&donor](mem::TxnPtr t) {
                             donor.issue(std::move(t));
                         });
        int completed = 0;
        for (int op = 0; op < 200; ++op) {
            int page = (op * 7919) % 24;
            mem::Addr addr = kBase +
                             static_cast<mem::Addr>(page) * kPage +
                             static_cast<mem::Addr>(op % 64) *
                                 mem::cachelineBytes;
            auto txn = mem::makeTxn(op % 3 == 0
                                        ? mem::TxnType::WriteReq
                                        : mem::TxnType::ReadReq,
                                    addr);
            if (txn->type == mem::TxnType::WriteReq)
                txn->data.assign(mem::cachelineBytes,
                                 static_cast<std::uint8_t>(op));
            txn->onComplete = [&completed](mem::MemTxn &t) {
                EXPECT_FALSE(t.error);
                ++completed;
            };
            pc.access(std::move(txn));
            if (op % 8 == 7)
                eq.run(); // drain the MLP batch
        }
        eq.run();
        EXPECT_EQ(completed, 200);
        return std::make_tuple(pc.hits(), pc.misses(), pc.evictions(),
                               pc.writebacks(), pc.fills(),
                               pc.providerRuns(), pc.hitRate(),
                               eq.now());
    };
    EXPECT_EQ(run(), run());
}

// ------------------------- full-stack path -------------------------

TEST(PageCacheTestbed, LocalSetupGetsNoCache)
{
    sim::EventQueue eq;
    TestbedParams tp;
    tp.setup = Setup::Local;
    tp.enablePageCache = true;
    Testbed tb(eq, tp);
    EXPECT_EQ(tb.pageCache(), nullptr);
}

TEST(PageCacheTestbed, WindowAccessesRoundTripThroughCache)
{
    sim::EventQueue eq;
    TestbedParams tp;
    tp.setup = Setup::SingleDisaggregated;
    tp.donatedBytes = 32ULL * 1024 * 1024;
    tp.node.pageBytes = kPage;
    tp.enablePageCache = true;
    tp.pageCache.frameBudget = 8;
    tp.pageCache.partitions = 2;
    tp.pageCache.maxInflightFills = 2;
    tp.pageCache.maxInflightFlushes = 1;
    tp.pageCache.lowWatermark = 2;
    tp.pageCache.highWatermark = 4;
    Testbed tb(eq, tp);
    ASSERT_NE(tb.pageCache(), nullptr);

    constexpr mem::Addr kWindow = 0x2000000000ULL;
    constexpr int kPages = 16; // 2x the frame budget
    int completed = 0;
    auto touch = [&](int page, bool isWrite) {
        mem::Addr addr = kWindow +
                         static_cast<mem::Addr>(page) * kPage;
        auto txn = mem::makeTxn(isWrite ? mem::TxnType::WriteReq
                                        : mem::TxnType::ReadReq,
                                addr);
        if (isWrite)
            txn->data.assign(mem::cachelineBytes,
                             static_cast<std::uint8_t>(0xC0 + page));
        else
            txn->onComplete = [&completed, page](mem::MemTxn &t) {
                EXPECT_FALSE(t.error);
                ASSERT_GE(t.data.size(), 1u);
                EXPECT_EQ(t.data[0],
                          static_cast<std::uint8_t>(0xC0 + page));
                ++completed;
            };
        tb.serverA().issue(std::move(txn));
    };

    for (int i = 0; i < kPages; ++i) {
        touch(i, true);
        if (i % 4 == 3)
            eq.run();
    }
    eq.run();
    // Every page was dirtied; 16 pages through 8 frames evicted and
    // wrote back through the real datapath.
    os::PageCache &pc = *tb.pageCache();
    EXPECT_EQ(pc.misses(), static_cast<std::uint64_t>(kPages));
    EXPECT_GT(pc.evictions(), 0u);
    EXPECT_GT(pc.writebacks(), 0u);
    EXPECT_EQ(pc.fillErrors(), 0u);
    EXPECT_EQ(pc.wbErrors(), 0u);

    // Read everything back: evicted pages refault from the donor and
    // must return the bytes their write-back landed there.
    for (int i = 0; i < kPages; ++i) {
        touch(i, false);
        if (i % 4 == 3)
            eq.run();
    }
    eq.run();
    EXPECT_EQ(completed, kPages);
    EXPECT_GT(pc.hits() + pc.misses(),
              static_cast<std::uint64_t>(2 * kPages) - 1);
    EXPECT_EQ(tb.serverA().remoteAccesses(),
              static_cast<std::uint64_t>(2 * kPages));
    EXPECT_EQ(tb.serverA().remoteErrors(), 0u);
}
