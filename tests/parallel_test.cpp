/**
 * @file
 * Unit tests for the conservative parallel engine: window protocol,
 * cross-LP channels, determinism across worker counts, teardown with
 * in-flight traffic, and the partitioned net/opencapi integrations.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "mem/transaction.hh"
#include "net/ethernet.hh"
#include "opencapi/crossing.hh"
#include "sim/parallel/engine.hh"
#include "sim/rng.hh"
#include "system/rack.hh"

using namespace tf;
using sim::Tick;
using sim::par::LinkChannel;
using sim::par::LogicalProcess;
using sim::par::ParallelEngine;

TEST(ParallelEngine, SingleLpMatchesPlainQueue)
{
    // With one LP and no channels the engine must behave exactly like
    // running the queue directly.
    sim::EventQueue ref;
    ParallelEngine engine(1);
    LogicalProcess &lp = engine.addLp("only");

    std::vector<Tick> refOrder, lpOrder;
    for (Tick t : {300u, 100u, 200u, 100u}) {
        ref.schedule(t, [&refOrder, &ref] {
            refOrder.push_back(ref.now());
        });
        lp.queue().schedule(t, [&lpOrder, &lp] {
            lpOrder.push_back(lp.queue().now());
        });
    }
    std::uint64_t refRan = ref.run();
    std::uint64_t lpRan = engine.run();

    EXPECT_EQ(refRan, lpRan);
    EXPECT_EQ(refOrder, lpOrder);
    EXPECT_EQ(ref.now(), lp.queue().now());
    EXPECT_EQ(engine.windows(), 1u);
    EXPECT_EQ(engine.merged(), 0u);
}

TEST(ParallelEngine, IndependentLpsDrainInOneWindow)
{
    // No channels -> lookahead is unbounded -> a single window runs
    // every queue to completion.
    ParallelEngine engine(2);
    LogicalProcess &a = engine.addLp("a");
    LogicalProcess &b = engine.addLp("b");

    // One counter per LP: the window runs both queues concurrently,
    // and state is owned by the LP that touches it (the engine's
    // threading contract — TSan enforces it on this very test).
    int firedA = 0;
    int firedB = 0;
    a.queue().schedule(100, [&firedA] { ++firedA; });
    a.queue().schedule(900, [&firedA] { ++firedA; });
    b.queue().schedule(500, [&firedB] { ++firedB; });

    EXPECT_EQ(engine.lookahead(), sim::maxTick);
    EXPECT_EQ(engine.run(), 3u);
    EXPECT_EQ(firedA, 2);
    EXPECT_EQ(firedB, 1);
    EXPECT_EQ(engine.windows(), 1u);
}

TEST(ParallelEngine, PingPongHonoursChannelLatency)
{
    constexpr Tick kLat = 1000;
    constexpr int kRounds = 8;

    ParallelEngine engine(2);
    LogicalProcess &a = engine.addLp("a");
    LogicalProcess &b = engine.addLp("b");
    LinkChannel &ab = engine.connect(a, b, kLat);
    LinkChannel &ba = engine.connect(b, a, kLat);

    std::vector<Tick> arrivals;
    std::function<void(int)> bounce = [&](int left) {
        LogicalProcess &here = (left % 2 == 0) ? a : b;
        arrivals.push_back(here.queue().now());
        if (left == 0)
            return;
        LinkChannel &out = (left % 2 == 0) ? ab : ba;
        out.send(here.queue().now() + kLat,
                 [&bounce, left] { bounce(left - 1); });
    };
    // Kick off from LP a at t = 0 (before the engine runs).
    ab.send(kLat, [&bounce] { bounce(kRounds - 1); });

    engine.run();

    ASSERT_EQ(arrivals.size(), static_cast<std::size_t>(kRounds));
    for (int i = 0; i < kRounds; ++i)
        EXPECT_EQ(arrivals[i], kLat * static_cast<Tick>(i + 1));
    EXPECT_EQ(engine.merged(), static_cast<std::uint64_t>(kRounds));
    EXPECT_EQ(ab.sent() + ba.sent(),
              static_cast<std::uint64_t>(kRounds));
    EXPECT_EQ(ab.delivered() + ba.delivered(),
              static_cast<std::uint64_t>(kRounds));
    // One delivery per window: each bounce opens the next window.
    EXPECT_EQ(engine.windows(), static_cast<std::uint64_t>(kRounds));
}

TEST(ParallelEngine, FiniteLimitWarpsEveryClock)
{
    ParallelEngine engine(2);
    LogicalProcess &a = engine.addLp("a");
    LogicalProcess &b = engine.addLp("b");
    engine.connect(a, b, 500);

    int fired = 0;
    a.queue().schedule(100, [&fired] { ++fired; });
    b.queue().schedule(90000, [&fired] { ++fired; });

    engine.run(50000);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(a.queue().now(), 50000u);
    EXPECT_EQ(b.queue().now(), 50000u);
    EXPECT_EQ(b.queue().pending(), 1u);

    engine.run(100000);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(a.queue().now(), 100000u);
    EXPECT_EQ(b.queue().now(), 100000u);
}

TEST(ParallelEngineDeathTest, ZeroLookaheadFailsLoudly)
{
    // A zero-latency channel would force zero-length windows: the
    // conservative engine must reject it at connect time instead of
    // deadlocking at run time.
    ParallelEngine engine;
    LogicalProcess &a = engine.addLp("a");
    LogicalProcess &b = engine.addLp("b");
    EXPECT_DEATH(engine.connect(a, b, 0), "zero lookahead");
}

TEST(ParallelEngineDeathTest, SendBelowMinLatencyFailsLoudly)
{
    ParallelEngine engine;
    LogicalProcess &a = engine.addLp("a");
    LogicalProcess &b = engine.addLp("b");
    LinkChannel &ab = engine.connect(a, b, 1000);
    EXPECT_DEATH(ab.send(999, [] {}), "min-latency");
}

TEST(ParallelEngineDeathTest, SelfChannelFailsLoudly)
{
    ParallelEngine engine;
    LogicalProcess &a = engine.addLp("a");
    EXPECT_DEATH(engine.connect(a, a, 1000), "same");
}

namespace {

/**
 * Deterministic multi-LP workload: a ring of LPs exchanging hops with
 * varying latencies plus local events, logging (lp, tick, ttl) on
 * every hop. The log is a pure function of the topology and seeds, so
 * it must be identical for any worker count and any thread schedule.
 */
struct RingFixture
{
    static constexpr Tick kBaseLat = 2000;

    explicit RingFixture(unsigned jobs, int lps) : engine(jobs)
    {
        for (int i = 0; i < lps; ++i) {
            all.push_back(&engine.addLp("lp" + std::to_string(i)));
            logs.emplace_back();
        }
        for (int i = 0; i < lps; ++i)
            ring.push_back(&engine.connect(
                *all[i], *all[(i + 1) % lps],
                kBaseLat + static_cast<Tick>(i) * 500));

        // Seeded initial bursts, staggered per LP.
        for (int i = 0; i < lps; ++i) {
            sim::Rng rng(1234 + static_cast<std::uint64_t>(i));
            for (int k = 0; k < 40; ++k) {
                Tick at = 1 + rng.below(5000);
                int ttl = 3 + static_cast<int>(rng.below(6));
                all[i]->queue().schedule(
                    at, [this, i, ttl] { hop(i, ttl); });
            }
        }
    }

    void
    hop(int lp, int ttl)
    {
        logs[lp].push_back({all[lp]->queue().now(), ttl});
        if (ttl <= 0)
            return;
        // A local follow-up and a forward around the ring.
        all[lp]->queue().scheduleIn(77, [this, lp] { hop(lp, 0); });
        int next = (lp + 1) % static_cast<int>(all.size());
        Tick extra = static_cast<Tick>(ttl % 3) * 111;
        ring[lp]->send(all[lp]->queue().now() +
                           ring[lp]->minLatency() + extra,
                       [this, next, ttl] { hop(next, ttl - 1); });
    }

    std::vector<std::vector<std::pair<Tick, int>>>
    run()
    {
        engine.run();
        return logs;
    }

    ParallelEngine engine;
    std::vector<LogicalProcess *> all;
    std::vector<LinkChannel *> ring;
    std::vector<std::vector<std::pair<Tick, int>>> logs;
};

} // namespace

TEST(ParallelEngine, DeterministicAcrossWorkerCounts)
{
    auto serial = RingFixture(1, 5).run();
    auto two = RingFixture(2, 5).run();
    auto four = RingFixture(4, 5).run();
    EXPECT_EQ(serial, two);
    EXPECT_EQ(serial, four);
}

TEST(ParallelEngine, DeterministicUnderThreadSchedulePerturbation)
{
    // Re-run the same parallel topology many times: OS scheduling
    // noise across runs must never leak into the event order.
    auto reference = RingFixture(4, 5).run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(reference, RingFixture(4, 5).run()) << "run " << i;
}

TEST(ParallelEngine, TeardownWithInFlightMessages)
{
    // Messages parked in channel outboxes (and events still queued)
    // must be released cleanly when the engine dies — the callbacks
    // own shared state that would leak otherwise (ASan-checked).
    auto payload = std::make_shared<int>(7);
    {
        ParallelEngine engine(2);
        LogicalProcess &a = engine.addLp("a");
        LogicalProcess &b = engine.addLp("b");
        LinkChannel &ab = engine.connect(a, b, 1000);
        ab.send(1000, [payload] { ++*payload; });
        ab.send(2500, [payload] { ++*payload; });
        EXPECT_EQ(ab.inFlight(), 2u);
        // Destroyed without ever running.
    }
    EXPECT_EQ(*payload, 7);
    EXPECT_EQ(payload.use_count(), 1);

    {
        ParallelEngine engine(2);
        LogicalProcess &a = engine.addLp("a");
        LogicalProcess &b = engine.addLp("b");
        LinkChannel &ab = engine.connect(a, b, 1000);
        a.queue().schedule(100, [payload, &ab, &a] {
            ab.send(a.queue().now() + 1000, [payload] { ++*payload; });
        });
        b.queue().schedule(60000, [payload] { ++*payload; });
        engine.run(5000); // partial: b's far event stays queued
        EXPECT_EQ(*payload, 8);
        // Destroyed with a pending event still in b's queue.
    }
    EXPECT_EQ(payload.use_count(), 1);
}

TEST(ParallelNet, PartitionedLinkDeliversAtSerialTick)
{
    // 1000 B at 1 GB/s = 1 us serialisation, +1 us overhead, +10 us
    // latency: delivery on the remote LP at exactly 12 us.
    net::EthParams params;
    params.bandwidthBps = 1e9;
    params.latency = sim::microseconds(10);
    params.perMessageOverhead = sim::microseconds(1);

    ParallelEngine engine(2);
    LogicalProcess &a = engine.addLp("a");
    LogicalProcess &b = engine.addLp("b");

    net::Network net("net", a.queue());
    net.assign("a", a);
    net.assign("b", b);
    net.connect("a", "b", params);
    net.partition(engine);
    ASSERT_EQ(engine.channelCount(), 2u);
    EXPECT_EQ(engine.lookahead(), params.latency);

    Tick deliveredAt = 0;
    net.send("a", "b", 1000, [&deliveredAt, &b] {
        deliveredAt = b.queue().now();
    });
    engine.run();
    EXPECT_EQ(deliveredAt, sim::microseconds(12));
}

TEST(ParallelOcapi, CrossingStageDeliversOnRemoteLp)
{
    ParallelEngine engine(2);
    LogicalProcess &a = engine.addLp("a");
    LogicalProcess &b = engine.addLp("b");

    ocapi::CrossingParams params;
    params.latency = sim::nanoseconds(115);
    ocapi::CrossingStage wire("wire", a.queue(), params);
    wire.bindChannel(&engine.connect(a, b, params.latency));

    Tick deliveredAt = 0;
    wire.connect([&deliveredAt, &b](mem::TxnPtr) {
        deliveredAt = b.queue().now();
    });
    a.queue().schedule(1000, [&wire] {
        wire.push(mem::makeTxn(mem::TxnType::ReadReq, 0x1000));
    });
    engine.run();
    EXPECT_EQ(deliveredAt, 1000 + sim::nanoseconds(115));
}

TEST(RackCluster, DeterministicAcrossWorkerCounts)
{
    dc::TraceParams tparams;
    tparams.jobs = 150;
    tparams.meanInterarrival = sim::microseconds(200);
    auto trace = dc::TraceGenerator(tparams, 7).generate();

    auto runOnce = [&trace](unsigned jobs) {
        sys::RackParams rparams;
        rparams.racks = 3;
        auto shards = dc::shardTrace(trace, rparams.racks);
        ParallelEngine engine(jobs);
        sys::RackCluster cluster("cluster", engine, shards, rparams,
                                 99);
        engine.run();
        sim::StatsRegistry reg;
        cluster.registerStats(reg, "sys");
        engine.attachStats(reg, "sim.par");
        reg.freezeAll();
        return std::make_tuple(cluster.opsCompleted(),
                               cluster.crossRackOps(),
                               reg.toJson());
    };

    auto serial = runOnce(1);
    auto parallel = runOnce(2);
    EXPECT_GT(std::get<0>(serial), 0u);
    EXPECT_GT(std::get<1>(serial), 0u);
    EXPECT_EQ(std::get<0>(serial), std::get<0>(parallel));
    EXPECT_EQ(std::get<1>(serial), std::get<1>(parallel));
    EXPECT_EQ(std::get<2>(serial), std::get<2>(parallel));
}
