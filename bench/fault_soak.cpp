/**
 * @file
 * Chaos soak: seeded deterministic FaultPlans (channel flaps,
 * Gilbert-Elliott burst loss, latency spikes, DRAM stalls, credit
 * starvation, control-plane outages) injected into the
 * bonding-disaggregated testbed while a closed-loop workload writes
 * and reads back donor memory.
 *
 * Invariant-checked on every run: no transaction is lost or hangs
 * (the request deadline bounds the tail), settled bytes read back
 * correct, and the path recovers within a bounded sweep once the
 * plan drains. Same seed + same --jobs reproduces the run
 * byte-for-byte.
 *
 * Thin wrapper over the tf_bench scenario of the same name; emits
 * BENCH_fault_soak.json (see harness.hh for the schema).
 */

#include "harness.hh"

int
main(int argc, char **argv)
{
    return tf::bench::scenarioMain("fault_soak", argc, argv);
}
