/**
 * @file
 * Fig. 5 reproduction: STREAM sustained memory bandwidth for the
 * single-disaggregated, bonding-disaggregated and interleaved
 * configurations at 4/8/16 threads, with the 12.5 GiB/s theoretical
 * single-channel maximum for reference.
 *
 * Paper shape: single approaches ~10-12.5 GiB/s (copy) and saturates
 * as threads grow; bonding gains ~30% (not 2x, capped by the
 * OpenCAPI C1 128B-transaction ceiling); interleaved outperforms
 * both by mixing local and remote pages 50/50.
 */

#include "apps/stream.hh"
#include "common.hh"

using namespace tf;

int
main()
{
    std::printf("=== Fig. 5: STREAM sustained bandwidth (GiB/s) ===\n");
    std::printf("ThymesisFlow theoretical maximum: 12.5 GiB/s per "
                "channel\n");
    std::printf("%-10s %-8s %22s %22s %22s\n", "threads", "kernel",
                "bonding-disaggregated", "single-disaggregated",
                "interleaved");

    const std::vector<apps::StreamKernel> kernels = {
        apps::StreamKernel::Add, apps::StreamKernel::Copy,
        apps::StreamKernel::Scale, apps::StreamKernel::Triad};

    for (int threads : {4, 8, 16}) {
        for (auto kernel : kernels) {
            double gib[3] = {0, 0, 0};
            int idx = 0;
            for (auto setup :
                 {sys::Setup::BondingDisaggregated,
                  sys::Setup::SingleDisaggregated,
                  sys::Setup::Interleaved}) {
                // Small cache (4 MiB) vs 8 MiB arrays: streaming
                // defeats the cache as in the real 3.66 GiB setup.
                auto bed = bench::makeBed(setup,
                                          256ULL * 1024 * 1024,
                                          4ULL * 1024 * 1024);
                apps::StreamParams sp;
                sp.elements = 1024 * 1024; // scaled from 160M
                sp.threads = threads;
                sp.iterations = 1;
                apps::StreamBenchmark bench(*bed.testbed, sp);
                gib[idx++] = bench.run(kernel).bestGiBs;
            }
            std::printf("%-10d %-8s %22.2f %22.2f %22.2f\n", threads,
                        apps::streamKernelName(kernel), gib[0],
                        gib[1], gib[2]);
        }
    }
    return 0;
}
