/**
 * @file
 * Fig. 5 reproduction: STREAM sustained memory bandwidth for the
 * single-disaggregated, bonding-disaggregated and interleaved
 * configurations, with the 12.5 GiB/s theoretical single-channel
 * maximum for reference.
 *
 * Paper shape: single approaches ~10-12.5 GiB/s (copy) and saturates
 * as threads grow; bonding gains ~30% (not 2x, capped by the
 * OpenCAPI C1 128B-transaction ceiling); interleaved outperforms
 * both by mixing local and remote pages 50/50.
 *
 * Thin wrapper over the tf_bench scenario of the same name; emits
 * BENCH_fig05_stream.json (see harness.hh for the schema).
 */

#include "harness.hh"

int
main(int argc, char **argv)
{
    return tf::bench::scenarioMain("fig05_stream", argc, argv);
}
